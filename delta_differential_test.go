package sqo_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sqo"
)

// TestDeltaDifferential is the correctness acceptance bar of the incremental
// catalog-mutation subsystem: the engine state built by ANY randomized
// sequence of UpdateCatalog deltas (adds, removes, replaces, re-adds of
// previously removed rules) must be byte-identical — optimizer output,
// per-query stats, and index shape — to a from-scratch engine built over the
// final catalog. It sweeps the paper's logistics world plus scaled worlds at
// 10² and 10³ constraints, re-verifying the full workload after every delta
// round; well over a thousand query comparisons per world set.
func TestDeltaDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep")
	}
	total := 0

	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	cat := sqo.LogisticsConstraints()
	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 41})
	workload, err := gen.Workload(240)
	if err != nil {
		t.Fatal(err)
	}
	total += runDeltaDifferential(t, "logistics", db.Schema(), cat, workload, 101)

	for _, n := range []int{100, 1000} {
		label := fmt.Sprintf("scaled-%d", n)
		sch, scat, err := sqo.GenerateScaledWorld(sqo.ScaledConfig{Constraints: n, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		qs, err := sqo.ScaledWorkload(sch, scat, 400, 17)
		if err != nil {
			t.Fatal(err)
		}
		total += runDeltaDifferential(t, label, sch, scat, qs, int64(7*n))
	}

	if total < 1040 {
		t.Fatalf("delta differential covered only %d queries, want >= 1040", total)
	}
	t.Logf("delta differential: %d query comparisons", total)
}

// runDeltaDifferential starts an engine on a random subset of cat, applies
// several random delta rounds, and after every round compares the mutated
// engine against a from-scratch engine over the engine's own declared
// catalog. Returns the number of per-query comparisons performed.
func runDeltaDifferential(t *testing.T, label string, sch *sqo.Schema, cat *sqo.Catalog, qs []*sqo.Query, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	all := cat.All()

	// Start on a ~60% prefix-order-preserving random subset; the rest form
	// the pool of rules the deltas draw additions from. Removed rules go
	// back to the pool, so re-adding a tombstoned rule (symbol and ordinal
	// reuse) is part of every run.
	var start []*sqo.Constraint
	var pool []*sqo.Constraint
	for _, c := range all {
		if rng.Float64() < 0.6 {
			start = append(start, c)
		} else {
			pool = append(pool, c)
		}
	}
	if len(start) == 0 {
		start, pool = pool, nil
	}
	startCat, err := sqo.NewCatalog(start...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sqo.NewEngine(sch, sqo.WithCatalog(startCat), sqo.WithResultCache(64))
	if err != nil {
		t.Fatal(err)
	}

	live := append([]*sqo.Constraint(nil), start...)
	checked := 0
	const rounds = 4
	for round := 0; round < rounds; round++ {
		d := sqo.NewCatalogDelta()
		// Removals (up to 2): removed rules rejoin the pool.
		for k := 0; k < 2 && len(live) > 1; k++ {
			i := rng.Intn(len(live))
			d.RemoveConstraints(live[i].ID)
			pool = append(pool, live[i])
			live = append(live[:i], live[i+1:]...)
		}
		// A replace (sometimes): swap a live rule for a pooled one. The
		// replacement lands at the end of the catalog order.
		if len(live) > 1 && len(pool) > 0 && rng.Intn(2) == 0 {
			i, j := rng.Intn(len(live)), rng.Intn(len(pool))
			old, repl := live[i], pool[j]
			d.ReplaceConstraint(old.ID, repl)
			pool[j] = old
			live = append(append(live[:i:i], live[i+1:]...), repl)
		}
		// Additions (up to 3) from the pool.
		for k := 0; k < 3 && len(pool) > 0; k++ {
			j := rng.Intn(len(pool))
			d.AddConstraints(pool[j])
			live = append(live, pool[j])
			pool = append(pool[:j], pool[j+1:]...)
		}
		if d.Empty() {
			continue
		}
		rep, err := eng.UpdateCatalog(d)
		if err != nil {
			t.Fatalf("%s round %d: %v", label, round, err)
		}
		if !rep.Incremental {
			t.Fatalf("%s round %d: expected the incremental path, got %+v", label, round, rep)
		}

		// Reference: a from-scratch engine over the mutated engine's own
		// declared catalog (also exercising lazy materialization).
		ref, err := sqo.NewEngine(sch, sqo.WithCatalog(eng.Catalog()))
		if err != nil {
			t.Fatalf("%s round %d: reference engine: %v", label, round, err)
		}
		if got, want := eng.Stats().Constraints, ref.Stats().Constraints; got != want {
			t.Fatalf("%s round %d: constraint count %d, reference %d", label, round, got, want)
		}
		if got, want := eng.Stats().ConstraintIndex, ref.Stats().ConstraintIndex; !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round %d: index stats diverge\npatched: %+v\nscratch: %+v", label, round, got, want)
		}
		for _, q := range qs {
			diffDelta(t, fmt.Sprintf("%s round %d", label, round), eng, ref, q)
			checked++
		}
	}
	return checked
}

// diffDelta optimizes one query through the delta-built and the from-scratch
// engine and fails on any divergence, down to fire counts (catalog order is
// preserved by construction, so even order-sensitive statistics must agree).
func diffDelta(t *testing.T, label string, mutated, scratch *sqo.Engine, q *sqo.Query) {
	t.Helper()
	ctx := context.Background()
	a, err := mutated.Optimize(ctx, q)
	if err != nil {
		t.Fatalf("%s: delta-built optimize: %v\n%s", label, err, q)
	}
	b, err := scratch.Optimize(ctx, q)
	if err != nil {
		t.Fatalf("%s: from-scratch optimize: %v\n%s", label, err, q)
	}
	if got, want := a.Optimized.String(), b.Optimized.String(); got != want {
		t.Fatalf("%s: outputs diverge\nquery:   %s\npatched: %s\nscratch: %s", label, q, got, want)
	}
	if a.EmptyResult != b.EmptyResult {
		t.Fatalf("%s: EmptyResult diverges for %s", label, q)
	}
	if a.Stats.Fires != b.Stats.Fires || a.Stats.RelevantConstraints != b.Stats.RelevantConstraints {
		t.Fatalf("%s: stats diverge for %s: fires %d/%d relevant %d/%d",
			label, q, a.Stats.Fires, b.Stats.Fires,
			a.Stats.RelevantConstraints, b.Stats.RelevantConstraints)
	}
	if !reflect.DeepEqual(a.FinalTags(), b.FinalTags()) {
		t.Fatalf("%s: final tags diverge for %s\npatched: %v\nscratch: %v",
			label, q, a.FinalTags(), b.FinalTags())
	}
}
