//go:build !race

package sqo_test

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation distorts timing assertions.
const raceEnabled = false
