// Constraints tours the semantic-knowledge machinery around the optimizer:
// intra/inter classification, transitive-closure materialization (Section 3
// / [YuS89]), and the class-attached constraint grouping scheme with its
// least-frequently-accessed enhancement.
package main

import (
	"context"
	"fmt"
	"log"

	"sqo"
)

func main() {
	cat := sqo.LogisticsConstraints()

	fmt.Println("== the constraint catalog, classified ==")
	for _, c := range cat.All() {
		fmt.Printf("  [%s] %s\n", c.Kind(), c)
	}

	fmt.Println("\n== transitive closure materialization ==")
	closed, pool, stats, err := sqo.MaterializeClosure(cat, sqo.ClosureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original %d constraints, derived %d more in %d rounds\n",
		stats.Original, stats.Derived, stats.Rounds)
	fmt.Printf("predicate interning: %d occurrences -> %d distinct pooled predicates\n",
		stats.PredOccurrence, stats.PooledPreds)
	_ = pool
	for _, c := range closed.All() {
		if len(c.ID) > 3 { // derived constraints carry composite IDs
			fmt.Printf("  derived: %s\n", c)
		}
	}

	fmt.Println("\n== grouping: only groups attached to queried classes are fetched ==")
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		log.Fatal(err)
	}
	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 7})
	workload, err := gen.Workload(25)
	if err != nil {
		log.Fatal(err)
	}
	for _, policy := range []sqo.GroupPolicy{sqo.GroupArbitrary, sqo.GroupLeastAccessed, sqo.GroupEvenSpread} {
		stats := sqo.NewAccessStats()
		for _, q := range workload {
			stats.RecordQuery(q) // warm the access pattern
		}
		store := sqo.NewGroupStore(closed, policy, stats)
		store.Rebuild()
		for _, q := range workload {
			store.Retrieve(q)
		}
		fmt.Printf("  %-15s retrieved %4d constraints, %4d relevant (%.1f%% wasted)\n",
			policy, store.Retrieved(), store.Relevant(), 100*store.WasteRatio())
	}
	fmt.Println("\nevery policy always retrieves every relevant constraint; the")
	fmt.Println("least-accessed enhancement just fetches fewer irrelevant ones.")

	// The Engine wires all of the above — closure materialization and
	// grouped retrieval — behind one handle, plus a result cache on top.
	fmt.Println("\n== the same pipeline behind the Engine front door ==")
	eng, err := sqo.NewEngine(db.Schema(),
		sqo.WithCatalog(cat),
		sqo.WithClosure(sqo.ClosureOptions{}),
		sqo.WithGrouping(sqo.GroupLeastAccessed),
		sqo.WithCache(sqo.CacheConfig{Capacity: 64}))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for pass := 0; pass < 2; pass++ { // second pass is pure cache hits
		if _, err := eng.OptimizeBatch(ctx, workload); err != nil {
			log.Fatal(err)
		}
	}
	st := eng.Stats()
	fmt.Printf("engine: %d constraints active (%d derived by closure)\n",
		st.Constraints, st.DerivedConstraints)
	fmt.Printf("        %d optimizations over two passes: %d cache hits, %d misses\n",
		st.Optimizations, st.CacheHits, st.CacheMisses)
}
