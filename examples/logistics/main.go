// Logistics runs the full evaluation pipeline on the paper's largest
// database instance (DB4 of Table 4.1): generate the constraint-satisfying
// database, formulate a path-query workload the way Section 4 describes,
// optimize every query, execute both versions, and summarize the measured
// cost savings.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"sqo"
)

func main() {
	cfg := sqo.DB4()
	fmt.Printf("generating %s (avg class cardinality %d)...\n", cfg.Name, cfg.Classes()/5)
	db, err := sqo.GenerateDatabase(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cat := sqo.LogisticsConstraints()

	// Sanity: the generated instance satisfies every semantic constraint.
	if id, err := sqo.CheckCatalog(db, cat); err != nil || id != "" {
		log.Fatalf("constraint %q violated (err %v)", id, err)
	}
	fmt.Printf("all %d semantic constraints hold\n\n", cat.Len())

	model := sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)
	// One engine serves the whole workload: grouped retrieval, a result
	// cache for repeated queries, and a worker pool for the batch.
	eng, err := sqo.NewEngine(db.Schema(),
		sqo.WithCatalog(cat),
		sqo.WithCostModel(model),
		sqo.WithGrouping(sqo.GroupLeastAccessed),
		sqo.WithCache(sqo.CacheConfig{Capacity: 64}))
	if err != nil {
		log.Fatal(err)
	}
	exec := sqo.NewExecutor(db)

	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 41})
	workload, err := gen.Workload(20)
	if err != nil {
		log.Fatal(err)
	}

	// Optimize the whole workload in one concurrent batch.
	results, err := eng.OptimizeBatch(context.Background(), workload)
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		ratio    float64
		original float64
		saved    float64
		fires    int
		q        *sqo.Query
	}
	var outcomes []outcome
	for i, q := range workload {
		res := results[i]
		before, err := exec.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		after, err := exec.Execute(res.Optimized)
		if err != nil {
			log.Fatal(err)
		}
		oc := before.Cost(sqo.DefaultWeights)
		zc := after.Cost(sqo.DefaultWeights)
		outcomes = append(outcomes, outcome{
			ratio:    100 * zc / oc,
			original: oc,
			saved:    oc - zc,
			fires:    res.Stats.Fires,
			q:        q,
		})
	}

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].ratio < outcomes[j].ratio })
	fmt.Println("per-query results (sorted by optimized/original cost ratio):")
	totalBefore, totalAfter := 0.0, 0.0
	for _, o := range outcomes {
		totalBefore += o.original
		totalAfter += o.original - o.saved
		fmt.Printf("  %6.1f%%  cost %8.1f -> %8.1f  (%d transformations)\n",
			o.ratio, o.original, o.original-o.saved, o.fires)
	}
	fmt.Printf("\nworkload total: %.1f -> %.1f cost units (%.1f%% of original)\n",
		totalBefore, totalAfter, 100*totalAfter/totalBefore)
	fmt.Println("\nbest win:")
	fmt.Println("  before:", outcomes[0].q)

	st := eng.Stats()
	fmt.Printf("\nengine: %d optimizations, cache %d/%d hit/miss, %d constraints grouped\n",
		st.Optimizations, st.CacheHits, st.CacheMisses, st.Constraints)
}
