// Discovery demonstrates the Siegel-style extension the paper points at in
// its introduction: rules derived automatically from the *current database
// state* ("the current database state also contains description of the
// current database status and hence captures more information"). The deriver
// scans a generated logistics database, discovers state-dependent Horn rules
// — rediscovering several declared constraints along the way — and shows the
// optimizer firing more transformations with the enriched catalog.
package main

import (
	"context"
	"fmt"
	"log"

	"sqo"
)

func main() {
	db, err := sqo.GenerateDatabase(sqo.DB2())
	if err != nil {
		log.Fatal(err)
	}
	declared := sqo.LogisticsConstraints()

	derived, err := sqo.DeriveRules(db, sqo.DeriveOptions{Bounds: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d state-dependent rules from the current data; a sample:\n", derived.Len())
	for i, c := range derived.All() {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", derived.Len()-i)
			break
		}
		fmt.Printf("  %s\n", c.Doc)
	}

	// Several declared integrity constraints are rediscovered from data.
	merged, err := sqo.MergeCatalogs(declared, derived)
	if err != nil {
		log.Fatal(err)
	}
	rediscovered := declared.Len() + derived.Len() - merged.Len()
	fmt.Printf("\nmerged catalog: %d declared + %d derived = %d (%d rediscovered declared rules)\n",
		declared.Len(), derived.Len(), merged.Len(), rediscovered)

	// Compare optimization power with and without the derived knowledge.
	model := sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)
	exec := sqo.NewExecutor(db)
	gen := sqo.NewWorkloadGenerator(db, declared, sqo.WorkloadOptions{Seed: 21})
	workload, err := gen.Workload(15)
	if err != nil {
		log.Fatal(err)
	}

	// One long-lived engine serves both runs: it starts on the declared
	// constraints, then SwapCatalog atomically hot-swaps the merged
	// declared+derived rule set in (rebuilding retrieval state and
	// invalidating the result cache) — exactly how a production deployment
	// absorbs freshly mined state rules without restarting.
	eng, err := sqo.NewEngine(db.Schema(),
		sqo.WithCatalog(declared),
		sqo.WithCostModel(model),
		sqo.WithCache(sqo.CacheConfig{Capacity: 32}))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	run := func() (fires int, cost float64) {
		results, err := eng.OptimizeBatch(ctx, workload)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			out, err := exec.Execute(res.Optimized)
			if err != nil {
				log.Fatal(err)
			}
			fires += res.Stats.Fires
			cost += out.Cost(sqo.DefaultWeights)
		}
		return fires, cost
	}

	declFires, declCost := run()
	if err := eng.SwapCatalog(merged); err != nil {
		log.Fatal(err)
	}
	mergedFires, mergedCost := run()
	fmt.Printf("\nworkload of %d queries:\n", len(workload))
	fmt.Printf("  declared constraints only: %3d transformations, total cost %8.1f\n", declFires, declCost)
	fmt.Printf("  plus derived state rules:  %3d transformations, total cost %8.1f\n", mergedFires, mergedCost)
	fmt.Println("\nstate-dependent rules must be re-derived (or invalidated) whenever the")
	fmt.Println("data changes; equivalence holds only in the state they were mined from.")
}
