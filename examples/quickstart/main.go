// Quickstart walks through the paper's running example (Figures 2.1-2.3 and
// Section 3.5): the refrigerated-truck query is optimized with constraints
// c1 ("refrigerated trucks can only carry frozen food") and c2 ("we get
// frozen food only from SFI"), reproducing the three transformations the
// paper illustrates — restriction introduction, restriction elimination, and
// class elimination.
package main

import (
	"context"
	"fmt"
	"log"

	"sqo"
)

func main() {
	// Figure 2.1, restricted to the three classes the example touches.
	sch, err := sqo.NewSchemaBuilder().
		Class("supplier",
			sqo.Attribute{Name: "name", Type: sqo.KindString, Indexed: true},
			sqo.Attribute{Name: "address", Type: sqo.KindString}).
		Class("cargo",
			sqo.Attribute{Name: "code", Type: sqo.KindString, Indexed: true},
			sqo.Attribute{Name: "desc", Type: sqo.KindString},
			sqo.Attribute{Name: "quantity", Type: sqo.KindInt}).
		Class("vehicle",
			sqo.Attribute{Name: "vehicle#", Type: sqo.KindString, Indexed: true},
			sqo.Attribute{Name: "desc", Type: sqo.KindString},
			sqo.Attribute{Name: "class", Type: sqo.KindInt}).
		Relationship("supplies", "supplier", "cargo", sqo.OneToMany).
		Relationship("collects", "vehicle", "cargo", sqo.OneToMany).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2.2: the two semantic constraints the example fires.
	cat := sqo.MustCatalog(
		sqo.NewConstraint("c1",
			[]sqo.Predicate{sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))},
			[]string{"collects"},
			sqo.Eq("cargo", "desc", sqo.StringValue("frozen food")),
		).WithDoc("refrigerated trucks can only be used to carry frozen food"),
		sqo.NewConstraint("c2",
			[]sqo.Predicate{sqo.Eq("cargo", "desc", sqo.StringValue("frozen food"))},
			[]string{"supplies"},
			sqo.Eq("supplier", "name", sqo.StringValue("SFI")),
		).WithDoc("we get frozen food only from the Singapore Food Industries"),
	)

	// The sample query: "List the vehicle# of refrigerated trucks that we
	// sent to SFI to collect cargoes, and the description and quantity of
	// the cargoes to be collected."
	q := sqo.NewQuery("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddProject("cargo", "quantity").
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddSelect(sqo.Eq("supplier", "name", sqo.StringValue("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")

	// The Engine is the long-lived front door: built once over schema and
	// catalog, then shared by any number of goroutines.
	eng, err := sqo.NewEngine(sch, sqo.WithCatalog(cat))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Optimize(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("original:")
	fmt.Println(" ", res.Original)
	fmt.Println()
	fmt.Println("transformations (cf. Figure 2.3):")
	for i, tr := range res.Trace {
		switch {
		case tr.Class != "":
			fmt.Printf("  #%d %s: dropped class %s\n", i+1, tr.Kind, tr.Class)
		case tr.Constraint != "":
			fmt.Printf("  #%d %s via %s: %s is now %s\n", i+1, tr.Kind, tr.Constraint, tr.Pred, tr.NewTag)
		default:
			fmt.Printf("  #%d %s: %s stays %s\n", i+1, tr.Kind, tr.Pred, tr.NewTag)
		}
	}
	fmt.Println()
	fmt.Println("final tags (cf. Section 3.5: p1 imperative, p2 and p3 optional):")
	for _, tp := range res.TaggedPredicates() {
		fmt.Printf("  %-10s %s\n", tp.Tag, tp.Pred)
	}
	fmt.Println()
	fmt.Println("optimized (cf. the final query of Figure 2.3):")
	fmt.Println(" ", res.Optimized)
}
