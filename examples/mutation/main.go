// Mutation demonstrates the incremental catalog-update path end to end,
// wiring rule derivation (the Siegel [Sie88] extension) into
// Engine.UpdateCatalog: state-dependent rules are mined from the current
// database, the database is then mutated, the rules are re-derived — and
// instead of swapping the whole catalog (which would rebuild the retrieval
// index and throw away every cached result), only the *changed* rules are
// applied as a CatalogDelta. The engine patches the generation in place-by-
// copy and keeps every cached optimization the delta does not touch.
package main

import (
	"context"
	"fmt"
	"log"

	"sqo"
)

func main() {
	ctx := context.Background()
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		log.Fatal(err)
	}
	declared := sqo.LogisticsConstraints()

	// Mine state rules from the data and serve from declared + derived.
	// Derived IDs are namespaced per derivation round so rounds never
	// collide; rules are compared by canonical key anyway.
	derived, err := deriveRound(db, 1)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := sqo.MergeCatalogs(declared, derived)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := sqo.NewEngine(db.Schema(), sqo.WithCatalog(catalog), sqo.WithCache(sqo.CacheConfig{Capacity: 512}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d constraints (%d declared + %d derived)\n",
		eng.Stats().Constraints, declared.Len(), eng.Stats().Constraints-declared.Len())

	// Warm the result cache with a workload.
	gen := sqo.NewWorkloadGenerator(db, declared, sqo.WorkloadOptions{Seed: 21})
	workload, err := gen.Workload(40)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range workload {
		if _, err := eng.Optimize(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cache warmed: %d distinct optimizations cached\n", eng.Stats().CacheSize)

	// The data shifts: some frozen-food shipments grow past every mined
	// quantity bound. State-dependent rules about cargo are now stale.
	var cargos []sqo.OID
	if err := db.Scan("cargo", nil, func(inst sqo.Instance) bool {
		cargos = append(cargos, inst.OID)
		return len(cargos) < 5
	}); err != nil {
		log.Fatal(err)
	}
	for _, oid := range cargos {
		if err := db.Update("cargo", oid, "quantity", sqo.IntValue(100000)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nmutated %d cargo instances; re-deriving state rules\n", len(cargos))

	// Re-derive and apply only what changed. DiffCatalogs compares by
	// canonical key: rules that still hold produce no ops at all.
	derived2, err := deriveRound(db, 2)
	if err != nil {
		log.Fatal(err)
	}
	catalog2, err := sqo.MergeCatalogs(declared, derived2)
	if err != nil {
		log.Fatal(err)
	}
	delta := sqo.DiffCatalogs(eng.Catalog(), catalog2)
	rep, err := eng.UpdateCatalog(delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied delta: %d rules removed, %d added (of %d total) — incremental=%v\n",
		rep.Removed, rep.Added, eng.Stats().Constraints, rep.Incremental)
	fmt.Printf("result cache: %d entries purged, %d survived the update\n",
		rep.CachePurged, rep.CacheSurvived)

	// Replay the workload: surviving entries hit, only queries the changed
	// rules touch are recomputed.
	before := eng.Stats()
	for _, q := range workload {
		if _, err := eng.Optimize(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	after := eng.Stats()
	fmt.Printf("replay of %d queries: %d cache hits, %d recomputed\n",
		len(workload), after.CacheHits-before.CacheHits, after.CacheMisses-before.CacheMisses)
}

// deriveRound mines state rules and namespaces their IDs by round, so two
// derivation rounds can never collide on ID (they are diffed by key).
func deriveRound(db *sqo.Database, round int) (*sqo.Catalog, error) {
	mined, err := sqo.DeriveRules(db, sqo.DeriveOptions{Bounds: true})
	if err != nil {
		return nil, err
	}
	out := make([]*sqo.Constraint, 0, mined.Len())
	for i, c := range mined.All() {
		r := sqo.NewConstraint(fmt.Sprintf("s%d_%d", round, i), c.Antecedents, c.Links, c.Consequent)
		r.Doc, r.StateDependent = c.Doc, true
		out = append(out, r)
	}
	return sqo.NewCatalog(out...)
}
