// Tuning demonstrates the paper's Section 4 engineering knobs: the priority
// queue, transformation budgets, contradiction detection (an extension), and
// the paper's concluding advice — disable semantic optimization when the
// database is small and enable it when it is large.
package main

import (
	"context"
	"fmt"
	"log"

	"sqo"
)

func main() {
	cat := sqo.LogisticsConstraints()

	fmt.Println("== budgets and priorities ==")
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		log.Fatal(err)
	}
	model := sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)
	q := sqo.NewQuery("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddSelect(sqo.Eq("supplier", "name", sqo.StringValue("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")
	ctx := context.Background()
	for _, budget := range []int{1, 2, 0} {
		eng, err := sqo.NewEngine(db.Schema(),
			sqo.WithCatalog(cat),
			sqo.WithCostModel(model),
			sqo.WithBudget(budget),
			sqo.WithPriorities()) // index introductions first (Section 4)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Optimize(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("budget %d", budget)
		if budget == 0 {
			label = "unlimited"
		}
		fmt.Printf("  %-10s %d transformations, %d table ops -> %s\n",
			label, res.Stats.Fires, res.Stats.Ops, res.Optimized)
	}

	fmt.Println("\n== contradiction detection (extension, off by default) ==")
	eng, err := sqo.NewEngine(db.Schema(),
		sqo.WithCatalog(cat),
		sqo.WithCostModel(model),
		sqo.WithContradictionDetection())
	if err != nil {
		log.Fatal(err)
	}
	contradictory := sqo.NewQuery("cargo", "vehicle").
		AddProject("cargo", "code").
		AddSelect(sqo.Eq("cargo", "desc", sqo.StringValue("oil"))).
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddRelationship("collects")
	res, err := eng.Optimize(ctx, contradictory)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  query: %s\n", contradictory)
	fmt.Printf("  provably empty: %v (c8 says oil travels only on tankers)\n", res.EmptyResult)

	fmt.Println("\n== when to enable the optimizer (the paper's conclusion) ==")
	for _, cfg := range []sqo.DBConfig{sqo.DB1(), sqo.DB4()} {
		db, err := sqo.GenerateDatabase(cfg)
		if err != nil {
			log.Fatal(err)
		}
		model := sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)
		eng, err := sqo.NewEngine(db.Schema(),
			sqo.WithCatalog(cat), sqo.WithCostModel(model))
		if err != nil {
			log.Fatal(err)
		}
		exec := sqo.NewExecutor(db)
		gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 41})
		workload, err := gen.Workload(15)
		if err != nil {
			log.Fatal(err)
		}
		var before, after float64
		for _, wq := range workload {
			r, err := eng.Optimize(ctx, wq)
			if err != nil {
				log.Fatal(err)
			}
			b, err := exec.Execute(wq)
			if err != nil {
				log.Fatal(err)
			}
			a, err := exec.Execute(r.Optimized)
			if err != nil {
				log.Fatal(err)
			}
			before += b.Cost(sqo.DefaultWeights)
			after += a.Cost(sqo.DefaultWeights)
		}
		fmt.Printf("  %s: workload cost %.0f -> %.0f units (%.1f%%)\n",
			cfg.Name, before, after, 100*after/before)
	}
	fmt.Println("\n\"it is probably not worth doing semantic query optimization when the")
	fmt.Println(" database is small ... when the database is large ... the optimizer")
	fmt.Println(" becomes very useful.\" — Section 4")
}
