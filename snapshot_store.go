package sqo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sqo/internal/delta"
	"sqo/internal/faultinject"
	"sqo/internal/snapshot"
)

// Snapshot store file names inside the store directory.
const (
	SnapshotFileName = "catalog.sqos"
	JournalFileName  = "journal.sqoj"
)

// DefaultCompactRecords is the journal length at which ApplyAndLog folds the
// journal into a fresh snapshot. At the default, a crash-restart replays at
// most this many delta batches on top of an O(read) snapshot load.
const DefaultCompactRecords = 4096

// SnapshotStore manages the persistence pair a serving node keeps in one
// directory: the current catalog snapshot (catalog.sqos) and the delta
// journal extending it (journal.sqoj). Boot restores an engine from them,
// ApplyAndLog keeps them in step with every catalog mutation, and
// compaction periodically folds the journal back into the snapshot.
//
// Crash-safety contract (normative rules in docs/SNAPSHOT_FORMAT.md):
// snapshots replace atomically via temp+rename; journal records are framed
// and checksummed so a torn tail truncates cleanly; and a new snapshot is
// durable on disk *before* its journal rotates, so a crash between the two
// leaves a stale journal (seq one behind) that Boot provably ignores.
type SnapshotStore struct {
	dir string

	// CompactRecords is the journal-length compaction threshold. Set it
	// before the first ApplyAndLog; zero means DefaultCompactRecords.
	CompactRecords int

	mu     sync.Mutex
	jrn    *snapshot.Journal
	seq    uint64 // sequence of the snapshot currently on disk (0: none)
	snapID uint64

	// faults is the chaos harness for the store's file I/O (journal.append,
	// journal.partial, snapshot.write, snapshot.corrupt); nil in production.
	faults *faultinject.Injector
}

// OpenSnapshotStore opens (creating if needed) a snapshot store directory.
// The store is inert until Boot; Boot decides warm versus cold and leaves
// the store ready for ApplyAndLog. When SQO_FAULTS configures snapshot.* or
// journal.* rules, the store's file I/O runs under injection.
func OpenSnapshotStore(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	in, err := faultinject.FromEnv()
	if err != nil {
		return nil, err
	}
	s := &SnapshotStore{dir: dir}
	if in.Active("journal.") || in.Active("snapshot.") {
		s.faults = in
	}
	return s, nil
}

// journalFault adapts the injector to the journal's partial-write hook:
// journal.append fails before any byte lands; journal.partial writes a
// prefix of the frame and then fails, leaving a genuine torn tail.
func (s *SnapshotStore) journalFault(frame []byte) (int, error) {
	if err := s.faults.Fire("journal.append"); err != nil {
		return 0, err
	}
	if keep, fire := s.faults.Partial("journal.partial", len(frame)); fire {
		return keep, fmt.Errorf("%w: journal.partial", faultinject.ErrInjected)
	}
	return 0, nil
}

// bindJournal installs the fault hook (when injection is live) and adopts j
// as the store's journal.
func (s *SnapshotStore) bindJournal(j *snapshot.Journal) {
	if s.faults != nil {
		j.Fault = s.journalFault
	}
	s.jrn = j
}

func (s *SnapshotStore) snapshotPath() string { return filepath.Join(s.dir, SnapshotFileName) }
func (s *SnapshotStore) journalPath() string  { return filepath.Join(s.dir, JournalFileName) }

// BootReport says how Boot reached serving state.
type BootReport struct {
	Warm        bool   // engine restored from the snapshot (vs cold-built)
	ColdReason  string // why warm restore was not possible ("" when Warm)
	Replayed    int    // journal batches replayed onto the restored engine
	TornTail    bool   // the journal had a torn tail (truncated away)
	SnapshotID  uint64 // identity of the snapshot now backing the store
	Seq         uint64 // its sequence number
	Constraints int    // live constraints serving after boot
}

// Boot brings up an engine from the store: a warm restore of the snapshot
// plus a replay of the journal tail when both are sound, otherwise a cold
// build from the supplied catalog. Either way the store ends consistent —
// a cold boot immediately writes a fresh snapshot and journal, so the next
// restart is warm again.
//
// cat is the declared catalog to cold-build from (also the first-boot
// path, when the directory is empty). opts apply to the engine either way;
// they must not include WithCatalog, WithConstraintSource, WithSnapshot or
// any option leaving the default retrieval stack.
//
// Warm restore refuses — and falls back to a cold build — on: a missing,
// truncated or checksum-failing snapshot; a snapshot format-version or
// schema skew; an unreadable journal; a journal bound to a different
// schema; or a journal whose (snapID, seq) binding matches neither the
// snapshot nor the stale-after-compaction-crash pattern (seq exactly one
// behind). A torn journal tail is NOT a refusal: the valid prefix replays
// and the tail — at most one unacknowledged batch — truncates away.
func (s *SnapshotStore) Boot(sch *Schema, cat *Catalog, opts ...EngineOption) (*Engine, BootReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var probe engineConfig
	for _, o := range opts {
		o(&probe)
	}
	if probe.catalog != nil || probe.source != nil || probe.snap != nil {
		return nil, BootReport{}, errors.New("sqo: Boot options must not choose a catalog source; pass the catalog as the Boot argument")
	}
	if probe.closure || probe.grouping || probe.noIndex || probe.noIntern || probe.core.DisableInterning {
		return nil, BootReport{}, errors.New("sqo: snapshot store requires the default retrieval stack (no closure or grouping, index and interning on)")
	}

	eng, rep, err := s.tryWarm(sch, opts)
	if err != nil {
		return nil, BootReport{}, err
	}
	if eng == nil {
		eng, err = NewEngine(sch, append(append([]EngineOption{}, opts...), WithCatalog(cat))...)
		if err != nil {
			return nil, BootReport{}, err
		}
		if werr := s.writeSnapshotLocked(eng); werr != nil {
			return nil, BootReport{}, fmt.Errorf("sqo: cold boot could not establish snapshot baseline: %w", werr)
		}
	}
	rep.SnapshotID, rep.Seq = s.snapID, s.seq
	rep.Constraints = eng.state.Load().constraintCount()
	return eng, rep, nil
}

// tryWarm attempts the warm path. It returns (nil, reportWithColdReason,
// nil) for every recoverable refusal — only environmental failures (I/O on
// a structurally sound store) surface as errors.
func (s *SnapshotStore) tryWarm(sch *Schema, opts []EngineOption) (*Engine, BootReport, error) {
	rep := BootReport{}
	refuse := func(format string, args ...any) (*Engine, BootReport, error) {
		rep.Warm = false
		rep.ColdReason = fmt.Sprintf(format, args...)
		return nil, rep, nil
	}

	snapData, err := os.ReadFile(s.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return refuse("no snapshot")
	}
	if err != nil {
		return nil, rep, err
	}
	// Chaos seam: a flipped byte must land in "snapshot unreadable" (the
	// checksum catches it) and a clean cold build, never a bad restore.
	snapData = s.faults.Corrupt("snapshot.corrupt", snapData)
	// Keep the sequence monotonic even when this boot ends cold: a fresh
	// baseline written over a refused snapshot must supersede it.
	if info, err := snapshot.ReadInfo(snapData); err == nil && info.Seq > s.seq {
		s.seq = info.Seq
	}
	snap, err := func() (*Snapshot, error) {
		m, info, err := snapshot.Decode(snapData)
		if err != nil {
			return nil, err
		}
		return &Snapshot{model: m, info: info}, nil
	}()
	if err != nil {
		return refuse("snapshot unreadable: %v", err)
	}
	sh := schemaHash(sch)
	if snap.info.SchemaHash != sh {
		return refuse("snapshot schema %#016x differs from serving schema %#016x", snap.info.SchemaHash, sh)
	}

	// Relate the journal to the snapshot before building anything.
	var batches [][]delta.Op
	jpath := s.journalPath()
	if _, err := os.Stat(jpath); errors.Is(err, os.ErrNotExist) {
		batches = nil // fresh journal below
	} else if err != nil {
		return nil, rep, err
	} else {
		hdr, replayed, info, err := snapshot.ReplayJournal(jpath)
		if err != nil {
			return refuse("journal unreadable: %v", err)
		}
		switch {
		case hdr.SchemaHash != sh:
			return refuse("journal schema %#016x differs from serving schema %#016x", hdr.SchemaHash, sh)
		case hdr.SnapID == snap.info.ID && hdr.Seq == snap.info.Seq:
			batches = replayed
			rep.TornTail = info.Torn
		case hdr.Seq+1 == snap.info.Seq:
			// Compaction crashed between the snapshot rename and the journal
			// rotation: every record here is already folded into the
			// snapshot. Ignore the stale journal; a fresh one is created
			// below.
			batches = nil
		default:
			return refuse("journal (snap %#x seq %d) does not extend snapshot (id %#x seq %d)",
				hdr.SnapID, hdr.Seq, snap.info.ID, snap.info.Seq)
		}
	}

	eng, err := NewEngine(sch, append(append([]EngineOption{}, opts...), WithSnapshot(snap))...)
	if err != nil {
		return refuse("restore rejected: %v", err)
	}
	for i, ops := range batches {
		if _, err := eng.UpdateCatalog(&CatalogDelta{ops: ops}); err != nil {
			// A journaled batch that applied cleanly before the restart must
			// apply again; failure means snapshot and journal diverged.
			return refuse("journal replay diverged at record %d: %v", i, err)
		}
	}

	s.seq, s.snapID = snap.info.Seq, snap.info.ID
	if batches == nil && !rep.TornTail {
		// No usable journal on disk (absent, or stale post-compaction):
		// start a fresh one bound to the snapshot.
		j, err := snapshot.CreateJournal(jpath, snapshot.JournalHeader{
			Version: snapshot.FormatVersion, SchemaHash: sh, SnapID: s.snapID, Seq: s.seq,
		})
		if err != nil {
			return nil, rep, err
		}
		s.bindJournal(j)
	} else {
		// Reopen for append; OpenJournal truncates the torn tail (if any) so
		// the next append lands on a clean frame boundary.
		j, _, _, err := snapshot.OpenJournal(jpath)
		if err != nil {
			return nil, rep, err
		}
		s.bindJournal(j)
	}
	rep.Warm = true
	rep.Replayed = len(batches)
	return eng, rep, nil
}

// ApplyAndLog applies a catalog delta to the engine and makes it durable:
// UpdateCatalog first, then a journal append of the same ops, then — when
// the journal has grown past CompactRecords, or the engine fell off the
// incremental path (it rebuilt anyway, so snapshotting now is compara-
// tively free) — a compaction that folds the journal into a new snapshot.
//
// A failed journal append degrades to the snapshot path: the append may
// have left a torn frame, and any record a later append landed behind it
// would be silently dropped at replay — so the applied delta is folded into
// a full snapshot (rotating the journal clean) instead. Only when that
// fallback also fails is an error returned; the in-memory engine is then
// ahead of durable state, and the store refuses further mutations until
// re-opened, so the divergence cannot widen silently.
func (s *SnapshotStore) ApplyAndLog(e *Engine, d *CatalogDelta) (UpdateReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jrn == nil {
		return UpdateReport{}, errors.New("sqo: snapshot store journal is unavailable (not booted, or disabled after a durability failure)")
	}
	rep, err := e.UpdateCatalog(d)
	if err != nil || d.Empty() {
		return rep, err
	}
	if !rep.Incremental {
		return rep, s.writeSnapshotLocked(e)
	}
	if err := s.jrn.Append(d.ops); err != nil {
		if serr := s.writeSnapshotLocked(e); serr != nil {
			if s.jrn != nil {
				s.jrn.Close()
				s.jrn = nil
			}
			return rep, fmt.Errorf("sqo: journal append: %w (snapshot fallback failed: %v; delta applied in memory, durability not guaranteed)", err, serr)
		}
		return rep, nil
	}
	limit := s.CompactRecords
	if limit <= 0 {
		limit = DefaultCompactRecords
	}
	if s.jrn.Records() >= limit {
		return rep, s.writeSnapshotLocked(e)
	}
	return rep, nil
}

// WriteSnapshot folds the engine's current generation into a fresh
// snapshot and rotates the journal. Servers call it on drain so the next
// boot is warm with an empty journal; it is also the compaction step
// ApplyAndLog triggers automatically.
func (s *SnapshotStore) WriteSnapshot(e *Engine) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeSnapshotLocked(e)
}

// writeSnapshotLocked is the compaction core. Ordering is the crash-safety
// story: the new snapshot is fully durable under its final name before the
// journal rotates, so the only crash window leaves new-snapshot +
// old-journal — which Boot detects by the seq gap and ignores.
func (s *SnapshotStore) writeSnapshotLocked(e *Engine) error {
	m, err := e.snapshotModel(s.seq + 1)
	if err != nil {
		return err
	}
	data, id, err := snapshot.Encode(m)
	if err != nil {
		return err
	}
	if err := s.faults.Fire("snapshot.write"); err != nil {
		return err
	}
	if err := writeFileAtomic(s.snapshotPath(), data); err != nil {
		return err
	}
	s.seq, s.snapID = s.seq+1, id

	if s.jrn != nil {
		s.jrn.Close()
		s.jrn = nil
	}
	j, err := snapshot.CreateJournal(s.journalPath(), snapshot.JournalHeader{
		Version: snapshot.FormatVersion, SchemaHash: m.SchemaHash, SnapID: id, Seq: s.seq,
	})
	if err != nil {
		return err
	}
	s.bindJournal(j)
	return nil
}

// StoreStats is a point-in-time view of the store.
type StoreStats struct {
	SnapshotID     uint64
	Seq            uint64
	JournalRecords int
}

// Stats reports the store's current snapshot identity and journal length.
func (s *SnapshotStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{SnapshotID: s.snapID, Seq: s.seq}
	if s.jrn != nil {
		st.JournalRecords = s.jrn.Records()
	}
	return st
}

// Close closes the journal. The store can be reopened with a fresh
// OpenSnapshotStore + Boot.
func (s *SnapshotStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jrn == nil {
		return nil
	}
	err := s.jrn.Close()
	s.jrn = nil
	return err
}
