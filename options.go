package sqo

import "time"

// EngineOption configures a NewEngine call. Options are applied in order, so
// when two options touch the same setting the later one wins; granular
// options (WithRules, WithBudget, …) therefore override the corresponding
// field of an earlier WithOptimizerOptions, and vice versa.
type EngineOption func(*engineConfig)

// engineConfig is the accumulated construction-time configuration of an
// Engine. It is frozen at NewEngine; SwapCatalog rebuilds the derived state
// (closure, groups, optimizer) but never the configuration.
type engineConfig struct {
	catalog         *Catalog
	source          ConstraintSource
	snap            *Snapshot
	closure         bool
	closureOpts     ClosureOptions
	grouping        bool
	policy          GroupPolicy
	noIndex         bool
	noIntern        bool
	core            Options
	cache           CacheConfig
	workers         int
	defaultDeadline time.Duration
	db              *Database
}

// WithCatalog supplies the declared semantic-constraint catalog. The catalog
// is validated against the schema at construction and can later be replaced
// atomically with Engine.SwapCatalog. Exactly one of WithCatalog and
// WithConstraintSource must be given.
func WithCatalog(cat *Catalog) EngineOption {
	return func(c *engineConfig) { c.catalog = cat }
}

// WithConstraintSource wires a custom ConstraintSource directly into the
// optimizer, bypassing the engine's own closure materialization and grouping
// (and disabling SwapCatalog, which needs to own the catalog to rebuild
// them). The source must be safe for concurrent use.
func WithConstraintSource(src ConstraintSource) EngineOption {
	return func(c *engineConfig) { c.source = src }
}

// WithClosure enables transitive-closure materialization (Section 3 /
// [YuS89]) of the catalog at construction and after every SwapCatalog, so
// chained constraints are derived once up front instead of per query.
func WithClosure(opts ClosureOptions) EngineOption {
	return func(c *engineConfig) { c.closure, c.closureOpts = true, opts }
}

// WithGrouping enables the paper's class-attached constraint grouping for
// retrieval, under the given assignment policy, instead of the default
// inverted constraint index. Fresh access statistics are maintained per
// catalog generation. Retrieval strategy precedence: WithConstraintSource,
// then WithGrouping, then the constraint index, then the linear scan.
func WithGrouping(policy GroupPolicy) EngineOption {
	return func(c *engineConfig) { c.grouping, c.policy = true, policy }
}

// WithConstraintIndex toggles the inverted constraint index (on by default):
// the catalog is indexed once per generation — at NewEngine and again inside
// every SwapCatalog, so catalog and index always swap together — and each
// query's relevant constraints are fetched through the index's class posting
// lists instead of an O(|catalog|) scan. Retrieval results are identical to
// the scan's, in the same order; only the lookup cost changes. Disabling it
// restores the linear scan (the baseline the differential tests compare
// against). The option is ignored under WithGrouping or
// WithConstraintSource, which supply their own retrieval.
func WithConstraintIndex(enabled bool) EngineOption {
	return func(c *engineConfig) { c.noIndex = !enabled }
}

// WithSymbolInterning toggles the interned symbol space (on by default): the
// catalog is compiled once per generation — at NewEngine and again inside
// every SwapCatalog — into dense class/attribute/predicate IDs, and the
// per-query hot path (transformation table, implication matching, result
// cache keys) runs on those IDs instead of canonical strings, with
// per-worker scratch reuse making steady-state optimization allocation-free.
// Disabling it restores the string-space path (the baseline the interning
// differential tests and the `sqobench -exp interning` ablation compare
// against). Output is identical either way; only cost changes.
func WithSymbolInterning(enabled bool) EngineOption {
	return func(c *engineConfig) { c.noIntern = !enabled }
}

// WithCostModel supplies the cost model used by query formulation. The model
// must be safe for concurrent use (both CostModel and HeuristicCost are).
// The default is HeuristicCost over the engine's schema.
func WithCostModel(m CostModelInterface) EngineOption {
	return func(c *engineConfig) { c.core.Cost = m }
}

// WithRules selects the active transformation rules (default AllRules).
func WithRules(rs RuleSet) EngineOption {
	return func(c *engineConfig) { c.core.Rules = rs }
}

// WithBudget caps the number of transformations per query (Section 4);
// zero means unlimited.
func WithBudget(n int) EngineOption {
	return func(c *engineConfig) { c.core.Budget = n }
}

// WithPriorities turns the transformation queue into the Section 4 priority
// queue: index introductions first, then eliminations, then introductions.
func WithPriorities() EngineOption {
	return func(c *engineConfig) { c.core.UsePriorities = true }
}

// WithContradictionDetection proves queries empty when two implied
// predicates contradict (extension; off when reproducing the paper's
// tables).
func WithContradictionDetection() EngineOption {
	return func(c *engineConfig) { c.core.DetectContradictions = true }
}

// WithOptimizerOptions replaces the full core optimizer Options wholesale —
// the escape hatch for settings without a granular option
// (DisableImpliedAntecedents, DisableSubsumption, …).
func WithOptimizerOptions(o Options) EngineOption {
	return func(c *engineConfig) { c.core = o }
}

// CacheConfig configures the engine's result cache — one struct for every
// cache knob, passed through WithCache.
type CacheConfig struct {
	// Capacity is the maximum number of cached optimized queries.
	// Capacity <= 0 disables caching entirely.
	Capacity int
	// Canonicalize keys the cache by the query's canonical form
	// (CanonicalizeQuery) instead of the raw conjunct multiset: duplicate
	// and implied conjuncts are dropped and equal interval bounds merged
	// before fingerprinting, so syntactic near-duplicates share one slot.
	// Cached results then answer the canonical query — Result.Original is
	// the canonical form, not the verbatim input.
	Canonicalize bool
	// Subsume additionally probes cached generalizations on a canonical
	// miss: when a cached query q provably contains the incoming q ∧ extra
	// (same projection, joins, relationships and classes; extra selective
	// conjuncts on attributes no constraint mentions), the answer is
	// derived from the cached optimization plus a residual pass instead of
	// re-running the transformation table. Derivations are byte-identical
	// to cold optimization (the differential suite enforces it); queries
	// outside the provable class fall through to cold optimization.
	// Subsume implies Canonicalize. It requires the engine's own catalog
	// (not WithConstraintSource) and the default heuristic cost model —
	// under a statistics cost model formulation is query-dependent, so the
	// engine silently serves without subsumption.
	Subsume bool
}

// WithCache configures the result cache from one CacheConfig — capacity,
// canonicalization, subsumption. Later cache options (including the
// deprecated WithResultCache) override earlier ones wholesale.
func WithCache(cc CacheConfig) EngineOption {
	return func(c *engineConfig) { c.cache = cc }
}

// WithResultCache enables the fingerprint-keyed LRU result cache with room
// for n optimized queries. Repeated queries — modulo predicate, class and
// relationship ordering — are then served from the cache without re-running
// the transformation algorithm. SwapCatalog invalidates the cache. n <= 0
// leaves caching disabled (the default).
//
// Deprecated: use WithCache(CacheConfig{Capacity: n}), which also exposes
// canonicalization and subsumption. WithResultCache remains as a shim and
// configures an exact-match-only cache.
func WithResultCache(n int) EngineOption {
	return WithCache(CacheConfig{Capacity: n})
}

// WithWorkers sets the number of goroutines OptimizeBatch fans out to.
// The default is runtime.GOMAXPROCS(0); values below 1 reset to the default.
func WithWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// WithDatabase attaches a database instance to the engine, enabling the
// end-to-end execution paths (Execute, ExecuteRaw, ExecuteBatch): optimized
// queries are pushed into the metered storage layer with predicate push-down
// and early filtering, and the engine accumulates per-query meters into its
// serving counters. The database must be an instance of the engine's schema
// and must satisfy the constraint catalog (semantic constraints are integrity
// constraints; CheckCatalog verifies). The engine only reads the database;
// mutating it concurrently with Execute calls is the caller's hazard.
func WithDatabase(db *Database) EngineOption {
	return func(c *engineConfig) { c.db = db }
}

// WithDefaultDeadline gives every Optimize call (and, through the batch
// paths, every query of a batch) whose context carries no deadline of its
// own a deadline of d from the moment the call starts — the serving-layer
// safety net against a runaway query holding a worker forever. A context
// that already has a deadline is left alone, even a later one. d <= 0
// disables the default (the default).
func WithDefaultDeadline(d time.Duration) EngineOption {
	return func(c *engineConfig) { c.defaultDeadline = d }
}
