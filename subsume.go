package sqo

import (
	"time"

	"sqo/internal/core"
	"sqo/internal/predicate"
)

// Containment-aware cache lookup.
//
// On a canonical miss, the engine probes the cached generalizations sharing
// the query's envelope (projection, joins, relationships, classes — every
// part except the selective conjuncts). A cached canonical query g contains
// the incoming canonical query cq when cq = g ∧ extras for selective
// conjuncts `extras`, and the optimization of cq is *derivable* from the
// cached optimization of g — cached plan plus a residual pass applying the
// extras — whenever every extra is provably inert to the transformation
// table:
//
//   - no live constraint mentions the extra's (class, attr) anywhere, so
//     the extra can never fire a rule, be implied redundant, or contradict
//     an introduced predicate;
//   - no predicate of g touches the attr, so intra-query implication,
//     contradiction and subsumption passes see nothing new;
//   - the extras are pairwise on distinct attrs, for the same reason;
//   - the extra's class survived g's optimization, so it cannot flip a
//     class-elimination decision (a failed elimination candidacy has no
//     side effects);
//   - the cost model is query-insensitive (checked at construction), so
//     formulation's cost-benefit decisions cannot observe the extras.
//
// Under those conditions every decision the cold optimizer would take on cq
// is the decision it took on g, and the output differs exactly by the extras
// sitting untouched (imperative) at their canonical positions — which is
// what deriveContained assembles. This is the decidable conjunctive class of
// Chirkova (PAPERS.md) specialized to the paper's predicate calculus;
// anything outside it bails to cold optimization. The differential suite
// holds derivations byte-identical to cold runs.

// maxGenProbe bounds how many cached generalizations one lookup verifies;
// past that the check itself would rival cold optimization.
const maxGenProbe = 16

// trySubsume probes the cached generalizations of cq's envelope and, on a
// provable containment, derives the result, stores it under cq's own
// canonical key (so repeats hit the primary path), and returns it. A nil
// return means no cached generalization answers cq.
func (e *Engine) trySubsume(st *engineState, key cacheKey, cq *Query) *Result {
	start := time.Now()
	env := cacheKey{epoch: st.epoch, fp: envelopeFingerprintWith(cq, st.syms)}
	var buf [maxGenProbe]genCandidate
	cands := e.cache.generalizations(env, buf[:0], maxGenProbe, len(cq.Selects))
	if len(cands) == 0 {
		return nil
	}
	mentioned := st.mentionSet()
	for _, cand := range cands {
		extras, ok := e.containedBy(cand.cq, cq, cand.res, mentioned)
		if !ok {
			continue
		}
		res := deriveContained(cand.cq, cand.res, cq, extras, start)
		if res == nil {
			continue
		}
		e.cache.subsumed(len(extras))
		// Cache under cq's own canonical key so repeats are exact hits —
		// but do NOT index the derived result as a generalization
		// candidate: anything it would contain, its own generalization
		// (still in the bucket) contains too, and near-duplicate traffic
		// would otherwise bloat the envelope bucket with entries that can
		// never win a probe.
		e.cache.put(key, res)
		return res
	}
	return nil
}

// containedBy reports whether the cached canonical query g contains cq with
// a provably inert residual, returning the extra conjuncts. Both queries are
// canonical: every list sorted, conjuncts deduplicated.
func (e *Engine) containedBy(g, cq *Query, gRes *Result, mentioned map[predicate.AttrRef]struct{}) ([]Predicate, bool) {
	// Envelope equality, structurally — the fingerprint routed us here,
	// but a 128-bit match is not proof.
	if len(g.Project) != len(cq.Project) || len(g.Joins) != len(cq.Joins) ||
		len(g.Relationships) != len(cq.Relationships) || len(g.Classes) != len(cq.Classes) {
		return nil, false
	}
	for i, a := range g.Project {
		if a != cq.Project[i] {
			return nil, false
		}
	}
	for i, p := range g.Joins {
		if p.Key() != cq.Joins[i].Key() {
			return nil, false
		}
	}
	for i, r := range g.Relationships {
		if r != cq.Relationships[i] {
			return nil, false
		}
	}
	for i, c := range g.Classes {
		if c != cq.Classes[i] {
			return nil, false
		}
	}
	// Selective containment: g.Selects must be a subsequence of cq.Selects
	// under the shared key order; the complement is the residual.
	var extras []Predicate
	i := 0
	for _, p := range cq.Selects {
		if i < len(g.Selects) && g.Selects[i].Key() == p.Key() {
			i++
			continue
		}
		extras = append(extras, p)
	}
	if i != len(g.Selects) {
		return nil, false // g has a conjunct cq lacks: not a generalization
	}
	if len(extras) == 0 {
		// Same selective set yet a different canonical fingerprint: a
		// hash collision. Never serve across one.
		return nil, false
	}
	// Inertness of every extra.
	for k, p := range extras {
		if p.IsJoin() {
			return nil, false
		}
		if p.Validate(e.schema) != nil {
			return nil, false
		}
		if _, hit := mentioned[p.Left]; hit {
			return nil, false // a constraint could interact with it
		}
		if !gRes.Optimized.HasClass(p.Left.Class) {
			return nil, false // its class was eliminated from the plan
		}
		for _, gp := range g.Selects {
			if gp.Left == p.Left {
				return nil, false // same-attr reasoning could trigger
			}
		}
		for _, gp := range g.Joins {
			if gp.Left == p.Left || gp.RightAttr == p.Left {
				return nil, false
			}
		}
		for _, other := range extras[:k] {
			if other.Left == p.Left {
				return nil, false // extras could reason among themselves
			}
		}
	}
	return extras, true
}

// deriveContained assembles the result of cq = g ∧ extras from the cached
// result of g: the optimized query and final tag list gain the extras —
// untouched, imperative — at their canonical positions inside the
// query-conjunct region, everything introduced by constraints follows
// unchanged, and trace and dependency set carry over. A nil return means the
// cached result's shape defeated the positional reconstruction (it never
// should; the caller then falls back to cold optimization).
func deriveContained(g *Query, base *Result, cq *Query, extras []Predicate, start time.Time) *Result {
	// Optimized.Selects of the base result is the surviving query
	// conjuncts — a subsequence of g.Selects in its canonical (key-sorted)
	// order — followed by the constraint-introduced restrictions. Cold
	// optimization of cq would emit the extras merged into the query
	// region by key; rebuild exactly that. Every walk below rides on g
	// being canonical: subsequence matching is a two-pointer scan and
	// membership a binary search, so the derivation builds no maps.
	baseSel := base.Optimized.Selects
	split, gi := 0, 0
	for split < len(baseSel) && gi < len(g.Selects) {
		switch k := baseSel[split].Key(); {
		case k == g.Selects[gi].Key():
			split++
			gi++
		case k > g.Selects[gi].Key():
			gi++ // that conjunct of g was eliminated from the plan
		default:
			gi = len(g.Selects) // introduced predicate: region over
		}
	}
	for _, p := range baseSel[split:] {
		if hasKey(g.Selects, p.Key()) {
			return nil // query conjunct after the introduced tail: bail
		}
	}
	selects := make([]Predicate, 0, len(baseSel)+len(extras))
	selects = mergeByKey(selects, baseSel[:split], extras)
	selects = append(selects, baseSel[split:]...)

	optimized := &Query{
		Project:       base.Optimized.Project,
		Joins:         base.Optimized.Joins,
		Selects:       selects,
		Relationships: base.Optimized.Relationships,
		Classes:       base.Optimized.Classes,
	}

	// The final tag list is in column order: g's joins, then g's selective
	// conjuncts, then everything the constraints introduced — each region a
	// subsequence of the corresponding sorted list of g (eliminated-class
	// predicates drop out of the tags). The extras slot into the selective
	// region at their key positions, imperative — they were never touched
	// by any rule.
	n := base.TaggedCount()
	i, ji := 0, 0
	for i < n && ji < len(g.Joins) {
		switch k := base.TaggedAt(i).Pred.Key(); {
		case k == g.Joins[ji].Key():
			i++
			ji++
		case k > g.Joins[ji].Key():
			ji++ // that join's class was eliminated: absent from the tags
		default:
			ji = len(g.Joins) // join region over
		}
	}
	selStart := i
	gi = 0
	for i < n && gi < len(g.Selects) {
		switch k := base.TaggedAt(i).Pred.Key(); {
		case k == g.Selects[gi].Key():
			i++
			gi++
		case k > g.Selects[gi].Key():
			gi++
		default:
			gi = len(g.Selects) // select region over
		}
	}
	selEnd := i
	for j := selEnd; j < n; j++ {
		if k := base.TaggedAt(j).Pred.Key(); hasKey(g.Selects, k) || hasKey(g.Joins, k) {
			return nil // region structure violated: bail
		}
	}
	derived := make([]core.TaggedPredicate, 0, n+len(extras))
	for j := 0; j < selStart; j++ {
		derived = append(derived, base.TaggedAt(j))
	}
	si, xi := selStart, 0
	for si < selEnd && xi < len(extras) {
		if tp := base.TaggedAt(si); tp.Pred.Key() < extras[xi].Key() {
			derived = append(derived, tp)
			si++
		} else {
			derived = append(derived, core.TaggedPredicate{Pred: extras[xi], Tag: TagImperative})
			xi++
		}
	}
	for ; si < selEnd; si++ {
		derived = append(derived, base.TaggedAt(si))
	}
	for ; xi < len(extras); xi++ {
		derived = append(derived, core.TaggedPredicate{Pred: extras[xi], Tag: TagImperative})
	}
	for j := selEnd; j < n; j++ {
		derived = append(derived, base.TaggedAt(j))
	}

	// Predicates counts table columns and each extra would be a fresh
	// one; Fires and RelevantConstraints are identical by construction.
	// Ops stays the generalization's: the derivation performs no table
	// work, so charging the cached table's operation count is the honest
	// figure (a cold run would add the formulation passes' extra state
	// scans).
	stats := base.Stats
	stats.Predicates += len(extras)
	stats.Duration = time.Since(start)
	return core.ComposeResult(cq, optimized, base.EmptyResult, base.Trace, stats, derived, base.Deps())
}

// mergeByKey appends the merge of two key-sorted selective conjunct lists to
// out.
func mergeByKey(out, a, b []Predicate) []Predicate {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Key() < b[j].Key() {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// hasKey reports whether a key-sorted predicate list contains key.
func hasKey(sorted []Predicate, key string) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid].Key() < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo].Key() == key
}
