package sqo

import (
	"sqo/internal/canon"
	"sqo/internal/predicate"
	"sqo/internal/symtab"
)

// QueryFingerprint is the canonical 128-bit identity of a query: an
// order-insensitive hash of its five parts, so two queries that differ only
// in how their predicate, class or relationship lists are ordered share one
// fingerprint (and one cache slot). It replaces the string fingerprint of
// earlier versions — computing it allocates nothing and performs no string
// concatenation, which is what lets a cache hit serve with zero heap
// allocations.
//
// Fingerprints are comparable and usable as map keys. They are stable only
// within a process (and, for the engine's internal keys, within a catalog
// generation); do not persist them.
type QueryFingerprint struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits, for logs and debugging.
func (f QueryFingerprint) String() string {
	var buf [32]byte
	hex := func(dst []byte, v uint64) {
		const digits = "0123456789abcdef"
		for i := 15; i >= 0; i-- {
			dst[i] = digits[v&0xf]
			v >>= 4
		}
	}
	hex(buf[:16], f.Hi)
	hex(buf[16:], f.Lo)
	return string(buf[:])
}

// Fingerprint returns the canonical cache identity of a query, hashing its
// content (predicate keys, class and relationship names). The engine's
// result cache uses the interned-ID variant internally; this content form is
// catalog-independent.
func Fingerprint(q *Query) QueryFingerprint { return fingerprintWith(q, nil) }

// CanonicalizeQuery returns the canonical form of q — duplicate and implied
// conjuncts dropped, equal interval bounds merged into equalities, join
// tautologies removed, all five lists sorted — together with its
// catalog-independent content fingerprint. Queries with the same canonical
// form share one result-cache slot when the engine runs with
// CacheConfig.Canonicalize. When q is already canonical it is returned
// as-is; otherwise a fresh query is built and q is never mutated.
func CanonicalizeQuery(q *Query) (*Query, QueryFingerprint) {
	cq, _ := canon.Canonical(q)
	return cq, Fingerprint(cq)
}

// Domain seeds keep the item-hash spaces of IDs, content hashes and the five
// sections from aliasing each other.
const (
	fpSeedPred    = 0x9ddfea08eb382d69
	fpSeedAttrID  = 0xc2b2ae3d27d4eb4f
	fpSeedClassID = 0x165667b19e3779f9
	fpSeedContent = 0x27d4eb2f165667c5
)

// fingerprintWith hashes a query into 128 bits, resolving symbols through
// the catalog generation's interned symbol space when one is supplied:
// predicates, attributes and classes known to the catalog hash as their
// dense IDs (one map probe on an already-built key, then integer mixing),
// everything else as content. Per-section accumulators are commutative
// (sum/xor), so list order cannot perturb the result and nothing is sorted —
// the whole computation touches no heap.
func fingerprintWith(q *Query, syms *symtab.Table) QueryFingerprint {
	var f fpFold
	var sum, xor uint64
	n := 0
	item := func(h uint64) {
		sum += h
		xor ^= h
		n++
	}
	flush := func(tag uint64) {
		f.fold(tag, sum, xor, n)
		sum, xor, n = 0, 0, 0
	}

	for _, a := range q.Project {
		item(fpAttrRef(a, syms))
	}
	flush('P')
	for _, p := range q.Joins {
		item(fpPred(p, syms))
	}
	flush('J')
	for _, p := range q.Selects {
		item(fpPred(p, syms))
	}
	flush('S')
	for _, r := range q.Relationships {
		item(fpString(r))
	}
	flush('R')
	for _, c := range q.Classes {
		if syms != nil {
			if id, ok := syms.ClassID(c); ok && int(id) < syms.NumClasses() {
				item(fpMix(fpSeedClassID ^ uint64(id)))
				continue
			}
		}
		item(fpString(c))
	}
	flush('C')
	return f.final()
}

// canonFingerprintWith hashes the *canonical form* of q — surviving joins
// and selects after reduction, plus merged bounds — without materializing a
// canonical query. Because the per-section folds are order-insensitive, the
// result is by construction identical to fingerprintWith(canon.Canonicalize(q),
// syms): canonicalization only drops, adds and sorts, and sorting is
// invisible to the fold. The reduction scratch is supplied by the caller
// (the engine pools it), so the lookup path stays allocation-free.
func canonFingerprintWith(q *Query, syms *symtab.Table, red *canon.Reduction) QueryFingerprint {
	canon.Reduce(q, red)
	var f fpFold
	var sum, xor uint64
	n := 0
	item := func(h uint64) {
		sum += h
		xor ^= h
		n++
	}
	flush := func(tag uint64) {
		f.fold(tag, sum, xor, n)
		sum, xor, n = 0, 0, 0
	}

	for _, a := range q.Project {
		item(fpAttrRef(a, syms))
	}
	flush('P')
	for i, p := range q.Joins {
		if red.JoinKeep[i] {
			item(fpPred(p, syms))
		}
	}
	flush('J')
	for i, p := range q.Selects {
		if red.SelKeep[i] {
			item(fpPred(p, syms))
		}
	}
	for i, p := range red.Merged {
		if red.SelKeep[len(q.Selects)+i] {
			item(fpPred(p, syms))
		}
	}
	flush('S')
	for _, r := range q.Relationships {
		item(fpString(r))
	}
	flush('R')
	for _, c := range q.Classes {
		if syms != nil {
			if id, ok := syms.ClassID(c); ok && int(id) < syms.NumClasses() {
				item(fpMix(fpSeedClassID ^ uint64(id)))
				continue
			}
		}
		item(fpString(c))
	}
	flush('C')
	return f.final()
}

// envelopeFingerprintWith hashes a query's subsumption envelope: projection,
// joins, relationships and classes — every part except the selective
// predicates. Queries sharing an envelope are exactly the candidates for the
// containment lookup (a cached generalization can only answer a query that
// adds selective conjuncts). The caller passes an already-canonical query,
// so no reduction runs here.
func envelopeFingerprintWith(q *Query, syms *symtab.Table) QueryFingerprint {
	var f fpFold
	var sum, xor uint64
	n := 0
	item := func(h uint64) {
		sum += h
		xor ^= h
		n++
	}
	flush := func(tag uint64) {
		f.fold(tag, sum, xor, n)
		sum, xor, n = 0, 0, 0
	}

	for _, a := range q.Project {
		item(fpAttrRef(a, syms))
	}
	flush('P')
	for _, p := range q.Joins {
		item(fpPred(p, syms))
	}
	flush('J')
	for _, r := range q.Relationships {
		item(fpString(r))
	}
	flush('R')
	for _, c := range q.Classes {
		if syms != nil {
			if id, ok := syms.ClassID(c); ok && int(id) < syms.NumClasses() {
				item(fpMix(fpSeedClassID ^ uint64(id)))
				continue
			}
		}
		item(fpString(c))
	}
	flush('C')
	return f.final()
}

// fingerprintShifted reports whether any symbol of q was interned after the
// given generation bounds — i.e. whether q's fingerprint under the patched
// symbol space differs from its fingerprint under the generation those
// bounds describe (a symbol moves from content hashing to ID hashing the
// generation it is interned; IDs themselves never move). The engine's
// surgical invalidation purges such entries: their cache key basis changed,
// so re-stamping them would just strand unreachable zombies.
func fingerprintShifted(q *Query, syms *symtab.Table, oldPreds, oldAttrs, oldClasses int) bool {
	for _, a := range q.Project {
		if id, ok := syms.AttrID(a.Class, a.Attr); ok && int(id) >= oldAttrs {
			return true
		}
	}
	for _, p := range q.Joins {
		if id, ok := syms.PredID(p); ok && int(id) >= oldPreds {
			return true
		}
	}
	for _, p := range q.Selects {
		if id, ok := syms.PredID(p); ok && int(id) >= oldPreds {
			return true
		}
	}
	for _, c := range q.Classes {
		if id, ok := syms.ClassID(c); ok && int(id) >= oldClasses {
			return true
		}
	}
	return false
}

// fpPred hashes one predicate: its dense PredID when the symbol space knows
// it, its canonical key (precomputed at construction — no rebuild) otherwise.
// The bound check pins resolution to the generation's own symbol count: a
// patch lineage shares its maps, so an old generation could otherwise see
// IDs a later one interned, making the same query's fingerprint drift
// mid-generation.
func fpPred(p Predicate, syms *symtab.Table) uint64 {
	if syms != nil {
		if id, ok := syms.PredID(p); ok && int(id) < syms.NumPreds() {
			return fpMix(fpSeedPred ^ uint64(id))
		}
	}
	return fpMix(fpString(p.Key()) ^ fpSeedContent)
}

// fpAttrRef hashes one attribute reference, by AttrID when interned (bound
// to the generation's own symbol count, as in fpPred).
func fpAttrRef(a predicate.AttrRef, syms *symtab.Table) uint64 {
	if syms != nil {
		if id, ok := syms.AttrID(a.Class, a.Attr); ok && int(id) < syms.NumAttrs() {
			return fpMix(fpSeedAttrID ^ uint64(id))
		}
	}
	h := fpString(a.Class)
	return fpMix(h ^ fpString(a.Attr))
}

// fpString is 64-bit FNV-1a, inlined to keep the path allocation-free.
func fpString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fpMix is the splitmix64 finalizer: a bijective 64-bit scrambler, so
// distinct IDs can never collide before the fold.
func fpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpFold accumulates section digests into the final 128 bits. Sections are
// folded in a fixed order with their tag and cardinality, so an empty
// section still advances the state and items can never migrate between
// sections.
type fpFold struct {
	h1, h2 uint64
}

func (f *fpFold) fold(tag, sum, xor uint64, n int) {
	x := fpMix(sum ^ fpMix(xor) ^ uint64(n)<<8 ^ tag)
	f.h1 = fpMix(f.h1 ^ x)
	f.h2 = f.h2*0x9e3779b97f4a7c15 + x
}

func (f *fpFold) final() QueryFingerprint {
	return QueryFingerprint{Hi: fpMix(f.h1 ^ f.h2), Lo: fpMix(f.h2 + 0x632be59bd9b4e019)}
}
