module sqo

go 1.23.0
