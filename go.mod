module sqo

go 1.24
