package sqo_test

import (
	"sync"
	"testing"

	"sqo"
)

// TestConcurrentOptimize: one Optimizer (with a CatalogSource and a shared
// cost model) is documented safe for concurrent use; hammer it from many
// goroutines and check the outputs stay identical. Run with -race to verify
// the absence of data races.
func TestConcurrentOptimize(t *testing.T) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	cat := sqo.LogisticsConstraints()
	model := sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)
	opt := sqo.NewOptimizer(db.Schema(), sqo.CatalogSource{Catalog: cat}, sqo.Options{Cost: model})
	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 13})
	queries, err := gen.Workload(8)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Optimized.Signature()
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				q := queries[(w+round)%len(queries)]
				res, err := opt.Optimize(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Optimized.Signature() != want[(w+round)%len(queries)] {
					errs <- errMismatch{}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "concurrent optimization produced a different result" }

// TestConcurrentExecute: executors are read-only over the database and safe
// to share.
func TestConcurrentExecute(t *testing.T) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	exec := sqo.NewExecutor(db)
	q := sqo.NewQuery("cargo", "vehicle").
		AddProject("cargo", "desc").
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddRelationship("collects")
	base, err := exec.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(base.Rows)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := exec.Execute(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != wantRows {
					errs <- errMismatch{}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
