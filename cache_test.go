package sqo

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// cacheQuery builds distinct single-class queries for cache keying; the
// cache never inspects results, so empty Result values suffice.
func cacheQuery(class string) *Query {
	return NewQuery(class).AddProject(class, "a")
}

// testKey builds an epoch-scoped cache key the way the engine does, minus
// the symbol space (content hashing).
func testKey(epoch uint64, q *Query) cacheKey {
	return cacheKey{epoch: epoch, fp: Fingerprint(q)}
}

// TestCacheCapacityOne: the degenerate LRU — every distinct put evicts the
// previous entry, refreshes never evict.
func TestCacheCapacityOne(t *testing.T) {
	c := newResultCache(1)
	ka := testKey(0, cacheQuery("a"))
	kb := testKey(0, cacheQuery("b"))
	ra, rb := &Result{}, &Result{}

	c.put(ka, ra)
	if got, ok := c.get(ka); !ok || got != ra {
		t.Fatalf("get(a) = %v, %v after put", got, ok)
	}
	c.put(kb, rb)
	if c.len() != 1 {
		t.Fatalf("len = %d at capacity 1", c.len())
	}
	if _, ok := c.get(ka); ok {
		t.Fatal("a survived eviction at capacity 1")
	}
	if got, ok := c.get(kb); !ok || got != rb {
		t.Fatalf("get(b) = %v, %v after eviction of a", got, ok)
	}
	if ev := c.evictions.Load(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// A refresh of the resident key must not evict.
	c.put(kb, ra)
	if ev := c.evictions.Load(); ev != 1 {
		t.Fatalf("evictions after refresh = %d, want still 1", ev)
	}
	if got, _ := c.get(kb); got != ra {
		t.Fatal("refresh did not replace the resident result")
	}
}

// TestCacheEpochBumpConcurrent: readers and writers race an epoch bump (the
// cache-side shape of SwapCatalog: purge + new key prefix). Old-epoch
// results must never surface under new-epoch keys, no matter how the purge
// interleaves with in-flight puts.
func TestCacheEpochBumpConcurrent(t *testing.T) {
	c := newResultCache(128)
	classes := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	oldRes, newRes := &Result{}, &Result{}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				q := cacheQuery(classes[(w+i)%len(classes)])
				c.put(testKey(0, q), oldRes)
				if res, ok := c.get(testKey(1, q)); ok && res != newRes {
					t.Errorf("old-epoch result served under new-epoch key")
					return
				}
				c.put(testKey(1, q), newRes)
				c.get(testKey(0, q))
			}
		}(w)
	}
	// The epoch bump itself, racing the traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		c.purge()
	}()
	close(start)
	wg.Wait()

	// After the dust settles a fresh purge empties it, and new-epoch keys
	// repopulate cleanly.
	c.purge()
	if c.len() != 0 {
		t.Fatalf("len = %d after purge", c.len())
	}
	q := cacheQuery("a")
	c.put(testKey(1, q), newRes)
	if res, ok := c.get(testKey(1, q)); !ok || res != newRes {
		t.Fatal("cache unusable after concurrent epoch bump")
	}
}

// TestCacheUpdateEpochFence: update re-stamps only entries of the epoch
// being replaced. An entry stamped with any other epoch is an in-flight put
// that landed after its generation died — it was never validated against
// the deltas in between, so re-stamping it would launder a stale result
// into the live epoch.
func TestCacheUpdateEpochFence(t *testing.T) {
	c := newResultCache(8)
	qa, qb, qc := cacheQuery("a"), cacheQuery("b"), cacheQuery("c")
	resA, resB, resC := &Result{}, &Result{}, &Result{}
	c.put(testKey(1, qa), resA) // current generation: must survive
	c.put(testKey(0, qb), resB) // orphan from a replaced generation: must drop
	c.put(testKey(2, qc), resC) // impossible future stamp: must drop too

	purged, survived := c.update(1, 2, func(*Result) bool { return false })
	if purged != 2 || survived != 1 {
		t.Fatalf("update purged %d / survived %d, want 2/1", purged, survived)
	}
	if res, ok := c.get(testKey(2, qa)); !ok || res != resA {
		t.Fatal("current-epoch entry was not re-stamped into the new epoch")
	}
	for _, probe := range []cacheKey{testKey(0, qb), testKey(2, qb), testKey(2, qc)} {
		if _, ok := c.get(probe); ok {
			t.Fatalf("orphan entry reachable under %+v", probe)
		}
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.len())
	}
}

// TestCacheStatsConsistency: under concurrent traffic the counters must
// reconcile exactly — every get is a hit or a miss, evictions never exceed
// inserts, and occupancy respects capacity.
func TestCacheStatsConsistency(t *testing.T) {
	const (
		capacity   = 8
		workers    = 8
		iterations = 2000
	)
	c := newResultCache(capacity)
	classes := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	res := &Result{}

	var wg sync.WaitGroup
	var gets, puts atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				key := testKey(uint64(i%3), cacheQuery(classes[(w*7+i)%len(classes)]))
				if i%2 == 0 {
					c.get(key)
					gets.Add(1)
				} else {
					c.put(key, res)
					puts.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	hits, misses, evs := c.hits.Load(), c.misses.Load(), c.evictions.Load()
	if hits+misses != gets.Load() {
		t.Fatalf("hits(%d) + misses(%d) != gets(%d)", hits, misses, gets.Load())
	}
	if evs > puts.Load() {
		t.Fatalf("evictions(%d) > puts(%d)", evs, puts.Load())
	}
	if got := c.len(); got > capacity {
		t.Fatalf("len = %d > capacity %d", got, capacity)
	}
}

// TestEngineEpochBumpUnderTraffic: the engine-level version of the epoch
// test — SwapCatalog bumps the epoch while Optimize traffic is in flight,
// and the serving counters stay coherent throughout.
func TestEngineEpochBumpUnderTraffic(t *testing.T) {
	sch := NewSchemaBuilder().
		Class("vehicle", Attribute{Name: "desc", Type: KindString}).
		Class("cargo", Attribute{Name: "desc", Type: KindString, Indexed: true}).
		Relationship("collects", "vehicle", "cargo", OneToMany).
		MustBuild()
	cat := MustCatalog(
		NewConstraint("c1",
			[]Predicate{Eq("vehicle", "desc", StringValue("refrigerated truck"))},
			[]string{"collects"},
			Eq("cargo", "desc", StringValue("frozen food"))))
	eng, err := NewEngine(sch, WithCatalog(cat), WithResultCache(16))
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery("vehicle", "cargo").
		AddProject("cargo", "desc").
		AddSelect(Eq("vehicle", "desc", StringValue("refrigerated truck"))).
		AddRelationship("collects")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := eng.Optimize(context.Background(), q); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for s := 0; s < 5; s++ {
		if err := eng.SwapCatalog(cat); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	st := eng.Stats()
	if st.Epoch != 5 || st.CatalogSwaps != 5 {
		t.Fatalf("epoch/swaps = %d/%d, want 5/5", st.Epoch, st.CatalogSwaps)
	}
	if st.Optimizations != 800 {
		t.Fatalf("optimizations = %d, want 800", st.Optimizations)
	}
	if st.CacheHits+st.CacheMisses < st.Optimizations {
		t.Fatalf("cache accounting lost traffic: hits=%d misses=%d opts=%d",
			st.CacheHits, st.CacheMisses, st.Optimizations)
	}
}
