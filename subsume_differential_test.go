package sqo_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sqo"
)

// TestSubsumeDifferential is the correctness acceptance bar of the
// containment-aware cache: every result the engine serves from the cache —
// exact, canonical (permuted / duplicated conjuncts collapsed to one
// fingerprint) or subsumption-derived (cached generalization plus residual
// conjuncts) — must be byte-identical to a cold optimization of the same
// canonical query, down to tags, trace, dependency set and per-query stats.
// (Stats.Ops and durations are exempt by design: a derived result keeps the
// generalization's table-operation count, since the derivation performs no
// table work.) It sweeps the paper's logistics world plus scaled worlds at
// 10² and 10³ constraints, re-verifying across incremental catalog updates so
// re-stamped cache survivors are held to the same bar in the new epoch; well
// over a thousand cache-served comparisons in total.
func TestSubsumeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep")
	}
	var canonTotal, subTotal int64

	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	cat := sqo.LogisticsConstraints()
	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 43})
	workload, err := gen.Workload(240)
	if err != nil {
		t.Fatal(err)
	}
	ch, sh := runSubsumeDifferential(t, "logistics", db.Schema(), cat, workload, 211)
	canonTotal += ch
	subTotal += sh

	for _, n := range []int{100, 1000} {
		label := fmt.Sprintf("scaled-%d", n)
		sch, scat, err := sqo.GenerateScaledWorld(sqo.ScaledConfig{Constraints: n, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		qs, err := sqo.ScaledWorkload(sch, scat, 400, 17)
		if err != nil {
			t.Fatal(err)
		}
		ch, sh := runSubsumeDifferential(t, label, sch, scat, qs, int64(31*n))
		canonTotal += ch
		subTotal += sh
	}

	if canonTotal+subTotal < 1000 {
		t.Fatalf("only %d canonical + %d subsumption hits verified, want >= 1000 combined",
			canonTotal, subTotal)
	}
	if subTotal == 0 {
		t.Fatal("no subsumption hits verified across any world")
	}
	t.Logf("subsume differential: %d canonical hits, %d subsumption hits verified", canonTotal, subTotal)
}

// runSubsumeDifferential drives one world: a subsuming engine against a cold
// (uncached) reference engine over the same catalog, across the original
// catalog plus two incremental update epochs (a removal, then the re-add).
// Returns the world's canonical- and subsumption-hit counts.
func runSubsumeDifferential(t *testing.T, label string, sch *sqo.Schema, cat *sqo.Catalog, qs []*sqo.Query, seed int64) (canonHits, subHits int64) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))

	eng, err := sqo.NewEngine(sch, sqo.WithCatalog(cat),
		sqo.WithCache(sqo.CacheConfig{Capacity: 4096, Subsume: true}))
	if err != nil {
		t.Fatal(err)
	}

	var removed *sqo.Constraint
	for round := 0; round < 3; round++ {
		// Rounds 1 and 2 bump the epoch through the incremental path:
		// remove one live constraint, then add it back — cache survivors
		// are re-stamped and must keep serving sound answers.
		if round > 0 {
			d := sqo.NewCatalogDelta()
			if round == 1 {
				live := eng.Catalog().All()
				if len(live) > 1 {
					removed = live[rng.Intn(len(live))]
					d.RemoveConstraints(removed.ID)
				}
			} else if removed != nil {
				d.AddConstraints(removed)
			}
			if d.Empty() {
				continue
			}
			rep, err := eng.UpdateCatalog(d)
			if err != nil {
				t.Fatalf("%s round %d: %v", label, round, err)
			}
			if !rep.Incremental {
				t.Fatalf("%s round %d: expected the incremental path, got %+v", label, round, rep)
			}
		}

		// Cold reference over the engine's current declared catalog; the
		// mention set gates which extra conjuncts are provably inert under
		// *this* epoch's constraints.
		view := eng.Catalog()
		// RecordDeps so the cold results carry dependency sets to compare
		// against (the cached engine records them for invalidation anyway).
		ref, err := sqo.NewEngine(sch, sqo.WithCatalog(view),
			sqo.WithOptimizerOptions(sqo.Options{RecordDeps: true}))
		if err != nil {
			t.Fatalf("%s round %d: reference engine: %v", label, round, err)
		}
		mentioned := mentionedAttrs(view)

		for qi, q := range qs {
			rlabel := fmt.Sprintf("%s round %d q%d", label, round, qi)

			// Prime: the canonical form of q lands in the cache (cold on
			// first sight, a hit on repeats and across surviving epochs).
			base, err := eng.Optimize(ctx, q)
			if err != nil {
				t.Fatalf("%s: prime: %v\n%s", rlabel, err, q)
			}

			// Canonical variant: permuted lists, one duplicated conjunct.
			// Must be served from the cache and match cold optimization of
			// the canonical query.
			v := permuteDup(q, rng)
			before := eng.Stats().Cache
			got, err := eng.Optimize(ctx, v)
			if err != nil {
				t.Fatalf("%s: canonical variant: %v\n%s", rlabel, err, v)
			}
			after := eng.Stats().Cache
			if after.Hits() != before.Hits()+1 {
				t.Fatalf("%s: canonical variant missed the cache (%+v -> %+v)\n%s",
					rlabel, before, after, v)
			}
			cq, _ := sqo.CanonicalizeQuery(v)
			want, err := ref.Optimize(ctx, cq)
			if err != nil {
				t.Fatalf("%s: cold reference: %v\n%s", rlabel, err, cq)
			}
			diffSubsume(t, rlabel+" canonical", got, want, cq, round == 0)

			// Subsumption variant: the query plus one provably inert extra
			// conjunct. Usually served from the cache (derived or, on
			// repeats, exact); when the envelope's generalization bucket
			// outgrows the bounded probe the engine may legitimately fall
			// back to cold optimization — either way the answer must match
			// cold optimization byte for byte.
			if extra, ok := inertExtra(sch, mentioned, q, base); ok {
				vs := permuteDup(q, rng)
				vs.Selects = append(vs.Selects, extra)
				got, err := eng.Optimize(ctx, vs)
				if err != nil {
					t.Fatalf("%s: subsumption variant: %v\n%s", rlabel, err, vs)
				}
				cqs, _ := sqo.CanonicalizeQuery(vs)
				want, err := ref.Optimize(ctx, cqs)
				if err != nil {
					t.Fatalf("%s: cold reference: %v\n%s", rlabel, err, cqs)
				}
				diffSubsume(t, rlabel+" subsumed", got, want, cqs, round == 0)
			}

			// Adversarial variant (sampled): an extra conjunct on an
			// attribute some constraint mentions is outside the provable
			// class — the engine must fall back to cold optimization, never
			// serve it by derivation, and still produce the cold answer.
			if extra, ok := riskyExtra(sch, mentioned, q, base); ok && rng.Intn(4) == 0 {
				va := cloneQuery(q)
				va.Selects = append(va.Selects, extra)
				before := eng.Stats().Cache
				got, err := eng.Optimize(ctx, va)
				if err != nil {
					t.Fatalf("%s: adversarial variant: %v\n%s", rlabel, err, va)
				}
				after := eng.Stats().Cache
				if after.SubsumptionHits != before.SubsumptionHits {
					t.Fatalf("%s: constraint-mentioned extra served by subsumption\n%s", rlabel, va)
				}
				cqa, _ := sqo.CanonicalizeQuery(va)
				want, err := ref.Optimize(ctx, cqa)
				if err != nil {
					t.Fatalf("%s: cold reference: %v\n%s", rlabel, err, cqa)
				}
				diffSubsume(t, rlabel+" adversarial", got, want, cqa, round == 0)
			}
		}
	}

	st := eng.Stats().Cache
	if st.CanonicalHits == 0 {
		t.Fatalf("%s: no canonical hits recorded: %+v", label, st)
	}
	if st.SubsumptionHits == 0 {
		t.Fatalf("%s: no subsumption hits recorded: %+v", label, st)
	}
	if st.SubsumptionHits > 0 && st.ResidualPredicates < st.SubsumptionHits {
		t.Fatalf("%s: residual accounting short: %+v", label, st)
	}
	t.Logf("%s: cache %+v", label, st)
	return st.CanonicalHits, st.SubsumptionHits
}

// diffSubsume fails on any observable divergence between a cache-served and a
// cold result for the same canonical query — everything except Ops and
// durations, which a derivation intentionally does not replicate.
// Dependency sets are compared only when sameOrdinals is true: deps live in
// the ordinal space of the catalog generation that produced the result, and
// after an incremental update a cache survivor legitimately keeps its old
// generation's ordinals while a from-scratch engine assigns fresh dense ones.
func diffSubsume(t *testing.T, label string, got, want *sqo.Result, cq *sqo.Query, sameOrdinals bool) {
	t.Helper()
	if g, w := got.Original.String(), cq.String(); g != w {
		t.Fatalf("%s: served Original is not the canonical query\nserved: %s\ncanon:  %s", label, g, w)
	}
	if g, w := got.Optimized.String(), want.Optimized.String(); g != w {
		t.Fatalf("%s: outputs diverge\nquery:  %s\nserved: %s\ncold:   %s", label, cq, g, w)
	}
	if got.EmptyResult != want.EmptyResult {
		t.Fatalf("%s: EmptyResult diverges for %s", label, cq)
	}
	if !reflect.DeepEqual(got.TaggedPredicates(), want.TaggedPredicates()) {
		t.Fatalf("%s: tagged predicates diverge for %s\nserved: %v\ncold:   %v",
			label, cq, got.TaggedPredicates(), want.TaggedPredicates())
	}
	if !reflect.DeepEqual(got.Trace, want.Trace) {
		t.Fatalf("%s: traces diverge for %s\nserved: %v\ncold:   %v", label, cq, got.Trace, want.Trace)
	}
	if sameOrdinals && !reflect.DeepEqual(got.Deps(), want.Deps()) {
		t.Fatalf("%s: dependency sets diverge for %s\nserved: %v\ncold:   %v",
			label, cq, got.Deps(), want.Deps())
	}
	if got.Stats.Fires != want.Stats.Fires ||
		got.Stats.RelevantConstraints != want.Stats.RelevantConstraints ||
		got.Stats.Predicates != want.Stats.Predicates {
		t.Fatalf("%s: stats diverge for %s: fires %d/%d relevant %d/%d predicates %d/%d",
			label, cq, got.Stats.Fires, want.Stats.Fires,
			got.Stats.RelevantConstraints, want.Stats.RelevantConstraints,
			got.Stats.Predicates, want.Stats.Predicates)
	}
}

// mentionedAttrs collects every attribute any catalog constraint mentions —
// antecedents and consequent, both sides of joins. An extra conjunct on any
// other attribute can never interact with the transformation table.
func mentionedAttrs(cat *sqo.Catalog) map[sqo.AttrRef]struct{} {
	m := make(map[sqo.AttrRef]struct{})
	note := func(p sqo.Predicate) {
		m[p.Left] = struct{}{}
		if p.IsJoin() {
			m[p.RightAttr] = struct{}{}
		}
	}
	for _, c := range cat.All() {
		for _, p := range c.Antecedents {
			note(p)
		}
		note(c.Consequent)
	}
	return m
}

// inertExtra finds a selective conjunct provably inert for q under the
// current catalog: its attribute is mentioned by no constraint and no
// predicate of q, and its class survived q's optimization.
func inertExtra(sch *sqo.Schema, mentioned map[sqo.AttrRef]struct{}, q *sqo.Query, base *sqo.Result) (sqo.Predicate, bool) {
	for _, class := range q.Classes {
		if !base.Optimized.HasClass(class) {
			continue
		}
		for _, at := range sch.EffectiveAttributes(class) {
			ref := sqo.AttrRef{Class: class, Attr: at.Name}
			if _, hit := mentioned[ref]; hit {
				continue
			}
			if queryUses(q, ref) {
				continue
			}
			v, ok := probeValue(at.Type)
			if !ok {
				continue
			}
			return sqo.Sel(class, at.Name, sqo.OpEQ, v), true
		}
	}
	return sqo.Predicate{}, false
}

// riskyExtra finds a selective conjunct on a constraint-mentioned attribute
// of one of q's surviving classes that q itself does not use — a valid query
// the subsumption path must refuse to derive.
func riskyExtra(sch *sqo.Schema, mentioned map[sqo.AttrRef]struct{}, q *sqo.Query, base *sqo.Result) (sqo.Predicate, bool) {
	for ref := range mentioned {
		if !base.Optimized.HasClass(ref.Class) || !q.HasClass(ref.Class) {
			continue
		}
		if queryUses(q, ref) {
			continue
		}
		at, ok := sch.Attr(ref.Class, ref.Attr)
		if !ok {
			continue // consequent on a class the constraint reaches via a link
		}
		v, ok := probeValue(at.Type)
		if !ok {
			continue
		}
		p := sqo.Sel(ref.Class, ref.Attr, sqo.OpEQ, v)
		if p.Validate(sch) != nil {
			continue
		}
		return p, true
	}
	return sqo.Predicate{}, false
}

// queryUses reports whether any predicate of q touches ref.
func queryUses(q *sqo.Query, ref sqo.AttrRef) bool {
	for _, p := range q.Selects {
		if p.Left == ref {
			return true
		}
	}
	for _, p := range q.Joins {
		if p.Left == ref || p.RightAttr == ref {
			return true
		}
	}
	return false
}

// probeValue builds a constant of the attribute's type.
func probeValue(k sqo.Kind) (sqo.Value, bool) {
	switch k {
	case sqo.KindInt:
		return sqo.IntValue(7), true
	case sqo.KindFloat:
		return sqo.FloatValue(7.5), true
	case sqo.KindString:
		return sqo.StringValue("zz-probe"), true
	case sqo.KindBool:
		return sqo.BoolValue(true), true
	default:
		return sqo.Value{}, false
	}
}

// cloneQuery deep-copies a query's five lists.
func cloneQuery(q *sqo.Query) *sqo.Query {
	return &sqo.Query{
		Project:       append([]sqo.AttrRef(nil), q.Project...),
		Joins:         append([]sqo.Predicate(nil), q.Joins...),
		Selects:       append([]sqo.Predicate(nil), q.Selects...),
		Relationships: append([]string(nil), q.Relationships...),
		Classes:       append([]string(nil), q.Classes...),
	}
}

// permuteDup clones q, shuffles every list, and duplicates one conjunct —
// a syntactic near-duplicate that canonicalization must collapse onto q's
// cache slot.
func permuteDup(q *sqo.Query, rng *rand.Rand) *sqo.Query {
	v := cloneQuery(q)
	if len(v.Selects) > 0 {
		v.Selects = append(v.Selects, v.Selects[rng.Intn(len(v.Selects))])
	} else if len(v.Joins) > 0 {
		v.Joins = append(v.Joins, v.Joins[rng.Intn(len(v.Joins))])
	}
	rng.Shuffle(len(v.Project), func(i, j int) { v.Project[i], v.Project[j] = v.Project[j], v.Project[i] })
	rng.Shuffle(len(v.Joins), func(i, j int) { v.Joins[i], v.Joins[j] = v.Joins[j], v.Joins[i] })
	rng.Shuffle(len(v.Selects), func(i, j int) { v.Selects[i], v.Selects[j] = v.Selects[j], v.Selects[i] })
	rng.Shuffle(len(v.Relationships), func(i, j int) {
		v.Relationships[i], v.Relationships[j] = v.Relationships[j], v.Relationships[i]
	})
	rng.Shuffle(len(v.Classes), func(i, j int) { v.Classes[i], v.Classes[j] = v.Classes[j], v.Classes[i] })
	return v
}
