package sqo

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// This file is the engine's end-to-end execution surface (WithDatabase):
// optimize-then-execute, pushing the transformed query into the metered
// storage layer so the paper's I/O payoff is measured on every request, not
// estimated by the cost model.

// errNoDatabase is returned by the execution paths of an engine built
// without WithDatabase.
var errNoDatabase = errors.New("sqo: engine has no database; construct with WithDatabase to execute queries")

// CanExecute reports whether the engine was built with WithDatabase and can
// serve the end-to-end execution paths.
func (e *Engine) CanExecute() bool { return e.runner != nil }

// Execute optimizes q (cache-aware, exactly like Optimize) and runs the
// transformed query end-to-end against the engine's database: indexable
// predicates become index probes, the rest are filtered during the scan
// before a tuple is materialized, joins run as pointer traversals, and a
// query the optimizer proved empty never touches storage at all. The
// returned Execution carries the rows, the access plan, the physical meter
// and the optimization that produced the executed query. Cancellation and
// deadlines on ctx are honored inside both the transformation loop and the
// execution loops.
func (e *Engine) Execute(ctx context.Context, q *Query) (*Execution, error) {
	if e.runner == nil {
		return nil, errNoDatabase
	}
	res, err := e.Optimize(ctx, q)
	if err != nil {
		return nil, err
	}
	out, err := e.executeGuarded(q, func() (*Execution, error) {
		return e.runner.ExecuteOptimized(ctx, res)
	})
	if err != nil {
		return nil, err
	}
	e.recordExecution(out)
	return out, nil
}

// ExecuteRaw runs q end-to-end without semantic optimization — the opt-off
// baseline every measured speedup compares against. The run still plans
// greedily and still uses indexes the raw query's own predicates allow; only
// the semantic transformation is withheld.
func (e *Engine) ExecuteRaw(ctx context.Context, q *Query) (*Execution, error) {
	if e.runner == nil {
		return nil, errNoDatabase
	}
	if q == nil {
		return nil, errors.New("sqo: ExecuteRaw requires a query")
	}
	out, err := e.executeGuarded(q, func() (*Execution, error) {
		return e.runner.Execute(ctx, q)
	})
	if err != nil {
		return nil, err
	}
	e.recordExecution(out)
	return out, nil
}

// ExecuteBatch executes every query of a workload concurrently on the
// engine's worker pool (WithWorkers), optimize-then-execute per query,
// returning results positionally aligned with qs. The first failing query
// cancels the rest; on any error the partial results are discarded and only
// the error is returned — the ExecuteBatch analogue of OptimizeBatch.
func (e *Engine) ExecuteBatch(ctx context.Context, qs []*Query) ([]*Execution, error) {
	if e.runner == nil {
		return nil, errNoDatabase
	}
	if len(qs) == 0 {
		return nil, nil
	}
	workers := min(e.cfg.workers, len(qs))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Execution, len(qs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out, err := e.Execute(ctx, qs[i])
				if err != nil {
					fail(fmt.Errorf("query %d: %w", i, err))
					return
				}
				results[i] = out
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// recordExecution folds one execution's meter into the engine's cumulative
// serving counters (EngineStats, GET /stats).
func (e *Engine) recordExecution(out *Execution) {
	e.executions.Add(1)
	e.execTuples.Add(out.TuplesScanned)
	e.execPages.Add(out.Meter.PagesScanned)
	e.execProbes.Add(out.Meter.IndexProbes)
	e.execFetches.Add(out.Meter.ObjectFetches)
}
