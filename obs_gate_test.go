package sqo_test

// Acceptance gates for the observability layer: tracing must never tax the
// untraced hot path (zero allocations), and a fully sampled trace must cost
// less than 5% of an uncached optimization. The serving-layer coverage gate
// (span sum vs end-to-end time) lives in internal/server.

import (
	"context"
	"sort"
	"testing"
	"time"

	"sqo"
	"sqo/internal/datagen"
	"sqo/internal/obs"
)

// TestTracingDisabledZeroAllocs: a plain context carries no trace, so the
// instrumented engine path must not allocate for observability — the
// FromContext walk plus nil-safe span methods cost nothing on the heap.
// (TestCachedOptimizeZeroAllocs gates the same path; this one pins the
// property the obs layer is responsible for, on both cache configurations.)
func TestTracingDisabledZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the non-race CI job runs this")
	}
	ctx := context.Background()
	q := figure23Query()
	for _, tc := range []struct {
		name string
		opts []sqo.EngineOption
	}{
		{"exact-cache", []sqo.EngineOption{sqo.WithCatalog(datagen.Constraints()), sqo.WithResultCache(64)}},
		{"canonical-cache", []sqo.EngineOption{sqo.WithCatalog(datagen.Constraints()),
			sqo.WithCache(sqo.CacheConfig{Capacity: 64, Subsume: true})}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := sqo.NewEngine(datagen.Schema(), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Optimize(ctx, q); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(500, func() {
				if _, err := eng.Optimize(ctx, q); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("untraced cached Optimize = %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestTracedCachedOptimizeZeroAllocs: even WITH a live recorder in the
// context, a cache-hit optimize allocates nothing — spans land in the
// trace's fixed array.
func TestTracedCachedOptimizeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the non-race CI job runs this")
	}
	eng, err := sqo.NewEngine(datagen.Schema(),
		sqo.WithCatalog(datagen.Constraints()), sqo.WithResultCache(64))
	if err != nil {
		t.Fatal(err)
	}
	q := figure23Query()
	if _, err := eng.Optimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTestTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := eng.Optimize(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	// The trace saturates at MaxSpans and keeps counting overflow; no spill
	// to the heap either way.
	if allocs != 0 {
		t.Errorf("traced cached Optimize = %.1f allocs/op, want 0", allocs)
	}
}

// TestSampledTracingOverhead: with every request traced (the worst case —
// production samples 1-in-N), the BenchmarkOptimize pipeline — one full
// uncached optimization over scan-backed retrieval — slows by less than
// 5%. The recorder's cost is a fixed ~300ns of lifecycle (pool, context
// value, two clock reads, ring publish), so the gate measures it against
// the same pipeline the benchmark tracks rather than the ~4×-faster
// indexed fast path, where any fixed cost is proportionally inflated and
// a real serving request amortizes it over HTTP + parse anyway. Medians
// of interleaved trials damp scheduler noise; a failed attempt
// re-measures before failing the build.
func TestSampledTracingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts timing; the non-race CI job runs this")
	}
	eng, err := sqo.NewEngine(datagen.Schema(), sqo.WithCatalog(datagen.Constraints()),
		sqo.WithConstraintIndex(false), sqo.WithSymbolInterning(false))
	if err != nil {
		t.Fatal(err) // no cache: every call runs the full pipeline
	}
	q := figure23Query()
	plain := context.Background()
	// Fresh recorder per op, exactly as the serving layer does — a reused
	// trace would saturate at MaxSpans and stop paying the recording cost.
	tc := obs.NewTracer(obs.TracerConfig{SampleN: 1})
	clock := time.Now() // defeat dead-store elimination on the base path
	run := func(traced bool, iters int) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			ctx := plain
			var tr *obs.Trace
			// Both paths read the clock once per op — the serving layer
			// takes a start timestamp for latency metrics on every request,
			// traced or not, so that read is not tracing-attributable.
			at := time.Now()
			if traced {
				tr = tc.Sample(at)
				ctx = obs.WithTrace(ctx, tr)
			} else {
				clock = at
			}
			if _, err := eng.Optimize(ctx, q); err != nil {
				t.Fatal(err)
			}
			tc.Finish(tr)
		}
		return time.Since(start)
	}
	_ = clock
	run(true, 50) // warm both paths
	run(false, 50)

	// Paired design: each trial times both paths back to back, so slow
	// drift (frequency scaling, background load) hits both sides of a
	// pair equally and cancels in the difference; the median over pairs
	// shrugs off the occasional preempted trial. Order alternates within
	// the pair so even fast drift cannot systematically favor one side.
	const trials, iters = 21, 300
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base := make([]time.Duration, 0, trials)
		delta := make([]time.Duration, 0, trials)
		for i := 0; i < trials; i++ {
			var b, in time.Duration
			if i%2 == 0 {
				b = run(false, iters)
				in = run(true, iters)
			} else {
				in = run(true, iters)
				b = run(false, iters)
			}
			base = append(base, b)
			delta = append(delta, in-b)
		}
		ratio = 1 + float64(median(delta))/float64(median(base))
		if ratio < 1.05 {
			return
		}
	}
	t.Errorf("100%%-sampled tracing overhead = %.1f%%, budget 5%%", (ratio-1)*100)
}
