package sqo_test

// One benchmark per table and figure of the paper's evaluation (Section 4),
// plus the ablations indexed in DESIGN.md. `go test -bench=. -benchmem`
// regenerates everything; cmd/sqobench prints the same experiments as
// paper-style tables.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sqo"
	"sqo/internal/bench"
	"sqo/internal/datagen"
	"sqo/internal/index"
)

// quickFigure23 is the optimizer invocation benchmarked throughout; the
// query is the shared Figure 2.3 literal (figure23Query, allocs_test.go).
func quickFigure23(b *testing.B) (*sqo.Optimizer, *sqo.Query) {
	b.Helper()
	sch := datagen.Schema()
	cat := datagen.Constraints()
	opt := sqo.NewOptimizer(sch, sqo.CatalogSource{Catalog: cat}, sqo.Options{})
	return opt, figure23Query()
}

// BenchmarkOptimize is the headline number: one full optimization of the
// paper's Figure 2.3 query against the logistics constraint catalog.
func BenchmarkOptimize(b *testing.B) {
	opt, q := quickFigure23(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeAllocs tracks the allocation profile of the serving hot
// path on the paper's 17-rule world (the CI bench gate fails on allocs/op
// regressions): a cache-hit Engine.Optimize must stay at 0 allocs/op, the
// uncached path within its fixed budget, and the interning ablation shows
// what the string-space fallback costs.
func BenchmarkOptimizeAllocs(b *testing.B) {
	sch := datagen.Schema()
	cat := datagen.Constraints()
	ctx := context.Background()
	q := figure23Query()

	b.Run("cached", func(b *testing.B) {
		eng, err := sqo.NewEngine(sch, sqo.WithCatalog(cat), sqo.WithResultCache(64))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Optimize(ctx, q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		eng, err := sqo.NewEngine(sch, sqo.WithCatalog(cat))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached-nointern", func(b *testing.B) {
		eng, err := sqo.NewEngine(sch, sqo.WithCatalog(cat), sqo.WithSymbolInterning(false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig41_TransformationTime regenerates Figure 4.1: transformation
// time as a function of query classes and relevant constraints. Each
// sub-benchmark is one curve point.
func BenchmarkFig41_TransformationTime(b *testing.B) {
	for _, classes := range []int{1, 3, 5} {
		for _, constraints := range []int{1, 5, 9} {
			b.Run(benchName(classes, constraints), func(b *testing.B) {
				opt, q := bench.Fig41Cell(classes, constraints)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := opt.Optimize(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchName(classes, constraints int) string {
	return "classes=" + string(rune('0'+classes)) + "/constraints=" + string(rune('0'+constraints))
}

// BenchmarkTable41_Generate regenerates the Table 4.1 database instances.
func BenchmarkTable41_Generate(b *testing.B) {
	for _, cfg := range sqo.DBConfigs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sqo.GenerateDatabase(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable42_WorkloadPair measures the Table 4.2 unit of work on each
// database: optimize one workload query and execute both versions.
func BenchmarkTable42_WorkloadPair(b *testing.B) {
	w1, err := bench.NewWorld(sqo.DB1())
	if err != nil {
		b.Fatal(err)
	}
	workload, err := w1.Workload(8, 41)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range sqo.DBConfigs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			w, err := bench.NewWorld(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := workload[i%len(workload)]
				res, err := w.Optimize.Optimize(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Exec.Execute(q); err != nil {
					b.Fatal(err)
				}
				if _, err := w.Exec.Execute(res.Optimized); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComplexity_MN checks the O(m·n) transformation bound by timing
// growing constraint chains.
func BenchmarkComplexity_MN(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		n := n
		b.Run("n="+itoa(n), func(b *testing.B) {
			opt, q := bench.ComplexityCell(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupingPolicies measures constraint retrieval under the three
// grouping policies (ablation A).
func BenchmarkGroupingPolicies(b *testing.B) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		b.Fatal(err)
	}
	cat := sqo.LogisticsConstraints()
	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 41})
	workload, err := gen.Workload(10)
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []sqo.GroupPolicy{sqo.GroupArbitrary, sqo.GroupLeastAccessed, sqo.GroupEvenSpread} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			stats := sqo.NewAccessStats()
			store := sqo.NewGroupStore(cat, policy, stats)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Retrieve(workload[i%len(workload)])
			}
		})
	}
}

// BenchmarkClosureMaterialize measures precompile-time closure cost
// (ablation B's one-off expense).
func BenchmarkClosureMaterialize(b *testing.B) {
	cat := sqo.LogisticsConstraints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := sqo.MaterializeClosure(cat, sqo.ClosureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudget measures budgeted optimization (ablation C).
func BenchmarkBudget(b *testing.B) {
	for _, budget := range []int{1, 2, 0} {
		budget := budget
		name := "budget=" + itoa(budget)
		if budget == 0 {
			name = "budget=inf"
		}
		b.Run(name, func(b *testing.B) {
			sch := datagen.Schema()
			cat := datagen.Constraints()
			opt := sqo.NewOptimizer(sch, sqo.CatalogSource{Catalog: cat},
				sqo.Options{Budget: budget, UsePriorities: true})
			q := figure23Query()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineVsCore compares optimization costs of the three
// optimizers (ablation D) on the Figure 2.3 query.
func BenchmarkBaselineVsCore(b *testing.B) {
	rows, err := bench.OptimizerComparisonCell()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		r := r
		b.Run(r.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecute measures raw executor throughput on DB4 (the substrate's
// own cost, independent of optimization).
func BenchmarkExecute(b *testing.B) {
	db, err := sqo.GenerateDatabase(sqo.DB4())
	if err != nil {
		b.Fatal(err)
	}
	exec := sqo.NewExecutor(db)
	q := sqo.NewQuery("cargo", "vehicle").
		AddProject("cargo", "desc").
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddRelationship("collects")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteEndToEnd measures the serving hot path the CI bench gate
// tracks: one workload query through the engine's optimize-then-execute
// pipeline (opt) versus the opt-off baseline (raw) on the DB1 logistics
// instance, result cache on so repeated optimizations amortize the way a
// served workload would.
func BenchmarkExecuteEndToEnd(b *testing.B) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		b.Fatal(err)
	}
	cat := sqo.LogisticsConstraints()
	eng, err := sqo.NewEngine(db.Schema(),
		sqo.WithCatalog(cat),
		sqo.WithCostModel(sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)),
		sqo.WithDatabase(db),
		sqo.WithResultCache(128))
	if err != nil {
		b.Fatal(err)
	}
	gen := sqo.NewWorkloadGenerator(db, cat, sqo.WorkloadOptions{Seed: 41})
	workload, err := gen.Workload(20)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("opt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Execute(ctx, workload[i%len(workload)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.ExecuteRaw(ctx, workload[i%len(workload)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// scaledWorld caches the large-catalog evaluation worlds across benchmark
// iterations and -count re-runs.
type scaledWorldCell struct {
	sch     *sqo.Schema
	cat     *sqo.Catalog
	queries []*sqo.Query
}

var (
	scaledWorldMu    sync.Mutex
	scaledWorldCache = map[int]*scaledWorldCell{}
)

func scaledWorld(b *testing.B, constraints int) *scaledWorldCell {
	b.Helper()
	scaledWorldMu.Lock()
	defer scaledWorldMu.Unlock()
	if w, ok := scaledWorldCache[constraints]; ok {
		return w
	}
	sch, cat, err := sqo.GenerateScaledWorld(sqo.ScaledConfig{Constraints: constraints, Seed: int64(constraints)})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := sqo.ScaledWorkload(sch, cat, 64, 31)
	if err != nil {
		b.Fatal(err)
	}
	w := &scaledWorldCell{sch: sch, cat: cat, queries: queries}
	scaledWorldCache[constraints] = w
	return w
}

var catalogScales = []struct {
	name string
	n    int
}{{"1e2", 100}, {"1e3", 1000}, {"1e4", 10000}}

// BenchmarkIndexLookup measures applicable-constraint retrieval alone —
// inverted index versus linear catalog scan — at catalog sizes 10²/10³/10⁴.
// The CI bench gate tracks these.
func BenchmarkIndexLookup(b *testing.B) {
	for _, scale := range catalogScales {
		w := scaledWorld(b, scale.n)
		ix := sqo.NewConstraintIndex(w.cat)
		scan := index.Scan{Catalog: w.cat}
		b.Run("catalog="+scale.name+"/impl=index", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Relevant(w.queries[i%len(w.queries)])
			}
		})
		b.Run("catalog="+scale.name+"/impl=scan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scan.Relevant(w.queries[i%len(w.queries)])
			}
		})
	}
}

// BenchmarkOptimizeLargeCatalog measures full semantic optimization through
// the engine at catalog sizes 10²/10³/10⁴, with the inverted index (the
// default) against the scan baseline in the same run. The CI bench gate
// tracks these; the acceptance bar is source=index beating source=scan by
// ≥5x at 1e4 (see TestIndexSublinearSpeedup).
func BenchmarkOptimizeLargeCatalog(b *testing.B) {
	ctx := context.Background()
	for _, scale := range catalogScales {
		w := scaledWorld(b, scale.n)
		for _, impl := range []struct {
			name string
			opts []sqo.EngineOption
		}{
			{"index", nil},
			{"scan", []sqo.EngineOption{sqo.WithConstraintIndex(false)}},
		} {
			e, err := sqo.NewEngine(w.sch, append([]sqo.EngineOption{sqo.WithCatalog(w.cat)}, impl.opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("catalog="+scale.name+"/source="+impl.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := e.Optimize(ctx, w.queries[i%len(w.queries)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkCacheSubsumption prices the four ways the containment-aware cache
// can serve one query: an exact repeat, a syntactic near-duplicate collapsed
// by canonicalization, a contained query derived from a cached generalization
// plus a residual conjunct, and the cold optimization everything else pays.
// The world is the scaled 10²-constraint catalog, where cold optimization
// carries a realistic O(m·n) table cost against which the O(result-size)
// derivation is measured. The bench gate watches the ordering:
// exact ≈ canonical ≪ subsumed < cold.
func BenchmarkCacheSubsumption(b *testing.B) {
	sch, cat, err := sqo.GenerateScaledWorld(sqo.ScaledConfig{Constraints: 100, Seed: 100})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := sqo.ScaledWorkload(sch, cat, 200, 17)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	newEng := func(b *testing.B, cc sqo.CacheConfig) *sqo.Engine {
		b.Helper()
		opts := []sqo.EngineOption{sqo.WithCatalog(cat)}
		if cc.Capacity > 0 {
			opts = append(opts, sqo.WithCache(cc))
		}
		eng, err := sqo.NewEngine(sch, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	subCfg := sqo.CacheConfig{Capacity: 4096, Subsume: true}

	// The generalization g: the first workload query with selective
	// conjuncts and an attribute no constraint mentions — the carrier of
	// the inert residual conjunct. Constants vary per iteration so every
	// specialized query is a fresh cache key; a pool of 2× cache capacity
	// cycled through a 4096-entry LRU guarantees each reuse has been
	// evicted, so the subsumed and cold paths really pay per iteration.
	// Of the eligible queries, g is the one whose cold optimization works
	// hardest (most relevant constraints): that is the workload slice where
	// answering from the cache pays, and what the subsumed-vs-cold spread
	// measures.
	warm := newEng(b, subCfg)
	mentioned := mentionedAttrs(cat)
	var g *sqo.Query
	var probe sqo.Predicate
	bestRelevant := -1
	for _, q := range qs {
		base, err := warm.Optimize(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if p, ok := inertExtra(sch, mentioned, q, base); ok && len(q.Selects) > 0 &&
			base.Stats.RelevantConstraints > bestRelevant {
			g, probe, bestRelevant = q, p, base.Stats.RelevantConstraints
		}
	}
	if g == nil {
		b.Fatal("no workload query with a constraint-free attribute found")
	}
	at, _ := sch.Attr(probe.Left.Class, probe.Left.Attr)
	specs := make([]*sqo.Query, 2*subCfg.Capacity)
	for i := range specs {
		var v sqo.Value
		switch at.Type {
		case sqo.KindInt:
			v = sqo.IntValue(int64(i))
		case sqo.KindFloat:
			v = sqo.FloatValue(float64(i) + 0.5)
		default:
			v = sqo.StringValue(fmt.Sprintf("probe-%d", i))
		}
		q := cloneQuery(g)
		q.Selects = append(q.Selects, sqo.Sel(probe.Left.Class, probe.Left.Attr, sqo.OpEQ, v))
		specs[i] = q
	}

	b.Run("exact", func(b *testing.B) {
		eng := newEng(b, subCfg)
		if _, err := eng.Optimize(ctx, g); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("canonical", func(b *testing.B) {
		eng := newEng(b, subCfg)
		if _, err := eng.Optimize(ctx, g); err != nil {
			b.Fatal(err)
		}
		variant := cloneQuery(g)
		variant.Selects = append(variant.Selects, variant.Selects[0])
		variant.Selects[0], variant.Selects[1] = variant.Selects[1], variant.Selects[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(ctx, variant); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("subsumed", func(b *testing.B) {
		eng := newEng(b, subCfg)
		if _, err := eng.Optimize(ctx, g); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i&1023 == 0 {
				// Keep the generalization hot so LRU eviction cannot
				// drop it mid-run (an exact hit, ~ns against the µs
				// derivation).
				if _, err := eng.Optimize(ctx, g); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := eng.Optimize(ctx, specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := eng.Stats().Cache
		if st.SubsumptionHits == 0 {
			b.Fatalf("no subsumption hits recorded: %+v", st)
		}
	})
	b.Run("cold", func(b *testing.B) {
		eng := newEng(b, sqo.CacheConfig{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Optimize(ctx, specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
