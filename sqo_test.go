package sqo_test

import (
	"reflect"
	"testing"

	"sqo"
)

// figure23 builds the paper's running example through the public API only.
func figure23(t *testing.T) (*sqo.Schema, *sqo.Catalog, *sqo.Query) {
	t.Helper()
	sch, err := sqo.NewSchemaBuilder().
		Class("supplier",
			sqo.Attribute{Name: "name", Type: sqo.KindString, Indexed: true},
			sqo.Attribute{Name: "address", Type: sqo.KindString}).
		Class("cargo",
			sqo.Attribute{Name: "desc", Type: sqo.KindString},
			sqo.Attribute{Name: "quantity", Type: sqo.KindInt}).
		Class("vehicle",
			sqo.Attribute{Name: "vehicle#", Type: sqo.KindString, Indexed: true},
			sqo.Attribute{Name: "desc", Type: sqo.KindString}).
		Relationship("supplies", "supplier", "cargo", sqo.OneToMany).
		Relationship("collects", "vehicle", "cargo", sqo.OneToMany).
		Build()
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	cat := sqo.MustCatalog(
		sqo.NewConstraint("c1",
			[]sqo.Predicate{sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))},
			[]string{"collects"},
			sqo.Eq("cargo", "desc", sqo.StringValue("frozen food"))),
		sqo.NewConstraint("c2",
			[]sqo.Predicate{sqo.Eq("cargo", "desc", sqo.StringValue("frozen food"))},
			[]string{"supplies"},
			sqo.Eq("supplier", "name", sqo.StringValue("SFI"))),
	)
	q := sqo.NewQuery("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddProject("cargo", "quantity").
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddSelect(sqo.Eq("supplier", "name", sqo.StringValue("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")
	return sch, cat, q
}

// TestQuickstartFigure23 reproduces the paper's worked example end to end
// through the facade, with the default (heuristic) cost model.
func TestQuickstartFigure23(t *testing.T) {
	sch, cat, q := figure23(t)
	opt := sqo.NewOptimizer(sch, sqo.CatalogSource{Catalog: cat}, sqo.Options{})
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	got := res.Optimized
	if got.HasClass("supplier") || !got.HasClass("cargo") || !got.HasClass("vehicle") {
		t.Errorf("classes wrong: %s", got)
	}
	want := map[string]bool{
		sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck")).Key(): true,
		sqo.Eq("cargo", "desc", sqo.StringValue("frozen food")).Key():          true,
	}
	if len(got.Selects) != 2 {
		t.Fatalf("selects = %v", got.Selects)
	}
	for _, p := range got.Selects {
		if !want[p.Key()] {
			t.Errorf("unexpected predicate %s", p)
		}
	}
}

func TestParseQueryFacade(t *testing.T) {
	q, err := sqo.ParseQuery(`(SELECT {cargo.desc} {} {cargo.desc = "frozen food"} {} {cargo})`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if len(q.Selects) != 1 || q.Classes[0] != "cargo" {
		t.Errorf("parsed: %s", q)
	}
	if _, err := sqo.ParseQuery("nonsense"); err == nil {
		t.Error("bad input should fail")
	}
}

func TestValuesFacade(t *testing.T) {
	if sqo.StringValue("x").Kind() != sqo.KindString ||
		sqo.IntValue(1).Kind() != sqo.KindInt ||
		sqo.FloatValue(1.5).Kind() != sqo.KindFloat ||
		sqo.BoolValue(true).Kind() != sqo.KindBool {
		t.Error("value constructors broken")
	}
	v, err := sqo.ParseValue("42")
	if err != nil || v.IntVal() != 42 {
		t.Errorf("ParseValue: %v, %v", v, err)
	}
}

func TestClosureFacade(t *testing.T) {
	cat := sqo.MustCatalog(
		sqo.NewConstraint("k1",
			[]sqo.Predicate{sqo.Eq("t", "a", sqo.IntValue(1))}, nil,
			sqo.Eq("t", "b", sqo.IntValue(2))),
		sqo.NewConstraint("k2",
			[]sqo.Predicate{sqo.Eq("t", "b", sqo.IntValue(2))}, nil,
			sqo.Eq("t", "c", sqo.IntValue(3))),
	)
	closed, pool, stats, err := sqo.MaterializeClosure(cat, sqo.ClosureOptions{})
	if err != nil {
		t.Fatalf("MaterializeClosure: %v", err)
	}
	if stats.Derived != 1 || closed.Len() != 3 || pool.Len() == 0 {
		t.Errorf("closure stats: %+v, len=%d", stats, closed.Len())
	}
}

func TestLogisticsWorldFacade(t *testing.T) {
	cfg := sqo.DB1()
	db, err := sqo.GenerateDatabase(cfg)
	if err != nil {
		t.Fatalf("GenerateDatabase: %v", err)
	}
	if db.Count("cargo") != cfg.Cargos {
		t.Errorf("cargo count = %d", db.Count("cargo"))
	}
	if got := len(sqo.DBConfigs()); got != 4 {
		t.Errorf("DBConfigs = %d", got)
	}
	paths := sqo.EnumerateSchemaPaths(sqo.LogisticsSchema())
	if len(paths) < 30 {
		t.Errorf("paths = %d", len(paths))
	}
	gen := sqo.NewWorkloadGenerator(db, sqo.LogisticsConstraints(), sqo.WorkloadOptions{Seed: 3})
	qs, err := gen.Workload(5)
	if err != nil || len(qs) != 5 {
		t.Fatalf("Workload: %v, %d", err, len(qs))
	}
	if id, err := sqo.CheckCatalog(db, sqo.LogisticsConstraints()); err != nil || id != "" {
		t.Errorf("CheckCatalog: %q, %v", id, err)
	}
}

func TestGroupingFacade(t *testing.T) {
	cat := sqo.LogisticsConstraints()
	stats := sqo.NewAccessStats()
	store := sqo.NewGroupStore(cat, sqo.GroupLeastAccessed, stats)
	q := sqo.NewQuery("cargo", "vehicle").AddRelationship("collects")
	rel := store.Retrieve(q)
	if len(rel) == 0 {
		t.Error("expected relevant constraints for cargo/vehicle")
	}
	for _, c := range rel {
		if !c.RelevantTo(q) {
			t.Errorf("irrelevant constraint retrieved: %s", c)
		}
	}
}

func TestExecutorFacade(t *testing.T) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	exec := sqo.NewExecutor(db)
	q := sqo.NewQuery("cargo").
		AddProject("cargo", "desc").
		AddSelect(sqo.Eq("cargo", "desc", sqo.StringValue("frozen food")))
	res, err := exec.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Error("expected frozen food cargos")
	}
	if res.Cost(sqo.DefaultWeights) <= 0 {
		t.Error("execution should cost something")
	}
}

// TestSchemaTextRoundTripFacade: the logistics schema survives render/parse.
func TestSchemaTextRoundTripFacade(t *testing.T) {
	text := sqo.RenderSchema(sqo.LogisticsSchema())
	back, err := sqo.ParseSchema(text)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if sqo.RenderSchema(back) != text {
		t.Error("schema text round trip not a fixpoint")
	}
}

// TestDatabaseDumpRoundTripFacade: a generated database survives dump/load
// with identical query results.
func TestDatabaseDumpRoundTripFacade(t *testing.T) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	data, err := sqo.DumpDatabase(db)
	if err != nil {
		t.Fatalf("DumpDatabase: %v", err)
	}
	back, err := sqo.LoadDatabase(data)
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	q := sqo.NewQuery("supplier", "cargo").
		AddProject("cargo", "desc").
		AddProject("cargo", "quantity").
		AddSelect(sqo.Eq("supplier", "name", sqo.StringValue("SFI"))).
		AddRelationship("supplies")
	a, err := sqo.NewExecutor(db).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sqo.NewExecutor(back).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca) == 0 || len(ca) != len(cb) {
		t.Fatalf("rows %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("row %d differs after reload", i)
		}
	}
	// The reloaded instance still satisfies every constraint.
	if id, err := sqo.CheckCatalog(back, sqo.LogisticsConstraints()); err != nil || id != "" {
		t.Errorf("constraints on reloaded db: %q, %v", id, err)
	}
}

// TestConstraintCatalogTextRoundTrip: the whole logistics catalog survives
// render -> parse with identical constraint identities.
func TestConstraintCatalogTextRoundTrip(t *testing.T) {
	cat := sqo.LogisticsConstraints()
	var text string
	for _, c := range cat.All() {
		text += c.String() + "\n"
	}
	back, err := sqo.ParseConstraintCatalog(text)
	if err != nil {
		t.Fatalf("ParseConstraintCatalog: %v", err)
	}
	if back.Len() != cat.Len() {
		t.Fatalf("round trip: %d vs %d constraints", back.Len(), cat.Len())
	}
	for _, c := range cat.All() {
		got := back.Get(c.ID)
		if got == nil {
			t.Errorf("constraint %s lost", c.ID)
			continue
		}
		if got.Key() != c.Key() {
			t.Errorf("constraint %s changed identity:\n in: %s\nout: %s", c.ID, c, got)
		}
	}
	if err := back.Validate(sqo.LogisticsSchema()); err != nil {
		t.Errorf("re-parsed catalog invalid: %v", err)
	}
}

func TestDeriveRulesFacade(t *testing.T) {
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	derived, err := sqo.DeriveRules(db, sqo.DeriveOptions{Bounds: true})
	if err != nil {
		t.Fatalf("DeriveRules: %v", err)
	}
	if derived.Len() == 0 {
		t.Fatal("expected derived rules")
	}
	for _, c := range derived.All() {
		if !c.StateDependent {
			t.Errorf("derived rule %s not marked state-dependent", c.ID)
		}
	}
	merged, err := sqo.MergeCatalogs(sqo.LogisticsConstraints(), derived)
	if err != nil {
		t.Fatalf("MergeCatalogs: %v", err)
	}
	if merged.Len() < sqo.LogisticsConstraints().Len() {
		t.Error("merge lost declared constraints")
	}
	// The merged catalog still holds on the source database.
	if id, err := sqo.CheckCatalog(db, merged); err != nil || id != "" {
		t.Errorf("merged catalog violated: %q, %v", id, err)
	}
}

// TestOptimizeThenExecuteDeterministic: the full public pipeline is
// reproducible run to run.
func TestOptimizeThenExecuteDeterministic(t *testing.T) {
	run := func() []string {
		db, err := sqo.GenerateDatabase(sqo.DB1())
		if err != nil {
			t.Fatal(err)
		}
		model := sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)
		opt := sqo.NewOptimizer(db.Schema(),
			sqo.CatalogSource{Catalog: sqo.LogisticsConstraints()},
			sqo.Options{Cost: model})
		gen := sqo.NewWorkloadGenerator(db, sqo.LogisticsConstraints(), sqo.WorkloadOptions{Seed: 5})
		qs, err := gen.Workload(5)
		if err != nil {
			t.Fatal(err)
		}
		exec := sqo.NewExecutor(db)
		var out []string
		for _, q := range qs {
			res, err := opt.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := exec.Execute(res.Optimized)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Optimized.String())
			out = append(out, rows.Canonical()...)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("pipeline not deterministic")
	}
}
