package sqo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sqo/internal/core"
	"sqo/internal/index"
	"sqo/internal/symtab"
)

// Engine is the long-lived, concurrency-safe front door to the optimizer.
// Where NewOptimizer gives a bare one-shot algorithm object, NewEngine wires
// the whole serving pipeline once at construction — schema, constraint
// catalog, optional transitive-closure materialization, optional grouped
// retrieval, cost model — and then serves Optimize and OptimizeBatch from
// any number of goroutines, amortizing that setup across heavy repeated
// traffic.
//
// Three production concerns ride on top of the paper's algorithm:
//
//   - Context awareness: Optimize honors cancellation and deadlines inside
//     the transformation loop.
//   - Result caching: with WithResultCache, queries are keyed by a canonical
//     fingerprint (normalized predicate ordering) into an LRU cache, so a
//     repeated workload pays the O(m·n) table work once per distinct query.
//   - Hot catalog swap: SwapCatalog atomically replaces the declared
//     constraint set — rebuilding closure and groups off to the side and
//     flipping an atomic pointer — without blocking in-flight optimizations.
//
// On a cache hit the same *Result is returned to every caller; treat results
// as read-only. All accessor methods on Result are safe to share.
type Engine struct {
	schema *Schema
	cfg    engineConfig
	state  atomic.Pointer[engineState]
	cache  *resultCache // nil when caching is disabled

	swapMu sync.Mutex // serializes SwapCatalog (readers never take it)

	optimizations atomic.Int64
	swaps         atomic.Int64
}

// engineState is everything derived from one catalog generation. It is
// immutable after construction and replaced wholesale by SwapCatalog, so a
// query can never observe the catalog of one generation paired with the
// index (or groups, closure, symbol space) of another.
type engineState struct {
	declared *Catalog         // as supplied; nil for a custom ConstraintSource
	active   *Catalog         // after closure materialization; what retrieval serves
	index    *ConstraintIndex // inverted retrieval index over active; nil when disabled
	syms     *symtab.Table    // interned symbol space of active; nil when interning is off
	closure  ClosureStats
	opt      *Optimizer
	epoch    uint64
}

// NewEngine builds an engine over the schema. Exactly one of WithCatalog and
// WithConstraintSource must be supplied; everything else has defaults (all
// rules, heuristic cost model, no closure, ungrouped retrieval, no cache,
// GOMAXPROCS batch workers).
func NewEngine(s *Schema, opts ...EngineOption) (*Engine, error) {
	if s == nil {
		return nil, errors.New("sqo: NewEngine requires a schema")
	}
	cfg := engineConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.catalog == nil && cfg.source == nil:
		return nil, errors.New("sqo: NewEngine requires WithCatalog or WithConstraintSource")
	case cfg.catalog != nil && cfg.source != nil:
		return nil, errors.New("sqo: WithCatalog and WithConstraintSource are mutually exclusive")
	}
	e := &Engine{schema: s, cfg: cfg}
	if cfg.cacheSize > 0 {
		e.cache = newResultCache(cfg.cacheSize)
	}
	st, err := e.buildState(cfg.catalog, 0)
	if err != nil {
		return nil, err
	}
	e.state.Store(st)
	return e, nil
}

// buildState materializes one catalog generation: validate, close, compile
// the interned symbol space, index/group, and construct the optimizer over
// it. The symbol space is compiled exactly once per generation and shared by
// the index, the optimizer's transformation tables and the result cache's
// key hashing.
func (e *Engine) buildState(cat *Catalog, epoch uint64) (*engineState, error) {
	coreOpts := e.cfg.core
	if coreOpts.Cost == nil {
		coreOpts.Cost = HeuristicCost{Schema: e.schema}
	}
	coreOpts.DisableInterning = coreOpts.DisableInterning || e.cfg.noIntern
	st := &engineState{declared: cat, epoch: epoch}
	src := e.cfg.source
	if cat != nil {
		if err := cat.Validate(e.schema); err != nil {
			return nil, fmt.Errorf("sqo: catalog does not fit the schema: %w", err)
		}
		st.active = cat
		if e.cfg.closure {
			closed, _, stats, err := MaterializeClosure(cat, e.cfg.closureOpts)
			if err != nil {
				return nil, fmt.Errorf("sqo: closure materialization: %w", err)
			}
			st.active, st.closure = closed, stats
		}
		if !coreOpts.DisableInterning {
			st.syms = symtab.Compile(e.schema, st.active.All())
		}
		switch {
		case e.cfg.grouping:
			src = NewGroupStore(st.active, e.cfg.policy, NewAccessStats())
		case !e.cfg.noIndex:
			if st.syms != nil {
				st.index = index.BuildWith(st.active.All(), st.syms)
			} else {
				st.index = index.New(st.active)
			}
			src = st.index
		default:
			src = CatalogSource{Catalog: st.active}
		}
	}
	st.opt = core.NewOptimizerSymbols(e.schema, src, st.syms, coreOpts)
	// Align to the optimizer's resolution (a custom ConstraintSource may
	// supply its own symbol space) so cache keys always hash in the
	// generation the transformation tables run in.
	st.syms = st.opt.Symbols()
	return st, nil
}

// Optimize runs the semantic optimization of q against the current catalog
// generation, serving from the result cache when possible. It is safe to
// call from any number of goroutines. Cancellation and deadlines on ctx are
// honored inside the transformation loop; on cancellation the error is
// ctx.Err() and no result is cached.
func (e *Engine) Optimize(ctx context.Context, q *Query) (*Result, error) {
	if q == nil {
		return nil, errors.New("sqo: Optimize requires a query")
	}
	st := e.state.Load()
	var key cacheKey
	if e.cache != nil {
		key = cacheKeyFor(st, q)
		if res, ok := e.cache.get(key); ok {
			e.optimizations.Add(1)
			return res, nil
		}
	}
	// Apply the default deadline only past the cache: a hit never consults
	// the context, so it should not pay for a timer either.
	if e.cfg.defaultDeadline > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.cfg.defaultDeadline)
			defer cancel()
		}
	}
	res, err := st.opt.OptimizeContext(ctx, q)
	if err != nil {
		return nil, err
	}
	e.optimizations.Add(1)
	if e.cache != nil {
		e.cache.put(key, res)
	}
	return res, nil
}

// OptimizeBatch optimizes every query of a workload concurrently on the
// engine's worker pool (WithWorkers), returning results positionally aligned
// with qs. The first failing query cancels the rest; on any error the
// partial results are discarded and only the error is returned.
func (e *Engine) OptimizeBatch(ctx context.Context, qs []*Query) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	workers := min(e.cfg.workers, len(qs))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(qs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := e.Optimize(ctx, qs[i])
				if err != nil {
					fail(fmt.Errorf("query %d: %w", i, err))
					return
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		// No worker failed, yet the feed may have been cut short by the
		// parent context.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// OptimizeEach optimizes every query of qs concurrently on the engine's
// worker pool, like OptimizeBatch, but isolates failures per query: the
// returned slices are positionally aligned with qs, and a query that fails
// records its error in errs[i] without cancelling its siblings. This is the
// contract a serving layer needs when it coalesces requests from unrelated
// clients into one dispatch — one malformed query must not fail the whole
// micro-batch. Cancelling ctx still stops the call as a whole; queries not
// yet started when ctx is done report ctx.Err().
func (e *Engine) OptimizeEach(ctx context.Context, qs []*Query) ([]*Result, []error) {
	if len(qs) == 0 {
		return nil, nil
	}
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	workers := min(e.cfg.workers, len(qs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = e.Optimize(ctx, qs[i])
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Mark the queries the cut-short feed never handed out.
		for i := range qs {
			if results[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return results, errs
}

// SwapCatalog atomically replaces the engine's declared constraint catalog:
// the transitive closure and retrieval groups are rebuilt off to the side
// under the engine's construction-time configuration, then published with a
// single pointer store. In-flight optimizations finish against the old
// generation; the result cache is invalidated so no stale optimization is
// ever served. On error the engine keeps serving the old catalog.
//
// This is the knob for derived state rules (DeriveRules): merge them in when
// mined, swap the declared set back in when the data shifts.
func (e *Engine) SwapCatalog(cat *Catalog) error {
	if cat == nil {
		return errors.New("sqo: SwapCatalog requires a catalog")
	}
	if e.cfg.source != nil {
		return errors.New("sqo: engine was built with WithConstraintSource; SwapCatalog requires WithCatalog")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	st, err := e.buildState(cat, e.state.Load().epoch+1)
	if err != nil {
		return err
	}
	e.state.Store(st)
	e.swaps.Add(1)
	if e.cache != nil {
		e.cache.purge()
	}
	return nil
}

// Schema returns the schema the engine was built over.
func (e *Engine) Schema() *Schema { return e.schema }

// Workers returns the resolved width of the batch worker pool — WithWorkers,
// or GOMAXPROCS at construction when unset. Serving layers use it to size
// their own dispatch structures (e.g. a micro-batch that exceeds it only
// queues inside the engine).
func (e *Engine) Workers() int { return e.cfg.workers }

// Catalog returns the currently declared catalog (before closure), or nil
// when the engine was built from a custom ConstraintSource.
func (e *Engine) Catalog() *Catalog { return e.state.Load().declared }

// EngineStats is a point-in-time snapshot of an engine's serving counters.
type EngineStats struct {
	// Optimizations counts Optimize calls served, cache hits included.
	Optimizations int64
	// CacheHits / CacheMisses / CacheEvictions describe the result cache;
	// all zero when caching is disabled.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// CacheSize and CacheCapacity are the current and maximum number of
	// cached results.
	CacheSize     int
	CacheCapacity int
	// CatalogSwaps counts successful SwapCatalog calls; Epoch is the
	// current catalog generation (0 = as constructed).
	CatalogSwaps int64
	Epoch        uint64
	// Constraints is the size of the active catalog (after closure);
	// DerivedConstraints is how many of those closure materialization
	// added. Both zero for a custom ConstraintSource.
	Constraints        int
	DerivedConstraints int
	// ConstraintIndex describes the active inverted retrieval index;
	// zero when the index is disabled or superseded (WithGrouping,
	// WithConstraintSource).
	ConstraintIndex IndexStats
}

// Stats returns a snapshot of the engine's counters. Safe to call
// concurrently with serving traffic.
func (e *Engine) Stats() EngineStats {
	st := e.state.Load()
	s := EngineStats{
		Optimizations: e.optimizations.Load(),
		CatalogSwaps:  e.swaps.Load(),
		Epoch:         st.epoch,
	}
	if st.active != nil {
		s.Constraints = st.active.Len()
		s.DerivedConstraints = st.closure.Derived
	}
	if st.index != nil {
		s.ConstraintIndex = st.index.Stats()
	}
	if e.cache != nil {
		s.CacheHits = e.cache.hits.Load()
		s.CacheMisses = e.cache.misses.Load()
		s.CacheEvictions = e.cache.evictions.Load()
		s.CacheSize = e.cache.len()
		s.CacheCapacity = e.cache.cap
	}
	return s
}
