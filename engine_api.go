package sqo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sqo/internal/canon"
	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/delta"
	"sqo/internal/exec"
	"sqo/internal/faultinject"
	"sqo/internal/index"
	"sqo/internal/obs"
	"sqo/internal/predicate"
	"sqo/internal/resilience"
	"sqo/internal/symtab"
)

// Engine is the long-lived, concurrency-safe front door to the optimizer.
// Where NewOptimizer gives a bare one-shot algorithm object, NewEngine wires
// the whole serving pipeline once at construction — schema, constraint
// catalog, optional transitive-closure materialization, optional grouped
// retrieval, cost model — and then serves Optimize and OptimizeBatch from
// any number of goroutines, amortizing that setup across heavy repeated
// traffic.
//
// Three production concerns ride on top of the paper's algorithm:
//
//   - Context awareness: Optimize honors cancellation and deadlines inside
//     the transformation loop.
//   - Result caching: with WithCache, queries are keyed by fingerprint into
//     an LRU cache — optionally by *canonical* fingerprint (duplicates
//     dropped, dominated bounds pruned, lists sorted), and optionally with a
//     subsumption lookup that answers a contained query from a cached
//     generalization plus a residual pass — so a near-duplicate workload
//     pays the O(m·n) table work once per distinct canonical query.
//   - Hot catalog swap: SwapCatalog atomically replaces the declared
//     constraint set — rebuilding closure and groups off to the side and
//     flipping an atomic pointer — without blocking in-flight optimizations.
//
// On a cache hit the same *Result is returned to every caller; treat results
// as read-only. All accessor methods on Result are safe to share.
type Engine struct {
	schema *Schema
	cfg    engineConfig
	state  atomic.Pointer[engineState]
	cache  *resultCache   // nil when caching is disabled
	runner *exec.Executor // nil without WithDatabase

	// subsume is true when the containment lookup is active: cache
	// configured with CacheConfig.Subsume, engine owns its catalog, and
	// the cost model is the query-insensitive heuristic (under a
	// statistics model formulation depends on the whole query, so a
	// derived result could diverge from cold optimization).
	subsume bool

	// degrade is the serving degradation level (resilience.Level*), set by
	// an overloaded serving layer and read once per Optimize. Every level is
	// answer-preserving: it gates which optimizations of the *serving path*
	// run (subsumption probing, canonical cache keys), never which semantic
	// transformations apply — see SetDegradation.
	degrade atomic.Int32

	// quar short-circuits queries whose optimization panicked repeatedly
	// (fingerprint-keyed), so one reproducible crash input cannot take the
	// node down panic by panic.
	quar *resilience.Quarantine

	// faults injects optimizer/executor panics under SQO_FAULTS; nil in
	// production.
	faults *faultinject.Injector

	panicsRecovered atomic.Int64

	swapMu sync.Mutex // serializes SwapCatalog/UpdateCatalog (readers never take it)

	// Mutation-side lineage state of the incremental update path, guarded
	// by swapMu: the append-only ordinal space bookkeeping and the index's
	// re-homing frequencies. nil until the first UpdateCatalog after a
	// construction or full swap.
	mut    *delta.State
	idxLin *index.Lineage

	optimizations atomic.Int64
	swaps         atomic.Int64
	updates       atomic.Int64
	cachePurged   atomic.Int64
	cacheSurvived atomic.Int64

	// End-to-end execution counters (WithDatabase): executions served and
	// the cumulative physical work their meters recorded.
	executions  atomic.Int64
	execTuples  atomic.Int64
	execPages   atomic.Int64
	execProbes  atomic.Int64
	execFetches atomic.Int64
}

// engineState is everything derived from one catalog generation. It is
// immutable after construction and replaced wholesale by SwapCatalog (full
// rebuild) or UpdateCatalog (structural patch), so a query can never observe
// the catalog of one generation paired with the index (or groups, closure,
// symbol space) of another.
type engineState struct {
	declared *Catalog         // as supplied; nil for a custom ConstraintSource or a delta generation
	active   *Catalog         // after closure materialization; what retrieval serves
	index    *ConstraintIndex // inverted retrieval index over active; nil when disabled
	syms     *symtab.Table    // interned symbol space of active; nil when interning is off
	closure  ClosureStats
	opt      *Optimizer
	epoch    uint64

	// gen is the catalog view of a delta-built generation (declared and
	// active are nil then; the incremental path implies no closure). The
	// *Catalog form is materialized lazily, only when someone asks.
	gen     *delta.Gen
	catOnce sync.Once
	lazyCat *Catalog

	// mentioned is the lazily-built set of every (class, attr) any live
	// constraint mentions — antecedents and consequents, selective or
	// join. The subsumption check uses it to prove a residual conjunct
	// inert: a predicate on an unmentioned attribute can never fire, be
	// implied by, or contradict anything the transformation table does.
	mentionOnce sync.Once
	mentioned   map[predicate.AttrRef]struct{}
}

// mentionSet returns the generation's constraint-mentioned attribute set,
// building it on first use.
func (st *engineState) mentionSet() map[predicate.AttrRef]struct{} {
	st.mentionOnce.Do(func() {
		var all []*Constraint
		switch {
		case st.active != nil:
			all = st.active.All()
		case st.gen != nil:
			all = st.gen.Constraints()
		}
		m := make(map[predicate.AttrRef]struct{}, len(all)*2)
		note := func(p predicate.Predicate) {
			m[p.Left] = struct{}{}
			if p.IsJoin() {
				m[p.RightAttr] = struct{}{}
			}
		}
		for _, c := range all {
			for _, p := range c.Antecedents {
				note(p)
			}
			note(c.Consequent)
		}
		st.mentioned = m
	})
	return st.mentioned
}

// catalogView returns the generation's declared catalog, materializing it
// on first use for delta-built generations.
func (st *engineState) catalogView() *Catalog {
	if st.declared != nil || st.gen == nil {
		return st.declared
	}
	st.catOnce.Do(func() {
		cat, err := constraint.NewCatalog(st.gen.Constraints()...)
		if err != nil {
			// Delta validation guarantees unique IDs among live
			// constraints; failing here means the lineage bookkeeping is
			// corrupt, which must surface at its source, not as a nil
			// catalog somewhere downstream.
			panic("sqo: delta generation failed to materialize: " + err.Error())
		}
		st.lazyCat = cat
	})
	return st.lazyCat
}

// constraintCount returns the size of the generation's active catalog.
func (st *engineState) constraintCount() int {
	switch {
	case st.active != nil:
		return st.active.Len()
	case st.gen != nil:
		return st.gen.Live()
	default:
		return 0
	}
}

// NewEngine builds an engine over the schema. Exactly one of WithCatalog and
// WithConstraintSource must be supplied; everything else has defaults (all
// rules, heuristic cost model, no closure, ungrouped retrieval, no cache,
// GOMAXPROCS batch workers).
func NewEngine(s *Schema, opts ...EngineOption) (*Engine, error) {
	if s == nil {
		return nil, errors.New("sqo: NewEngine requires a schema")
	}
	cfg := engineConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.snap != nil && (cfg.catalog != nil || cfg.source != nil):
		return nil, errors.New("sqo: WithSnapshot is mutually exclusive with WithCatalog and WithConstraintSource")
	case cfg.catalog == nil && cfg.source == nil && cfg.snap == nil:
		return nil, errors.New("sqo: NewEngine requires WithCatalog, WithConstraintSource or WithSnapshot")
	case cfg.catalog != nil && cfg.source != nil:
		return nil, errors.New("sqo: WithCatalog and WithConstraintSource are mutually exclusive")
	}
	if cfg.cache.Subsume {
		cfg.cache.Canonicalize = true
	}
	e := &Engine{schema: s, cfg: cfg}
	e.quar = resilience.NewQuarantine(resilience.QuarantineConfig{})
	faults, err := faultinject.FromEnv()
	if err != nil {
		return nil, err
	}
	if faults.Active("optimize.") || faults.Active("execute.") {
		e.faults = faults
	}
	if cfg.cache.Capacity > 0 {
		e.cache = newResultCache(cfg.cache.Capacity)
		if cfg.cache.Subsume && cfg.source == nil {
			// The containment derivation replays formulation decisions;
			// that is only sound when those decisions cannot depend on
			// the extra conjuncts, i.e. under the query-insensitive
			// heuristic cost model.
			if _, heuristic := e.effectiveCoreOpts().Cost.(HeuristicCost); heuristic {
				e.subsume = true
				e.cache.enableSubsumption()
			}
		}
	}
	if cfg.db != nil {
		if faults.Active("storage.") {
			e.runner = exec.NewWith(cfg.db, faultinject.WrapDB(cfg.db, faults))
		} else {
			e.runner = exec.New(cfg.db)
		}
	}
	if cfg.snap != nil {
		// Warm restore: adopt the snapshot's compiled generation instead of
		// building one. Snapshots capture exactly the default retrieval
		// stack, so configurations that would serve anything else must
		// cold-build instead.
		if cfg.closure || cfg.grouping || cfg.noIndex || cfg.noIntern || cfg.core.DisableInterning {
			return nil, errors.New("sqo: WithSnapshot requires the default retrieval stack (no closure or grouping, index and interning on)")
		}
		if h := schemaHash(s); h != cfg.snap.info.SchemaHash {
			return nil, fmt.Errorf("sqo: snapshot was compiled against schema %#016x, engine schema is %#016x", cfg.snap.info.SchemaHash, h)
		}
		e.state.Store(e.restoreState(cfg.snap.model, 0))
		return e, nil
	}
	st, err := e.buildState(cfg.catalog, 0)
	if err != nil {
		return nil, err
	}
	e.state.Store(st)
	return e, nil
}

// effectiveCoreOpts resolves the engine's construction-time optimizer
// options into the form every generation is built with — swap-built
// (buildState) and delta-built (UpdateCatalog) generations must configure
// their optimizers identically.
func (e *Engine) effectiveCoreOpts() Options {
	opts := e.cfg.core
	if opts.Cost == nil {
		opts.Cost = HeuristicCost{Schema: e.schema}
	}
	opts.DisableInterning = opts.DisableInterning || e.cfg.noIntern
	// Dependency sets exist to invalidate cached results surgically; with
	// no cache they would be a wasted allocation per optimization.
	opts.RecordDeps = opts.RecordDeps || e.cache != nil
	return opts
}

// buildState materializes one catalog generation: validate, close, compile
// the interned symbol space, index/group, and construct the optimizer over
// it. The symbol space is compiled exactly once per generation and shared by
// the index, the optimizer's transformation tables and the result cache's
// key hashing.
func (e *Engine) buildState(cat *Catalog, epoch uint64) (*engineState, error) {
	coreOpts := e.effectiveCoreOpts()
	st := &engineState{declared: cat, epoch: epoch}
	src := e.cfg.source
	if cat != nil {
		if err := cat.Validate(e.schema); err != nil {
			return nil, fmt.Errorf("sqo: catalog does not fit the schema: %w", err)
		}
		st.active = cat
		if e.cfg.closure {
			closed, _, stats, err := MaterializeClosure(cat, e.cfg.closureOpts)
			if err != nil {
				return nil, fmt.Errorf("sqo: closure materialization: %w", err)
			}
			st.active, st.closure = closed, stats
		}
		if !coreOpts.DisableInterning {
			st.syms = symtab.Compile(e.schema, st.active.All())
		}
		switch {
		case e.cfg.grouping:
			src = NewGroupStore(st.active, e.cfg.policy, NewAccessStats())
		case !e.cfg.noIndex:
			if st.syms != nil {
				st.index = index.BuildWith(st.active.All(), st.syms)
			} else {
				st.index = index.New(st.active)
			}
			src = st.index
		default:
			src = CatalogSource{Catalog: st.active}
		}
	}
	st.opt = core.NewOptimizerSymbols(e.schema, src, st.syms, coreOpts)
	// Align to the optimizer's resolution (a custom ConstraintSource may
	// supply its own symbol space) so cache keys always hash in the
	// generation the transformation tables run in.
	st.syms = st.opt.Symbols()
	return st, nil
}

// Optimize runs the semantic optimization of q against the current catalog
// generation, serving from the result cache when possible. It is safe to
// call from any number of goroutines. Cancellation and deadlines on ctx are
// honored inside the transformation loop; on cancellation the error is
// ctx.Err() and no result is cached.
func (e *Engine) Optimize(ctx context.Context, q *Query) (*Result, error) {
	if q == nil {
		return nil, errors.New("sqo: Optimize requires a query")
	}
	st := e.state.Load()
	// The degradation level gates serving-path optimizations only. Each gate
	// is answer-preserving: disabling subsumption just skips a derivation
	// shortcut, and disabling canonicalization keys the cache by the raw
	// fingerprint — a raw-keyed and a canonical-keyed entry can only collide
	// when the query already is its own canonical form, in which case they
	// are the same bytes (see canonFingerprintWith).
	level := int(e.degrade.Load())
	// tr is this request's span recorder (nil for the overwhelming
	// majority of traffic); every use below is nil-safe and free of both
	// allocations and clock reads when disabled.
	tr := obs.FromContext(ctx)
	var key cacheKey
	canonMode := e.cache != nil && e.cfg.cache.Canonicalize && level < resilience.LevelNoCanon
	var red *canon.Reduction
	if e.cache != nil {
		at := tr.StartSpan()
		if canonMode {
			// Key by the canonical form, computed streaming over the
			// pooled reduction scratch — near-duplicates (duplicated,
			// implied or mergeable conjuncts) collapse to one key
			// without materializing a query on the hit path.
			red = reductionPool.Get().(*canon.Reduction)
			key = cacheKey{epoch: st.epoch, fp: canonFingerprintWith(q, st.syms, red)}
			tr.EndSpan(obs.StageCanon, at)
			at = tr.StartSpan()
		} else {
			key = cacheKeyFor(st, q)
		}
		tr.SetFingerprint(key.fp.Hi, key.fp.Lo)
		res, ok := e.cache.get(key)
		tr.EndSpan(obs.StageCacheProbe, at)
		if ok {
			if canonMode {
				if red.Changed {
					e.cache.canonHits.Add(1)
				}
				reductionPool.Put(red)
			}
			e.optimizations.Add(1)
			return res, nil
		}
	}
	// Poison-query short circuit: a fingerprint that panicked the optimizer
	// repeatedly is refused here, before any transformation work. The check
	// sits past the cache lookup on purpose — the 0-alloc hit path never
	// pays for it, and a poison query cannot be cached (it never produced a
	// result).
	qk := e.quarKey(st, key, q)
	tr.SetFingerprint(qk[0], qk[1])
	if e.quar.Blocked(qk) {
		if canonMode {
			reductionPool.Put(red)
		}
		return nil, &QuarantinedError{Fingerprint: QueryFingerprint{Hi: qk[0], Lo: qk[1]}}
	}
	runQ := q
	if canonMode {
		// Miss: optimize the canonical form, so the cached result is
		// byte-identical to a cold optimization of that form no matter
		// which syntactic variant arrived first.
		at := tr.StartSpan()
		runQ = canon.Canonicalize(q, red)
		reductionPool.Put(red)
		tr.EndSpan(obs.StageCanon, at)
		if e.subsume && level < resilience.LevelNoSubsume {
			at = tr.StartSpan()
			res := e.trySubsume(st, key, runQ)
			tr.EndSpan(obs.StageSubsume, at)
			if res != nil {
				e.optimizations.Add(1)
				return res, nil
			}
		}
	}
	// Apply the default deadline only past the cache: a hit never consults
	// the context, so it should not pay for a timer either.
	if e.cfg.defaultDeadline > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.cfg.defaultDeadline)
			defer cancel()
		}
	}
	res, err := e.optimizeGuarded(ctx, st, runQ, qk)
	if err != nil {
		return nil, err
	}
	e.optimizations.Add(1)
	if e.cache != nil {
		if e.subsume && canonMode {
			env := cacheKey{epoch: st.epoch, fp: envelopeFingerprintWith(runQ, st.syms)}
			e.cache.putGen(key, env, runQ, res)
		} else {
			e.cache.put(key, res)
		}
	}
	return res, nil
}

// reductionPool recycles canonicalization scratch across Optimize calls so
// the canonical-key lookup allocates nothing in steady state.
var reductionPool = sync.Pool{New: func() any { return new(canon.Reduction) }}

// OptimizeBatch optimizes every query of a workload concurrently on the
// engine's worker pool (WithWorkers), returning results positionally aligned
// with qs. The first failing query cancels the rest; on any error the
// partial results are discarded and only the error is returned.
func (e *Engine) OptimizeBatch(ctx context.Context, qs []*Query) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	workers := min(e.cfg.workers, len(qs))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, len(qs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := e.Optimize(ctx, qs[i])
				if err != nil {
					fail(fmt.Errorf("query %d: %w", i, err))
					return
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		// No worker failed, yet the feed may have been cut short by the
		// parent context.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// OptimizeEach optimizes every query of qs concurrently on the engine's
// worker pool, like OptimizeBatch, but isolates failures per query: the
// returned slices are positionally aligned with qs, and a query that fails
// records its error in errs[i] without cancelling its siblings. This is the
// contract a serving layer needs when it coalesces requests from unrelated
// clients into one dispatch — one malformed query must not fail the whole
// micro-batch. Cancelling ctx still stops the call as a whole; queries not
// yet started when ctx is done report ctx.Err().
func (e *Engine) OptimizeEach(ctx context.Context, qs []*Query) ([]*Result, []error) {
	if len(qs) == 0 {
		return nil, nil
	}
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	workers := min(e.cfg.workers, len(qs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = e.Optimize(ctx, qs[i])
			}
		}()
	}
feed:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Mark the queries the cut-short feed never handed out.
		for i := range qs {
			if results[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return results, errs
}

// SwapCatalog atomically replaces the engine's declared constraint catalog:
// the transitive closure and retrieval groups are rebuilt off to the side
// under the engine's construction-time configuration, then published with a
// single pointer store. In-flight optimizations finish against the old
// generation; the result cache is invalidated so no stale optimization is
// ever served. On error the engine keeps serving the old catalog.
//
// This is the knob for derived state rules (DeriveRules): merge them in when
// mined, swap the declared set back in when the data shifts.
func (e *Engine) SwapCatalog(cat *Catalog) error {
	if cat == nil {
		return errors.New("sqo: SwapCatalog requires a catalog")
	}
	if e.cfg.source != nil {
		return errors.New("sqo: engine was built with WithConstraintSource; SwapCatalog requires WithCatalog")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	st, err := e.buildState(cat, e.state.Load().epoch+1)
	if err != nil {
		return err
	}
	e.state.Store(st)
	e.mut, e.idxLin = nil, nil // a full rebuild starts a fresh ordinal lineage
	e.swaps.Add(1)
	if e.cache != nil {
		e.cache.purge()
	}
	return nil
}

// UpdateCatalog applies an incremental delta to the engine's declared
// constraint catalog — the O(|delta|) alternative to SwapCatalog's full
// rebuild. The current generation's interned symbol space and inverted index
// are patched by structural sharing (untouched IDs, posting lists and
// adjacency rows are shared with the prior generation; removed constraints
// leave tombstoned ordinals), and the result cache is invalidated
// surgically: only entries whose recorded dependency set intersects the
// delta — they consulted a removed constraint, or an added constraint is
// relevant to their query — are dropped, while every other entry is
// re-stamped into the new epoch and keeps serving.
//
// In-flight optimizations finish against the old generation, exactly as
// with SwapCatalog. On error (unknown removal ID, invalid constraint,
// duplicate ID) the engine keeps serving the old generation with epoch and
// cache untouched.
//
// The incremental path requires the engine's default retrieval stack —
// interned symbols plus the constraint index, without closure
// materialization or grouped retrieval. Engines configured otherwise fall
// back to a full rebuild with the same delta semantics (the report says so),
// which for a closure engine also re-materializes the closure. Engines built
// with WithConstraintSource cannot mutate their catalog at all.
func (e *Engine) UpdateCatalog(d *CatalogDelta) (UpdateReport, error) {
	if e.cfg.source != nil {
		return UpdateReport{}, errors.New("sqo: engine was built with WithConstraintSource; UpdateCatalog requires WithCatalog")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	cur := e.state.Load()
	if d.Empty() {
		return UpdateReport{Epoch: cur.epoch, Incremental: e.incrementalOK()}, nil
	}
	if !e.incrementalOK() {
		return e.rebuildWith(cur, d)
	}
	if e.mut == nil {
		// First delta of this lineage: seed the mutation-side state from
		// the generation's catalog order (the ordinal space the symbol
		// table and index were compiled over). A snapshot-restored engine
		// has no compiled active catalog — its ordinal space comes from
		// the restored generation, tombstones included.
		if cur.gen != nil {
			e.mut = delta.NewStateFromGen(cur.gen)
		} else {
			e.mut = delta.NewState(cur.active.All())
		}
		e.idxLin = index.NewLineage(cur.index)
	}
	plan, err := e.mut.Plan(d.ops, e.schema)
	if err != nil {
		return UpdateReport{}, err
	}
	if plan.Empty() {
		return UpdateReport{Epoch: cur.epoch, Incremental: true}, nil // on the incremental path by construction
	}
	// Compaction: once tombstones outnumber live constraints the lineage
	// carries more garbage than catalog; fold the delta into a full
	// rebuild, which restarts the ordinal space dense.
	if dead := e.mut.Dead() + len(plan.RemovedOrds); dead > 64 && dead > e.mut.Live()-len(plan.RemovedOrds)+len(plan.Added) {
		return e.rebuildWith(cur, d)
	}

	newSyms, addedOrds := cur.syms.Patch(plan.Added)
	newIndex := cur.index.Patch(e.idxLin, newSyms, plan.RemovedOrds, plan.Added, addedOrds)
	e.mut.Commit(plan, addedOrds)

	st := &engineState{
		index: newIndex,
		syms:  newSyms,
		gen:   e.mut.Snapshot(),
		opt:   core.NewOptimizerSymbols(e.schema, newIndex, newSyms, e.effectiveCoreOpts()),
		epoch: cur.epoch + 1,
	}
	rep := UpdateReport{
		Added:       len(plan.Added),
		Removed:     len(plan.RemovedOrds),
		Epoch:       st.epoch,
		Incremental: true,
	}
	// Sweep before publishing: no reader can hold the new generation yet,
	// so every entry the sweep sees is old-epoch-keyed (see cache.update).
	if e.cache != nil {
		rep.CachePurged, rep.CacheSurvived = e.cache.update(cur.epoch, st.epoch,
			purgeCheck(plan, cur.syms, newSyms))
		e.cachePurged.Add(int64(rep.CachePurged))
		e.cacheSurvived.Add(int64(rep.CacheSurvived))
	}
	e.state.Store(st)
	e.updates.Add(1)
	return rep, nil
}

// incrementalOK reports whether the engine's configuration supports the
// incremental update path: the default retrieval stack (interned symbol
// space + constraint index), no closure materialization, no grouping.
func (e *Engine) incrementalOK() bool {
	return !e.cfg.closure && !e.cfg.grouping && !e.cfg.noIndex &&
		!e.cfg.noIntern && !e.cfg.core.DisableInterning
}

// rebuildWith is UpdateCatalog's fallback: apply the delta to the declared
// catalog and rebuild the whole generation, with a full cache purge — the
// exact SwapCatalog semantics, driven by delta ops.
func (e *Engine) rebuildWith(cur *engineState, d *CatalogDelta) (UpdateReport, error) {
	newCat, plan, err := delta.Rebuild(cur.catalogView(), d.ops, e.schema)
	if err != nil {
		return UpdateReport{}, err
	}
	if plan.Empty() {
		// Every op merged away (key-duplicate re-adds): a semantic no-op
		// must not cost a rebuild, an epoch bump, or the cache.
		return UpdateReport{Epoch: cur.epoch}, nil
	}
	st, err := e.buildState(newCat, cur.epoch+1)
	if err != nil {
		return UpdateReport{}, err
	}
	e.state.Store(st)
	e.mut, e.idxLin = nil, nil
	e.updates.Add(1)
	rep := UpdateReport{
		Added:   len(plan.Added),
		Removed: len(plan.RemovedOrds),
		Epoch:   st.epoch,
	}
	if e.cache != nil {
		rep.CachePurged = e.cache.purge()
		e.cachePurged.Add(int64(rep.CachePurged))
	}
	return rep, nil
}

// purgeCheck builds the surgical invalidation predicate of one delta: drop
// a cached result when its dependency set contains a removed constraint,
// when an added constraint is relevant to its query (it would change the
// relevant set, and so possibly the output), when the delta interned one of
// the query's symbols (the fingerprint basis shifts from content to ID
// hashing, so the re-stamped key could never be hit again), or when its
// dependency set is unknown. Everything else provably optimizes identically
// — and fingerprints identically — under the new generation and survives.
func purgeCheck(plan delta.Plan, oldSyms, newSyms *symtab.Table) func(*Result) bool {
	var maxOrd int32 = -1
	for _, ord := range plan.RemovedOrds {
		if ord > maxOrd {
			maxOrd = ord
		}
	}
	removed := make([]uint64, int(maxOrd+64)/64+1)
	for _, ord := range plan.RemovedOrds {
		removed[ord/64] |= 1 << (ord % 64)
	}
	oldPreds, oldAttrs, oldClasses := oldSyms.NumPreds(), oldSyms.NumAttrs(), oldSyms.NumClasses()
	symbolsGrew := newSyms.NumPreds() > oldPreds ||
		newSyms.NumAttrs() > oldAttrs || newSyms.NumClasses() > oldClasses
	return func(r *Result) bool {
		deps := r.Deps()
		if deps == nil {
			return true
		}
		for _, ord := range deps {
			if ord <= maxOrd && removed[ord/64]&(1<<(ord%64)) != 0 {
				return true
			}
		}
		for _, c := range plan.Added {
			if c.RelevantTo(r.Original) {
				return true
			}
		}
		if symbolsGrew && fingerprintShifted(r.Original, newSyms, oldPreds, oldAttrs, oldClasses) {
			return true
		}
		return false
	}
}

// UpdateReport describes what one UpdateCatalog call did.
type UpdateReport struct {
	// Added and Removed count the constraints the delta actually added and
	// removed (after duplicate merging; a replace counts once in each).
	Added, Removed int
	// Epoch is the catalog generation now serving.
	Epoch uint64
	// Incremental is true when the generation was patched in place-by-copy;
	// false when the engine fell back to a full rebuild (non-default
	// retrieval configuration, or tombstone compaction).
	Incremental bool
	// CachePurged and CacheSurvived count the result-cache entries dropped
	// by the delta and re-stamped into the new epoch. Both zero when
	// caching is disabled; on a fallback rebuild every entry is purged.
	CachePurged, CacheSurvived int
}

// Schema returns the schema the engine was built over.
func (e *Engine) Schema() *Schema { return e.schema }

// Workers returns the resolved width of the batch worker pool — WithWorkers,
// or GOMAXPROCS at construction when unset. Serving layers use it to size
// their own dispatch structures (e.g. a micro-batch that exceeds it only
// queues inside the engine).
func (e *Engine) Workers() int { return e.cfg.workers }

// Catalog returns the currently declared catalog (before closure), or nil
// when the engine was built from a custom ConstraintSource. For a
// delta-built generation (UpdateCatalog) the catalog object is materialized
// on first call, in the generation's live order.
func (e *Engine) Catalog() *Catalog { return e.state.Load().catalogView() }

// CacheStats is the result cache's stats surface: the three-way hit
// breakdown (exact, canonical, subsumption), occupancy, and the surgical
// invalidation counters. All zero when caching is disabled.
type CacheStats struct {
	// ExactHits counts lookups served because the (canonical, when
	// Canonicalize is on) fingerprint matched a cached entry and the
	// incoming query was already in that form.
	ExactHits int64
	// CanonicalHits counts lookups served only because canonicalization
	// collapsed the query — the raw conjunct multiset differed from the
	// cached entry's (duplicates dropped, bounds merged or pruned).
	CanonicalHits int64
	// SubsumptionHits counts lookups served by deriving the answer from a
	// cached generalization plus residual conjuncts.
	SubsumptionHits int64
	// Misses counts lookups that fell through to cold optimization.
	Misses int64
	// Evictions counts LRU evictions.
	Evictions int64
	// ResidualPredicates is the total number of residual conjuncts applied
	// across all subsumption hits — the cumulative residual-pass cost.
	ResidualPredicates int64
	// Size and Capacity are the current and maximum number of cached
	// results.
	Size     int
	Capacity int
	// UpdatePurged and UpdateSurvived are cumulative counts of entries
	// dropped by incremental catalog updates versus re-stamped into the
	// new epoch.
	UpdatePurged   int64
	UpdateSurvived int64
	// Canonicalize and Subsume echo the active cache configuration
	// (Subsume reports the *effective* state — false when the
	// configuration requested it but the engine had to serve without,
	// e.g. under a statistics cost model).
	Canonicalize bool
	Subsume      bool
}

// Hits returns the total lookups served from the cache, all three kinds.
func (c CacheStats) Hits() int64 { return c.ExactHits + c.CanonicalHits + c.SubsumptionHits }

// EngineStats is a point-in-time snapshot of an engine's serving counters.
type EngineStats struct {
	// Optimizations counts Optimize calls served, cache hits included.
	Optimizations int64
	// Cache is the result cache's stats surface, including the three-way
	// exact / canonical / subsumption hit breakdown.
	Cache CacheStats
	// CacheHits / CacheMisses / CacheEvictions describe the result cache;
	// all zero when caching is disabled.
	//
	// Deprecated: read Cache instead. CacheHits mirrors Cache.Hits() —
	// all three hit kinds combined.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// CacheSize and CacheCapacity are the current and maximum number of
	// cached results.
	//
	// Deprecated: read Cache.Size and Cache.Capacity.
	CacheSize     int
	CacheCapacity int
	// CatalogSwaps counts successful SwapCatalog calls; CatalogUpdates
	// counts successful (non-empty) UpdateCatalog calls; Epoch is the
	// current catalog generation (0 = as constructed).
	CatalogSwaps   int64
	CatalogUpdates int64
	Epoch          uint64
	// CacheUpdatePurged and CacheUpdateSurvived are cumulative counts of
	// result-cache entries dropped by catalog updates versus re-stamped
	// into the new epoch — the measured surgical-invalidation win.
	//
	// Deprecated: read Cache.UpdatePurged and Cache.UpdateSurvived.
	CacheUpdatePurged   int64
	CacheUpdateSurvived int64
	// Constraints is the size of the active catalog (after closure);
	// DerivedConstraints is how many of those closure materialization
	// added. Both zero for a custom ConstraintSource.
	Constraints        int
	DerivedConstraints int
	// Executions counts end-to-end Execute/ExecuteRaw calls served;
	// ExecTuplesScanned, ExecPagesScanned, ExecIndexProbes and
	// ExecObjectFetches accumulate the physical work their meters recorded.
	// All zero without WithDatabase.
	Executions        int64
	ExecTuplesScanned int64
	ExecPagesScanned  int64
	ExecIndexProbes   int64
	ExecObjectFetches int64
	// ConstraintIndex describes the active inverted retrieval index;
	// zero when the index is disabled or superseded (WithGrouping,
	// WithConstraintSource).
	ConstraintIndex IndexStats
	// DegradationLevel is the serving degradation level in force (0 =
	// full serving; see SetDegradation); PanicsRecovered counts panics the
	// optimizer/executor guards converted into errors; Quarantine describes
	// the poison-query register.
	DegradationLevel int
	PanicsRecovered  int64
	Quarantine       resilience.QuarantineStats
}

// Stats returns a snapshot of the engine's counters. Safe to call
// concurrently with serving traffic.
func (e *Engine) Stats() EngineStats {
	st := e.state.Load()
	s := EngineStats{
		Optimizations:       e.optimizations.Load(),
		CatalogSwaps:        e.swaps.Load(),
		CatalogUpdates:      e.updates.Load(),
		CacheUpdatePurged:   e.cachePurged.Load(),
		CacheUpdateSurvived: e.cacheSurvived.Load(),
		Epoch:               st.epoch,
		Executions:          e.executions.Load(),
		ExecTuplesScanned:   e.execTuples.Load(),
		ExecPagesScanned:    e.execPages.Load(),
		ExecIndexProbes:     e.execProbes.Load(),
		ExecObjectFetches:   e.execFetches.Load(),
		DegradationLevel:    int(e.degrade.Load()),
		PanicsRecovered:     e.panicsRecovered.Load(),
		Quarantine:          e.quar.Stats(),
	}
	s.Constraints = st.constraintCount()
	if st.active != nil {
		s.DerivedConstraints = st.closure.Derived
	}
	if st.index != nil {
		s.ConstraintIndex = st.index.Stats()
	}
	if e.cache != nil {
		// Load the sub-counters before the totals: each hit bumps the
		// total first, so this order can only under-report the
		// breakdown, never drive ExactHits or Misses negative.
		canonHits := e.cache.canonHits.Load()
		subHits := e.cache.subHits.Load()
		hits := e.cache.hits.Load()
		misses := e.cache.misses.Load()
		s.Cache = CacheStats{
			ExactHits:          hits - canonHits,
			CanonicalHits:      canonHits,
			SubsumptionHits:    subHits,
			Misses:             misses - subHits,
			Evictions:          e.cache.evictions.Load(),
			ResidualPredicates: e.cache.residual.Load(),
			Size:               e.cache.len(),
			Capacity:           e.cache.cap,
			UpdatePurged:       s.CacheUpdatePurged,
			UpdateSurvived:     s.CacheUpdateSurvived,
			Canonicalize:       e.cfg.cache.Canonicalize,
			Subsume:            e.subsume,
		}
		s.CacheHits = s.Cache.Hits()
		s.CacheMisses = s.Cache.Misses
		s.CacheEvictions = s.Cache.Evictions
		s.CacheSize = s.Cache.Size
		s.CacheCapacity = s.Cache.Capacity
	}
	return s
}
