// Package groups implements the paper's constraint grouping scheme
// (Section 3): every semantic constraint is attached to exactly one of the
// object classes it references, forming per-class groups g_k. To optimize a
// query, only the groups attached to the query's classes are fetched, which
// prunes most irrelevant constraints before the (more expensive) relevance
// check runs.
//
// Three assignment policies are provided:
//
//   - Arbitrary      — the paper's base scheme: any referenced class works
//     (we use the first, which is deterministic).
//   - LeastAccessed  — the paper's enhancement: attach to the least
//     frequently accessed class, so groups hanging off rarely
//     queried classes are rarely fetched.
//   - EvenSpread     — the paper's alternative: balance group sizes.
//
// The paper proves the scheme correct ("all the relevant constraints will
// always be retrieved") because a relevant constraint references only query
// classes, hence its home class is a query class, hence its group is fetched.
// That argument holds for every policy here, and the property test in
// groups_test.go checks it.
package groups

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sqo/internal/constraint"
	"sqo/internal/query"
	"sqo/internal/symtab"
)

// Policy selects how constraints are assigned to class groups.
type Policy uint8

const (
	// Arbitrary attaches each constraint to its first referenced class.
	Arbitrary Policy = iota
	// LeastAccessed attaches each constraint to its least frequently
	// accessed referenced class (paper's enhancement). Requires access
	// statistics; ties break lexicographically for determinism.
	LeastAccessed
	// EvenSpread attaches each constraint to whichever referenced class
	// currently has the smallest group.
	EvenSpread
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Arbitrary:
		return "arbitrary"
	case LeastAccessed:
		return "least-accessed"
	case EvenSpread:
		return "even-spread"
	default:
		return fmt.Sprintf("policy(%d)", p)
	}
}

// AccessStats tracks how often each object class is accessed by queries.
// The paper maintains these statistics to drive the LeastAccessed policy
// (and notes the grouping must be refreshed when the pattern shifts).
// The zero value is ready to use, and all methods are safe for concurrent
// use.
type AccessStats struct {
	mu     sync.RWMutex
	counts map[string]int64
}

// NewAccessStats returns empty statistics.
func NewAccessStats() *AccessStats { return &AccessStats{counts: map[string]int64{}} }

// RecordQuery bumps the access count of every class the query touches.
func (s *AccessStats) RecordQuery(q *query.Query) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = map[string]int64{}
	}
	for _, c := range q.Classes {
		s.counts[c]++
	}
}

// Record bumps the access count of a single class by n.
func (s *AccessStats) Record(class string, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = map[string]int64{}
	}
	s.counts[class] += n
}

// Count returns the access count of a class.
func (s *AccessStats) Count(class string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[class]
}

// Store holds the class-attached constraint groups. Build with NewStore;
// rebuild (Rebuild) when access statistics have drifted, as the paper
// prescribes for the LeastAccessed policy. A Store is safe for concurrent
// use: Retrieve may run from many goroutines, including concurrently with
// Rebuild.
type Store struct {
	mu     sync.RWMutex
	policy Policy
	stats  *AccessStats
	groups map[string][]*constraint.Constraint

	// The catalog's compiled symbol space, built on first demand (the
	// optimizer asks once at construction). Rebuild only redistributes
	// the same constraints, so the compiled space stays valid for the
	// store's lifetime.
	catalog  []*constraint.Constraint // as supplied, catalog order
	symsOnce sync.Once
	syms     *symtab.Table

	// Metrics accumulated across Retrieve calls, for the grouping
	// ablation experiment.
	retrieved atomic.Int64 // constraints fetched from groups
	relevant  atomic.Int64 // of those, actually relevant to the query
}

// NewStore distributes the catalog's constraints into groups under the given
// policy. stats may be nil except for LeastAccessed, where nil statistics
// degrade to Arbitrary.
func NewStore(cat *constraint.Catalog, policy Policy, stats *AccessStats) *Store {
	st := &Store{policy: policy, stats: stats, groups: map[string][]*constraint.Constraint{}}
	st.catalog = cat.All()
	for _, c := range st.catalog {
		st.assign(c)
	}
	return st
}

// Symbols returns the compiled symbol space of the store's catalog,
// compiling it on first call (core.SymbolSource). The transformation table
// uses it to run in interned-ID space for group-retrieved constraints too.
func (st *Store) Symbols() *symtab.Table {
	st.symsOnce.Do(func() {
		st.syms = symtab.Compile(nil, st.catalog)
	})
	return st.syms
}

// Policy returns the store's assignment policy.
func (st *Store) Policy() Policy { return st.policy }

// assign places one constraint into its home group.
func (st *Store) assign(c *constraint.Constraint) {
	classes := c.Classes()
	if len(classes) == 0 {
		return // unvalidated degenerate constraint; nothing to attach to
	}
	home := classes[0]
	switch st.policy {
	case LeastAccessed:
		if st.stats != nil {
			best := st.stats.Count(home)
			for _, cl := range classes[1:] {
				if n := st.stats.Count(cl); n < best {
					best, home = n, cl
				}
			}
		}
	case EvenSpread:
		best := len(st.groups[home])
		for _, cl := range classes[1:] {
			if n := len(st.groups[cl]); n < best {
				best, home = n, cl
			}
		}
	}
	st.groups[home] = append(st.groups[home], c)
}

// Rebuild redistributes all constraints, picking up fresh access statistics.
// Retrieval metrics are preserved.
func (st *Store) Rebuild() {
	st.mu.Lock()
	defer st.mu.Unlock()
	var all []*constraint.Constraint
	for _, g := range st.groups {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	st.groups = map[string][]*constraint.Constraint{}
	for _, c := range all {
		st.assign(c)
	}
}

// Group returns the constraints attached to the given class (not a copy —
// callers must not mutate).
func (st *Store) Group(class string) []*constraint.Constraint {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.groups[class]
}

// GroupSizes returns the size of every non-empty group, keyed by class.
func (st *Store) GroupSizes() map[string]int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make(map[string]int, len(st.groups))
	for cl, g := range st.groups {
		out[cl] = len(g)
	}
	return out
}

// Retrieve implements the paper's retrieval step: fetch the groups attached
// to the query's classes, then filter for relevance. It returns the relevant
// constraints in deterministic (ID) order and updates the store's metrics.
// Access statistics, when present, are updated as a side effect so the
// LeastAccessed policy can adapt.
func (st *Store) Retrieve(q *query.Query) []*constraint.Constraint {
	if st.stats != nil {
		st.stats.RecordQuery(q)
	}
	var fetched, kept int64
	var relevant []*constraint.Constraint
	st.mu.RLock()
	for _, cl := range q.Classes {
		for _, c := range st.groups[cl] {
			fetched++
			if c.RelevantTo(q) {
				kept++
				relevant = append(relevant, c)
			}
		}
	}
	st.mu.RUnlock()
	st.retrieved.Add(fetched)
	st.relevant.Add(kept)
	sort.Slice(relevant, func(i, j int) bool { return relevant[i].ID < relevant[j].ID })
	return relevant
}

// RetrievesOnlyRelevant marks the store as a prefiltered constraint source
// (core.PrefilteredSource): Retrieve filters every fetched group for
// relevance before returning.
func (st *Store) RetrievesOnlyRelevant() {}

// Retrieved returns the total number of constraints fetched from groups
// across all Retrieve calls so far.
func (st *Store) Retrieved() int64 { return st.retrieved.Load() }

// Relevant returns how many of the fetched constraints were actually
// relevant to their query, across all Retrieve calls so far.
func (st *Store) Relevant() int64 { return st.relevant.Load() }

// WasteRatio reports the fraction of retrieved constraints that were
// irrelevant, across all Retrieve calls so far. Lower is better; the paper's
// LeastAccessed enhancement exists to push this down.
func (st *Store) WasteRatio() float64 {
	// Load relevant before retrieved — the reverse of the writer's order —
	// so a concurrent Retrieve can never make relevant exceed retrieved
	// and push the ratio out of [0, 1].
	kept := st.relevant.Load()
	fetched := st.retrieved.Load()
	if fetched == 0 {
		return 0
	}
	return 1 - float64(kept)/float64(fetched)
}
