package groups

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

// fixture builds a small catalog over classes a, b, c, d with a mix of
// intra- and inter-class constraints.
func fixture() *constraint.Catalog {
	sel := func(class string, n int64) predicate.Predicate {
		return predicate.Eq(class, "x", value.Int(n))
	}
	return constraint.MustCatalog(
		constraint.New("c1", []predicate.Predicate{sel("a", 1)}, []string{"ab"}, sel("b", 1)),
		constraint.New("c2", []predicate.Predicate{sel("b", 2)}, []string{"bc"}, sel("c", 2)),
		constraint.New("c3", nil, nil, sel("a", 3)),
		constraint.New("c4", nil, nil, sel("d", 4)),
		constraint.New("c5", []predicate.Predicate{sel("c", 5)}, []string{"cd"}, sel("d", 5)),
	)
}

func TestPolicyString(t *testing.T) {
	if Arbitrary.String() != "arbitrary" || LeastAccessed.String() != "least-accessed" ||
		EvenSpread.String() != "even-spread" || Policy(9).String() != "policy(9)" {
		t.Error("Policy.String broken")
	}
}

func TestAccessStats(t *testing.T) {
	s := NewAccessStats()
	q := query.New("a", "b")
	s.RecordQuery(q)
	s.RecordQuery(q)
	s.Record("a", 3)
	if s.Count("a") != 5 || s.Count("b") != 2 || s.Count("zzz") != 0 {
		t.Errorf("counts wrong: a=%d b=%d", s.Count("a"), s.Count("b"))
	}
	var zero AccessStats
	zero.Record("x", 1)
	zero.RecordQuery(q)
	if zero.Count("x") != 1 || zero.Count("a") != 1 {
		t.Error("zero-value AccessStats should work")
	}
}

func TestArbitraryAssignment(t *testing.T) {
	st := NewStore(fixture(), Arbitrary, nil)
	sizes := st.GroupSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total != 5 {
		t.Errorf("every constraint must land in exactly one group; placed %d", total)
	}
	// c1 references {a, b}; first is "a".
	found := false
	for _, c := range st.Group("a") {
		if c.ID == "c1" {
			found = true
		}
	}
	if !found {
		t.Error("Arbitrary should attach c1 to class a")
	}
}

func TestLeastAccessedAssignment(t *testing.T) {
	stats := NewAccessStats()
	stats.Record("a", 100) // class a is hot; constraints should avoid it
	stats.Record("b", 1)
	st := NewStore(fixture(), LeastAccessed, stats)
	for _, c := range st.Group("a") {
		if c.ID == "c1" {
			t.Error("c1 should be attached to the colder class b")
		}
	}
	found := false
	for _, c := range st.Group("b") {
		if c.ID == "c1" {
			found = true
		}
	}
	if !found {
		t.Error("c1 not in group b")
	}
	// Intra-class constraints have no choice.
	if len(st.Group("a")) == 0 {
		t.Error("c3 must stay attached to a despite the heat")
	}
}

func TestLeastAccessedNilStatsDegradesToArbitrary(t *testing.T) {
	st := NewStore(fixture(), LeastAccessed, nil)
	arb := NewStore(fixture(), Arbitrary, nil)
	got, want := st.GroupSizes(), arb.GroupSizes()
	for cl, n := range want {
		if got[cl] != n {
			t.Errorf("group %q size %d, want %d", cl, got[cl], n)
		}
	}
}

func TestEvenSpread(t *testing.T) {
	// Ten two-class constraints over {a, b}: even spread should split 5/5,
	// arbitrary would put all ten on a.
	var cs []*constraint.Constraint
	for i := 0; i < 10; i++ {
		cs = append(cs, constraint.New(
			string(rune('k'+i))+"x",
			[]predicate.Predicate{predicate.Eq("a", "x", value.Int(int64(i)))},
			[]string{"ab"},
			predicate.Eq("b", "x", value.Int(int64(i)))))
	}
	cat := constraint.MustCatalog(cs...)
	even := NewStore(cat, EvenSpread, nil)
	if na, nb := len(even.Group("a")), len(even.Group("b")); na != 5 || nb != 5 {
		t.Errorf("even spread gave %d/%d, want 5/5", na, nb)
	}
	arb := NewStore(cat, Arbitrary, nil)
	if na := len(arb.Group("a")); na != 10 {
		t.Errorf("arbitrary gave %d on a, want 10", na)
	}
}

func TestRetrieveFindsAllRelevant(t *testing.T) {
	cat := fixture()
	q := query.New("a", "b").AddRelationship("ab")
	for _, policy := range []Policy{Arbitrary, LeastAccessed, EvenSpread} {
		st := NewStore(cat, policy, NewAccessStats())
		got := st.Retrieve(q)
		var ids []string
		for _, c := range got {
			ids = append(ids, c.ID)
		}
		want := []string{"c1", "c3"}
		if len(ids) != 2 || ids[0] != want[0] || ids[1] != want[1] {
			t.Errorf("%v: Retrieve = %v, want %v", policy, ids, want)
		}
	}
}

func TestRetrieveMetrics(t *testing.T) {
	st := NewStore(fixture(), Arbitrary, nil)
	q := query.New("a", "b").AddRelationship("ab")
	st.Retrieve(q)
	if st.Retrieved() == 0 || st.Relevant() == 0 || st.Relevant() > st.Retrieved() {
		t.Errorf("metrics inconsistent: retrieved=%d relevant=%d", st.Retrieved(), st.Relevant())
	}
	if w := st.WasteRatio(); w < 0 || w > 1 {
		t.Errorf("WasteRatio = %v out of range", w)
	}
	empty := NewStore(fixture(), Arbitrary, nil)
	if empty.WasteRatio() != 0 {
		t.Error("WasteRatio of untouched store should be 0")
	}
}

func TestRebuildAfterStatsShift(t *testing.T) {
	stats := NewAccessStats()
	st := NewStore(fixture(), LeastAccessed, stats)
	// Initially ties: c1 lands on a (lexicographic tiebreak via first-class
	// ordering of Classes()). Heat up a, rebuild, and c1 must migrate.
	stats.Record("a", 1000)
	st.Rebuild()
	for _, c := range st.Group("a") {
		if c.ID == "c1" {
			t.Error("Rebuild should move c1 off the hot class")
		}
	}
	// Total preserved.
	total := 0
	for _, n := range st.GroupSizes() {
		total += n
	}
	if total != 5 {
		t.Errorf("Rebuild lost constraints: %d", total)
	}
}

// TestRetrieveCompleteProperty is the paper's correctness claim: under every
// policy and any access pattern, Retrieve returns exactly the relevant
// constraints that a full catalog scan would.
func TestRetrieveCompleteProperty(t *testing.T) {
	classes := []string{"a", "b", "c", "d", "e"}
	rels := map[[2]string]string{}
	var relNames []string
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			name := classes[i] + classes[j]
			rels[[2]string{classes[i], classes[j]}] = name
			relNames = append(relNames, name)
		}
	}
	r := rand.New(rand.NewSource(42))
	// Random catalog: 30 constraints over random class pairs.
	var cs []*constraint.Constraint
	for i := 0; i < 30; i++ {
		ci := r.Intn(len(classes))
		cj := r.Intn(len(classes))
		if ci == cj {
			cs = append(cs, constraint.New(
				nameN("intra", i), nil, nil,
				predicate.Eq(classes[ci], "x", value.Int(int64(i)))))
			continue
		}
		if ci > cj {
			ci, cj = cj, ci
		}
		link := rels[[2]string{classes[ci], classes[cj]}]
		cs = append(cs, constraint.New(
			nameN("inter", i),
			[]predicate.Predicate{predicate.Eq(classes[ci], "x", value.Int(int64(i)))},
			[]string{link},
			predicate.Eq(classes[cj], "x", value.Int(int64(i)))))
	}
	cat := constraint.MustCatalog(cs...)

	for trial := 0; trial < 200; trial++ {
		// Random query: a random connected subset via direct links.
		n := 1 + r.Intn(4)
		perm := r.Perm(len(classes))[:n]
		var qClasses []string
		for _, i := range perm {
			qClasses = append(qClasses, classes[i])
		}
		sort.Strings(qClasses)
		q := query.New(qClasses...)
		for i := 0; i < len(qClasses); i++ {
			for j := i + 1; j < len(qClasses); j++ {
				q.AddRelationship(rels[[2]string{qClasses[i], qClasses[j]}])
			}
		}

		stats := NewAccessStats()
		for _, cl := range classes {
			stats.Record(cl, int64(r.Intn(100)))
		}
		want := cat.RelevantTo(q)
		for _, policy := range []Policy{Arbitrary, LeastAccessed, EvenSpread} {
			st := NewStore(cat, policy, stats)
			got := st.Retrieve(q)
			if len(got) != len(want) {
				t.Fatalf("trial %d policy %v: got %d relevant, want %d", trial, policy, len(got), len(want))
			}
		}
	}
}

func nameN(prefix string, n int) string {
	return prefix + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// TestConcurrentRetrieve hammers one store from many goroutines — Retrieve
// racing Retrieve, Rebuild, and the metric accessors — and checks the
// results stay correct. Run with -race.
func TestConcurrentRetrieve(t *testing.T) {
	stats := NewAccessStats()
	st := NewStore(fixture(), LeastAccessed, stats)
	q := query.New("a", "b").AddRelationship("ab")
	want := len(st.Retrieve(q))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := st.Retrieve(q); len(got) != want {
					errs <- fmt.Errorf("Retrieve returned %d constraints, want %d", len(got), want)
					return
				}
				_ = st.WasteRatio()
				_ = st.GroupSizes()
			}
		}()
	}
	// Rebuild concurrently: the paper refreshes grouping as access
	// statistics drift, and a live Engine does it on catalog swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			st.Rebuild()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st.Relevant() > st.Retrieved() {
		t.Errorf("metrics inconsistent: relevant=%d > retrieved=%d", st.Relevant(), st.Retrieved())
	}
}
