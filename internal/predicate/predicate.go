// Package predicate implements the predicates that appear in queries and in
// the antecedents/consequents of semantic constraints.
//
// Two forms exist, mirroring the paper's query representation:
//
//   - selective predicates, class.attr ⟨op⟩ constant
//     (e.g. vehicle.desc = "refrigerated truck"), and
//   - join predicates, class.attr ⟨op⟩ class.attr
//     (e.g. driver.licenseClass >= vehicle.class, the consequent of c3).
//
// Predicates are small immutable values. Key() gives every predicate a
// canonical identity — the transformation table of the core algorithm
// identifies its columns by that key, and the closure module interns
// predicates by it (the paper's "extract all the predicates into a separate
// structure" storage optimization).
//
// The package also implements a sound (but deliberately incomplete) logical
// calculus on predicates: Implies and Contradicts over same-attribute bound
// reasoning. The closure module chains constraints with Implies, and the core
// algorithm can use it to match antecedents that are entailed rather than
// literally present.
package predicate

import (
	"fmt"

	"sqo/internal/schema"
	"sqo/internal/value"
)

// Op is a comparison operator.
type Op uint8

// The six comparison operators of the paper's constraint language
// (equal, notEqual, lessThan, …, greaterThanOrEqualTo).
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the operator's infix spelling.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// ParseOp converts an infix spelling back to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return EQ, nil
	case "!=", "<>":
		return NE, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	case ">":
		return GT, nil
	case ">=":
		return GE, nil
	default:
		return 0, fmt.Errorf("predicate: unknown operator %q", s)
	}
}

// Flip mirrors the operator across the comparison: a op b  ⇔  b op.Flip() a.
func (o Op) Flip() Op {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ, NE are symmetric
		return o
	}
}

// Negate returns the complementary operator: ¬(a op b) ⇔ a op.Negate() b.
func (o Op) Negate() Op {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default: // GE
		return LT
	}
}

// Eval applies the operator to an already-computed three-way comparison
// result (-1, 0, +1).
func (o Op) Eval(cmp int) bool {
	switch o {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	default: // GE
		return cmp >= 0
	}
}

// AttrRef names an attribute of an object class, e.g. cargo.desc.
type AttrRef struct {
	Class string
	Attr  string
}

// String renders the reference in the paper's dotted notation.
func (a AttrRef) String() string { return a.Class + "." + a.Attr }

// Less orders references lexicographically; used for canonicalization.
func (a AttrRef) Less(b AttrRef) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Attr < b.Attr
}

// Predicate is a comparison between an attribute and either a constant
// (selection) or another attribute (join). Exactly one of Const/RightAttr is
// meaningful, discriminated by join.
type Predicate struct {
	Left      AttrRef
	Op        Op
	Const     value.Value
	RightAttr AttrRef
	join      bool

	// key caches the canonical identity computed at construction.
	// Key() is on the optimizer's hottest paths (pool interning, table
	// columns, fingerprints); predicates are immutable, so pay for the
	// string once. Derived from the other fields, it does not perturb
	// struct equality.
	key string
}

// Sel constructs a selective predicate class.attr ⟨op⟩ const.
func Sel(class, attr string, op Op, v value.Value) Predicate {
	p := Predicate{Left: AttrRef{class, attr}, Op: op, Const: v}
	p.key = p.computeKey()
	return p
}

// Eq is shorthand for the most common selective predicate.
func Eq(class, attr string, v value.Value) Predicate { return Sel(class, attr, EQ, v) }

// Join constructs a join predicate leftClass.leftAttr ⟨op⟩ rightClass.rightAttr.
// The result is canonicalized so the lexicographically smaller reference is
// on the left; driver.licenseClass >= vehicle.class and
// vehicle.class <= driver.licenseClass are the same predicate.
func Join(leftClass, leftAttr string, op Op, rightClass, rightAttr string) Predicate {
	l := AttrRef{leftClass, leftAttr}
	r := AttrRef{rightClass, rightAttr}
	if r.Less(l) {
		l, r = r, l
		op = op.Flip()
	}
	p := Predicate{Left: l, Op: op, RightAttr: r, join: true}
	p.key = p.computeKey()
	return p
}

// Rehydrate rebuilds a predicate from persisted fields, trusting the stored
// canonical key instead of recomputing it. The fields must have come from a
// predicate the constructors built (the snapshot layer checksums them);
// Rehydrate performs no canonicalization.
func Rehydrate(left AttrRef, op Op, c value.Value, right AttrRef, join bool, key string) Predicate {
	return Predicate{Left: left, Op: op, Const: c, RightAttr: right, join: join, key: key}
}

// IsJoin reports whether the predicate compares two attributes.
func (p Predicate) IsJoin() bool { return p.join }

// Classes returns the distinct class names the predicate touches: one for a
// selection, one or two for a join.
func (p Predicate) Classes() []string {
	if !p.join || p.Left.Class == p.RightAttr.Class {
		return []string{p.Left.Class}
	}
	return []string{p.Left.Class, p.RightAttr.Class}
}

// References reports whether the predicate mentions the given class.
func (p Predicate) References(class string) bool {
	if p.Left.Class == class {
		return true
	}
	return p.join && p.RightAttr.Class == class
}

// String renders the predicate the way the paper prints them,
// e.g. `cargo.desc = "frozen food"`.
func (p Predicate) String() string {
	if p.join {
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.RightAttr)
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Const)
}

// Key returns the canonical identity of the predicate. Predicates that are
// syntactically equal after canonicalization share a key; the transformation
// table uses keys as column identities.
func (p Predicate) Key() string {
	if p.key != "" {
		return p.key
	}
	return p.computeKey() // zero-value predicates outside the constructors
}

func (p Predicate) computeKey() string {
	if p.join {
		return p.Left.String() + string(rune('0'+p.Op)) + "@" + p.RightAttr.String()
	}
	return p.Left.String() + string(rune('0'+p.Op)) + p.Const.Key()
}

// Equal reports whether two predicates are the same canonical predicate.
func (p Predicate) Equal(q Predicate) bool { return p.Key() == q.Key() }

// Validate checks the predicate against the schema: classes and attributes
// must exist (respecting inheritance) and operand types must be comparable.
// Range operators on booleans are rejected.
func (p Predicate) Validate(s *schema.Schema) error {
	la, ok := s.Attr(p.Left.Class, p.Left.Attr)
	if !ok {
		return fmt.Errorf("predicate %s: unknown attribute %s", p, p.Left)
	}
	var rightKind value.Kind
	if p.join {
		ra, ok := s.Attr(p.RightAttr.Class, p.RightAttr.Attr)
		if !ok {
			return fmt.Errorf("predicate %s: unknown attribute %s", p, p.RightAttr)
		}
		rightKind = ra.Type
	} else {
		if !p.Const.Valid() {
			return fmt.Errorf("predicate %s: invalid constant", p)
		}
		rightKind = p.Const.Kind()
	}
	compatible := la.Type == rightKind || (la.Type.Numeric() && rightKind.Numeric())
	if !compatible {
		return fmt.Errorf("predicate %s: cannot compare %s with %s", p, la.Type, rightKind)
	}
	if la.Type == value.KindBool && p.Op != EQ && p.Op != NE {
		return fmt.Errorf("predicate %s: ordering operator on boolean attribute", p)
	}
	return nil
}

// EvalSel evaluates a selective predicate against an attribute value.
// It returns false when the values are incomparable (type mismatch at
// runtime), matching SQL-style semantics where such rows do not qualify.
func (p Predicate) EvalSel(v value.Value) bool {
	if p.join {
		panic("predicate: EvalSel called on join predicate " + p.String())
	}
	cmp, err := v.Compare(p.Const)
	if err != nil {
		return false
	}
	return p.Op.Eval(cmp)
}

// EvalJoin evaluates a join predicate against the left and right attribute
// values.
func (p Predicate) EvalJoin(left, right value.Value) bool {
	if !p.join {
		panic("predicate: EvalJoin called on selective predicate " + p.String())
	}
	cmp, err := left.Compare(right)
	if err != nil {
		return false
	}
	return p.Op.Eval(cmp)
}

// Implies reports whether p logically entails q for every possible attribute
// value. The test is sound but incomplete: it only reasons about predicates
// over the same operand pair. Examples:
//
//	A = 5   implies  A >= 5, A > 3, A != 4
//	A > 5   implies  A > 3, A >= 5, A != 2
//	A = B   implies  A >= B, A <= B (joins)
//
// Incomparable or cross-attribute pairs conservatively report false.
func (p Predicate) Implies(q Predicate) bool {
	if p.Key() == q.Key() {
		return true
	}
	if p.join != q.join {
		return false
	}
	if p.join {
		if p.Left != q.Left || p.RightAttr != q.RightAttr {
			return false
		}
		return opImplies[opPair{p.Op, q.Op}]
	}
	if p.Left != q.Left {
		return false
	}
	return selImplies(p.Op, p.Const, q.Op, q.Const)
}

// opPair indexes the join-operator implication table.
type opPair struct{ p, q Op }

// opImplies records which operator alone implies which, for identical
// operand pairs (used for joins, where no constants participate).
var opImplies = map[opPair]bool{
	{EQ, LE}: true, {EQ, GE}: true,
	{LT, LE}: true, {LT, NE}: true,
	{GT, GE}: true, {GT, NE}: true,
}

// selImplies decides (A opP cP) ⊨ (A opQ cQ) by bound reasoning.
func selImplies(opP Op, cP value.Value, opQ Op, cQ value.Value) bool {
	cmp, err := cP.Compare(cQ)
	if err != nil {
		return false
	}
	switch opP {
	case EQ:
		// A = cP entails anything cP itself satisfies.
		return opQ.Eval(cmp)
	case NE:
		// A != cP entails only A != cQ when cP == cQ.
		return opQ == NE && cmp == 0
	case LT:
		switch opQ {
		case LT, LE:
			return cmp <= 0 // A < 5 → A < 7, A <= 5
		case NE:
			return cmp <= 0 // A < 5 → A != 5, A != 7
		}
	case LE:
		switch opQ {
		case LE:
			return cmp <= 0
		case LT:
			return cmp < 0 // A <= 5 → A < 7
		case NE:
			return cmp < 0
		}
	case GT:
		switch opQ {
		case GT, GE:
			return cmp >= 0
		case NE:
			return cmp >= 0
		}
	case GE:
		switch opQ {
		case GE:
			return cmp >= 0
		case GT:
			return cmp > 0
		case NE:
			return cmp > 0
		}
	}
	return false
}

// Contradicts reports whether p ∧ q is unsatisfiable. Like Implies, the test
// is sound but incomplete, covering same-operand-pair bound reasoning only.
// (A = 5) ∧ (A = 6), (A > 5) ∧ (A < 3) and (A = B) ∧ (A != B) contradict.
func (p Predicate) Contradicts(q Predicate) bool {
	if p.join != q.join {
		return false
	}
	if p.join {
		if p.Left != q.Left || p.RightAttr != q.RightAttr {
			return false
		}
		// p ∧ q unsat ⇔ p entails the negation of q.
		return p.Op == q.Op.Negate() ||
			opImplies[opPair{p.Op, q.Op.Negate()}] ||
			opImplies[opPair{q.Op, p.Op.Negate()}]
	}
	if p.Left != q.Left {
		return false
	}
	// p ∧ q unsat ⇔ p ⊨ ¬q.
	return selImplies(p.Op, p.Const, q.Op.Negate(), q.Const)
}

// Selectivity estimates the fraction of instances satisfying the predicate,
// given the number of distinct values of the attribute and, when available,
// its numeric min/max. This is the classic System-R style estimate the cost
// model builds on.
func (p Predicate) Selectivity(distinct int, min, max value.Value, haveRange bool) float64 {
	if distinct < 1 {
		distinct = 1
	}
	uniform := 1.0 / float64(distinct)
	switch p.Op {
	case EQ:
		return uniform
	case NE:
		return 1 - uniform
	}
	// Range operator: interpolate when numeric bounds are known.
	if !p.join && haveRange {
		lo, okLo := min.Num()
		hi, okHi := max.Num()
		c, okC := p.Const.Num()
		if okLo && okHi && okC && hi > lo {
			frac := (c - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			switch p.Op {
			case LT, LE:
				return frac
			case GT, GE:
				return 1 - frac
			}
		}
	}
	return 1.0 / 3.0 // the traditional default range selectivity
}
