package predicate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sqo/internal/schema"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt, Indexed: true},
			schema.Attribute{Name: "fragile", Type: value.KindBool}).
		Class("vehicle",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "class", Type: value.KindInt},
			schema.Attribute{Name: "payload", Type: value.KindFloat}).
		MustBuild()
}

func TestOpStringAndParse(t *testing.T) {
	for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
		parsed, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if parsed != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), parsed, op)
		}
	}
	if Op(42).String() != "?" {
		t.Error("unknown op should render ?")
	}
	for _, alias := range []string{"==", "<>"} {
		if _, err := ParseOp(alias); err != nil {
			t.Errorf("ParseOp(%q) should succeed", alias)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("ParseOp(~) should fail")
	}
}

func TestOpFlipNegate(t *testing.T) {
	vals := []int{-1, 0, 1}
	for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
		for _, cmp := range vals {
			// a op b with cmp(a,b) == c  ⇔  b flip(op) a with cmp(b,a) == -c
			if op.Eval(cmp) != op.Flip().Eval(-cmp) {
				t.Errorf("Flip broken for %v at cmp=%d", op, cmp)
			}
			if op.Eval(cmp) == op.Negate().Eval(cmp) {
				t.Errorf("Negate broken for %v at cmp=%d", op, cmp)
			}
		}
	}
}

func TestSelConstructionAndString(t *testing.T) {
	p := Eq("cargo", "desc", value.String("frozen food"))
	if p.IsJoin() {
		t.Error("Eq must build a selection")
	}
	if got, want := p.String(), `cargo.desc = "frozen food"`; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	q := Sel("cargo", "quantity", GE, value.Int(10))
	if got, want := q.String(), "cargo.quantity >= 10"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestJoinCanonicalization(t *testing.T) {
	a := Join("driver", "licenseClass", GE, "vehicle", "class")
	b := Join("vehicle", "class", LE, "driver", "licenseClass")
	if !a.Equal(b) {
		t.Errorf("mirrored joins should be equal: %s vs %s", a, b)
	}
	if a.Key() != b.Key() {
		t.Errorf("mirrored joins should share a key: %q vs %q", a.Key(), b.Key())
	}
	if !a.IsJoin() {
		t.Error("Join must build a join predicate")
	}
	if got, want := a.String(), "driver.licenseClass >= vehicle.class"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestClassesAndReferences(t *testing.T) {
	sel := Eq("cargo", "desc", value.String("x"))
	if got := sel.Classes(); !reflect.DeepEqual(got, []string{"cargo"}) {
		t.Errorf("Classes() = %v", got)
	}
	join := Join("driver", "licenseClass", GE, "vehicle", "class")
	if got := join.Classes(); len(got) != 2 {
		t.Errorf("join Classes() = %v", got)
	}
	selfJoin := Join("cargo", "quantity", LT, "cargo", "desc")
	if got := selfJoin.Classes(); !reflect.DeepEqual(got, []string{"cargo"}) {
		t.Errorf("self-join Classes() = %v", got)
	}
	if !join.References("driver") || !join.References("vehicle") || join.References("cargo") {
		t.Error("References broken for join")
	}
	if !sel.References("cargo") || sel.References("vehicle") {
		t.Error("References broken for selection")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	ps := []Predicate{
		Eq("cargo", "desc", value.String("a")),
		Eq("cargo", "desc", value.String("b")),
		Sel("cargo", "desc", NE, value.String("a")),
		Eq("vehicle", "desc", value.String("a")),
		Join("cargo", "desc", EQ, "vehicle", "desc"),
		Sel("cargo", "quantity", GE, value.Int(10)),
		Sel("cargo", "quantity", GT, value.Int(10)),
	}
	seen := map[string]Predicate{}
	for _, p := range ps {
		if prev, dup := seen[p.Key()]; dup {
			t.Errorf("key collision: %s and %s", prev, p)
		}
		seen[p.Key()] = p
	}
}

func TestValidate(t *testing.T) {
	s := testSchema(t)
	good := []Predicate{
		Eq("cargo", "desc", value.String("x")),
		Sel("cargo", "quantity", GT, value.Int(3)),
		Sel("cargo", "quantity", GT, value.Float(3.5)), // cross-numeric ok
		Eq("cargo", "fragile", value.Bool(true)),
		Join("cargo", "desc", EQ, "vehicle", "desc"),
		Join("cargo", "quantity", LE, "vehicle", "payload"),
	}
	for _, p := range good {
		if err := p.Validate(s); err != nil {
			t.Errorf("Validate(%s) unexpected error: %v", p, err)
		}
	}
	bad := []Predicate{
		Eq("ghost", "desc", value.String("x")),
		Eq("cargo", "ghost", value.String("x")),
		Eq("cargo", "desc", value.Int(3)),             // type mismatch
		Sel("cargo", "fragile", LT, value.Bool(true)), // range op on bool
		Join("cargo", "desc", EQ, "vehicle", "class"), // string vs int
		Join("cargo", "desc", EQ, "vehicle", "ghost"), // unknown right attr
		{Left: AttrRef{"cargo", "desc"}, Op: EQ},      // invalid constant
	}
	for _, p := range bad {
		if err := p.Validate(s); err == nil {
			t.Errorf("Validate(%s) should fail", p)
		}
	}
}

func TestEvalSel(t *testing.T) {
	p := Sel("cargo", "quantity", GE, value.Int(10))
	if !p.EvalSel(value.Int(10)) || !p.EvalSel(value.Int(11)) || p.EvalSel(value.Int(9)) {
		t.Error("EvalSel bound handling broken")
	}
	if p.EvalSel(value.String("ten")) {
		t.Error("incomparable runtime value must not qualify")
	}
}

func TestEvalJoin(t *testing.T) {
	p := Join("driver", "licenseClass", GE, "vehicle", "class")
	if !p.EvalJoin(value.Int(3), value.Int(2)) {
		t.Error("3 >= 2 should hold")
	}
	if p.EvalJoin(value.Int(1), value.Int(2)) {
		t.Error("1 >= 2 should not hold")
	}
	if p.EvalJoin(value.String("a"), value.Int(2)) {
		t.Error("incomparable join values must not qualify")
	}
}

func TestEvalPanicsOnWrongForm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EvalSel on join should panic")
		}
	}()
	Join("a", "x", EQ, "b", "y").EvalSel(value.Int(1))
}

func TestImpliesTable(t *testing.T) {
	A := func(op Op, c int64) Predicate { return Sel("cargo", "quantity", op, value.Int(c)) }
	cases := []struct {
		p, q Predicate
		want bool
	}{
		{A(EQ, 5), A(EQ, 5), true},
		{A(EQ, 5), A(GE, 5), true},
		{A(EQ, 5), A(GT, 3), true},
		{A(EQ, 5), A(NE, 4), true},
		{A(EQ, 5), A(LT, 6), true},
		{A(EQ, 5), A(GT, 5), false},
		{A(EQ, 5), A(EQ, 6), false},
		{A(NE, 5), A(NE, 5), true},
		{A(NE, 5), A(NE, 6), false},
		{A(LT, 5), A(LT, 7), true},
		{A(LT, 5), A(LE, 5), true},
		{A(LT, 5), A(NE, 5), true},
		{A(LT, 5), A(NE, 7), true},
		{A(LT, 5), A(NE, 3), false},
		{A(LT, 5), A(LT, 3), false},
		{A(LE, 5), A(LE, 6), true},
		{A(LE, 5), A(LT, 6), true},
		{A(LE, 5), A(LT, 5), false},
		{A(LE, 5), A(NE, 6), true},
		{A(GT, 5), A(GT, 3), true},
		{A(GT, 5), A(GE, 5), true},
		{A(GT, 5), A(NE, 5), true},
		{A(GT, 5), A(NE, 3), true},
		{A(GT, 5), A(NE, 7), false},
		{A(GE, 5), A(GE, 4), true},
		{A(GE, 5), A(GT, 4), true},
		{A(GE, 5), A(GT, 5), false},
		{A(GE, 5), A(NE, 4), true},
		// cross attribute: never implied
		{A(EQ, 5), Sel("cargo", "desc", EQ, value.String("5")), false},
		// string equality chains
		{Eq("cargo", "desc", value.String("a")), Sel("cargo", "desc", NE, value.String("b")), true},
	}
	for _, c := range cases {
		if got := c.p.Implies(c.q); got != c.want {
			t.Errorf("(%s).Implies(%s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestImpliesJoins(t *testing.T) {
	j := func(op Op) Predicate { return Join("a", "x", op, "b", "y") }
	cases := []struct {
		p, q Predicate
		want bool
	}{
		{j(EQ), j(LE), true},
		{j(EQ), j(GE), true},
		{j(LT), j(LE), true},
		{j(LT), j(NE), true},
		{j(GT), j(GE), true},
		{j(LE), j(LT), false},
		{j(EQ), j(NE), false},
		{j(EQ), Join("a", "x", EQ, "b", "z"), false},
	}
	for _, c := range cases {
		if got := c.p.Implies(c.q); got != c.want {
			t.Errorf("(%s).Implies(%s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
	// A join never implies a selection and vice versa.
	if j(EQ).Implies(Eq("a", "x", value.Int(1))) || Eq("a", "x", value.Int(1)).Implies(j(EQ)) {
		t.Error("join/selection cross implication must be false")
	}
}

func TestContradicts(t *testing.T) {
	A := func(op Op, c int64) Predicate { return Sel("cargo", "quantity", op, value.Int(c)) }
	cases := []struct {
		p, q Predicate
		want bool
	}{
		{A(EQ, 5), A(EQ, 6), true},
		{A(EQ, 5), A(NE, 5), true},
		{A(GT, 5), A(LT, 3), true},
		{A(GT, 5), A(LE, 5), true},
		{A(GE, 5), A(LT, 5), true},
		{A(GT, 5), A(LT, 6), false},
		{A(GE, 5), A(LE, 5), false},
		{A(EQ, 5), A(GE, 5), false},
		{A(NE, 5), A(NE, 6), false},
		{A(EQ, 5), Sel("cargo", "desc", EQ, value.String("x")), false},
	}
	for _, c := range cases {
		if got := c.p.Contradicts(c.q); got != c.want {
			t.Errorf("(%s).Contradicts(%s) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.q.Contradicts(c.p); got != c.want {
			t.Errorf("(%s).Contradicts(%s) = %v, want %v (symmetry)", c.q, c.p, got, c.want)
		}
	}
	jEQ := Join("a", "x", EQ, "b", "y")
	jNE := Join("a", "x", NE, "b", "y")
	jLT := Join("a", "x", LT, "b", "y")
	jGT := Join("a", "x", GT, "b", "y")
	if !jEQ.Contradicts(jNE) || !jLT.Contradicts(jGT) || !jLT.Contradicts(jEQ) {
		t.Error("join contradictions broken")
	}
	if jEQ.Contradicts(Join("a", "x", LE, "b", "y")) {
		t.Error("= and <= do not contradict")
	}
	if jEQ.Contradicts(Eq("a", "x", value.Int(1))) {
		t.Error("join/selection never contradict in this calculus")
	}
}

func TestSelectivity(t *testing.T) {
	eq := Eq("cargo", "desc", value.String("x"))
	if got := eq.Selectivity(10, value.Value{}, value.Value{}, false); got != 0.1 {
		t.Errorf("EQ selectivity = %v, want 0.1", got)
	}
	ne := Sel("cargo", "desc", NE, value.String("x"))
	if got := ne.Selectivity(10, value.Value{}, value.Value{}, false); got != 0.9 {
		t.Errorf("NE selectivity = %v, want 0.9", got)
	}
	// Range with interpolation: quantity in [0,100], pred < 25 → 0.25.
	lt := Sel("cargo", "quantity", LT, value.Int(25))
	got := lt.Selectivity(50, value.Int(0), value.Int(100), true)
	if got != 0.25 {
		t.Errorf("LT interpolated selectivity = %v, want 0.25", got)
	}
	gt := Sel("cargo", "quantity", GT, value.Int(25))
	if got := gt.Selectivity(50, value.Int(0), value.Int(100), true); got != 0.75 {
		t.Errorf("GT interpolated selectivity = %v, want 0.75", got)
	}
	// Out-of-range constants clamp.
	low := Sel("cargo", "quantity", LT, value.Int(-5))
	if got := low.Selectivity(50, value.Int(0), value.Int(100), true); got != 0 {
		t.Errorf("clamped selectivity = %v, want 0", got)
	}
	// No range info → default 1/3.
	if got := lt.Selectivity(50, value.Value{}, value.Value{}, false); got != 1.0/3.0 {
		t.Errorf("default range selectivity = %v, want 1/3", got)
	}
	// Defensive: distinct < 1.
	if got := eq.Selectivity(0, value.Value{}, value.Value{}, false); got != 1 {
		t.Errorf("distinct=0 selectivity = %v, want 1", got)
	}
}

// --- property-based tests -------------------------------------------------

// genSel builds a random selective predicate over a single int attribute, the
// domain where the implication calculus is complete enough to matter.
func genSel(r *rand.Rand) Predicate {
	ops := []Op{EQ, NE, LT, LE, GT, GE}
	return Sel("c", "a", ops[r.Intn(len(ops))], value.Int(int64(r.Intn(21)-10)))
}

type selPair struct{ P, Q Predicate }

func (selPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(selPair{genSel(r), genSel(r)})
}

// TestQuickImpliesSound: if p.Implies(q), every integer satisfying p
// satisfies q.
func TestQuickImpliesSound(t *testing.T) {
	f := func(pair selPair) bool {
		if !pair.P.Implies(pair.Q) {
			return true
		}
		for v := int64(-15); v <= 15; v++ {
			if pair.P.EvalSel(value.Int(v)) && !pair.Q.EvalSel(value.Int(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickContradictsSound: if p.Contradicts(q), no integer satisfies both.
func TestQuickContradictsSound(t *testing.T) {
	f := func(pair selPair) bool {
		if !pair.P.Contradicts(pair.Q) {
			return true
		}
		for v := int64(-15); v <= 15; v++ {
			if pair.P.EvalSel(value.Int(v)) && pair.Q.EvalSel(value.Int(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickImpliesTransitive: implication is transitive.
func TestQuickImpliesTransitive(t *testing.T) {
	type triple struct{ P, Q, R Predicate }
	gen := func(r *rand.Rand) triple { return triple{genSel(r), genSel(r), genSel(r)} }
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		tr := gen(r)
		if tr.P.Implies(tr.Q) && tr.Q.Implies(tr.R) && !tr.P.Implies(tr.R) {
			t.Fatalf("transitivity violated: %s ⊨ %s ⊨ %s", tr.P, tr.Q, tr.R)
		}
	}
}

// TestQuickImpliesReflexive: every predicate implies itself.
func TestQuickImpliesReflexive(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		p := genSel(r)
		if !p.Implies(p) {
			t.Fatalf("%s should imply itself", p)
		}
		if p.Contradicts(p) {
			t.Fatalf("%s should not contradict itself", p)
		}
	}
}
