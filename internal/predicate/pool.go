package predicate

// Pool interns predicates by canonical key, assigning each distinct predicate
// a small integer ID. This is the paper's storage optimization for
// materialized closures: "extracting all the predicates into a separate
// structure, and modifying the constraints to contain only pointers to
// relevant predicates in the structure". The transformation table of the core
// algorithm also identifies its columns by pool IDs.
//
// The zero Pool is ready to use. Pool is not safe for concurrent mutation.
type Pool struct {
	byKey map[string]int
	preds []Predicate
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{byKey: map[string]int{}} }

// NewPoolSize returns an empty pool with room for the expected number of
// distinct predicates, so interning a known workload does not rehash or
// regrow. Per-query pools (one per transformation table) are sized from the
// query and its relevant constraints.
func NewPoolSize(capacity int) *Pool {
	return &Pool{
		byKey: make(map[string]int, capacity),
		preds: make([]Predicate, 0, capacity),
	}
}

// Intern returns the ID for p, allocating one if the predicate is new.
func (pl *Pool) Intern(p Predicate) int {
	if pl.byKey == nil {
		pl.byKey = map[string]int{}
	}
	k := p.Key()
	if id, ok := pl.byKey[k]; ok {
		return id
	}
	id := len(pl.preds)
	pl.byKey[k] = id
	pl.preds = append(pl.preds, p)
	return id
}

// Lookup returns the ID for p without interning. The second result reports
// whether the predicate was present.
func (pl *Pool) Lookup(p Predicate) (int, bool) {
	id, ok := pl.byKey[p.Key()]
	return id, ok
}

// At returns the predicate with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error.
func (pl *Pool) At(id int) Predicate { return pl.preds[id] }

// Len returns the number of distinct interned predicates.
func (pl *Pool) Len() int { return len(pl.preds) }

// All returns the interned predicates indexed by ID. The slice is fresh.
func (pl *Pool) All() []Predicate {
	return append([]Predicate(nil), pl.preds...)
}
