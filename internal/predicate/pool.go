package predicate

import (
	"sync"

	"sqo/internal/frozen"
)

// Pool interns predicates by canonical key, assigning each distinct predicate
// a small integer ID. This is the paper's storage optimization for
// materialized closures: "extracting all the predicates into a separate
// structure, and modifying the constraints to contain only pointers to
// relevant predicates in the structure". The transformation table of the core
// algorithm also identifies its columns by pool IDs.
//
// The zero Pool is ready to use. Pool is not safe for concurrent mutation.
//
// A pool can also join a mutable lineage (Fork): forks of one pool share an
// append-only ID space whose key map is safe for concurrent lookups while
// later forks keep interning. Each fork's own preds slice header freezes the
// generation's length, so two generations can serve lookups concurrently
// while the newest one (serialized by the caller) grows the space.
//
// A third mode exists for snapshot restore: a pool rebuilt by RestorePool
// resolves keys through a frozen open-addressing table stored alongside the
// predicates, so a warm boot performs no per-predicate map insertion at all.
// Forks of a restored pool keep the frozen table for the snapshot-era IDs
// and intern post-snapshot predicates into the lineage's shared map.
type Pool struct {
	byKey map[string]int
	live  *sync.Map // key -> int; non-nil once the pool joined a lineage
	frz   frozen.Table
	preds []Predicate
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{byKey: map[string]int{}} }

// NewPoolSize returns an empty pool with room for the expected number of
// distinct predicates, so interning a known workload does not rehash or
// regrow. Per-query pools (one per transformation table) are sized from the
// query and its relevant constraints.
func NewPoolSize(capacity int) *Pool {
	return &Pool{
		byKey: make(map[string]int, capacity),
		preds: make([]Predicate, 0, capacity),
	}
}

// Freeze builds the serializable frozen lookup table over the pool's current
// entries, for the snapshot writer. The pool itself is unchanged.
func (pl *Pool) Freeze() []int32 {
	t := frozen.New(len(pl.preds))
	for i := range pl.preds {
		t.Insert(frozen.HashString(pl.preds[i].Key()), int32(i))
	}
	return t.Slots()
}

// RestorePool rebuilds a pool from persisted predicates and the frozen slot
// array Freeze produced for them. ok is false when the slot array cannot
// belong to a pool of this size.
func RestorePool(preds []Predicate, slots []int32) (*Pool, bool) {
	t, ok := frozen.FromSlots(slots, len(preds))
	if !ok {
		return nil, false
	}
	return &Pool{frz: t, preds: preds}, true
}

// frzLookup resolves a key through the frozen table, when present.
func (pl *Pool) frzLookup(k string) (int, bool) {
	if pl.frz.Empty() {
		return 0, false
	}
	id, ok := pl.frz.Find(frozen.HashString(k), func(id int32) bool {
		return pl.preds[id].Key() == k
	})
	return int(id), ok
}

// Intern returns the ID for p, allocating one if the predicate is new.
// On a lineage fork, new IDs become visible to every fork sharing the
// lineage; Intern calls across forks must be serialized by the caller.
func (pl *Pool) Intern(p Predicate) int {
	k := p.Key()
	if pl.live != nil {
		if id, ok := pl.live.Load(k); ok {
			return id.(int)
		}
		if id, ok := pl.frzLookup(k); ok {
			return id
		}
		id := len(pl.preds)
		pl.live.Store(k, id)
		pl.preds = append(pl.preds, p)
		return id
	}
	if pl.byKey == nil {
		pl.byKey = map[string]int{}
	}
	if id, ok := pl.byKey[k]; ok {
		return id
	}
	if id, ok := pl.frzLookup(k); ok {
		return id
	}
	id := len(pl.preds)
	pl.byKey[k] = id
	pl.preds = append(pl.preds, p)
	return id
}

// Lookup returns the ID for p without interning. The second result reports
// whether the predicate was present.
func (pl *Pool) Lookup(p Predicate) (int, bool) {
	if pl.live != nil {
		if id, ok := pl.live.Load(p.Key()); ok {
			return id.(int), true
		}
		return pl.frzLookup(p.Key())
	}
	if id, ok := pl.byKey[p.Key()]; ok {
		return id, true
	}
	return pl.frzLookup(p.Key())
}

// Fork returns a new pool of the same lineage: it shares the receiver's
// interned entries and key map (promoted to a concurrent-read-safe form on
// the first Fork of a lineage) but owns its slice header, so the receiver
// keeps serving Lookup/At concurrently while the fork Interns more
// predicates. Fork and fork-side Intern calls must be serialized by the
// caller; the receiver is never mutated. A restored pool's frozen table is
// carried into every fork; the shared map then holds only post-snapshot
// entries.
func (pl *Pool) Fork() *Pool {
	live := pl.live
	if live == nil {
		live = &sync.Map{}
		for k, v := range pl.byKey {
			live.Store(k, v)
		}
	}
	return &Pool{live: live, frz: pl.frz, preds: pl.preds}
}

// At returns the predicate with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error.
func (pl *Pool) At(id int) Predicate { return pl.preds[id] }

// Len returns the number of distinct interned predicates.
func (pl *Pool) Len() int { return len(pl.preds) }

// All returns the interned predicates indexed by ID. The slice is fresh.
func (pl *Pool) All() []Predicate {
	return append([]Predicate(nil), pl.preds...)
}
