package predicate

import (
	"testing"

	"sqo/internal/value"
)

func TestPoolInternDedupes(t *testing.T) {
	p := NewPool()
	a := Eq("cargo", "desc", value.String("x"))
	b := Eq("cargo", "desc", value.String("x"))
	c := Eq("cargo", "desc", value.String("y"))
	ida := p.Intern(a)
	idb := p.Intern(b)
	idc := p.Intern(c)
	if ida != idb {
		t.Errorf("identical predicates got different IDs: %d vs %d", ida, idb)
	}
	if ida == idc {
		t.Error("distinct predicates share an ID")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if !p.At(ida).Equal(a) || !p.At(idc).Equal(c) {
		t.Error("At returns wrong predicate")
	}
}

func TestPoolLookup(t *testing.T) {
	p := NewPool()
	a := Eq("cargo", "desc", value.String("x"))
	if _, ok := p.Lookup(a); ok {
		t.Error("Lookup should miss before Intern")
	}
	id := p.Intern(a)
	got, ok := p.Lookup(a)
	if !ok || got != id {
		t.Errorf("Lookup = %d, %v; want %d, true", got, ok, id)
	}
}

func TestPoolZeroValueUsable(t *testing.T) {
	var p Pool
	id := p.Intern(Eq("a", "b", value.Int(1)))
	if id != 0 || p.Len() != 1 {
		t.Errorf("zero pool broken: id=%d len=%d", id, p.Len())
	}
}

func TestPoolAllIsCopy(t *testing.T) {
	p := NewPool()
	p.Intern(Eq("a", "b", value.Int(1)))
	all := p.All()
	all[0] = Eq("z", "z", value.Int(9))
	if p.At(0).Left.Class != "a" {
		t.Error("All aliases internal storage")
	}
}

func TestPoolMirroredJoinsIntern(t *testing.T) {
	p := NewPool()
	a := Join("x", "u", LE, "y", "v")
	b := Join("y", "v", GE, "x", "u")
	if p.Intern(a) != p.Intern(b) {
		t.Error("mirrored joins must intern to the same ID")
	}
}
