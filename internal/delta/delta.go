// Package delta implements incremental catalog mutation: the op model of a
// catalog delta (add / remove / replace), its validation against the current
// generation, and the append-only ordinal space that lets every generation-
// scoped structure — interned symbol space, inverted index, cached results'
// dependency sets — survive a mutation untouched except where the delta
// actually lands.
//
// The paper's optimizer assumes a fixed integrity-constraint catalog; the
// serving engine's original mutation primitive, a full catalog swap, prices
// every change at O(|catalog|): recompile the symbol space, rebuild the
// index, discard the whole result cache. Under live traffic with evolving
// constraint stores (Chomicki's preference-query setting, Siegel-style state
// rules re-derived as the data shifts) that is the wrong cost model — a
// one-rule change should cost O(|delta|).
//
// The enabling invariant is ordinal stability: within one mutation lineage
// (started by an engine construction or full swap, advanced by deltas), a
// constraint keeps its catalog ordinal forever. Removals tombstone ordinals
// instead of compacting them; additions append fresh ordinals. Catalog
// order — which the optimizer's output provably depends on only through the
// retrieval order — is then preserved by construction: survivors keep their
// relative order and additions go last, exactly as if the final catalog had
// been declared from scratch in that order.
//
// State is the mutation-side bookkeeping (live id/key maps, the ordinal
// space); it is owned by the engine and guarded by the engine's swap lock.
// Gen is the immutable per-generation view published to readers.
package delta

import (
	"fmt"

	"sqo/internal/constraint"
	"sqo/internal/schema"
)

// Kind labels one delta op.
type Kind uint8

const (
	// Add appends a constraint to the catalog.
	Add Kind = iota
	// Remove deletes the constraint with the given ID.
	Remove
	// Replace atomically removes the constraint with the given ID and
	// appends a new one in its stead (at the end of the catalog order).
	Replace
)

// Op is one mutation: Add carries C, Remove carries ID, Replace carries
// both.
type Op struct {
	Kind Kind
	ID   string
	C    *constraint.Constraint
}

// Plan is a validated delta, resolved against one generation: the ordinals
// to tombstone and the constraints to append. Logical duplicates among the
// adds (a constraint whose canonical key the live catalog already holds)
// have been dropped, mirroring Catalog.Add's merge semantics.
type Plan struct {
	RemovedOrds []int32
	Added       []*constraint.Constraint
}

// Empty reports whether the plan changes nothing.
func (p Plan) Empty() bool { return len(p.RemovedOrds) == 0 && len(p.Added) == 0 }

// State is the mutation-side bookkeeping of one lineage. All access is
// serialized by the owning engine's swap lock; readers never touch it.
type State struct {
	all  []*constraint.Constraint // ordinal space, tombstones in place
	dead []bool                   // per ordinal: tombstoned
	live int

	byID  map[string]int32 // live ID -> ordinal
	byKey map[string]int32 // live canonical key -> ordinal
}

// NewState seeds the lineage from the ordered constraint set of the current
// generation (ordinal i = position i).
func NewState(all []*constraint.Constraint) *State {
	s := &State{
		all:   all,
		dead:  make([]bool, len(all)),
		live:  len(all),
		byID:  make(map[string]int32, len(all)),
		byKey: make(map[string]int32, len(all)),
	}
	for i, c := range all {
		s.byID[c.ID] = int32(i)
		s.byKey[c.Key()] = int32(i)
	}
	return s
}

// Live returns the number of live constraints.
func (s *State) Live() int { return s.live }

// Dead returns the number of tombstoned ordinals.
func (s *State) Dead() int { return len(s.all) - s.live }

// Constraints returns the live constraints in catalog order (fresh slice).
func (s *State) Constraints() []*constraint.Constraint {
	out := make([]*constraint.Constraint, 0, s.live)
	for i, c := range s.all {
		if !s.dead[i] {
			out = append(out, c)
		}
	}
	return out
}

// Plan validates ops in order against the current state without mutating
// it: removals must name a live constraint, additions must validate against
// the schema and not collide with a live ID. Key-duplicate additions are
// silently dropped (Catalog.Add merges them); a replace whose new
// constraint duplicates a surviving key degrades to a pure removal.
func (s *State) Plan(ops []Op, sch *schema.Schema) (Plan, error) {
	var p Plan
	removed := map[int32]bool{}
	addByID := map[string]int{} // id -> index into p.Added
	addByKey := map[string]bool{}
	remove := func(id string) error {
		ord, ok := s.byID[id]
		if ok && removed[ord] {
			ok = false
		}
		if !ok {
			// The id may name a constraint added earlier in this same
			// delta; removing that simply cancels the addition.
			if i, here := addByID[id]; here && p.Added[i] != nil {
				delete(addByKey, p.Added[i].Key())
				p.Added[i] = nil
				delete(addByID, id)
				return nil
			}
			return fmt.Errorf("delta: remove %q: no such constraint", id)
		}
		removed[ord] = true
		p.RemovedOrds = append(p.RemovedOrds, ord)
		return nil
	}
	add := func(c *constraint.Constraint) error {
		if c == nil {
			return fmt.Errorf("delta: add requires a constraint")
		}
		if err := c.Validate(sch); err != nil {
			return fmt.Errorf("delta: add %q: %w", c.ID, err)
		}
		if ord, ok := s.byID[c.ID]; ok && !removed[ord] {
			return fmt.Errorf("delta: add %q: id already in catalog", c.ID)
		}
		if _, ok := addByID[c.ID]; ok {
			return fmt.Errorf("delta: add %q: id added twice in one delta", c.ID)
		}
		key := c.Key()
		if ord, ok := s.byKey[key]; ok && !removed[ord] {
			return nil // logical duplicate of a live constraint: merged
		}
		if addByKey[key] {
			return nil // logical duplicate within the delta: merged
		}
		addByID[c.ID] = len(p.Added)
		addByKey[key] = true
		p.Added = append(p.Added, c)
		return nil
	}
	for _, op := range ops {
		switch op.Kind {
		case Remove:
			if err := remove(op.ID); err != nil {
				return Plan{}, err
			}
		case Add:
			if err := add(op.C); err != nil {
				return Plan{}, err
			}
		case Replace:
			if err := remove(op.ID); err != nil {
				return Plan{}, err
			}
			if err := add(op.C); err != nil {
				return Plan{}, err
			}
		default:
			return Plan{}, fmt.Errorf("delta: unknown op kind %d", op.Kind)
		}
	}
	// Compact additions cancelled by a later removal in the same delta.
	kept := p.Added[:0]
	for _, c := range p.Added {
		if c != nil {
			kept = append(kept, c)
		}
	}
	p.Added = kept
	return p, nil
}

// Commit applies a validated plan: tombstones the removed ordinals and
// appends the added constraints at addedOrds (which must be the next
// ordinals in sequence, as symtab.Patch assigns them).
func (s *State) Commit(p Plan, addedOrds []int32) {
	for _, ord := range p.RemovedOrds {
		c := s.all[ord]
		s.dead[ord] = true
		s.live--
		delete(s.byID, c.ID)
		delete(s.byKey, c.Key())
	}
	for i, c := range p.Added {
		ord := addedOrds[i]
		if int(ord) != len(s.all) {
			panic("delta: non-contiguous ordinal assignment")
		}
		s.all = append(s.all, c)
		s.dead = append(s.dead, false)
		s.live++
		s.byID[c.ID] = ord
		s.byKey[c.Key()] = ord
	}
}

// Gen is the immutable catalog view of one delta-built generation: the
// frozen ordinal space plus its tombstone set. Engines publish one per
// generation; Constraints materializes the live catalog order on demand.
type Gen struct {
	all  []*constraint.Constraint
	dead []bool
	live int
}

// Snapshot freezes the current state into a generation view. The ordinal
// slice header is shared (append-only backing); the tombstone set is copied
// so later commits cannot disturb published generations.
func (s *State) Snapshot() *Gen {
	return &Gen{
		all:  s.all,
		dead: append([]bool(nil), s.dead...),
		live: s.live,
	}
}

// NewGen builds a generation view directly from a restored ordinal space —
// the snapshot layer's entry point into a lineage. all is aliased (the
// ordinal space is append-only from here on); dead is copied. A nil dead
// means every ordinal is live.
func NewGen(all []*constraint.Constraint, dead []bool) *Gen {
	g := &Gen{all: all, dead: make([]bool, len(all)), live: len(all)}
	for i, d := range dead {
		if d {
			g.dead[i] = true
			g.live--
		}
	}
	return g
}

// Ordinals exposes the generation's full ordinal space and tombstone set,
// both aliased — callers must treat them as read-only. Snapshot writers use
// this to persist tombstones in place rather than compacting them away.
func (g *Gen) Ordinals() ([]*constraint.Constraint, []bool) {
	return g.all, g.dead
}

// NewStateFromGen seeds mutation-side bookkeeping from a published
// generation, so a lineage can continue from a restored snapshot exactly
// where the saved lineage left off. The ordinal space is re-aliased
// copy-on-append (Commit appends, never mutates in place, so the generation
// stays frozen); the live maps are rebuilt in O(ordinals).
func NewStateFromGen(g *Gen) *State {
	s := &State{
		all:   g.all[:len(g.all):len(g.all)],
		dead:  append([]bool(nil), g.dead...),
		live:  g.live,
		byID:  make(map[string]int32, g.live),
		byKey: make(map[string]int32, g.live),
	}
	for i, c := range s.all {
		if !s.dead[i] {
			s.byID[c.ID] = int32(i)
			s.byKey[c.Key()] = int32(i)
		}
	}
	return s
}

// Live returns the number of live constraints of the generation.
func (g *Gen) Live() int { return g.live }

// Constraints returns the generation's live constraints in catalog order.
func (g *Gen) Constraints() []*constraint.Constraint {
	out := make([]*constraint.Constraint, 0, g.live)
	for i, c := range g.all {
		if !g.dead[i] {
			out = append(out, c)
		}
	}
	return out
}

// Rebuild applies ops to a plain catalog and returns the resulting catalog
// plus the validated plan — the from-scratch reference semantics of a
// delta, shared by the engine's non-incremental fallback path and the
// differential tests. The result contains the surviving constraints in
// their original order followed by the additions, exactly the live order an
// incremental lineage maintains.
func Rebuild(cat *constraint.Catalog, ops []Op, sch *schema.Schema) (*constraint.Catalog, Plan, error) {
	tmp := NewState(cat.All())
	p, err := tmp.Plan(ops, sch)
	if err != nil {
		return nil, Plan{}, err
	}
	ords := make([]int32, len(p.Added))
	for i := range ords {
		ords[i] = int32(len(tmp.all) + i)
	}
	tmp.Commit(p, ords)
	out, err := constraint.NewCatalog(tmp.Constraints()...)
	if err != nil {
		return nil, Plan{}, err
	}
	return out, p, nil
}
