package delta

import (
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/schema"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("a",
			schema.Attribute{Name: "x", Type: value.KindString},
			schema.Attribute{Name: "y", Type: value.KindInt}).
		MustBuild()
}

func rule(id, val string, bound int64) *constraint.Constraint {
	return constraint.New(id,
		[]predicate.Predicate{predicate.Eq("a", "x", value.String(val))},
		nil,
		predicate.Sel("a", "y", predicate.LE, value.Int(bound)))
}

func seed(t *testing.T, cs ...*constraint.Constraint) *State {
	t.Helper()
	cat, err := constraint.NewCatalog(cs...)
	if err != nil {
		t.Fatal(err)
	}
	return NewState(cat.All())
}

func commit(t *testing.T, s *State, p Plan) {
	t.Helper()
	ords := make([]int32, len(p.Added))
	for i := range ords {
		ords[i] = int32(len(s.all) + i)
	}
	s.Commit(p, ords)
}

func TestPlanValidation(t *testing.T) {
	sch := testSchema(t)
	r1, r2 := rule("r1", "u", 1), rule("r2", "v", 2)
	s := seed(t, r1, r2)

	// Unknown removal.
	if _, err := s.Plan([]Op{{Kind: Remove, ID: "zz"}}, sch); err == nil {
		t.Error("removing an unknown id passed validation")
	}
	// Duplicate id add.
	if _, err := s.Plan([]Op{{Kind: Add, C: rule("r1", "w", 3)}}, sch); err == nil {
		t.Error("adding a duplicate id passed validation")
	}
	// Schema-invalid add.
	bad := constraint.New("r3",
		[]predicate.Predicate{predicate.Eq("nope", "x", value.String("u"))},
		nil,
		predicate.Eq("a", "x", value.String("u")))
	if _, err := s.Plan([]Op{{Kind: Add, C: bad}}, sch); err == nil {
		t.Error("schema-invalid constraint passed validation")
	}
	// Key-duplicate add merges silently.
	dup := rule("r9", "u", 1) // same key as r1
	p, err := s.Plan([]Op{{Kind: Add, C: dup}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("key-duplicate add produced ops: %+v", p)
	}
	// Replace frees the id for its own replacement.
	p, err = s.Plan([]Op{{Kind: Replace, ID: "r1", C: rule("r1", "w", 3)}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.RemovedOrds) != 1 || len(p.Added) != 1 {
		t.Fatalf("replace plan = %+v", p)
	}
	// Removing an addition from the same delta cancels it.
	p, err = s.Plan([]Op{{Kind: Add, C: rule("r3", "w", 3)}, {Kind: Remove, ID: "r3"}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("add-then-remove in one delta left ops: %+v", p)
	}
}

func TestCommitAndTombstones(t *testing.T) {
	sch := testSchema(t)
	r1, r2, r3 := rule("r1", "u", 1), rule("r2", "v", 2), rule("r3", "w", 3)
	s := seed(t, r1, r2, r3)

	p, err := s.Plan([]Op{{Kind: Remove, ID: "r2"}, {Kind: Add, C: rule("r4", "z", 4)}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, p)
	if s.Live() != 3 || s.Dead() != 1 {
		t.Fatalf("live=%d dead=%d, want 3/1", s.Live(), s.Dead())
	}
	got := s.Constraints()
	if len(got) != 3 || got[0] != r1 || got[1] != r3 || got[2].ID != "r4" {
		t.Fatalf("live order wrong: %v", got)
	}

	// Re-adding the removed rule reuses nothing ordinal-wise: fresh slot,
	// but the id and key are free again.
	p, err = s.Plan([]Op{{Kind: Add, C: r2}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, p)
	gen := s.Snapshot()
	if gen.Live() != 4 {
		t.Fatalf("live after re-add = %d", gen.Live())
	}
	live := gen.Constraints()
	if live[len(live)-1] != r2 {
		t.Fatal("re-added rule did not append to the catalog order")
	}

	// Snapshots are insulated from later commits.
	p, err = s.Plan([]Op{{Kind: Remove, ID: "r1"}}, sch)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s, p)
	if gen.Live() != 4 || len(gen.Constraints()) != 4 {
		t.Fatal("published generation changed under a later commit")
	}
}

func TestRebuildSemantics(t *testing.T) {
	sch := testSchema(t)
	r1, r2, r3 := rule("r1", "u", 1), rule("r2", "v", 2), rule("r3", "w", 3)
	cat, err := constraint.NewCatalog(r1, r2, r3)
	if err != nil {
		t.Fatal(err)
	}
	out, plan, err := Rebuild(cat, []Op{
		{Kind: Replace, ID: "r1", C: rule("r1", "uu", 9)},
		{Kind: Remove, ID: "r2"},
	}, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.RemovedOrds) != 2 || len(plan.Added) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	all := out.All()
	// Survivor order preserved, replacement appended.
	if len(all) != 2 || all[0] != r3 || all[1].ID != "r1" || all[1] == r1 {
		t.Fatalf("rebuilt order wrong: %v", all)
	}

	if _, _, err := Rebuild(cat, []Op{{Kind: Remove, ID: "nope"}}, sch); err == nil {
		t.Error("rebuild accepted an invalid delta")
	}
}
