// Package canon normalizes queries into a canonical form so that syntactic
// near-duplicates — permuted conjunct lists, duplicated predicates, redundant
// bounds (A >= 5 alongside A >= 3), mergeable interval bounds
// (A >= 5 ∧ A <= 5 ⇒ A = 5), and join tautologies (x.a = x.a) — collapse to
// one representative. The engine fingerprints the canonical form, so all of
// them share one result-cache slot, and the subsumption layer compares
// canonical forms structurally.
//
// The reduction is deliberately confined to sound, decidable reasoning: it
// only drops a predicate when another predicate over the same operand pair
// provably entails it (predicate.Implies — the paper's own bound calculus),
// and it never reasons across attributes. Contradictory pairs are left
// untouched; proving emptiness is the optimizer's job (contradiction
// detection), not the cache key's. Project, class and relationship lists are
// sorted but never deduplicated — an invalid query with duplicate classes
// must not collide with the valid query that has them once.
//
// Determinism is load-bearing: two queries with the same conjunct multiset
// must reduce to the same canonical query object value, no matter how their
// lists were ordered, because the differential suites compare a cached
// canonical optimization byte-for-byte against a cold one. Reduce therefore
// processes predicates in key-sorted order, so even mutually-implying
// predicates with distinct keys (A >= 5 as int versus A >= 5.0 as float)
// resolve to the same survivor — the smaller key — on every input ordering.
package canon

import (
	"sort"

	"sqo/internal/predicate"
	"sqo/internal/query"
)

// Reduction is the reusable scratch state of one reduction: which join and
// selective predicates survive, which merged predicates were synthesized, and
// whether anything changed. The zero value is ready to use; the engine pools
// Reductions so the cache-lookup path performs no allocation.
type Reduction struct {
	// JoinKeep is parallel to q.Joins; false marks a dropped predicate.
	JoinKeep []bool
	// SelKeep is parallel to the virtual selective list — q.Selects
	// followed by Merged — so a synthesized bound can itself be pruned by
	// a later pass.
	SelKeep []bool
	// Merged holds predicates synthesized by bound merging
	// (A >= c ∧ A <= c ⇒ A = c).
	Merged []predicate.Predicate
	// Changed reports whether reduction altered the conjunct multiset
	// (dropped or merged anything). A pure reordering leaves it false.
	Changed bool
	// Sorted reports whether the input lists were already in canonical
	// order. When Sorted && !Changed, the query is already canonical and
	// Canonicalize returns it unmaterialized.
	Sorted bool

	nSel int
	ord  []int
}

// Reduce computes the canonical conjunct set of q into r without
// materializing a query. It is allocation-free in steady state (scratch
// slices are reused; only a bound merge constructs a new predicate).
func Reduce(q *query.Query, r *Reduction) {
	r.reset(q)
	r.reduceJoins(q)
	r.reduceSels(q)
	r.Sorted = inputSorted(q)
}

func (r *Reduction) reset(q *query.Query) {
	r.JoinKeep = resizeBool(r.JoinKeep, len(q.Joins))
	r.SelKeep = resizeBool(r.SelKeep, len(q.Selects))
	r.Merged = r.Merged[:0]
	r.Changed = false
	r.Sorted = false
	r.nSel = len(q.Selects)
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = true
	}
	return s
}

// selAt resolves a virtual selective index: original selects first, then
// merged predicates.
func (r *Reduction) selAt(q *query.Query, i int) predicate.Predicate {
	if i < r.nSel {
		return q.Selects[i]
	}
	return r.Merged[i-r.nSel]
}

// sortOrd fills r.ord with the alive indices of a keep slice, sorted by
// predicate key (insertion sort: the lists are small and this keeps the
// lookup path allocation-free).
func (r *Reduction) sortOrd(n int, keep []bool, keyAt func(int) string) {
	r.ord = r.ord[:0]
	for i := 0; i < n; i++ {
		if keep[i] {
			r.ord = append(r.ord, i)
		}
	}
	for i := 1; i < len(r.ord); i++ {
		for j := i; j > 0 && keyAt(r.ord[j]) < keyAt(r.ord[j-1]); j-- {
			r.ord[j], r.ord[j-1] = r.ord[j-1], r.ord[j]
		}
	}
}

// reduceJoins drops join tautologies (x.a op x.a for reflexive op), duplicate
// keys, and joins implied by a surviving join over the same operand pair.
func (r *Reduction) reduceJoins(q *query.Query) {
	for i, p := range q.Joins {
		if p.IsJoin() && p.Left == p.RightAttr &&
			(p.Op == predicate.EQ || p.Op == predicate.LE || p.Op == predicate.GE) {
			r.JoinKeep[i] = false
			r.Changed = true
		}
	}
	r.sortOrd(len(q.Joins), r.JoinKeep, func(i int) string { return q.Joins[i].Key() })
	for ii := 0; ii < len(r.ord); ii++ {
		i := r.ord[ii]
		if !r.JoinKeep[i] {
			continue
		}
		pi := q.Joins[i]
		for jj := ii + 1; jj < len(r.ord); jj++ {
			j := r.ord[jj]
			if !r.JoinKeep[j] {
				continue
			}
			pj := q.Joins[j]
			switch {
			case pi.Key() == pj.Key(), pi.Implies(pj):
				r.JoinKeep[j] = false
				r.Changed = true
			case pj.Implies(pi):
				r.JoinKeep[i] = false
				r.Changed = true
			}
			if !r.JoinKeep[i] {
				break
			}
		}
	}
}

// reduceSels runs the selective-predicate reduction to fixpoint: duplicate
// keys and implied bounds are dropped, and a GE/LE pair on one attribute
// whose constants compare equal merges into an EQ (which then participates in
// the next pass like any other predicate). Every changed iteration strictly
// shrinks the alive set, so the loop terminates.
func (r *Reduction) reduceSels(q *query.Query) {
	for {
		changed := false
		r.sortOrd(r.nSel+len(r.Merged), r.SelKeep, func(i int) string { return r.selAt(q, i).Key() })
		// Prune: processing in key order makes the survivor of a
		// mutually-implying pair (distinct keys, equal semantics) the
		// smaller key on every input ordering.
		for ii := 0; ii < len(r.ord); ii++ {
			i := r.ord[ii]
			if !r.SelKeep[i] {
				continue
			}
			pi := r.selAt(q, i)
			for jj := ii + 1; jj < len(r.ord); jj++ {
				j := r.ord[jj]
				if !r.SelKeep[j] {
					continue
				}
				pj := r.selAt(q, j)
				switch {
				case pi.Key() == pj.Key(), pi.Implies(pj):
					r.SelKeep[j] = false
					changed = true
				case pj.Implies(pi):
					r.SelKeep[i] = false
					changed = true
				}
				if !r.SelKeep[i] {
					break
				}
			}
		}
		// Merge: A >= c ∧ A <= c ⇒ A = c. The synthesized predicate
		// takes the GE operand's constant, so the result is independent
		// of which bound was listed first.
		for ii := 0; ii < len(r.ord); ii++ {
			i := r.ord[ii]
			if !r.SelKeep[i] {
				continue
			}
			pi := r.selAt(q, i)
			if pi.IsJoin() || (pi.Op != predicate.GE && pi.Op != predicate.LE) {
				continue
			}
			for jj := ii + 1; jj < len(r.ord); jj++ {
				j := r.ord[jj]
				if !r.SelKeep[j] {
					continue
				}
				pj := r.selAt(q, j)
				if pj.IsJoin() || pj.Left != pi.Left {
					continue
				}
				var ge, le predicate.Predicate
				switch {
				case pi.Op == predicate.GE && pj.Op == predicate.LE:
					ge, le = pi, pj
				case pi.Op == predicate.LE && pj.Op == predicate.GE:
					ge, le = pj, pi
				default:
					continue
				}
				if cmp, err := ge.Const.Compare(le.Const); err != nil || cmp != 0 {
					continue
				}
				r.Merged = append(r.Merged,
					predicate.Sel(ge.Left.Class, ge.Left.Attr, predicate.EQ, ge.Const))
				r.SelKeep = append(r.SelKeep, true)
				r.SelKeep[i] = false
				r.SelKeep[j] = false
				changed = true
				break
			}
		}
		if !changed {
			return
		}
		r.Changed = true
	}
}

// inputSorted reports whether all five lists of q are already in canonical
// order (non-decreasing; duplicates allowed — they set Changed anyway).
func inputSorted(q *query.Query) bool {
	for i := 1; i < len(q.Project); i++ {
		if q.Project[i].Less(q.Project[i-1]) {
			return false
		}
	}
	for i := 1; i < len(q.Joins); i++ {
		if q.Joins[i].Key() < q.Joins[i-1].Key() {
			return false
		}
	}
	for i := 1; i < len(q.Selects); i++ {
		if q.Selects[i].Key() < q.Selects[i-1].Key() {
			return false
		}
	}
	for i := 1; i < len(q.Relationships); i++ {
		if q.Relationships[i] < q.Relationships[i-1] {
			return false
		}
	}
	for i := 1; i < len(q.Classes); i++ {
		if q.Classes[i] < q.Classes[i-1] {
			return false
		}
	}
	return true
}

// Canonicalize materializes the canonical query of a completed reduction.
// When the input is already canonical (sorted, nothing reduced) it returns q
// itself; otherwise it builds a fresh query — surviving conjuncts plus merged
// bounds, every list sorted — and never mutates q.
func Canonicalize(q *query.Query, r *Reduction) *query.Query {
	if !r.Changed && r.Sorted {
		return q
	}
	cq := &query.Query{
		Project:       append([]predicate.AttrRef(nil), q.Project...),
		Relationships: append([]string(nil), q.Relationships...),
		Classes:       append([]string(nil), q.Classes...),
	}
	for i, p := range q.Joins {
		if r.JoinKeep[i] {
			cq.Joins = append(cq.Joins, p)
		}
	}
	for i := 0; i < r.nSel+len(r.Merged); i++ {
		if r.SelKeep[i] {
			cq.Selects = append(cq.Selects, r.selAt(q, i))
		}
	}
	sort.Slice(cq.Project, func(i, j int) bool { return cq.Project[i].Less(cq.Project[j]) })
	sort.Slice(cq.Joins, func(i, j int) bool { return cq.Joins[i].Key() < cq.Joins[j].Key() })
	sort.Slice(cq.Selects, func(i, j int) bool { return cq.Selects[i].Key() < cq.Selects[j].Key() })
	sort.Strings(cq.Relationships)
	sort.Strings(cq.Classes)
	return cq
}

// Canonical is the one-shot convenience form: reduce q and materialize its
// canonical query. The boolean reports whether the canonical query differs
// from q (by content or by order).
func Canonical(q *query.Query) (*query.Query, bool) {
	var r Reduction
	Reduce(q, &r)
	cq := Canonicalize(q, &r)
	return cq, cq != q
}
