package canon

import (
	"testing"

	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

func sel(attr string, op predicate.Op, v int64) predicate.Predicate {
	return predicate.Sel("c", attr, op, value.Int(v))
}

func baseQuery(sels ...predicate.Predicate) *query.Query {
	q := query.New("c")
	q.AddProject("c", "a")
	for _, p := range sels {
		q.AddSelect(p)
	}
	return q
}

func TestCanonicalDropsDuplicates(t *testing.T) {
	q := baseQuery(sel("a", predicate.EQ, 5), sel("a", predicate.EQ, 5))
	cq, changed := Canonical(q)
	if !changed {
		t.Fatal("duplicate predicate should change the query")
	}
	if len(cq.Selects) != 1 {
		t.Fatalf("want 1 select, got %v", cq.Selects)
	}
	if len(q.Selects) != 2 {
		t.Fatal("input query mutated")
	}
}

func TestCanonicalKeepsStrongestBound(t *testing.T) {
	q := baseQuery(sel("a", predicate.GE, 3), sel("a", predicate.GE, 5), sel("b", predicate.LT, 9))
	cq, changed := Canonical(q)
	if !changed {
		t.Fatal("redundant bound should change the query")
	}
	if len(cq.Selects) != 2 {
		t.Fatalf("want 2 selects, got %v", cq.Selects)
	}
	for _, p := range cq.Selects {
		if p.Left.Attr == "a" && !(p.Op == predicate.GE && p.Const.IntVal() == 5) {
			t.Fatalf("weaker bound survived: %v", p)
		}
	}
}

func TestCanonicalMergesIntervalToEquality(t *testing.T) {
	q := baseQuery(sel("a", predicate.GE, 5), sel("a", predicate.LE, 5))
	cq, changed := Canonical(q)
	if !changed {
		t.Fatal("mergeable interval should change the query")
	}
	if len(cq.Selects) != 1 || cq.Selects[0].Op != predicate.EQ || cq.Selects[0].Const.IntVal() != 5 {
		t.Fatalf("want single a = 5, got %v", cq.Selects)
	}
}

func TestCanonicalDropsJoinTautology(t *testing.T) {
	q := query.New("c")
	q.AddJoin(predicate.Join("c", "a", predicate.EQ, "c", "a"))
	q.AddJoin(predicate.Join("c", "a", predicate.EQ, "c", "b"))
	cq, changed := Canonical(q)
	if !changed {
		t.Fatal("tautological join should change the query")
	}
	if len(cq.Joins) != 1 || cq.Joins[0].Left.Attr != "a" || cq.Joins[0].RightAttr.Attr != "b" {
		t.Fatalf("want only c.a = c.b, got %v", cq.Joins)
	}
}

func TestCanonicalKeepsContradictions(t *testing.T) {
	// Emptiness proofs belong to the optimizer, not the cache key: a
	// contradictory pair must survive canonicalization verbatim.
	q := baseQuery(sel("a", predicate.EQ, 5), sel("a", predicate.EQ, 6))
	cq, _ := Canonical(q)
	if len(cq.Selects) != 2 {
		t.Fatalf("contradictory pair must survive, got %v", cq.Selects)
	}
}

func TestCanonicalSortsWithoutDeduplicatingStructure(t *testing.T) {
	q := query.New("z", "a")
	q.AddRelationship("r2")
	q.AddRelationship("r1")
	q.AddProject("z", "x")
	q.AddProject("a", "y")
	cq, changed := Canonical(q)
	if !changed {
		t.Fatal("unsorted lists should change the query")
	}
	if cq.Classes[0] != "a" || cq.Classes[1] != "z" {
		t.Fatalf("classes not sorted: %v", cq.Classes)
	}
	if cq.Relationships[0] != "r1" {
		t.Fatalf("relationships not sorted: %v", cq.Relationships)
	}
	if cq.Project[0].Class != "a" {
		t.Fatalf("projection not sorted: %v", cq.Project)
	}
	// Duplicate classes (an invalid query) must not collapse into the
	// valid single-class form.
	dup := query.New("a", "a")
	cdup, _ := Canonical(dup)
	if len(cdup.Classes) != 2 {
		t.Fatalf("duplicate class list must keep its cardinality, got %v", cdup.Classes)
	}
}

func TestCanonicalAlreadyCanonicalAliases(t *testing.T) {
	q := baseQuery(sel("a", predicate.EQ, 5), sel("b", predicate.GT, 1))
	cq, _ := Canonical(q) // sorts
	cq2, changed := Canonical(cq)
	if changed || cq2 != cq {
		t.Fatal("canonical query must pass through unmaterialized")
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	q := baseQuery(
		sel("a", predicate.GE, 5), sel("a", predicate.LE, 5),
		sel("b", predicate.GT, 3), sel("b", predicate.GT, 1),
		sel("a", predicate.NE, 2),
	)
	c1, _ := Canonical(q)
	c2, changed := Canonical(c1)
	if changed {
		t.Fatalf("canonical form not idempotent: %s vs %s", c1, c2)
	}
}

func TestCanonicalOrderInsensitive(t *testing.T) {
	// Cross-kind numeric bounds compare equal but have distinct keys —
	// the mutual-implication case the key-ordered processing pins down.
	preds := []predicate.Predicate{
		sel("a", predicate.GE, 5),
		predicate.Sel("c", "a", predicate.GE, value.Float(5)),
		sel("a", predicate.LE, 5),
		sel("b", predicate.GT, 3),
		sel("b", predicate.GT, 1),
	}
	perm := []int{4, 2, 0, 3, 1}
	q1 := baseQuery(preds...)
	var permuted []predicate.Predicate
	for _, i := range perm {
		permuted = append(permuted, preds[i])
	}
	q2 := baseQuery(permuted...)
	c1, _ := Canonical(q1)
	c2, _ := Canonical(q2)
	if c1.String() != c2.String() {
		t.Fatalf("canonical form order-dependent:\n%s\n%s", c1, c2)
	}
}
