package canon

import (
	"math/rand"
	"testing"

	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

// fuzzQuery decodes a byte stream into a small query: each predicate takes
// three bytes (attribute, operator, constant), with joins mixed in. The
// decoder is total — every input yields some query — so the fuzzer explores
// the reduction rules, not a parser.
func fuzzQuery(data []byte) *query.Query {
	attrs := []string{"a", "b", "c", "d"}
	q := query.New("x", "y")
	q.AddProject("x", "a")
	for i := 0; i+2 < len(data); i += 3 {
		attr := attrs[int(data[i])%len(attrs)]
		op := predicate.Op(int(data[i+1]) % 6)
		c := int64(data[i+2]) % 8
		switch data[i] % 5 {
		case 4: // join, possibly reflexive
			right := attrs[int(data[i+2])%len(attrs)]
			q.AddJoin(predicate.Join("x", attr, op, "y", right))
		case 3: // cross-kind numeric constant
			q.AddSelect(predicate.Sel("x", attr, op, value.Float(float64(c))))
		default:
			q.AddSelect(predicate.Sel("x", attr, op, value.Int(c)))
		}
	}
	return q
}

// permuted returns a deep-copied query with all five lists shuffled and a
// few conjuncts duplicated, i.e. a syntactic near-duplicate with the same
// semantics (duplication is idempotent for conjuncts).
func permuted(q *query.Query, seed int64) *query.Query {
	rng := rand.New(rand.NewSource(seed))
	c := q.Clone()
	if n := len(c.Selects); n > 0 {
		c.Selects = append(c.Selects, c.Selects[rng.Intn(n)])
	}
	if n := len(c.Joins); n > 0 {
		c.Joins = append(c.Joins, c.Joins[rng.Intn(n)])
	}
	rng.Shuffle(len(c.Selects), func(i, j int) { c.Selects[i], c.Selects[j] = c.Selects[j], c.Selects[i] })
	rng.Shuffle(len(c.Joins), func(i, j int) { c.Joins[i], c.Joins[j] = c.Joins[j], c.Joins[i] })
	rng.Shuffle(len(c.Project), func(i, j int) { c.Project[i], c.Project[j] = c.Project[j], c.Project[i] })
	rng.Shuffle(len(c.Relationships), func(i, j int) {
		c.Relationships[i], c.Relationships[j] = c.Relationships[j], c.Relationships[i]
	})
	rng.Shuffle(len(c.Classes), func(i, j int) { c.Classes[i], c.Classes[j] = c.Classes[j], c.Classes[i] })
	return c
}

// FuzzCanonicalize checks the two invariants the semantic cache stands on:
// the canonical form is idempotent, and it is stable under conjunct
// permutation and duplication.
func FuzzCanonicalize(f *testing.F) {
	f.Add([]byte{0, 5, 3, 0, 3, 3, 1, 4, 2}, int64(1))
	f.Add([]byte{3, 5, 5, 0, 3, 5, 4, 0, 0, 4, 0, 0}, int64(7))
	f.Add([]byte{2, 0, 4, 2, 0, 4, 2, 1, 4}, int64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		q := fuzzQuery(data)
		cq, _ := Canonical(q)

		c2, changed := Canonical(cq)
		if changed || c2 != cq {
			t.Fatalf("not idempotent:\nq     = %s\ncanon = %s\ntwice = %s", q, cq, c2)
		}

		near := permuted(q, seed)
		cn, _ := Canonical(near)
		if cq.String() != cn.String() {
			t.Fatalf("order/duplication sensitive:\nq1 = %s\nq2 = %s\nc1 = %s\nc2 = %s", q, near, cq, cn)
		}
	})
}
