// Package derive implements the Siegel-style extension the paper points at
// in Sections 1–2: "rules that reflect the current database state, such as
// those proposed by Siegel [Sie88], can easily be accommodated", and Yu and
// Sun's [YuS89] automatic knowledge acquisition. Instead of relying solely on
// declared integrity constraints, the deriver scans the current database and
// discovers Horn rules that hold in *this* state:
//
//   - functional pairs: every instance with A = v has B = w
//     (e.g. every supervisor's clearance is "top secret");
//   - numeric bounds: every instance with A = v has B ≤ hi (and B ≥ lo)
//     (e.g. every frozen-food cargo's quantity is ≤ 480 — tighter than the
//     declared c6, because it reflects the data actually stored);
//   - link-implied values: every instance linked (via relationship r) to an
//     instance with A = v has B = w
//     (e.g. every cargo collected by a refrigerated truck is frozen food —
//     the deriver rediscovers c1 from the data).
//
// Derived rules are ordinary constraint.Constraints marked StateDependent:
// they guarantee equivalence only in the database state they were derived
// from, so callers must discard them when the data changes (the paper's
// "semantically equivalent query produces the same answer as the original
// query in the current database state").
package derive

import (
	"fmt"
	"sort"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/schema"
	"sqo/internal/storage"
	"sqo/internal/value"
)

// Options bounds rule discovery.
type Options struct {
	// MaxAntecedentDistinct skips antecedent attributes with more distinct
	// values than this: a rule per customer ID is noise. Zero means 12.
	MaxAntecedentDistinct int
	// MinSupport is the minimum number of instances a value group needs
	// before rules are derived from it; tiny groups over-fit. Zero means 4.
	MinSupport int
	// Bounds enables numeric-bound rules (A = v → B ≤ hi, B ≥ lo).
	Bounds bool
	// IncludeTrivial keeps bound rules that match the attribute's global
	// range (they filter nothing; off by default).
	IncludeTrivial bool
}

func (o Options) withDefaults() Options {
	if o.MaxAntecedentDistinct == 0 {
		o.MaxAntecedentDistinct = 12
	}
	if o.MinSupport == 0 {
		o.MinSupport = 4
	}
	return o
}

// Rules scans the database and returns the discovered state-dependent rules
// as a catalog. Discovery is deterministic: classes, attributes and values
// are visited in sorted order.
func Rules(db *storage.Database, opts Options) (*constraint.Catalog, error) {
	opts = opts.withDefaults()
	d := &deriver{db: db, sch: db.Schema(), stats: db.Analyze(), opts: opts}
	var rules []*constraint.Constraint
	intra, err := d.intraRules()
	if err != nil {
		return nil, err
	}
	rules = append(rules, intra...)
	inter, err := d.interRules()
	if err != nil {
		return nil, err
	}
	rules = append(rules, inter...)
	if opts.Bounds {
		rng, err := d.rangeRules()
		if err != nil {
			return nil, err
		}
		rules = append(rules, rng...)
	}
	return constraint.NewCatalog(rules...)
}

type deriver struct {
	db    *storage.Database
	sch   *schema.Schema
	stats *storage.Stats
	opts  Options
	seq   int
}

func (d *deriver) id() string {
	d.seq++
	return fmt.Sprintf("d%d", d.seq)
}

// groupKey identifies one antecedent value group: class.attr = value.
type groupKey struct {
	attr string
	val  value.Value
}

// antecedentAttrs returns the class's attributes usable as rule antecedents:
// few distinct values, equality-friendly kinds.
func (d *deriver) antecedentAttrs(class string) []string {
	var out []string
	for _, a := range d.sch.EffectiveAttributes(class) {
		as := d.stats.Classes[class].Attrs[a.Name]
		if as.Distinct == 0 || as.Distinct > d.opts.MaxAntecedentDistinct {
			continue
		}
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// intraRules discovers functional pairs and numeric bounds within one class.
func (d *deriver) intraRules() ([]*constraint.Constraint, error) {
	var rules []*constraint.Constraint
	for _, class := range d.sch.Classes() {
		if d.db.Count(class) == 0 {
			continue
		}
		attrs := d.sch.EffectiveAttributes(class)
		for _, antAttr := range d.antecedentAttrs(class) {
			groups, err := d.collectGroups(class, antAttr)
			if err != nil {
				return nil, err
			}
			for _, g := range groups {
				if len(g.members) < d.opts.MinSupport {
					continue
				}
				for _, cons := range attrs {
					if cons.Name == antAttr {
						continue
					}
					rs, err := d.rulesForGroup(class, g, cons)
					if err != nil {
						return nil, err
					}
					rules = append(rules, rs...)
				}
			}
		}
	}
	return rules, nil
}

// group is the instance set sharing one antecedent value.
type group struct {
	key     groupKey
	members []storage.Instance
}

// collectGroups partitions the class extent by the antecedent attribute's
// value, in deterministic value order.
func (d *deriver) collectGroups(class, attr string) ([]group, error) {
	idx, err := d.db.AttrIndexOf(class, attr)
	if err != nil {
		return nil, err
	}
	byVal := map[value.Value][]storage.Instance{}
	err = d.db.Scan(class, nil, func(inst storage.Instance) bool {
		v := inst.Values[idx]
		byVal[v] = append(byVal[v], inst)
		return true
	})
	if err != nil {
		return nil, err
	}
	keys := make([]value.Value, 0, len(byVal))
	for v := range byVal {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Key() < keys[j].Key() })
	out := make([]group, 0, len(keys))
	for _, v := range keys {
		out = append(out, group{key: groupKey{attr: attr, val: v}, members: byVal[v]})
	}
	return out, nil
}

// rulesForGroup inspects one (group, consequent attribute) pair and emits a
// functional rule or bound rules when they hold.
func (d *deriver) rulesForGroup(class string, g group, cons schema.Attribute) ([]*constraint.Constraint, error) {
	idx, err := d.db.AttrIndexOf(class, cons.Name)
	if err != nil {
		return nil, err
	}
	first := g.members[0].Values[idx]
	functional := true
	var lo, hi value.Value
	for _, inst := range g.members {
		v := inst.Values[idx]
		if !v.Equal(first) {
			functional = false
		}
		if !lo.Valid() || v.Less(lo) {
			lo = v
		}
		if !hi.Valid() || hi.Less(v) {
			hi = v
		}
	}
	ant := []predicate.Predicate{predicate.Eq(class, g.key.attr, g.key.val)}
	if functional {
		c := constraint.New(d.id(), ant, nil, predicate.Eq(class, cons.Name, first)).
			WithDoc(fmt.Sprintf("state: all %s with %s = %s have %s = %s",
				class, g.key.attr, g.key.val, cons.Name, first))
		c.StateDependent = true
		return []*constraint.Constraint{c}, nil
	}
	if !d.opts.Bounds || !cons.Type.Numeric() {
		return nil, nil
	}
	var rules []*constraint.Constraint
	global := d.stats.Classes[class].Attrs[cons.Name]
	if d.opts.IncludeTrivial || !hi.Equal(global.Max) {
		c := constraint.New(d.id(), ant, nil, predicate.Sel(class, cons.Name, predicate.LE, hi)).
			WithDoc(fmt.Sprintf("state: all %s with %s = %s have %s <= %s",
				class, g.key.attr, g.key.val, cons.Name, hi))
		c.StateDependent = true
		rules = append(rules, c)
	}
	if d.opts.IncludeTrivial || !lo.Equal(global.Min) {
		c := constraint.New(d.id(), ant, nil, predicate.Sel(class, cons.Name, predicate.GE, lo)).
			WithDoc(fmt.Sprintf("state: all %s with %s = %s have %s >= %s",
				class, g.key.attr, g.key.val, cons.Name, lo))
		c.StateDependent = true
		rules = append(rules, c)
	}
	return rules, nil
}

// rangeRules discovers bound-conditioned bounds within one class: for a
// numeric antecedent attribute A split at its median m, the instances with
// A >= m share tighter bounds on another numeric attribute B. This is how
// rules shaped like the declared c11 (engine.capacity >= 400 → emission >= 3)
// are rediscovered from data.
func (d *deriver) rangeRules() ([]*constraint.Constraint, error) {
	var rules []*constraint.Constraint
	for _, class := range d.sch.Classes() {
		if d.db.Count(class) < d.opts.MinSupport*2 {
			continue
		}
		attrs := d.sch.EffectiveAttributes(class)
		for _, ant := range attrs {
			if !ant.Type.Numeric() {
				continue
			}
			threshold, ok := d.medianOf(class, ant.Name)
			if !ok {
				continue
			}
			antIdx, err := d.db.AttrIndexOf(class, ant.Name)
			if err != nil {
				return nil, err
			}
			// Collect the upper group A >= threshold.
			var members []storage.Instance
			err = d.db.Scan(class, nil, func(inst storage.Instance) bool {
				if c, cerr := inst.Values[antIdx].Compare(threshold); cerr == nil && c >= 0 {
					members = append(members, inst)
				}
				return true
			})
			if err != nil {
				return nil, err
			}
			if len(members) < d.opts.MinSupport {
				continue
			}
			antPred := predicate.Sel(class, ant.Name, predicate.GE, threshold)
			for _, cons := range attrs {
				if cons.Name == ant.Name || !cons.Type.Numeric() {
					continue
				}
				consIdx, err := d.db.AttrIndexOf(class, cons.Name)
				if err != nil {
					return nil, err
				}
				var lo, hi value.Value
				for _, inst := range members {
					v := inst.Values[consIdx]
					if !lo.Valid() || v.Less(lo) {
						lo = v
					}
					if !hi.Valid() || hi.Less(v) {
						hi = v
					}
				}
				global := d.stats.Classes[class].Attrs[cons.Name]
				if d.opts.IncludeTrivial || !lo.Equal(global.Min) {
					c := constraint.New(d.id(),
						[]predicate.Predicate{antPred}, nil,
						predicate.Sel(class, cons.Name, predicate.GE, lo)).
						WithDoc(fmt.Sprintf("state: all %s with %s >= %s have %s >= %s",
							class, ant.Name, threshold, cons.Name, lo))
					c.StateDependent = true
					rules = append(rules, c)
				}
				if d.opts.IncludeTrivial || !hi.Equal(global.Max) {
					c := constraint.New(d.id(),
						[]predicate.Predicate{antPred}, nil,
						predicate.Sel(class, cons.Name, predicate.LE, hi)).
						WithDoc(fmt.Sprintf("state: all %s with %s >= %s have %s <= %s",
							class, ant.Name, threshold, cons.Name, hi))
					c.StateDependent = true
					rules = append(rules, c)
				}
			}
		}
	}
	return rules, nil
}

// medianOf returns the median value of a numeric attribute, or false when
// the class is empty.
func (d *deriver) medianOf(class, attr string) (value.Value, bool) {
	idx, err := d.db.AttrIndexOf(class, attr)
	if err != nil {
		return value.Value{}, false
	}
	var vals []value.Value
	_ = d.db.Scan(class, nil, func(inst storage.Instance) bool {
		vals = append(vals, inst.Values[idx])
		return true
	})
	if len(vals) == 0 {
		return value.Value{}, false
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	return vals[len(vals)/2], true
}

// interRules discovers link-implied functional values: for relationship r
// and a value group on one side, the linked instances on the other side all
// share a consequent value.
func (d *deriver) interRules() ([]*constraint.Constraint, error) {
	var rules []*constraint.Constraint
	for _, rn := range d.sch.Relationships() {
		r := d.sch.Relationship(rn)
		for _, dir := range []struct{ from, to string }{
			{r.Source, r.Target},
			{r.Target, r.Source},
		} {
			if dir.from == dir.to {
				continue
			}
			rs, err := d.linkRules(rn, dir.from, dir.to)
			if err != nil {
				return nil, err
			}
			rules = append(rules, rs...)
		}
	}
	return rules, nil
}

func (d *deriver) linkRules(rel, from, to string) ([]*constraint.Constraint, error) {
	if d.db.Count(from) == 0 || d.db.Count(to) == 0 {
		return nil, nil
	}
	var rules []*constraint.Constraint
	for _, antAttr := range d.antecedentAttrs(from) {
		groups, err := d.collectGroups(from, antAttr)
		if err != nil {
			return nil, err
		}
		for _, cons := range d.sch.EffectiveAttributes(to) {
			consIdx, err := d.db.AttrIndexOf(to, cons.Name)
			if err != nil {
				return nil, err
			}
			for _, g := range groups {
				// Support for link rules counts linked instances, not
				// group members: one supplier can anchor hundreds of
				// links (checked below after traversal).
				// Collect the linked instances' consequent values.
				var first value.Value
				functional := true
				linked := 0
				for _, inst := range g.members {
					targets, err := d.db.Traverse(rel, from, inst.OID, nil)
					if err != nil {
						return nil, err
					}
					for _, oid := range targets {
						tinst, err := d.db.Get(to, oid, nil)
						if err != nil {
							return nil, err
						}
						v := tinst.Values[consIdx]
						linked++
						if !first.Valid() {
							first = v
							continue
						}
						if !v.Equal(first) {
							functional = false
						}
					}
					if !functional {
						break
					}
				}
				if !functional || linked < d.opts.MinSupport {
					continue
				}
				c := constraint.New(d.id(),
					[]predicate.Predicate{predicate.Eq(from, g.key.attr, g.key.val)},
					[]string{rel},
					predicate.Eq(to, cons.Name, first)).
					WithDoc(fmt.Sprintf("state: every %s linked via %s to a %s with %s = %s has %s = %s",
						to, rel, from, g.key.attr, g.key.val, cons.Name, first))
				c.StateDependent = true
				rules = append(rules, c)
			}
		}
	}
	return rules, nil
}

// Merge combines declared integrity constraints with derived state rules
// into one catalog for the optimizer, skipping derived rules that duplicate
// declared ones.
func Merge(declared *constraint.Catalog, derived *constraint.Catalog) (*constraint.Catalog, error) {
	out, err := constraint.NewCatalog(declared.All()...)
	if err != nil {
		return nil, err
	}
	for _, c := range derived.All() {
		if err := out.Add(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}
