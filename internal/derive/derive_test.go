package derive

import (
	"strings"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/costmodel"
	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/pathgen"
	"sqo/internal/predicate"
	"sqo/internal/schema"
	"sqo/internal/storage"
	"sqo/internal/value"
)

// tinyDB builds a hand-crafted world with known regularities:
//
//	emp(dept, grade):  dept="dev" -> grade in [4,6]; dept="hq" -> grade=9
//	box(color) --held-- emp: every box held by a "dev" emp is "red"
func tinyDB(t *testing.T) *storage.Database {
	t.Helper()
	sch := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "dept", Type: value.KindString},
			schema.Attribute{Name: "grade", Type: value.KindInt}).
		Class("box",
			schema.Attribute{Name: "color", Type: value.KindString}).
		Relationship("held", "emp", "box", schema.OneToMany).
		MustBuild()
	db := storage.NewDatabase(sch)
	ins := func(class string, vals map[string]value.Value) storage.OID {
		oid, err := db.Insert(class, vals)
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	var devs, hqs []storage.OID
	for i := 0; i < 6; i++ {
		devs = append(devs, ins("emp", map[string]value.Value{
			"dept":  value.String("dev"),
			"grade": value.Int(int64(4 + i%3)), // 4..6
		}))
	}
	for i := 0; i < 5; i++ {
		hqs = append(hqs, ins("emp", map[string]value.Value{
			"dept":  value.String("hq"),
			"grade": value.Int(9),
		}))
	}
	for i := 0; i < 8; i++ {
		color := "red"
		owner := devs[i%len(devs)]
		if i >= 5 {
			color = []string{"blue", "green", "red"}[i%3]
			owner = hqs[i%len(hqs)]
		}
		box := ins("box", map[string]value.Value{"color": value.String(color)})
		if err := db.Link("held", owner, box); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func findRule(t *testing.T, cat *constraint.Catalog, want *constraint.Constraint) *constraint.Constraint {
	t.Helper()
	for _, c := range cat.All() {
		if c.Key() == want.Key() {
			return c
		}
	}
	return nil
}

func TestDerivesFunctionalIntraRule(t *testing.T) {
	db := tinyDB(t)
	cat, err := Rules(db, Options{MinSupport: 3})
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	want := constraint.New("x",
		[]predicate.Predicate{predicate.Eq("emp", "dept", value.String("hq"))},
		nil,
		predicate.Eq("emp", "grade", value.Int(9)))
	got := findRule(t, cat, want)
	if got == nil {
		t.Fatalf("dept=hq -> grade=9 not derived; rules: %v", cat.All())
	}
	if !got.StateDependent {
		t.Error("derived rules must be marked state-dependent")
	}
	if !strings.Contains(got.Doc, "state:") {
		t.Errorf("derived doc should explain itself: %q", got.Doc)
	}
}

func TestDerivesBoundRules(t *testing.T) {
	db := tinyDB(t)
	cat, err := Rules(db, Options{MinSupport: 3, Bounds: true})
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	// dev grades span [4,6]; the global range is [4,9], so the upper bound
	// is non-trivial and must be derived.
	upper := constraint.New("x",
		[]predicate.Predicate{predicate.Eq("emp", "dept", value.String("dev"))},
		nil,
		predicate.Sel("emp", "grade", predicate.LE, value.Int(6)))
	if findRule(t, cat, upper) == nil {
		t.Errorf("dept=dev -> grade<=6 not derived; rules: %v", cat.All())
	}
	// The lower bound 4 equals the global minimum: trivial, skipped.
	lower := constraint.New("x",
		[]predicate.Predicate{predicate.Eq("emp", "dept", value.String("dev"))},
		nil,
		predicate.Sel("emp", "grade", predicate.GE, value.Int(4)))
	if findRule(t, cat, lower) != nil {
		t.Error("trivial lower bound should be skipped by default")
	}
	// Unless asked for.
	cat2, err := Rules(db, Options{MinSupport: 3, Bounds: true, IncludeTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	if findRule(t, cat2, lower) == nil {
		t.Error("IncludeTrivial should keep the global-range bound")
	}
}

func TestNoBoundsWithoutFlag(t *testing.T) {
	db := tinyDB(t)
	cat, err := Rules(db, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cat.All() {
		if c.Consequent.Op != predicate.EQ {
			t.Errorf("bounds disabled but derived %s", c)
		}
	}
}

func TestDerivesLinkRule(t *testing.T) {
	db := tinyDB(t)
	cat, err := Rules(db, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := constraint.New("x",
		[]predicate.Predicate{predicate.Eq("emp", "dept", value.String("dev"))},
		[]string{"held"},
		predicate.Eq("box", "color", value.String("red")))
	if findRule(t, cat, want) == nil {
		t.Errorf("dev -> red boxes not derived; rules: %v", cat.All())
	}
}

func TestMinSupportSuppressesSmallGroups(t *testing.T) {
	db := tinyDB(t)
	cat, err := Rules(db, Options{MinSupport: 100})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 0 {
		t.Errorf("support threshold 100 should derive nothing, got %d", cat.Len())
	}
}

// TestDerivedRulesHoldOnSource: every derived rule is verified true on the
// database it came from.
func TestDerivedRulesHoldOnSource(t *testing.T) {
	for _, mk := range []func() *storage.Database{
		func() *storage.Database { return tinyDB(t) },
		func() *storage.Database { return datagen.MustGenerate(datagen.DB1()) },
	} {
		db := mk()
		cat, err := Rules(db, Options{Bounds: true})
		if err != nil {
			t.Fatal(err)
		}
		if cat.Len() == 0 {
			t.Fatal("expected some derived rules")
		}
		if err := cat.Validate(db.Schema()); err != nil {
			t.Fatalf("derived rules must validate: %v", err)
		}
		violated, err := engine.CheckCatalog(db, cat)
		if err != nil {
			t.Fatal(err)
		}
		if violated != "" {
			t.Errorf("derived rule %s does not hold on its own source", violated)
		}
	}
}

// TestRediscoversDeclaredConstraints: on the logistics data, the deriver
// finds the declared c1 (refrigerated trucks carry frozen food) from the
// data alone.
func TestRediscoversDeclaredConstraints(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	cat, err := Rules(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := constraint.New("x",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("frozen food")))
	if findRule(t, cat, c1) == nil {
		t.Error("c1 should be rediscoverable from the data")
	}
	// c17: SFI supplies only frozen food.
	c17 := constraint.New("x",
		[]predicate.Predicate{predicate.Eq("supplier", "name", value.String("SFI"))},
		[]string{"supplies"},
		predicate.Eq("cargo", "desc", value.String("frozen food")))
	if findRule(t, cat, c17) == nil {
		t.Error("c17 should be rediscoverable from the data")
	}
}

func TestDeterministicDerivation(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	a, err := Rules(db, Options{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rules(db, Options{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("derivation not deterministic: %d vs %d rules", a.Len(), b.Len())
	}
	as, bs := a.All(), b.All()
	for i := range as {
		if as[i].Key() != bs[i].Key() {
			t.Fatalf("rule %d differs across runs", i)
		}
	}
}

func TestMerge(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	derived, err := Rules(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	declared := datagen.Constraints()
	merged, err := Merge(declared, derived)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if merged.Len() < declared.Len() {
		t.Error("merge lost declared constraints")
	}
	// Logical duplicates (rediscovered declared rules) are absorbed.
	if merged.Len() >= declared.Len()+derived.Len() {
		t.Error("expected at least one rediscovered duplicate to merge away")
	}
	// Declared constraints keep their identity.
	if merged.Get("c1") == nil {
		t.Error("c1 lost in merge")
	}
}

// TestEquivalenceWithDerivedRules is the extension's soundness property:
// optimizing with state-derived rules still returns the same results *on the
// state they were derived from*.
func TestEquivalenceWithDerivedRules(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	declared := datagen.Constraints()
	derived, err := Rules(db, Options{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(declared, derived)
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(db.Schema(), db.Analyze(), engine.DefaultWeights)
	opt := core.NewOptimizer(db.Schema(), core.CatalogSource{Catalog: merged}, core.Options{Cost: model})
	exec := engine.New(db)
	gen := pathgen.NewGenerator(db, declared, pathgen.Options{Seed: 21})
	queries, err := gen.Workload(15)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		before, err := exec.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		after, err := exec.Execute(res.Optimized)
		if err != nil {
			t.Fatalf("execute optimized: %v\n%s", err, res.Optimized)
		}
		a, b := before.Canonical(), after.Canonical()
		if len(a) != len(b) {
			t.Fatalf("derived rules broke equivalence: %d vs %d rows\nq: %s\nopt: %s",
				len(a), len(b), q, res.Optimized)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("derived rules broke equivalence at row %d\nq: %s\nopt: %s", i, q, res.Optimized)
			}
		}
	}
}

// TestRangeRulesHold: the bound-conditioned bound rules (c11-shaped) hold on
// their source data and actually appear for the logistics engines.
func TestRangeRulesHold(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	cat, err := Rules(db, Options{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find a rule conditioned on a numeric lower bound over engine
	// attributes — the c11 shape (capacity >= t -> emission >= b).
	found := false
	for _, c := range cat.All() {
		if len(c.Antecedents) != 1 {
			continue
		}
		a := c.Antecedents[0]
		if a.Left.Class == "engine" && a.Left.Attr == "capacity" && a.Op == predicate.GE &&
			c.Consequent.Left.Attr == "emission" && c.Consequent.Op == predicate.GE {
			found = true
		}
	}
	if !found {
		t.Error("no c11-shaped rule (capacity >= t -> emission >= b) derived")
	}
	if id, err := engine.CheckCatalog(db, cat); err != nil || id != "" {
		t.Errorf("range rules must hold on their source: %q, %v", id, err)
	}
}

// TestStateRuleInvalidation is the other half of the Siegel extension: a
// rule derived from one state can stop holding after an update, and
// CheckConstraint detects it — the signal for invalidating the derived
// catalog. Declared integrity constraints, by contrast, keep holding because
// legal updates respect them.
func TestStateRuleInvalidation(t *testing.T) {
	db := tinyDB(t)
	cat, err := Rules(db, Options{MinSupport: 3, Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	rule := findRule(t, cat, constraint.New("x",
		[]predicate.Predicate{predicate.Eq("emp", "dept", value.String("hq"))},
		nil,
		predicate.Eq("emp", "grade", value.Int(9))))
	if rule == nil {
		t.Fatal("fixture rule missing")
	}
	if n, err := engine.CheckConstraint(db, rule); err != nil || n != 0 {
		t.Fatalf("rule should hold before the update: %d, %v", n, err)
	}
	// Promote one hq employee to grade 10: the state rule is now stale.
	var victim storage.OID
	found := false
	_ = db.Scan("emp", nil, func(inst storage.Instance) bool {
		if inst.Values[0].Equal(value.String("hq")) {
			victim, found = inst.OID, true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no hq employee")
	}
	if err := db.Update("emp", victim, "grade", value.Int(10)); err != nil {
		t.Fatal(err)
	}
	n, err := engine.CheckConstraint(db, rule)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("update should invalidate the state rule")
	}
	// Re-deriving from the new state yields rules that hold again.
	fresh, err := Rules(db, Options{MinSupport: 3, Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if id, err := engine.CheckCatalog(db, fresh); err != nil || id != "" {
		t.Errorf("re-derived rules should hold: %q, %v", id, err)
	}
}

// TestDerivedRulesAddOptimizations: with derived rules the optimizer fires
// at least as many transformations across the workload as with declared
// constraints alone.
func TestDerivedRulesAddOptimizations(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	declared := datagen.Constraints()
	derived, err := Rules(db, Options{Bounds: true})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(declared, derived)
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(db.Schema(), db.Analyze(), engine.DefaultWeights)
	optDecl := core.NewOptimizer(db.Schema(), core.CatalogSource{Catalog: declared}, core.Options{Cost: model})
	optMerged := core.NewOptimizer(db.Schema(), core.CatalogSource{Catalog: merged}, core.Options{Cost: model})
	gen := pathgen.NewGenerator(db, declared, pathgen.Options{Seed: 21})
	queries, err := gen.Workload(15)
	if err != nil {
		t.Fatal(err)
	}
	declFires, mergedFires := 0, 0
	for _, q := range queries {
		rd, err := optDecl.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := optMerged.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		declFires += rd.Stats.Fires
		mergedFires += rm.Stats.Fires
	}
	if mergedFires <= declFires {
		t.Errorf("derived rules should enable more transformations: %d vs %d", mergedFires, declFires)
	}
}
