package baseline

import (
	"time"

	"sqo/internal/core"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// Exhaustive explores every order of applying restriction eliminations and
// introductions (with the same no-flip-flop guards as Straightforward),
// finishing each leaf with class elimination, and returns the cheapest
// outcome under the estimator. The state space is exponential in the number
// of fireable constraints; MaxStates caps the search.
type Exhaustive struct {
	sch       *schema.Schema
	source    core.ConstraintSource
	est       Estimator
	MaxStates int // 0 means the default (100000)
}

// NewExhaustive builds the exhaustive searcher.
func NewExhaustive(sch *schema.Schema, source core.ConstraintSource, est Estimator) *Exhaustive {
	return &Exhaustive{sch: sch, source: source, est: est}
}

type searchState struct {
	q          *query.Query
	eliminated map[string]bool
	introduced map[string]bool
}

// Optimize runs the search. The result's Explored field reports the number
// of distinct query states visited.
func (e *Exhaustive) Optimize(q *query.Query) (*Result, error) {
	start := time.Now()
	if err := q.Validate(e.sch); err != nil {
		return nil, err
	}
	maxStates := e.MaxStates
	if maxStates == 0 {
		maxStates = 100000
	}
	relevant := e.source.Retrieve(q)
	res := &Result{}
	visited := map[string]bool{}
	sf := &Straightforward{sch: e.sch, source: e.source, est: e.est}

	var best *query.Query
	bestCost := 0.0
	consider := func(cand *query.Query) {
		finished := sf.classElimination(cand, relevant, res)
		res.CostCalls++
		c := e.est.EstimateQuery(finished)
		if best == nil || c < bestCost {
			best, bestCost = finished, c
		}
	}

	var walk func(st searchState)
	walk = func(st searchState) {
		sig := st.q.Signature()
		if visited[sig] || len(visited) >= maxStates {
			return
		}
		visited[sig] = true
		consider(st.q)
		for _, c := range relevant {
			if !c.RelevantTo(st.q) || !sf.fireable(c, st.q) {
				continue
			}
			key := c.Consequent.Key()
			if has(st.q, c.Consequent) {
				if st.eliminated[key] || st.introduced[key] {
					continue
				}
				next := searchState{
					q:          removePred(st.q, c.Consequent),
					eliminated: with(st.eliminated, key),
					introduced: st.introduced,
				}
				walk(next)
			} else {
				if st.eliminated[key] || st.introduced[key] {
					continue
				}
				next := searchState{
					q:          addPred(st.q, c.Consequent),
					eliminated: st.eliminated,
					introduced: with(st.introduced, key),
				}
				walk(next)
			}
		}
	}
	walk(searchState{q: q.Clone(), eliminated: map[string]bool{}, introduced: map[string]bool{}})

	res.Optimized = best
	res.Explored = len(visited)
	res.Duration = time.Since(start)
	return res, nil
}

func with(set map[string]bool, key string) map[string]bool {
	out := make(map[string]bool, len(set)+1)
	for k, v := range set {
		out[k] = v
	}
	out[key] = true
	return out
}
