package baseline

import (
	"testing"

	"sqo/internal/core"
	"sqo/internal/datagen"
	"sqo/internal/engine"
)

func TestBestFirstTerminates(t *testing.T) {
	model, source, _ := setup(t)
	bf := NewBestFirst(datagen.Schema(), source, model)
	res, err := bf.Optimize(paperishQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Optimized == nil || res.Explored == 0 {
		t.Fatalf("no search happened: %+v", res)
	}
	if res.CostCalls == 0 {
		t.Error("best-first must pay per-state cost calls")
	}
	if err := res.Optimized.Validate(datagen.Schema()); err != nil {
		t.Errorf("output invalid: %v\n%s", err, res.Optimized)
	}
}

func TestBestFirstRejectsInvalidQuery(t *testing.T) {
	model, source, _ := setup(t)
	bf := NewBestFirst(datagen.Schema(), source, model)
	if _, err := bf.Optimize(paperishQuery().Clone().AddRelationship("ghost")); err == nil {
		t.Error("invalid query should be rejected")
	}
}

func TestBestFirstBudgets(t *testing.T) {
	model, source, _ := setup(t)
	bf := NewBestFirst(datagen.Schema(), source, model)
	bf.MaxExpansions = 1
	res, err := bf.Optimize(paperishQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 1 {
		t.Errorf("Explored = %d, want exactly the expansion budget", res.Explored)
	}
	// Patience: a hopeless search gives up early.
	bf2 := NewBestFirst(datagen.Schema(), source, model)
	bf2.Patience = 2
	res2, err := bf2.Optimize(paperishQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Explored > 64 {
		t.Errorf("patience 2 should stop quickly, explored %d", res2.Explored)
	}
}

// TestBestFirstAtLeastStraightforward: expanding the cheapest state first
// over the whole (guarded) state space must match or beat the greedy
// immediate-apply scan on its own estimate metric.
func TestBestFirstAtLeastStraightforward(t *testing.T) {
	model, source, gen := setup(t)
	sf := NewStraightforward(datagen.Schema(), source, model)
	bf := NewBestFirst(datagen.Schema(), source, model)
	qs, err := gen.Workload(15)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		rs, err := sf.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := bf.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		cs := model.EstimateQuery(rs.Optimized)
		cb := model.EstimateQuery(rb.Optimized)
		if cb > cs+1e-9 {
			t.Errorf("best-first %.3f worse than straightforward %.3f on %s", cb, cs, q)
		}
	}
}

// TestBestFirstPreservesSemantics: searched outputs still return the
// original rows.
func TestBestFirstPreservesSemantics(t *testing.T) {
	model, source, gen, exec := setupDB(t)
	bf := NewBestFirst(datagen.Schema(), source, model)
	qs, err := gen.Workload(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		res, err := bf.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := exec.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := exec.Execute(res.Optimized)
		if err != nil {
			t.Fatalf("execute: %v\n%s", err, res.Optimized)
		}
		ca, cb := a.Canonical(), b.Canonical()
		if len(ca) != len(cb) {
			t.Fatalf("semantics changed: %d vs %d rows\nq: %s\nout: %s", len(ca), len(cb), q, res.Optimized)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("row %d differs\nq: %s\nout: %s", i, q, res.Optimized)
			}
		}
	}
}

// TestCoreBeatsBestFirstOnCostCalls: the headline economics — the core
// optimizer's transformation loop never calls the cost model, while
// best-first pays one call per generated state.
func TestCoreBeatsBestFirstOnCostCalls(t *testing.T) {
	model, source, gen := setup(t)
	bf := NewBestFirst(datagen.Schema(), source, model)
	opt := core.NewOptimizer(datagen.Schema(), source, core.Options{Cost: model})
	qs, err := gen.Workload(10)
	if err != nil {
		t.Fatal(err)
	}
	totalCalls := 0
	for _, q := range qs {
		res, err := bf.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		totalCalls += res.CostCalls
		if _, err := opt.Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	if totalCalls == 0 {
		t.Error("expected best-first to spend cost calls")
	}
	_ = engine.DefaultWeights
}
