// Package baseline implements the comparison optimizers the paper argues
// against in Section 4:
//
//   - Straightforward: "evaluate the profitability of each transformation,
//     and if deemed profitable, immediately apply it to the query. This way,
//     some transformations might preclude other transformations … and hence
//     the order of transformations is important." Every candidate costs a
//     cost-model invocation, and eliminated/introduced predicates must be
//     tracked to guarantee termination — exactly the overheads the paper's
//     tentative-application algorithm avoids.
//
//   - Exhaustive: explores every application order and keeps the cheapest
//     outcome; exponential, usable only on small constraint sets. The tests
//     use it as ground truth that the core algorithm loses nothing.
package baseline

import (
	"time"

	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// Estimator prices whole queries; costmodel.Model implements it.
type Estimator interface {
	EstimateQuery(q *query.Query) float64
}

// Result reports one baseline run.
type Result struct {
	Optimized *query.Query
	// Steps counts applied transformations.
	Steps int
	// CostCalls counts cost-model invocations — the expense the paper's
	// design avoids paying per candidate.
	CostCalls int
	// Explored counts distinct query states visited (Exhaustive only).
	Explored int
	Duration time.Duration
}

// Straightforward is the immediate-apply optimizer.
type Straightforward struct {
	sch    *schema.Schema
	source core.ConstraintSource
	est    Estimator
}

// NewStraightforward builds the baseline over the same inputs as the core
// optimizer.
func NewStraightforward(sch *schema.Schema, source core.ConstraintSource, est Estimator) *Straightforward {
	return &Straightforward{sch: sch, source: source, est: est}
}

// Optimize repeatedly scans the relevant constraints in catalog order and
// immediately applies any profitable transformation, physically rewriting
// the query each time. Termination is guaranteed by never re-introducing an
// eliminated predicate and never eliminating an introduced one (the paper's
// "special effort" note).
func (s *Straightforward) Optimize(q *query.Query) (*Result, error) {
	start := time.Now()
	if err := q.Validate(s.sch); err != nil {
		return nil, err
	}
	res := &Result{}
	cur := q.Clone()
	relevant := s.source.Retrieve(q)

	eliminated := map[string]bool{}
	introduced := map[string]bool{}

	for changed := true; changed; {
		changed = false
		for _, c := range relevant {
			if !c.RelevantTo(cur) || !s.fireable(c, cur) {
				continue
			}
			key := c.Consequent.Key()
			if has(cur, c.Consequent) {
				// Candidate restriction elimination.
				if introduced[key] || eliminated[key] {
					continue
				}
				candidate := removePred(cur, c.Consequent)
				res.CostCalls += 2
				if s.est.EstimateQuery(candidate) < s.est.EstimateQuery(cur) {
					cur = candidate
					eliminated[key] = true
					res.Steps++
					changed = true
				} else {
					// Unprofitable now; mark so we do not re-evaluate
					// the same candidate every scan.
					eliminated[key] = false
				}
			} else {
				// Candidate restriction introduction.
				if eliminated[key] || introduced[key] {
					continue
				}
				candidate := addPred(cur, c.Consequent)
				res.CostCalls += 2
				if s.est.EstimateQuery(candidate) < s.est.EstimateQuery(cur) {
					cur = candidate
					introduced[key] = true
					res.Steps++
					changed = true
				} else {
					introduced[key] = false
				}
			}
		}
	}

	cur = s.classElimination(cur, relevant, res)
	res.Optimized = cur
	res.Duration = time.Since(start)
	return res, nil
}

// fireable reports whether every antecedent of c appears verbatim in q.
func (s *Straightforward) fireable(c *constraint.Constraint, q *query.Query) bool {
	for _, a := range c.Antecedents {
		if !has(q, a) {
			return false
		}
	}
	return true
}

// classElimination drops dangling classes the way the core optimizer does,
// but may only drop predicates it can prove implied: those whose constraint
// is fireable against the current query.
func (s *Straightforward) classElimination(q *query.Query, relevant []*constraint.Constraint, res *Result) *query.Query {
	for {
		victim, viaRel := "", ""
		for _, class := range q.Classes {
			if len(q.Classes) <= 1 || q.ProjectsFrom(class) {
				continue
			}
			// Predicates on the class must all be implied (removable).
			removable := true
			for _, p := range q.PredicatesOn(class) {
				if !s.implied(p, q, relevant) {
					removable = false
					break
				}
			}
			if !removable {
				continue
			}
			var touching []string
			for _, rn := range q.Relationships {
				if r := s.sch.Relationship(rn); r != nil && r.Involves(class) {
					touching = append(touching, rn)
				}
			}
			if len(touching) != 1 {
				continue
			}
			r := s.sch.Relationship(touching[0])
			other, _ := r.Other(class)
			if !r.SingleValuedFrom(other) || !r.TotalFrom(other) {
				continue
			}
			reduced := dropClass(q, class, touching[0], s.sch)
			res.CostCalls += 2
			if s.est.EstimateQuery(reduced) <= s.est.EstimateQuery(q) {
				victim, viaRel = class, touching[0]
				break
			}
		}
		if victim == "" {
			return q
		}
		q = dropClass(q, victim, viaRel, s.sch)
		res.Steps++
	}
}

// implied reports whether p is derivable from the rest of q via some
// fireable relevant constraint whose consequent is p.
func (s *Straightforward) implied(p predicate.Predicate, q *query.Query, relevant []*constraint.Constraint) bool {
	for _, c := range relevant {
		if c.Consequent.Key() != p.Key() || !c.RelevantTo(q) {
			continue
		}
		ok := true
		for _, a := range c.Antecedents {
			if a.Key() == p.Key() || !has(q, a) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func has(q *query.Query, p predicate.Predicate) bool {
	for _, x := range q.Predicates() {
		if x.Key() == p.Key() {
			return true
		}
	}
	return false
}

func addPred(q *query.Query, p predicate.Predicate) *query.Query {
	c := q.Clone()
	if p.IsJoin() {
		c.Joins = append(c.Joins, p)
	} else {
		c.Selects = append(c.Selects, p)
	}
	return c
}

func removePred(q *query.Query, p predicate.Predicate) *query.Query {
	c := q.Clone()
	c.Joins = filterOut(c.Joins, p)
	c.Selects = filterOut(c.Selects, p)
	return c
}

func filterOut(preds []predicate.Predicate, p predicate.Predicate) []predicate.Predicate {
	var out []predicate.Predicate
	for _, x := range preds {
		if x.Key() != p.Key() {
			out = append(out, x)
		}
	}
	return out
}

func dropClass(q *query.Query, class, rel string, sch *schema.Schema) *query.Query {
	c := q.Clone()
	var classes []string
	for _, cl := range c.Classes {
		if cl != class {
			classes = append(classes, cl)
		}
	}
	c.Classes = classes
	var rels []string
	for _, rn := range c.Relationships {
		if rn != rel {
			rels = append(rels, rn)
		}
	}
	c.Relationships = rels
	var sel []predicate.Predicate
	for _, p := range c.Selects {
		if !p.References(class) {
			sel = append(sel, p)
		}
	}
	c.Selects = sel
	var joins []predicate.Predicate
	for _, p := range c.Joins {
		if !p.References(class) {
			joins = append(joins, p)
		}
	}
	c.Joins = joins
	return c
}
