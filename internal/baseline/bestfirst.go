package baseline

import (
	"container/heap"
	"time"

	"sqo/internal/core"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// BestFirst is the search strategy of Shekhar, Srivastava and Dutta [SSD88],
// which the paper surveys as prior art: states are physically rewritten
// queries, successors apply one transformation each, and a priority queue
// expands the cheapest-estimated state first. The paper's two termination
// criteria are modeled by MaxExpansions (an optimization budget) and
// Patience (stop when expansions stop improving the best state).
//
// Like Straightforward, every generated state costs a cost-model invocation
// — the per-candidate expense the core algorithm's tentative application
// avoids — and the no-flip-flop guards are required for termination.
type BestFirst struct {
	sch    *schema.Schema
	source core.ConstraintSource
	est    Estimator
	// MaxExpansions caps expanded states; zero means 256.
	MaxExpansions int
	// Patience stops the search after this many consecutive expansions
	// without improving the best state; zero means 32.
	Patience int
}

// NewBestFirst builds the searcher over the same inputs as the core
// optimizer.
func NewBestFirst(sch *schema.Schema, source core.ConstraintSource, est Estimator) *BestFirst {
	return &BestFirst{sch: sch, source: source, est: est}
}

// bfState is one search node.
type bfState struct {
	q          *query.Query
	cost       float64
	eliminated map[string]bool
	introduced map[string]bool
	index      int // heap bookkeeping
}

// bfFrontier is a min-heap on estimated cost.
type bfFrontier []*bfState

func (f bfFrontier) Len() int           { return len(f) }
func (f bfFrontier) Less(i, j int) bool { return f[i].cost < f[j].cost }
func (f bfFrontier) Swap(i, j int)      { f[i], f[j] = f[j], f[i]; f[i].index = i; f[j].index = j }
func (f *bfFrontier) Push(x any)        { s := x.(*bfState); s.index = len(*f); *f = append(*f, s) }
func (f *bfFrontier) Pop() any          { old := *f; n := len(old); s := old[n-1]; *f = old[:n-1]; return s }

// Optimize runs the best-first search and finishes the best state with class
// elimination.
func (b *BestFirst) Optimize(q *query.Query) (*Result, error) {
	start := time.Now()
	if err := q.Validate(b.sch); err != nil {
		return nil, err
	}
	maxExp := b.MaxExpansions
	if maxExp == 0 {
		maxExp = 256
	}
	patience := b.Patience
	if patience == 0 {
		patience = 32
	}
	relevant := b.source.Retrieve(q)
	sf := &Straightforward{sch: b.sch, source: b.source, est: b.est}
	res := &Result{}

	root := &bfState{
		q:          q.Clone(),
		eliminated: map[string]bool{},
		introduced: map[string]bool{},
	}
	res.CostCalls++
	root.cost = b.est.EstimateQuery(root.q)

	frontier := &bfFrontier{}
	heap.Init(frontier)
	heap.Push(frontier, root)
	visited := map[string]bool{root.q.Signature(): true}

	best := root
	sinceImprove := 0
	for frontier.Len() > 0 && res.Explored < maxExp && sinceImprove < patience {
		cur := heap.Pop(frontier).(*bfState)
		res.Explored++
		improved := false
		if cur.cost < best.cost {
			best = cur
			improved = true
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
		}

		for _, c := range relevant {
			if !c.RelevantTo(cur.q) || !sf.fireable(c, cur.q) {
				continue
			}
			key := c.Consequent.Key()
			if cur.eliminated[key] || cur.introduced[key] {
				continue
			}
			var next *bfState
			if has(cur.q, c.Consequent) {
				next = &bfState{
					q:          removePred(cur.q, c.Consequent),
					eliminated: with(cur.eliminated, key),
					introduced: cur.introduced,
				}
			} else {
				next = &bfState{
					q:          addPred(cur.q, c.Consequent),
					eliminated: cur.eliminated,
					introduced: with(cur.introduced, key),
				}
			}
			sig := next.q.Signature()
			if visited[sig] {
				continue
			}
			visited[sig] = true
			res.CostCalls++
			next.cost = b.est.EstimateQuery(next.q)
			res.Steps++
			heap.Push(frontier, next)
		}
	}

	res.Optimized = sf.classElimination(best.q, relevant, res)
	res.Duration = time.Since(start)
	return res, nil
}
