package baseline

import (
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/costmodel"
	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/pathgen"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

func setup(t *testing.T) (*costmodel.Model, core.CatalogSource, *pathgen.Generator) {
	t.Helper()
	model, source, gen, _ := setupDB(t)
	return model, source, gen
}

func setupDB(t *testing.T) (*costmodel.Model, core.CatalogSource, *pathgen.Generator, *engine.Executor) {
	t.Helper()
	db := datagen.MustGenerate(datagen.DB1())
	cat := datagen.Constraints()
	model := costmodel.New(db.Schema(), db.Analyze(), engine.DefaultWeights)
	gen := pathgen.NewGenerator(db, cat, pathgen.Options{Seed: 17})
	return model, core.CatalogSource{Catalog: cat}, gen, engine.New(db)
}

// paperishQuery is the Figure 2.3 query against the datagen schema.
func paperishQuery() *query.Query {
	return query.New("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")
}

func TestStraightforwardTerminates(t *testing.T) {
	model, source, _ := setup(t)
	sf := NewStraightforward(datagen.Schema(), source, model)
	res, err := sf.Optimize(paperishQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Optimized == nil {
		t.Fatal("no result")
	}
	if res.CostCalls == 0 {
		t.Error("straightforward must invoke the cost model per candidate")
	}
	if err := res.Optimized.Validate(datagen.Schema()); err != nil {
		t.Errorf("output invalid: %v\n%s", err, res.Optimized)
	}
}

func TestStraightforwardRejectsInvalidQuery(t *testing.T) {
	model, source, _ := setup(t)
	sf := NewStraightforward(datagen.Schema(), source, model)
	if _, err := sf.Optimize(query.New("ghost")); err == nil {
		t.Error("invalid query should be rejected")
	}
	ex := NewExhaustive(datagen.Schema(), source, model)
	if _, err := ex.Optimize(query.New("ghost")); err == nil {
		t.Error("invalid query should be rejected")
	}
}

func TestStraightforwardNeverWorseThanOriginalEstimate(t *testing.T) {
	model, source, gen := setup(t)
	sf := NewStraightforward(datagen.Schema(), source, model)
	qs, err := gen.Workload(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		res, err := sf.Optimize(q)
		if err != nil {
			t.Fatalf("Optimize(%s): %v", q, err)
		}
		if got, orig := model.EstimateQuery(res.Optimized), model.EstimateQuery(q); got > orig+1e-9 {
			t.Errorf("straightforward worsened estimate %.2f -> %.2f for %s", orig, got, q)
		}
	}
}

func TestExhaustiveFindsAtLeastStraightforward(t *testing.T) {
	model, source, _ := setup(t)
	sf := NewStraightforward(datagen.Schema(), source, model)
	ex := NewExhaustive(datagen.Schema(), source, model)
	q := paperishQuery()
	rs, err := sf.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ex.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if re.Explored == 0 {
		t.Error("exhaustive should explore states")
	}
	cs, ce := model.EstimateQuery(rs.Optimized), model.EstimateQuery(re.Optimized)
	if ce > cs+1e-9 {
		t.Errorf("exhaustive %.3f must be at least as good as straightforward %.3f", ce, cs)
	}
}

// TestCoreMatchesExhaustive is the paper's optimality argument: "the outcome
// using our approach is at least as good as that using the straight-forward
// approach" — and, with a reasonable cost model, as good as any application
// order. Estimates are a misleading yardstick here: the exhaustive searcher
// happily keeps predicates the optimizer proved redundant (implied by
// retained ones), and the independence-assuming estimator wrongly credits
// them with extra selectivity. So the comparison runs both outputs on the
// real database: results must match the original query's, and the core
// output's *measured* cost must not be meaningfully worse.
func TestCoreMatchesExhaustive(t *testing.T) {
	model, source, gen, exec := setupDB(t)
	ex := NewExhaustive(datagen.Schema(), source, model)
	opt := core.NewOptimizer(datagen.Schema(), source, core.Options{Cost: model})
	qs, err := gen.Workload(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		rc, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("core: %v", err)
		}
		re, err := ex.Optimize(q)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		baseRows, err := exec.Execute(q)
		if err != nil {
			t.Fatalf("execute original: %v", err)
		}
		coreRows, err := exec.Execute(rc.Optimized)
		if err != nil {
			t.Fatalf("execute core output: %v", err)
		}
		exhRows, err := exec.Execute(re.Optimized)
		if err != nil {
			t.Fatalf("execute exhaustive output: %v", err)
		}
		// Both must preserve semantics.
		want := baseRows.Canonical()
		if got := coreRows.Canonical(); len(got) != len(want) {
			t.Fatalf("core changed semantics for %s: %d vs %d rows", q, len(got), len(want))
		}
		if got := exhRows.Canonical(); got != nil && len(got) != len(want) {
			t.Fatalf("exhaustive changed semantics for %s: %d vs %d rows", q, len(got), len(want))
		}
		// Measured cost: core within 2x of whatever the exponential
		// search found. The slack absorbs plan-shape luck: redundant
		// predicates the exhaustive search retains can nudge the
		// planner's seed choice through correlated-selectivity
		// estimation errors, occasionally landing on a better plan for
		// reasons neither optimizer can see.
		cc := coreRows.Cost(engine.DefaultWeights)
		ce := exhRows.Cost(engine.DefaultWeights)
		if cc > ce*2.0+1.0 {
			t.Errorf("core measured cost %.3f worse than exhaustive %.3f for %s\ncore: %s\nexh:  %s",
				cc, ce, q, rc.Optimized, re.Optimized)
		}
	}
}

func TestStraightforwardOrderDependence(t *testing.T) {
	// Constraint pair where eliminating first destroys an introduction:
	//   cA: p -> q   (q in query: elimination candidate)
	//   cB: q -> r   (r absent: introduction candidate, needs q verbatim)
	// Scanning order {cA, cB}: cA removes q, then cB can never fire.
	// Order {cB, cA}: cB introduces r first, then cA removes q.
	// A tailored estimator makes removals profitable and the introduction
	// of r profitable only while q is present.
	sch := datagen.Schema()
	p := predicate.Eq("cargo", "desc", value.String("frozen food"))
	q := predicate.Sel("cargo", "quantity", predicate.LE, value.Int(500))
	r := predicate.Sel("cargo", "priority", predicate.GE, value.Int(1))
	cA := constraint.New("cA", []predicate.Predicate{p}, nil, q)
	cB := constraint.New("cB", []predicate.Predicate{q}, nil, r)

	base := query.New("cargo").
		AddProject("cargo", "code").
		AddSelect(p).
		AddSelect(q)

	est := keyEstimator{bonus: r.Key()}

	sfAB := NewStraightforward(sch, core.CatalogSource{Catalog: constraint.MustCatalog(cA, cB)}, est)
	resAB, err := sfAB.Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	sfBA := NewStraightforward(sch, core.CatalogSource{Catalog: constraint.MustCatalog(cB, cA)}, est)
	resBA, err := sfBA.Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	if resAB.Optimized.Equal(resBA.Optimized) {
		t.Errorf("expected order dependence, both orders gave %s", resAB.Optimized)
	}

	// The core optimizer is order independent on the same input.
	optAB := core.NewOptimizer(sch, core.CatalogSource{Catalog: constraint.MustCatalog(cA, cB)}, core.Options{Cost: keepAllCost{}})
	optBA := core.NewOptimizer(sch, core.CatalogSource{Catalog: constraint.MustCatalog(cB, cA)}, core.Options{Cost: keepAllCost{}})
	ra, err := optAB.Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := optBA.Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	if !ra.Optimized.Equal(rb.Optimized) {
		t.Errorf("core became order dependent:\n%s\n%s", ra.Optimized, rb.Optimized)
	}
}

// keyEstimator prices queries so that every predicate costs 1 except the
// bonus predicate, which pays for itself: removals always look profitable,
// and introducing the bonus predicate looks profitable too.
type keyEstimator struct{ bonus string }

func (e keyEstimator) EstimateQuery(q *query.Query) float64 {
	cost := 10.0 * float64(len(q.Classes))
	for _, p := range q.Predicates() {
		if p.Key() == e.bonus {
			cost -= 1
		} else {
			cost += 1
		}
	}
	return cost
}

type keepAllCost struct{}

func (keepAllCost) Profitable(*query.Query, predicate.Predicate) bool    { return true }
func (keepAllCost) ClassEliminationBeneficial(*query.Query, string) bool { return true }
