package resilience

import (
	"sync"
	"sync/atomic"
)

// Degradation levels, in shedding order. Each step drops one optimization
// of the serving path whose absence is provably invisible in responses
// (the differential suite holds every level byte-identical to level 0);
// what degrades is cost, never correctness.
const (
	// LevelFull serves everything: subsumption probing, canonical cache
	// keys, micro-batch coalescing.
	LevelFull = 0
	// LevelNoSubsume disables containment probing on cache misses — the
	// most speculative work on the path (up to maxGenProbe containment
	// proofs per miss) and the first to go.
	LevelNoSubsume = 1
	// LevelNoCanon additionally keys the cache by the raw fingerprint,
	// skipping canonicalization. Near-duplicates stop collapsing; each
	// variant pays its own cold optimization, which is still the exact
	// cold answer.
	LevelNoCanon = 2
	// LevelNoCoalesce additionally disables micro-batch coalescing:
	// requests go straight to the engine instead of waiting out a
	// collection window — under heavy pressure the window is pure added
	// latency because every batch fills instantly anyway.
	LevelNoCoalesce = 3
)

// MaxLevel is the deepest degradation step.
const MaxLevel = LevelNoCoalesce

// LadderConfig tunes the escalation hysteresis.
type LadderConfig struct {
	// StepUp is the pressure at or above which an observation counts
	// toward escalating (default 0.75); StepDown the pressure at or below
	// which one counts toward recovering (default 0.25). Between the two
	// the ladder holds its level.
	StepUp   float64
	StepDown float64
	// UpAfter is how many consecutive high-pressure observations escalate
	// one level (default 2); DownAfter how many consecutive low-pressure
	// observations recover one (default 8). Escalation is deliberately
	// faster than recovery, so a borderline system does not flap.
	UpAfter   int
	DownAfter int
}

func (c *LadderConfig) defaults() {
	if c.StepUp <= 0 {
		c.StepUp = 0.75
	}
	if c.StepDown <= 0 {
		c.StepDown = 0.25
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 8
	}
}

// Ladder converts a periodic pressure signal — admission queue depth plus
// the p99 latency trend — into a degradation level 0..MaxLevel, with
// hysteresis so a single spike cannot whipsaw the serving configuration.
// Level reads are a single atomic load, fit for the per-request path;
// Observe is called by a monitor loop, typically a few times per second.
type Ladder struct {
	cfg   LadderConfig
	level atomic.Int32

	mu       sync.Mutex
	hiStreak int
	loStreak int
	// p99Base is the EWMA of the p99 observed while the system is calm —
	// the baseline the trend signal compares against.
	p99Base float64

	escalations   atomic.Int64
	deescalations atomic.Int64
}

// NewLadder builds a ladder at LevelFull.
func NewLadder(cfg LadderConfig) *Ladder {
	cfg.defaults()
	return &Ladder{cfg: cfg}
}

// Level returns the current degradation level: one atomic load.
func (l *Ladder) Level() int { return int(l.level.Load()) }

// SetLevel pins the level directly (operator override, tests). Clamped to
// [0, MaxLevel]. Streak state resets so Observe restarts its evidence from
// the pinned level.
func (l *Ladder) SetLevel(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	l.mu.Lock()
	l.hiStreak, l.loStreak = 0, 0
	l.level.Store(int32(level))
	l.mu.Unlock()
}

// Observe feeds one pressure sample: queueFrac is the admission queue's
// fill fraction (0..1), p99US the request p99 over the observation window
// (0 when the window saw no traffic). It returns the level now in force.
//
// Pressure is the worse of the two signals: the queue fraction directly,
// and the p99 trend scaled so a p99 of 9× the calm baseline saturates at
// 1.0. The baseline learns only from calm windows — it must not chase the
// very overload it exists to detect.
func (l *Ladder) Observe(queueFrac float64, p99US int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()

	pressure := queueFrac
	if p99US > 0 {
		if l.p99Base > 0 {
			if trend := (float64(p99US) - l.p99Base) / (8 * l.p99Base); trend > pressure {
				pressure = trend
			}
		}
		if queueFrac <= l.cfg.StepDown && l.level.Load() == LevelFull {
			if l.p99Base == 0 {
				l.p99Base = float64(p99US)
			} else {
				l.p99Base += (float64(p99US) - l.p99Base) / 8
			}
		}
	}

	switch {
	case pressure >= l.cfg.StepUp:
		l.loStreak = 0
		l.hiStreak++
		if l.hiStreak >= l.cfg.UpAfter && l.level.Load() < MaxLevel {
			l.level.Add(1)
			l.escalations.Add(1)
			l.hiStreak = 0
		}
	case pressure <= l.cfg.StepDown:
		l.hiStreak = 0
		l.loStreak++
		if l.loStreak >= l.cfg.DownAfter && l.level.Load() > LevelFull {
			l.level.Add(-1)
			l.deescalations.Add(1)
			l.loStreak = 0
		}
	default:
		l.hiStreak, l.loStreak = 0, 0
	}
	return int(l.level.Load())
}

// LadderStats is a point-in-time view of the ladder.
type LadderStats struct {
	// Level is the degradation level in force; LevelName its wire name.
	Level     int    `json:"level"`
	LevelName string `json:"level_name"`
	// Escalations and Deescalations count level changes since start.
	Escalations   int64 `json:"escalations"`
	Deescalations int64 `json:"deescalations"`
	// P99BaselineUS is the calm-traffic p99 the trend compares against.
	P99BaselineUS int64 `json:"p99_baseline_us"`
}

// LevelName renders a degradation level for logs and /stats.
func LevelName(level int) string {
	switch level {
	case LevelFull:
		return "full"
	case LevelNoSubsume:
		return "no-subsume"
	case LevelNoCanon:
		return "no-canon"
	case LevelNoCoalesce:
		return "no-coalesce"
	default:
		return "unknown"
	}
}

// Stats snapshots the ladder.
func (l *Ladder) Stats() LadderStats {
	l.mu.Lock()
	base := l.p99Base
	l.mu.Unlock()
	lvl := l.Level()
	return LadderStats{
		Level:         lvl,
		LevelName:     LevelName(lvl),
		Escalations:   l.escalations.Load(),
		Deescalations: l.deescalations.Load(),
		P99BaselineUS: int64(base),
	}
}
