package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2})
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.InFlight != 1 || st.Admitted != 1 || st.Shed() != 0 {
		t.Fatalf("after one acquire: %+v", st)
	}
	release()
	release() // idempotent
	if st := a.Stats(); st.InFlight != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1})
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	// Occupy the single queue slot with a blocked waiter.
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		close(waiterIn)
		rel, err := a.Acquire(context.Background())
		if rel != nil {
			defer rel()
		}
		waiterOut <- err
	}()
	<-waiterIn
	// Wait until the waiter is actually counted as queued.
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The next arrival must be shed with a retry hint.
	_, err = a.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected ShedError, got %v", err)
	}
	if shed.Reason != "queue_full" {
		t.Fatalf("reason = %q", shed.Reason)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
	if got := a.Stats().ShedQueueFull; got != 1 {
		t.Fatalf("ShedQueueFull = %d", got)
	}

	hold() // release the slot; the queued waiter gets in
	if err := <-waiterOut; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionDeadlineShed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 8})
	// Teach the EWMA that service takes ~100ms, so the wait estimate for a
	// queued request dwarfs a 1ms deadline.
	a.serviceEWMA.Store(100_000)

	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = a.Acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected ShedError, got %v", err)
	}
	if shed.Reason != "deadline" {
		t.Fatalf("reason = %q", shed.Reason)
	}
	if got := a.Stats().ShedDeadline; got != 1 {
		t.Fatalf("ShedDeadline = %d", got)
	}
	// A queued request with a generous deadline must NOT be deadline-shed.
	done := make(chan error, 1)
	go func() {
		ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		rel, err := a.Acquire(ctx2)
		if rel != nil {
			rel()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	hold()
	if err := <-done; err != nil {
		t.Fatalf("generous-deadline waiter: %v", err)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		rel, err := a.Acquire(ctx)
		if rel != nil {
			rel()
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := a.Stats().Queued; got != 0 {
		t.Fatalf("queue counter leaked: %d", got)
	}
}

func TestAdmissionConcurrentIntegrity(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 4, MaxQueue: 8})
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			rel, err := a.Acquire(ctx)
			if err != nil {
				return // shed or expired: fine, just never over-admit
			}
			cur := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 4 {
		t.Fatalf("concurrency limit breached: %d in flight", m)
	}
	st := a.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("counters leaked: %+v", st)
	}
}

func TestLadderEscalatesAndRecovers(t *testing.T) {
	l := NewLadder(LadderConfig{UpAfter: 2, DownAfter: 3})
	if l.Level() != LevelFull {
		t.Fatalf("initial level %d", l.Level())
	}
	// Two high-pressure observations per step.
	for step := 1; step <= MaxLevel; step++ {
		l.Observe(0.9, 0)
		if got := l.Observe(0.9, 0); got != step {
			t.Fatalf("after %d high pairs: level %d, want %d", step, got, step)
		}
	}
	// Further pressure cannot exceed MaxLevel.
	l.Observe(1.0, 0)
	l.Observe(1.0, 0)
	if got := l.Level(); got != MaxLevel {
		t.Fatalf("level %d beyond MaxLevel", got)
	}
	// Recovery: three calm observations per step down.
	obs := 0
	for l.Level() > LevelFull {
		l.Observe(0.0, 0)
		if obs++; obs > 3*MaxLevel+1 {
			t.Fatalf("ladder stuck at level %d after %d calm observations", l.Level(), obs)
		}
	}
	st := l.Stats()
	if st.Escalations != MaxLevel || st.Deescalations != MaxLevel {
		t.Fatalf("stats %+v", st)
	}
}

func TestLadderHysteresis(t *testing.T) {
	l := NewLadder(LadderConfig{UpAfter: 2, DownAfter: 3})
	// A single spike does not escalate.
	l.Observe(0.9, 0)
	l.Observe(0.0, 0)
	if got := l.Level(); got != LevelFull {
		t.Fatalf("one spike escalated to %d", got)
	}
	// Mid-band pressure holds the level and resets streaks.
	l.Observe(0.9, 0)
	l.Observe(0.5, 0)
	l.Observe(0.9, 0)
	if got := l.Level(); got != LevelFull {
		t.Fatalf("interrupted streak escalated to %d", got)
	}
}

func TestLadderP99Trend(t *testing.T) {
	l := NewLadder(LadderConfig{UpAfter: 1, DownAfter: 100})
	// Calm traffic teaches the baseline.
	for i := 0; i < 16; i++ {
		l.Observe(0.0, 1000)
	}
	// Queue empty but p99 exploded to 20× baseline: trend alone escalates.
	if got := l.Observe(0.0, 20_000); got != LevelNoSubsume {
		t.Fatalf("p99 explosion did not escalate: level %d", got)
	}
}

func TestLadderSetLevel(t *testing.T) {
	l := NewLadder(LadderConfig{})
	l.SetLevel(99)
	if got := l.Level(); got != MaxLevel {
		t.Fatalf("SetLevel(99) -> %d", got)
	}
	l.SetLevel(-1)
	if got := l.Level(); got != LevelFull {
		t.Fatalf("SetLevel(-1) -> %d", got)
	}
}

func TestQuarantineStrikesAndBlocks(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{Strikes: 2})
	k := Key{1, 2}
	if q.Blocked(k) {
		t.Fatal("unknown key blocked")
	}
	if n := q.Strike(k, "boom"); n != 1 {
		t.Fatalf("first strike count %d", n)
	}
	if q.Blocked(k) {
		t.Fatal("one strike already blocks")
	}
	if n := q.Strike(k, "boom again"); n != 2 {
		t.Fatalf("second strike count %d", n)
	}
	if !q.Blocked(k) {
		t.Fatal("two strikes must block")
	}
	st := q.Stats()
	if st.Tracked != 1 || st.Quarantined != 1 || st.Strikes != 2 || st.Blocked == 0 {
		t.Fatalf("stats %+v", st)
	}
	ents := q.Entries()
	if len(ents) != 1 || !ents[0].Active || ents[0].LastMsg != "boom again" {
		t.Fatalf("entries %+v", ents)
	}
	if n := q.Reset(); n != 1 {
		t.Fatalf("reset dropped %d", n)
	}
	if q.Blocked(k) {
		t.Fatal("blocked after reset")
	}
}

func TestQuarantineBoundedEviction(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{Strikes: 2, MaxTracked: 4})
	poison := Key{42, 42}
	q.Strike(poison, "p1")
	q.Strike(poison, "p2") // quarantined: must survive eviction pressure
	for i := uint64(0); i < 16; i++ {
		q.Strike(Key{i, 0}, "transient")
	}
	if got := q.Stats().Tracked; got > 4 {
		t.Fatalf("tracked %d exceeds bound", got)
	}
	if !q.Blocked(poison) {
		t.Fatal("confirmed poison was evicted by transients")
	}
}

func TestQuarantineConcurrent(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{Strikes: 3, MaxTracked: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{uint64(i % 32), 0}
				q.Strike(k, "x")
				q.Blocked(k)
			}
		}(w)
	}
	wg.Wait()
	if got := q.Stats().Strikes; got != 8*200 {
		t.Fatalf("strikes %d", got)
	}
}
