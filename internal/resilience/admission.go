// Package resilience is the overload-protection layer of the serving stack:
// a bounded admission controller with deadline-aware load shedding, a
// graceful-degradation ladder driven by a pressure signal, and a
// fingerprint-keyed quarantine for poison queries. The pieces share one
// design rule, inherited from the engine's differential discipline: every
// degraded or shed outcome is provably safe — a request is either answered
// byte-identically to the unloaded system or refused with an honest error,
// never answered partially or wrongly.
package resilience

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// AdmissionConfig sizes an admission controller.
type AdmissionConfig struct {
	// MaxConcurrent is the number of requests allowed inside the engine at
	// once. <= 0 means 16.
	MaxConcurrent int
	// MaxQueue is how many admitted-but-waiting requests may queue behind
	// the concurrency limit before new arrivals are shed. <= 0 means
	// 4 × MaxConcurrent.
	MaxQueue int
}

// ShedError is the refusal an overloaded admission controller answers with.
// It maps to HTTP 429; RetryAfter is the controller's honest estimate of
// when a retry could be admitted.
type ShedError struct {
	// Reason is "queue_full" or "deadline" (the request's own deadline
	// would expire before a queue slot could reach the engine).
	Reason string
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overloaded (%s): retry after %s", e.Reason, e.RetryAfter)
}

// Admission is a bounded admission queue: MaxConcurrent requests run, up to
// MaxQueue more wait, everyone else is shed immediately with a retry hint.
// A request whose context deadline would expire while it waited is shed
// up front instead of occupying a queue slot it can never use — under
// overload, work the client has already abandoned is the cheapest work to
// refuse.
type Admission struct {
	maxConcurrent int
	maxQueue      int
	sem           chan struct{}

	queued    atomic.Int64
	admitted  atomic.Int64
	shedQueue atomic.Int64
	shedDL    atomic.Int64
	// serviceEWMA is an exponentially-weighted moving average of observed
	// service times in microseconds (α = 1/8), seeding the wait estimate
	// behind deadline shedding and Retry-After.
	serviceEWMA atomic.Int64
}

// NewAdmission builds an admission controller. Zero config fields take the
// documented defaults.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	return &Admission{
		maxConcurrent: cfg.MaxConcurrent,
		maxQueue:      cfg.MaxQueue,
		sem:           make(chan struct{}, cfg.MaxConcurrent),
	}
}

// Acquire admits the request or sheds it. On admission it returns a release
// function the caller must invoke when the request finishes (it recycles the
// slot and feeds the service-time estimate). On shedding it returns a
// *ShedError; on context expiry while queued it returns ctx.Err().
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot admits without touching the queue counters.
	select {
	case a.sem <- struct{}{}:
		return a.releaseFunc(), nil
	default:
	}

	// Slot contention: take a queue position or shed.
	pos := a.queued.Add(1)
	if pos > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.shedQueue.Add(1)
		return nil, &ShedError{Reason: "queue_full", RetryAfter: a.retryAfter()}
	}
	// Deadline-aware shedding: estimate how long this queue position waits
	// for a slot; a request that cannot survive the wait is refused now,
	// honestly, instead of timing out inside the queue.
	if dl, ok := ctx.Deadline(); ok {
		wait := a.estimatedWait(pos)
		if time.Until(dl) < wait {
			a.queued.Add(-1)
			a.shedDL.Add(1)
			return nil, &ShedError{Reason: "deadline", RetryAfter: a.retryAfter()}
		}
	}
	select {
	case a.sem <- struct{}{}:
		a.queued.Add(-1)
		return a.releaseFunc(), nil
	case <-ctx.Done():
		a.queued.Add(-1)
		return nil, ctx.Err()
	}
}

// releaseFunc counts the admission and returns the slot-recycling closure.
func (a *Admission) releaseFunc() func() {
	a.admitted.Add(1)
	start := time.Now()
	var once atomic.Bool
	return func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		a.observeService(time.Since(start))
		<-a.sem
	}
}

// observeService folds one observed service time into the EWMA.
func (a *Admission) observeService(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	for {
		old := a.serviceEWMA.Load()
		var next int64
		if old == 0 {
			next = us
		} else {
			next = old - old/8 + us/8
			if next < 1 {
				next = 1
			}
		}
		if a.serviceEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimatedWait is the expected queue residence of position pos: the
// requests ahead of it drain at MaxConcurrent × (1/service) each tick.
func (a *Admission) estimatedWait(pos int64) time.Duration {
	svc := a.serviceEWMA.Load()
	if svc == 0 {
		svc = 1000 // no observations yet: assume 1ms service
	}
	rounds := (pos + int64(a.maxConcurrent) - 1) / int64(a.maxConcurrent)
	return time.Duration(rounds*svc) * time.Microsecond
}

// retryAfter estimates when a shed client could plausibly be admitted:
// the time for the whole current queue to drain. Clamped to [1s, 30s] —
// Retry-After is advisory pacing, not a precise reservation.
func (a *Admission) retryAfter() time.Duration {
	d := a.estimatedWait(a.queued.Load() + 1)
	if d < time.Second {
		return time.Second
	}
	if d > 30*time.Second {
		return 30 * time.Second
	}
	return d.Round(time.Second)
}

// AdmissionStats is a point-in-time view of the controller.
type AdmissionStats struct {
	// MaxConcurrent and MaxQueue echo the configuration.
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// InFlight is how many admitted requests currently hold a slot;
	// Queued how many are waiting behind them.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Admitted counts requests that got a slot; ShedQueueFull and
	// ShedDeadline count the two refusal reasons.
	Admitted      int64 `json:"admitted"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	// ServiceEWMAUS is the current service-time estimate feeding the
	// wait predictions.
	ServiceEWMAUS int64 `json:"service_ewma_us"`
}

// Shed returns the total requests refused, both reasons.
func (s AdmissionStats) Shed() int64 { return s.ShedQueueFull + s.ShedDeadline }

// Stats snapshots the controller. Safe under concurrent traffic.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		MaxConcurrent: a.maxConcurrent,
		MaxQueue:      a.maxQueue,
		InFlight:      len(a.sem),
		Queued:        int(a.queued.Load()),
		Admitted:      a.admitted.Load(),
		ShedQueueFull: a.shedQueue.Load(),
		ShedDeadline:  a.shedDL.Load(),
		ServiceEWMAUS: a.serviceEWMA.Load(),
	}
}

// QueueFraction is the pressure contribution of the queue: 0 when empty,
// 1 when full. The degradation ladder consumes it.
func (a *Admission) QueueFraction() float64 {
	return float64(a.queued.Load()) / float64(a.maxQueue)
}
