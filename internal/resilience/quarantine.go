package resilience

import (
	"sync"
	"time"
)

// Key identifies a query in the quarantine: the engine's 128-bit query
// fingerprint. Keys are compared exactly; two syntactic variants of one
// poison query share a key exactly when they share a cache slot.
type Key [2]uint64

// QuarantineConfig sizes the quarantine.
type QuarantineConfig struct {
	// Strikes is how many recovered panics a fingerprint accumulates
	// before it is quarantined (default 2): the first panic could be a
	// transient (a fault-injection hit, a corrupted page); the second
	// proves the query itself is the trigger.
	Strikes int
	// MaxTracked bounds the strike table (default 4096). At the bound,
	// the oldest non-quarantined entry is evicted first — confirmed
	// poison stays pinned.
	MaxTracked int
}

// Quarantine is the poison-query register: queries whose optimization
// panicked repeatedly are short-circuited to an error before they re-enter
// the optimizer, so one reproducible crash input cannot grind a node down
// panic by panic. Recovery converts each panic into an error (the request
// fails cleanly); the quarantine makes the *repeat* cheap.
type Quarantine struct {
	mu      sync.Mutex
	cfg     QuarantineConfig
	entries map[Key]*quarEntry
	order   []Key // insertion order, for bounded eviction

	strikes     int64
	quarantined int64
	blocked     int64
}

type quarEntry struct {
	strikes  int
	lastMsg  string
	firstHit time.Time
	lastHit  time.Time
}

// NewQuarantine builds an empty quarantine.
func NewQuarantine(cfg QuarantineConfig) *Quarantine {
	if cfg.Strikes <= 0 {
		cfg.Strikes = 2
	}
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = 4096
	}
	return &Quarantine{cfg: cfg, entries: make(map[Key]*quarEntry)}
}

// Blocked reports whether k is quarantined, counting the short-circuit.
func (q *Quarantine) Blocked(k Key) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[k]
	if !ok || e.strikes < q.cfg.Strikes {
		return false
	}
	q.blocked++
	e.lastHit = time.Now()
	return true
}

// Strike records one recovered panic for k and returns the strike count.
// Reaching the configured strike limit quarantines the fingerprint.
func (q *Quarantine) Strike(k Key, msg string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.strikes++
	e, ok := q.entries[k]
	if !ok {
		q.evictIfFullLocked()
		e = &quarEntry{firstHit: time.Now()}
		q.entries[k] = e
		q.order = append(q.order, k)
	}
	e.strikes++
	e.lastMsg = msg
	e.lastHit = time.Now()
	if e.strikes == q.cfg.Strikes {
		q.quarantined++
	}
	return e.strikes
}

// evictIfFullLocked makes room for one entry, preferring the oldest
// sub-threshold entry and falling back to the oldest outright.
func (q *Quarantine) evictIfFullLocked() {
	if len(q.entries) < q.cfg.MaxTracked {
		return
	}
	victim := -1
	for i, k := range q.order {
		if e, ok := q.entries[k]; ok && e.strikes < q.cfg.Strikes {
			victim = i
			break
		}
	}
	if victim == -1 && len(q.order) > 0 {
		victim = 0
	}
	if victim >= 0 {
		delete(q.entries, q.order[victim])
		q.order = append(q.order[:victim], q.order[victim+1:]...)
	}
}

// Reset clears every entry — the operator's "the bad deploy is rolled
// back" lever — returning how many fingerprints were dropped.
func (q *Quarantine) Reset() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.entries)
	q.entries = make(map[Key]*quarEntry)
	q.order = nil
	return n
}

// QuarantineStats is a point-in-time view of the register.
type QuarantineStats struct {
	// Tracked is how many fingerprints carry at least one strike;
	// Quarantined how many have crossed the strike limit (cumulative —
	// Reset does not rewind it).
	Tracked     int   `json:"tracked"`
	Quarantined int64 `json:"quarantined"`
	// Strikes counts recovered panics registered; Blocked counts
	// requests short-circuited by an active quarantine.
	Strikes int64 `json:"strikes"`
	Blocked int64 `json:"blocked"`
}

// Stats snapshots the quarantine.
func (q *Quarantine) Stats() QuarantineStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QuarantineStats{
		Tracked:     len(q.entries),
		Quarantined: q.quarantined,
		Strikes:     q.strikes,
		Blocked:     q.blocked,
	}
}

// QuarantineEntry is one register row, for the inspection endpoint.
type QuarantineEntry struct {
	Key      Key       `json:"-"`
	Strikes  int       `json:"strikes"`
	Active   bool      `json:"active"`
	LastMsg  string    `json:"last_panic"`
	FirstHit time.Time `json:"first_hit"`
	LastHit  time.Time `json:"last_hit"`
}

// Entries lists the register in insertion order.
func (q *Quarantine) Entries() []QuarantineEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantineEntry, 0, len(q.entries))
	for _, k := range q.order {
		e, ok := q.entries[k]
		if !ok {
			continue
		}
		out = append(out, QuarantineEntry{
			Key:      k,
			Strikes:  e.strikes,
			Active:   e.strikes >= q.cfg.Strikes,
			LastMsg:  e.lastMsg,
			FirstHit: e.firstHit,
			LastHit:  e.lastHit,
		})
	}
	return out
}
