package symtab

import (
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/schema"
	"sqo/internal/value"
)

// testWorld builds a small logistics-flavored schema and catalog directly
// (datagen would import the index package, which imports symtab — a cycle in
// tests), with enough variety to exercise every interning path: selections,
// joins, implication chains and multi-class constraints.
func testWorld(t *testing.T) (*schema.Schema, *constraint.Catalog) {
	t.Helper()
	sch, err := schema.NewBuilder().
		Class("vehicle",
			schema.Attribute{Name: "desc", Type: value.KindString, Indexed: true},
			schema.Attribute{Name: "class", Type: value.KindInt},
			schema.Attribute{Name: "capacity", Type: value.KindInt}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "weight", Type: value.KindInt, Indexed: true}).
		Class("driver",
			schema.Attribute{Name: "licenseClass", Type: value.KindInt}).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		Relationship("operates", "driver", "vehicle", schema.OneToOne).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cat := constraint.MustCatalog(
		constraint.New("c1",
			[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
			[]string{"collects"},
			predicate.Eq("cargo", "desc", value.String("frozen food"))),
		constraint.New("c2",
			[]predicate.Predicate{predicate.Sel("cargo", "weight", predicate.GT, value.Int(100))},
			[]string{"collects"},
			predicate.Sel("vehicle", "capacity", predicate.GE, value.Int(10))),
		constraint.New("c3",
			[]predicate.Predicate{predicate.Sel("cargo", "weight", predicate.GT, value.Int(50))},
			[]string{"collects", "operates"},
			predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class")),
		constraint.New("c4", nil, nil,
			predicate.Sel("vehicle", "capacity", predicate.GE, value.Int(1))),
	)
	return sch, cat
}

// TestCompileCoversCatalog: every predicate, class and attribute mentioned by
// the catalog (and the schema) resolves to an ID, and IDs round-trip to the
// exact symbol they interned. CompiledFor is pointer-keyed, so checks run
// against the exact instances that were compiled.
func TestCompileCoversCatalog(t *testing.T) {
	sch, cat := testWorld(t)
	st := Compile(sch, cat.All())

	for _, c := range cat.All() {
		comp, ok := st.CompiledFor(c)
		if !ok {
			t.Fatalf("constraint %s not compiled", c.ID)
		}
		if got, want := st.Pred(comp.Cons).Key(), c.Consequent.Key(); got != want {
			t.Errorf("%s consequent: %s != %s", c.ID, got, want)
		}
		if len(comp.Ants) != len(c.Antecedents) {
			t.Fatalf("%s: %d compiled antecedents, want %d", c.ID, len(comp.Ants), len(c.Antecedents))
		}
		for i, a := range c.Antecedents {
			if got, want := st.Pred(comp.Ants[i]).Key(), a.Key(); got != want {
				t.Errorf("%s antecedent %d: %s != %s", c.ID, i, got, want)
			}
			if id, ok := st.PredID(a); !ok || id != comp.Ants[i] {
				t.Errorf("%s antecedent %d does not round-trip: id=%d ok=%v", c.ID, i, id, ok)
			}
		}
	}
	for _, cl := range sch.Classes() {
		id, ok := st.ClassID(cl)
		if !ok {
			t.Fatalf("schema class %q not interned", cl)
		}
		if st.ClassName(id) != cl {
			t.Errorf("class %q round-trips to %q", cl, st.ClassName(id))
		}
		for _, a := range sch.EffectiveAttributes(cl) {
			aid, ok := st.AttrID(cl, a.Name)
			if !ok {
				t.Fatalf("schema attribute %s.%s not interned", cl, a.Name)
			}
			gc, ga := st.AttrName(aid)
			if gc != cl || ga != a.Name {
				t.Errorf("attr %s.%s round-trips to %s.%s", cl, a.Name, gc, ga)
			}
		}
	}
}

// TestAdjacencyMatchesImplies: the precomputed implication adjacency is
// exactly what pairwise predicate.Implies would report, both directions.
func TestAdjacencyMatchesImplies(t *testing.T) {
	sch, cat := testWorld(t)
	st := Compile(sch, cat.All())
	m := st.NumPreds()
	sawEdge := false
	for i := 0; i < m; i++ {
		pi := st.Pred(PredID(i))
		want := map[PredID]bool{}
		for j := 0; j < m; j++ {
			if i != j && pi.Implies(st.Pred(PredID(j))) {
				want[PredID(j)] = true
			}
		}
		got := st.Implies(PredID(i))
		if len(got) != len(want) {
			t.Fatalf("pred %d (%s): fwd = %v, want %v", i, pi, got, want)
		}
		prev := PredID(-1)
		for _, j := range got {
			sawEdge = true
			if !want[j] {
				t.Errorf("pred %d: spurious implication of %d", i, j)
			}
			if j <= prev {
				t.Errorf("pred %d: fwd not ascending: %v", i, got)
			}
			prev = j
		}
		for _, j := range got {
			found := false
			for _, r := range st.ImpliedBy(j) {
				if r == PredID(i) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("rev adjacency of %d misses %d", j, i)
			}
		}
	}
	if !sawEdge {
		t.Error("test world produced no implication edges; fixture too weak")
	}
}

// TestSigOrdinals: predicates share a signature ordinal exactly when they
// share an operand signature, and foreign signatures report !ok.
func TestSigOrdinals(t *testing.T) {
	sch, cat := testWorld(t)
	st := Compile(sch, cat.All())
	m := st.NumPreds()
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			pi, pj := st.Pred(PredID(i)), st.Pred(PredID(j))
			same := sigOf(pi) == sigOf(pj)
			if got := st.SigOrdinal(PredID(i)) == st.SigOrdinal(PredID(j)); got != same {
				t.Errorf("sig ordinal equality of %s / %s = %v, want %v", pi, pj, got, same)
			}
		}
	}
	foreign := predicate.Eq("no-such-class", "attr", value.Int(1))
	if _, ok := st.SigOrdinalOf(foreign); ok {
		t.Error("foreign signature unexpectedly resolved")
	}
	some := st.Pred(0)
	if sig, ok := st.SigOrdinalOf(some); !ok || sig != st.SigOrdinal(0) {
		t.Errorf("SigOrdinalOf(%s) = %d,%v; want %d,true", some, sig, ok, st.SigOrdinal(0))
	}
}

// TestNilSchemaCompile: compiling without a schema still interns everything
// the constraints mention.
func TestNilSchemaCompile(t *testing.T) {
	_, cat := testWorld(t)
	st := Compile(nil, cat.All())
	if st.NumPreds() == 0 || st.NumClasses() == 0 || st.NumAttrs() == 0 {
		t.Fatalf("empty symbol space: preds=%d classes=%d attrs=%d",
			st.NumPreds(), st.NumClasses(), st.NumAttrs())
	}
	for _, c := range cat.All() {
		if _, ok := st.CompiledFor(c); !ok {
			t.Fatalf("constraint %s not compiled", c.ID)
		}
		for _, cl := range c.Classes() {
			if _, ok := st.ClassID(cl); !ok {
				t.Fatalf("class %q not interned", cl)
			}
		}
	}
}
