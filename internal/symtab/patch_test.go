package symtab

import (
	"reflect"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/value"
)

func patchRule(id, class, val string, bound int64) *constraint.Constraint {
	return constraint.New(id,
		[]predicate.Predicate{predicate.Eq(class, "x", value.String(val))},
		nil,
		predicate.Sel(class, "y", predicate.LE, value.Int(bound)))
}

// adjacencyByKey renders a table's implication adjacency as predicate-key
// sets, so tables with different PredID numberings compare semantically.
func adjacencyByKey(t *Table) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for id := 0; id < t.NumPreds(); id++ {
		set := map[string]bool{}
		for _, j := range t.Implies(PredID(id)) {
			set[t.Pred(j).Key()] = true
		}
		out[t.Pred(PredID(id)).Key()] = set
	}
	return out
}

// TestPatchMatchesCompile: a patched table must resolve every symbol of the
// combined constraint set exactly as a from-scratch compile does, while
// keeping every pre-patch ID stable.
func TestPatchMatchesCompile(t *testing.T) {
	base := []*constraint.Constraint{
		patchRule("r1", "a", "u", 10),
		patchRule("r2", "a", "v", 20),
	}
	added := []*constraint.Constraint{
		patchRule("r3", "a", "u", 5),  // shares r1's antecedent predicate
		patchRule("r4", "b", "w", 30), // brand-new class
	}
	t0 := Compile(nil, base)
	prePreds, preClasses := t0.NumPreds(), t0.NumClasses()

	t1, ords := t0.Patch(added)
	if want := []int32{2, 3}; !reflect.DeepEqual(ords, want) {
		t.Fatalf("added ordinals = %v, want %v", ords, want)
	}
	// Receiver untouched.
	if t0.NumPreds() != prePreds || t0.NumClasses() != preClasses {
		t.Fatal("patch mutated the receiver's symbol counts")
	}
	if _, ok := t0.Ordinal(added[0]); ok {
		t.Fatal("old generation resolves a constraint added after it was taken")
	}

	// Stability: every base symbol keeps its ID.
	for i, c := range base {
		ord, ok := t1.Ordinal(c)
		if !ok || ord != i {
			t.Fatalf("base constraint %d moved to ordinal %d (ok=%v)", i, ord, ok)
		}
		c0, _ := t0.CompiledFor(c)
		c1, _ := t1.CompiledFor(c)
		if c0.Cons != c1.Cons || !reflect.DeepEqual(c0.Ants, c1.Ants) {
			t.Fatalf("compiled form of base constraint %d changed", i)
		}
	}
	// Shared predicates resolve to the same ID; new ones appended.
	id0, _ := t0.PredID(added[0].Antecedents[0])
	id1, ok := t1.PredID(added[0].Antecedents[0])
	if !ok || id0 != id1 {
		t.Fatalf("shared predicate re-interned: %d vs %d", id0, id1)
	}

	// Equivalence with a from-scratch compile over the combined list.
	ref := Compile(nil, append(append([]*constraint.Constraint(nil), base...), added...))
	if t1.NumPreds() != ref.NumPreds() || t1.NumClasses() != ref.NumClasses() ||
		t1.NumAttrs() != ref.NumAttrs() || t1.NumSigs() != ref.NumSigs() {
		t.Fatalf("symbol counts diverge: patched preds=%d classes=%d attrs=%d sigs=%d, scratch %d/%d/%d/%d",
			t1.NumPreds(), t1.NumClasses(), t1.NumAttrs(), t1.NumSigs(),
			ref.NumPreds(), ref.NumClasses(), ref.NumAttrs(), ref.NumSigs())
	}
	if got, want := adjacencyByKey(t1), adjacencyByKey(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("implication adjacency diverges\npatched: %v\nscratch: %v", got, want)
	}
}

// TestPatchTombstoneReuse: removals never touch the symbol space, so
// re-adding a constraint (or a new constraint over the same predicates)
// reuses the tombstoned symbols instead of minting fresh IDs — and the same
// constraint pointer resolves to its newest ordinal.
func TestPatchTombstoneReuse(t *testing.T) {
	r1 := patchRule("r1", "a", "u", 10)
	r2 := patchRule("r2", "a", "v", 20)
	t0 := Compile(nil, []*constraint.Constraint{r1, r2})

	// "Remove" r2 (a symtab no-op) and re-add it via patch: the pool must
	// not grow — every symbol is tombstone-reused — while r2 moves to a
	// fresh ordinal.
	t1, ords := t0.Patch([]*constraint.Constraint{r2})
	if t1.NumPreds() != t0.NumPreds() || t1.NumSigs() != t0.NumSigs() {
		t.Fatalf("re-adding an existing rule grew the symbol space: preds %d->%d",
			t0.NumPreds(), t1.NumPreds())
	}
	if ord, ok := t1.Ordinal(r2); !ok || ord != int(ords[0]) || ord != 2 {
		t.Fatalf("re-added constraint ordinal = %d (ok=%v), want 2", ord, ok)
	}
	comp := t1.CompiledAt(2)
	orig := t1.CompiledAt(1)
	if comp.Cons != orig.Cons || !reflect.DeepEqual(comp.Ants, orig.Ants) {
		t.Fatal("re-added constraint compiled to different predicate IDs")
	}

	// A second patch on the already-live lineage shares the maps.
	r3 := patchRule("r3", "a", "u", 10) // logically r1's twin with a new id
	t2, _ := t1.Patch([]*constraint.Constraint{r3})
	if t2.NumPreds() != t1.NumPreds() {
		t.Fatal("twin rule should reuse every predicate symbol")
	}
	if id1, _ := t1.PredID(r1.Antecedents[0]); func() PredID { id, _ := t2.PredID(r3.Antecedents[0]); return id }() != id1 {
		t.Fatal("tombstone-reused predicate changed IDs across patches")
	}
}

// TestPatchConcurrentReads: old generations must serve lookups concurrently
// while patches advance the lineage (meaningful under -race).
func TestPatchConcurrentReads(t *testing.T) {
	base := []*constraint.Constraint{patchRule("r1", "a", "u", 10)}
	t0 := Compile(nil, base)
	t1, _ := t0.Patch([]*constraint.Constraint{patchRule("r2", "a", "v", 20)})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if _, ok := t1.PredID(base[0].Antecedents[0]); !ok {
				t.Error("lookup lost during concurrent patching")
				return
			}
			t1.ClassID("a")
			t1.Ordinal(base[0])
			t1.SigOrdinalOf(base[0].Consequent)
		}
	}()
	cur := t1
	for i := 0; i < 40; i++ {
		cur, _ = cur.Patch([]*constraint.Constraint{
			patchRule("g"+string(rune('A'+i)), "a", "w"+string(rune('A'+i)), int64(i)),
		})
	}
	<-done
}
