// Package symtab compiles a catalog generation into an interned symbol
// space: every object class, attribute, operand signature and canonical
// predicate that the generation can ever mention is assigned a dense integer
// ID exactly once, at catalog build time, and the per-query layers of the
// optimizer operate on those IDs instead of strings.
//
// The motivation is the paper's own economics: semantic optimization only
// pays off while the optimizer's cost stays far below the execution savings.
// After the retrieval index made finding the relevant constraints sublinear,
// the remaining per-query cost was dominated by string work — predicate keys
// hashed into per-query interning maps, canonical signatures rebuilt for
// implication bucketing, class names compared during relevance checks. All
// of that is a pure function of the catalog, so it is hoisted here and
// computed once per generation (NewEngine / SwapCatalog), alongside the
// constraint index.
//
// A Table is immutable after Compile and safe for unbounded concurrent use.
// String forms stay available through the accessors for display, traces and
// tests; only the hot path switches to IDs.
package symtab

import (
	"sync"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/schema"
)

// ClassID is the dense ID of an interned object-class name.
type ClassID int32

// AttrID is the dense ID of an interned (class, attribute) pair.
type AttrID int32

// PredID is the dense ID of an interned canonical predicate — the pool
// ordinal of the catalog's predicate pool.
type PredID int32

// None is the sentinel for "not interned" in all three ID spaces.
const None = -1

// Compiled is the ID form of one constraint: its consequent and antecedent
// predicates resolved to PredIDs. Ants aliases the table's backing array;
// treat as read-only.
type Compiled struct {
	Cons PredID
	Ants []PredID
}

// attrKey identifies an attribute for interning; a comparable struct so
// lookups never build a string.
type attrKey struct {
	class, attr string
}

// sigKey is the comparable form of a predicate's operand signature. Two
// predicates can stand in an implication relation only when their signatures
// are equal (predicate.Implies reasons over identical operand pairs).
type sigKey struct {
	left, right predicate.AttrRef
	join        bool
}

func sigOf(p predicate.Predicate) sigKey {
	k := sigKey{left: p.Left, join: p.IsJoin()}
	if k.join {
		k.right = p.RightAttr
	}
	return k
}

// Table is the interned symbol space of one catalog generation.
//
// A table built by Compile is fully immutable. Patch grows a table into a
// *lineage*: the patched generations share append-only backing arrays and a
// set of concurrent-read-safe symbol maps (liveMaps), while each generation's
// slice headers freeze its own view. Untouched IDs are stable across every
// generation of a lineage; removals leave tombstones (the symbols and
// compiled rows of a removed constraint simply stop being referenced), so a
// re-added symbol reuses its old ID. See Patch.
type Table struct {
	classNames []string
	classIDs   map[string]ClassID

	attrKeys []attrKey
	attrIDs  map[attrKey]AttrID

	pool    *predicate.Pool // PredID space; first-occurrence catalog order
	predSig []int32         // PredID -> signature ordinal
	sigIDs  map[sigKey]int32
	nSigs   int // number of distinct signatures in this generation

	// Implication adjacency among the pooled predicates, computed once per
	// generation: fwd[i] lists the PredIDs predicate i implies (ascending),
	// rev is the transpose. Hoisting this off the per-query path is what
	// lets the transformation table's implication-aware matching run
	// without a single predicate.Implies call for catalog predicates.
	fwd, rev [][]PredID

	compiled []Compiled
	antsFlat []PredID
	ordOf    map[*constraint.Constraint]int32

	// live, when non-nil, marks a patched generation: symbol resolution
	// goes through the lineage's shared concurrent maps instead of the
	// plain per-generation maps above (which are nil then). Compile-built
	// tables have live == nil and pay no overhead beyond the nil check.
	live *liveMaps

	// frz, when non-nil, marks a snapshot-restored generation: the plain
	// maps are nil and pre-snapshot symbols resolve through frozen
	// open-addressing tables loaded straight from the snapshot file (see
	// image.go) — the restore path never rebuilds a Go map. A lineage
	// patched from a restored table keeps frz as the fallback behind the
	// shared live maps, which then hold only post-snapshot symbols.
	frz *frozenLookups
}

// liveMaps is the shared symbol store of one mutable lineage: sync.Maps are
// safe for unbounded concurrent lookups from every generation while the
// newest generation (patches are serialized by the caller) keeps inserting.
// IDs are append-only, so an entry, once stored, never changes.
type liveMaps struct {
	classIDs sync.Map // string -> ClassID
	attrIDs  sync.Map // attrKey -> AttrID
	sigIDs   sync.Map // sigKey -> int32
	ordOf    sync.Map // *constraint.Constraint -> int32

	// sigMembers lists the pooled PredIDs of each signature bucket,
	// ascending — the membership Patch needs to compute the implication
	// edges of a newly interned predicate. Mutation-side only (guarded by
	// the caller's patch serialization); never read while serving.
	sigMembers map[int32][]PredID
	nextSig    int32
}

// Compile interns the symbol space of a catalog generation: the schema's
// classes and attributes (when a schema is given — queries are validated
// against it, so this makes every query symbol resolvable), plus everything
// the constraints mention. The constraint slice order is the catalog order;
// Compiled entries are parallel to it.
func Compile(sch *schema.Schema, all []*constraint.Constraint) *Table {
	t := &Table{
		classIDs: make(map[string]ClassID),
		attrIDs:  make(map[attrKey]AttrID),
		sigIDs:   make(map[sigKey]int32),
		ordOf:    make(map[*constraint.Constraint]int32, len(all)),
	}

	if sch != nil {
		for _, cl := range sch.Classes() {
			t.internClass(cl)
			for _, a := range sch.EffectiveAttributes(cl) {
				t.internAttr(cl, a.Name)
			}
		}
	}

	occurrences := 0
	for _, c := range all {
		occurrences += 1 + len(c.Antecedents)
	}
	t.pool = predicate.NewPoolSize(occurrences)
	t.antsFlat = make([]PredID, 0, occurrences-len(all))
	t.compiled = make([]Compiled, len(all))

	for i, c := range all {
		t.ordOf[c] = int32(i)
		start := len(t.antsFlat)
		for _, a := range c.Antecedents {
			t.antsFlat = append(t.antsFlat, t.internPred(a))
		}
		t.compiled[i] = Compiled{
			Cons: t.internPred(c.Consequent),
			Ants: t.antsFlat[start:len(t.antsFlat):len(t.antsFlat)],
		}
		for _, cl := range c.Classes() {
			t.internClass(cl)
		}
	}

	t.buildAdjacency()
	t.nSigs = len(t.sigIDs)
	return t
}

func (t *Table) internClass(name string) ClassID {
	if t.live != nil {
		if id, ok := t.live.classIDs.Load(name); ok {
			return id.(ClassID)
		}
		if t.frz != nil {
			if id, ok := t.frzClass(name); ok {
				return id
			}
		}
		id := ClassID(len(t.classNames))
		t.live.classIDs.Store(name, id)
		t.classNames = append(t.classNames, name)
		return id
	}
	if id, ok := t.classIDs[name]; ok {
		return id
	}
	id := ClassID(len(t.classNames))
	t.classIDs[name] = id
	t.classNames = append(t.classNames, name)
	return id
}

func (t *Table) internAttr(class, attr string) AttrID {
	k := attrKey{class, attr}
	if t.live != nil {
		if id, ok := t.live.attrIDs.Load(k); ok {
			return id.(AttrID)
		}
		if t.frz != nil {
			if id, ok := t.frzAttr(k); ok {
				return id
			}
		}
		id := AttrID(len(t.attrKeys))
		t.live.attrIDs.Store(k, id)
		t.attrKeys = append(t.attrKeys, k)
		return id
	}
	if id, ok := t.attrIDs[k]; ok {
		return id
	}
	id := AttrID(len(t.attrKeys))
	t.attrIDs[k] = id
	t.attrKeys = append(t.attrKeys, k)
	return id
}

func (t *Table) internSig(k sigKey) int32 {
	if t.live != nil {
		if id, ok := t.live.sigIDs.Load(k); ok {
			return id.(int32)
		}
		if t.frz != nil {
			if id, ok := t.frzSig(k); ok {
				return id
			}
		}
		id := t.live.nextSig
		t.live.nextSig++
		t.live.sigIDs.Store(k, id)
		t.nSigs = int(t.live.nextSig)
		return id
	}
	if id, ok := t.sigIDs[k]; ok {
		return id
	}
	id := int32(len(t.sigIDs))
	t.sigIDs[k] = id
	return id
}

// internPred interns one predicate, its attributes and its signature.
func (t *Table) internPred(p predicate.Predicate) PredID {
	before := t.pool.Len()
	id := t.pool.Intern(p)
	if id == before { // newly interned
		t.internClass(p.Left.Class)
		t.internAttr(p.Left.Class, p.Left.Attr)
		if p.IsJoin() {
			t.internClass(p.RightAttr.Class)
			t.internAttr(p.RightAttr.Class, p.RightAttr.Attr)
		}
		t.predSig = append(t.predSig, t.internSig(sigOf(p)))
	}
	return PredID(id)
}

// buildAdjacency computes the implication adjacency among the pooled
// predicates, bucketed by signature ordinal (implication requires identical
// operand pairs). O(Σ bucketᵢ²) once per generation, amortized over every
// query served against it.
func (t *Table) buildAdjacency() {
	m := t.pool.Len()
	t.fwd = make([][]PredID, m)
	t.rev = make([][]PredID, m)
	buckets := make(map[int32][]PredID, len(t.sigIDs))
	for id := 0; id < m; id++ {
		sig := t.predSig[id]
		buckets[sig] = append(buckets[sig], PredID(id))
	}
	for _, ids := range buckets {
		if len(ids) < 2 {
			continue
		}
		for _, i := range ids {
			pi := t.pool.At(int(i))
			for _, j := range ids {
				if i != j && pi.Implies(t.pool.At(int(j))) {
					t.fwd[i] = append(t.fwd[i], j)
				}
			}
		}
	}
	for i, list := range t.fwd {
		for _, j := range list {
			t.rev[j] = append(t.rev[j], PredID(i))
		}
	}
}

// NumClasses returns the number of interned class names.
func (t *Table) NumClasses() int { return len(t.classNames) }

// NumAttrs returns the number of interned (class, attribute) pairs.
func (t *Table) NumAttrs() int { return len(t.attrKeys) }

// NumPreds returns the number of interned canonical predicates.
func (t *Table) NumPreds() int { return t.pool.Len() }

// NumSigs returns the number of distinct operand signatures.
func (t *Table) NumSigs() int { return t.nSigs }

// ClassID resolves a class name; ok is false when the generation never
// interned it.
func (t *Table) ClassID(name string) (ClassID, bool) {
	if t.live != nil {
		if v, ok := t.live.classIDs.Load(name); ok {
			return v.(ClassID), true
		}
		if t.frz == nil {
			return None, false
		}
	}
	if t.frz != nil {
		return t.frzClass(name)
	}
	id, ok := t.classIDs[name]
	return id, ok
}

// ClassName returns the name of an interned class.
func (t *Table) ClassName(id ClassID) string { return t.classNames[id] }

// AttrID resolves a (class, attribute) pair.
func (t *Table) AttrID(class, attr string) (AttrID, bool) {
	if t.live != nil {
		if v, ok := t.live.attrIDs.Load(attrKey{class, attr}); ok {
			return v.(AttrID), true
		}
		if t.frz == nil {
			return None, false
		}
	}
	if t.frz != nil {
		return t.frzAttr(attrKey{class, attr})
	}
	id, ok := t.attrIDs[attrKey{class, attr}]
	return id, ok
}

// AttrName returns the (class, attribute) pair of an interned attribute.
func (t *Table) AttrName(id AttrID) (class, attr string) {
	k := t.attrKeys[id]
	return k.class, k.attr
}

// PredID resolves a canonical predicate. The lookup hashes the predicate's
// construction-time cached key; it never allocates.
func (t *Table) PredID(p predicate.Predicate) (PredID, bool) {
	id, ok := t.pool.Lookup(p)
	return PredID(id), ok
}

// Pred returns the predicate with the given ID.
func (t *Table) Pred(id PredID) predicate.Predicate { return t.pool.At(int(id)) }

// Pool exposes the underlying predicate pool (read-only) — the paper's
// pointer-compression structure for materialized closures.
func (t *Table) Pool() *predicate.Pool { return t.pool }

// SigOrdinal returns the signature ordinal of an interned predicate. Two
// predicates can imply one another only when their ordinals are equal.
func (t *Table) SigOrdinal(id PredID) int32 { return t.predSig[id] }

// SigOrdinalOf resolves the signature ordinal of an arbitrary predicate,
// interned or not; ok is false when no catalog predicate shares its
// signature (such a predicate can only imply query-private peers).
func (t *Table) SigOrdinalOf(p predicate.Predicate) (int32, bool) {
	if t.live != nil {
		if v, ok := t.live.sigIDs.Load(sigOf(p)); ok {
			return v.(int32), true
		}
		if t.frz == nil {
			return 0, false
		}
	}
	if t.frz != nil {
		return t.frzSig(sigOf(p))
	}
	id, ok := t.sigIDs[sigOf(p)]
	return id, ok
}

// Implies returns the PredIDs that predicate id implies, ascending. The
// slice aliases the table; treat as read-only.
func (t *Table) Implies(id PredID) []PredID { return t.fwd[id] }

// ImpliedBy returns the PredIDs implying predicate id, ascending.
func (t *Table) ImpliedBy(id PredID) []PredID { return t.rev[id] }

// Ordinal returns the catalog ordinal of a constraint of this generation;
// ok is false for foreign constraints (including constraints a later
// generation of the same lineage appended after this one was taken).
func (t *Table) Ordinal(c *constraint.Constraint) (int, bool) {
	if t.live != nil {
		if v, ok := t.live.ordOf.Load(c); ok {
			if int(v.(int32)) >= len(t.compiled) {
				return 0, false
			}
			return int(v.(int32)), true
		}
		if t.frz == nil {
			return 0, false
		}
	}
	if t.frz != nil {
		return t.frzOrd(c)
	}
	ord, ok := t.ordOf[c]
	return int(ord), ok
}

// CompiledAt returns the ID form of the constraint at a catalog ordinal.
func (t *Table) CompiledAt(ord int) Compiled { return t.compiled[ord] }

// CompiledFor resolves a constraint to its ID form; ok is false for
// constraints from another generation.
func (t *Table) CompiledFor(c *constraint.Constraint) (Compiled, bool) {
	ord, ok := t.Ordinal(c)
	if !ok {
		return Compiled{}, false
	}
	return t.compiled[ord], true
}
