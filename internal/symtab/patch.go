package symtab

import (
	"sqo/internal/constraint"
)

// Patch grows the symbol space of a catalog generation into the next one:
// the constraints of added are compiled at fresh ordinals (appended after
// every ordinal the receiver knows), interning any new class, attribute,
// signature or predicate symbols at fresh dense IDs. Every ID the receiver
// assigned stays valid and unchanged in the returned table — ID spaces are
// append-only across a lineage — so per-ID state held elsewhere (catalog
// ordinals in cached results, posting lists, translation arrays) survives
// the patch untouched.
//
// Removals need no symbol work at all: a removed constraint's ordinal,
// predicates and classes simply become tombstones — still resolvable through
// the lineage's shared maps (an old generation may still be serving them),
// no longer referenced by the new generation's retrieval structures. A
// re-added symbol therefore reuses its tombstoned ID instead of minting a
// new one.
//
// The first Patch of a lineage promotes the receiver's plain maps into the
// lineage's shared concurrent maps (O(symbols), once); afterwards a patch
// costs O(|added| · bucket) symbol work plus one copy of the implication
// adjacency spines. The receiver is never mutated and keeps serving
// concurrently; Patch calls within a lineage must be serialized by the
// caller (the engine holds its swap lock).
//
// Patch returns the new table and the ordinals assigned to added, parallel
// to it. With no additions the receiver itself is returned unchanged.
func (t *Table) Patch(added []*constraint.Constraint) (*Table, []int32) {
	if len(added) == 0 {
		return t, nil
	}
	nt := &Table{
		classNames: t.classNames,
		attrKeys:   t.attrKeys,
		pool:       t.pool.Fork(),
		predSig:    t.predSig,
		nSigs:      t.nSigs,
		fwd:        t.fwd,
		rev:        t.rev,
		compiled:   t.compiled,
		antsFlat:   t.antsFlat,
		live:       t.live,
		frz:        t.frz,
	}
	if nt.live == nil {
		nt.live = t.promote()
	}

	// Compile the added constraints, mirroring Compile's per-constraint
	// order (antecedents, consequent, classes) so column numbering in the
	// transformation table is reproduced exactly.
	oldPreds := nt.pool.Len()
	ords := make([]int32, len(added))
	for i, c := range added {
		ord := int32(len(nt.compiled))
		ords[i] = ord
		nt.live.ordOf.Store(c, ord)
		start := len(nt.antsFlat)
		for _, a := range c.Antecedents {
			nt.antsFlat = append(nt.antsFlat, nt.internPred(a))
		}
		nt.compiled = append(nt.compiled, Compiled{
			Cons: nt.internPred(c.Consequent),
			Ants: nt.antsFlat[start:len(nt.antsFlat):len(nt.antsFlat)],
		})
		for _, cl := range c.Classes() {
			nt.internClass(cl)
		}
	}

	nt.patchAdjacency(oldPreds)
	return nt, ords
}

// promote builds the lineage's shared concurrent maps from the receiver's
// plain per-generation maps. Concurrent readers of the receiver are
// unaffected: its plain maps are only read here, and the receiver keeps
// using them — only patched generations resolve through the shared maps.
func (t *Table) promote() *liveMaps {
	if t.frz != nil {
		// A restored table has no plain maps to promote: pre-snapshot
		// symbols keep resolving through the frozen tables behind the
		// lineage's shared maps, which start empty and only ever hold
		// post-snapshot symbols. Only the signature-bucket membership is
		// materialized, from the predicate→signature array.
		lm := &liveMaps{
			sigMembers: make(map[int32][]PredID, t.nSigs),
			nextSig:    int32(t.nSigs),
		}
		for id, sig := range t.predSig {
			lm.sigMembers[sig] = append(lm.sigMembers[sig], PredID(id))
		}
		return lm
	}
	lm := &liveMaps{
		sigMembers: make(map[int32][]PredID, len(t.sigIDs)),
		nextSig:    int32(len(t.sigIDs)),
	}
	for name, id := range t.classIDs {
		lm.classIDs.Store(name, id)
	}
	for k, id := range t.attrIDs {
		lm.attrIDs.Store(k, id)
	}
	for k, id := range t.sigIDs {
		lm.sigIDs.Store(k, id)
	}
	for c, ord := range t.ordOf {
		lm.ordOf.Store(c, ord)
	}
	// PredIDs ascend, so appending in ID order keeps buckets sorted.
	for id, sig := range t.predSig {
		lm.sigMembers[sig] = append(lm.sigMembers[sig], PredID(id))
	}
	return lm
}

// patchAdjacency extends the catalog-level implication adjacency with the
// predicates interned after oldPreds. Only the spines and the rows of
// predicates gaining an edge are copied; every untouched row is shared with
// the prior generations. Rows stay ascending: a new predicate's ID exceeds
// every member of its bucket, so appending preserves order.
func (t *Table) patchAdjacency(oldPreds int) {
	newPreds := t.pool.Len()
	if newPreds == oldPreds {
		return
	}
	fwd := make([][]PredID, newPreds)
	copy(fwd, t.fwd)
	rev := make([][]PredID, newPreds)
	copy(rev, t.rev)
	// ownedFwd/ownedRev mark pre-existing rows already copied during this
	// patch, so a second edge into the same row appends in place instead
	// of re-copying the (shared) original.
	ownedFwd := make(map[PredID]bool)
	ownedRev := make(map[PredID]bool)
	for id := oldPreds; id < newPreds; id++ {
		pid := PredID(id)
		sig := t.predSig[id]
		members := t.live.sigMembers[sig]
		p := t.pool.At(id)
		for _, m := range members {
			pm := t.pool.At(int(m))
			if p.Implies(pm) {
				fwd[pid] = append(fwd[pid], m)
				if int(m) < oldPreds && !ownedRev[m] {
					rev[m] = append(append([]PredID(nil), rev[m]...), pid)
					ownedRev[m] = true
				} else {
					rev[m] = append(rev[m], pid)
				}
			}
			if pm.Implies(p) {
				rev[pid] = append(rev[pid], m)
				if int(m) < oldPreds && !ownedFwd[m] {
					fwd[m] = append(append([]PredID(nil), fwd[m]...), pid)
					ownedFwd[m] = true
				} else {
					fwd[m] = append(fwd[m], pid)
				}
			}
		}
		t.live.sigMembers[sig] = append(members, pid)
	}
	t.fwd, t.rev = fwd, rev
}
