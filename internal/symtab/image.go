// Snapshot support: exporting a compiled symbol space to a serializable
// image and rebuilding a Table from one without recompiling anything.
//
// The restore path is the whole point of the exercise: symtab.Compile
// dominates a cold catalog build (predicate interning, map construction and
// the O(Σ bucket²) implication inference are ~80% of it at 1e4 rules), so a
// warm boot must sidestep every one of those costs. An Image therefore
// carries, alongside the plain backing arrays, the *frozen* open-addressing
// lookup tables (package frozen) that Image() builds once at snapshot-write
// time; FromImage just wraps the arrays and tables in a Table whose lookups
// probe the frozen slots directly — no map is ever rebuilt, no string ever
// re-hashed into a Go map, no implication ever re-derived.
package symtab

import (
	"sqo/internal/constraint"
	"sqo/internal/frozen"
	"sqo/internal/predicate"
)

// frozenLookups is the restored-generation symbol resolution state: one
// open-addressing table per symbol space, probing into the Table's plain
// backing arrays for equality confirmation.
type frozenLookups struct {
	classes frozen.Table
	attrs   frozen.Table
	sigs    frozen.Table
	sigRep  []PredID // per signature ordinal: a pooled predicate bearing it
	ords    frozen.Table
	ordKeys []string // per snapshot ordinal: constraint key; "" = tombstone
}

// sep separates composite key fields in frozen hashing.
const sep = 0xff

func hashClass(name string) uint64 { return frozen.HashString(name) }

func hashAttr(k attrKey) uint64 {
	return frozen.AddString(frozen.AddByte(frozen.AddString(frozen.Seed(), k.class), sep), k.attr)
}

func hashSig(k sigKey) uint64 {
	h := frozen.Seed()
	if k.join {
		h = frozen.AddByte(h, 1)
	} else {
		h = frozen.AddByte(h, 0)
	}
	h = frozen.AddString(h, k.left.Class)
	h = frozen.AddByte(h, sep)
	h = frozen.AddString(h, k.left.Attr)
	h = frozen.AddByte(h, sep)
	h = frozen.AddString(h, k.right.Class)
	h = frozen.AddByte(h, sep)
	return frozen.AddString(h, k.right.Attr)
}

func hashOrd(key string) uint64 { return frozen.HashString(key) }

func (t *Table) frzClass(name string) (ClassID, bool) {
	id, ok := t.frz.classes.Find(hashClass(name), func(id int32) bool {
		return t.classNames[id] == name
	})
	if !ok {
		return None, false
	}
	return ClassID(id), true
}

func (t *Table) frzAttr(k attrKey) (AttrID, bool) {
	id, ok := t.frz.attrs.Find(hashAttr(k), func(id int32) bool {
		return t.attrKeys[id] == k
	})
	if !ok {
		return None, false
	}
	return AttrID(id), true
}

func (t *Table) frzSig(k sigKey) (int32, bool) {
	id, ok := t.frz.sigs.Find(hashSig(k), func(id int32) bool {
		return sigOf(t.pool.At(int(t.frz.sigRep[id]))) == k
	})
	if !ok {
		return 0, false
	}
	return id, true
}

func (t *Table) frzOrd(c *constraint.Constraint) (int, bool) {
	key := c.Key()
	ord, ok := t.frz.ords.Find(hashOrd(key), func(id int32) bool {
		return t.frz.ordKeys[id] == key
	})
	if !ok || int(ord) >= len(t.compiled) {
		return 0, false
	}
	return int(ord), true
}

// Image is the serializable form of a Table: the plain backing arrays plus
// the frozen lookup-slot arrays. Compiled constraint rows are normalized to
// one flat antecedent array with an offset spine (a patched table's rows can
// straddle several backings). All slices alias either the table or freshly
// built tables; treat an Image as frozen once produced.
type Image struct {
	ClassNames []string
	ClassSlots []int32

	AttrClasses []string // parallel to AttrNames: interned (class, attr) pairs
	AttrNames   []string
	AttrSlots   []int32

	Preds     []predicate.Predicate // pool order
	PoolSlots []int32

	PredSig  []int32
	NSigs    int
	SigRep   []PredID
	SigSlots []int32

	Fwd, Rev [][]PredID

	Cons       []PredID // per ordinal: consequent PredID
	AntsFlat   []PredID // concatenated antecedent rows, ordinal order
	AntOffsets []int32  // len(Cons)+1: row boundaries in AntsFlat

	OrdKeys  []string // per ordinal: constraint key; "" = tombstone
	OrdSlots []int32
}

// Image exports the table for snapshot writing, building the frozen lookup
// tables as it goes. ordKeys must be parallel to the table's ordinal space,
// holding each live constraint's canonical key and "" for tombstoned
// ordinals (live keys are unique within a generation by the delta layer's
// invariant). Image works on compiled, patched and restored tables alike.
func (t *Table) Image(ordKeys []string) *Image {
	img := &Image{
		ClassNames: t.classNames,
		PredSig:    t.predSig,
		NSigs:      t.nSigs,
		Fwd:        t.fwd,
		Rev:        t.rev,
		Preds:      t.pool.All(),
		PoolSlots:  t.pool.Freeze(),
		OrdKeys:    ordKeys,
	}

	img.AttrClasses = make([]string, len(t.attrKeys))
	img.AttrNames = make([]string, len(t.attrKeys))
	for i, k := range t.attrKeys {
		img.AttrClasses[i], img.AttrNames[i] = k.class, k.attr
	}

	classes := frozen.New(len(t.classNames))
	for i, name := range t.classNames {
		classes.Insert(hashClass(name), int32(i))
	}
	img.ClassSlots = classes.Slots()

	attrs := frozen.New(len(t.attrKeys))
	for i, k := range t.attrKeys {
		attrs.Insert(hashAttr(k), int32(i))
	}
	img.AttrSlots = attrs.Slots()

	img.SigRep = make([]PredID, t.nSigs)
	for i := range img.SigRep {
		img.SigRep[i] = None
	}
	for id, sig := range t.predSig {
		if img.SigRep[sig] == None {
			img.SigRep[sig] = PredID(id)
		}
	}
	sigs := frozen.New(t.nSigs)
	for sig, rep := range img.SigRep {
		if rep != None {
			sigs.Insert(hashSig(sigOf(t.pool.At(int(rep)))), int32(sig))
		}
	}
	img.SigSlots = sigs.Slots()

	img.Cons = make([]PredID, len(t.compiled))
	img.AntOffsets = make([]int32, len(t.compiled)+1)
	total := 0
	for _, c := range t.compiled {
		total += len(c.Ants)
	}
	img.AntsFlat = make([]PredID, 0, total)
	for i, c := range t.compiled {
		img.Cons[i] = c.Cons
		img.AntsFlat = append(img.AntsFlat, c.Ants...)
		img.AntOffsets[i+1] = int32(len(img.AntsFlat))
	}

	live := 0
	for _, k := range ordKeys {
		if k != "" {
			live++
		}
	}
	ords := frozen.New(live)
	for ord, k := range ordKeys {
		if k != "" {
			ords.Insert(hashOrd(k), int32(ord))
		}
	}
	img.OrdSlots = ords.Slots()
	return img
}

// FromImage rebuilds a Table from an image in O(arrays): backing slices are
// adopted, compiled rows are re-sliced from the flat antecedent array, and
// every symbol lookup is answered by the image's frozen tables. ok is false
// when a frozen slot array is structurally invalid for its entry count —
// the caller treats that as snapshot corruption. No semantic validation
// happens here; the snapshot layer's checksums vouch for the content.
func FromImage(img *Image) (*Table, bool) {
	classes, ok1 := frozen.FromSlots(img.ClassSlots, len(img.ClassNames))
	attrs, ok2 := frozen.FromSlots(img.AttrSlots, len(img.AttrClasses))
	sigs, ok3 := frozen.FromSlots(img.SigSlots, img.NSigs)
	ords, ok4 := frozen.FromSlots(img.OrdSlots, len(img.OrdKeys))
	pool, ok5 := predicate.RestorePool(img.Preds, img.PoolSlots)
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return nil, false
	}
	if len(img.AttrNames) != len(img.AttrClasses) || len(img.SigRep) != img.NSigs ||
		len(img.PredSig) != len(img.Preds) || len(img.AntOffsets) != len(img.Cons)+1 ||
		len(img.OrdKeys) != len(img.Cons) {
		return nil, false
	}
	t := &Table{
		classNames: img.ClassNames,
		pool:       pool,
		predSig:    img.PredSig,
		nSigs:      img.NSigs,
		fwd:        img.Fwd,
		rev:        img.Rev,
		frz: &frozenLookups{
			classes: classes,
			attrs:   attrs,
			sigs:    sigs,
			sigRep:  img.SigRep,
			ords:    ords,
			ordKeys: img.OrdKeys,
		},
	}
	t.attrKeys = make([]attrKey, len(img.AttrClasses))
	for i := range t.attrKeys {
		t.attrKeys[i] = attrKey{class: img.AttrClasses[i], attr: img.AttrNames[i]}
	}
	t.antsFlat = img.AntsFlat
	t.compiled = make([]Compiled, len(img.Cons))
	for i := range t.compiled {
		a, b := img.AntOffsets[i], img.AntOffsets[i+1]
		if a < 0 || b < a || int(b) > len(img.AntsFlat) {
			return nil, false
		}
		t.compiled[i] = Compiled{Cons: img.Cons[i], Ants: img.AntsFlat[a:b:b]}
	}
	return t, true
}
