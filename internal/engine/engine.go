// Package engine executes queries against the storage substrate: a greedy
// pointer-traversal planner plus a pipelined executor that meters simulated
// physical work (pages, object fetches, index probes, link traversals,
// predicate evaluations).
//
// The engine stands in for the DBMS the paper ran its 40 query pairs on.
// Costs are deterministic functions of the data and the plan, so the
// optimized/original cost ratios of Table 4.2 can be regenerated exactly on
// every run.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/storage"
	"sqo/internal/value"
)

// CostWeights converts a storage.Meter into scalar cost units. The defaults
// treat a sequential page read as the unit, price random object fetches just
// below a page (no clustering), and make predicate evaluation cheap CPU.
type CostWeights struct {
	Page          float64
	ObjectFetch   float64
	IndexProbe    float64
	LinkTraversal float64
	PredEval      float64
}

// DefaultWeights is the calibration used by the experiment harness.
var DefaultWeights = CostWeights{
	Page:          1.0,
	ObjectFetch:   0.8,
	IndexProbe:    0.6,
	LinkTraversal: 0.3,
	PredEval:      0.01,
}

// Cost collapses a meter into cost units.
func (w CostWeights) Cost(m storage.Meter) float64 {
	return w.Page*float64(m.PagesScanned) +
		w.ObjectFetch*float64(m.ObjectFetches) +
		w.IndexProbe*float64(m.IndexProbes) +
		w.LinkTraversal*float64(m.LinkTraversals) +
		w.PredEval*float64(m.PredEvals)
}

// AccessKind is how a plan step reaches its class.
type AccessKind uint8

const (
	// AccessScan reads the whole extent sequentially.
	AccessScan AccessKind = iota
	// AccessIndex probes a secondary index and fetches the matches.
	AccessIndex
	// AccessTraverse follows a relationship from an already-bound class.
	AccessTraverse
)

// String names the access kind.
func (a AccessKind) String() string {
	switch a {
	case AccessScan:
		return "scan"
	case AccessIndex:
		return "index"
	case AccessTraverse:
		return "traverse"
	default:
		return "access(?)"
	}
}

// Step is one class access in a plan.
type Step struct {
	Class     string
	Access    AccessKind
	ViaRel    string                // relationship used by AccessTraverse
	FromClass string                // bound class the traversal starts from
	IndexPred predicate.Predicate   // the predicate served by AccessIndex
	Filters   []predicate.Predicate // selective predicates checked here
	Joins     []predicate.Predicate // join predicates checkable after this step
}

// Plan is the ordered list of steps evaluating a query.
type Plan struct {
	Steps []Step
}

// String renders the plan one step per line, for explain output.
func (p *Plan) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteByte('\n')
		}
		switch s.Access {
		case AccessScan:
			fmt.Fprintf(&sb, "%d: scan %s", i, s.Class)
		case AccessIndex:
			fmt.Fprintf(&sb, "%d: index %s on %s", i, s.Class, s.IndexPred)
		case AccessTraverse:
			fmt.Fprintf(&sb, "%d: traverse %s -[%s]-> %s", i, s.FromClass, s.ViaRel, s.Class)
		}
		for _, f := range s.Filters {
			fmt.Fprintf(&sb, " filter(%s)", f)
		}
		for _, j := range s.Joins {
			fmt.Fprintf(&sb, " join(%s)", j)
		}
	}
	return sb.String()
}

// Row is one result tuple: the projected values in query.Project order.
type Row struct {
	Values []value.Value
}

// Result is the outcome of executing one query.
type Result struct {
	Rows  []Row
	Meter storage.Meter
	Plan  *Plan
}

// Cost prices the result's meter with the given weights.
func (r *Result) Cost(w CostWeights) float64 { return w.Cost(r.Meter) }

// Canonical returns the result rows as a sorted multiset of strings, the
// form the equivalence property tests compare.
func (r *Result) Canonical() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row.Values))
		for j, v := range row.Values {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// Executor plans and runs queries over one database. Construct with New;
// it snapshots statistics once (like a cached system catalog).
type Executor struct {
	db    *storage.Database
	stats *storage.Stats
}

// New builds an executor over the database.
func New(db *storage.Database) *Executor {
	return &Executor{db: db, stats: db.Analyze()}
}

// Stats exposes the statistics snapshot (shared with the cost model).
func (e *Executor) Stats() *storage.Stats { return e.db.Analyze() }

// Execute plans and runs the query, returning rows and the metered cost.
// An EmptyResult short-circuit belongs to the caller (the optimizer's
// contradiction detection); Execute always runs the plan it is given.
func (e *Executor) Execute(q *query.Query) (*Result, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: the context is checked every
// checkEvery instances inside the scan and join loops, matching the
// optimizer's OptimizeContext pattern, so a cancelled or expired context
// abandons a long-running execution promptly and returns ctx.Err().
func (e *Executor) ExecuteContext(ctx context.Context, q *query.Query) (*Result, error) {
	plan, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, q, plan)
}

// Plan orders the query's classes greedily: the seed is the class with the
// smallest estimated selected cardinality (favoring indexable predicates),
// and each subsequent step traverses a query relationship from the bound set
// to the cheapest remaining class.
func (e *Executor) Plan(q *query.Query) (*Plan, error) {
	return e.plan(q, e.walkCost)
}

// PlanExamined is Plan under the serving profile: the seed minimizes the
// estimated number of instances the run will examine (scan extent or index
// matches, plus every downstream traversal fetch) instead of the weighted
// I/O cost. Under the paper's disk model a sequential scan packs dozens of
// tuples per page, so cost-optimal plans happily trade examined instances
// for sequential pages; a serving executor cares about per-tuple work, and
// internal/exec — whose headline number is TuplesScanned — plans through
// this entry point for both its optimized and raw runs.
func (e *Executor) PlanExamined(q *query.Query) (*Plan, error) {
	return e.plan(q, e.walkTuples)
}

// plan builds the greedy plan with the given seed-scoring function.
func (e *Executor) plan(q *query.Query, score func(*query.Query, string, map[string][]predicate.Predicate) float64) (*Plan, error) {
	if len(q.Classes) == 0 {
		return nil, fmt.Errorf("engine: query has no classes")
	}
	selects := map[string][]predicate.Predicate{}
	for _, p := range q.Selects {
		cl := p.Left.Class
		selects[cl] = append(selects[cl], p)
	}

	// Pick the seed by the cheapest full greedy walk, not just the
	// cheapest first access: a small unfiltered extent is a bad seed when
	// a filtered neighbor would cut every downstream traversal.
	seed := ""
	bestCost := 0.0
	for _, cl := range q.Classes {
		c := score(q, cl, selects)
		if seed == "" || c < bestCost {
			seed, bestCost = cl, c
		}
	}

	plan := &Plan{}
	bound := map[string]bool{seed: true}
	joinsDone := map[string]bool{}
	step := e.seedStep(seed, selects[seed])
	step.Joins = e.checkableJoins(q, bound, joinsDone)
	plan.Steps = append(plan.Steps, step)

	relUsed := map[string]bool{}
	for len(bound) < len(q.Classes) {
		// Candidate expansions: unbound classes reachable via an unused
		// query relationship from a bound class.
		type cand struct {
			class, rel, from string
			est              float64
		}
		var best *cand
		for _, rn := range q.Relationships {
			if relUsed[rn] {
				continue
			}
			r := e.db.Schema().Relationship(rn)
			if r == nil {
				return nil, fmt.Errorf("engine: unknown relationship %q", rn)
			}
			var from, to string
			switch {
			case bound[r.Source] && !bound[r.Target]:
				from, to = r.Source, r.Target
			case bound[r.Target] && !bound[r.Source]:
				from, to = r.Target, r.Source
			default:
				continue
			}
			est := e.estimatedCard(to, selects[to])
			if best == nil || est < best.est {
				best = &cand{class: to, rel: rn, from: from, est: est}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("engine: classes %v not connected by relationships %v", q.Classes, q.Relationships)
		}
		relUsed[best.rel] = true
		bound[best.class] = true
		st := Step{
			Class:     best.class,
			Access:    AccessTraverse,
			ViaRel:    best.rel,
			FromClass: best.from,
			Filters:   selects[best.class],
		}
		st.Joins = e.checkableJoins(q, bound, joinsDone)
		plan.Steps = append(plan.Steps, st)
	}
	return plan, nil
}

// checkableJoins returns the join predicates whose classes are all bound and
// that have not been assigned to an earlier step.
func (e *Executor) checkableJoins(q *query.Query, bound map[string]bool, done map[string]bool) []predicate.Predicate {
	var out []predicate.Predicate
	for _, j := range q.Joins {
		if done[j.Key()] {
			continue
		}
		ok := true
		for _, cl := range j.Classes() {
			if !bound[cl] {
				ok = false
				break
			}
		}
		if ok {
			done[j.Key()] = true
			out = append(out, j)
		}
	}
	return out
}

// seedStep chooses index access when one of the class's predicates can use an
// index, otherwise a full scan; the remaining predicates become filters.
func (e *Executor) seedStep(class string, preds []predicate.Predicate) Step {
	bestIdx := -1
	bestSel := 2.0
	for i, p := range preds {
		if op, ok := indexOp(p.Op); ok && e.db.HasIndex(class, p.Left.Attr) {
			_ = op
			if s := e.selectivity(class, p); s < bestSel {
				bestSel, bestIdx = s, i
			}
		}
	}
	if bestIdx < 0 {
		return Step{Class: class, Access: AccessScan, Filters: preds}
	}
	st := Step{Class: class, Access: AccessIndex, IndexPred: preds[bestIdx]}
	for i, p := range preds {
		if i != bestIdx {
			st.Filters = append(st.Filters, p)
		}
	}
	return st
}

// seedCost estimates the physical cost of seeding from the class: index
// probe + fetches when indexable, otherwise a full scan.
func (e *Executor) seedCost(class string, preds []predicate.Predicate) float64 {
	cs := e.stats.Classes[class]
	for _, p := range preds {
		if _, ok := indexOp(p.Op); ok && e.db.HasIndex(class, p.Left.Attr) {
			return 1 + e.selectivity(class, p)*float64(cs.Card)
		}
	}
	return float64(cs.Pages) + 1
}

// walkCost estimates the cost of the whole greedy plan when seeded at the
// given class: seed access plus, per expansion step, the traversals and
// fetches driven by the surviving binding estimate. It mirrors the cost
// model's EstimateQuery so planner and optimizer agree on plan shapes.
func (e *Executor) walkCost(q *query.Query, seed string, selects map[string][]predicate.Predicate) float64 {
	cost := e.seedCost(seed, selects[seed])
	bindings := e.estimatedCard(seed, selects[seed])
	bound := map[string]bool{seed: true}
	relUsed := map[string]bool{}
	for len(bound) < len(q.Classes) {
		var bestClass, bestRel, bestFrom string
		bestEst := 0.0
		for _, rn := range q.Relationships {
			if relUsed[rn] {
				continue
			}
			r := e.db.Schema().Relationship(rn)
			if r == nil {
				continue
			}
			var from, to string
			switch {
			case bound[r.Source] && !bound[r.Target]:
				from, to = r.Source, r.Target
			case bound[r.Target] && !bound[r.Source]:
				from, to = r.Target, r.Source
			default:
				continue
			}
			est := e.estimatedCard(to, selects[to])
			if bestClass == "" || est < bestEst {
				bestClass, bestRel, bestFrom, bestEst = to, rn, from, est
			}
		}
		if bestClass == "" {
			break // disconnected; Plan will report the error
		}
		relUsed[bestRel] = true
		bound[bestClass] = true
		fan := e.stats.Rels[bestRel].Fanout[bestFrom]
		fetched := bindings * fan
		cost += bindings*DefaultWeights.LinkTraversal + fetched*DefaultWeights.ObjectFetch +
			fetched*float64(len(selects[bestClass]))*DefaultWeights.PredEval
		sel := 1.0
		for _, p := range selects[bestClass] {
			sel *= e.selectivity(bestClass, p)
		}
		bindings = fetched * sel
	}
	return cost
}

// walkTuples estimates how many instances the greedy plan seeded at the
// given class examines: the seed's scanned extent (or index matches) plus
// every downstream traversal fetch. Same walk as walkCost, different
// currency — see PlanExamined.
func (e *Executor) walkTuples(q *query.Query, seed string, selects map[string][]predicate.Predicate) float64 {
	cs := e.stats.Classes[seed]
	tuples := float64(cs.Card)
	for _, p := range selects[seed] {
		if _, ok := indexOp(p.Op); ok && e.db.HasIndex(seed, p.Left.Attr) {
			if t := e.selectivity(seed, p) * float64(cs.Card); t < tuples {
				tuples = t
			}
		}
	}
	bindings := float64(cs.Card)
	for _, p := range selects[seed] {
		bindings *= e.servingSelectivity(seed, p)
	}
	bound := map[string]bool{seed: true}
	relUsed := map[string]bool{}
	for len(bound) < len(q.Classes) {
		var bestClass, bestRel, bestFrom string
		bestEst := 0.0
		for _, rn := range q.Relationships {
			if relUsed[rn] {
				continue
			}
			r := e.db.Schema().Relationship(rn)
			if r == nil {
				continue
			}
			var from, to string
			switch {
			case bound[r.Source] && !bound[r.Target]:
				from, to = r.Source, r.Target
			case bound[r.Target] && !bound[r.Source]:
				from, to = r.Target, r.Source
			default:
				continue
			}
			est := e.estimatedCard(to, selects[to])
			if bestClass == "" || est < bestEst {
				bestClass, bestRel, bestFrom, bestEst = to, rn, from, est
			}
		}
		if bestClass == "" {
			break // disconnected; Plan will report the error
		}
		relUsed[bestRel] = true
		bound[bestClass] = true
		fetched := bindings * e.stats.Rels[bestRel].Fanout[bestFrom]
		tuples += fetched
		sel := 1.0
		for _, p := range selects[bestClass] {
			sel *= e.servingSelectivity(bestClass, p)
		}
		bindings = fetched * sel
	}
	return tuples
}

// servingSelectivity is the selectivity estimate walkTuples trusts. Without
// histograms, range selectivities are linear-interpolation guesses, and the
// restrictions the optimizer introduces are exactly where the guess is worst:
// a constraint like rank="trainee" => class<=2 holds because most instances
// satisfy its consequent, so the interpolated estimate lures the seed toward
// a filter that barely filters. The serving profile therefore trusts only
// equality (1/distinct) and index-backed estimates — an index confines the
// instances physically examined regardless of the estimate — and treats any
// other filter as non-reducing.
func (e *Executor) servingSelectivity(class string, p predicate.Predicate) float64 {
	if p.Op == predicate.EQ {
		return e.selectivity(class, p)
	}
	if _, ok := indexOp(p.Op); ok && e.db.HasIndex(class, p.Left.Attr) {
		return e.selectivity(class, p)
	}
	return 1
}

// estimatedCard is the class cardinality scaled by its predicates'
// selectivities.
func (e *Executor) estimatedCard(class string, preds []predicate.Predicate) float64 {
	cs := e.stats.Classes[class]
	est := float64(cs.Card)
	for _, p := range preds {
		est *= e.selectivity(class, p)
	}
	return est
}

func (e *Executor) selectivity(class string, p predicate.Predicate) float64 {
	as := e.stats.Classes[class].Attrs[p.Left.Attr]
	return p.Selectivity(as.Distinct, as.Min, as.Max, as.HasRange)
}

// indexOp maps a predicate operator onto an index lookup mode; != cannot use
// an ordered index.
func indexOp(op predicate.Op) (storage.IndexOp, bool) {
	switch op {
	case predicate.EQ:
		return storage.IndexEQ, true
	case predicate.LT:
		return storage.IndexLT, true
	case predicate.LE:
		return storage.IndexLE, true
	case predicate.GT:
		return storage.IndexGT, true
	case predicate.GE:
		return storage.IndexGE, true
	default:
		return 0, false
	}
}
