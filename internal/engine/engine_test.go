package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/storage"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("supplier",
			schema.Attribute{Name: "name", Type: value.KindString, Indexed: true}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt}).
		Class("vehicle",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "class", Type: value.KindInt}).
		Class("driver",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "licenseClass", Type: value.KindInt}).
		Relationship("supplies", "supplier", "cargo", schema.OneToMany).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		Relationship("drives", "driver", "vehicle", schema.ManyToMany).
		MustBuild()
}

// loadDB builds the little logistics world used across the tests:
//
//	suppliers: SFI, ACME
//	cargos:    frozen food(q=10, SFI, truck0), steel(q=50, ACME, truck1),
//	           frozen food(q=20, SFI, truck0)
//	vehicles:  refrigerated truck(class 3), flatbed(class 5)
//	drivers:   amy(license 5 drives both), bob(license 3 drives truck0)
func loadDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase(testSchema(t))
	ins := func(class string, vals map[string]value.Value) storage.OID {
		oid, err := db.Insert(class, vals)
		if err != nil {
			t.Fatalf("Insert(%s): %v", class, err)
		}
		return oid
	}
	link := func(rel string, a, b storage.OID) {
		if err := db.Link(rel, a, b); err != nil {
			t.Fatalf("Link(%s): %v", rel, err)
		}
	}
	sfi := ins("supplier", map[string]value.Value{"name": value.String("SFI")})
	acme := ins("supplier", map[string]value.Value{"name": value.String("ACME")})
	c0 := ins("cargo", map[string]value.Value{"desc": value.String("frozen food"), "quantity": value.Int(10)})
	c1 := ins("cargo", map[string]value.Value{"desc": value.String("steel"), "quantity": value.Int(50)})
	c2 := ins("cargo", map[string]value.Value{"desc": value.String("frozen food"), "quantity": value.Int(20)})
	v0 := ins("vehicle", map[string]value.Value{"desc": value.String("refrigerated truck"), "class": value.Int(3)})
	v1 := ins("vehicle", map[string]value.Value{"desc": value.String("flatbed"), "class": value.Int(5)})
	d0 := ins("driver", map[string]value.Value{"name": value.String("amy"), "licenseClass": value.Int(5)})
	d1 := ins("driver", map[string]value.Value{"name": value.String("bob"), "licenseClass": value.Int(3)})
	link("supplies", sfi, c0)
	link("supplies", acme, c1)
	link("supplies", sfi, c2)
	link("collects", v0, c0)
	link("collects", v1, c1)
	link("collects", v0, c2)
	link("drives", d0, v0)
	link("drives", d0, v1)
	link("drives", d1, v0)
	return db
}

func TestSingleClassScan(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("cargo").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("cargo", "desc", value.String("frozen food")))
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := res.Canonical(); !reflect.DeepEqual(got, []string{`"frozen food"`, `"frozen food"`}) {
		t.Errorf("rows = %v", got)
	}
	if res.Meter.PagesScanned == 0 {
		t.Error("scan should charge pages")
	}
	if res.Meter.PredEvals != 3 {
		t.Errorf("PredEvals = %d, want one per cargo", res.Meter.PredEvals)
	}
	if res.Plan.Steps[0].Access != AccessScan {
		t.Errorf("plan should scan, got %v", res.Plan.Steps[0].Access)
	}
}

func TestIndexSeed(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("supplier").
		AddProject("supplier", "name").
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI")))
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Plan.Steps[0].Access != AccessIndex {
		t.Fatalf("plan should use the name index: %s", res.Plan)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Str() != "SFI" {
		t.Errorf("rows = %v", res.Canonical())
	}
	if res.Meter.IndexProbes != 1 || res.Meter.PagesScanned != 0 {
		t.Errorf("meter = %+v, want index probe and no scan", res.Meter)
	}
	// The index served the predicate: no residual filter evals.
	if res.Meter.PredEvals != 0 {
		t.Errorf("PredEvals = %d, want 0", res.Meter.PredEvals)
	}
}

// TestPaperQueryExecution runs the Figure 2.3 original and optimized queries
// and checks they return identical rows with the optimized one cheaper.
func TestPaperQueryExecution(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	original := query.New("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")
	// The schema here has no vehicle# attribute; project desc instead.
	original.Project[0] = predicate.AttrRef{Class: "vehicle", Attr: "desc"}

	optimized := query.New("cargo", "vehicle").
		AddProject("vehicle", "desc").
		AddProject("cargo", "desc").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("cargo", "desc", value.String("frozen food"))).
		AddRelationship("collects")

	ro, err := e.Execute(original)
	if err != nil {
		t.Fatalf("Execute(original): %v", err)
	}
	rz, err := e.Execute(optimized)
	if err != nil {
		t.Fatalf("Execute(optimized): %v", err)
	}
	if !reflect.DeepEqual(ro.Canonical(), rz.Canonical()) {
		t.Errorf("results differ:\noriginal:  %v\noptimized: %v", ro.Canonical(), rz.Canonical())
	}
	if len(ro.Rows) != 2 {
		t.Errorf("expected the two frozen-food cargos, got %v", ro.Canonical())
	}
	wo, wz := ro.Cost(DefaultWeights), rz.Cost(DefaultWeights)
	if wz >= wo {
		t.Errorf("optimized cost %.2f should beat original %.2f", wz, wo)
	}
}

func TestJoinPredicate(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("driver", "vehicle").
		AddProject("driver", "name").
		AddProject("vehicle", "desc").
		AddJoin(predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class")).
		AddRelationship("drives")
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// amy(5) drives truck0(3) and flatbed(5): both qualify.
	// bob(3) drives truck0(3): qualifies. 3 rows total.
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v, want 3", res.Canonical())
	}
	// Without the join predicate all 3 drive-links qualify too; tighten it.
	q2 := query.New("driver", "vehicle").
		AddProject("driver", "name").
		AddJoin(predicate.Join("driver", "licenseClass", predicate.GT, "vehicle", "class")).
		AddRelationship("drives")
	res2, err := e.Execute(q2)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res2.Rows) != 1 || res2.Rows[0].Values[0].Str() != "amy" {
		t.Errorf("strict join rows = %v, want just amy>truck0", res2.Canonical())
	}
}

func TestThreeWayPath(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("supplier", "cargo", "vehicle").
		AddProject("supplier", "name").
		AddProject("vehicle", "desc").
		AddSelect(predicate.Eq("cargo", "desc", value.String("steel"))).
		AddRelationship("supplies").
		AddRelationship("collects")
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v, want 1", res.Canonical())
	}
	got := res.Canonical()[0]
	if !strings.Contains(got, "ACME") || !strings.Contains(got, "flatbed") {
		t.Errorf("row = %q", got)
	}
}

func TestEmptyResult(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("cargo", "vehicle").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("cargo", "desc", value.String("unobtainium"))).
		AddSelect(predicate.Eq("vehicle", "desc", value.String("flatbed"))).
		AddRelationship("collects")
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v, want none", res.Canonical())
	}
}

func TestPlanSeedsOnMostSelectiveClass(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	// supplier.name = "SFI" is indexed and selective: the plan must seed
	// there rather than scanning cargo.
	q := query.New("supplier", "cargo").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddRelationship("supplies")
	plan, err := e.Plan(q)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.Steps[0].Class != "supplier" || plan.Steps[0].Access != AccessIndex {
		t.Errorf("plan = %s", plan)
	}
	if plan.Steps[1].Access != AccessTraverse || plan.Steps[1].ViaRel != "supplies" {
		t.Errorf("second step should traverse supplies: %s", plan)
	}
}

func TestPlanErrors(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	if _, err := e.Plan(&query.Query{}); err == nil {
		t.Error("empty query should fail")
	}
	disconnected := query.New("supplier", "vehicle") // no relationship
	if _, err := e.Plan(disconnected); err == nil {
		t.Error("disconnected query should fail")
	}
	badRel := query.New("supplier", "cargo").AddRelationship("ghost")
	if _, err := e.Plan(badRel); err == nil {
		t.Error("unknown relationship should fail")
	}
}

func TestPlanString(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("supplier", "cargo").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddSelect(predicate.Eq("cargo", "desc", value.String("frozen food"))).
		AddRelationship("supplies")
	plan, err := e.Plan(q)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	s := plan.String()
	for _, want := range []string{"index supplier", "traverse supplier -[supplies]-> cargo", "filter"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessScan.String() != "scan" || AccessIndex.String() != "index" ||
		AccessTraverse.String() != "traverse" || AccessKind(9).String() != "access(?)" {
		t.Error("AccessKind.String broken")
	}
}

func TestCostWeights(t *testing.T) {
	m := storage.Meter{PagesScanned: 2, ObjectFetches: 5, IndexProbes: 1, LinkTraversals: 10, PredEvals: 100}
	w := CostWeights{Page: 1, ObjectFetch: 0.5, IndexProbe: 0.25, LinkTraversal: 0.1, PredEval: 0.01}
	want := 2.0 + 2.5 + 0.25 + 1.0 + 1.0
	if got := w.Cost(m); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestCheckConstraintHolds(t *testing.T) {
	db := loadDB(t)
	c1 := constraint.New("c1",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("frozen food")))
	n, err := CheckConstraint(db, c1)
	if err != nil {
		t.Fatalf("CheckConstraint: %v", err)
	}
	if n != 0 {
		t.Errorf("c1 should hold on the test data, got %d violations", n)
	}
	// c3-like join consequent.
	c3 := constraint.New("c3", nil, []string{"drives"},
		predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class"))
	n, err = CheckConstraint(db, c3)
	if err != nil {
		t.Fatalf("CheckConstraint(c3): %v", err)
	}
	// amy(5)>=truck0(3) ok, amy(5)>=flatbed(5) ok, bob(3)>=truck0(3) ok.
	if n != 0 {
		t.Errorf("c3 should hold, got %d violations", n)
	}
}

func TestCheckConstraintViolated(t *testing.T) {
	db := loadDB(t)
	bad := constraint.New("bad",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("steel")))
	n, err := CheckConstraint(db, bad)
	if err != nil {
		t.Fatalf("CheckConstraint: %v", err)
	}
	if n != 2 {
		t.Errorf("violations = %d, want 2 (both frozen-food collects pairs)", n)
	}
	cat := constraint.MustCatalog(bad)
	id, err := CheckCatalog(db, cat)
	if err != nil {
		t.Fatalf("CheckCatalog: %v", err)
	}
	if id != "bad" {
		t.Errorf("CheckCatalog = %q, want bad", id)
	}
}

func TestCheckCatalogAllHold(t *testing.T) {
	db := loadDB(t)
	cat := constraint.MustCatalog(
		constraint.New("c1",
			[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
			[]string{"collects"},
			predicate.Eq("cargo", "desc", value.String("frozen food"))),
		constraint.New("c2",
			[]predicate.Predicate{predicate.Eq("cargo", "desc", value.String("frozen food"))},
			[]string{"supplies"},
			predicate.Eq("supplier", "name", value.String("SFI"))),
	)
	id, err := CheckCatalog(db, cat)
	if err != nil {
		t.Fatalf("CheckCatalog: %v", err)
	}
	if id != "" {
		t.Errorf("all constraints hold; got violation in %q", id)
	}
}

func TestRunRejectsBadPlans(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("supplier", "cargo").AddRelationship("supplies")
	// Traverse from a class bound later.
	bad := &Plan{Steps: []Step{
		{Class: "cargo", Access: AccessTraverse, ViaRel: "supplies", FromClass: "supplier"},
		{Class: "supplier", Access: AccessScan},
	}}
	if _, err := e.Run(q, bad); err == nil {
		t.Error("plan traversing from unbound class should fail")
	}
	// Seed appearing mid-plan.
	bad2 := &Plan{Steps: []Step{
		{Class: "supplier", Access: AccessScan},
		{Class: "cargo", Access: AccessScan},
	}}
	if _, err := e.Run(q, bad2); err == nil {
		t.Error("second seed step should fail")
	}
}

func TestExecutionDeterminism(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("supplier", "cargo", "vehicle").
		AddProject("supplier", "name").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Sel("cargo", "quantity", predicate.LE, value.Int(20))).
		AddRelationship("supplies").
		AddRelationship("collects")
	first, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	for i := 0; i < 5; i++ {
		again, err := e.Execute(q)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !reflect.DeepEqual(first.Canonical(), again.Canonical()) || first.Meter != again.Meter {
			t.Fatalf("execution not deterministic on run %d", i)
		}
	}
}

// TestPlanExaminedIgnoresUntrustedRanges: the serving profile must not let a
// non-indexed range filter lure the seed away from an equality-filtered
// class. vehicle.class <= 3 interpolates to near-zero selectivity, but
// without a histogram that estimate is a guess — PlanExamined treats it as
// non-reducing and seeds at the equality filter instead.
func TestPlanExaminedIgnoresUntrustedRanges(t *testing.T) {
	db := loadDB(t)
	e := New(db)
	q := query.New("driver", "vehicle").
		AddProject("driver", "name").
		AddProject("vehicle", "desc").
		AddRelationship("drives").
		AddSelect(predicate.Eq("driver", "licenseClass", value.Int(3))).
		AddSelect(predicate.Sel("vehicle", "class", predicate.LE, value.Int(3)))
	plan, err := e.PlanExamined(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].Class != "driver" {
		t.Errorf("PlanExamined seeded at %s, want driver:\n%v", plan.Steps[0].Class, plan)
	}
	// The plan still executes correctly.
	res, err := e.Run(q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v, want bob/refrigerated truck", res.Canonical())
	}
}

// TestPlanExaminedTrustsIndexes: an index-backed predicate confines the
// instances physically examined, so the serving profile keeps using it.
func TestPlanExaminedTrustsIndexes(t *testing.T) {
	e := New(loadDB(t))
	q := query.New("supplier", "cargo").
		AddProject("cargo", "desc").
		AddRelationship("supplies").
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI")))
	plan, err := e.PlanExamined(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].Class != "supplier" || plan.Steps[0].Access != AccessIndex {
		t.Errorf("PlanExamined = %v, want index seed on supplier", plan)
	}
}

// TestExecuteContextCancellation: a canceled context aborts a scan larger
// than the check interval; a live context completes the same query.
func TestExecuteContextCancellation(t *testing.T) {
	db := storage.NewDatabase(testSchema(t))
	for i := 0; i < 3000; i++ {
		if _, err := db.Insert("cargo", map[string]value.Value{
			"desc": value.String("bulk"), "quantity": value.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(db)
	q := query.New("cargo").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("cargo", "desc", value.String("none")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteContext(ctx, q); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := e.ExecuteContext(context.Background(), q); err != nil {
		t.Errorf("live context: %v", err)
	}
}
