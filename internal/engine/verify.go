package engine

import (
	"sqo/internal/constraint"
	"sqo/internal/query"
	"sqo/internal/storage"
)

// CheckConstraint verifies that a semantic constraint holds in the database:
// over every combination of instances of the constraint's classes connected
// through its links, whenever all antecedents hold the consequent holds too.
// It returns the number of violating combinations (0 means the constraint is
// satisfied). The data generator's tests and the optimizer's equivalence
// property tests rely on this.
func CheckConstraint(db *storage.Database, c *constraint.Constraint) (int, error) {
	// Assemble the classes: predicate classes plus link endpoints (derived
	// constraints may route through classes that carry no predicate).
	classSet := map[string]bool{}
	for _, cl := range c.Classes() {
		classSet[cl] = true
	}
	for _, ln := range c.Links {
		if r := db.Schema().Relationship(ln); r != nil {
			classSet[r.Source] = true
			classSet[r.Target] = true
		}
	}
	q := &query.Query{}
	for _, cl := range db.Schema().Classes() { // deterministic order
		if classSet[cl] {
			q.Classes = append(q.Classes, cl)
		}
	}
	q.Relationships = append(q.Relationships, c.Links...)

	// Antecedents filter the bindings; the consequent is projected and
	// evaluated per row.
	for _, a := range c.Antecedents {
		if a.IsJoin() {
			q.Joins = append(q.Joins, a)
		} else {
			q.Selects = append(q.Selects, a)
		}
	}
	cons := c.Consequent
	q.Project = append(q.Project, cons.Left)
	if cons.IsJoin() {
		q.Project = append(q.Project, cons.RightAttr)
	}
	if err := q.Validate(db.Schema()); err != nil {
		return 0, err
	}

	res, err := New(db).Execute(q)
	if err != nil {
		return 0, err
	}
	violations := 0
	for _, row := range res.Rows {
		if cons.IsJoin() {
			if !cons.EvalJoin(row.Values[0], row.Values[1]) {
				violations++
			}
		} else {
			if !cons.EvalSel(row.Values[0]) {
				violations++
			}
		}
	}
	return violations, nil
}

// CheckCatalog verifies every constraint of a catalog against the database,
// returning the first violated constraint's ID (or "" when all hold).
func CheckCatalog(db *storage.Database, cat *constraint.Catalog) (string, error) {
	for _, c := range cat.All() {
		n, err := CheckConstraint(db, c)
		if err != nil {
			return "", err
		}
		if n > 0 {
			return c.ID, nil
		}
	}
	return "", nil
}
