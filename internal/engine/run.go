package engine

import (
	"context"
	"fmt"

	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/storage"
	"sqo/internal/value"
)

// binding is one partial tuple during pipelined execution: the bound
// instance per plan-step position.
type binding []storage.Instance

// checkEvery is how many instances pass between context checks inside
// RunContext's loops — frequent enough that cancellation cuts in promptly,
// rare enough that the check never shows up in a profile.
const checkEvery = 1024

// Run executes a previously built plan. The plan must belong to the query
// (Execute guarantees that; tests may build plans directly).
func (e *Executor) Run(q *query.Query, plan *Plan) (*Result, error) {
	return e.RunContext(context.Background(), q, plan)
}

// RunContext is Run with cancellation, checked every checkEvery instances.
func (e *Executor) RunContext(ctx context.Context, q *query.Query, plan *Plan) (*Result, error) {
	res := &Result{Plan: plan}
	m := &res.Meter
	var seen int64
	tick := func() error {
		if seen++; seen%checkEvery == 0 {
			return ctx.Err()
		}
		return nil
	}

	classPos := map[string]int{}
	for i, st := range plan.Steps {
		classPos[st.Class] = i
	}

	// Pre-resolve attribute positions for every predicate.
	filterEval, err := e.compileFilters(plan)
	if err != nil {
		return nil, err
	}

	var bindings []binding
	for stepIdx, st := range plan.Steps {
		var next []binding
		switch st.Access {
		case AccessScan, AccessIndex:
			var seed []storage.Instance
			if st.Access == AccessScan {
				var ctxErr error
				err = e.db.Scan(st.Class, m, func(inst storage.Instance) bool {
					if ctxErr = tick(); ctxErr != nil {
						return false
					}
					seed = append(seed, inst)
					return true
				})
				if err != nil {
					return nil, err
				}
				if ctxErr != nil {
					return nil, ctxErr
				}
			} else {
				op, _ := indexOp(st.IndexPred.Op)
				oids, err := e.db.IndexLookup(st.Class, st.IndexPred.Left.Attr, op, st.IndexPred.Const, m)
				if err != nil {
					return nil, err
				}
				for _, oid := range oids {
					if err := tick(); err != nil {
						return nil, err
					}
					inst, err := e.db.Get(st.Class, oid, m)
					if err != nil {
						return nil, err
					}
					seed = append(seed, inst)
				}
			}
			if stepIdx != 0 {
				return nil, fmt.Errorf("engine: non-seed %s step at position %d", st.Access, stepIdx)
			}
			for _, inst := range seed {
				if !filterEval(stepIdx, inst, m) {
					continue
				}
				b := make(binding, len(plan.Steps))
				b[stepIdx] = inst
				next = append(next, b)
			}

		case AccessTraverse:
			fromPos, ok := classPos[st.FromClass]
			if !ok || fromPos >= stepIdx {
				return nil, fmt.Errorf("engine: step %d traverses from unbound class %q", stepIdx, st.FromClass)
			}
			for _, b := range bindings {
				oids, err := e.db.Traverse(st.ViaRel, st.FromClass, b[fromPos].OID, m)
				if err != nil {
					return nil, err
				}
				for _, oid := range oids {
					if err := tick(); err != nil {
						return nil, err
					}
					inst, err := e.db.Get(st.Class, oid, m)
					if err != nil {
						return nil, err
					}
					if !filterEval(stepIdx, inst, m) {
						continue
					}
					nb := make(binding, len(plan.Steps))
					copy(nb, b)
					nb[stepIdx] = inst
					next = append(next, nb)
				}
			}
		}

		// Join predicates that became checkable at this step.
		if len(st.Joins) > 0 {
			joined := next[:0]
			for _, b := range next {
				ok, err := e.evalJoins(st.Joins, classPos, b, m)
				if err != nil {
					return nil, err
				}
				if ok {
					joined = append(joined, b)
				}
			}
			next = joined
		}
		bindings = next
		if len(bindings) == 0 && stepIdx < len(plan.Steps)-1 {
			// Nothing survives; later steps would do no work anyway.
			bindings = nil
		}
	}

	// Projection.
	proj := make([]struct {
		pos  int
		attr int
	}, len(q.Project))
	for i, a := range q.Project {
		pos, ok := classPos[a.Class]
		if !ok {
			return nil, fmt.Errorf("engine: projection %s references unplanned class", a)
		}
		ai, err := e.db.AttrIndexOf(a.Class, a.Attr)
		if err != nil {
			return nil, err
		}
		proj[i] = struct{ pos, attr int }{pos, ai}
	}
	for _, b := range bindings {
		row := Row{Values: make([]value.Value, len(proj))}
		for i, pr := range proj {
			row.Values[i] = b[pr.pos].Values[pr.attr]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// compileFilters resolves the attribute offsets of each step's selective
// predicates once and returns an evaluator.
func (e *Executor) compileFilters(plan *Plan) (func(step int, inst storage.Instance, m *storage.Meter) bool, error) {
	type compiled struct {
		pred predicate.Predicate
		attr int
	}
	table := make([][]compiled, len(plan.Steps))
	for i, st := range plan.Steps {
		for _, p := range st.Filters {
			ai, err := e.db.AttrIndexOf(st.Class, p.Left.Attr)
			if err != nil {
				return nil, err
			}
			table[i] = append(table[i], compiled{pred: p, attr: ai})
		}
	}
	return func(step int, inst storage.Instance, m *storage.Meter) bool {
		for _, c := range table[step] {
			m.PredEvals++
			if !c.pred.EvalSel(inst.Values[c.attr]) {
				return false
			}
		}
		return true
	}, nil
}

// evalJoins checks the given join predicates against a full binding.
func (e *Executor) evalJoins(joins []predicate.Predicate, classPos map[string]int, b binding, m *storage.Meter) (bool, error) {
	for _, j := range joins {
		lp, ok := classPos[j.Left.Class]
		if !ok {
			return false, fmt.Errorf("engine: join %s references unplanned class", j)
		}
		rp, ok := classPos[j.RightAttr.Class]
		if !ok {
			return false, fmt.Errorf("engine: join %s references unplanned class", j)
		}
		la, err := e.db.AttrIndexOf(j.Left.Class, j.Left.Attr)
		if err != nil {
			return false, err
		}
		ra, err := e.db.AttrIndexOf(j.RightAttr.Class, j.RightAttr.Attr)
		if err != nil {
			return false, err
		}
		m.PredEvals++
		if !j.EvalJoin(b[lp].Values[la], b[rp].Values[ra]) {
			return false, nil
		}
	}
	return true, nil
}
