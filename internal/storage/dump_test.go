package storage

import (
	"strings"
	"testing"

	"sqo/internal/schema"
	"sqo/internal/value"
)

func TestDumpLoadRoundTrip(t *testing.T) {
	db := NewDatabase(testSchema(t))
	loadSample(t, db)
	data, err := Dump(db)
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, class := range db.Schema().Classes() {
		if back.Count(class) != db.Count(class) {
			t.Errorf("%s: count %d vs %d", class, back.Count(class), db.Count(class))
		}
	}
	for _, rel := range db.Schema().Relationships() {
		if back.LinkCount(rel) != db.LinkCount(rel) {
			t.Errorf("%s: links %d vs %d", rel, back.LinkCount(rel), db.LinkCount(rel))
		}
	}
	// Instance content and link structure survive.
	inst, err := back.Get("supplier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	name, _ := back.Attr("supplier", inst, "name")
	if name.Str() != "SFI" {
		t.Errorf("supplier 0 = %v", name)
	}
	targets, err := back.Traverse("supplies", "supplier", 0, nil)
	if err != nil || len(targets) != 2 {
		t.Errorf("SFI should supply 2 cargos after reload: %v, %v", targets, err)
	}
	// Indexes are rebuilt.
	hits, err := back.IndexLookup("supplier", "name", IndexEQ, value.String("SFI"), nil)
	if err != nil || len(hits) != 1 {
		t.Errorf("index after reload: %v, %v", hits, err)
	}
	// Dumps are deterministic.
	again, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("Dump is not deterministic")
	}
}

func TestDumpCompactsDeletions(t *testing.T) {
	db := NewDatabase(testSchema(t))
	_, cargos := loadSample(t, db)
	if err := db.Delete("cargo", cargos[0]); err != nil {
		t.Fatal(err)
	}
	data, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatalf("Load after delete: %v", err)
	}
	if back.Count("cargo") != db.Count("cargo") {
		t.Errorf("cargo count %d vs %d", back.Count("cargo"), db.Count("cargo"))
	}
	// Links to the deleted cargo are gone; the rest are remapped correctly:
	// every link endpoint resolves.
	for _, rel := range back.Schema().Relationships() {
		if back.LinkCount(rel) != db.LinkCount(rel) {
			t.Errorf("%s: links %d vs %d", rel, back.LinkCount(rel), db.LinkCount(rel))
		}
	}
	// Each reloaded supplier's cargo links resolve to live instances.
	for oid := OID(0); int(oid) < back.Count("supplier"); oid++ {
		targets, err := back.Traverse("supplies", "supplier", oid, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, dst := range targets {
			if _, err := back.Get("cargo", dst, nil); err != nil {
				t.Errorf("dangling link after compaction: %v", err)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	db := NewDatabase(testSchema(t))
	loadSample(t, db)
	good, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(string) string
	}{
		{"garbage", func(string) string { return "{not json" }},
		{"bad schema", func(s string) string {
			return strings.Replace(s, "class supplier", "klass supplier", 1)
		}},
		{"wrong arity", func(s string) string {
			return strings.Replace(s, `"SFI"`, `"SFI", "extra"`, 1)
		}},
		{"type mismatch", func(s string) string {
			return strings.Replace(s, `"SFI"`, `17`, 1)
		}},
		{"bad link", func(s string) string {
			return strings.Replace(s, `"supplies": [`, `"supplies": [[99,99],`, 1)
		}},
	}
	for _, c := range cases {
		if _, err := Load([]byte(c.mut(string(good)))); err == nil {
			t.Errorf("%s: Load should fail", c.name)
		}
	}
}

func TestDumpValueKinds(t *testing.T) {
	s := testValueSchema()
	db := NewDatabase(s)
	if _, err := db.Insert("v", map[string]value.Value{
		"s": value.String("x"),
		"i": value.Int(-7),
		"f": value.Float(2.25),
		"b": value.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
	data, err := Dump(db)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := back.Get("v", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]value.Value{
		"s": value.String("x"), "i": value.Int(-7), "f": value.Float(2.25), "b": value.Bool(true),
	}
	for attr, want := range checks {
		got, err := back.Attr("v", inst, attr)
		if err != nil || got != want {
			t.Errorf("%s = %v (%v), want %v", attr, got, err, want)
		}
	}
}

// testValueSchema declares one class with every value kind.
func testValueSchema() *schema.Schema {
	return schema.NewBuilder().
		Class("v",
			schema.Attribute{Name: "s", Type: value.KindString},
			schema.Attribute{Name: "i", Type: value.KindInt},
			schema.Attribute{Name: "f", Type: value.KindFloat},
			schema.Attribute{Name: "b", Type: value.KindBool}).
		MustBuild()
}
