package storage

import (
	"sort"

	"sqo/internal/value"
)

// IndexOp is the lookup mode of a secondary index probe.
type IndexOp uint8

// Index lookup modes (the subset of comparison operators an ordered index
// accelerates; != always falls back to a scan).
const (
	IndexEQ IndexOp = iota
	IndexLT
	IndexLE
	IndexGT
	IndexGE
)

// orderedIndex is a sorted secondary index: entries ordered by value, then
// OID. It supports equality and range probes in O(log n + k). Inserts keep
// the slice sorted; the workloads here are bulk-load-then-read, so the
// O(n) insert cost is irrelevant and the flat layout keeps scans fast.
type orderedIndex struct {
	entries []indexEntry
}

type indexEntry struct {
	val value.Value
	oid OID
}

func newOrderedIndex() *orderedIndex { return &orderedIndex{} }

// less orders entries by value then OID. Values of incomparable kinds fall
// back to kind order so the sort stays total (mixed-kind attributes cannot
// occur through Database.Insert, which type-checks).
func (ix *orderedIndex) less(a, b indexEntry) bool {
	if c, err := a.val.Compare(b.val); err == nil {
		if c != 0 {
			return c < 0
		}
		return a.oid < b.oid
	}
	return a.val.Kind() < b.val.Kind()
}

func (ix *orderedIndex) insert(v value.Value, oid OID) {
	e := indexEntry{val: v, oid: oid}
	i := sort.Search(len(ix.entries), func(i int) bool { return !ix.less(ix.entries[i], e) })
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = e
}

// lowerBound returns the first position whose value is >= v.
func (ix *orderedIndex) lowerBound(v value.Value) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c, err := ix.entries[i].val.Compare(v)
		return err == nil && c >= 0
	})
}

// upperBound returns the first position whose value is > v.
func (ix *orderedIndex) upperBound(v value.Value) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c, err := ix.entries[i].val.Compare(v)
		return err == nil && c > 0
	})
}

func (ix *orderedIndex) lookup(op IndexOp, v value.Value) []OID {
	var lo, hi int
	switch op {
	case IndexEQ:
		lo, hi = ix.lowerBound(v), ix.upperBound(v)
	case IndexLT:
		lo, hi = 0, ix.lowerBound(v)
	case IndexLE:
		lo, hi = 0, ix.upperBound(v)
	case IndexGT:
		lo, hi = ix.upperBound(v), len(ix.entries)
	case IndexGE:
		lo, hi = ix.lowerBound(v), len(ix.entries)
	}
	if lo >= hi {
		return nil
	}
	out := make([]OID, 0, hi-lo)
	for _, e := range ix.entries[lo:hi] {
		out = append(out, e.oid)
	}
	return out
}
