package storage

import (
	"testing"

	"sqo/internal/schema"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("supplier",
			schema.Attribute{Name: "name", Type: value.KindString, Indexed: true},
			schema.Attribute{Name: "rating", Type: value.KindInt, Indexed: true}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt}).
		Class("vehicle",
			schema.Attribute{Name: "desc", Type: value.KindString}).
		Relationship("supplies", "supplier", "cargo", schema.OneToMany).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		MustBuild()
}

func mustInsert(t *testing.T, db *Database, class string, vals map[string]value.Value) OID {
	t.Helper()
	oid, err := db.Insert(class, vals)
	if err != nil {
		t.Fatalf("Insert(%s): %v", class, err)
	}
	return oid
}

func loadSample(t *testing.T, db *Database) (suppliers, cargos []OID) {
	t.Helper()
	names := []string{"SFI", "ACME", "GlobalFoods"}
	for i, n := range names {
		suppliers = append(suppliers, mustInsert(t, db, "supplier", map[string]value.Value{
			"name":   value.String(n),
			"rating": value.Int(int64(i + 1)),
		}))
	}
	descs := []string{"frozen food", "steel", "frozen food", "paper"}
	for i, d := range descs {
		cargos = append(cargos, mustInsert(t, db, "cargo", map[string]value.Value{
			"desc":     value.String(d),
			"quantity": value.Int(int64(10 * (i + 1))),
		}))
	}
	// supplier 0 supplies cargos 0 and 2, supplier 1 supplies 1 and 3.
	links := [][2]OID{{suppliers[0], cargos[0]}, {suppliers[0], cargos[2]},
		{suppliers[1], cargos[1]}, {suppliers[1], cargos[3]}}
	for _, l := range links {
		if err := db.Link("supplies", l[0], l[1]); err != nil {
			t.Fatalf("Link: %v", err)
		}
	}
	return suppliers, cargos
}

func TestInsertAndGet(t *testing.T) {
	db := NewDatabase(testSchema(t))
	oid := mustInsert(t, db, "supplier", map[string]value.Value{
		"name": value.String("SFI"), "rating": value.Int(5),
	})
	var m Meter
	inst, err := db.Get("supplier", oid, &m)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if m.ObjectFetches != 1 {
		t.Errorf("ObjectFetches = %d, want 1", m.ObjectFetches)
	}
	v, err := db.Attr("supplier", inst, "name")
	if err != nil || v.Str() != "SFI" {
		t.Errorf("Attr = %v, %v", v, err)
	}
	if _, err := db.Attr("supplier", inst, "ghost"); err == nil {
		t.Error("Attr(ghost) should fail")
	}
	if _, err := db.Attr("ghost", inst, "name"); err == nil {
		t.Error("Attr on unknown class should fail")
	}
	if db.Count("supplier") != 1 || db.Count("ghost") != 0 {
		t.Error("Count broken")
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDatabase(testSchema(t))
	cases := []struct {
		name  string
		class string
		vals  map[string]value.Value
	}{
		{"unknown class", "ghost", map[string]value.Value{}},
		{"missing attr", "supplier", map[string]value.Value{"name": value.String("x")}},
		{"wrong type", "supplier", map[string]value.Value{
			"name": value.Int(3), "rating": value.Int(1)}},
		{"extra attr", "supplier", map[string]value.Value{
			"name": value.String("x"), "rating": value.Int(1), "ghost": value.Int(2)}},
	}
	for _, c := range cases {
		if _, err := db.Insert(c.class, c.vals); err == nil {
			t.Errorf("%s: Insert should fail", c.name)
		}
	}
	// Numeric kinds interchange.
	if _, err := db.Insert("supplier", map[string]value.Value{
		"name": value.String("x"), "rating": value.Float(2.5)}); err != nil {
		t.Errorf("float into int attribute should be allowed: %v", err)
	}
}

func TestGetErrors(t *testing.T) {
	db := NewDatabase(testSchema(t))
	if _, err := db.Get("ghost", 0, nil); err == nil {
		t.Error("Get on unknown class should fail")
	}
	if _, err := db.Get("supplier", 0, nil); err == nil {
		t.Error("Get out of range should fail")
	}
	if _, err := db.Get("supplier", -1, nil); err == nil {
		t.Error("Get negative OID should fail")
	}
}

func TestScanChargesPages(t *testing.T) {
	db := NewDatabase(testSchema(t))
	// supplier record: 16 + 2*16 = 48 bytes -> 85 per 4096-byte page.
	for i := 0; i < 200; i++ {
		mustInsert(t, db, "supplier", map[string]value.Value{
			"name": value.String("s"), "rating": value.Int(int64(i)),
		})
	}
	var m Meter
	n := 0
	if err := db.Scan("supplier", &m, func(Instance) bool { n++; return true }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 200 {
		t.Errorf("visited %d instances, want 200", n)
	}
	if m.PagesScanned != db.Pages("supplier") {
		t.Errorf("PagesScanned = %d, want %d", m.PagesScanned, db.Pages("supplier"))
	}
	if m.PagesScanned < 2 || m.PagesScanned > 4 {
		t.Errorf("PagesScanned = %d, expected 200/85 -> 3", m.PagesScanned)
	}
	// Early stop reads fewer pages.
	m.Reset()
	count := 0
	_ = db.Scan("supplier", &m, func(Instance) bool { count++; return count < 10 })
	if m.PagesScanned != 1 {
		t.Errorf("early-stop PagesScanned = %d, want 1", m.PagesScanned)
	}
	if err := db.Scan("ghost", nil, func(Instance) bool { return true }); err == nil {
		t.Error("Scan on unknown class should fail")
	}
}

func TestIndexLookup(t *testing.T) {
	db := NewDatabase(testSchema(t))
	loadSample(t, db)
	var m Meter
	oids, err := db.IndexLookup("supplier", "name", IndexEQ, value.String("SFI"), &m)
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(oids) != 1 || oids[0] != 0 {
		t.Errorf("EQ lookup = %v, want [0]", oids)
	}
	if m.IndexProbes != 1 {
		t.Errorf("IndexProbes = %d, want 1", m.IndexProbes)
	}
	// Range lookups on the int index.
	ge, _ := db.IndexLookup("supplier", "rating", IndexGE, value.Int(2), nil)
	if len(ge) != 2 {
		t.Errorf("GE lookup = %v, want two suppliers", ge)
	}
	lt, _ := db.IndexLookup("supplier", "rating", IndexLT, value.Int(2), nil)
	if len(lt) != 1 || lt[0] != 0 {
		t.Errorf("LT lookup = %v, want [0]", lt)
	}
	le, _ := db.IndexLookup("supplier", "rating", IndexLE, value.Int(2), nil)
	if len(le) != 2 {
		t.Errorf("LE lookup = %v", le)
	}
	gt, _ := db.IndexLookup("supplier", "rating", IndexGT, value.Int(2), nil)
	if len(gt) != 1 {
		t.Errorf("GT lookup = %v", gt)
	}
	// Misses.
	none, _ := db.IndexLookup("supplier", "name", IndexEQ, value.String("nope"), nil)
	if len(none) != 0 {
		t.Errorf("miss = %v, want empty", none)
	}
	if _, err := db.IndexLookup("cargo", "desc", IndexEQ, value.String("x"), nil); err == nil {
		t.Error("lookup on unindexed attribute should fail")
	}
	if _, err := db.IndexLookup("ghost", "x", IndexEQ, value.Int(1), nil); err == nil {
		t.Error("lookup on unknown class should fail")
	}
	if !db.HasIndex("supplier", "name") || db.HasIndex("cargo", "desc") || db.HasIndex("ghost", "x") {
		t.Error("HasIndex broken")
	}
}

func TestIndexDuplicateValues(t *testing.T) {
	db := NewDatabase(testSchema(t))
	for i := 0; i < 5; i++ {
		mustInsert(t, db, "supplier", map[string]value.Value{
			"name": value.String("dup"), "rating": value.Int(7),
		})
	}
	oids, err := db.IndexLookup("supplier", "name", IndexEQ, value.String("dup"), nil)
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(oids) != 5 {
		t.Errorf("duplicates = %v, want 5 OIDs", oids)
	}
	// OIDs come back ordered.
	for i := 1; i < len(oids); i++ {
		if oids[i-1] >= oids[i] {
			t.Errorf("OIDs not ordered: %v", oids)
		}
	}
}

func TestLinkAndTraverse(t *testing.T) {
	db := NewDatabase(testSchema(t))
	suppliers, cargos := loadSample(t, db)
	var m Meter
	targets, err := db.Traverse("supplies", "supplier", suppliers[0], &m)
	if err != nil {
		t.Fatalf("Traverse: %v", err)
	}
	if len(targets) != 2 {
		t.Errorf("supplier 0 should supply 2 cargos, got %v", targets)
	}
	if m.LinkTraversals != 1 {
		t.Errorf("LinkTraversals = %d, want 1", m.LinkTraversals)
	}
	back, err := db.Traverse("supplies", "cargo", cargos[0], nil)
	if err != nil || len(back) != 1 || back[0] != suppliers[0] {
		t.Errorf("reverse traverse = %v, %v", back, err)
	}
	if db.LinkCount("supplies") != 4 || db.LinkCount("ghost") != 0 {
		t.Error("LinkCount broken")
	}
	if _, err := db.Traverse("ghost", "supplier", 0, nil); err == nil {
		t.Error("Traverse unknown relationship should fail")
	}
	if _, err := db.Traverse("supplies", "vehicle", 0, nil); err == nil {
		t.Error("Traverse from non-member class should fail")
	}
}

func TestLinkCardinalityEnforcement(t *testing.T) {
	s := schema.NewBuilder().
		Class("a", schema.Attribute{Name: "x", Type: value.KindInt}).
		Class("b", schema.Attribute{Name: "x", Type: value.KindInt}).
		Relationship("oo", "a", "b", schema.OneToOne).
		Relationship("om", "a", "b", schema.OneToMany).
		Relationship("mo", "a", "b", schema.ManyToOne).
		Relationship("mm", "a", "b", schema.ManyToMany).
		MustBuild()
	db := NewDatabase(s)
	var as, bs []OID
	for i := 0; i < 3; i++ {
		ao, _ := db.Insert("a", map[string]value.Value{"x": value.Int(int64(i))})
		bo, _ := db.Insert("b", map[string]value.Value{"x": value.Int(int64(i))})
		as, bs = append(as, ao), append(bs, bo)
	}
	// 1:1 — second link on either side fails.
	if err := db.Link("oo", as[0], bs[0]); err != nil {
		t.Fatalf("1:1 first link: %v", err)
	}
	if err := db.Link("oo", as[0], bs[1]); err == nil {
		t.Error("1:1 source reuse should fail")
	}
	if err := db.Link("oo", as[1], bs[0]); err == nil {
		t.Error("1:1 target reuse should fail")
	}
	// 1:N — a target may have only one source.
	if err := db.Link("om", as[0], bs[0]); err != nil {
		t.Fatalf("1:N: %v", err)
	}
	if err := db.Link("om", as[0], bs[1]); err != nil {
		t.Errorf("1:N source fan-out should be fine: %v", err)
	}
	if err := db.Link("om", as[1], bs[0]); err == nil {
		t.Error("1:N target reuse should fail")
	}
	// N:1 — a source may have only one target.
	if err := db.Link("mo", as[0], bs[0]); err != nil {
		t.Fatalf("N:1: %v", err)
	}
	if err := db.Link("mo", as[1], bs[0]); err != nil {
		t.Errorf("N:1 target fan-in should be fine: %v", err)
	}
	if err := db.Link("mo", as[0], bs[1]); err == nil {
		t.Error("N:1 source reuse should fail")
	}
	// M:N — anything goes.
	for _, a := range as {
		for _, b := range bs {
			if err := db.Link("mm", a, b); err != nil {
				t.Fatalf("M:N link: %v", err)
			}
		}
	}
	// Bad endpoints.
	if err := db.Link("mm", 99, bs[0]); err == nil {
		t.Error("out-of-range source should fail")
	}
	if err := db.Link("ghost", as[0], bs[0]); err == nil {
		t.Error("unknown relationship should fail")
	}
}

func TestCheckTotality(t *testing.T) {
	db := NewDatabase(testSchema(t))
	suppliers, cargos := loadSample(t, db)
	// supplies is declared total on both sides, but supplier 2 and no
	// vehicle-links exist yet: must fail.
	if err := db.CheckTotality(); err == nil {
		t.Error("supplier 2 is unlinked; CheckTotality should fail")
	}
	// Link the remaining supplier; still fails because cargo lacks collects.
	if err := db.Link("supplies", suppliers[2], cargos[0]); err == nil {
		t.Error("cargo 0 already has a supplier under 1:N")
	}
	_ = cargos
}

func TestMeterAddReset(t *testing.T) {
	a := Meter{PagesScanned: 1, ObjectFetches: 2, IndexProbes: 3, LinkTraversals: 4, PredEvals: 5}
	var b Meter
	b.Add(a)
	b.Add(a)
	if b.PagesScanned != 2 || b.PredEvals != 10 || b.LinkTraversals != 8 {
		t.Errorf("Add broken: %+v", b)
	}
	b.Reset()
	if b != (Meter{}) {
		t.Errorf("Reset broken: %+v", b)
	}
}

func TestAttrIndexOf(t *testing.T) {
	db := NewDatabase(testSchema(t))
	i, err := db.AttrIndexOf("supplier", "rating")
	if err != nil || i != 1 {
		t.Errorf("AttrIndexOf = %d, %v", i, err)
	}
	if _, err := db.AttrIndexOf("supplier", "ghost"); err == nil {
		t.Error("unknown attr should fail")
	}
	if _, err := db.AttrIndexOf("ghost", "x"); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestAnalyze(t *testing.T) {
	db := NewDatabase(testSchema(t))
	loadSample(t, db)
	st := db.Analyze()
	cs := st.Classes["cargo"]
	if cs.Card != 4 {
		t.Errorf("cargo card = %d, want 4", cs.Card)
	}
	as := cs.Attrs["desc"]
	if as.Distinct != 3 {
		t.Errorf("cargo.desc distinct = %d, want 3", as.Distinct)
	}
	if as.HasRange {
		t.Error("string attribute should not report a numeric range")
	}
	qs := cs.Attrs["quantity"]
	if !qs.HasRange || !qs.Min.Equal(value.Int(10)) || !qs.Max.Equal(value.Int(40)) {
		t.Errorf("quantity stats = %+v", qs)
	}
	rs := st.Rels["supplies"]
	if rs.Links != 4 {
		t.Errorf("supplies links = %d, want 4", rs.Links)
	}
	// 3 suppliers share 4 links; 4 cargos share 4 links.
	if rs.Fanout["supplier"] != 4.0/3.0 || rs.Fanout["cargo"] != 1.0 {
		t.Errorf("fanout = %+v", rs.Fanout)
	}
	// Empty class has zero stats but exists.
	vs := st.Classes["vehicle"]
	if vs.Card != 0 || vs.Pages != 0 {
		t.Errorf("vehicle stats = %+v", vs)
	}
}

func TestPagesSmallClass(t *testing.T) {
	db := NewDatabase(testSchema(t))
	if db.Pages("supplier") != 0 {
		t.Error("empty extent occupies no pages")
	}
	mustInsert(t, db, "supplier", map[string]value.Value{
		"name": value.String("x"), "rating": value.Int(1),
	})
	if db.Pages("supplier") != 1 {
		t.Error("one instance occupies one page")
	}
	if db.Pages("ghost") != 0 {
		t.Error("unknown class occupies no pages")
	}
}
