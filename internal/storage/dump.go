package storage

import (
	"bytes"
	"encoding/json"
	"fmt"

	"sqo/internal/schema"
	"sqo/internal/value"
)

// This file implements a portable JSON dump format for databases, so
// generated instances can be saved, inspected and reloaded:
//
//	{
//	  "schema":    "<schema text format>",
//	  "instances": {"supplier": [["SFI", "1 Harbour Rd", 5], ...], ...},
//	  "links":     {"supplies": [[0, 0], [0, 2]], ...}
//	}
//
// Instance rows list attribute values in effective-attribute order; the
// schema's declared types drive decoding (JSON numbers alone cannot
// distinguish int from float). Deleted instances are compacted away on dump,
// with link endpoints remapped.

type dumpFile struct {
	Schema    string                         `json:"schema"`
	Instances map[string][][]json.RawMessage `json:"instances"`
	Links     map[string][][2]int            `json:"links"`
}

// Dump serializes the database. Tombstoned instances are omitted and OIDs
// compacted; the loaded copy is equivalent but not OID-identical after
// deletions.
func Dump(db *Database) ([]byte, error) {
	out := dumpFile{
		Schema:    schema.Render(db.sch),
		Instances: map[string][][]json.RawMessage{},
		Links:     map[string][][2]int{},
	}
	// Compacting remap per class: old OID -> new position.
	remap := map[string]map[OID]int{}
	for _, class := range db.sch.Classes() {
		cs := db.classes[class]
		m := make(map[OID]int, cs.live)
		rows := make([][]json.RawMessage, 0, cs.live)
		for i, inst := range cs.instances {
			if cs.dead[i] {
				continue
			}
			row := make([]json.RawMessage, len(inst.Values))
			for j, v := range inst.Values {
				enc, err := encodeValue(v)
				if err != nil {
					return nil, fmt.Errorf("storage: dump %s: %w", class, err)
				}
				row[j] = enc
			}
			m[inst.OID] = len(rows)
			rows = append(rows, row)
		}
		remap[class] = m
		out.Instances[class] = rows
	}
	for _, rel := range db.sch.Relationships() {
		ls := db.links[rel]
		pairs := make([][2]int, 0, ls.count)
		srcMap, dstMap := remap[ls.rel.Source], remap[ls.rel.Target]
		// Forward map iteration is nondeterministic; emit in source-OID
		// order for reproducible dumps.
		for src := OID(0); int(src) < len(db.classes[ls.rel.Source].instances); src++ {
			for _, dst := range ls.forward[src] {
				pairs = append(pairs, [2]int{srcMap[src], dstMap[dst]})
			}
		}
		out.Links[rel] = pairs
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load rebuilds a database from a Dump.
func Load(data []byte) (*Database, error) {
	var in dumpFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	sch, err := schema.Parse(in.Schema)
	if err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	db := NewDatabase(sch)
	for _, class := range sch.Classes() {
		attrs := sch.EffectiveAttributes(class)
		for rowIdx, row := range in.Instances[class] {
			if len(row) != len(attrs) {
				return nil, fmt.Errorf("storage: load %s[%d]: %d values for %d attributes",
					class, rowIdx, len(row), len(attrs))
			}
			vals := make(map[string]value.Value, len(attrs))
			for j, a := range attrs {
				v, err := decodeValue(row[j], a.Type)
				if err != nil {
					return nil, fmt.Errorf("storage: load %s[%d].%s: %w", class, rowIdx, a.Name, err)
				}
				vals[a.Name] = v
			}
			if _, err := db.Insert(class, vals); err != nil {
				return nil, fmt.Errorf("storage: load: %w", err)
			}
		}
	}
	for _, rel := range sch.Relationships() {
		for i, pair := range in.Links[rel] {
			if err := db.Link(rel, OID(pair[0]), OID(pair[1])); err != nil {
				return nil, fmt.Errorf("storage: load link %s[%d]: %w", rel, i, err)
			}
		}
	}
	return db, nil
}

func encodeValue(v value.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case value.KindString:
		return json.Marshal(v.Str())
	case value.KindInt:
		return json.Marshal(v.IntVal())
	case value.KindFloat:
		return json.Marshal(v.FloatVal())
	case value.KindBool:
		return json.Marshal(v.BoolVal())
	default:
		return nil, fmt.Errorf("invalid value")
	}
}

func decodeValue(raw json.RawMessage, kind value.Kind) (value.Value, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var any interface{}
	if err := dec.Decode(&any); err != nil {
		return value.Value{}, err
	}
	switch kind {
	case value.KindString:
		s, ok := any.(string)
		if !ok {
			return value.Value{}, fmt.Errorf("want string, got %T", any)
		}
		return value.String(s), nil
	case value.KindInt:
		n, ok := any.(json.Number)
		if !ok {
			return value.Value{}, fmt.Errorf("want number, got %T", any)
		}
		i, err := n.Int64()
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case value.KindFloat:
		n, ok := any.(json.Number)
		if !ok {
			return value.Value{}, fmt.Errorf("want number, got %T", any)
		}
		f, err := n.Float64()
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	case value.KindBool:
		b, ok := any.(bool)
		if !ok {
			return value.Value{}, fmt.Errorf("want bool, got %T", any)
		}
		return value.Bool(b), nil
	default:
		return value.Value{}, fmt.Errorf("invalid kind")
	}
}
