package storage

import (
	"testing"

	"sqo/internal/value"
)

func TestUpdateValueAndIndex(t *testing.T) {
	db := NewDatabase(testSchema(t))
	loadSample(t, db)
	// supplier 0 is "SFI" with rating 1; bump the rating.
	if err := db.Update("supplier", 0, "rating", value.Int(5)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	inst, err := db.Get("supplier", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := db.Attr("supplier", inst, "rating")
	if v != value.Int(5) {
		t.Errorf("rating = %v, want 5", v)
	}
	// The index reflects the change: old value gone, new value found.
	atOld, _ := db.IndexLookup("supplier", "rating", IndexEQ, value.Int(1), nil)
	for _, oid := range atOld {
		if oid == 0 {
			t.Error("old index entry not removed")
		}
	}
	atNew, _ := db.IndexLookup("supplier", "rating", IndexEQ, value.Int(5), nil)
	found := false
	for _, oid := range atNew {
		if oid == 0 {
			found = true
		}
	}
	if !found {
		t.Error("new index entry missing")
	}
}

func TestUpdateValidation(t *testing.T) {
	db := NewDatabase(testSchema(t))
	loadSample(t, db)
	cases := []struct {
		name        string
		class, attr string
		oid         OID
		v           value.Value
	}{
		{"unknown class", "ghost", "rating", 0, value.Int(1)},
		{"unknown attr", "supplier", "ghost", 0, value.Int(1)},
		{"bad oid", "supplier", "rating", 99, value.Int(1)},
		{"type mismatch", "supplier", "rating", 0, value.String("five")},
	}
	for _, c := range cases {
		if err := db.Update(c.class, c.oid, c.attr, c.v); err == nil {
			t.Errorf("%s: Update should fail", c.name)
		}
	}
	// Cross-numeric updates are fine.
	if err := db.Update("cargo", 0, "quantity", value.Float(12.5)); err != nil {
		t.Errorf("float into int attr: %v", err)
	}
}

func TestDeleteRemovesInstance(t *testing.T) {
	db := NewDatabase(testSchema(t))
	suppliers, cargos := loadSample(t, db)
	before := db.Count("cargo")
	if err := db.Delete("cargo", cargos[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if db.Count("cargo") != before-1 {
		t.Errorf("Count = %d, want %d", db.Count("cargo"), before-1)
	}
	// Gone from Get and Scan; other OIDs stable.
	if _, err := db.Get("cargo", cargos[0], nil); err == nil {
		t.Error("Get of deleted instance should fail")
	}
	seen := 0
	_ = db.Scan("cargo", nil, func(inst Instance) bool {
		if inst.OID == cargos[0] {
			t.Error("deleted instance visible in scan")
		}
		seen++
		return true
	})
	if seen != before-1 {
		t.Errorf("scan saw %d, want %d", seen, before-1)
	}
	// Links severed on both sides.
	back, err := db.Traverse("supplies", "supplier", suppliers[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, oid := range back {
		if oid == cargos[0] {
			t.Error("link to deleted cargo survives")
		}
	}
	// Double delete and link-to-deleted fail.
	if err := db.Delete("cargo", cargos[0]); err == nil {
		t.Error("double delete should fail")
	}
	if err := db.Link("supplies", suppliers[0], cargos[0]); err == nil {
		t.Error("linking a deleted instance should fail")
	}
}

func TestDeleteUpdatesIndexAndStats(t *testing.T) {
	db := NewDatabase(testSchema(t))
	suppliers, _ := loadSample(t, db)
	if err := db.Delete("supplier", suppliers[0]); err != nil { // "SFI"
		t.Fatal(err)
	}
	hits, _ := db.IndexLookup("supplier", "name", IndexEQ, value.String("SFI"), nil)
	if len(hits) != 0 {
		t.Errorf("index still finds deleted supplier: %v", hits)
	}
	st := db.Analyze()
	if st.Classes["supplier"].Card != 2 {
		t.Errorf("Analyze card = %d, want 2", st.Classes["supplier"].Card)
	}
	if st.Classes["supplier"].Attrs["name"].Distinct != 2 {
		t.Errorf("distinct = %d, want 2", st.Classes["supplier"].Attrs["name"].Distinct)
	}
}

func TestUpdateDeletedInstanceFails(t *testing.T) {
	db := NewDatabase(testSchema(t))
	_, cargos := loadSample(t, db)
	if err := db.Delete("cargo", cargos[1]); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("cargo", cargos[1], "quantity", value.Int(1)); err == nil {
		t.Error("updating a deleted instance should fail")
	}
}
