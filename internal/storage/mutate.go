package storage

import (
	"fmt"

	"sqo/internal/value"
)

// This file implements the mutation side of the store: attribute updates and
// instance deletion, both maintaining secondary indexes and link stores.
// The paper's evaluation is read-only, but state-dependent rules (the
// Siegel extension in internal/derive) only make sense against a database
// that can change — a rule derived before an Update may no longer hold
// afterwards, which is exactly what CheckConstraint then reports.

// Update overwrites one attribute of an existing instance, keeping any
// secondary index on that attribute in sync. The new value must match the
// declared type (numeric kinds interchange).
func (db *Database) Update(class string, oid OID, attr string, v value.Value) error {
	cs := db.classes[class]
	if cs == nil {
		return fmt.Errorf("storage: unknown class %q", class)
	}
	if err := db.checkOID(class, oid); err != nil {
		return err
	}
	i, ok := cs.attrIdx[attr]
	if !ok {
		return fmt.Errorf("storage: %s: unknown attribute %q", class, attr)
	}
	decl := cs.attrs[i]
	if v.Kind() != decl.Type && !(v.Kind().Numeric() && decl.Type.Numeric()) {
		return fmt.Errorf("storage: %s.%s: want %s, got %s", class, attr, decl.Type, v.Kind())
	}
	old := cs.instances[oid].Values[i]
	if idx := cs.indexes[attr]; idx != nil {
		idx.remove(old, oid)
		idx.insert(v, oid)
	}
	cs.instances[oid].Values[i] = v
	return nil
}

// Delete removes an instance: its index entries go away, every relationship
// link touching it is severed, and the OID becomes invalid. Remaining OIDs
// are stable (the slot is tombstoned, not compacted).
func (db *Database) Delete(class string, oid OID) error {
	cs := db.classes[class]
	if cs == nil {
		return fmt.Errorf("storage: unknown class %q", class)
	}
	if err := db.checkOID(class, oid); err != nil {
		return err // includes already-deleted OIDs
	}
	for name, idx := range cs.indexes {
		idx.remove(cs.instances[oid].Values[cs.attrIdx[name]], oid)
	}
	cs.dead[oid] = true
	cs.live--
	for _, ls := range db.links {
		if ls.rel.Source == class {
			for _, dst := range ls.forward[oid] {
				ls.reverse[dst] = withoutOID(ls.reverse[dst], oid)
				ls.count--
			}
			delete(ls.forward, oid)
		}
		if ls.rel.Target == class {
			for _, src := range ls.reverse[oid] {
				ls.forward[src] = withoutOID(ls.forward[src], oid)
				ls.count--
			}
			delete(ls.reverse, oid)
		}
	}
	return nil
}

func withoutOID(list []OID, oid OID) []OID {
	out := list[:0]
	for _, o := range list {
		if o != oid {
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// remove deletes one (value, oid) entry from the ordered index; missing
// entries are ignored (callers guarantee consistency).
func (ix *orderedIndex) remove(v value.Value, oid OID) {
	lo := ix.lowerBound(v)
	for i := lo; i < len(ix.entries); i++ {
		e := ix.entries[i]
		if !e.val.Equal(v) {
			return
		}
		if e.oid == oid {
			ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
			return
		}
	}
}
