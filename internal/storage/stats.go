package storage

import (
	"sqo/internal/value"
)

// AttrStats summarizes one attribute's value distribution.
type AttrStats struct {
	Distinct int
	Min, Max value.Value
	HasRange bool // Min/Max populated (numeric or orderable attribute)
}

// ClassStats summarizes one class extent.
type ClassStats struct {
	Card  int
	Pages int64
	Attrs map[string]AttrStats
}

// RelStats summarizes one relationship's link distribution.
type RelStats struct {
	Links int
	// Fanout maps each end class to the average number of linked
	// instances on the *other* side per instance of that class.
	Fanout map[string]float64
}

// Stats is the database statistics snapshot used by the cost model — the
// moral equivalent of the system catalog a conventional optimizer reads.
type Stats struct {
	Classes map[string]ClassStats
	Rels    map[string]RelStats
}

// Analyze computes a statistics snapshot of the current database contents.
// Run it after bulk loading, the way one runs ANALYZE.
func (db *Database) Analyze() *Stats {
	st := &Stats{Classes: map[string]ClassStats{}, Rels: map[string]RelStats{}}
	for name, cs := range db.classes {
		cstat := ClassStats{Card: cs.live, Pages: cs.pages(), Attrs: map[string]AttrStats{}}
		for i, a := range cs.attrs {
			distinct := map[value.Value]bool{}
			var min, max value.Value
			for j, inst := range cs.instances {
				if cs.dead[j] {
					continue
				}
				v := inst.Values[i]
				distinct[v] = true
				if !min.Valid() || v.Less(min) {
					min = v
				}
				if !max.Valid() || max.Less(v) {
					max = v
				}
			}
			cstat.Attrs[a.Name] = AttrStats{
				Distinct: len(distinct),
				Min:      min,
				Max:      max,
				HasRange: min.Valid() && max.Valid() && min.Kind().Numeric(),
			}
		}
		st.Classes[name] = cstat
	}
	for name, ls := range db.links {
		srcCard := db.classes[ls.rel.Source].live
		dstCard := db.classes[ls.rel.Target].live
		fan := map[string]float64{}
		if srcCard > 0 {
			fan[ls.rel.Source] = float64(ls.count) / float64(srcCard)
		}
		if dstCard > 0 {
			fan[ls.rel.Target] = float64(ls.count) / float64(dstCard)
		}
		st.Rels[name] = RelStats{Links: ls.count, Fanout: fan}
	}
	return st
}
