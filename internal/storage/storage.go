// Package storage implements the object-oriented database substrate the
// optimizer is evaluated against: per-class extents of typed instances,
// secondary indexes on attributes marked Indexed in the schema, and
// relationship link stores (the OODB pointer attributes of Figure 2.1).
//
// Physical I/O is simulated deterministically: instances live in fixed-size
// pages, sequential scans cost page reads, index probes and pointer
// traversals cost object fetches. Read paths take a *Meter that accumulates
// these events; the cost model and the experiment harness convert them into
// cost units. This replaces the paper's unnamed relational DBMS on a
// SUN-3/160 (DESIGN.md deviation #5) with something reproducible.
package storage

import (
	"fmt"

	"sqo/internal/schema"
	"sqo/internal/value"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// attrWidth is the simulated storage width of one attribute value.
const attrWidth = 16

// recordOverhead is the simulated per-instance overhead (OID, header).
const recordOverhead = 16

// OID identifies an instance within its class extent (dense, 0-based).
type OID int

// Meter accumulates simulated physical events. Methods on Database accept a
// *Meter; passing nil disables accounting. The zero Meter is ready to use.
type Meter struct {
	PagesScanned   int64 // sequential page reads (extent scans)
	ObjectFetches  int64 // random instance fetches (pointer/index targets)
	IndexProbes    int64 // index lookups
	LinkTraversals int64 // link-store lookups (pointer dereferences)
	PredEvals      int64 // predicate evaluations (CPU)
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

// Add accumulates another meter into m.
func (m *Meter) Add(o Meter) {
	m.PagesScanned += o.PagesScanned
	m.ObjectFetches += o.ObjectFetches
	m.IndexProbes += o.IndexProbes
	m.LinkTraversals += o.LinkTraversals
	m.PredEvals += o.PredEvals
}

// Instance is one stored object: its OID plus attribute values aligned with
// the class's effective attributes.
type Instance struct {
	OID    OID
	Values []value.Value
}

// classStore is the extent of one class.
type classStore struct {
	name      string
	attrs     []schema.Attribute
	attrIdx   map[string]int
	instances []Instance
	dead      []bool // tombstones left by Delete; OIDs stay stable
	live      int
	indexes   map[string]*orderedIndex
	perPage   int
}

func newClassStore(name string, attrs []schema.Attribute) *classStore {
	cs := &classStore{
		name:    name,
		attrs:   attrs,
		attrIdx: map[string]int{},
		indexes: map[string]*orderedIndex{},
	}
	for i, a := range attrs {
		cs.attrIdx[a.Name] = i
		if a.Indexed {
			cs.indexes[a.Name] = newOrderedIndex()
		}
	}
	width := recordOverhead + attrWidth*len(attrs)
	cs.perPage = PageSize / width
	if cs.perPage < 1 {
		cs.perPage = 1
	}
	return cs
}

func (cs *classStore) pages() int64 {
	n := len(cs.instances)
	if n == 0 {
		return 0
	}
	return int64((n + cs.perPage - 1) / cs.perPage)
}

// linkStore holds the instance pairs of one relationship with indexes in
// both directions.
type linkStore struct {
	rel     schema.Relationship
	forward map[OID][]OID // source -> targets
	reverse map[OID][]OID // target -> sources
	count   int
}

func newLinkStore(rel schema.Relationship) *linkStore {
	return &linkStore{rel: rel, forward: map[OID][]OID{}, reverse: map[OID][]OID{}}
}

// Database is an in-memory OODB instance for a fixed schema.
// It is not safe for concurrent mutation; concurrent reads are fine.
type Database struct {
	sch     *schema.Schema
	classes map[string]*classStore
	links   map[string]*linkStore
}

// NewDatabase creates an empty database for the schema.
func NewDatabase(s *schema.Schema) *Database {
	db := &Database{
		sch:     s,
		classes: map[string]*classStore{},
		links:   map[string]*linkStore{},
	}
	for _, name := range s.Classes() {
		db.classes[name] = newClassStore(name, s.EffectiveAttributes(name))
	}
	for _, name := range s.Relationships() {
		db.links[name] = newLinkStore(*s.Relationship(name))
	}
	return db
}

// Schema returns the database schema.
func (db *Database) Schema() *schema.Schema { return db.sch }

// Insert stores a new instance of the class. Every effective attribute must
// be present in vals with the declared type (numeric kinds interchange).
// It returns the new instance's OID.
func (db *Database) Insert(class string, vals map[string]value.Value) (OID, error) {
	cs := db.classes[class]
	if cs == nil {
		return 0, fmt.Errorf("storage: unknown class %q", class)
	}
	row := make([]value.Value, len(cs.attrs))
	for i, a := range cs.attrs {
		v, ok := vals[a.Name]
		if !ok {
			return 0, fmt.Errorf("storage: %s: missing attribute %q", class, a.Name)
		}
		if v.Kind() != a.Type && !(v.Kind().Numeric() && a.Type.Numeric()) {
			return 0, fmt.Errorf("storage: %s.%s: want %s, got %s", class, a.Name, a.Type, v.Kind())
		}
		row[i] = v
	}
	if len(vals) != len(cs.attrs) {
		for name := range vals {
			if _, ok := cs.attrIdx[name]; !ok {
				return 0, fmt.Errorf("storage: %s: unknown attribute %q", class, name)
			}
		}
	}
	oid := OID(len(cs.instances))
	cs.instances = append(cs.instances, Instance{OID: oid, Values: row})
	cs.dead = append(cs.dead, false)
	cs.live++
	for name, idx := range cs.indexes {
		idx.insert(row[cs.attrIdx[name]], oid)
	}
	return oid, nil
}

// Count returns the live cardinality of the class extent (0 for unknown
// classes); deleted instances do not count.
func (db *Database) Count(class string) int {
	if cs := db.classes[class]; cs != nil {
		return cs.live
	}
	return 0
}

// Pages returns the number of simulated pages the class extent occupies.
func (db *Database) Pages(class string) int64 {
	if cs := db.classes[class]; cs != nil {
		return cs.pages()
	}
	return 0
}

// Get fetches one instance by OID, charging an object fetch.
func (db *Database) Get(class string, oid OID, m *Meter) (Instance, error) {
	cs := db.classes[class]
	if cs == nil {
		return Instance{}, fmt.Errorf("storage: unknown class %q", class)
	}
	if oid < 0 || int(oid) >= len(cs.instances) {
		return Instance{}, fmt.Errorf("storage: %s: OID %d out of range", class, oid)
	}
	if cs.dead[oid] {
		return Instance{}, fmt.Errorf("storage: %s: OID %d is deleted", class, oid)
	}
	if m != nil {
		m.ObjectFetches++
	}
	return cs.instances[oid], nil
}

// Attr returns the value of an attribute of an already-fetched instance.
// No I/O is charged — the instance is in memory.
func (db *Database) Attr(class string, inst Instance, attr string) (value.Value, error) {
	cs := db.classes[class]
	if cs == nil {
		return value.Value{}, fmt.Errorf("storage: unknown class %q", class)
	}
	i, ok := cs.attrIdx[attr]
	if !ok {
		return value.Value{}, fmt.Errorf("storage: %s: unknown attribute %q", class, attr)
	}
	return inst.Values[i], nil
}

// AttrIndexOf resolves an attribute name to its position in Instance.Values,
// so hot paths can avoid the name lookup per instance.
func (db *Database) AttrIndexOf(class, attr string) (int, error) {
	cs := db.classes[class]
	if cs == nil {
		return 0, fmt.Errorf("storage: unknown class %q", class)
	}
	i, ok := cs.attrIdx[attr]
	if !ok {
		return 0, fmt.Errorf("storage: %s: unknown attribute %q", class, attr)
	}
	return i, nil
}

// Scan iterates the whole class extent in OID order, charging sequential
// page reads. The callback may return false to stop early (pages already
// read stay charged; remaining pages are not).
func (db *Database) Scan(class string, m *Meter, fn func(Instance) bool) error {
	cs := db.classes[class]
	if cs == nil {
		return fmt.Errorf("storage: unknown class %q", class)
	}
	for i, inst := range cs.instances {
		if m != nil && i%cs.perPage == 0 {
			m.PagesScanned++
		}
		if cs.dead[i] {
			continue
		}
		if !fn(inst) {
			return nil
		}
	}
	return nil
}

// HasIndex reports whether the class attribute carries a secondary index.
func (db *Database) HasIndex(class, attr string) bool {
	cs := db.classes[class]
	return cs != nil && cs.indexes[attr] != nil
}

// IndexLookup returns the OIDs whose attribute satisfies ⟨op, v⟩ using the
// secondary index, charging one index probe. The OIDs are returned in index
// order; fetching the instances is the caller's business (and cost).
func (db *Database) IndexLookup(class, attr string, op IndexOp, v value.Value, m *Meter) ([]OID, error) {
	cs := db.classes[class]
	if cs == nil {
		return nil, fmt.Errorf("storage: unknown class %q", class)
	}
	idx := cs.indexes[attr]
	if idx == nil {
		return nil, fmt.Errorf("storage: no index on %s.%s", class, attr)
	}
	if m != nil {
		m.IndexProbes++
	}
	return idx.lookup(op, v), nil
}

// Link records a relationship instance between a source and target OID,
// enforcing the declared cardinality.
func (db *Database) Link(rel string, src, dst OID) error {
	ls := db.links[rel]
	if ls == nil {
		return fmt.Errorf("storage: unknown relationship %q", rel)
	}
	if err := db.checkOID(ls.rel.Source, src); err != nil {
		return err
	}
	if err := db.checkOID(ls.rel.Target, dst); err != nil {
		return err
	}
	switch ls.rel.Card {
	case schema.OneToOne:
		if len(ls.forward[src]) > 0 || len(ls.reverse[dst]) > 0 {
			return fmt.Errorf("storage: %s is 1:1; %d or %d already linked", rel, src, dst)
		}
	case schema.OneToMany:
		if len(ls.reverse[dst]) > 0 {
			return fmt.Errorf("storage: %s is 1:N; target %d already has a source", rel, dst)
		}
	case schema.ManyToOne:
		if len(ls.forward[src]) > 0 {
			return fmt.Errorf("storage: %s is N:1; source %d already has a target", rel, src)
		}
	}
	ls.forward[src] = append(ls.forward[src], dst)
	ls.reverse[dst] = append(ls.reverse[dst], src)
	ls.count++
	return nil
}

func (db *Database) checkOID(class string, oid OID) error {
	cs := db.classes[class]
	if cs == nil {
		return fmt.Errorf("storage: unknown class %q", class)
	}
	if oid < 0 || int(oid) >= len(cs.instances) {
		return fmt.Errorf("storage: %s: OID %d out of range", class, oid)
	}
	if cs.dead[oid] {
		return fmt.Errorf("storage: %s: OID %d is deleted", class, oid)
	}
	return nil
}

// LinkCount returns the number of instance pairs in the relationship.
func (db *Database) LinkCount(rel string) int {
	if ls := db.links[rel]; ls != nil {
		return ls.count
	}
	return 0
}

// Traverse follows the relationship from the given instance of class `from`,
// returning the linked OIDs on the other side and charging one link
// traversal (the OODB pointer dereference). The returned slice must not be
// mutated.
func (db *Database) Traverse(rel string, from string, oid OID, m *Meter) ([]OID, error) {
	ls := db.links[rel]
	if ls == nil {
		return nil, fmt.Errorf("storage: unknown relationship %q", rel)
	}
	if m != nil {
		m.LinkTraversals++
	}
	switch from {
	case ls.rel.Source:
		return ls.forward[oid], nil
	case ls.rel.Target:
		return ls.reverse[oid], nil
	default:
		return nil, fmt.Errorf("storage: class %q is not an end of relationship %q", from, rel)
	}
}

// CheckTotality verifies that the declared participation flags of every
// relationship hold in the stored data; the data generator's tests use it,
// and class elimination is only sound when it passes.
func (db *Database) CheckTotality() error {
	for name, ls := range db.links {
		if ls.rel.SourceTotal {
			for oid := range db.classes[ls.rel.Source].instances {
				if db.classes[ls.rel.Source].dead[oid] {
					continue
				}
				if len(ls.forward[OID(oid)]) == 0 {
					return fmt.Errorf("storage: %s declared total on source but %s[%d] unlinked", name, ls.rel.Source, oid)
				}
			}
		}
		if ls.rel.TargetTotal {
			for oid := range db.classes[ls.rel.Target].instances {
				if db.classes[ls.rel.Target].dead[oid] {
					continue
				}
				if len(ls.reverse[OID(oid)]) == 0 {
					return fmt.Errorf("storage: %s declared total on target but %s[%d] unlinked", name, ls.rel.Target, oid)
				}
			}
		}
	}
	return nil
}
