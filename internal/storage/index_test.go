package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"sqo/internal/schema"
	"sqo/internal/value"
)

// indexWorld is a randomly filled single-attribute extent used to compare
// index lookups against linear scans.
type indexWorld struct {
	vals []int64
}

// Generate implements quick.Generator.
func (indexWorld) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(60) + 1
	w := indexWorld{vals: make([]int64, n)}
	for i := range w.vals {
		w.vals[i] = int64(r.Intn(21) - 10) // duplicates likely
	}
	return reflect.ValueOf(w)
}

func buildIndexed(t *testing.T, vals []int64) *Database {
	t.Helper()
	s := schema.NewBuilder().
		Class("c", schema.Attribute{Name: "v", Type: value.KindInt, Indexed: true}).
		MustBuild()
	db := NewDatabase(s)
	for _, v := range vals {
		if _, err := db.Insert("c", map[string]value.Value{"v": value.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// linearLookup is the oracle: scan and filter.
func linearLookup(vals []int64, op IndexOp, probe int64) []OID {
	var out []OID
	for i, v := range vals {
		keep := false
		switch op {
		case IndexEQ:
			keep = v == probe
		case IndexLT:
			keep = v < probe
		case IndexLE:
			keep = v <= probe
		case IndexGT:
			keep = v > probe
		case IndexGE:
			keep = v >= probe
		}
		if keep {
			out = append(out, OID(i))
		}
	}
	return out
}

// TestQuickIndexMatchesScan: for random extents, probes and operators, the
// ordered index returns exactly what a scan-and-filter returns.
func TestQuickIndexMatchesScan(t *testing.T) {
	f := func(w indexWorld, probeRaw int8, opRaw uint8) bool {
		db := buildIndexed(t, w.vals)
		probe := int64(probeRaw % 12)
		op := IndexOp(opRaw % 5)
		got, err := db.IndexLookup("c", "v", op, value.Int(probe), nil)
		if err != nil {
			return false
		}
		want := linearLookup(w.vals, op, probe)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickIndexOrdering: index results come back ordered by value, then OID.
func TestQuickIndexOrdering(t *testing.T) {
	f := func(w indexWorld) bool {
		db := buildIndexed(t, w.vals)
		got, err := db.IndexLookup("c", "v", IndexGE, value.Int(-100), nil)
		if err != nil || len(got) != len(w.vals) {
			return false
		}
		for i := 1; i < len(got); i++ {
			a, b := w.vals[got[i-1]], w.vals[got[i]]
			if a > b {
				return false
			}
			if a == b && got[i-1] >= got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIndexEmptyExtent(t *testing.T) {
	db := buildIndexed(t, nil)
	got, err := db.IndexLookup("c", "v", IndexEQ, value.Int(0), nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty extent lookup = %v, %v", got, err)
	}
}

func TestIndexStringValues(t *testing.T) {
	s := schema.NewBuilder().
		Class("c", schema.Attribute{Name: "v", Type: value.KindString, Indexed: true}).
		MustBuild()
	db := NewDatabase(s)
	for _, v := range []string{"pear", "apple", "fig", "apple"} {
		if _, err := db.Insert("c", map[string]value.Value{"v": value.String(v)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.IndexLookup("c", "v", IndexLT, value.String("fig"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // the two apples
		t.Errorf("LT fig = %v, want the two apples", got)
	}
	ge, _ := db.IndexLookup("c", "v", IndexGE, value.String("pear"), nil)
	if len(ge) != 1 || ge[0] != 0 {
		t.Errorf("GE pear = %v", ge)
	}
}
