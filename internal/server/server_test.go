package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sqo"
)

const testQueryText = `(SELECT {cargo.desc} {} {vehicle.desc = "refrigerated truck"} {collects} {vehicle, cargo})`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = testEngine(t, sqo.WithResultCache(64))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestServerRequiresEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without engine did not error")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	for _, batching := range []bool{false, true} {
		name := "direct"
		if batching {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{}
			if batching {
				cfg.BatchWindow = 2 * time.Millisecond
				cfg.BatchLimit = 8
			}
			_, ts := newTestServer(t, cfg)

			resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
			}
			var out OptimizeResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatal(err)
			}
			if _, err := sqo.ParseQuery(out.Optimized); err != nil {
				t.Fatalf("optimized query does not parse back: %v (%q)", err, out.Optimized)
			}
			// The constraint introduces the indexed cargo.desc predicate.
			if !strings.Contains(out.Optimized, "frozen food") {
				t.Fatalf("expected introduced predicate in %q", out.Optimized)
			}
		})
	}
}

func TestOptimizeParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: "(SELECT oops"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOptimizeInvalidQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := `(SELECT {warehouse.site} {} {} {} {warehouse})`
	resp, _ := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: q})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
}

func TestOptimizeRejectsUnknownFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/optimize", map[string]any{"query": testQueryText, "qeury": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOptimizeMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{Queries: []string{testQueryText, testQueryText, testQueryText}}
	resp, raw := postJSON(t, ts.URL+"/optimize/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := postJSON(t, ts.URL+"/optimize/batch", BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp.StatusCode)
	}
	req := BatchRequest{Queries: []string{testQueryText, "(bad"}}
	if resp, _ := postJSON(t, ts.URL+"/optimize/batch", req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed member status = %d, want 400", resp.StatusCode)
	}
}

func TestCatalogSwapEndpoint(t *testing.T) {
	eng := testEngine(t, sqo.WithResultCache(64))
	_, ts := newTestServer(t, Config{Engine: eng})

	// Re-render the active catalog and swap it back in: a no-op in
	// content, but a real epoch bump.
	var lines []string
	for _, c := range eng.Catalog().All() {
		lines = append(lines, c.String())
	}
	resp, raw := postJSON(t, ts.URL+"/catalog/swap", SwapRequest{Catalog: strings.Join(lines, "\n")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var out SwapResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 1 || out.Constraints == 0 {
		t.Fatalf("swap response = %+v, want epoch 1", out)
	}

	if resp, _ := postJSON(t, ts.URL+"/catalog/swap", SwapRequest{Catalog: "not a constraint"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad catalog status = %d, want 400", resp.StatusCode)
	}
	// A catalog that parses but does not fit the schema is rejected with
	// 422 and the old generation keeps serving.
	bad := `c9: depot.zone = "north" -> depot.kind = "hub"`
	if resp, _ := postJSON(t, ts.URL+"/catalog/swap", SwapRequest{Catalog: bad}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("misfit catalog status = %d, want 422", resp.StatusCode)
	}
	if got := eng.Stats().Epoch; got != 1 {
		t.Fatalf("epoch after failed swap = %d, want 1", got)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: time.Millisecond, BatchLimit: 4})
	for i := 0; i < 3; i++ {
		if resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText}); resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize status = %d, body %s", resp.StatusCode, raw)
		}
	}
	postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: "(bad"})

	resp, raw := postJSON(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status = %d, want 405", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var out StatsResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	ep := out.Endpoints["/optimize"]
	if ep.Requests != 4 || ep.Errors != 1 {
		t.Fatalf("/optimize stats = %+v, want 4 requests / 1 error", ep)
	}
	if ep.Count != 4 || ep.MaxUS < ep.P50US {
		t.Fatalf("latency snapshot inconsistent: %+v", ep)
	}
	if !out.Batching || out.Batcher == nil {
		t.Fatalf("batcher stats missing: %+v", out)
	}
	if out.Engine.Optimizations == 0 {
		t.Fatalf("engine stats missing optimizations: %+v", out.Engine)
	}
}

// TestGracefulDrain exercises the documented shutdown order under load:
// http.Server.Shutdown drains in-flight requests (all of which must
// complete 200), then Server.Close flushes the batcher.
func TestGracefulDrain(t *testing.T) {
	// A wide collection window parks every handler inside the batcher, so
	// the whole fleet is verifiably in flight when the drain starts.
	s, err := New(Config{
		Engine:      testEngine(t, sqo.WithResultCache(64)),
		BatchWindow: 100 * time.Millisecond,
		BatchLimit:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Start()

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(OptimizeRequest{Query: testQueryText})
			resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}

	// Begin the drain only once every request is inside a handler.
	deadline := time.Now().Add(5 * time.Second)
	for s.optimizeM.inflight.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests in flight", s.optimizeM.inflight.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	s.Close()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed during drain: %v", i, errs[i])
		}
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d status = %d during drain", i, codes[i])
		}
	}
}

func TestRequestContextTimeouts(t *testing.T) {
	s, err := New(Config{
		Engine:         testEngine(t),
		RequestTimeout: 123 * time.Millisecond,
		MaxTimeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	check := func(timeoutMS int64, want time.Duration) {
		t.Helper()
		r := httptest.NewRequest(http.MethodPost, "/optimize", nil)
		ctx, cancel := s.requestContext(r, timeoutMS)
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatal("no deadline set")
		}
		got := time.Until(dl)
		if got > want || got < want-50*time.Millisecond {
			t.Fatalf("timeout_ms=%d: deadline in %v, want ~%v", timeoutMS, got, want)
		}
	}
	check(0, 123*time.Millisecond)   // server default
	check(400, 400*time.Millisecond) // client choice
	check(100000, time.Second)       // capped at MaxTimeout
}

// execTestEngine builds an engine over the generated DB1 logistics instance,
// the smallest world the /query endpoint can execute against.
func execTestEngine(t testing.TB) *sqo.Engine {
	t.Helper()
	db, err := sqo.GenerateDatabase(sqo.DB1())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sqo.NewEngine(db.Schema(),
		sqo.WithCatalog(sqo.LogisticsConstraints()),
		sqo.WithCostModel(sqo.NewCostModel(db.Schema(), db.Analyze(), sqo.DefaultWeights)),
		sqo.WithDatabase(db))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: execTestEngine(t)})
	resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Query: testQueryText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Optimized || out.EmptyResult {
		t.Errorf("response flags = %+v, want optimized and non-empty", out)
	}
	if out.RowCount != len(out.Rows) || out.RowCount == 0 {
		t.Errorf("RowCount = %d with %d rows", out.RowCount, len(out.Rows))
	}
	if out.TuplesScanned == 0 {
		t.Error("TuplesScanned = 0; execution did no metered work?")
	}

	// The unoptimized run must return the same multiset of rows.
	off := false
	resp, raw = postJSON(t, ts.URL+"/query", QueryRequest{Query: testQueryText, Optimize: &off})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize=false status = %d, body %s", resp.StatusCode, raw)
	}
	var rawOut QueryResponse
	if err := json.Unmarshal(raw, &rawOut); err != nil {
		t.Fatal(err)
	}
	if rawOut.Optimized {
		t.Error("optimize=false run reported Optimized")
	}
	if rawOut.RowCount != out.RowCount {
		t.Errorf("raw run returned %d rows, optimized %d", rawOut.RowCount, out.RowCount)
	}

	// Both requests land in the endpoint's own latency row and the engine's
	// execution counters.
	getResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if ep := st.Endpoints["/query"]; ep.Requests != 2 || ep.Errors != 0 {
		t.Errorf("/query stats = %+v, want 2 requests / 0 errors", ep)
	}
	if st.Engine.Executions != 2 || st.Engine.ExecTuplesScanned == 0 {
		t.Errorf("engine execution counters = %+v, want 2 executions with tuples", st.Engine)
	}
}

func TestQueryWithoutDatabase(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // default engine: no WithDatabase
	resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Query: testQueryText})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", resp.StatusCode, raw)
	}
}

func TestQueryParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{Engine: execTestEngine(t)})
	resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: "(bad"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
