package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"maps"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sqo"
	"sqo/internal/obs"
	"sqo/internal/resilience"
)

// Config assembles a Server. Engine is the only required field.
type Config struct {
	// Engine serves the optimizations. Required.
	Engine *sqo.Engine

	// BatchWindow is how long the first request of a coalescing group
	// waits for company before dispatch; BatchLimit caps the group size
	// (default: twice the engine's worker count, with a floor of 4).
	// BatchWindow <= 0 or BatchLimit == 1 disables micro-batching and
	// /optimize calls the engine directly.
	BatchWindow time.Duration
	BatchLimit  int

	// RequestTimeout bounds every request without its own timeout_ms
	// (default 10s); MaxTimeout caps client-supplied timeouts (default
	// 60s).
	RequestTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64

	// MaxConcurrent and MaxQueue size the admission controller over the
	// data-plane endpoints (/optimize, /optimize/batch, /query): at most
	// MaxConcurrent requests inside the engine, at most MaxQueue waiting
	// behind them, everyone else shed with 429 + Retry-After. Defaults:
	// 16 and 4 × MaxConcurrent.
	MaxConcurrent int
	MaxQueue      int

	// MonitorInterval is the cadence of the pressure monitor driving the
	// graceful-degradation ladder (default 250ms; < 0 disables the monitor,
	// freezing the ladder at whatever level SetDegradation pinned).
	MonitorInterval time.Duration

	// Store, when set, makes catalog mutations durable: /catalog/update
	// goes through SnapshotStore.ApplyAndLog (journal append + periodic
	// compaction) and /catalog/swap re-baselines the store with a fresh
	// snapshot. The engine must have been booted from the same store.
	Store *sqo.SnapshotStore

	// TraceSample samples one in every N instrumented requests for pipeline
	// tracing (0 disables sampling). A request carrying an X-Sqo-Trace
	// header is always traced, sampled or not; the assigned trace ID comes
	// back in the X-Sqo-Trace-Id response header and the full span breakdown
	// is served by GET /trace/{id} while the ring retains it.
	TraceSample int

	// SlowQuery triggers the slow-query log: any traced request whose
	// service time meets or exceeds it is logged at Warn with its full
	// span breakdown and query fingerprint. <= 0 disables the log.
	SlowQuery time.Duration

	// TraceRing is the recent-trace ring capacity (default 256, rounded up
	// to a power of two).
	TraceRing int

	// BootMode records how the engine came up ("warm", "cold", or "" when
	// the server was not booted from a snapshot store) — exported on
	// /metrics as sqo_snapshot_boot_info so dashboards can tell a warm
	// restart from a cold rebuild.
	BootMode string

	// Log receives structured lifecycle events (construction, catalog
	// swaps, degradation changes, slow queries, close); nil discards.
	Log *slog.Logger
}

// Server is the HTTP serving layer over one sqo.Engine:
//
//	POST /optimize        — one query, coalesced into micro-batches
//	POST /optimize/batch  — a client-assembled batch via OptimizeBatch
//	POST /query           — optimize-then-execute against the database
//	POST /catalog/swap    — hot-swap the whole constraint catalog
//	POST /catalog/update  — apply an incremental catalog delta
//	GET  /healthz         — liveness (the process is up and serving HTTP)
//	GET  /readyz          — readiness (take traffic? false while draining)
//	GET  /stats           — engine counters + per-endpoint latency
//	GET  /quarantine      — the poison-query register
//	POST /quarantine/reset — clear the register
//
// Data-plane requests pass an admission controller (bounded concurrency +
// bounded queue, deadline-aware shedding with 429 + Retry-After), and a
// pressure monitor walks a graceful-degradation ladder that sheds
// serving-path optimizations — subsumption probing, then canonical cache
// keys, then micro-batch coalescing — in an order proven answer-preserving.
//
// Build one with New, mount Handler on an http.Server, call StartDraining
// when shutdown begins (readiness goes false), and call Close after
// http.Server.Shutdown has drained the connections.
type Server struct {
	eng     *sqo.Engine
	cfg     Config
	batcher *batcher // nil when micro-batching is disabled
	mux     *http.ServeMux
	start   time.Time
	log     *slog.Logger
	tracer  *obs.Tracer
	reg     *obs.Registry
	scrape  scrapeState

	adm      *resilience.Admission
	ladder   *resilience.Ladder
	draining atomic.Bool
	monStop  chan struct{}
	monDone  chan struct{}
	monOnce  sync.Once

	optimizeM *endpointMetrics
	batchM    *endpointMetrics
	queryM    *endpointMetrics
	swapM     *endpointMetrics
	updateM   *endpointMetrics
	statsM    *endpointMetrics
}

// endpointMetrics is one endpoint's request counters and latency histogram.
type endpointMetrics struct {
	hist     histogram
	requests atomic.Int64
	errors   atomic.Int64
	inflight atomic.Int64
}

// New builds a Server over cfg.Engine and starts its micro-batcher.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.BatchLimit <= 0 {
		// Coalescing pays off even past the pool width (excess queries
		// just queue inside the engine), so keep a useful floor on
		// single-core machines where Workers() is 1.
		cfg.BatchLimit = max(4, 2*cfg.Engine.Workers())
	}
	if cfg.MonitorInterval == 0 {
		cfg.MonitorInterval = 250 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	s := &Server{
		eng:       cfg.Engine,
		cfg:       cfg,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		log:       cfg.Log.With("component", "server"),
		adm:       resilience.NewAdmission(resilience.AdmissionConfig{MaxConcurrent: cfg.MaxConcurrent, MaxQueue: cfg.MaxQueue}),
		ladder:    resilience.NewLadder(resilience.LadderConfig{}),
		monStop:   make(chan struct{}),
		monDone:   make(chan struct{}),
		optimizeM: &endpointMetrics{},
		batchM:    &endpointMetrics{},
		queryM:    &endpointMetrics{},
		swapM:     &endpointMetrics{},
		updateM:   &endpointMetrics{},
		statsM:    &endpointMetrics{},
	}
	s.tracer = obs.NewTracer(obs.TracerConfig{
		SampleN:       cfg.TraceSample,
		SlowThreshold: cfg.SlowQuery,
		RingSize:      cfg.TraceRing,
		Logger:        s.log,
	})
	s.reg = s.newRegistry()
	if cfg.BatchWindow > 0 && cfg.BatchLimit > 1 {
		s.batcher = newBatcher(cfg.Engine, cfg.BatchWindow, cfg.BatchLimit)
	}
	s.mux.HandleFunc("POST /optimize", s.instrument(s.optimizeM, s.handleOptimize))
	s.mux.HandleFunc("POST /optimize/batch", s.instrument(s.batchM, s.handleOptimizeBatch))
	s.mux.HandleFunc("POST /query", s.instrument(s.queryM, s.handleQuery))
	s.mux.HandleFunc("POST /catalog/swap", s.instrument(s.swapM, s.handleCatalogSwap))
	s.mux.HandleFunc("POST /catalog/update", s.instrument(s.updateM, s.handleCatalogUpdate))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.instrument(s.statsM, s.handleStats))
	s.mux.HandleFunc("GET /quarantine", s.handleQuarantine)
	s.mux.HandleFunc("POST /quarantine/reset", s.handleQuarantineReset)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /traces", s.handleTraces)
	if s.batcher != nil {
		s.log.Info("micro-batching on", "window", cfg.BatchWindow, "limit", cfg.BatchLimit)
	} else {
		s.log.Info("micro-batching off")
	}
	if cfg.MonitorInterval > 0 {
		go s.monitor()
	} else {
		close(s.monDone)
	}
	return s, nil
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batching reports whether request coalescing is active.
func (s *Server) Batching() bool { return s.batcher != nil }

// StartDraining flips readiness off: /readyz answers 503 so load balancers
// stop routing new traffic, while in-flight and straggler requests keep
// being served. Call it when shutdown begins, before http.Server.Shutdown.
func (s *Server) StartDraining() {
	if !s.draining.Swap(true) {
		s.log.Info("draining", "ready", false)
	}
}

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the pressure monitor and the micro-batcher, flushing the
// batcher's pending group and waiting for in-flight dispatches to deliver.
// Call it after http.Server.Shutdown has drained connections; requests that
// still arrive afterwards degrade to direct engine calls rather than
// failing.
func (s *Server) Close() {
	s.StartDraining()
	s.monOnce.Do(func() { close(s.monStop) })
	<-s.monDone
	if s.batcher != nil {
		s.batcher.close()
		st := s.batcher.stats()
		s.log.Info("batcher closed", "batches", st.Batches, "coalesced", st.Coalesced)
	}
}

// --- wire types -----------------------------------------------------------

// OptimizeRequest is the body of POST /optimize. Query uses the paper's
// textual form (sqo.ParseQuery); TimeoutMS overrides the server's default
// per-request deadline.
type OptimizeRequest struct {
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// OptimizeResponse reports one optimization. DurationUS is the
// optimization's own measured duration (retrieval + transformation +
// formulation, from Result.Stats) — a cache hit reports the cost of the
// original computation; request service latency lives in /stats.
type OptimizeResponse struct {
	Optimized           string `json:"optimized"`
	EmptyResult         bool   `json:"empty_result,omitempty"`
	Fires               int    `json:"fires"`
	RelevantConstraints int    `json:"relevant_constraints"`
	DurationUS          int64  `json:"duration_us"`
}

// BatchRequest is the body of POST /optimize/batch.
type BatchRequest struct {
	Queries   []string `json:"queries"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// BatchResponse reports a whole batch, positionally aligned with the
// request.
type BatchResponse struct {
	Results []OptimizeResponse `json:"results"`
}

// QueryRequest is the body of POST /query. Optimize defaults to true
// (optimize-then-execute); set it to false for the opt-off baseline that
// runs the raw query. TimeoutMS overrides the server's default per-request
// deadline.
type QueryRequest struct {
	Query     string `json:"query"`
	Optimize  *bool  `json:"optimize,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// QueryResponse reports one end-to-end execution: the projected rows (each a
// slice of stringified values in projection order), what the run cost at the
// metered storage layer, and DurationUS — the execution's service time inside
// the engine (optimization plus storage work).
type QueryResponse struct {
	Rows           [][]string `json:"rows"`
	RowCount       int        `json:"row_count"`
	Optimized      bool       `json:"optimized"`
	EmptyResult    bool       `json:"empty_result,omitempty"`
	TuplesScanned  int64      `json:"tuples_scanned"`
	PagesScanned   int64      `json:"pages_scanned"`
	IndexProbes    int64      `json:"index_probes"`
	ObjectFetches  int64      `json:"object_fetches"`
	LinkTraversals int64      `json:"link_traversals"`
	DurationUS     int64      `json:"duration_us"`
}

// SwapRequest is the body of POST /catalog/swap: a constraint catalog in
// the textual form sqo.ParseConstraintCatalog reads (one constraint per
// line, #-comments allowed).
type SwapRequest struct {
	Catalog string `json:"catalog"`
}

// SwapResponse reports the newly active generation.
type SwapResponse struct {
	Constraints        int    `json:"constraints"`
	DerivedConstraints int    `json:"derived_constraints"`
	Epoch              uint64 `json:"epoch"`
}

// UpdateRequest is the body of POST /catalog/update: an incremental catalog
// delta. Add entries are whole constraints in the textual form
// sqo.ParseConstraint reads; Remove entries are constraint IDs; Replace maps
// an existing ID to its replacement constraint (applied in sorted-ID order
// for determinism). Removals apply before additions within each op, ops in
// the order add/remove/replace fields are enumerated here.
type UpdateRequest struct {
	Add     []string          `json:"add,omitempty"`
	Remove  []string          `json:"remove,omitempty"`
	Replace map[string]string `json:"replace,omitempty"`
}

// UpdateResponse reports one applied delta: the new generation, what
// changed, and what the surgical cache invalidation did. Incremental is
// false when the engine's configuration forced a full rebuild.
type UpdateResponse struct {
	Constraints   int    `json:"constraints"`
	Added         int    `json:"added"`
	Removed       int    `json:"removed"`
	Epoch         uint64 `json:"epoch"`
	Incremental   bool   `json:"incremental"`
	CachePurged   int    `json:"cache_purged"`
	CacheSurvived int    `json:"cache_survived"`
}

// EndpointStats is one endpoint's counters for GET /stats. Requests and
// Errors count completed requests; InFlight is the number currently inside
// the handler.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	InFlight int64 `json:"in_flight"`
	HistogramSnapshot
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeS    float64                  `json:"uptime_s"`
	Batching   bool                     `json:"batching"`
	Engine     sqo.EngineStats          `json:"engine"`
	Batcher    *BatcherStats            `json:"batcher,omitempty"`
	Resilience ResilienceStats          `json:"resilience"`
	Endpoints  map[string]EndpointStats `json:"endpoints"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers -------------------------------------------------------------

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := sqo.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	tr := obs.FromContext(ctx)
	tr.MarkFromStart(obs.StageParse)
	tr.SetLabel(truncLabel(req.Query))
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()
	var res *sqo.Result
	if tr == nil && s.batcher != nil && s.ladder.Level() < resilience.LevelNoCoalesce {
		res, err = s.batcher.submit(ctx, q)
	} else {
		// Two reasons to go direct: at LevelNoCoalesce the collection
		// window is pure added latency (under heavy pressure every batch
		// fills instantly anyway), and a traced request must keep its own
		// context — the batcher optimizes under the group's context, which
		// would drop the span recorder.
		res, err = s.eng.Optimize(ctx, q)
	}
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	at := tr.StartSpan()
	writeJSON(w, http.StatusOK, toOptimizeResponse(res))
	tr.EndSpan(obs.StageWrite, at)
}

// truncLabel caps a query text for use as a trace label.
func truncLabel(q string) string {
	const maxLabel = 160
	if len(q) > maxLabel {
		return q[:maxLabel] + "…"
	}
	return q
}

func (s *Server) handleOptimizeBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty query list"))
		return
	}
	qs := make([]*sqo.Query, len(req.Queries))
	for i, text := range req.Queries {
		q, err := sqo.ParseQuery(text)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		qs[i] = q
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	tr := obs.FromContext(ctx)
	tr.MarkFromStart(obs.StageParse)
	tr.SetLabel(fmt.Sprintf("batch[%d] %s", len(req.Queries), truncLabel(req.Queries[0])))
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()
	results, err := s.eng.OptimizeBatch(ctx, qs)
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	resp := BatchResponse{Results: make([]OptimizeResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = toOptimizeResponse(res)
	}
	at := tr.StartSpan()
	writeJSON(w, http.StatusOK, resp)
	tr.EndSpan(obs.StageWrite, at)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.eng.CanExecute() {
		writeError(w, http.StatusUnprocessableEntity,
			errors.New("engine has no database; start the server with execution enabled"))
		return
	}
	q, err := sqo.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	optimize := req.Optimize == nil || *req.Optimize
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	tr := obs.FromContext(ctx)
	tr.MarkFromStart(obs.StageParse)
	tr.SetLabel(truncLabel(req.Query))
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	var out *sqo.Execution
	if optimize {
		out, err = s.eng.Execute(ctx, q)
	} else {
		out, err = s.eng.ExecuteRaw(ctx, q)
	}
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	rows := make([][]string, len(out.Rows))
	for i, row := range out.Rows {
		vals := make([]string, len(row.Values))
		for j, v := range row.Values {
			vals[j] = v.String()
		}
		rows[i] = vals
	}
	at := tr.StartSpan()
	writeJSON(w, http.StatusOK, QueryResponse{
		Rows:           rows,
		RowCount:       len(rows),
		Optimized:      optimize,
		EmptyResult:    out.EmptyProven,
		TuplesScanned:  out.TuplesScanned,
		PagesScanned:   out.Meter.PagesScanned,
		IndexProbes:    out.Meter.IndexProbes,
		ObjectFetches:  out.Meter.ObjectFetches,
		LinkTraversals: out.Meter.LinkTraversals,
		DurationUS:     time.Since(start).Microseconds(),
	})
	tr.EndSpan(obs.StageWrite, at)
}

func (s *Server) handleCatalogSwap(w http.ResponseWriter, r *http.Request) {
	var req SwapRequest
	if !s.decode(w, r, &req) {
		return
	}
	cat, err := sqo.ParseConstraintCatalog(req.Catalog)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.eng.SwapCatalog(cat); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if s.cfg.Store != nil {
		// A swap restarts the catalog lineage, orphaning the journal; only
		// a fresh snapshot baseline makes the new generation bootable.
		if err := s.cfg.Store.WriteSnapshot(s.eng); err != nil {
			s.log.Error("catalog swap snapshot failed", "err", err)
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("catalog swapped in memory but snapshot baseline failed: %w", err))
			return
		}
	}
	st := s.eng.Stats()
	s.log.Info("catalog swapped",
		"constraints", st.Constraints, "derived", st.DerivedConstraints, "epoch", st.Epoch)
	writeJSON(w, http.StatusOK, SwapResponse{
		Constraints:        st.Constraints,
		DerivedConstraints: st.DerivedConstraints,
		Epoch:              st.Epoch,
	})
}

func (s *Server) handleCatalogUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	d := sqo.NewCatalogDelta()
	for _, line := range req.Add {
		c, err := sqo.ParseConstraint(line)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("add: %w", err))
			return
		}
		d.AddConstraints(c)
	}
	d.RemoveConstraints(req.Remove...)
	for _, id := range slices.Sorted(maps.Keys(req.Replace)) {
		c, err := sqo.ParseConstraint(req.Replace[id])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("replace %q: %w", id, err))
			return
		}
		d.ReplaceConstraint(id, c)
	}
	if d.Empty() {
		writeError(w, http.StatusBadRequest, errors.New("empty delta"))
		return
	}
	var rep sqo.UpdateReport
	var err error
	if s.cfg.Store != nil {
		rep, err = s.cfg.Store.ApplyAndLog(s.eng, d)
	} else {
		rep, err = s.eng.UpdateCatalog(d)
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	st := s.eng.Stats()
	s.log.Info("catalog updated",
		"added", rep.Added, "removed", rep.Removed, "epoch", rep.Epoch,
		"incremental", rep.Incremental,
		"cache_purged", rep.CachePurged, "cache_survived", rep.CacheSurvived)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Constraints:   st.Constraints,
		Added:         rep.Added,
		Removed:       rep.Removed,
		Epoch:         rep.Epoch,
		Incremental:   rep.Incremental,
		CachePurged:   rep.CachePurged,
		CacheSurvived: rep.CacheSurvived,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeS:    time.Since(s.start).Seconds(),
		Batching:   s.batcher != nil,
		Engine:     s.eng.Stats(),
		Resilience: s.resilienceStats(),
		Endpoints: map[string]EndpointStats{
			"/optimize":       s.optimizeM.snapshot(),
			"/optimize/batch": s.batchM.snapshot(),
			"/query":          s.queryM.snapshot(),
			"/catalog/swap":   s.swapM.snapshot(),
			"/catalog/update": s.updateM.snapshot(),
			"/stats":          s.statsM.snapshot(),
		},
	}
	if s.batcher != nil {
		bs := s.batcher.stats()
		resp.Batcher = &bs
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- plumbing -------------------------------------------------------------

// instrument wraps a handler with request counting, latency recording and
// pipeline tracing. A request carrying X-Sqo-Trace always gets a recorder;
// otherwise the tracer samples one in every TraceSample requests. The
// untraced majority path touches no trace machinery beyond one nil check,
// and the assigned ID is exported up front in X-Sqo-Trace-Id (headers are
// immutable once the handler writes).
func (s *Server) instrument(m *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		defer m.inflight.Add(-1)
		var tr *obs.Trace
		if r.Header.Get("X-Sqo-Trace") != "" {
			tr = s.tracer.Force(start)
		} else {
			tr = s.tracer.Sample(start)
		}
		if tr != nil {
			w.Header().Set("X-Sqo-Trace-Id", strconv.FormatUint(tr.ID(), 10))
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		m.requests.Add(1)
		if rec.code >= 400 {
			m.errors.Add(1)
		}
		us := time.Since(start).Microseconds()
		if tr != nil {
			m.hist.observeTraced(us, tr.ID())
			s.tracer.Finish(tr)
		} else {
			m.hist.observe(us)
		}
	}
}

func (m *endpointMetrics) snapshot() EndpointStats {
	return EndpointStats{
		Requests:          m.requests.Load(),
		Errors:            m.errors.Load(),
		InFlight:          m.inflight.Load(),
		HistogramSnapshot: m.hist.snapshot(),
	}
}

// requestContext maps the per-request deadline onto a context: the client's
// timeout_ms when given (capped at MaxTimeout), the server default
// otherwise, layered on the connection context so a dropped client cancels
// queued work.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// decode reads one JSON body, answering 400 itself on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("request body: trailing data"))
		return false
	}
	return true
}

func toOptimizeResponse(res *sqo.Result) OptimizeResponse {
	return OptimizeResponse{
		Optimized:           res.Optimized.String(),
		EmptyResult:         res.EmptyResult,
		Fires:               res.Stats.Fires,
		RelevantConstraints: res.Stats.RelevantConstraints,
		DurationUS:          res.Stats.Duration.Microseconds(),
	}
}

// statusForError maps optimization failures onto HTTP statuses: deadline →
// 504, client-gone → 499 (nginx's convention), anything else (validation
// against the schema, contradiction proofs, …) → 422.
func statusForError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode left here
}

// statusRecorder captures the response status for the metrics wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}
