package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestCatalogUpdateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Warm the cache with a query that only depends on c1.
	resp, _ := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: status %d", resp.StatusCode)
	}

	// Add an unrelated rule: the cached entry must survive.
	resp, raw := postJSON(t, ts.URL+"/catalog/update", UpdateRequest{
		Add: []string{`z1: vehicle.desc = "tanker" [collects] -> cargo.desc = "oil"`},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, raw)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(raw, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Added != 1 || ur.Removed != 0 || !ur.Incremental || ur.Epoch != 1 {
		t.Fatalf("update response = %+v", ur)
	}
	if ur.Constraints != 2 {
		t.Fatalf("constraints = %d, want 2", ur.Constraints)
	}

	// Replace and remove finish the op coverage.
	resp, raw = postJSON(t, ts.URL+"/catalog/update", UpdateRequest{
		Replace: map[string]string{"z1": `z1: vehicle.desc = "flatbed" [collects] -> cargo.desc = "steel"`},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace: status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Added != 1 || ur.Removed != 1 || ur.Constraints != 2 {
		t.Fatalf("replace response = %+v", ur)
	}
	resp, raw = postJSON(t, ts.URL+"/catalog/update", UpdateRequest{Remove: []string{"z1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d: %s", resp.StatusCode, raw)
	}

	// Per-endpoint latency row present in /stats.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	row, ok := stats.Endpoints["/catalog/update"]
	if !ok {
		t.Fatal("/stats carries no /catalog/update endpoint row")
	}
	if row.Requests != 3 || row.Errors != 0 {
		t.Fatalf("endpoint row = %+v, want 3 requests, 0 errors", row)
	}
	if stats.Engine.CatalogUpdates != 3 {
		t.Fatalf("engine CatalogUpdates = %d, want 3", stats.Engine.CatalogUpdates)
	}
}

func TestCatalogUpdateEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  UpdateRequest
		code int
	}{
		{"empty delta", UpdateRequest{}, http.StatusBadRequest},
		{"bad constraint text", UpdateRequest{Add: []string{"not a constraint"}}, http.StatusBadRequest},
		{"bad replace text", UpdateRequest{Replace: map[string]string{"c1": "nope"}}, http.StatusBadRequest},
		{"unknown removal", UpdateRequest{Remove: []string{"zz"}}, http.StatusUnprocessableEntity},
		{"schema mismatch", UpdateRequest{Add: []string{`b1: nosuch.x = "v" -> cargo.desc = "steel"`}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, ts.URL+"/catalog/update", tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, raw)
		}
	}
	// None of the failures may have advanced the engine.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Epoch != 0 || stats.Engine.CatalogUpdates != 0 {
		t.Fatalf("failed updates disturbed the engine: %+v", stats.Engine)
	}
}
