package server

// metrics.go: the Prometheus/OpenMetrics surface of the serving layer.
// Nothing here collects anything new — every series is a rendering of a
// counter or histogram the serving stack already maintains (engine stats,
// admission controller, degradation ladder, quarantine register, execution
// meters, per-endpoint latency). One engine/resilience snapshot is taken
// per scrape and held under a mutex while the registry renders, so a
// scrape observes a single consistent point in time.

import (
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"sqo"
	"sqo/internal/obs"
)

// scrapeState is the per-scrape snapshot the registry's collectors read.
// handleMetrics fills it and holds mu across Render, so collectors never
// race with the next scrape.
type scrapeState struct {
	mu     sync.Mutex
	eng    sqo.EngineStats
	res    ResilienceStats
	trc    obs.TracerStats
	bat    BatcherStats
	mem    runtime.MemStats
	uptime float64
}

// endpoints pairs each instrumented path with its metrics, the label set
// of the per-endpoint families.
func (s *Server) endpoints() []struct {
	path string
	m    *endpointMetrics
} {
	return []struct {
		path string
		m    *endpointMetrics
	}{
		{"/optimize", s.optimizeM},
		{"/optimize/batch", s.batchM},
		{"/query", s.queryM},
		{"/catalog/swap", s.swapM},
		{"/catalog/update", s.updateM},
		{"/stats", s.statsM},
	}
}

// newRegistry builds the server's metric registry. Every family is
// registered here and nowhere else; registration panics on a name that
// breaks the sqo_ naming contract, and the exposition test guard re-checks
// the rendered output, so an unregistered or ill-named series cannot ship.
func (s *Server) newRegistry() *obs.Registry {
	r := obs.NewRegistry()
	st := &s.scrape

	// --- serving layer ---------------------------------------------------
	r.Counter("sqo_requests", "Completed requests by endpoint.", func(emit func(obs.Sample)) {
		for _, ep := range s.endpoints() {
			emit(obs.Sample{Labels: obs.Label("endpoint", ep.path), Value: float64(ep.m.requests.Load())})
		}
	})
	r.Counter("sqo_request_errors", "Requests answered with status >= 400, by endpoint.", func(emit func(obs.Sample)) {
		for _, ep := range s.endpoints() {
			emit(obs.Sample{Labels: obs.Label("endpoint", ep.path), Value: float64(ep.m.errors.Load())})
		}
	})
	r.Gauge("sqo_requests_in_flight", "Requests currently inside a handler, by endpoint.", func(emit func(obs.Sample)) {
		for _, ep := range s.endpoints() {
			emit(obs.Sample{Labels: obs.Label("endpoint", ep.path), Value: float64(ep.m.inflight.Load())})
		}
	})
	r.Histogram("sqo_request_duration_seconds", "Request service time by endpoint (log2 buckets; exemplars reference trace IDs).", func(emit func(obs.HistSample)) {
		for _, ep := range s.endpoints() {
			emit(ep.m.hist.expose(obs.Label("endpoint", ep.path)))
		}
	})
	r.Gauge("sqo_uptime_seconds", "Seconds since the server was constructed.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: st.uptime})
	})
	r.Gauge("sqo_draining", "1 while the server is draining (readiness false).", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: boolGauge(st.res.Draining)})
	})
	r.Gauge("sqo_snapshot_boot_info", "How the engine came up; the mode label is warm (snapshot restore), cold (full rebuild) or none (no snapshot store).", func(emit func(obs.Sample)) {
		mode := s.cfg.BootMode
		if mode == "" {
			mode = "none"
		}
		emit(obs.Sample{Labels: obs.Label("mode", mode), Value: 1})
	})

	// --- engine: optimization + three-tier cache -------------------------
	r.Counter("sqo_optimizations", "Optimize calls served, cache hits included.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Optimizations)})
	})
	r.Counter("sqo_cache_hits", "Result-cache hits by tier: exact, canonical, subsumption.", func(emit func(obs.Sample)) {
		c := st.eng.Cache
		emit(obs.Sample{Labels: obs.Label("tier", "exact"), Value: float64(c.ExactHits)})
		emit(obs.Sample{Labels: obs.Label("tier", "canonical"), Value: float64(c.CanonicalHits)})
		emit(obs.Sample{Labels: obs.Label("tier", "subsumption"), Value: float64(c.SubsumptionHits)})
	})
	r.Counter("sqo_cache_misses", "Result-cache lookups that fell through to cold optimization.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Cache.Misses)})
	})
	r.Counter("sqo_cache_evictions", "Result-cache LRU evictions.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Cache.Evictions)})
	})
	r.Counter("sqo_cache_residual_predicates", "Residual conjuncts applied across all subsumption hits.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Cache.ResidualPredicates)})
	})
	r.Gauge("sqo_cache_entries", "Result-cache occupancy.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Cache.Size)})
	})
	r.Gauge("sqo_cache_capacity", "Result-cache capacity.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Cache.Capacity)})
	})
	r.Counter("sqo_cache_update_invalidations", "Result-cache entries handled by incremental catalog updates, by outcome (purged or survived).", func(emit func(obs.Sample)) {
		emit(obs.Sample{Labels: obs.Label("outcome", "purged"), Value: float64(st.eng.Cache.UpdatePurged)})
		emit(obs.Sample{Labels: obs.Label("outcome", "survived"), Value: float64(st.eng.Cache.UpdateSurvived)})
	})

	// --- catalog ---------------------------------------------------------
	r.Counter("sqo_catalog_swaps", "Successful whole-catalog hot swaps.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.CatalogSwaps)})
	})
	r.Counter("sqo_catalog_updates", "Successful incremental catalog deltas.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.CatalogUpdates)})
	})
	r.Gauge("sqo_catalog_epoch", "Current catalog generation.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Epoch)})
	})
	r.Gauge("sqo_catalog_constraints", "Active constraints after closure.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Constraints)})
	})

	// --- admission + degradation + quarantine ----------------------------
	r.Counter("sqo_admission_admitted", "Data-plane requests that got an admission slot.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.res.Admission.Admitted)})
	})
	r.Counter("sqo_admission_shed", "Data-plane requests refused, by reason (queue_full or deadline).", func(emit func(obs.Sample)) {
		emit(obs.Sample{Labels: obs.Label("reason", "queue_full"), Value: float64(st.res.Admission.ShedQueueFull)})
		emit(obs.Sample{Labels: obs.Label("reason", "deadline"), Value: float64(st.res.Admission.ShedDeadline)})
	})
	r.Gauge("sqo_admission_in_flight", "Admitted requests currently holding a slot.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.res.Admission.InFlight)})
	})
	r.Gauge("sqo_admission_queued", "Requests waiting behind the admitted set.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.res.Admission.Queued)})
	})
	r.Gauge("sqo_admission_service_ewma_seconds", "Admission controller's service-time estimate.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.res.Admission.ServiceEWMAUS) / 1e6})
	})
	r.Gauge("sqo_degradation_level", "Graceful-degradation ladder level in force (0 = full serving).", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.res.Ladder.Level)})
	})
	r.Counter("sqo_degradation_changes", "Ladder level changes, by direction (escalation or deescalation).", func(emit func(obs.Sample)) {
		emit(obs.Sample{Labels: obs.Label("direction", "escalation"), Value: float64(st.res.Ladder.Escalations)})
		emit(obs.Sample{Labels: obs.Label("direction", "deescalation"), Value: float64(st.res.Ladder.Deescalations)})
	})
	r.Gauge("sqo_quarantine_tracked", "Fingerprints carrying at least one panic strike.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Quarantine.Tracked)})
	})
	r.Counter("sqo_quarantine_quarantined", "Fingerprints that crossed the strike limit.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Quarantine.Quarantined)})
	})
	r.Counter("sqo_quarantine_blocked", "Requests short-circuited by an active quarantine.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Quarantine.Blocked)})
	})
	r.Counter("sqo_panics_recovered", "Optimizer/executor panics converted into errors.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.PanicsRecovered)})
	})

	// --- batcher ---------------------------------------------------------
	r.Counter("sqo_batches", "Micro-batch groups dispatched.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.bat.Batches)})
	})
	r.Counter("sqo_batch_coalesced", "Requests carried by dispatched micro-batches.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.bat.Coalesced)})
	})

	// --- execution meters ------------------------------------------------
	r.Counter("sqo_executions", "End-to-end Execute/ExecuteRaw calls served.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.eng.Executions)})
	})
	r.Counter("sqo_exec_storage_ops", "Physical storage work by kind: tuples scanned, pages scanned, index probes, object fetches.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Labels: obs.Label("kind", "tuples_scanned"), Value: float64(st.eng.ExecTuplesScanned)})
		emit(obs.Sample{Labels: obs.Label("kind", "pages_scanned"), Value: float64(st.eng.ExecPagesScanned)})
		emit(obs.Sample{Labels: obs.Label("kind", "index_probes"), Value: float64(st.eng.ExecIndexProbes)})
		emit(obs.Sample{Labels: obs.Label("kind", "object_fetches"), Value: float64(st.eng.ExecObjectFetches)})
	})

	// --- tracer ----------------------------------------------------------
	r.Counter("sqo_traces_sampled", "Requests picked up by probabilistic trace sampling.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.trc.Sampled)})
	})
	r.Counter("sqo_traces_forced", "Requests traced on client request (X-Sqo-Trace).", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.trc.Forced)})
	})
	r.Counter("sqo_slow_queries", "Traced requests over the slow-query threshold.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.trc.SlowQueries)})
	})

	// --- runtime ---------------------------------------------------------
	r.Gauge("sqo_go_goroutines", "Live goroutines.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(runtime.NumGoroutine())})
	})
	r.Gauge("sqo_go_heap_alloc_bytes", "Bytes of allocated heap objects.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.mem.HeapAlloc)})
	})
	r.Gauge("sqo_go_gc_pause_total_seconds", "Cumulative stop-the-world GC pause.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.mem.PauseTotalNs) / 1e9})
	})
	r.Counter("sqo_go_gc_cycles", "Completed GC cycles.", func(emit func(obs.Sample)) {
		emit(obs.Sample{Value: float64(st.mem.NumGC)})
	})
	return r
}

var errInvalidN = errors.New("n must be a positive integer")

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleMetrics is GET /metrics: fill one consistent snapshot, render the
// registry under the scrape lock.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := &s.scrape
	st.mu.Lock()
	defer st.mu.Unlock()
	st.eng = s.eng.Stats()
	st.res = s.resilienceStats()
	st.uptime = time.Since(s.start).Seconds()
	st.trc = s.tracer.Stats()
	if s.batcher != nil {
		st.bat = s.batcher.stats()
	}
	runtime.ReadMemStats(&st.mem)
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.reg.Render(w)
}

// handleTrace is GET /trace/{id}: one finished trace with its full span
// breakdown, while the ring retains it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, ok := s.tracer.Get(id)
	if !ok {
		http.Error(w, `{"error":"trace not found (expired from the ring or never assigned)"}`, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// tracesResponse is the body of GET /traces.
type tracesResponse struct {
	Stats  obs.TracerStats    `json:"stats"`
	Traces []obs.TraceSummary `json:"traces"`
}

// handleTraces is GET /traces: the ring's recent finished traces, newest
// first (?n= caps the count, default 32).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, errInvalidN)
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Stats:  s.tracer.Stats(),
		Traces: s.tracer.Recent(n),
	})
}
