package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sqo/internal/faultinject"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedsQueueFull saturates a 1-slot / 1-queue admission
// controller and checks the next arrival is refused with 429 + Retry-After,
// and that the limits and shed counters surface in /stats.
func TestAdmissionShedsQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, MonitorInterval: -1})

	// Occupy the only slot directly, then park one request in the only
	// queue position.
	relHold, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	qctx, qcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rel, err := s.adm.Acquire(qctx); err == nil {
			rel()
		}
	}()
	waitFor(t, "queued request", func() bool { return s.adm.Stats().Queued == 1 })

	resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, raw)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	var eresp errorResponse
	if err := json.Unmarshal(raw, &eresp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eresp.Error, "queue_full") {
		t.Fatalf("shed error = %q, want queue_full reason", eresp.Error)
	}

	// The configured limits and the shed show up in /stats.
	sresp, sraw := postGet(t, ts.URL+"/stats")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", sresp.StatusCode)
	}
	var stats StatsResponse
	if err := json.Unmarshal(sraw, &stats); err != nil {
		t.Fatal(err)
	}
	adm := stats.Resilience.Admission
	if adm.MaxConcurrent != 1 || adm.MaxQueue != 1 {
		t.Fatalf("stats limits = %d/%d, want 1/1", adm.MaxConcurrent, adm.MaxQueue)
	}
	if adm.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", adm.ShedQueueFull)
	}
	if stats.Resilience.ShedRate <= 0 {
		t.Fatalf("ShedRate = %v, want > 0", stats.Resilience.ShedRate)
	}

	qcancel()
	wg.Wait()
	relHold()
}

// postGet is the GET sibling of postJSON.
func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestAdmissionShedsDeadline proves the request deadline (timeout_ms via
// requestContext) propagates into admission: a request whose deadline cannot
// survive the estimated queue wait is shed up front with reason "deadline".
func TestAdmissionShedsDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 8, MonitorInterval: -1})

	// Seed the service-time EWMA with one slow observation so the estimated
	// queue wait (~60ms) dwarfs the 1ms deadline below.
	rel, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	rel()
	if ewma := s.adm.Stats().ServiceEWMAUS; ewma < 50_000 {
		t.Fatalf("service EWMA = %dus, want >= 50ms seed", ewma)
	}

	// Hold the only slot so the request must queue, where the deadline
	// check runs.
	relHold, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer relHold()

	resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText, TimeoutMS: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, raw)
	}
	var eresp errorResponse
	if err := json.Unmarshal(raw, &eresp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eresp.Error, "deadline") {
		t.Fatalf("shed error = %q, want deadline reason", eresp.Error)
	}
	if shed := s.adm.Stats().ShedDeadline; shed != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", shed)
	}
}

// TestReadyzReportsLevelAndDraining covers the liveness/readiness split:
// degradation is reported but does not fail readiness; draining does.
func TestReadyzReportsLevelAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{MonitorInterval: -1})

	check := func(wantCode int, wantStatus string, wantLevel int) {
		t.Helper()
		resp, raw := postGet(t, ts.URL+"/readyz")
		if resp.StatusCode != wantCode {
			t.Fatalf("readyz status = %d, want %d (body %s)", resp.StatusCode, wantCode, raw)
		}
		var body readyzResponse
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatal(err)
		}
		if body.Status != wantStatus || body.DegradationLevel != wantLevel {
			t.Fatalf("readyz = %+v, want status %q level %d", body, wantStatus, wantLevel)
		}
		if body.DegradationName == "" {
			t.Fatal("readyz reported empty degradation name")
		}
	}

	check(http.StatusOK, "ready", 0)

	// A degraded node still answers correctly, so it stays ready.
	s.SetDegradation(2)
	check(http.StatusOK, "ready", 2)

	// Liveness is unaffected by degradation or draining.
	s.StartDraining()
	check(http.StatusServiceUnavailable, "draining", 2)
	hresp, _ := postGet(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status while draining = %d, want 200", hresp.StatusCode)
	}
}

// TestDegradationDisablesCoalescing checks the top ladder rung: at
// LevelNoCoalesce /optimize bypasses the micro-batcher entirely, and stepping
// back down re-enables it.
func TestDegradationDisablesCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: time.Millisecond, BatchLimit: 8, MonitorInterval: -1})

	post := func() {
		t.Helper()
		resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
		}
	}

	post()
	if got := s.batcher.stats().Batches; got != 1 {
		t.Fatalf("batches after level-0 request = %d, want 1", got)
	}

	s.SetDegradation(3)
	post()
	if got := s.batcher.stats().Batches; got != 1 {
		t.Fatalf("batches after level-3 request = %d, want 1 (batcher must be bypassed)", got)
	}

	s.SetDegradation(0)
	post()
	if got := s.batcher.stats().Batches; got != 2 {
		t.Fatalf("batches after recovery = %d, want 2", got)
	}
}

// TestBatcherCloseSubmitRace hammers submit concurrently with close: every
// submit must return a result or an error — none may hang, none may return
// neither.
func TestBatcherCloseSubmitRace(t *testing.T) {
	const n = 32
	b := newBatcher(testEngine(t), time.Millisecond, 4)

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := b.submit(context.Background(), testQuery(t))
			if err == nil && res == nil {
				err = errors.New("nil result without error")
			}
			errs[i] = err
		}(i)
	}
	close(start)
	// Close mid-flight: some submits land in the pending group, some race
	// the closed flag, some arrive after.
	b.close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("submits hung after close")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// TestQuarantineEndpoints drives a poison query (injected Optimize panic)
// through the HTTP surface: two strikes, quarantine on the third arrival,
// register inspection via GET /quarantine, and operator reset.
func TestQuarantineEndpoints(t *testing.T) {
	t.Setenv(faultinject.EnvVar, "seed=9,optimize.panic=1:poison")
	eng := testEngine(t)
	_, ts := newTestServer(t, Config{Engine: eng, MonitorInterval: -1})

	// Strikes one and two: the recovered panic surfaces as 422.
	for i := 1; i <= 2; i++ {
		resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("strike %d status = %d, want 422 (body %s)", i, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "panic") {
			t.Fatalf("strike %d body = %s, want recovered panic", i, raw)
		}
	}
	// Third arrival: refused by the register without touching the engine.
	resp, raw := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined status = %d, want 422 (body %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "quarantined") {
		t.Fatalf("quarantined body = %s, want quarantine refusal", raw)
	}

	qresp, qraw := postGet(t, ts.URL+"/quarantine")
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("quarantine status = %d", qresp.StatusCode)
	}
	var reg quarantineResponse
	if err := json.Unmarshal(qraw, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Stats.Quarantined != 1 || reg.Stats.Blocked != 1 {
		t.Fatalf("quarantine stats = %+v, want 1 quarantined / 1 blocked", reg.Stats)
	}
	if len(reg.Entries) != 1 || !reg.Entries[0].Active || reg.Entries[0].Strikes != 2 {
		t.Fatalf("quarantine entries = %+v, want one active 2-strike entry", reg.Entries)
	}
	if len(reg.Entries[0].Fingerprint) != 32 {
		t.Fatalf("fingerprint = %q, want 32 hex chars", reg.Entries[0].Fingerprint)
	}

	rresp, rraw := postJSON(t, ts.URL+"/quarantine/reset", struct{}{})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("reset status = %d", rresp.StatusCode)
	}
	var dropped map[string]int
	if err := json.Unmarshal(rraw, &dropped); err != nil {
		t.Fatal(err)
	}
	if dropped["dropped"] != 1 {
		t.Fatalf("reset dropped = %d, want 1", dropped["dropped"])
	}
	qresp2, qraw2 := postGet(t, ts.URL+"/quarantine")
	if qresp2.StatusCode != http.StatusOK {
		t.Fatalf("quarantine status after reset = %d", qresp2.StatusCode)
	}
	var reg2 quarantineResponse
	if err := json.Unmarshal(qraw2, &reg2); err != nil {
		t.Fatal(err)
	}
	if len(reg2.Entries) != 0 {
		t.Fatalf("quarantine entries after reset = %+v, want none", reg2.Entries)
	}
}
