package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sqo"
)

// batcher coalesces concurrent single-query /optimize requests into one
// Engine.OptimizeEach dispatch. The first request of a group opens a
// collection window; everything arriving within it (up to limit) rides the
// same dispatch, so a burst of N concurrent requests costs one pass over
// the engine's worker pool instead of N independent scheduler round-trips —
// the serving-side analogue of the paper's batch amortization argument.
//
// Failure isolation is per query (OptimizeEach): a malformed query answers
// its own request with an error and leaves its batch-mates untouched.
type batcher struct {
	eng    *sqo.Engine
	window time.Duration
	limit  int

	in      chan *batchReq
	stopped chan struct{} // closed by close(); submit falls back to direct calls
	done    chan struct{} // closed when the run loop has exited
	stop    sync.Once
	flights sync.WaitGroup // in-progress dispatches

	batches   atomic.Int64
	coalesced atomic.Int64
	maxBatch  atomic.Int64
}

type batchReq struct {
	q   *sqo.Query
	out chan batchResp // buffered 1: the dispatcher never blocks on a dead waiter
}

type batchResp struct {
	res *sqo.Result
	err error
}

// newBatcher starts the collection loop. window must be > 0 and limit >= 1.
func newBatcher(eng *sqo.Engine, window time.Duration, limit int) *batcher {
	b := &batcher{
		eng:     eng,
		window:  window,
		limit:   limit,
		in:      make(chan *batchReq),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.run()
	return b
}

// submit hands q to the current collection window and waits for its result.
// The wait — not the dispatched work — honors ctx: when ctx expires first,
// submit returns ctx.Err() and the eventual result is dropped into the
// request's buffered channel and discarded. After close, submit degrades to
// a direct Engine.Optimize call so stragglers racing a shutdown still get
// served rather than erroring.
func (b *batcher) submit(ctx context.Context, q *sqo.Query) (*sqo.Result, error) {
	req := &batchReq{q: q, out: make(chan batchResp, 1)}
	select {
	case b.in <- req:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.stopped:
		return b.eng.Optimize(ctx, q)
	}
	select {
	case resp := <-req.out:
		return resp.res, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run is the collection loop: open a window on the first arrival, flush on
// the window timer or when the group reaches limit, drain and flush once
// more on shutdown.
func (b *batcher) run() {
	defer close(b.done)
	var (
		group  []*batchReq
		timer  *time.Timer
		timerC <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(group) == 0 {
			return
		}
		b.dispatch(group)
		group = nil
	}
	for {
		select {
		case req := <-b.in:
			group = append(group, req)
			if len(group) >= b.limit {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(b.window)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		case <-b.stopped:
			// Collect anything that won the race against stopped, then
			// flush the final group.
			for {
				select {
				case req := <-b.in:
					group = append(group, req)
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}

// dispatch runs one group through the engine off the collection loop, so a
// slow batch never blocks the next window from opening.
func (b *batcher) dispatch(group []*batchReq) {
	b.batches.Add(1)
	b.coalesced.Add(int64(len(group)))
	for {
		cur := b.maxBatch.Load()
		if int64(len(group)) <= cur || b.maxBatch.CompareAndSwap(cur, int64(len(group))) {
			break
		}
	}
	b.flights.Add(1)
	go func() {
		defer b.flights.Done()
		qs := make([]*sqo.Query, len(group))
		for i, req := range group {
			qs[i] = req.q
		}
		// The dispatch context is the server's lifetime, not any single
		// request's: per-request deadlines are enforced at the submit
		// wait, and the engine's WithDefaultDeadline (if configured)
		// bounds the work itself.
		//
		// The engine converts per-query panics to errors itself; this
		// guard covers the dispatch machinery around it, so a panic here
		// answers every waiter with an error instead of leaving the whole
		// group blocked on a dead goroutine.
		results, errs := func() (rs []*sqo.Result, es []error) {
			defer func() {
				if rec := recover(); rec != nil {
					rs = make([]*sqo.Result, len(qs))
					es = make([]error, len(qs))
					perr := fmt.Errorf("server: batch dispatch panic (recovered): %v", rec)
					for i := range es {
						es[i] = perr
					}
				}
			}()
			return b.eng.OptimizeEach(context.Background(), qs)
		}()
		for i, req := range group {
			req.out <- batchResp{res: results[i], err: errs[i]}
		}
	}()
}

// close stops the collection loop, waits for it to flush its final group,
// and then for every in-flight dispatch to deliver. Safe to call more than
// once.
func (b *batcher) close() {
	b.stop.Do(func() { close(b.stopped) })
	<-b.done
	b.flights.Wait()
}

// BatcherStats is a point-in-time snapshot of the coalescing counters.
type BatcherStats struct {
	// Batches is the number of dispatched groups; Coalesced the total
	// requests they carried.
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
	// MaxBatch is the largest group dispatched; AvgBatch is
	// Coalesced/Batches.
	MaxBatch int64   `json:"max_batch"`
	AvgBatch float64 `json:"avg_batch"`
	// WindowUS and Limit echo the configuration.
	WindowUS int64 `json:"window_us"`
	Limit    int   `json:"limit"`
}

func (b *batcher) stats() BatcherStats {
	s := BatcherStats{
		Batches:   b.batches.Load(),
		Coalesced: b.coalesced.Load(),
		MaxBatch:  b.maxBatch.Load(),
		WindowUS:  b.window.Microseconds(),
		Limit:     b.limit,
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Coalesced) / float64(s.Batches)
	}
	return s
}
