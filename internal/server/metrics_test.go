package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"sqo/internal/obs"
)

// --- histogram edge cases --------------------------------------------------

func TestHistogramSingleObservation(t *testing.T) {
	var h histogram
	h.observe(100)
	s := h.snapshot()
	if s.Count != 1 || s.MaxUS != 100 || s.MeanUS != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	// One observation: every quantile is the single bucket, clamped to max.
	if s.P50US != 100 || s.P95US != 100 || s.P99US != 100 {
		t.Fatalf("single-observation quantiles not clamped to max: %+v", s)
	}
}

// Values in the top bucket (bits.Len64 == 63) once produced a negative
// quantile bound from a 63-bit shift; the bound must clamp to the observed
// max instead.
func TestHistogramAllOverflow(t *testing.T) {
	var h histogram
	const huge = int64(1) << 62 // lands in bucket 63
	h.observe(huge)
	h.observe(huge + 1)
	s := h.snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, q := range []int64{s.P50US, s.P95US, s.P99US} {
		if q != huge+1 {
			t.Fatalf("overflow-bucket quantile = %d, want clamp to max %d (%+v)", q, huge+1, s)
		}
	}
}

func TestHistogramWindowP99Empty(t *testing.T) {
	var h histogram
	var cur histCursor
	h.observe(500)
	if p := h.windowP99(&cur); p <= 0 {
		t.Fatalf("first window p99 = %d, want > 0", p)
	}
	// No traffic since the cursor advanced: no latency signal, not zero ms.
	if p := h.windowP99(&cur); p != 0 {
		t.Fatalf("empty window p99 = %d, want 0", p)
	}
}

// --- exposition form -------------------------------------------------------

func TestHistogramExpose(t *testing.T) {
	var h histogram
	h.observe(3)              // bucket 2 (le 4µs)
	h.observe(900)            // bucket 10 (le 1024µs)
	h.observe(int64(1) << 40) // past expoBuckets: only the +Inf collapse sees it
	s := h.expose(obs.Label("endpoint", "/x"))
	if s.Labels != `endpoint="/x"` || s.Count != 3 {
		t.Fatalf("expose = %+v", s)
	}
	if len(s.Buckets) != expoBuckets+1 {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), expoBuckets+1)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Cumulative != 3 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	if got := s.Buckets[expoBuckets-1].Cumulative; got != 2 {
		t.Fatalf("largest explicit bucket cumulative = %d, want 2 (huge value only in +Inf)", got)
	}
	var prev int64
	for i, b := range s.Buckets {
		if b.Cumulative < prev {
			t.Fatalf("bucket %d cumulative %d < previous %d", i, b.Cumulative, prev)
		}
		prev = b.Cumulative
		if i > 0 && !math.IsInf(b.LE, 1) && b.LE <= s.Buckets[i-1].LE {
			t.Fatalf("le bounds not increasing at %d: %v after %v", i, b.LE, s.Buckets[i-1].LE)
		}
	}
	if got := s.SumSeconds; math.Abs(got-float64(3+900+int64(1)<<40)/1e6) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h histogram
	h.observeTraced(900, 41) // bucket 10
	h.observeTraced(0, 0)    // zero trace ID: no exemplar
	s := h.expose("")
	var found bool
	for _, b := range s.Buckets {
		if b.ExemplarID == 41 {
			found = true
			if b.ExemplarValue != 900e-6 {
				t.Fatalf("exemplar value = %v, want 0.0009", b.ExemplarValue)
			}
		}
	}
	if !found {
		t.Fatal("traced observation produced no exemplar")
	}
	if s.Buckets[0].ExemplarID != 0 {
		t.Fatalf("zero trace ID produced exemplar %d", s.Buckets[0].ExemplarID)
	}
	// A newer traced observation in the same bucket replaces the exemplar.
	h.observeTraced(1000, 42)
	s = h.expose("")
	for _, b := range s.Buckets {
		if b.ExemplarID == 41 {
			t.Fatal("stale exemplar survived a newer traced observation in its bucket")
		}
	}
}

// --- /metrics --------------------------------------------------------------

// The exposition guard: everything /metrics serves must pass the strict
// scanner, and every family it exposes must be registered (which enforces
// the sqo_ naming contract at registration time).
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceSample: 1, BootMode: "warm"})
	// Generate some series movement, including a traced request.
	postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
	postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, raw)
	}
	names, err := obs.ExpositionNames(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, n := range s.reg.Names() {
		registered[n] = true
	}
	exposed := map[string]bool{}
	for _, n := range names {
		if !registered[n] {
			t.Errorf("exposed family %q is not registered", n)
		}
		exposed[n] = true
	}
	for n := range registered {
		if !exposed[n] {
			t.Errorf("registered family %q missing from exposition", n)
		}
	}
	// The key series of each subsystem must be present with movement where
	// the two optimize calls above imply it.
	body := string(raw)
	for _, want := range []string{
		`sqo_requests_total{endpoint="/optimize"} 2`,
		`sqo_cache_hits_total{tier="exact"} 1`,
		"sqo_optimizations_total 2",
		"sqo_admission_admitted_total 2",
		"sqo_degradation_level 0",
		`sqo_snapshot_boot_info{mode="warm"} 1`,
		`sqo_exec_storage_ops_total{kind="tuples_scanned"}`,
		"sqo_traces_sampled_total 2",
		`sqo_request_duration_seconds_count{endpoint="/optimize"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsBootModeDefaultsToNone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `sqo_snapshot_boot_info{mode="none"} 1`) {
		t.Fatal("boot mode did not default to none")
	}
}

// --- /trace/{id} and /traces ----------------------------------------------

func TestTraceForceAndFetch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(OptimizeRequest{Query: testQueryText})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Sqo-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d", resp.StatusCode)
	}
	idHeader := resp.Header.Get("X-Sqo-Trace-Id")
	if idHeader == "" {
		t.Fatal("forced trace returned no X-Sqo-Trace-Id header")
	}
	id, err := strconv.ParseUint(idHeader, 10, 64)
	if err != nil || id == 0 {
		t.Fatalf("bad trace ID %q", idHeader)
	}

	tresp, err := http.Get(ts.URL + "/trace/" + idHeader)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/trace/%s status = %d", idHeader, tresp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(tresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != id || !snap.Forced {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.TotalNS <= 0 || len(snap.Spans) == 0 {
		t.Fatalf("trace has no measurements: %+v", snap)
	}
	stages := map[string]bool{}
	for _, sp := range snap.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"parse", "admission", "cache_probe", "write"} {
		if !stages[want] {
			t.Errorf("trace missing %s span (has %v)", want, stages)
		}
	}
	if snap.Fingerprint == "" {
		t.Error("trace has no fingerprint")
	}
	if !strings.Contains(snap.Query, "SELECT") {
		t.Errorf("trace label = %q", snap.Query)
	}
	totals, sum := snap.StageTotals()
	if sum <= 0 || sum > snap.TotalNS {
		t.Fatalf("stage sum %d vs total %d (%v)", sum, snap.TotalNS, totals)
	}

	// The ring lists it, newest first.
	lresp, err := http.Get(ts.URL + "/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Stats  obs.TracerStats    `json:"stats"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Stats.Forced != 1 {
		t.Fatalf("stats = %+v", list.Stats)
	}
	var listed bool
	for _, tr := range list.Traces {
		if tr.ID == id {
			listed = true
			if !tr.Forced || tr.TotalUS < 0 {
				t.Fatalf("summary = %+v", tr)
			}
		}
	}
	if !listed {
		t.Fatalf("trace %d not in /traces: %+v", id, list.Traces)
	}
}

// The coverage gate: spans are leaves of a non-overlapping decomposition,
// so on a quiet server their sum accounts for at least 90% of the measured
// end-to-end time (the slack is glue code between stages). Retries damp
// scheduler preemption between spans.
func TestTraceSpanCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(OptimizeRequest{Query: testQueryText})
	var best float64
	for attempt := 0; attempt < 8; attempt++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Sqo-Trace", "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Sqo-Trace-Id")
		tresp, err := http.Get(ts.URL + "/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.TraceSnapshot
		err = json.NewDecoder(tresp.Body).Decode(&snap)
		tresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		_, sum := snap.StageTotals()
		if snap.TotalNS <= 0 {
			t.Fatalf("trace %s has no total", id)
		}
		if cov := float64(sum) / float64(snap.TotalNS); cov > best {
			best = cov
		}
		if best >= 0.9 {
			return
		}
	}
	t.Errorf("span coverage peaked at %.0f%% over 8 quiet requests, want >= 90%%", best*100)
}

func TestTraceEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for path, want := range map[string]int{
		"/trace/notanumber": http.StatusBadRequest,
		"/trace/999999":     http.StatusNotFound,
		"/traces?n=0":       http.StatusBadRequest,
		"/traces?n=-3":      http.StatusBadRequest,
		"/traces?n=zz":      http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestUntracedRequestHasNoTraceHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // sampling off
	resp, _ := postJSON(t, ts.URL+"/optimize", OptimizeRequest{Query: testQueryText})
	if h := resp.Header.Get("X-Sqo-Trace-Id"); h != "" {
		t.Fatalf("untraced request carried X-Sqo-Trace-Id %q", h)
	}
}
