// Package server is the network front door of the optimizer: an HTTP
// serving layer over sqo.Engine with request coalescing (micro-batching),
// per-request deadlines, per-endpoint latency accounting, and a
// connection-draining graceful shutdown. cmd/sqod wraps it into a daemon;
// cmd/sqoload drives it under load.
package server

import (
	"math"
	"math/bits"
	"sync/atomic"

	"sqo/internal/obs"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// collects durations whose microsecond value needs exactly i bits, so the
// range spans 1µs to ~2^62µs — far beyond any deadline the server allows.
const histBuckets = 64

// histogram is a lock-free log₂-bucketed latency histogram. Recording is a
// handful of atomic adds, so the serving path never contends on a metrics
// mutex; quantiles are estimated from the bucket counts at read time.
type histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
	buckets [histBuckets]atomic.Int64

	// Per-bucket exemplars: the trace ID and value of the most recent
	// traced observation that landed in the bucket. The ID is written
	// last and read first, so a non-zero ID always pairs with a value no
	// newer than itself — good enough for an advisory exemplar, with no
	// lock on the recording path.
	exemplarUS [histBuckets]atomic.Int64
	exemplarID [histBuckets]atomic.Uint64
}

// observe records one duration in microseconds.
func (h *histogram) observe(us int64) {
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(us))].Add(1)
}

// observeTraced records one duration and pins it as the exemplar of its
// bucket, keyed by the request's trace ID. IDs are never zero (the tracer
// allocates from 1), so a zero ID means "no exemplar yet".
func (h *histogram) observeTraced(us int64, traceID uint64) {
	h.observe(us)
	if traceID == 0 {
		return
	}
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	h.exemplarUS[i].Store(us)
	h.exemplarID[i].Store(traceID)
}

// HistogramSnapshot is a point-in-time summary of one endpoint's latency
// distribution, in microseconds. Quantiles are upper bounds of the bucket
// holding the target rank (within 2× of the true value), clamped to the
// exact observed maximum.
type HistogramSnapshot struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// snapshot summarizes the histogram. Concurrent observes may be partially
// visible — counters are read without a global lock — which for serving
// metrics is the right trade.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		MaxUS: h.maxUS.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.MeanUS = h.sumUS.Load() / s.Count
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.P50US = quantile(&counts, total, 0.50, s.MaxUS)
	s.P95US = quantile(&counts, total, 0.95, s.MaxUS)
	s.P99US = quantile(&counts, total, 0.99, s.MaxUS)
	return s
}

// histCursor is a caller-held copy of the bucket counters, the baseline a
// windowed quantile measures growth against.
type histCursor [histBuckets]int64

// windowP99 estimates the p99 of the observations recorded since the
// previous call with the same cursor, advancing the cursor. It returns 0
// when the window saw no traffic — the pressure monitor treats that as "no
// latency signal", not "zero latency".
func (h *histogram) windowP99(prev *histCursor) int64 {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		cur := h.buckets[i].Load()
		counts[i] = cur - prev[i]
		prev[i] = cur
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return quantile(&counts, total, 0.99, h.maxUS.Load())
}

// quantile returns the upper bound of the bucket containing rank q·total,
// clamped to the observed maximum.
func quantile(counts *[histBuckets]int64, total int64, q float64, maxUS int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			// Bucket i holds values in [2^(i-1), 2^i).
			upper := int64(1) << uint(i)
			if i == 0 {
				upper = 0
			}
			// Shifting by 63 wraps negative; the top bucket's bound is
			// unrepresentable anyway, so clamp straight to the observed max.
			if i >= 63 || upper > maxUS {
				upper = maxUS
			}
			return upper
		}
	}
	return maxUS
}

// expoBuckets is how many log₂ buckets the Prometheus exposition renders
// explicitly before collapsing the tail into le="+Inf". Bucket 25's upper
// bound is 2^25µs ≈ 33.6s — past every deadline the server allows — so the
// collapse loses nothing a dashboard would plot.
const expoBuckets = 26

// expose converts the histogram into exposition form: cumulative bucket
// counts with le bounds in seconds (2^i µs), the recorded sum, and the
// latest traced observation per bucket as an exemplar.
func (h *histogram) expose(labels string) obs.HistSample {
	s := obs.HistSample{
		Labels:     labels,
		SumSeconds: float64(h.sumUS.Load()) / 1e6,
		Count:      h.count.Load(),
		Buckets:    make([]obs.HistBucket, 0, expoBuckets+1),
	}
	var cum int64
	for i := 0; i < expoBuckets; i++ {
		cum += h.buckets[i].Load()
		b := obs.HistBucket{
			LE:         float64(int64(1)<<uint(i)) / 1e6,
			Cumulative: cum,
		}
		if id := h.exemplarID[i].Load(); id != 0 {
			b.ExemplarID = id
			b.ExemplarValue = float64(h.exemplarUS[i].Load()) / 1e6
		}
		s.Buckets = append(s.Buckets, b)
	}
	inf := obs.HistBucket{LE: math.Inf(1)}
	for i := expoBuckets; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if id := h.exemplarID[i].Load(); id != 0 {
			inf.ExemplarID = id
			inf.ExemplarValue = float64(h.exemplarUS[i].Load()) / 1e6
		}
	}
	inf.Cumulative = cum
	s.Buckets = append(s.Buckets, inf)
	return s
}
