package server

import (
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h histogram
	s := h.snapshot()
	if s.Count != 0 || s.P50US != 0 || s.P99US != 0 || s.MaxUS != 0 || s.MeanUS != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for us := int64(1); us <= 1000; us++ {
		h.observe(us)
	}
	s := h.snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.MaxUS != 1000 {
		t.Fatalf("max = %d, want 1000", s.MaxUS)
	}
	if s.MeanUS < 400 || s.MeanUS > 600 {
		t.Fatalf("mean = %d, want ~500", s.MeanUS)
	}
	// Log-bucketed quantiles are upper bounds within 2× of the true value.
	if s.P50US < 500 || s.P50US > 1000 {
		t.Fatalf("p50 = %d, want in [500, 1000]", s.P50US)
	}
	if s.P95US < 950 || s.P95US > 1000 {
		t.Fatalf("p95 = %d, want in [950, 1000]", s.P95US)
	}
	if !(s.P50US <= s.P95US && s.P95US <= s.P99US && s.P99US <= s.MaxUS) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h histogram
	h.observe(-5)
	s := h.snapshot()
	if s.Count != 1 || s.MaxUS != 0 {
		t.Fatalf("negative observation not clamped to zero: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.MaxUS != goroutines*per-1 {
		t.Fatalf("max = %d, want %d", s.MaxUS, goroutines*per-1)
	}
}
