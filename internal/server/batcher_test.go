package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sqo"
)

// testEngine builds a two-class engine for server tests: a "refrigerated
// truck" constraint whose introduction the indexed cargo.desc makes
// profitable.
func testEngine(t testing.TB, opts ...sqo.EngineOption) *sqo.Engine {
	t.Helper()
	sch := sqo.NewSchemaBuilder().
		Class("vehicle",
			sqo.Attribute{Name: "desc", Type: sqo.KindString}).
		Class("cargo",
			sqo.Attribute{Name: "desc", Type: sqo.KindString, Indexed: true}).
		Relationship("collects", "vehicle", "cargo", sqo.OneToMany).
		MustBuild()
	cat := sqo.MustCatalog(
		sqo.NewConstraint("c1",
			[]sqo.Predicate{sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))},
			[]string{"collects"},
			sqo.Eq("cargo", "desc", sqo.StringValue("frozen food"))))
	eng, err := sqo.NewEngine(sch, append([]sqo.EngineOption{sqo.WithCatalog(cat)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testQuery(t testing.TB) *sqo.Query {
	t.Helper()
	return sqo.NewQuery("vehicle", "cargo").
		AddProject("cargo", "desc").
		AddSelect(sqo.Eq("vehicle", "desc", sqo.StringValue("refrigerated truck"))).
		AddRelationship("collects")
}

// invalidQuery references a class the schema does not declare, so Optimize
// fails validation.
func invalidQuery() *sqo.Query {
	return sqo.NewQuery("warehouse").AddProject("warehouse", "site")
}

func TestBatcherCoalescesAtLimit(t *testing.T) {
	const n = 8
	// A huge window forces the limit to be the only flush trigger, making
	// the grouping deterministic: all n submits ride one dispatch.
	b := newBatcher(testEngine(t), time.Hour, n)
	defer b.close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.submit(context.Background(), testQuery(t))
			if err == nil && res == nil {
				err = errors.New("nil result without error")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := b.stats()
	if st.Batches != 1 || st.Coalesced != n || st.MaxBatch != n {
		t.Fatalf("stats = %+v, want 1 batch of %d", st, n)
	}
	if st.AvgBatch != n {
		t.Fatalf("avg batch = %v, want %d", st.AvgBatch, n)
	}
}

func TestBatcherWindowFlush(t *testing.T) {
	// Limit far above the traffic: only the window timer can flush.
	b := newBatcher(testEngine(t), 10*time.Millisecond, 100)
	defer b.close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.submit(context.Background(), testQuery(t)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := b.stats(); st.Coalesced != 3 || st.Batches == 0 {
		t.Fatalf("stats = %+v, want 3 coalesced in >= 1 batch", st)
	}
}

func TestBatcherIsolatesFailures(t *testing.T) {
	b := newBatcher(testEngine(t), time.Hour, 2)
	defer b.close()

	var wg sync.WaitGroup
	var goodRes *sqo.Result
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodRes, goodErr = b.submit(context.Background(), testQuery(t))
	}()
	go func() {
		defer wg.Done()
		_, badErr = b.submit(context.Background(), invalidQuery())
	}()
	wg.Wait()
	if badErr == nil {
		t.Fatal("invalid query did not error")
	}
	if goodErr != nil || goodRes == nil {
		t.Fatalf("valid batch-mate failed alongside: res=%v err=%v", goodRes, goodErr)
	}
}

func TestBatcherSubmitContextExpires(t *testing.T) {
	// Window and limit both unreachable: the submit can only end via its
	// own context.
	b := newBatcher(testEngine(t), time.Hour, 100)
	defer b.close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := b.submit(ctx, testQuery(t))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestBatcherSubmitAfterClose(t *testing.T) {
	b := newBatcher(testEngine(t), time.Millisecond, 4)
	b.close()
	b.close() // idempotent

	// After shutdown, submit degrades to a direct engine call.
	res, err := b.submit(context.Background(), testQuery(t))
	if err != nil || res == nil {
		t.Fatalf("post-close submit: res=%v err=%v", res, err)
	}
	if st := b.stats(); st.Coalesced != 0 {
		t.Fatalf("post-close submit was coalesced: %+v", st)
	}
}

func TestBatcherCloseFlushesPending(t *testing.T) {
	b := newBatcher(testEngine(t), time.Hour, 100)

	const n = 5
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.submit(context.Background(), testQuery(t))
		}(i)
	}
	// Let the submits park in the collection window, then shut down:
	// close must flush them, not strand them. A submit that races the
	// close instead degrades to a direct engine call — either way it
	// completes.
	time.Sleep(50 * time.Millisecond)
	b.close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d stranded by close: %v", i, err)
		}
	}
}
