package server

// resilience.go: the serving-layer half of overload protection — admission
// gating on the data-plane handlers, the pressure monitor that walks the
// graceful-degradation ladder, the liveness/readiness split, and the
// poison-query quarantine endpoints.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sqo/internal/obs"
	"sqo/internal/resilience"
)

// admit gates one data-plane request through the admission controller. On
// admission it returns the release closure and true; on refusal it writes
// the response itself — 429 with a Retry-After header for a shed, the
// mapped status for a context expiry — and returns false.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (func(), bool) {
	tr := obs.FromContext(ctx)
	at := tr.StartSpan()
	release, err := s.adm.Acquire(ctx)
	tr.EndSpan(obs.StageAdmission, at)
	if err == nil {
		return release, true
	}
	var shed *resilience.ShedError
	if errors.As(err, &shed) {
		secs := int64(shed.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeError(w, http.StatusTooManyRequests, err)
	} else {
		writeError(w, statusForError(err), err)
	}
	return nil, false
}

// monitor is the pressure loop: every MonitorInterval it feeds the ladder
// one observation — the admission queue's fill fraction plus the windowed
// p99 across the data-plane endpoints — and pushes the resulting level into
// the engine. Level changes are logged; the serving path reads the level
// with one atomic load.
func (s *Server) monitor() {
	defer close(s.monDone)
	ticker := time.NewTicker(s.cfg.MonitorInterval)
	defer ticker.Stop()
	var optPrev, batchPrev, queryPrev histCursor
	last := s.ladder.Level()
	for {
		select {
		case <-s.monStop:
			return
		case <-ticker.C:
		}
		p99 := maxInt64(
			s.optimizeM.hist.windowP99(&optPrev),
			s.batchM.hist.windowP99(&batchPrev),
			s.queryM.hist.windowP99(&queryPrev),
		)
		level := s.ladder.Observe(s.adm.QueueFraction(), p99)
		if level != last {
			s.log.Info("degradation level changed",
				"from", resilience.LevelName(last), "to", resilience.LevelName(level),
				"queue_fraction", s.adm.QueueFraction(), "window_p99_us", p99)
			last = level
		}
		s.eng.SetDegradation(level)
	}
}

func maxInt64(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// SetDegradation pins the ladder (and the engine) to a level — the operator
// override and the test hook. The pressure monitor keeps observing from the
// pinned level.
func (s *Server) SetDegradation(level int) {
	s.ladder.SetLevel(level)
	s.eng.SetDegradation(s.ladder.Level())
}

// DegradationLevel returns the ladder level currently in force.
func (s *Server) DegradationLevel() int { return s.ladder.Level() }

// ResilienceStats is the overload-protection section of GET /stats.
type ResilienceStats struct {
	Admission resilience.AdmissionStats `json:"admission"`
	Ladder    resilience.LadderStats    `json:"ladder"`
	Draining  bool                      `json:"draining"`
	// ShedRate is shed / (admitted + shed) since start — the fraction of
	// data-plane arrivals refused for overload.
	ShedRate float64 `json:"shed_rate"`
}

func (s *Server) resilienceStats() ResilienceStats {
	adm := s.adm.Stats()
	rs := ResilienceStats{
		Admission: adm,
		Ladder:    s.ladder.Stats(),
		Draining:  s.draining.Load(),
	}
	if total := adm.Admitted + adm.Shed(); total > 0 {
		rs.ShedRate = float64(adm.Shed()) / float64(total)
	}
	return rs
}

// readyzResponse is the body of GET /readyz.
type readyzResponse struct {
	Status           string `json:"status"` // "ready" or "draining"
	DegradationLevel int    `json:"degradation_level"`
	DegradationName  string `json:"degradation_name"`
}

// handleReadyz is readiness: should a load balancer route new traffic here?
// False (503) while draining; degradation is reported but does not fail
// readiness — a degraded node still answers correctly, just less cheaply.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	lvl := s.ladder.Level()
	resp := readyzResponse{
		Status:           "ready",
		DegradationLevel: lvl,
		DegradationName:  resilience.LevelName(lvl),
	}
	code := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// quarantineEntry is one register row on the wire, fingerprint rendered as
// the same hex form QueryFingerprint.String uses.
type quarantineEntry struct {
	Fingerprint string `json:"fingerprint"`
	resilience.QuarantineEntry
}

// quarantineResponse is the body of GET /quarantine.
type quarantineResponse struct {
	Stats   resilience.QuarantineStats `json:"stats"`
	Entries []quarantineEntry          `json:"entries"`
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	ents := s.eng.QuarantineEntries()
	resp := quarantineResponse{
		Stats:   s.eng.Stats().Quarantine,
		Entries: make([]quarantineEntry, len(ents)),
	}
	for i, e := range ents {
		resp.Entries[i] = quarantineEntry{
			Fingerprint:     fmt.Sprintf("%016x%016x", e.Key[0], e.Key[1]),
			QuarantineEntry: e,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuarantineReset(w http.ResponseWriter, r *http.Request) {
	n := s.eng.QuarantineReset()
	s.log.Info("quarantine reset", "dropped", n)
	writeJSON(w, http.StatusOK, map[string]int{"dropped": n})
}
