// Command promlint validates a /metrics scrape against the strict
// exposition contract (obs.ValidateExposition) and optionally requires
// named metric families to be present. CI's sqod smoke step pipes a live
// scrape through it so a malformed or incomplete exposition fails the
// build:
//
//	curl -fsS localhost:7411/metrics | go run ./internal/obs/promlint \
//	    -require sqo_cache_hits,sqo_admission_admitted,sqo_degradation
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"sqo/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	flag.Parse()
	if err := run(*require, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: exposition ok")
}

func run(require string, args []string) error {
	var data []byte
	var err error
	switch len(args) {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("at most one input file (default stdin)")
	}
	if err != nil {
		return err
	}
	if err := obs.ValidateExposition(bytes.NewReader(data)); err != nil {
		return err
	}
	if require == "" {
		return nil
	}
	names, err := obs.ExpositionNames(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var missing []string
	for _, want := range strings.Split(require, ",") {
		if want = strings.TrimSpace(want); want != "" && !slices.Contains(names, want) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required families missing from exposition: %s", strings.Join(missing, ", "))
	}
	return nil
}
