package obs

import (
	"context"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func TestSampleRatio(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleN: 4})
	var sampled int
	for i := 0; i < 100; i++ {
		if tr := tc.Sample(time.Now()); tr != nil {
			sampled++
			tc.Finish(tr)
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
	if st := tc.Stats(); st.Sampled != 25 {
		t.Fatalf("Stats().Sampled = %d, want 25", st.Sampled)
	}
}

func TestSamplingDisabledStillServesForced(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleN: 0})
	if tc.Sampling() {
		t.Fatal("Sampling() true with SampleN=0")
	}
	if tr := tc.Sample(time.Now()); tr != nil {
		t.Fatal("Sample returned a trace with sampling off")
	}
	tr := tc.Force(time.Now())
	if tr == nil || !tr.Forced() {
		t.Fatalf("Force returned %v", tr)
	}
	tc.Finish(tr)
	if st := tc.Stats(); st.Forced != 1 {
		t.Fatalf("Stats().Forced = %d, want 1", st.Forced)
	}
}

func TestRingGetAndRecent(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleN: 1, RingSize: 8})
	var lastID uint64
	for i := 0; i < 5; i++ {
		tr := tc.Sample(time.Now())
		tr.SetLabel("q")
		tr.AddSpan(StageParse, time.Now(), time.Microsecond)
		tc.Finish(tr)
		lastID = tr.ID()
	}
	snap, ok := tc.Get(lastID)
	if !ok || snap.ID != lastID {
		t.Fatalf("Get(%d) = %+v, %v", lastID, snap, ok)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Stage != "parse" {
		t.Fatalf("snapshot spans = %+v", snap.Spans)
	}
	if _, ok := tc.Get(lastID + 100); ok {
		t.Fatal("Get of unknown ID succeeded")
	}
	if _, ok := tc.Get(0); ok {
		t.Fatal("Get(0) succeeded")
	}
	recent := tc.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) returned %d entries", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].ID <= recent[i].ID {
			t.Fatalf("Recent not newest-first: %+v", recent)
		}
	}
	if recent[0].ID != lastID {
		t.Fatalf("Recent[0].ID = %d, want %d", recent[0].ID, lastID)
	}
}

// The ring holds RingSize slots keyed by id&mask: after overrunning the
// ring, old IDs must be displaced, and a displaced trace must have been
// recycled without corrupting published ones.
func TestRingDisplacement(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleN: 1, RingSize: 4})
	ids := make([]uint64, 0, 12)
	for i := 0; i < 12; i++ {
		tr := tc.Sample(time.Now())
		tc.Finish(tr)
		ids = append(ids, tr.ID())
	}
	if _, ok := tc.Get(ids[0]); ok {
		t.Fatal("ID displaced 8 publishes ago is still readable")
	}
	if snap, ok := tc.Get(ids[11]); !ok || snap.ID != ids[11] {
		t.Fatal("most recent ID unreadable")
	}
}

func TestDiscardReturnsToPool(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleN: 1})
	tr := tc.Force(time.Now())
	id := tr.ID()
	tc.Discard(tr)
	if _, ok := tc.Get(id); ok {
		t.Fatal("discarded trace was published")
	}
}

// recordingHandler captures slog records for assertion.
type recordingHandler struct {
	mu   sync.Mutex
	recs []slog.Record
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recs = append(h.recs, r)
	return nil
}
func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func TestSlowQueryLog(t *testing.T) {
	h := &recordingHandler{}
	tc := NewTracer(TracerConfig{
		SampleN:       1,
		SlowThreshold: time.Nanosecond, // everything is slow
		Logger:        slog.New(h),
	})
	tr := tc.Sample(time.Now())
	tr.SetLabel("the query")
	tr.SetFingerprint(1, 2)
	tr.AddSpan(StageTransform, time.Now(), 5*time.Microsecond)
	time.Sleep(time.Microsecond)
	tc.Finish(tr)

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.recs) != 1 {
		t.Fatalf("slow-query log emitted %d records, want 1", len(h.recs))
	}
	rec := h.recs[0]
	if rec.Message != "slow query" || rec.Level != slog.LevelWarn {
		t.Fatalf("record = %q at %v", rec.Message, rec.Level)
	}
	attrs := map[string]slog.Value{}
	rec.Attrs(func(a slog.Attr) bool { attrs[a.Key] = a.Value; return true })
	for _, key := range []string{"trace_id", "total_us", "fingerprint", "query", "breakdown"} {
		if _, ok := attrs[key]; !ok {
			t.Fatalf("slow-query record missing attr %q (has %v)", key, attrs)
		}
	}
	if got := attrs["query"].String(); got != "the query" {
		t.Fatalf("query attr = %q", got)
	}
	if st := tc.Stats(); st.SlowQueries != 1 {
		t.Fatalf("Stats().SlowQueries = %d, want 1", st.SlowQueries)
	}
}

func TestSlowQueryThresholdNotCrossed(t *testing.T) {
	h := &recordingHandler{}
	tc := NewTracer(TracerConfig{
		SampleN:       1,
		SlowThreshold: time.Hour,
		Logger:        slog.New(h),
	})
	tr := tc.Sample(time.Now())
	tc.Finish(tr)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.recs) != 0 {
		t.Fatalf("fast trace emitted %d slow-query records", len(h.recs))
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tc *Tracer
	if tc.Sample(time.Now()) != nil || tc.Force(time.Now()) != nil {
		t.Fatal("nil tracer returned a trace")
	}
	tc.Finish(nil)
	tc.Discard(nil)
	if _, ok := tc.Get(1); ok {
		t.Fatal("nil tracer Get succeeded")
	}
	if tc.Recent(4) != nil {
		t.Fatal("nil tracer Recent returned entries")
	}
	if tc.Stats() != (TracerStats{}) {
		t.Fatal("nil tracer Stats non-zero")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	lg := NopLogger()
	if lg == nil {
		t.Fatal("NopLogger returned nil")
	}
	lg.Info("goes nowhere", "k", "v") // must not panic
	lg.With("a", 1).WithGroup("g").Error("still nowhere")
}
