package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sqo_requests", "Requests served.", func(emit func(Sample)) {
		emit(Sample{Labels: Label("endpoint", "/query"), Value: 12})
		emit(Sample{Labels: Label("endpoint", "/optimize"), Value: 3})
	})
	r.Gauge("sqo_in_flight", "In-flight requests.", func(emit func(Sample)) {
		emit(Sample{Value: 2})
	})
	r.Histogram("sqo_request_duration_seconds", "Latency.", func(emit func(HistSample)) {
		emit(HistSample{
			Labels: Label("endpoint", "/query"),
			Buckets: []HistBucket{
				{LE: 0.001, Cumulative: 4, ExemplarID: 7, ExemplarValue: 0.0009},
				{LE: 0.01, Cumulative: 9},
				{LE: math.Inf(1), Cumulative: 10},
			},
			SumSeconds: 0.042,
			Count:      10,
		})
		emit(HistSample{
			Labels: Label("endpoint", "/optimize"),
			Buckets: []HistBucket{
				{LE: 0.001, Cumulative: 0},
				{LE: math.Inf(1), Cumulative: 0},
			},
			SumSeconds: 0,
			Count:      0,
		})
	})
	return r
}

// The renderer and the strict scanner are two halves of one contract:
// everything Render emits must pass ValidateExposition.
func TestRenderValidateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := testRegistry().Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition rejected rendered output: %v\n%s", err, out)
	}
	for _, want := range []string{
		`sqo_requests_total{endpoint="/query"} 12`,
		"sqo_in_flight 2",
		`sqo_request_duration_seconds_bucket{endpoint="/query",le="0.001"} 4 # {trace_id="7"} 0.0009`,
		`sqo_request_duration_seconds_bucket{endpoint="/query",le="+Inf"} 10`,
		`sqo_request_duration_seconds_sum{endpoint="/query"} 0.042`,
		`sqo_request_duration_seconds_count{endpoint="/query"} 10`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionNames(t *testing.T) {
	var buf bytes.Buffer
	reg := testRegistry()
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	names, err := ExpositionNames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"sqo_requests", "sqo_in_flight", "sqo_request_duration_seconds"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// Registry.Names is sorted; every exposition name must be registered.
	regNames := map[string]bool{}
	for _, n := range reg.Names() {
		regNames[n] = true
	}
	for _, n := range names {
		if !regNames[n] {
			t.Fatalf("exposed family %q not in registry", n)
		}
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		desc string
		reg  func(r *Registry)
	}{
		{"no sqo_ prefix", func(r *Registry) {
			r.Counter("requests", "x.", func(func(Sample)) {})
		}},
		{"uppercase", func(r *Registry) {
			r.Counter("sqo_Requests", "x.", func(func(Sample)) {})
		}},
		{"reserved _total suffix", func(r *Registry) {
			r.Counter("sqo_requests_total", "x.", func(func(Sample)) {})
		}},
		{"reserved _bucket suffix", func(r *Registry) {
			r.Histogram("sqo_lat_bucket", "x.", func(func(HistSample)) {})
		}},
		{"reserved _count suffix", func(r *Registry) {
			r.Gauge("sqo_lat_count", "x.", func(func(Sample)) {})
		}},
		{"duplicate", func(r *Registry) {
			r.Counter("sqo_dup", "x.", func(func(Sample)) {})
			r.Gauge("sqo_dup", "x.", func(func(Sample)) {})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.desc, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: registration did not panic", tc.desc)
				}
			}()
			tc.reg(NewRegistry())
		})
	}
}

func TestFmtFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12:      "12",
		-3:      "-3",
		0.042:   "0.042",
		1e-06:   "1e-06",
		1048576: "1048576",
	}
	for v, want := range cases {
		if got := fmtFloat(v); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		desc, input, wantErr string
	}{
		{"missing EOF",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x 1\n",
			"missing # EOF"},
		{"content after EOF",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x 1\n# EOF\nsqo_x 2\n",
			"after # EOF"},
		{"HELP without TYPE",
			"# HELP sqo_x A.\nsqo_x 1\n# EOF\n",
			"before any TYPE"},
		{"HELP then HELP",
			"# HELP sqo_x A.\n# HELP sqo_y B.\n# TYPE sqo_y gauge\nsqo_y 1\n# EOF\n",
			"without a TYPE"},
		{"TYPE without HELP",
			"# TYPE sqo_x gauge\nsqo_x 1\n# EOF\n",
			"without immediately preceding HELP"},
		{"sample before any family",
			"sqo_x 1\n# EOF\n",
			"before any TYPE"},
		{"bad family name",
			"# HELP bad_x A.\n# TYPE bad_x gauge\nbad_x 1\n# EOF\n",
			"does not match"},
		{"family declared twice",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x 1\n# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x 1\n# EOF\n",
			"declared twice"},
		{"counter without _total",
			"# HELP sqo_x A.\n# TYPE sqo_x counter\nsqo_x 1\n# EOF\n",
			"_total suffix"},
		{"gauge with suffix",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x_total 1\n# EOF\n",
			"bare family name"},
		{"foreign sample in family",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_y 1\n# EOF\n",
			"does not belong"},
		{"histogram missing +Inf",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{le=\"1\"} 1\nsqo_h_sum 1\nsqo_h_count 1\n# EOF\n",
			`no le="+Inf"`},
		{"histogram missing _count",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{le=\"+Inf\"} 1\nsqo_h_sum 1\n# EOF\n",
			"missing _count"},
		{"histogram count mismatch",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{le=\"+Inf\"} 2\nsqo_h_sum 1\nsqo_h_count 3\n# EOF\n",
			"_count 3 != +Inf bucket 2"},
		{"buckets not cumulative",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{le=\"1\"} 5\nsqo_h_bucket{le=\"+Inf\"} 3\nsqo_h_sum 1\nsqo_h_count 3\n# EOF\n",
			"not cumulative"},
		{"le bounds not increasing",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{le=\"2\"} 1\nsqo_h_bucket{le=\"1\"} 1\nsqo_h_bucket{le=\"+Inf\"} 1\nsqo_h_sum 1\nsqo_h_count 1\n# EOF\n",
			"not increasing"},
		{"bucket without le",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{x=\"1\"} 1\n# EOF\n",
			"without le label"},
		{"exemplar on gauge",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x 1 # {trace_id=\"3\"} 1\n# EOF\n",
			"exemplar on non-bucket"},
		{"exemplar on _sum",
			"# HELP sqo_h A.\n# TYPE sqo_h histogram\nsqo_h_bucket{le=\"+Inf\"} 0\nsqo_h_sum 0 # {trace_id=\"3\"} 1\nsqo_h_count 0\n# EOF\n",
			"exemplar on _sum"},
		{"malformed sample line",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\nsqo_x one\n# EOF\n",
			"malformed sample"},
		{"unexpected comment",
			"# HELP sqo_x A.\n# TYPE sqo_x gauge\n# random\nsqo_x 1\n# EOF\n",
			"unexpected comment"},
	}
	for _, tc := range cases {
		t.Run(tc.desc, func(t *testing.T) {
			err := ValidateExposition(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("%s: accepted", tc.desc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("%s: error %q does not mention %q", tc.desc, err, tc.wantErr)
			}
		})
	}
}

// Regression: bucket lines carry le alongside other labels while _sum and
// _count carry the other labels alone; the scanner must key all three into
// the same per-series check (a trailing comma once split them apart).
func TestValidateLabeledHistogramSeriesKey(t *testing.T) {
	input := "# HELP sqo_h A.\n# TYPE sqo_h histogram\n" +
		"sqo_h_bucket{endpoint=\"/query\",le=\"0.001\"} 1\n" +
		"sqo_h_bucket{endpoint=\"/query\",le=\"+Inf\"} 2\n" +
		"sqo_h_sum{endpoint=\"/query\"} 0.5\n" +
		"sqo_h_count{endpoint=\"/query\"} 2\n" +
		"sqo_h_bucket{endpoint=\"/stats\",le=\"+Inf\"} 0\n" +
		"sqo_h_sum{endpoint=\"/stats\"} 0\n" +
		"sqo_h_count{endpoint=\"/stats\"} 0\n" +
		"# EOF\n"
	if err := ValidateExposition(strings.NewReader(input)); err != nil {
		t.Fatalf("valid labeled histogram rejected: %v", err)
	}
	// Cross-series count mismatch must still be caught per label set.
	bad := strings.Replace(input, "sqo_h_count{endpoint=\"/stats\"} 0", "sqo_h_count{endpoint=\"/stats\"} 9", 1)
	if err := ValidateExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("per-series count mismatch not caught")
	}
}

func TestHistKey(t *testing.T) {
	cases := map[string]string{
		`{endpoint="/query",le="0.001"}`: `{endpoint="/query"}`,
		`{le="0.001",endpoint="/q"}`:     `{endpoint="/q"}`,
		`{le="+Inf"}`:                    "",
		`{endpoint="/query"}`:            `{endpoint="/query"}`,
		"":                               "",
		`{a="1",le="2",b="3"}`:           `{a="1",b="3"}`,
	}
	for in, want := range cases {
		if got := histKey(in); got != want {
			t.Errorf("histKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLabel(t *testing.T) {
	if got := Label("endpoint", `/a"b`); got != `endpoint="/a\"b"` {
		t.Fatalf("Label = %q", got)
	}
}
