// Package obs is the zero-dependency observability layer of the serving
// stack: pipeline tracing (pooled, sampled span recorders carried via
// context through admission, canonicalization, cache probes, retrieval,
// transformation, planning and execution), a Prometheus/OpenMetrics text
// exposition registry for the counters and log₂ histograms the system
// already collects, and the slow-query log.
//
// The design rule is that observability must never tax the untraced hot
// path: FromContext on a trace-free context is one map-free Value walk,
// every Trace method is nil-safe, and the disabled path is gated at zero
// allocations per op. Sampled traces come from a sync.Pool and are
// published into a fixed ring buffer, so steady-state tracing allocates
// nothing either.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of a traced request. Stages are
// leaves: a request's span set is non-overlapping, so the per-stage sum
// approximates the end-to-end latency (the slack is glue code between
// stages).
type Stage uint8

const (
	// StageParse is request decoding: JSON body + query text parsing.
	StageParse Stage = iota
	// StageAdmission is time spent waiting in the admission controller.
	StageAdmission
	// StageCanon is canonicalization: the streamed reduction computing the
	// canonical fingerprint, and (on a miss) materializing the canonical
	// query.
	StageCanon
	// StageCacheProbe is the exact/canonical cache tier probe — one lookup
	// serves both tiers; which tier hit is a property of the reduction.
	StageCacheProbe
	// StageSubsume is the containment tier probe: the envelope-indexed
	// generalization lookup plus (on a hit) the residual derivation.
	StageSubsume
	// StageRetrieve is constraint retrieval (index lookup or catalog scan).
	StageRetrieve
	// StageTransform is the core transformation loop: table init, queue
	// updates, fires and the chase.
	StageTransform
	// StageFormulate is query formulation (cost-benefit analyses).
	StageFormulate
	// StagePlan is execution plan selection.
	StagePlan
	// StageExecute is plan execution against storage.
	StageExecute
	// StageWrite is response serialization.
	StageWrite

	numStages
)

var stageNames = [numStages]string{
	StageParse:      "parse",
	StageAdmission:  "admission",
	StageCanon:      "canon",
	StageCacheProbe: "cache_probe",
	StageSubsume:    "subsume",
	StageRetrieve:   "retrieve",
	StageTransform:  "transform",
	StageFormulate:  "formulate",
	StagePlan:       "plan",
	StageExecute:    "execute",
	StageWrite:      "write",
}

// String returns the stage's wire name (trace JSON, slow-query log,
// sqoload breakdown tables).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames lists every stage wire name in pipeline order — the span
// glossary, in the order breakdown tables should print.
func StageNames() []string { return append([]string(nil), stageNames[:]...) }

// MaxSpans bounds the spans one trace can hold. A single request records
// well under this (parse + admission + a handful of engine stages + write);
// batch requests recording per-query engine spans may saturate it, in which
// case the overflow is counted, not recorded.
const MaxSpans = 48

// Span is one recorded stage interval, offsets relative to the trace start.
type Span struct {
	Stage   Stage
	StartNS int64
	DurNS   int64
}

// Trace is one request's span recorder. A nil *Trace is the disabled
// recorder: every method is a no-op, so instrumented code needs no
// branching. Span recording is safe from concurrent goroutines (a traced
// batch request optimizes queries on a worker pool); label and fingerprint
// setters are last-writer-wins.
type Trace struct {
	id      uint64
	start   time.Time
	forced  bool
	n       int32 // atomic; may exceed MaxSpans (overflow is dropped)
	fpHi    uint64
	fpLo    uint64
	label   string
	totalNS int64
	spans   [MaxSpans]Span
}

// reset prepares a pooled trace for reuse.
func (t *Trace) reset(id uint64, start time.Time, forced bool) {
	t.id = id
	t.start = start
	t.forced = forced
	atomic.StoreInt32(&t.n, 0)
	t.fpHi, t.fpLo = 0, 0
	t.label = ""
	t.totalNS = 0
}

// ID returns the trace's identifier (0 for nil).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Forced reports whether the trace was client-requested rather than
// sampled.
func (t *Trace) Forced() bool { return t != nil && t.forced }

// StartSpan returns the timestamp a subsequent EndSpan measures from — the
// zero time (and no clock read) when the trace is nil. Use it when the
// code being measured has no timestamps of its own:
//
//	at := tr.StartSpan()
//	...work...
//	tr.EndSpan(obs.StageCanon, at)
func (t *Trace) StartSpan() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndSpan records one span from at to now. No-op on a nil trace.
func (t *Trace) EndSpan(stage Stage, at time.Time) {
	if t == nil {
		return
	}
	t.AddSpan(stage, at, time.Since(at))
}

// AddSpan records one span from already-measured timestamps — the
// instrumentation form for code that takes its own wall-clock readings
// anyway (the core optimizer), costing zero extra clock reads.
func (t *Trace) AddSpan(stage Stage, at time.Time, d time.Duration) {
	if t == nil {
		return
	}
	i := atomic.AddInt32(&t.n, 1) - 1
	if int(i) >= MaxSpans {
		return // counted by the inflated n, rendered as DroppedSpans
	}
	t.spans[i] = Span{Stage: stage, StartNS: at.Sub(t.start).Nanoseconds(), DurNS: d.Nanoseconds()}
}

// MarkFromStart records one span covering everything from the trace start
// to now — the parse span, which begins before the handler could possibly
// have a trace to instrument with.
func (t *Trace) MarkFromStart(stage Stage) {
	if t == nil {
		return
	}
	t.AddSpan(stage, t.start, time.Since(t.start))
}

// SetFingerprint attaches the query fingerprint (as computed by the
// engine's cache keying). First writer wins — on a traced batch the
// fingerprint of one member is as good as another's for triage.
func (t *Trace) SetFingerprint(hi, lo uint64) {
	if t == nil || hi|lo == 0 {
		return
	}
	if atomic.CompareAndSwapUint64(&t.fpLo, 0, lo) {
		atomic.StoreUint64(&t.fpHi, hi)
	}
}

// SetLabel attaches a human-readable request label (typically the query
// text, truncated by the caller). Serving-layer use only: not safe for
// concurrent writers.
func (t *Trace) SetLabel(s string) {
	if t == nil {
		return
	}
	t.label = s
}

// traceCtxKey carries a *Trace through a request context.
type traceCtxKey struct{}

// WithTrace returns a context carrying t. Attach only sampled traces:
// untraced requests should keep their context untouched so the disabled
// path stays allocation-free.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil return is
// directly usable: every Trace method is a no-op on nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
