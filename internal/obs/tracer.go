package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TracerConfig assembles a Tracer.
type TracerConfig struct {
	// SampleN samples one in every N data-plane requests (1 = every
	// request, 0 disables sampling). Client-forced traces (Force) are
	// recorded regardless.
	SampleN int
	// SlowThreshold triggers the slow-query log: a finished trace whose
	// total meets or exceeds it is logged with its full span breakdown.
	// <= 0 disables the slow-query log.
	SlowThreshold time.Duration
	// RingSize is the recent-trace ring capacity, rounded up to a power of
	// two (default 256).
	RingSize int
	// Logger receives slow-query records; nil discards them.
	Logger *slog.Logger
}

// Tracer is the span-recorder factory and sink: it decides which requests
// get a Trace (sampling or client force), pools the recorders, publishes
// finished traces into a ring buffer for GET /trace/{id}, and emits the
// slow-query log.
type Tracer struct {
	cfg     TracerConfig
	sampleN uint64
	slowNS  int64
	logger  *slog.Logger

	arrivals atomic.Uint64
	nextID   atomic.Uint64
	sampled  atomic.Int64
	forced   atomic.Int64
	slow     atomic.Int64

	pool  sync.Pool
	slots []traceSlot
	mask  uint64
}

// traceSlot is one ring position. The mutex makes recycling safe: a
// publisher swaps the slot's trace and only then returns the displaced one
// to the pool, so a concurrent reader can never observe a reset in
// progress.
type traceSlot struct {
	mu sync.Mutex
	t  *Trace
}

// NewTracer builds a tracer. Always non-nil: a zero SampleN tracer still
// serves forced traces.
func NewTracer(cfg TracerConfig) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 256
	}
	// Round up to a power of two so slot selection is a mask.
	n := 1
	for n < size {
		n <<= 1
	}
	tc := &Tracer{
		cfg:    cfg,
		slowNS: cfg.SlowThreshold.Nanoseconds(),
		logger: cfg.Logger,
		slots:  make([]traceSlot, n),
		mask:   uint64(n - 1),
		pool:   sync.Pool{New: func() any { return new(Trace) }},
	}
	if cfg.SampleN > 0 {
		tc.sampleN = uint64(cfg.SampleN)
	}
	return tc
}

// Sampling reports whether probabilistic sampling is on.
func (tc *Tracer) Sampling() bool { return tc != nil && tc.sampleN > 0 }

// Sample returns a recorder for one in every SampleN calls, nil otherwise.
// start is the request's arrival time, the zero point of every span offset.
func (tc *Tracer) Sample(start time.Time) *Trace {
	if tc == nil || tc.sampleN == 0 {
		return nil
	}
	if tc.arrivals.Add(1)%tc.sampleN != 0 {
		return nil
	}
	tc.sampled.Add(1)
	return tc.get(start, false)
}

// Force returns a recorder unconditionally — the client asked for this
// request to be traced (X-Sqo-Trace).
func (tc *Tracer) Force(start time.Time) *Trace {
	if tc == nil {
		return nil
	}
	tc.forced.Add(1)
	return tc.get(start, true)
}

func (tc *Tracer) get(start time.Time, forced bool) *Trace {
	t := tc.pool.Get().(*Trace)
	t.reset(tc.nextID.Add(1), start, forced)
	return t
}

// Finish seals a trace — total duration measured now — publishes it into
// the ring, and emits the slow-query log line when the total crosses the
// threshold. The displaced ring occupant returns to the pool. No-op on nil.
func (tc *Tracer) Finish(t *Trace) {
	if tc == nil || t == nil {
		return
	}
	t.totalNS = time.Since(t.start).Nanoseconds()
	if tc.slowNS > 0 && t.totalNS >= tc.slowNS && tc.logger != nil {
		tc.slow.Add(1)
		snap := t.snapshot()
		tc.logger.Warn("slow query",
			slog.Uint64("trace_id", snap.ID),
			slog.Int64("total_us", snap.TotalNS/1000),
			slog.String("fingerprint", snap.Fingerprint),
			slog.String("query", snap.Query),
			slog.String("breakdown", snap.Breakdown()),
		)
	}
	slot := &tc.slots[t.id&tc.mask]
	slot.mu.Lock()
	old := slot.t
	slot.t = t
	slot.mu.Unlock()
	if old != nil {
		tc.pool.Put(old)
	}
}

// Discard returns an unpublished trace to the pool — the path for a
// request that was refused before reaching any traced stage.
func (tc *Tracer) Discard(t *Trace) {
	if tc == nil || t == nil {
		return
	}
	tc.pool.Put(t)
}

// Get returns the finished trace with the given ID, if the ring still
// holds it.
func (tc *Tracer) Get(id uint64) (TraceSnapshot, bool) {
	if tc == nil || id == 0 {
		return TraceSnapshot{}, false
	}
	slot := &tc.slots[id&tc.mask]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.t == nil || slot.t.id != id {
		return TraceSnapshot{}, false
	}
	return slot.t.snapshot(), true
}

// Recent summarizes up to n of the most recent finished traces, newest
// first.
func (tc *Tracer) Recent(n int) []TraceSummary {
	if tc == nil || n <= 0 {
		return nil
	}
	out := make([]TraceSummary, 0, min(n, len(tc.slots)))
	for i := range tc.slots {
		slot := &tc.slots[i]
		slot.mu.Lock()
		if t := slot.t; t != nil {
			out = append(out, TraceSummary{
				ID:      t.id,
				TotalUS: t.totalNS / 1000,
				Query:   t.label,
				Forced:  t.forced,
			})
		}
		slot.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// TracerStats is the tracer's own counter surface (for /metrics).
type TracerStats struct {
	Sampled     int64 `json:"sampled"`
	Forced      int64 `json:"forced"`
	SlowQueries int64 `json:"slow_queries"`
}

// Stats snapshots the tracer's counters.
func (tc *Tracer) Stats() TracerStats {
	if tc == nil {
		return TracerStats{}
	}
	return TracerStats{
		Sampled:     tc.sampled.Load(),
		Forced:      tc.forced.Load(),
		SlowQueries: tc.slow.Load(),
	}
}

// TraceSummary is one ring entry in GET /traces.
type TraceSummary struct {
	ID      uint64 `json:"id"`
	TotalUS int64  `json:"total_us"`
	Query   string `json:"query,omitempty"`
	Forced  bool   `json:"forced,omitempty"`
}

// SpanOut is one span on the wire.
type SpanOut struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// TraceSnapshot is a finished trace on the wire (GET /trace/{id}).
type TraceSnapshot struct {
	ID           uint64    `json:"id"`
	TotalNS      int64     `json:"total_ns"`
	Fingerprint  string    `json:"fingerprint,omitempty"`
	Query        string    `json:"query,omitempty"`
	Forced       bool      `json:"forced,omitempty"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Spans        []SpanOut `json:"spans"`
}

// snapshot copies a trace into its wire form. Callers must hold the ring
// slot lock (or own the trace exclusively).
func (t *Trace) snapshot() TraceSnapshot {
	n := int(atomic.LoadInt32(&t.n))
	dropped := 0
	if n > MaxSpans {
		dropped = n - MaxSpans
		n = MaxSpans
	}
	snap := TraceSnapshot{
		ID:           t.id,
		TotalNS:      t.totalNS,
		Query:        t.label,
		Forced:       t.forced,
		DroppedSpans: dropped,
		Spans:        make([]SpanOut, n),
	}
	if hi, lo := atomic.LoadUint64(&t.fpHi), atomic.LoadUint64(&t.fpLo); hi|lo != 0 {
		snap.Fingerprint = fmt.Sprintf("%016x%016x", hi, lo)
	}
	for i := 0; i < n; i++ {
		sp := t.spans[i]
		snap.Spans[i] = SpanOut{Stage: sp.Stage.String(), StartNS: sp.StartNS, DurNS: sp.DurNS}
	}
	return snap
}

// StageTotals sums span durations by stage name. The second return is the
// sum across all stages — the number the acceptance gate compares against
// TotalNS.
func (s TraceSnapshot) StageTotals() (map[string]int64, int64) {
	totals := make(map[string]int64, len(s.Spans))
	var sum int64
	for _, sp := range s.Spans {
		totals[sp.Stage] += sp.DurNS
		sum += sp.DurNS
	}
	return totals, sum
}

// Breakdown renders the per-stage time split as one log-friendly string,
// stages in pipeline order.
func (s TraceSnapshot) Breakdown() string {
	totals, _ := s.StageTotals()
	var b strings.Builder
	for _, name := range stageNames {
		if ns, ok := totals[name]; ok {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%s", name, time.Duration(ns))
		}
	}
	return b.String()
}

// NewTestTrace returns a standalone trace starting now — for tests and
// direct engine instrumentation outside a serving layer.
func NewTestTrace() *Trace {
	t := new(Trace)
	t.reset(1, time.Now(), true)
	return t
}

// nopHandler discards every record (slog.DiscardHandler needs go1.24; the
// module supports 1.23).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards everything — the nil-safety
// default for optional Config loggers.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
