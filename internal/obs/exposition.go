package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition is the strict scanner for the exposition format this
// package renders (an OpenMetrics text subset). It is the normative
// contract of GET /metrics: the go test guard and the CI smoke lint both
// run rendered output through it, so a malformed line, an unregistered
// suffix, a non-monotonic histogram or a missing # EOF fails the build
// instead of a production scrape.
//
// Enforced rules:
//
//   - every family is introduced by # HELP then # TYPE, in that order;
//   - every family name matches MetricNamePattern (sqo_ prefix);
//   - sample lines belong to the most recent family, with the suffix its
//     type dictates (counter → _total; histogram → _bucket/_sum/_count;
//     gauge → bare name);
//   - histogram buckets carry an le label, are cumulatively non-decreasing,
//     end at le="+Inf", and the +Inf count equals _count;
//   - exemplars (# {trace_id="..."} value) appear only on _bucket lines;
//   - the exposition ends with exactly one # EOF line.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	st := scanState{seen: map[string]bool{}}
	line := 0
	eof := false
	for sc.Scan() {
		line++
		text := sc.Text()
		if eof {
			return fmt.Errorf("line %d: content after # EOF", line)
		}
		if text == "# EOF" {
			eof = true
			continue
		}
		if err := st.feed(text); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !eof {
		return fmt.Errorf("missing # EOF terminator")
	}
	return st.finishFamily()
}

// ExpositionNames returns the family names of a valid exposition, in
// order of appearance — the surface the metrics-name lint compares against
// a registry.
func ExpositionNames(r io.Reader) ([]string, error) {
	var names []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if m := helpRE.FindStringSubmatch(sc.Text()); m != nil {
			names = append(names, m[1])
		}
	}
	return names, sc.Err()
}

var (
	helpRE   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRE = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)( # \{trace_id="[0-9]+"\} (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?))?$`)
	leRE = regexp.MustCompile(`le="([^"]*)"`)
)

type scanState struct {
	seen       map[string]bool
	family     string
	familyType string
	helpSeen   string // family name of a pending # HELP awaiting # TYPE

	// histogram bookkeeping per label-set within the current family
	hist map[string]*histCheck
}

type histCheck struct {
	prev    int64
	prevLE  float64
	infSeen bool
	inf     int64
	count   int64
	hasCnt  bool
}

func (st *scanState) feed(text string) error {
	switch {
	case strings.HasPrefix(text, "# HELP "):
		m := helpRE.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("malformed HELP line %q", text)
		}
		if err := st.finishFamily(); err != nil {
			return err
		}
		if st.seen[m[1]] {
			return fmt.Errorf("family %s declared twice", m[1])
		}
		if !metricNameRE.MatchString(m[1]) {
			return fmt.Errorf("family %s does not match %s", m[1], MetricNamePattern)
		}
		st.helpSeen = m[1]
		return nil
	case strings.HasPrefix(text, "# TYPE "):
		m := typeRE.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		if st.helpSeen != m[1] {
			return fmt.Errorf("TYPE %s without immediately preceding HELP", m[1])
		}
		st.seen[m[1]] = true
		st.family, st.familyType, st.helpSeen = m[1], m[2], ""
		st.hist = map[string]*histCheck{}
		return nil
	case strings.HasPrefix(text, "#"):
		return fmt.Errorf("unexpected comment %q", text)
	}
	m := sampleRE.FindStringSubmatch(text)
	if m == nil {
		return fmt.Errorf("malformed sample line %q", text)
	}
	name, labels, value, exemplar := m[1], m[2], m[5], m[8]
	if st.family == "" {
		return fmt.Errorf("sample %s before any TYPE declaration", name)
	}
	suffix := strings.TrimPrefix(name, st.family)
	if suffix == name && name != st.family {
		return fmt.Errorf("sample %s does not belong to family %s", name, st.family)
	}
	switch st.familyType {
	case "counter":
		if suffix != "_total" {
			return fmt.Errorf("counter sample %s must use the _total suffix", name)
		}
	case "gauge":
		if suffix != "" {
			return fmt.Errorf("gauge sample %s must use the bare family name", name)
		}
	case "histogram":
		return st.feedHist(suffix, labels, value, exemplar)
	}
	if exemplar != "" {
		return fmt.Errorf("exemplar on non-bucket sample %s", name)
	}
	return nil
}

func (st *scanState) feedHist(suffix, labels, value, exemplar string) error {
	key := histKey(labels)
	hc := st.hist[key]
	if hc == nil {
		hc = &histCheck{prevLE: math.Inf(-1)}
		st.hist[key] = hc
	}
	switch suffix {
	case "_bucket":
		le := leRE.FindStringSubmatch(labels)
		if le == nil {
			return fmt.Errorf("histogram bucket without le label")
		}
		bound := math.Inf(1)
		if le[1] != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(le[1], 64)
			if err != nil {
				return fmt.Errorf("bad le bound %q", le[1])
			}
		}
		if bound <= hc.prevLE {
			return fmt.Errorf("le bounds not increasing (%v after %v)", bound, hc.prevLE)
		}
		hc.prevLE = bound
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("non-integer bucket count %q", value)
		}
		if v < hc.prev {
			return fmt.Errorf("bucket counts not cumulative (%d after %d)", v, hc.prev)
		}
		hc.prev = v
		if math.IsInf(bound, 1) {
			hc.infSeen, hc.inf = true, v
		}
		return nil
	case "_sum":
		if exemplar != "" {
			return fmt.Errorf("exemplar on _sum sample")
		}
		return nil
	case "_count":
		if exemplar != "" {
			return fmt.Errorf("exemplar on _count sample")
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("non-integer count %q", value)
		}
		hc.count, hc.hasCnt = v, true
		return nil
	default:
		return fmt.Errorf("histogram sample with suffix %q (want _bucket, _sum or _count)", suffix)
	}
}

// histKey normalizes a bucket/series label block to the label set minus le,
// so _bucket lines land in the same histCheck as their _sum and _count
// (which carry no le and therefore no leftover comma).
func histKey(labels string) string {
	key := leRE.ReplaceAllString(labels, "")
	key = strings.ReplaceAll(key, "{,", "{")
	key = strings.ReplaceAll(key, ",}", "}")
	key = strings.ReplaceAll(key, ",,", ",")
	if key == "{}" {
		return ""
	}
	return key
}

// finishFamily closes the current family, verifying histogram invariants
// that need the whole series (every label set saw +Inf, and _count equals
// the +Inf bucket).
func (st *scanState) finishFamily() error {
	if st.helpSeen != "" {
		return fmt.Errorf("HELP %s without a TYPE line", st.helpSeen)
	}
	if st.familyType == "histogram" {
		for key, hc := range st.hist {
			if !hc.infSeen {
				return fmt.Errorf("family %s%s: no le=\"+Inf\" bucket", st.family, key)
			}
			if !hc.hasCnt {
				return fmt.Errorf("family %s%s: missing _count", st.family, key)
			}
			if hc.count != hc.inf {
				return fmt.Errorf("family %s%s: _count %d != +Inf bucket %d", st.family, key, hc.count, hc.inf)
			}
		}
	}
	st.family, st.familyType = "", ""
	st.hist = nil
	return nil
}
