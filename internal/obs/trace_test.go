package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil *Trace is the disabled recorder: every method must no-op without
// panicking, and FromContext on an untraced context must return it.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	at := tr.StartSpan()
	if !at.IsZero() {
		t.Fatalf("nil StartSpan read the clock: %v", at)
	}
	tr.EndSpan(StageCanon, at)
	tr.AddSpan(StageParse, time.Now(), time.Millisecond)
	tr.MarkFromStart(StageParse)
	tr.SetFingerprint(1, 2)
	tr.SetLabel("x")
	if tr.ID() != 0 || tr.Forced() {
		t.Fatalf("nil trace reported ID=%d forced=%v", tr.ID(), tr.Forced())
	}
}

func TestFromContext(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("untraced context returned %v", got)
	}
	tr := NewTestTrace()
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

func TestSpanOverflowCounted(t *testing.T) {
	tr := NewTestTrace()
	at := time.Now()
	for i := 0; i < MaxSpans+7; i++ {
		tr.AddSpan(StageTransform, at, time.Microsecond)
	}
	snap := tr.snapshot()
	if len(snap.Spans) != MaxSpans {
		t.Fatalf("recorded %d spans, want %d", len(snap.Spans), MaxSpans)
	}
	if snap.DroppedSpans != 7 {
		t.Fatalf("DroppedSpans = %d, want 7", snap.DroppedSpans)
	}
}

// Concurrent span recording must neither race nor lose spans under MaxSpans.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTestTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := time.Now()
			for i := 0; i < 4; i++ {
				tr.AddSpan(StageExecute, at, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.snapshot().Spans); n != 32 {
		t.Fatalf("recorded %d spans, want 32", n)
	}
}

// The first fingerprint writer wins — a traced batch calls SetFingerprint
// once per member and the snapshot must stay coherent.
func TestSetFingerprintFirstWriterWins(t *testing.T) {
	tr := NewTestTrace()
	tr.SetFingerprint(0, 0) // all-zero is "unset", ignored
	tr.SetFingerprint(0xaaaa, 0xbbbb)
	tr.SetFingerprint(0x1111, 0x2222)
	snap := tr.snapshot()
	want := "000000000000aaaa000000000000bbbb"
	if snap.Fingerprint != want {
		t.Fatalf("fingerprint = %q, want %q", snap.Fingerprint, want)
	}
}

func TestStageTotalsAndBreakdown(t *testing.T) {
	tr := NewTestTrace()
	at := time.Now()
	tr.AddSpan(StageParse, at, 3*time.Microsecond)
	tr.AddSpan(StageTransform, at, 2*time.Microsecond)
	tr.AddSpan(StageTransform, at, 5*time.Microsecond)
	snap := tr.snapshot()
	totals, sum := snap.StageTotals()
	if totals["parse"] != 3000 || totals["transform"] != 7000 {
		t.Fatalf("totals = %v", totals)
	}
	if sum != 10000 {
		t.Fatalf("sum = %d, want 10000", sum)
	}
	b := snap.Breakdown()
	// Pipeline order: parse before transform.
	if !strings.Contains(b, "parse=3µs") || !strings.Contains(b, "transform=7µs") {
		t.Fatalf("breakdown = %q", b)
	}
	if strings.Index(b, "parse") > strings.Index(b, "transform") {
		t.Fatalf("breakdown not in pipeline order: %q", b)
	}
}

func TestStageNamesCoverAllStages(t *testing.T) {
	names := StageNames()
	if len(names) != int(numStages) {
		t.Fatalf("StageNames() has %d entries, want %d", len(names), numStages)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("stage %d has no wire name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
		if Stage(i).String() != n {
			t.Fatalf("Stage(%d).String() = %q, want %q", i, Stage(i).String(), n)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatalf("out-of-range stage = %q", Stage(200).String())
	}
}
