package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the exposition half of the package: a tiny hand-rolled
// metric registry rendering the OpenMetrics text format — no client
// library dependency, because every counter already exists as an atomic
// somewhere in the serving stack and only needs stable names and a
// renderer. Collectors are closures evaluated at scrape time.

// ContentType is the Content-Type of a rendered exposition.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricNamePattern is the contract every registered family name must
// match: prometheus-legal, and namespaced under the sqo_ prefix so the
// fleet's scrape configs can select this system's series with one matcher.
const MetricNamePattern = `^sqo_[a-z][a-z0-9_]*$`

var metricNameRE = regexp.MustCompile(MetricNamePattern)

// Sample is one scalar sample: pre-rendered label pairs (no braces; empty
// for an unlabeled series) and the value.
type Sample struct {
	Labels string
	Value  float64
}

// HistBucket is one cumulative histogram bucket. LE is the upper bound in
// seconds (math.Inf(1) for +Inf). An ExemplarID != 0 attaches an
// OpenMetrics exemplar referencing a trace.
type HistBucket struct {
	LE            float64
	Cumulative    int64
	ExemplarID    uint64
	ExemplarValue float64
}

// HistSample is one labeled histogram series: cumulative buckets ending in
// +Inf, plus sum and count.
type HistSample struct {
	Labels     string
	Buckets    []HistBucket
	SumSeconds float64
	Count      int64
}

type familyType uint8

const (
	typeCounter familyType = iota
	typeGauge
	typeHistogram
)

func (t familyType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name   string
	help   string
	typ    familyType
	scalar func(emit func(Sample))
	hist   func(emit func(HistSample))
}

// Registry holds metric families in registration order. Registration
// panics on an invalid or duplicate name — the name lint is enforced at
// the source, and a go test guard re-checks the rendered output.
type Registry struct {
	families []family
	names    map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(f family) {
	if !metricNameRE.MatchString(f.name) {
		panic(fmt.Sprintf("obs: metric name %q does not match %s", f.name, MetricNamePattern))
	}
	if strings.HasSuffix(f.name, "_total") || strings.HasSuffix(f.name, "_bucket") ||
		strings.HasSuffix(f.name, "_sum") || strings.HasSuffix(f.name, "_count") {
		panic(fmt.Sprintf("obs: metric family %q must be registered without the reserved suffix (the renderer appends it)", f.name))
	}
	if _, dup := r.names[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.names[f.name] = struct{}{}
	r.families = append(r.families, f)
}

// Counter registers a counter family; samples render as name_total.
func (r *Registry) Counter(name, help string, collect func(emit func(Sample))) {
	r.register(family{name: name, help: help, typ: typeCounter, scalar: collect})
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, collect func(emit func(Sample))) {
	r.register(family{name: name, help: help, typ: typeGauge, scalar: collect})
}

// Histogram registers a histogram family; samples render as name_bucket /
// name_sum / name_count.
func (r *Registry) Histogram(name, help string, collect func(emit func(HistSample))) {
	r.register(family{name: name, help: help, typ: typeHistogram, hist: collect})
}

// Names returns the registered family names, sorted — the lint surface.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Render writes the whole exposition in the OpenMetrics text format,
// families in registration order, terminated by # EOF.
func (r *Registry) Render(w io.Writer) error {
	for i := range r.families {
		if err := r.families[i].render(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (f *family) render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	var err error
	switch f.typ {
	case typeHistogram:
		f.hist(func(h HistSample) {
			if err != nil {
				return
			}
			err = renderHist(w, f.name, h)
		})
	default:
		suffix := ""
		if f.typ == typeCounter {
			suffix = "_total"
		}
		f.scalar(func(s Sample) {
			if err != nil {
				return
			}
			_, err = fmt.Fprintf(w, "%s%s%s %s\n", f.name, suffix, braced(s.Labels), fmtFloat(s.Value))
		})
	}
	return err
}

func renderHist(w io.Writer, name string, h HistSample) error {
	for _, b := range h.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = fmtFloat(b.LE)
		}
		labels := h.Labels
		if labels != "" {
			labels += ","
		}
		line := fmt.Sprintf("%s_bucket{%sle=%q} %d", name, labels, le, b.Cumulative)
		if b.ExemplarID != 0 {
			line += fmt.Sprintf(" # {trace_id=\"%d\"} %s", b.ExemplarID, fmtFloat(b.ExemplarValue))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(h.Labels), fmtFloat(h.SumSeconds)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(h.Labels), h.Count)
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label renders one label pair for Sample.Labels / HistSample.Labels.
func Label(k, v string) string { return k + "=" + strconv.Quote(v) }
