package frozen

import (
	"fmt"
	"testing"
)

func TestTableInsertFind(t *testing.T) {
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i*7)
	}
	tb := New(len(keys))
	for i, k := range keys {
		tb.Insert(HashString(k), int32(i))
	}
	for i, k := range keys {
		id, ok := tb.Find(HashString(k), func(id int32) bool { return keys[id] == k })
		if !ok || int(id) != i {
			t.Fatalf("Find(%q) = %d, %v; want %d, true", k, id, ok, i)
		}
	}
	for _, k := range []string{"absent", "key-1", "key-3500"} {
		if _, ok := tb.Find(HashString(k), func(id int32) bool { return keys[id] == k }); ok {
			t.Fatalf("Find(%q) unexpectedly hit", k)
		}
	}
}

func TestZeroTableMisses(t *testing.T) {
	var tb Table
	if !tb.Empty() {
		t.Fatal("zero Table not Empty")
	}
	if _, ok := tb.Find(HashString("x"), func(int32) bool { return true }); ok {
		t.Fatal("zero Table Find hit")
	}
}

func TestFromSlotsValidation(t *testing.T) {
	tb := New(3)
	tb.Insert(HashString("a"), 0)
	tb.Insert(HashString("b"), 1)
	tb.Insert(HashString("c"), 2)
	if _, ok := FromSlots(tb.Slots(), 3); !ok {
		t.Fatal("valid slots rejected")
	}
	if _, ok := FromSlots(nil, 0); ok {
		t.Fatal("empty slots accepted")
	}
	if _, ok := FromSlots(make([]int32, 7), 3); ok {
		t.Fatal("non-power-of-two slots accepted")
	}
	bad := append([]int32(nil), tb.Slots()...)
	bad[0] = 99
	if _, ok := FromSlots(bad, 3); ok {
		t.Fatal("out-of-range ID accepted")
	}
}

func TestFullTableFindTerminates(t *testing.T) {
	// A corrupted slot array with no empty slots must not loop forever.
	slots := make([]int32, 8)
	for i := range slots {
		slots[i] = 0
	}
	tb := Table{slots: slots}
	if _, ok := tb.Find(12345, func(int32) bool { return false }); ok {
		t.Fatal("unexpected hit")
	}
}

func TestCompositeHashSeparators(t *testing.T) {
	h1 := AddString(AddByte(AddString(Seed(), "ab"), 0xff), "c")
	h2 := AddString(AddByte(AddString(Seed(), "a"), 0xff), "bc")
	if h1 == h2 {
		t.Fatal("separator failed to split composite keys")
	}
}
