// Package frozen implements the serializable open-addressing hash tables of
// the snapshot format: a symbol lookup structure that is built once (at
// snapshot-write time), stored in the snapshot file as a plain []int32 slot
// array, and probed directly after a restore — no per-entry hashing, map
// insertion or allocation on the warm-boot path. This is what lets a
// restored symbol space answer lookups immediately at O(read) load cost,
// where rebuilding Go maps for the same symbols would alone cost several
// multiples of the whole warm-boot budget.
//
// A Table stores only entry IDs; the keys live in the owner's backing arrays
// (interned strings, pooled predicates), and equality is checked through a
// caller-supplied callback. Hashing is FNV-1a over the key bytes, with the
// owner responsible for feeding fields in a fixed order (Seed / AddString /
// AddByte). Slot counts are powers of two at least twice the entry count, so
// linear probing stays short; probes are bounded by the slot count, which
// keeps Find total even on a corrupted slot array.
package frozen

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Seed returns the initial hash state.
func Seed() uint64 { return fnvOffset64 }

// AddString folds a string into the hash state.
func AddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// AddByte folds one byte into the hash state; used as a field separator so
// composite keys ("ab","c") and ("a","bc") hash apart.
func AddByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// HashString hashes a standalone string key.
func HashString(s string) uint64 { return AddString(Seed(), s) }

// empty marks an unoccupied slot.
const empty = -1

// Table is an immutable open-addressing hash table over externally stored
// keys. The zero Table is empty and reports every Find as a miss.
type Table struct {
	slots []int32
}

// New returns a table sized for n entries: power-of-two slots, load factor
// at most one half.
func New(n int) Table {
	size := 8
	for size < 2*n {
		size *= 2
	}
	slots := make([]int32, size)
	for i := range slots {
		slots[i] = empty
	}
	return Table{slots: slots}
}

// FromSlots wraps a persisted slot array. ok is false when the array cannot
// be a table New produced (zero or non-power-of-two length, or an ID outside
// [-1, n)); callers treat that as snapshot corruption.
func FromSlots(slots []int32, n int) (Table, bool) {
	if len(slots) == 0 || len(slots)&(len(slots)-1) != 0 {
		return Table{}, false
	}
	for _, id := range slots {
		if id < empty || int(id) >= n {
			return Table{}, false
		}
	}
	return Table{slots: slots}, true
}

// Slots exposes the slot array for serialization; treat as read-only.
func (t Table) Slots() []int32 { return t.slots }

// Empty reports whether the table holds no slots (the zero Table).
func (t Table) Empty() bool { return len(t.slots) == 0 }

// Insert stores id under hash h. Keys must be distinct and the table must
// have been sized (New) for the total entry count; Insert never grows.
func (t Table) Insert(h uint64, id int32) {
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if t.slots[i] == empty {
			t.slots[i] = id
			return
		}
	}
}

// Find probes for a key with hash h, confirming candidate IDs through eq
// (hash collisions make the confirmation mandatory). It returns the stored
// ID and whether the key was present. Probing is bounded by the slot count.
func (t Table) Find(h uint64, eq func(id int32) bool) (int32, bool) {
	if len(t.slots) == 0 {
		return empty, false
	}
	mask := uint64(len(t.slots) - 1)
	for i, n := h&mask, 0; n < len(t.slots); i, n = (i+1)&mask, n+1 {
		id := t.slots[i]
		if id == empty {
			return empty, false
		}
		if eq(id) {
			return id, true
		}
	}
	return empty, false
}
