package core

import (
	"math/rand"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/value"
)

// keepAll retains every optional predicate; used to reproduce the paper's
// worked example, where cargo.desc = "frozen food" is kept.
type keepAll struct{}

func (keepAll) Profitable(*query.Query, predicate.Predicate) bool    { return true }
func (keepAll) ClassEliminationBeneficial(*query.Query, string) bool { return true }

// dropAll discards every optional predicate and forbids class elimination.
type dropAll struct{}

func (dropAll) Profitable(*query.Query, predicate.Predicate) bool    { return false }
func (dropAll) ClassEliminationBeneficial(*query.Query, string) bool { return false }

// paperSchema builds the Figure 2.1 classes needed by the worked example.
func paperSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("supplier",
			schema.Attribute{Name: "name", Type: value.KindString, Indexed: true},
			schema.Attribute{Name: "address", Type: value.KindString}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt}).
		Class("vehicle",
			schema.Attribute{Name: "vehicle#", Type: value.KindString, Indexed: true},
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "class", Type: value.KindInt}).
		Class("driver",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "licenseClass", Type: value.KindInt},
			schema.Attribute{Name: "rank", Type: value.KindString}).
		Relationship("supplies", "supplier", "cargo", schema.OneToMany).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		Relationship("drives", "driver", "vehicle", schema.ManyToMany).
		MustBuild()
}

func paperC1() *constraint.Constraint {
	return constraint.New("c1",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("frozen food")))
}

func paperC2() *constraint.Constraint {
	return constraint.New("c2",
		[]predicate.Predicate{predicate.Eq("cargo", "desc", value.String("frozen food"))},
		[]string{"supplies"},
		predicate.Eq("supplier", "name", value.String("SFI")))
}

// paperQuery is the sample query of Figure 2.3.
func paperQuery() *query.Query {
	return query.New("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")
}

func newPaperOptimizer(t *testing.T, opts Options) *Optimizer {
	t.Helper()
	s := paperSchema(t)
	cat := constraint.MustCatalog(paperC1(), paperC2())
	if err := cat.Validate(s); err != nil {
		t.Fatalf("catalog should validate: %v", err)
	}
	if opts.Cost == nil {
		opts.Cost = keepAll{}
	}
	return NewOptimizer(s, CatalogSource{Catalog: cat}, opts)
}

// TestPaperWorkedExample replays Section 3.5 end to end and checks the final
// query of Figure 2.3: supplier eliminated, supplier.name = "SFI" dropped,
// cargo.desc = "frozen food" introduced and kept.
func TestPaperWorkedExample(t *testing.T) {
	o := newPaperOptimizer(t, Options{})
	res, err := o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	got := res.Optimized
	if got.HasClass("supplier") {
		t.Errorf("supplier should be eliminated: %s", got)
	}
	if !got.HasClass("cargo") || !got.HasClass("vehicle") {
		t.Errorf("cargo and vehicle must remain: %s", got)
	}
	if got.HasRelationship("supplies") || !got.HasRelationship("collects") {
		t.Errorf("relationships wrong: %s", got)
	}

	wantSelects := map[string]bool{
		predicate.Eq("vehicle", "desc", value.String("refrigerated truck")).Key(): true,
		predicate.Eq("cargo", "desc", value.String("frozen food")).Key():          true,
	}
	if len(got.Selects) != 2 {
		t.Fatalf("selects = %v, want 2 predicates", got.Selects)
	}
	for _, p := range got.Selects {
		if !wantSelects[p.Key()] {
			t.Errorf("unexpected select %s", p)
		}
	}

	// Final tags per Section 3.5: p1 imperative, p2 and p3 optional.
	p1 := predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))
	p2 := predicate.Eq("supplier", "name", value.String("SFI"))
	p3 := predicate.Eq("cargo", "desc", value.String("frozen food"))
	if res.FinalTags()[p1.Key()] != TagImperative {
		t.Errorf("p1 tag = %v, want imperative", res.FinalTags()[p1.Key()])
	}
	if res.FinalTags()[p2.Key()] != TagOptional {
		t.Errorf("p2 tag = %v, want optional", res.FinalTags()[p2.Key()])
	}
	if res.FinalTags()[p3.Key()] != TagOptional {
		t.Errorf("p3 tag = %v, want optional", res.FinalTags()[p3.Key()])
	}

	// Trace: introduction via c1, then elimination via c2, then the class
	// elimination of supplier.
	var kinds []TransformKind
	var ids []string
	for _, tr := range res.Trace {
		kinds = append(kinds, tr.Kind)
		ids = append(ids, tr.Constraint)
	}
	if len(res.Trace) < 3 {
		t.Fatalf("trace too short: %v", res.Trace)
	}
	if kinds[0] != TransformIntroduction || ids[0] != "c1" {
		t.Errorf("first transformation = %v by %s, want introduction by c1", kinds[0], ids[0])
	}
	if kinds[1] != TransformElimination || ids[1] != "c2" {
		t.Errorf("second transformation = %v by %s, want elimination by c2", kinds[1], ids[1])
	}
	found := false
	for _, tr := range res.Trace {
		if tr.Kind == TransformClassElimination && tr.Class == "supplier" {
			found = true
		}
	}
	if !found {
		t.Error("class elimination of supplier missing from trace")
	}

	// Stats: C = {c1, c2}, P = {p1, p2, p3}, two fires.
	if res.Stats.RelevantConstraints != 2 {
		t.Errorf("RelevantConstraints = %d, want 2", res.Stats.RelevantConstraints)
	}
	if res.Stats.Predicates != 3 {
		t.Errorf("Predicates = %d, want 3", res.Stats.Predicates)
	}
	if res.Stats.Fires != 2 {
		t.Errorf("Fires = %d, want 2", res.Stats.Fires)
	}
	if res.Stats.Ops <= 0 || res.Stats.Duration <= 0 {
		t.Errorf("Stats not populated: %+v", res.Stats)
	}

	// The input query must be untouched.
	if !paperQuery().Equal(res.Original) {
		t.Error("Optimize mutated its input")
	}
}

func TestIntraNonIndexedConsequentBecomesRedundant(t *testing.T) {
	// c4-style intra-class constraint: driver.rank is not indexed, so
	// eliminating it marks it redundant and it vanishes from the query.
	s := paperSchema(t)
	c := constraint.New("c4", nil, nil,
		predicate.Eq("driver", "rank", value.String("research staff member")))
	o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)}, Options{Cost: keepAll{}})
	q := query.New("driver").
		AddProject("driver", "name").
		AddSelect(predicate.Eq("driver", "rank", value.String("research staff member")))
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Optimized.Selects) != 0 {
		t.Errorf("redundant predicate should be dropped: %s", res.Optimized)
	}
	key := predicate.Eq("driver", "rank", value.String("research staff member")).Key()
	if res.FinalTags()[key] != TagRedundant {
		t.Errorf("tag = %v, want redundant", res.FinalTags()[key])
	}
}

func TestIntraIndexedConsequentBecomesOptional(t *testing.T) {
	// Intra-class constraint whose consequent is on an indexed attribute:
	// Table 3.1 says optional, and the (keepAll) cost model retains it.
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "rank", Type: value.KindString},
			schema.Attribute{Name: "grade", Type: value.KindInt, Indexed: true}).
		MustBuild()
	c := constraint.New("cg",
		[]predicate.Predicate{predicate.Eq("emp", "rank", value.String("mgr"))},
		nil,
		predicate.Eq("emp", "grade", value.Int(9)))
	o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)}, Options{Cost: keepAll{}})

	// Case 1: consequent in query -> elimination lowers it to optional.
	q := query.New("emp").
		AddProject("emp", "rank").
		AddSelect(predicate.Eq("emp", "rank", value.String("mgr"))).
		AddSelect(predicate.Eq("emp", "grade", value.Int(9)))
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	key := predicate.Eq("emp", "grade", value.Int(9)).Key()
	if res.FinalTags()[key] != TagOptional {
		t.Errorf("tag = %v, want optional (indexed intra consequent)", res.FinalTags()[key])
	}
	if len(res.Optimized.Selects) != 2 {
		t.Errorf("optional indexed predicate should be kept: %s", res.Optimized)
	}

	// Case 2: consequent absent -> index introduction brings it in.
	q2 := query.New("emp").
		AddProject("emp", "rank").
		AddSelect(predicate.Eq("emp", "rank", value.String("mgr")))
	res2, err := o.Optimize(q2)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res2.FinalTags()[key] != TagOptional {
		t.Errorf("introduced tag = %v, want optional", res2.FinalTags()[key])
	}
	if len(res2.Optimized.Selects) != 2 {
		t.Errorf("index introduction should add the predicate: %s", res2.Optimized)
	}
}

func TestIntraNonIndexedIntroductionStaysOut(t *testing.T) {
	// Table 3.2: intra-class introduction of a non-indexed predicate is
	// tagged redundant — it never materializes in the final query.
	s := paperSchema(t)
	c := constraint.New("cx",
		[]predicate.Predicate{predicate.Eq("driver", "name", value.String("bob"))},
		nil,
		predicate.Eq("driver", "rank", value.String("chief")))
	o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)}, Options{Cost: keepAll{}})
	q := query.New("driver").
		AddProject("driver", "licenseClass").
		AddSelect(predicate.Eq("driver", "name", value.String("bob")))
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Optimized.Selects) != 1 {
		t.Errorf("non-indexed intra introduction must not surface: %s", res.Optimized)
	}
	key := predicate.Eq("driver", "rank", value.String("chief")).Key()
	if tag, ok := res.FinalTags()[key]; !ok || tag != TagRedundant {
		t.Errorf("introduced-redundant tag = %v, %v", tag, ok)
	}
}

// TestRedundantIntroductionEnablesChain checks the paper's column update: a
// predicate introduced even as redundant makes AbsentAntecedent cells
// present, enabling further constraints.
func TestRedundantIntroductionEnablesChain(t *testing.T) {
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindInt},
			schema.Attribute{Name: "c", Type: value.KindInt, Indexed: true}).
		MustBuild()
	// ca: a=1 -> b=2 (non-indexed: introduced redundant)
	// cb: b=2 -> c=3 (indexed: introduced optional)
	ca := constraint.New("ca",
		[]predicate.Predicate{predicate.Eq("emp", "a", value.Int(1))},
		nil, predicate.Eq("emp", "b", value.Int(2)))
	cb := constraint.New("cb",
		[]predicate.Predicate{predicate.Eq("emp", "b", value.Int(2))},
		nil, predicate.Eq("emp", "c", value.Int(3)))
	o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(ca, cb)},
		Options{Cost: keepAll{}, DisableImpliedAntecedents: true})
	q := query.New("emp").
		AddProject("emp", "a").
		AddSelect(predicate.Eq("emp", "a", value.Int(1)))
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	keyC := predicate.Eq("emp", "c", value.Int(3)).Key()
	if res.FinalTags()[keyC] != TagOptional {
		t.Errorf("chained introduction failed: tags = %v", res.FinalTags())
	}
	// b=2 itself stays redundant and out of the query.
	found := false
	for _, p := range res.Optimized.Selects {
		if p.Key() == keyC {
			found = true
		}
		if p.Key() == predicate.Eq("emp", "b", value.Int(2)).Key() {
			t.Error("redundant intermediate must not surface")
		}
	}
	if !found {
		t.Errorf("c=3 should be in the final query: %s", res.Optimized)
	}
}

// TestOrderIndependence shuffles the constraint catalog and checks that the
// outcome never changes — the paper's headline claim.
func TestOrderIndependence(t *testing.T) {
	s := paperSchema(t)
	base := []*constraint.Constraint{
		paperC1(), paperC2(),
		constraint.New("c3", nil, []string{"drives"},
			predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class")),
		constraint.New("c4", nil, nil,
			predicate.Eq("driver", "rank", value.String("research staff member"))),
		constraint.New("c6",
			[]predicate.Predicate{predicate.Eq("cargo", "desc", value.String("frozen food"))},
			nil,
			predicate.Sel("cargo", "quantity", predicate.LE, value.Int(500))),
	}
	q := query.New("supplier", "cargo", "vehicle", "driver").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddSelect(predicate.Sel("cargo", "quantity", predicate.LE, value.Int(500))).
		AddRelationship("collects").
		AddRelationship("supplies").
		AddRelationship("drives")

	var wantSig string
	var wantTags map[string]Tag
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		shuffled := append([]*constraint.Constraint(nil), base...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		cat := constraint.MustCatalog(shuffled...)
		o := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: keepAll{}})
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sig := res.Optimized.Signature()
		if trial == 0 {
			wantSig = sig
			wantTags = res.FinalTags()
			continue
		}
		if sig != wantSig {
			t.Fatalf("trial %d: signature changed:\n%s\nvs\n%s", trial, sig, wantSig)
		}
		for k, v := range wantTags {
			if res.FinalTags()[k] != v {
				t.Fatalf("trial %d: tag of %s changed: %v vs %v", trial, k, res.FinalTags()[k], v)
			}
		}
	}
}

// TestIdempotence: optimizing an optimized query changes nothing further.
func TestIdempotence(t *testing.T) {
	for _, cost := range []CostModel{keepAll{}, nil} { // nil -> HeuristicCost
		o := newPaperOptimizer(t, Options{Cost: cost})
		res1, err := o.Optimize(paperQuery())
		if err != nil {
			t.Fatalf("first Optimize: %v", err)
		}
		res2, err := o.Optimize(res1.Optimized)
		if err != nil {
			t.Fatalf("second Optimize: %v", err)
		}
		if !res1.Optimized.Equal(res2.Optimized) {
			t.Errorf("not idempotent:\nfirst:  %s\nsecond: %s", res1.Optimized, res2.Optimized)
		}
	}
}

func TestBudgetLimitsTransformations(t *testing.T) {
	o := newPaperOptimizer(t, Options{Budget: 1})
	res, err := o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Stats.Fires != 1 {
		t.Errorf("Fires = %d, want exactly the budget", res.Stats.Fires)
	}
	// Only c1's introduction happened, so p2's tag never left imperative.
	p2 := predicate.Eq("supplier", "name", value.String("SFI"))
	if res.FinalTags()[p2.Key()] != TagImperative {
		t.Errorf("p2 tag = %v, want imperative under budget", res.FinalTags()[p2.Key()])
	}
	// Formulation-time class elimination is not a queue transformation and
	// still fires: the chase derives p2 from the introduced p3, so the
	// budgeted run reaches the same final query as the unlimited one.
	if res.Optimized.HasClass("supplier") {
		t.Error("supplier should still be eliminated via derivability under budget")
	}
}

func TestPriorities(t *testing.T) {
	// Two independently fireable constraints: an elimination and an index
	// introduction. Under FIFO the elimination (earlier row) fires first;
	// with priorities the index introduction does.
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "rank", Type: value.KindString},
			schema.Attribute{Name: "grade", Type: value.KindInt, Indexed: true},
			schema.Attribute{Name: "unit", Type: value.KindString}).
		MustBuild()
	elim := constraint.New("celim",
		[]predicate.Predicate{predicate.Eq("emp", "rank", value.String("mgr"))},
		nil, predicate.Eq("emp", "unit", value.String("hq")))
	intro := constraint.New("cintro",
		[]predicate.Predicate{predicate.Eq("emp", "rank", value.String("mgr"))},
		nil, predicate.Eq("emp", "grade", value.Int(9)))
	cat := constraint.MustCatalog(elim, intro)
	q := query.New("emp").
		AddProject("emp", "rank").
		AddSelect(predicate.Eq("emp", "rank", value.String("mgr"))).
		AddSelect(predicate.Eq("emp", "unit", value.String("hq")))

	fifo := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: keepAll{}})
	resF, err := fifo.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if resF.Trace[0].Constraint != "celim" {
		t.Errorf("FIFO should fire celim first, got %s", resF.Trace[0].Constraint)
	}

	prio := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: keepAll{}, UsePriorities: true})
	resP, err := prio.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if resP.Trace[0].Constraint != "cintro" {
		t.Errorf("priority queue should fire the index introduction first, got %s", resP.Trace[0].Constraint)
	}
	// Outcome (not order) must be identical — order independence again.
	if !resF.Optimized.Equal(resP.Optimized) {
		t.Errorf("priorities changed the outcome:\n%s\nvs\n%s", resF.Optimized, resP.Optimized)
	}
}

func TestRuleGating(t *testing.T) {
	p2 := predicate.Eq("supplier", "name", value.String("SFI"))
	p3 := predicate.Eq("cargo", "desc", value.String("frozen food"))

	// Introduction disabled: c1 cannot introduce p3, so c2 cannot fire and
	// p2 stays imperative.
	o := newPaperOptimizer(t, Options{Rules: RuleElimination | RuleClassElimination})
	res, err := o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if _, ok := res.FinalTags()[p3.Key()]; ok && res.FinalTags()[p3.Key()] != TagImperative {
		t.Errorf("p3 should not be introduced: %v", res.FinalTags())
	}
	if res.FinalTags()[p2.Key()] != TagImperative {
		t.Errorf("p2 tag = %v, want imperative without introduction", res.FinalTags()[p2.Key()])
	}

	// Elimination disabled: p2 keeps its imperative tag (no restriction
	// elimination fires), yet class elimination is still allowed to drop
	// supplier because the chase proves p2 derivable from the introduced
	// p3 — which is pinned imperative as the witness.
	o = newPaperOptimizer(t, Options{Rules: RuleIntroduction | RuleClassElimination})
	res, err = o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.FinalTags()[p3.Key()] != TagOptional {
		t.Errorf("p3 tag = %v, want optional (pinned witnesses keep their tag)", res.FinalTags()[p3.Key()])
	}
	if res.Optimized.HasClass("supplier") {
		t.Error("supplier should be eliminated via derivability even with restriction elimination off")
	}
	found := false
	for _, p := range res.Optimized.Selects {
		if p.Key() == p3.Key() {
			found = true
		}
	}
	if !found {
		t.Error("the pinned witness p3 must appear in the final query")
	}

	// Class elimination disabled: everything else happens, supplier stays.
	o = newPaperOptimizer(t, Options{Rules: RuleElimination | RuleIntroduction})
	res, err = o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !res.Optimized.HasClass("supplier") {
		t.Error("supplier must survive with class elimination off")
	}
	// p2 became optional and keepAll retains it.
	if res.FinalTags()[p2.Key()] != TagOptional {
		t.Errorf("p2 tag = %v, want optional", res.FinalTags()[p2.Key()])
	}
}

func TestImpliedAntecedents(t *testing.T) {
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "grade", Type: value.KindInt},
			schema.Attribute{Name: "unit", Type: value.KindString, Indexed: true}).
		MustBuild()
	// grade > 3 -> unit = "hq"; query has grade = 5, which implies grade > 3.
	c := constraint.New("ci",
		[]predicate.Predicate{predicate.Sel("emp", "grade", predicate.GT, value.Int(3))},
		nil, predicate.Eq("emp", "unit", value.String("hq")))
	q := query.New("emp").
		AddProject("emp", "grade").
		AddSelect(predicate.Eq("emp", "grade", value.Int(5)))
	key := predicate.Eq("emp", "unit", value.String("hq")).Key()

	on := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)}, Options{Cost: keepAll{}})
	res, err := on.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.FinalTags()[key] != TagOptional {
		t.Errorf("implication matching should fire ci: tags = %v", res.FinalTags())
	}

	off := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)},
		Options{Cost: keepAll{}, DisableImpliedAntecedents: true})
	res, err = off.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if _, ok := res.FinalTags()[key]; ok {
		t.Errorf("verbatim matching must not fire ci: tags = %v", res.FinalTags())
	}
}

func TestContradictionDetection(t *testing.T) {
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "grade", Type: value.KindInt},
			schema.Attribute{Name: "unit", Type: value.KindString}).
		MustBuild()
	// grade = 5 -> unit = "hq"; query asks grade = 5 AND unit = "lab".
	c := constraint.New("cc",
		[]predicate.Predicate{predicate.Eq("emp", "grade", value.Int(5))},
		nil, predicate.Eq("emp", "unit", value.String("hq")))
	q := query.New("emp").
		AddProject("emp", "grade").
		AddSelect(predicate.Eq("emp", "grade", value.Int(5))).
		AddSelect(predicate.Eq("emp", "unit", value.String("lab")))

	on := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)},
		Options{Cost: keepAll{}, DetectContradictions: true})
	res, err := on.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !res.EmptyResult {
		t.Error("contradiction should prove the result empty")
	}

	off := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)}, Options{Cost: keepAll{}})
	res, err = off.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.EmptyResult {
		t.Error("detection disabled: EmptyResult must stay false")
	}
}

func TestSubsumption(t *testing.T) {
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "grade", Type: value.KindInt, Indexed: true},
			schema.Attribute{Name: "unit", Type: value.KindString}).
		MustBuild()
	// unit = "hq" -> grade > 5 (indexed, so the intra-class introduction is
	// tagged optional per Table 3.2). Query has grade > 3 and unit = "hq":
	// the introduced grade > 5 subsumes grade > 3.
	c := constraint.New("cs",
		[]predicate.Predicate{predicate.Eq("emp", "unit", value.String("hq"))},
		nil, predicate.Sel("emp", "grade", predicate.GT, value.Int(5)))
	q := query.New("emp").
		AddProject("emp", "unit").
		AddSelect(predicate.Sel("emp", "grade", predicate.GT, value.Int(3))).
		AddSelect(predicate.Eq("emp", "unit", value.String("hq")))

	o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)}, Options{Cost: keepAll{}})
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	weak := predicate.Sel("emp", "grade", predicate.GT, value.Int(3))
	strong := predicate.Sel("emp", "grade", predicate.GT, value.Int(5))
	var haveWeak, haveStrong bool
	for _, p := range res.Optimized.Selects {
		switch p.Key() {
		case weak.Key():
			haveWeak = true
		case strong.Key():
			haveStrong = true
		}
	}
	if haveWeak || !haveStrong {
		t.Errorf("subsumption should keep only grade > 5: %s", res.Optimized)
	}

	noSub := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(c)},
		Options{Cost: keepAll{}, DisableSubsumption: true})
	res, err = noSub.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Optimized.Selects) != 3 {
		t.Errorf("without subsumption all three predicates stay: %s", res.Optimized)
	}
}

func TestClassEliminationSafety(t *testing.T) {
	// Partial participation: not every cargo has a supplier, so supplier
	// must not be eliminated even when its predicate is optional.
	s := schema.NewBuilder().
		Class("supplier", schema.Attribute{Name: "name", Type: value.KindString}).
		Class("cargo", schema.Attribute{Name: "desc", Type: value.KindString}).
		Class("vehicle", schema.Attribute{Name: "desc", Type: value.KindString}).
		PartialRelationship("supplies", "supplier", "cargo", schema.OneToMany, true, false).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		MustBuild()
	cat := constraint.MustCatalog(paperC1(), paperC2())
	o := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: keepAll{}})
	q := query.New("supplier", "cargo", "vehicle").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !res.Optimized.HasClass("supplier") {
		t.Error("partial participation: supplier must not be eliminated")
	}
}

func TestClassEliminationCascade(t *testing.T) {
	// a - b - c chain, projecting only from a, no predicates: c is dangling,
	// and after c goes, b dangles too.
	s := schema.NewBuilder().
		Class("a", schema.Attribute{Name: "x", Type: value.KindInt}).
		Class("b", schema.Attribute{Name: "x", Type: value.KindInt}).
		Class("c", schema.Attribute{Name: "x", Type: value.KindInt}).
		Relationship("ab", "a", "b", schema.ManyToOne).
		Relationship("bc", "b", "c", schema.ManyToOne).
		MustBuild()
	o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog()}, Options{Cost: keepAll{}})
	q := query.New("a", "b", "c").
		AddProject("a", "x").
		AddRelationship("ab").
		AddRelationship("bc")
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Optimized.HasClass("b") || res.Optimized.HasClass("c") {
		t.Errorf("cascade elimination failed: %s", res.Optimized)
	}
	if len(res.Optimized.Relationships) != 0 {
		t.Errorf("relationships should be gone: %s", res.Optimized)
	}
}

func TestClassEliminationCostGate(t *testing.T) {
	o := newPaperOptimizer(t, Options{Cost: dropAll{}})
	res, err := o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !res.Optimized.HasClass("supplier") {
		t.Error("cost model vetoed elimination; supplier must stay")
	}
	// dropAll also discards the optional predicates.
	p3 := predicate.Eq("cargo", "desc", value.String("frozen food"))
	if res.FinalTags()[p3.Key()] != TagRedundant {
		t.Errorf("p3 should be demoted to redundant by dropAll: %v", res.FinalTags()[p3.Key()])
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	o := newPaperOptimizer(t, Options{})
	q := query.New("ghost")
	if _, err := o.Optimize(q); err == nil {
		t.Error("invalid query should be rejected")
	}
}

func TestIrrelevantConstraintsFilteredDefensively(t *testing.T) {
	// A source that returns everything, relevant or not.
	s := paperSchema(t)
	cat := constraint.MustCatalog(paperC1(), paperC2(),
		constraint.New("c4", nil, nil,
			predicate.Eq("driver", "rank", value.String("research staff member"))))
	everything := allSource{cat}
	o := NewOptimizer(s, everything, Options{Cost: keepAll{}})
	res, err := o.Optimize(paperQuery())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Stats.RelevantConstraints != 2 {
		t.Errorf("RelevantConstraints = %d, want 2 (c4 filtered)", res.Stats.RelevantConstraints)
	}
}

type allSource struct{ cat *constraint.Catalog }

func (s allSource) Retrieve(*query.Query) []*constraint.Constraint { return s.cat.All() }

func TestTagAndCellStrings(t *testing.T) {
	if TagRedundant.String() != "redundant" || TagOptional.String() != "optional" ||
		TagImperative.String() != "imperative" {
		t.Error("Tag.String broken")
	}
	for cell, want := range map[Cell]string{
		CellNone: "_", CellAbsentAntecedent: "AbsentAntecedent",
		CellPresentAntecedent: "PresentAntecedent", CellAbsentConsequent: "AbsentConsequent",
		CellImperative: "Imperative", CellOptional: "Optional", CellRedundant: "Redundant",
	} {
		if cell.String() != want {
			t.Errorf("Cell(%d).String() = %q, want %q", cell, cell.String(), want)
		}
	}
	for kind, want := range map[TransformKind]string{
		TransformElimination:      "restriction-elimination",
		TransformIntroduction:     "restriction-introduction",
		TransformDiscardOptional:  "discard-optional",
		TransformSubsumption:      "subsumption",
		TransformClassElimination: "class-elimination",
	} {
		if kind.String() != want {
			t.Errorf("TransformKind(%d) = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestHeuristicCost(t *testing.T) {
	s := paperSchema(t)
	h := HeuristicCost{Schema: s}
	if !h.Profitable(nil, predicate.Eq("supplier", "name", value.String("x"))) {
		t.Error("indexed attribute should be profitable")
	}
	if h.Profitable(nil, predicate.Eq("cargo", "desc", value.String("x"))) {
		t.Error("non-indexed attribute should not be profitable")
	}
	if !h.Profitable(nil, predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class")) {
		t.Error("join predicates default to profitable")
	}
	if !h.ClassEliminationBeneficial(nil, "supplier") {
		t.Error("class elimination defaults to beneficial")
	}
}

func TestRuleSetHas(t *testing.T) {
	if !AllRules.Has(RuleElimination) || !AllRules.Has(RuleIntroduction) || !AllRules.Has(RuleClassElimination) {
		t.Error("AllRules must contain every rule")
	}
	if RuleElimination.Has(RuleIntroduction) {
		t.Error("Has must test the specific bit")
	}
}

// TestTwoConstraintsSameConsequentConverge: an inter- and an intra-class
// constraint targeting the same predicate must converge to the lower tag
// regardless of firing order (monotonicity).
func TestTwoConstraintsSameConsequentConverge(t *testing.T) {
	s := schema.NewBuilder().
		Class("emp",
			schema.Attribute{Name: "rank", Type: value.KindString},
			schema.Attribute{Name: "unit", Type: value.KindString}).
		Class("dept", schema.Attribute{Name: "name", Type: value.KindString}).
		Relationship("belongsTo", "emp", "dept", schema.ManyToOne).
		MustBuild()
	target := predicate.Eq("emp", "unit", value.String("hq"))
	inter := constraint.New("cInter",
		[]predicate.Predicate{predicate.Eq("dept", "name", value.String("dev"))},
		[]string{"belongsTo"}, target)
	intra := constraint.New("cIntra",
		[]predicate.Predicate{predicate.Eq("emp", "rank", value.String("mgr"))},
		nil, target)
	q := query.New("emp", "dept").
		AddProject("emp", "rank").
		AddSelect(predicate.Eq("emp", "rank", value.String("mgr"))).
		AddSelect(predicate.Eq("dept", "name", value.String("dev"))).
		AddSelect(target).
		AddRelationship("belongsTo")

	for _, order := range [][]*constraint.Constraint{{inter, intra}, {intra, inter}} {
		cat := constraint.MustCatalog(order...)
		o := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: keepAll{}})
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		if res.FinalTags()[target.Key()] != TagRedundant {
			t.Errorf("order %s/%s: tag = %v, want redundant (the lower of the two)",
				order[0].ID, order[1].ID, res.FinalTags()[target.Key()])
		}
	}
}
