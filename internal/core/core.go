// Package core implements the paper's semantic query optimization algorithm
// (Section 3): the predicate tagging scheme, the transformation table, the
// transformation queue, tentative transformation, and final query
// formulation.
//
// The quintessence of the algorithm — quoting the paper — "is to avoid
// physically modifying queries during transformation, but to re-classify the
// predicates using existing classifications of the predicates and relevant
// semantic constraints". Every transformation only lowers predicate tags
// inside the table; the output query is formulated once, at the end, from the
// final tags. Because tag changes are monotone (Redundant < Optional <
// Imperative and tags only move down), the result is independent of the
// order in which constraints fire, and the whole transformation step runs in
// O(m·n) for m predicates and n relevant constraints.
package core

import (
	"fmt"
	"sync"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/symtab"
)

// Tag is the classification of a predicate in a query: the paper's tp(p).
// The numeric order matters: transformations only ever lower a tag.
type Tag uint8

const (
	// TagRedundant marks predicates that affect neither the result nor
	// execution efficiency; they are dropped at formulation.
	TagRedundant Tag = iota
	// TagOptional marks predicates whose presence cannot change the
	// result but may change execution efficiency; the cost model decides
	// whether to retain them.
	TagOptional
	// TagImperative marks predicates whose removal would change the
	// result; they are always retained.
	TagImperative
)

// String returns the paper's name for the tag.
func (t Tag) String() string {
	switch t {
	case TagRedundant:
		return "redundant"
	case TagOptional:
		return "optional"
	case TagImperative:
		return "imperative"
	default:
		return fmt.Sprintf("tag(%d)", t)
	}
}

// Cell is one entry t(cᵢ, pⱼ) of the transformation table.
type Cell uint8

const (
	// CellNone: the predicate does not appear in the constraint ("_").
	CellNone Cell = iota
	// CellAbsentAntecedent: antecedent of the constraint, not in the query.
	CellAbsentAntecedent
	// CellPresentAntecedent: antecedent of the constraint, in the query
	// (or implied by it once introductions have happened).
	CellPresentAntecedent
	// CellAbsentConsequent: consequent of the constraint, not in the query.
	CellAbsentConsequent
	// CellImperative, CellOptional, CellRedundant: consequent of the
	// constraint, present, carrying the predicate's current tag.
	CellImperative
	CellOptional
	CellRedundant
)

// String renders the cell the way the paper's worked example does.
func (c Cell) String() string {
	switch c {
	case CellNone:
		return "_"
	case CellAbsentAntecedent:
		return "AbsentAntecedent"
	case CellPresentAntecedent:
		return "PresentAntecedent"
	case CellAbsentConsequent:
		return "AbsentConsequent"
	case CellImperative:
		return "Imperative"
	case CellOptional:
		return "Optional"
	case CellRedundant:
		return "Redundant"
	default:
		return fmt.Sprintf("cell(%d)", c)
	}
}

func cellForTag(t Tag) Cell {
	switch t {
	case TagRedundant:
		return CellRedundant
	case TagOptional:
		return CellOptional
	default:
		return CellImperative
	}
}

// ConstraintSource supplies the constraints relevant to a query.
// *index.Index (the inverted constraint index), *groups.Store (the paper's
// grouped retrieval) and CatalogSource (a plain catalog scan) all implement
// it.
type ConstraintSource interface {
	Retrieve(q *query.Query) []*constraint.Constraint
}

// SymbolSource is an optional upgrade of ConstraintSource: a source (the
// constraint index, the group store) that has compiled its catalog into an
// interned symbol space — dense predicate/class/attribute IDs, compiled
// constraints and the implication adjacency. The transformation table then
// runs entirely in ID space, reusing catalog-lifetime work across queries;
// only predicates private to a query are compared at optimization time.
type SymbolSource interface {
	// Symbols returns the compiled symbol space of the source's catalog
	// generation (read-only).
	Symbols() *symtab.Table
}

// PrefilteredSource marks a ConstraintSource whose Retrieve already returns
// only constraints relevant to the query. The optimizer then skips its
// defensive re-filter during table initialization. CatalogSource, the
// constraint index and the group store all prefilter; the marker exists for
// custom sources that may not.
type PrefilteredSource interface {
	ConstraintSource
	// RetrievesOnlyRelevant is a marker; implementations promise that
	// every constraint Retrieve returns satisfies RelevantTo(q).
	RetrievesOnlyRelevant()
}

// CatalogSource adapts a raw constraint catalog into a ConstraintSource by
// scanning it per query — the ungrouped baseline the paper's grouping scheme
// improves on.
type CatalogSource struct {
	Catalog *constraint.Catalog
}

// Retrieve returns the constraints relevant to q via a full catalog scan.
func (s CatalogSource) Retrieve(q *query.Query) []*constraint.Constraint {
	return s.Catalog.RelevantTo(q)
}

// RetrievesOnlyRelevant marks the scan as prefiltered.
func (s CatalogSource) RetrievesOnlyRelevant() {}

// CostModel is what the optimizer needs from the conventional cost-based
// optimizer during query formulation (the paper's profitable(p) function and
// the "profitability of removing a class ... estimated using the cost model
// in the conventional query optimizer").
type CostModel interface {
	// Profitable reports whether retaining the optional predicate p in
	// query q is estimated to reduce total execution cost.
	Profitable(q *query.Query, p predicate.Predicate) bool
	// ClassEliminationBeneficial reports whether dropping the dangling
	// class from q is estimated to reduce total execution cost.
	ClassEliminationBeneficial(q *query.Query, class string) bool
}

// QueryEstimator is an optional upgrade of CostModel: when the cost model can
// price whole queries, the formulation step selects the cheapest *subset* of
// optional predicates exactly (up to a size cap) instead of greedily keeping
// individually profitable ones. Optional predicates often pay off only in
// combination — a filter may be worthless until another filter redirects the
// plan — and per-predicate tests miss that. costmodel.Model implements it.
type QueryEstimator interface {
	EstimateQuery(q *query.Query) float64
}

// HeuristicCost is a schema-only CostModel used when no statistics are
// available: optional predicates are kept exactly when they sit on an
// indexed attribute or join two classes, and class elimination is always
// considered beneficial. It reproduces the paper's qualitative reasoning in
// Tables 3.1/3.2 without per-database statistics.
type HeuristicCost struct {
	Schema *schema.Schema
}

// Profitable implements CostModel.
func (h HeuristicCost) Profitable(_ *query.Query, p predicate.Predicate) bool {
	if p.IsJoin() {
		return true
	}
	a, ok := h.Schema.Attr(p.Left.Class, p.Left.Attr)
	return ok && a.Indexed
}

// ClassEliminationBeneficial implements CostModel.
func (h HeuristicCost) ClassEliminationBeneficial(*query.Query, string) bool { return true }

// RuleSet selects which of the paper's transformation rules are active.
type RuleSet uint8

const (
	// RuleElimination enables restriction elimination.
	RuleElimination RuleSet = 1 << iota
	// RuleIntroduction enables index and restriction introduction.
	RuleIntroduction
	// RuleClassElimination enables class elimination at formulation.
	RuleClassElimination

	// AllRules enables everything (the default).
	AllRules = RuleElimination | RuleIntroduction | RuleClassElimination
)

// Has reports whether the set contains the given rule.
func (r RuleSet) Has(rule RuleSet) bool { return r&rule != 0 }

// Options configures an Optimizer. The zero value means: all rules,
// implication-aware antecedent matching, FIFO queue, no budget, no
// contradiction detection, subsumption on.
type Options struct {
	// Rules selects active transformation rules; zero means AllRules.
	Rules RuleSet
	// DisableImpliedAntecedents turns off implication-aware antecedent
	// matching (DESIGN.md deviation #3), requiring antecedents to appear
	// verbatim, as in the paper's pseudocode.
	DisableImpliedAntecedents bool
	// UsePriorities turns the transformation queue into a priority queue
	// (Section 4 enhancement): index introductions first, then
	// eliminations, then plain introductions.
	UsePriorities bool
	// Budget caps the number of transformations performed (Section 4:
	// "assign a budget and limit the number of transformations").
	// Zero means unlimited.
	Budget int
	// DetectContradictions proves a query empty when two predicates
	// implied by it contradict (extension, off when reproducing the
	// paper's tables).
	DetectContradictions bool
	// DisableSubsumption turns off the formulation-time removal of
	// predicates implied by another retained predicate.
	DisableSubsumption bool
	// RecordDeps makes every Result carry the catalog ordinals of the
	// constraints it consulted (Result.Deps) — the dependency sets the
	// engine's surgical cache invalidation needs. Off by default: the set
	// is one extra escaping allocation per optimization, and only cached
	// results ever get invalidated.
	RecordDeps bool
	// DisableInterning turns off the compiled symbol space (the interning
	// ablation): the transformation table falls back to interning
	// predicates by canonical key strings per query, the pre-interning
	// behavior. Output is identical; only the constant factors change.
	DisableInterning bool
	// Cost supplies profitability estimates; nil means HeuristicCost.
	Cost CostModel
}

func (o Options) rules() RuleSet {
	if o.Rules == 0 {
		return AllRules
	}
	return o.Rules
}

// Optimizer is the semantic query optimizer. Construction compiles (or
// adopts) the catalog's interned symbol space; afterwards the optimizer is
// safe for concurrent use as long as the ConstraintSource is (CatalogSource,
// *index.Index and *groups.Store all are). Per-query scratch state — the
// transformation table, its adjacency arena, chase and formulation buffers —
// is pooled and reused across Optimize calls, so steady-state optimization
// allocates only what escapes into each Result.
type Optimizer struct {
	schema      *schema.Schema
	source      ConstraintSource
	opts        Options
	prefiltered bool
	syms        *symtab.Table // compiled symbol space; nil when interning is off
	tables      sync.Pool     // *table scratch, reused across Optimize calls
}

// NewOptimizer builds an optimizer over a schema and constraint source. A
// source that exposes a compiled symbol space (SymbolSource) supplies it; a
// plain CatalogSource gets one compiled here, once. Custom sources run in
// the string-space fallback.
func NewOptimizer(s *schema.Schema, src ConstraintSource, opts Options) *Optimizer {
	return NewOptimizerSymbols(s, src, nil, opts)
}

// NewOptimizerSymbols is NewOptimizer with an already-compiled symbol space
// for the source's catalog generation — the engine compiles one per catalog
// swap and shares it between retrieval index, optimizer and result-cache key
// hashing. A nil syms falls back to NewOptimizer's own resolution.
func NewOptimizerSymbols(s *schema.Schema, src ConstraintSource, syms *symtab.Table, opts Options) *Optimizer {
	if opts.Cost == nil {
		opts.Cost = HeuristicCost{Schema: s}
	}
	_, prefiltered := src.(PrefilteredSource)
	o := &Optimizer{schema: s, source: src, opts: opts, prefiltered: prefiltered}
	if !opts.DisableInterning {
		if syms != nil {
			o.syms = syms
		} else {
			switch v := src.(type) {
			case SymbolSource:
				o.syms = v.Symbols()
			case CatalogSource:
				o.syms = symtab.Compile(s, v.Catalog.All())
			}
		}
	}
	o.tables.New = func() any { return &table{} }
	return o
}

// Schema returns the schema the optimizer was built with.
func (o *Optimizer) Schema() *schema.Schema { return o.schema }

// Symbols returns the compiled symbol space of the optimizer's constraint
// source, or nil (custom source, or interning disabled).
func (o *Optimizer) Symbols() *symtab.Table { return o.syms }
