package core

import (
	"slices"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/symtab"
)

// table is the transformation table T plus the bookkeeping around it: the
// interned predicate columns, the relevant constraints defining the rows,
// per-predicate presence/tag state, and the transformation queue.
//
// The table is stored sparsely. The paper's m×n cell matrix is redundant:
// within one role, a cell's state is a pure function of per-column facts —
// an antecedent cell is Present exactly when its column is present for
// matching (matchPresent), and a consequent cell either stays
// AbsentConsequent for the whole run (the row's consequent was not in the
// query at initialization: introRow) or mirrors the column's current tag.
// Storing only those per-column vectors makes initialization O(Σ|cᵢ|)
// instead of O(m·n) and the column update after a firing O(out-degree)
// instead of O(n), which is what keeps per-query work proportional to the
// *relevant* constraints rather than the table area. cell() derives any
// matrix entry on demand for tests and display.
//
// Since the symbol-interning refactor the table is also a reusable scratch
// arena: every slice below keeps its capacity across Optimize calls (the
// optimizer pools tables via sync.Pool), reset() rewinds lengths without
// freeing, and all cross-query identity work happens in the catalog's
// interned symbol space (symtab.Table) — constraint predicates arrive as
// pre-resolved PredIDs, so initialization performs no string hashing and,
// after warmup, no heap allocation. Only data that escapes into the Result
// (trace, tags, the formulated query) is copied out fresh.
type table struct {
	q    *query.Query
	sch  *schema.Schema
	opts Options
	syms *symtab.Table // interned symbol space; nil in string-space fallback

	constraints []*constraint.Constraint
	consBuf     []*constraint.Constraint // backing for the defensive re-filter

	// --- columns (m) ---------------------------------------------------
	preds        []predicate.Predicate
	colCat       []int32 // per column: catalog PredID, or -1 (query-private)
	colSig       []int32 // per column: operand-signature ordinal
	present      []bool  // per column: predicate is in the query or introduced
	inQuery      []bool  // per column: predicate appeared in the original query
	matchPresent []bool  // per column: present, or implied by a present predicate
	tags         []Tag   // per column: current tag; meaningful when present

	// --- rows (n) ------------------------------------------------------
	consCol  []int32 // per row: column of the consequent
	antsOff  []int32 // per row: offset into antsFlat (n+1 entries)
	antsFlat []int32 // all rows' antecedent columns, flat
	introRow []bool  // per row: consequent absent at init (introduction role)
	fired    []bool  // per row: constraint already applied
	removed  []bool  // per row: constraint removed from C (spent)
	queued   []bool  // per row: constraint currently in the queue

	// catalog PredID -> column translation, generation-stamped so reuse
	// across queries needs no clearing: an entry is live only when its
	// mark equals the current generation.
	catCol  []int32
	catMark []uint32
	catGen  uint32

	// Implication adjacency, computed lazily per column into a shared
	// arena. Predicates can only imply one another within the same operand
	// signature (predicate.Implies reasons over identical operand pairs),
	// and for catalog predicates the adjacency was computed once at symbol
	// compile time and is merely translated to columns here; only
	// predicates private to this query are compared at optimization time.
	// implyOn gates antecedent *matching* only; the formulation-time chase
	// always reasons with full implication.
	implyOn   bool
	fwdSpan   [][2]int32 // per column: [start,end) into adj
	revSpan   [][2]int32
	fwdDone   []bool
	revDone   []bool
	adj       []int32 // arena backing every computed adjacency list
	queryOnly []int32 // columns with no catalog PredID

	// localSig interns operand signatures not known to the symbol space
	// (query-private signatures, and everything in the fallback path).
	// Local ordinals are negative so they can never collide with symtab
	// ordinals.
	localSig map[sigKey]int32
	// localPred interns predicates by key in the string-space fallback
	// (no symtab): the pre-interning behavior, kept as the ablation
	// baseline and for custom constraint sources.
	localPred map[string]int32

	queue fireQueue

	// deps collects the catalog ordinals of the rows — every constraint
	// this optimization consulted — for the engine's surgical cache
	// invalidation. depsOK is false when any row could not be resolved to
	// an ordinal (foreign constraint, or no symbol space), in which case
	// the dependency set is unknown and the Result reports none.
	deps   []int32
	depsOK bool

	ops   int64 // primitive operation counter (cost accounting)
	trace []Transformation

	chase chaseScratch
	form  formScratch
}

// reset rewinds the table for a new query, keeping every capacity.
func (t *table) reset(q *query.Query, sch *schema.Schema, opts Options, syms *symtab.Table) {
	t.q, t.sch, t.opts, t.syms = q, sch, opts, syms
	t.constraints = nil
	t.consBuf = t.consBuf[:0]
	t.preds = t.preds[:0]
	t.colCat = t.colCat[:0]
	t.colSig = t.colSig[:0]
	t.present = t.present[:0]
	t.inQuery = t.inQuery[:0]
	t.matchPresent = t.matchPresent[:0]
	t.tags = t.tags[:0]
	t.consCol = t.consCol[:0]
	t.antsOff = t.antsOff[:0]
	t.antsFlat = t.antsFlat[:0]
	t.introRow = t.introRow[:0]
	t.fired = t.fired[:0]
	t.removed = t.removed[:0]
	t.queued = t.queued[:0]
	t.fwdSpan = t.fwdSpan[:0]
	t.revSpan = t.revSpan[:0]
	t.fwdDone = t.fwdDone[:0]
	t.revDone = t.revDone[:0]
	t.adj = t.adj[:0]
	t.queryOnly = t.queryOnly[:0]
	t.queue.entries = t.queue.entries[:0]
	t.queue.seq = 0
	t.deps = t.deps[:0]
	t.depsOK = syms != nil && opts.RecordDeps
	t.ops = 0
	t.trace = t.trace[:0]

	if syms != nil {
		if need := syms.NumPreds(); len(t.catCol) < need {
			t.catCol = make([]int32, need)
			t.catMark = make([]uint32, need)
			t.catGen = 0
		}
	}
	t.catGen++
	if t.catGen == 0 { // generation counter wrapped; invalidate all marks
		clear(t.catMark)
		t.catGen = 1
	}
	if len(t.localSig) > 0 {
		clear(t.localSig)
	}
	if len(t.localPred) > 0 {
		clear(t.localPred)
	}
}

// m returns the number of columns.
func (t *table) m() int { return len(t.preds) }

// n returns the number of rows.
func (t *table) n() int { return len(t.constraints) }

// ants returns row i's antecedent columns.
func (t *table) ants(i int) []int32 {
	return t.antsFlat[t.antsOff[i]:t.antsOff[i+1]]
}

// Transformation records one applied (or formulation-time) action for the
// explain trace.
type Transformation struct {
	Kind       TransformKind
	Constraint string // constraint ID; empty for formulation actions
	Pred       predicate.Predicate
	Class      string // class name for class eliminations
	NewTag     Tag
}

// TransformKind labels trace entries.
type TransformKind uint8

const (
	// TransformElimination is a restriction elimination: a present
	// predicate's tag was lowered.
	TransformElimination TransformKind = iota
	// TransformIntroduction is an index/restriction introduction: an
	// absent consequent became present.
	TransformIntroduction
	// TransformDiscardOptional is the formulation step demoting a
	// non-profitable optional predicate to redundant.
	TransformDiscardOptional
	// TransformSubsumption is the formulation step dropping a predicate
	// implied by another retained predicate.
	TransformSubsumption
	// TransformClassElimination removed a dangling class.
	TransformClassElimination
	// TransformRestoreSupport promoted a predicate back to imperative
	// because the retained set could not derive an original predicate
	// without it (the soundness guard of chase.go).
	TransformRestoreSupport
)

// String names the transformation kind.
func (k TransformKind) String() string {
	switch k {
	case TransformElimination:
		return "restriction-elimination"
	case TransformIntroduction:
		return "restriction-introduction"
	case TransformDiscardOptional:
		return "discard-optional"
	case TransformSubsumption:
		return "subsumption"
	case TransformClassElimination:
		return "class-elimination"
	case TransformRestoreSupport:
		return "restore-support"
	default:
		return "transform(?)"
	}
}

// fireQueue is the transformation queue Q: FIFO by default, priority-ordered
// under Options.UsePriorities. Entries are row indices. The heap is hand
// rolled over the reusable entries slice — container/heap's interface would
// box every entry onto the heap, which the zero-allocation hot path cannot
// afford.
type fireQueue struct {
	entries    []queueEntry
	priorities bool
	seq        int
}

type queueEntry struct {
	row      int
	priority int // lower fires first
	seq      int // FIFO tiebreak
}

func (fq *fireQueue) Len() int { return len(fq.entries) }

func (fq *fireQueue) less(a, b queueEntry) bool {
	if fq.priorities && a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (fq *fireQueue) push(row, priority int) {
	fq.seq++
	fq.entries = append(fq.entries, queueEntry{row: row, priority: priority, seq: fq.seq})
	// Sift up.
	e := fq.entries
	i := len(e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !fq.less(e[i], e[parent]) {
			break
		}
		e[i], e[parent] = e[parent], e[i]
		i = parent
	}
}

func (fq *fireQueue) pop() int {
	e := fq.entries
	top := e[0].row
	last := len(e) - 1
	e[0] = e[last]
	fq.entries = e[:last]
	// Sift down.
	e = fq.entries
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		least := left
		if right := left + 1; right < last && fq.less(e[right], e[left]) {
			least = right
		}
		if !fq.less(e[least], e[i]) {
			break
		}
		e[i], e[least] = e[least], e[i]
		i = least
	}
	return top
}

// newTable implements the paper's Initialization step (Section 3.1) for
// tests: collect relevant constraints into C, predicates into P, and fill
// the table. Production runs go through Optimizer.acquireTable, which reuses
// pooled tables and the catalog's compiled symbol space.
func newTable(q *query.Query, sch *schema.Schema, relevant []*constraint.Constraint, opts Options) *table {
	t := &table{}
	t.reset(q, sch, opts, nil)
	t.init(relevant, false)
	return t
}

// init is the Initialization step proper; the table must be freshly reset.
// Sources that do not promise prefiltering (PrefilteredSource) get a
// defensive relevance re-check — firing an irrelevant constraint would be
// unsound.
func (t *table) init(relevant []*constraint.Constraint, prefiltered bool) {
	if prefiltered {
		t.constraints = relevant
	} else {
		for _, c := range relevant {
			if c.RelevantTo(t.q) {
				t.consBuf = append(t.consBuf, c)
			}
		}
		t.constraints = t.consBuf
	}
	t.implyOn = !t.opts.DisableImpliedAntecedents

	// P: predicates of the query and of the relevant constraints, interned
	// into columns. Query predicates first — "we begin by making all the
	// predicates in the query imperative" — then each constraint's
	// antecedents and consequent in order, matching the pre-interning
	// first-occurrence column numbering exactly.
	for _, p := range t.q.Joins {
		t.internQueryPred(p)
	}
	for _, p := range t.q.Selects {
		t.internQueryPred(p)
	}

	n := len(t.constraints)
	t.antsOff = append(t.antsOff, 0)
	for _, c := range t.constraints {
		t.ops += int64(1 + len(c.Antecedents))
		var cons int32
		if comp, ord, ok := t.compiledFor(c); ok {
			// Catalog constraint: predicates arrive as PredIDs; no
			// hashing, no key comparisons. The catalog ordinal joins the
			// result's dependency set.
			t.deps = append(t.deps, int32(ord))
			for _, aid := range comp.Ants {
				t.addAntCol(t.colOfCat(aid))
			}
			cons = t.colOfCat(comp.Cons)
		} else {
			t.depsOK = false
			// Foreign constraint (custom source, or interning off):
			// intern by canonical key as before the refactor.
			for _, a := range c.Antecedents {
				t.addAntCol(t.internLocal(a))
			}
			cons = t.internLocal(c.Consequent)
		}
		// Consequent classification takes precedence over antecedent (a
		// predicate that is both would make the constraint trivial; the
		// closure never produces those, but be deterministic anyway):
		// drop the consequent from the row's antecedents.
		row := len(t.consCol)
		flat := t.antsFlat[t.antsOff[row]:]
		kept := flat[:0]
		for _, ac := range flat {
			if ac != cons {
				kept = append(kept, ac)
			}
		}
		t.antsFlat = t.antsFlat[:t.antsOff[row]+int32(len(kept))]
		t.antsOff = append(t.antsOff, int32(len(t.antsFlat)))
		t.consCol = append(t.consCol, cons)
		t.introRow = append(t.introRow, !t.present[cons])
	}
	t.fired = grow(t.fired, n)
	t.removed = grow(t.removed, n)
	t.queued = grow(t.queued, n)

	// A column is present for antecedent matching when its predicate is
	// literally present or implied by a present predicate.
	for id := range t.present {
		if !t.present[id] {
			continue
		}
		t.matchPresent[id] = true
		if t.implyOn {
			for _, j := range t.fwdOf(int32(id)) {
				t.matchPresent[j] = true
			}
		}
	}
	t.queue.priorities = t.opts.UsePriorities
}

// grow returns a zeroed slice of length n, reusing s's capacity.
func grow(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// compiledFor resolves a constraint to its compiled (PredID) form and its
// catalog ordinal.
func (t *table) compiledFor(c *constraint.Constraint) (symtab.Compiled, int, bool) {
	if t.syms == nil {
		return symtab.Compiled{}, 0, false
	}
	ord, ok := t.syms.Ordinal(c)
	if !ok {
		return symtab.Compiled{}, 0, false
	}
	return t.syms.CompiledAt(ord), ord, true
}

// addAntCol appends one antecedent column to the flat row being built.
func (t *table) addAntCol(col int32) {
	t.antsFlat = append(t.antsFlat, col)
}

// addCol appends a new column for p. catID is the catalog PredID or -1.
func (t *table) addCol(p predicate.Predicate, catID int32) int32 {
	col := int32(len(t.preds))
	t.preds = append(t.preds, p)
	t.colCat = append(t.colCat, catID)
	t.colSig = append(t.colSig, t.sigOrdinal(p, catID))
	t.present = append(t.present, false)
	t.inQuery = append(t.inQuery, false)
	t.matchPresent = append(t.matchPresent, false)
	t.tags = append(t.tags, TagImperative)
	t.fwdSpan = append(t.fwdSpan, [2]int32{})
	t.revSpan = append(t.revSpan, [2]int32{})
	t.fwdDone = append(t.fwdDone, false)
	t.revDone = append(t.revDone, false)
	if catID >= 0 {
		t.catCol[catID] = col
		t.catMark[catID] = t.catGen
	} else {
		t.queryOnly = append(t.queryOnly, col)
	}
	return col
}

// colOfCat returns the column of a catalog predicate, adding it on first
// sight. The generation-stamped translation array makes the lookup one
// indexed load — no map, no hashing.
func (t *table) colOfCat(id symtab.PredID) int32 {
	if t.catMark[id] == t.catGen {
		return t.catCol[id]
	}
	return t.addCol(t.syms.Pred(id), int32(id))
}

// internQueryPred interns one predicate of the query itself and marks it
// present and imperative. A predicate resolvable through the symbol space
// but minted after this generation (a patch lineage shares its maps, so an
// old generation can see IDs a later one interned) is treated as
// query-private — exactly what a from-scratch build of this generation
// would do.
func (t *table) internQueryPred(p predicate.Predicate) {
	var col int32
	if t.syms != nil {
		if id, ok := t.syms.PredID(p); ok && int(id) < t.syms.NumPreds() {
			if t.catMark[id] == t.catGen {
				col = t.catCol[id]
			} else {
				col = t.addCol(p, int32(id))
			}
		} else {
			col = t.internPrivate(p)
		}
	} else {
		col = t.internLocal(p)
	}
	t.present[col] = true
	t.inQuery[col] = true
	t.tags[col] = TagImperative
}

// internPrivate interns a query-private predicate (unknown to the catalog's
// symbol space) by linear key scan over the other private columns — queries
// hold a handful of predicates, so no map is warranted.
func (t *table) internPrivate(p predicate.Predicate) int32 {
	key := p.Key()
	for _, col := range t.queryOnly {
		if t.preds[col].Key() == key {
			return col
		}
	}
	return t.addCol(p, -1)
}

// internLocal interns a predicate by canonical key — the string-space
// fallback used when no symbol space is available.
func (t *table) internLocal(p predicate.Predicate) int32 {
	if t.localPred == nil {
		t.localPred = make(map[string]int32)
	}
	key := p.Key()
	if col, ok := t.localPred[key]; ok {
		return col
	}
	col := t.addCol(p, -1)
	t.localPred[key] = col
	return col
}

// sigOrdinal resolves the operand-signature ordinal of a new column:
// precomputed for catalog predicates, locally interned (negative ordinals)
// otherwise.
func (t *table) sigOrdinal(p predicate.Predicate, catID int32) int32 {
	if catID >= 0 {
		return t.syms.SigOrdinal(symtab.PredID(catID))
	}
	if t.syms != nil {
		if sig, ok := t.syms.SigOrdinalOf(p); ok {
			return sig
		}
	}
	k := sigKey{left: p.Left, join: p.IsJoin()}
	if k.join {
		k.right = p.RightAttr
	}
	if sig, ok := t.localSig[k]; ok {
		return sig
	}
	if t.localSig == nil {
		t.localSig = make(map[sigKey]int32)
	}
	sig := int32(-1 - len(t.localSig))
	t.localSig[k] = sig
	return sig
}

// cell derives one entry of the paper's transformation table from the sparse
// state: the row structure fixes the role, the per-column vectors fix the
// value. Tests and the explain renderer use it; the hot path never
// materializes the matrix.
func (t *table) cell(row, col int) Cell {
	if int32(col) == t.consCol[row] {
		if t.introRow[row] {
			// An absent consequent keeps its init-time classification
			// for the whole run, even after another constraint
			// introduces the predicate; fire() compensates, exactly as
			// the paper's "some cₖ ahead of cᵢ has already …" case.
			return CellAbsentConsequent
		}
		return cellForTag(t.tags[col])
	}
	for _, ac := range t.ants(row) {
		if ac == int32(col) {
			if t.matchPresent[col] {
				return CellPresentAntecedent
			}
			return CellAbsentAntecedent
		}
	}
	return CellNone
}

// lookupCol finds the column of a predicate, for tests.
func (t *table) lookupCol(p predicate.Predicate) (int, bool) {
	key := p.Key()
	for col := range t.preds {
		if t.preds[col].Key() == key {
			return col, true
		}
	}
	return 0, false
}

// sigKey is the comparable form of a predicate's operand signature (the
// string rendering is index.Signature; the hot path resolves ordinals from
// the symbol space instead).
type sigKey struct {
	left, right predicate.AttrRef
	join        bool
}

// fwdOf returns the columns predicate col implies (ascending, excluding
// col), computed on first use (DESIGN.md deviation #3): translated from the
// symbol space's catalog-level adjacency when available, derived by
// signature-peer comparison otherwise.
func (t *table) fwdOf(col int32) []int32 {
	if !t.fwdDone[col] {
		t.fwdDone[col] = true
		t.fwdSpan[col] = t.adjacency(col, true)
	}
	s := t.fwdSpan[col]
	return t.adj[s[0]:s[1]]
}

// revOf returns the columns whose predicates imply col (ascending, excluding
// col). The formulation-time chase uses it; unlike antecedent matching it is
// not gated by DisableImpliedAntecedents, because the chase's derivability
// test always reasons with Implies.
func (t *table) revOf(col int32) []int32 {
	if !t.revDone[col] {
		t.revDone[col] = true
		t.revSpan[col] = t.adjacency(col, false)
	}
	s := t.revSpan[col]
	return t.adj[s[0]:s[1]]
}

// adjacency computes one column's implication neighbors, ascending, into the
// shared arena and returns the span. forward selects "col implies j";
// otherwise "j implies col".
func (t *table) adjacency(col int32, forward bool) [2]int32 {
	start := int32(len(t.adj))
	p := t.preds[col]
	if t.syms != nil && t.colCat[col] >= 0 {
		// Catalog predicate: its implications among catalog predicates
		// were precomputed at symbol compile time; translate PredIDs to
		// the columns present in this table.
		cached := t.syms.Implies(symtab.PredID(t.colCat[col]))
		if !forward {
			cached = t.syms.ImpliedBy(symtab.PredID(t.colCat[col]))
		}
		for _, cid := range cached {
			t.ops++
			if t.catMark[cid] == t.catGen {
				t.adj = append(t.adj, t.catCol[cid])
			}
		}
		// Plus the query-private predicates, which the catalog-level
		// precompute cannot know.
		for _, j := range t.queryOnly {
			if j == col || t.colSig[j] != t.colSig[col] {
				continue
			}
			t.ops++
			if implies(p, t.preds[j], forward) {
				t.adj = append(t.adj, j)
			}
		}
		// First-occurrence order in the catalog pool need not agree
		// with this table's column order (a predicate may debut in a
		// constraint irrelevant to this query), so restore column
		// order explicitly.
		slices.Sort(t.adj[start:])
		return [2]int32{start, int32(len(t.adj))}
	}
	// No symbol space, or a query-private predicate: compare against every
	// signature peer, in column order.
	for j := int32(0); j < int32(len(t.preds)); j++ {
		if j == col || t.colSig[j] != t.colSig[col] {
			continue
		}
		t.ops++
		if implies(p, t.preds[j], forward) {
			t.adj = append(t.adj, j)
		}
	}
	return [2]int32{start, int32(len(t.adj))}
}

// implies orients one implication test: forward is "a implies b".
func implies(a, b predicate.Predicate, forward bool) bool {
	if forward {
		return a.Implies(b)
	}
	return b.Implies(a)
}

// tagOf converts a consequent cell back to a Tag; callers guarantee the cell
// is one of the three tag cells.
func tagOf(c Cell) Tag {
	switch c {
	case CellRedundant:
		return TagRedundant
	case CellOptional:
		return TagOptional
	default:
		return TagImperative
	}
}

// producedTag is Tables 3.1 and 3.2 in one function: the tag a constraint
// assigns its consequent, keyed on the constraint's intra/inter class and
// whether the consequent predicate is indexed.
func (t *table) producedTag(row int) Tag {
	c := t.constraints[row]
	if c.Kind() == constraint.Inter {
		// The consequent might be evaluated before the antecedents and
		// cut intermediate results: optional.
		return TagOptional
	}
	// Intra-class: the antecedents already determine the instances
	// returned from the class, so the consequent only helps if it can use
	// an index.
	if t.consequentIndexed(row) {
		return TagOptional
	}
	return TagRedundant
}

// consequentIndexed reports whether the consequent predicate of the row is a
// selective predicate on an indexed attribute (an "indexed predicate" in the
// paper's terms). Join consequents have no index to exploit here.
func (t *table) consequentIndexed(row int) bool {
	p := t.constraints[row].Consequent
	if p.IsJoin() {
		return false
	}
	a, ok := t.sch.Attr(p.Left.Class, p.Left.Attr)
	return ok && a.Indexed
}
