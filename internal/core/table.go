package core

import (
	"container/heap"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// table is the transformation table T plus the bookkeeping around it: the
// predicate pool defining the columns, the relevant constraints defining the
// rows, per-predicate presence/tag state, and the transformation queue.
type table struct {
	q    *query.Query
	sch  *schema.Schema
	opts Options

	pool        *predicate.Pool
	constraints []*constraint.Constraint
	cells       [][]Cell // cells[row][col]

	consCol  []int   // per row: column of the consequent
	antsCols [][]int // per row: columns of the antecedents

	present []bool // per column: predicate is in the query or introduced
	inQuery []bool // per column: predicate appeared in the original query
	tags    []Tag  // per column: current tag; meaningful when present

	fired   []bool // per row: constraint already applied
	removed []bool // per row: constraint removed from C (spent)
	queued  []bool // per row: constraint currently in the queue

	// implied[j] lists the columns whose predicates are implied by
	// predicate j (excluding j itself). Used for implication-aware
	// antecedent matching; nil when disabled.
	implied [][]int

	queue fireQueue

	ops   int64 // primitive operation counter (cost accounting)
	trace []Transformation
}

// Transformation records one applied (or formulation-time) action for the
// explain trace.
type Transformation struct {
	Kind       TransformKind
	Constraint string // constraint ID; empty for formulation actions
	Pred       predicate.Predicate
	Class      string // class name for class eliminations
	NewTag     Tag
}

// TransformKind labels trace entries.
type TransformKind uint8

const (
	// TransformElimination is a restriction elimination: a present
	// predicate's tag was lowered.
	TransformElimination TransformKind = iota
	// TransformIntroduction is an index/restriction introduction: an
	// absent consequent became present.
	TransformIntroduction
	// TransformDiscardOptional is the formulation step demoting a
	// non-profitable optional predicate to redundant.
	TransformDiscardOptional
	// TransformSubsumption is the formulation step dropping a predicate
	// implied by another retained predicate.
	TransformSubsumption
	// TransformClassElimination removed a dangling class.
	TransformClassElimination
	// TransformRestoreSupport promoted a predicate back to imperative
	// because the retained set could not derive an original predicate
	// without it (the soundness guard of chase.go).
	TransformRestoreSupport
)

// String names the transformation kind.
func (k TransformKind) String() string {
	switch k {
	case TransformElimination:
		return "restriction-elimination"
	case TransformIntroduction:
		return "restriction-introduction"
	case TransformDiscardOptional:
		return "discard-optional"
	case TransformSubsumption:
		return "subsumption"
	case TransformClassElimination:
		return "class-elimination"
	case TransformRestoreSupport:
		return "restore-support"
	default:
		return "transform(?)"
	}
}

// fireQueue is the transformation queue Q: FIFO by default, priority-ordered
// under Options.UsePriorities. Entries are row indices.
type fireQueue struct {
	entries    []queueEntry
	priorities bool
	seq        int
}

type queueEntry struct {
	row      int
	priority int // lower fires first
	seq      int // FIFO tiebreak
}

func (fq *fireQueue) Len() int { return len(fq.entries) }
func (fq *fireQueue) Less(i, j int) bool {
	a, b := fq.entries[i], fq.entries[j]
	if fq.priorities && a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
func (fq *fireQueue) Swap(i, j int) { fq.entries[i], fq.entries[j] = fq.entries[j], fq.entries[i] }
func (fq *fireQueue) Push(x any)    { fq.entries = append(fq.entries, x.(queueEntry)) }
func (fq *fireQueue) Pop() any {
	e := fq.entries[len(fq.entries)-1]
	fq.entries = fq.entries[:len(fq.entries)-1]
	return e
}

func (fq *fireQueue) push(row, priority int) {
	fq.seq++
	heap.Push(fq, queueEntry{row: row, priority: priority, seq: fq.seq})
}

func (fq *fireQueue) pop() int {
	return heap.Pop(fq).(queueEntry).row
}

// newTable implements the paper's Initialization step (Section 3.1): collect
// relevant constraints into C, predicates into P, and fill the table.
func newTable(q *query.Query, sch *schema.Schema, relevant []*constraint.Constraint, opts Options) *table {
	t := &table{q: q, sch: sch, opts: opts, pool: predicate.NewPool()}

	// Filter for relevance defensively: custom ConstraintSources may not
	// pre-filter, and firing an irrelevant constraint would be unsound.
	for _, c := range relevant {
		if c.RelevantTo(q) {
			t.constraints = append(t.constraints, c)
		}
	}

	// P: predicates of the query and of the relevant constraints.
	queryPreds := q.Predicates()
	for _, p := range queryPreds {
		t.pool.Intern(p)
	}
	for _, c := range t.constraints {
		for _, a := range c.Antecedents {
			t.pool.Intern(a)
		}
		t.pool.Intern(c.Consequent)
	}

	m := t.pool.Len()
	n := len(t.constraints)
	t.present = make([]bool, m)
	t.inQuery = make([]bool, m)
	t.tags = make([]Tag, m)
	for _, p := range queryPreds {
		id, _ := t.pool.Lookup(p)
		t.present[id] = true
		t.inQuery[id] = true
		// "We begin by making all the predicates in the query
		// imperative" — unless proven otherwise they contribute to the
		// results.
		t.tags[id] = TagImperative
	}

	if !opts.DisableImpliedAntecedents {
		t.buildImplied()
	}

	// Fill the table per the paper's Initialization algorithm. Consequent
	// classification takes precedence over antecedent (a predicate that is
	// both in one constraint would make the constraint trivial; the
	// closure never produces those, but be deterministic anyway).
	t.cells = make([][]Cell, n)
	t.consCol = make([]int, n)
	t.antsCols = make([][]int, n)
	t.fired = make([]bool, n)
	t.removed = make([]bool, n)
	t.queued = make([]bool, n)
	for i, c := range t.constraints {
		row := make([]Cell, m)
		t.ops += int64(m)
		cons, _ := t.pool.Lookup(c.Consequent)
		t.consCol[i] = cons
		if t.present[cons] {
			row[cons] = cellForTag(t.tags[cons])
		} else {
			row[cons] = CellAbsentConsequent
		}
		for _, a := range c.Antecedents {
			col, _ := t.pool.Lookup(a)
			if col == cons {
				continue
			}
			t.antsCols[i] = append(t.antsCols[i], col)
			if t.predicatePresent(col) {
				row[col] = CellPresentAntecedent
			} else {
				row[col] = CellAbsentAntecedent
			}
		}
		t.cells[i] = row
	}
	t.queue.priorities = opts.UsePriorities
	return t
}

// buildImplied precomputes the implication adjacency between pooled
// predicates (DESIGN.md deviation #3).
func (t *table) buildImplied() {
	m := t.pool.Len()
	t.implied = make([][]int, m)
	for i := 0; i < m; i++ {
		pi := t.pool.At(i)
		for j := 0; j < m; j++ {
			t.ops++
			if i == j {
				continue
			}
			if pi.Implies(t.pool.At(j)) {
				t.implied[i] = append(t.implied[i], j)
			}
		}
	}
}

// predicatePresent reports whether the predicate in the given column should
// count as present for antecedent matching: literally present, or implied by
// a present predicate when implication matching is on.
func (t *table) predicatePresent(col int) bool {
	if t.present[col] {
		return true
	}
	if t.implied == nil {
		return false
	}
	for id := range t.present {
		if !t.present[id] {
			continue
		}
		for _, j := range t.implied[id] {
			if j == col {
				return true
			}
		}
	}
	return false
}

// tagOf converts a consequent cell back to a Tag; callers guarantee the cell
// is one of the three tag cells.
func tagOf(c Cell) Tag {
	switch c {
	case CellRedundant:
		return TagRedundant
	case CellOptional:
		return TagOptional
	default:
		return TagImperative
	}
}

// producedTag is Tables 3.1 and 3.2 in one function: the tag a constraint
// assigns its consequent, keyed on the constraint's intra/inter class and
// whether the consequent predicate is indexed.
func (t *table) producedTag(row int) Tag {
	c := t.constraints[row]
	if c.Kind() == constraint.Inter {
		// The consequent might be evaluated before the antecedents and
		// cut intermediate results: optional.
		return TagOptional
	}
	// Intra-class: the antecedents already determine the instances
	// returned from the class, so the consequent only helps if it can use
	// an index.
	if t.consequentIndexed(row) {
		return TagOptional
	}
	return TagRedundant
}

// consequentIndexed reports whether the consequent predicate of the row is a
// selective predicate on an indexed attribute (an "indexed predicate" in the
// paper's terms). Join consequents have no index to exploit here.
func (t *table) consequentIndexed(row int) bool {
	p := t.constraints[row].Consequent
	if p.IsJoin() {
		return false
	}
	a, ok := t.sch.Attr(p.Left.Class, p.Left.Attr)
	return ok && a.Indexed
}
