package core

import (
	"container/heap"
	"sort"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// table is the transformation table T plus the bookkeeping around it: the
// predicate pool defining the columns, the relevant constraints defining the
// rows, per-predicate presence/tag state, and the transformation queue.
//
// The table is stored sparsely. The paper's m×n cell matrix is redundant:
// within one role, a cell's state is a pure function of per-column facts —
// an antecedent cell is Present exactly when its column is present for
// matching (matchPresent), and a consequent cell either stays
// AbsentConsequent for the whole run (the row's consequent was not in the
// query at initialization: introRow) or mirrors the column's current tag.
// Storing only those per-column vectors makes initialization O(Σ|cᵢ|)
// instead of O(m·n) and the column update after a firing O(out-degree)
// instead of O(n), which is what keeps per-query work proportional to the
// *relevant* constraints rather than the table area. cell() derives any
// matrix entry on demand for tests and display.
type table struct {
	q    *query.Query
	sch  *schema.Schema
	opts Options

	pool        *predicate.Pool
	constraints []*constraint.Constraint

	consCol  []int   // per row: column of the consequent
	antsCols [][]int // per row: columns of the antecedents
	introRow []bool  // per row: consequent absent at init (introduction role)

	present      []bool // per column: predicate is in the query or introduced
	inQuery      []bool // per column: predicate appeared in the original query
	matchPresent []bool // per column: present, or implied by a present predicate
	tags         []Tag  // per column: current tag; meaningful when present

	fired   []bool // per row: constraint already applied
	removed []bool // per row: constraint removed from C (spent)
	queued  []bool // per row: constraint currently in the queue

	// Implication adjacency, computed lazily per column. Predicates can
	// only imply one another within the same operand signature
	// (predicate.Implies reasons over identical operand pairs), so a
	// column's implications involve only its signature peers — and when
	// the source is the constraint index (oracle), implications among
	// catalog predicates were computed once at index build time and are
	// merely translated to columns here; only predicates private to this
	// query are compared at optimization time. implyOn gates antecedent
	// *matching* only; the formulation-time chase always reasons with
	// full implication.
	implyOn    bool     // implication-aware antecedent matching enabled
	colSig     []sigKey // per column: its operand signature
	fwdImplied [][]int  // fwdOf cache: columns each column implies
	fwdDone    []bool
	revImplied [][]int // revOf cache: columns implying each column
	revDone    []bool

	oracle    ImplicationSource
	colCat    []int       // per column: id in the oracle's pool, or -1
	catToCol  map[int]int // oracle pool id -> column
	queryOnly []int       // columns with no oracle id (query-private predicates)

	queue fireQueue

	ops   int64 // primitive operation counter (cost accounting)
	trace []Transformation
}

// Transformation records one applied (or formulation-time) action for the
// explain trace.
type Transformation struct {
	Kind       TransformKind
	Constraint string // constraint ID; empty for formulation actions
	Pred       predicate.Predicate
	Class      string // class name for class eliminations
	NewTag     Tag
}

// TransformKind labels trace entries.
type TransformKind uint8

const (
	// TransformElimination is a restriction elimination: a present
	// predicate's tag was lowered.
	TransformElimination TransformKind = iota
	// TransformIntroduction is an index/restriction introduction: an
	// absent consequent became present.
	TransformIntroduction
	// TransformDiscardOptional is the formulation step demoting a
	// non-profitable optional predicate to redundant.
	TransformDiscardOptional
	// TransformSubsumption is the formulation step dropping a predicate
	// implied by another retained predicate.
	TransformSubsumption
	// TransformClassElimination removed a dangling class.
	TransformClassElimination
	// TransformRestoreSupport promoted a predicate back to imperative
	// because the retained set could not derive an original predicate
	// without it (the soundness guard of chase.go).
	TransformRestoreSupport
)

// String names the transformation kind.
func (k TransformKind) String() string {
	switch k {
	case TransformElimination:
		return "restriction-elimination"
	case TransformIntroduction:
		return "restriction-introduction"
	case TransformDiscardOptional:
		return "discard-optional"
	case TransformSubsumption:
		return "subsumption"
	case TransformClassElimination:
		return "class-elimination"
	case TransformRestoreSupport:
		return "restore-support"
	default:
		return "transform(?)"
	}
}

// fireQueue is the transformation queue Q: FIFO by default, priority-ordered
// under Options.UsePriorities. Entries are row indices.
type fireQueue struct {
	entries    []queueEntry
	priorities bool
	seq        int
}

type queueEntry struct {
	row      int
	priority int // lower fires first
	seq      int // FIFO tiebreak
}

func (fq *fireQueue) Len() int { return len(fq.entries) }
func (fq *fireQueue) Less(i, j int) bool {
	a, b := fq.entries[i], fq.entries[j]
	if fq.priorities && a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
func (fq *fireQueue) Swap(i, j int) { fq.entries[i], fq.entries[j] = fq.entries[j], fq.entries[i] }
func (fq *fireQueue) Push(x any)    { fq.entries = append(fq.entries, x.(queueEntry)) }
func (fq *fireQueue) Pop() any {
	e := fq.entries[len(fq.entries)-1]
	fq.entries = fq.entries[:len(fq.entries)-1]
	return e
}

func (fq *fireQueue) push(row, priority int) {
	fq.seq++
	heap.Push(fq, queueEntry{row: row, priority: priority, seq: fq.seq})
}

func (fq *fireQueue) pop() int {
	return heap.Pop(fq).(queueEntry).row
}

// newTable implements the paper's Initialization step (Section 3.1): collect
// relevant constraints into C, predicates into P, and fill the table.
// Sources that do not promise prefiltering (PrefilteredSource) get a
// defensive relevance re-check — firing an irrelevant constraint would be
// unsound.
func newTable(q *query.Query, sch *schema.Schema, relevant []*constraint.Constraint, opts Options) *table {
	return newTableTrusted(q, sch, relevant, opts, false, nil)
}

func newTableTrusted(q *query.Query, sch *schema.Schema, relevant []*constraint.Constraint, opts Options, prefiltered bool, oracle ImplicationSource) *table {
	t := &table{q: q, sch: sch, opts: opts, oracle: oracle}

	if prefiltered {
		t.constraints = relevant
	} else {
		for _, c := range relevant {
			if c.RelevantTo(q) {
				t.constraints = append(t.constraints, c)
			}
		}
	}

	// P: predicates of the query and of the relevant constraints, interned
	// into a pool sized for the worst case (no shared predicates).
	queryPreds := q.Predicates()
	occurrences := len(queryPreds)
	for _, c := range t.constraints {
		occurrences += 1 + len(c.Antecedents)
	}
	t.pool = predicate.NewPoolSize(occurrences)
	for _, p := range queryPreds {
		t.pool.Intern(p)
	}
	for _, c := range t.constraints {
		for _, a := range c.Antecedents {
			t.pool.Intern(a)
		}
		t.pool.Intern(c.Consequent)
	}

	m := t.pool.Len()
	n := len(t.constraints)
	t.present = make([]bool, m)
	t.inQuery = make([]bool, m)
	t.tags = make([]Tag, m)
	for _, p := range queryPreds {
		id, _ := t.pool.Lookup(p)
		t.present[id] = true
		t.inQuery[id] = true
		// "We begin by making all the predicates in the query
		// imperative" — unless proven otherwise they contribute to the
		// results.
		t.tags[id] = TagImperative
	}

	t.implyOn = !opts.DisableImpliedAntecedents
	t.colSig = make([]sigKey, m)
	t.fwdImplied = make([][]int, m)
	t.fwdDone = make([]bool, m)
	t.revImplied = make([][]int, m)
	t.revDone = make([]bool, m)
	if t.oracle != nil {
		t.colCat = make([]int, m)
		t.catToCol = make(map[int]int, m)
	}
	for i := 0; i < m; i++ {
		p := t.pool.At(i)
		key := sigKey{left: p.Left, join: p.IsJoin()}
		if key.join {
			key.right = p.RightAttr
		}
		t.colSig[i] = key
		if t.oracle != nil {
			if id, ok := t.oracle.PredPool().Lookup(p); ok {
				t.colCat[i] = id
				t.catToCol[id] = i
			} else {
				t.colCat[i] = -1
				t.queryOnly = append(t.queryOnly, i)
			}
		}
	}

	// A column is present for antecedent matching when its predicate is
	// literally present or implied by a present predicate.
	t.matchPresent = make([]bool, m)
	for id, pres := range t.present {
		if !pres {
			continue
		}
		t.matchPresent[id] = true
		if t.implyOn {
			for _, j := range t.fwdOf(id) {
				t.matchPresent[j] = true
			}
		}
	}

	// Record the per-row structure the paper's Initialization fills cells
	// from. Consequent classification takes precedence over antecedent (a
	// predicate that is both in one constraint would make the constraint
	// trivial; the closure never produces those, but be deterministic
	// anyway).
	t.consCol = make([]int, n)
	t.antsCols = make([][]int, n)
	t.introRow = make([]bool, n)
	t.fired = make([]bool, n)
	t.removed = make([]bool, n)
	t.queued = make([]bool, n)
	flat := make([]int, 0, occurrences-len(queryPreds)-n) // one backing array for all rows
	for i, c := range t.constraints {
		t.ops += int64(1 + len(c.Antecedents))
		cons, _ := t.pool.Lookup(c.Consequent)
		t.consCol[i] = cons
		t.introRow[i] = !t.present[cons]
		start := len(flat)
		for _, a := range c.Antecedents {
			col, _ := t.pool.Lookup(a)
			if col == cons {
				continue
			}
			flat = append(flat, col)
		}
		t.antsCols[i] = flat[start:len(flat):len(flat)]
	}
	t.queue.priorities = opts.UsePriorities
	return t
}

// cell derives one entry of the paper's transformation table from the sparse
// state: the row structure fixes the role, the per-column vectors fix the
// value. Tests and the explain renderer use it; the hot path never
// materializes the matrix.
func (t *table) cell(row, col int) Cell {
	if col == t.consCol[row] {
		if t.introRow[row] {
			// An absent consequent keeps its init-time classification
			// for the whole run, even after another constraint
			// introduces the predicate; fire() compensates, exactly as
			// the paper's "some cₖ ahead of cᵢ has already …" case.
			return CellAbsentConsequent
		}
		return cellForTag(t.tags[col])
	}
	for _, ac := range t.antsCols[row] {
		if ac == col {
			if t.matchPresent[col] {
				return CellPresentAntecedent
			}
			return CellAbsentAntecedent
		}
	}
	return CellNone
}

// sigKey is the comparable form of a predicate's operand signature (the
// string rendering is index.Signature; the hot path avoids building it).
type sigKey struct {
	left, right predicate.AttrRef
	join        bool
}

// fwdOf returns the columns predicate col implies (ascending, excluding
// col), computed on first use (DESIGN.md deviation #3): translated from the
// oracle's catalog-level adjacency when available, derived by signature-peer
// comparison otherwise.
func (t *table) fwdOf(col int) []int {
	if t.fwdDone[col] {
		return t.fwdImplied[col]
	}
	t.fwdDone[col] = true
	t.fwdImplied[col] = t.adjacency(col, true)
	return t.fwdImplied[col]
}

// revOf returns the columns whose predicates imply col (ascending, excluding
// col). The formulation-time chase uses it; unlike antecedent matching it is
// not gated by DisableImpliedAntecedents, because the chase's derivability
// test always reasons with Implies.
func (t *table) revOf(col int) []int {
	if t.revDone[col] {
		return t.revImplied[col]
	}
	t.revDone[col] = true
	t.revImplied[col] = t.adjacency(col, false)
	return t.revImplied[col]
}

// adjacency computes one column's implication neighbors, ascending. forward
// selects "col implies j"; otherwise "j implies col".
func (t *table) adjacency(col int, forward bool) []int {
	var out []int
	p := t.pool.At(col)
	if t.oracle != nil && t.colCat[col] >= 0 {
		// Catalog predicate: its implications among catalog predicates
		// were precomputed at index build time; translate pool ids to
		// the columns present in this table.
		cached := t.oracle.PredImplies(t.colCat[col])
		if !forward {
			cached = t.oracle.PredImpliedBy(t.colCat[col])
		}
		for _, cid := range cached {
			t.ops++
			if j, ok := t.catToCol[cid]; ok {
				out = append(out, j)
			}
		}
		// Plus the query-private predicates, which the catalog-level
		// precompute cannot know.
		for _, j := range t.queryOnly {
			if j == col || t.colSig[j] != t.colSig[col] {
				continue
			}
			t.ops++
			if implies(t.pool.At(col), t.pool.At(j), forward) {
				out = append(out, j)
			}
		}
		// First-occurrence order in the catalog pool need not agree
		// with this table's column order (a predicate may debut in a
		// constraint irrelevant to this query), so restore column
		// order explicitly.
		sort.Ints(out)
		return out
	}
	// No oracle, or a query-private predicate: compare against every
	// signature peer, in column order.
	for j := 0; j < t.pool.Len(); j++ {
		if j == col || t.colSig[j] != t.colSig[col] {
			continue
		}
		t.ops++
		if implies(p, t.pool.At(j), forward) {
			out = append(out, j)
		}
	}
	return out
}

// implies orients one implication test: forward is "a implies b".
func implies(a, b predicate.Predicate, forward bool) bool {
	if forward {
		return a.Implies(b)
	}
	return b.Implies(a)
}

// tagOf converts a consequent cell back to a Tag; callers guarantee the cell
// is one of the three tag cells.
func tagOf(c Cell) Tag {
	switch c {
	case CellRedundant:
		return TagRedundant
	case CellOptional:
		return TagOptional
	default:
		return TagImperative
	}
}

// producedTag is Tables 3.1 and 3.2 in one function: the tag a constraint
// assigns its consequent, keyed on the constraint's intra/inter class and
// whether the consequent predicate is indexed.
func (t *table) producedTag(row int) Tag {
	c := t.constraints[row]
	if c.Kind() == constraint.Inter {
		// The consequent might be evaluated before the antecedents and
		// cut intermediate results: optional.
		return TagOptional
	}
	// Intra-class: the antecedents already determine the instances
	// returned from the class, so the consequent only helps if it can use
	// an index.
	if t.consequentIndexed(row) {
		return TagOptional
	}
	return TagRedundant
}

// consequentIndexed reports whether the consequent predicate of the row is a
// selective predicate on an indexed attribute (an "indexed predicate" in the
// paper's terms). Join consequents have no index to exploit here.
func (t *table) consequentIndexed(row int) bool {
	p := t.constraints[row].Consequent
	if p.IsJoin() {
		return false
	}
	a, ok := t.sch.Attr(p.Left.Class, p.Left.Attr)
	return ok && a.Indexed
}
