package core

import (
	"reflect"
	"slices"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/value"
)

// chaseFixture builds a table over one class with the given constraints and
// query predicates, without running the optimizer loop.
func chaseFixture(t *testing.T, constraints []*constraint.Constraint, queryPreds []predicate.Predicate) *table {
	t.Helper()
	s := schema.NewBuilder().
		Class("t",
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindInt},
			schema.Attribute{Name: "c", Type: value.KindInt},
			schema.Attribute{Name: "d", Type: value.KindInt}).
		MustBuild()
	q := query.New("t").AddProject("t", "a")
	for _, p := range queryPreds {
		q.AddSelect(p)
	}
	if err := q.Validate(s); err != nil {
		t.Fatalf("fixture query invalid: %v", err)
	}
	return newTable(q, s, constraints, Options{})
}

func pid(t *testing.T, tb *table, p predicate.Predicate) int32 {
	t.Helper()
	id, ok := tb.lookupCol(p)
	if !ok {
		t.Fatalf("predicate %s not interned", p)
	}
	return int32(id)
}

func TestChaseDirectDerivation(t *testing.T) {
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	c := constraint.New("c", []predicate.Predicate{a1}, nil, b2)
	tb := chaseFixture(t, []*constraint.Constraint{c}, []predicate.Predicate{a1, b2})

	ch := newChase(tb, []int32{pid(t, tb, a1)})
	if !ch.derivable(pid(t, tb, b2)) {
		t.Error("b=2 should be derivable from a=1 via c")
	}
	supports := ch.supports(pid(t, tb, b2))
	if !reflect.DeepEqual(supports, []int32{pid(t, tb, a1)}) {
		t.Errorf("supports = %v, want just a=1", supports)
	}
}

func TestChaseTransitiveDerivation(t *testing.T) {
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	c3 := predicate.Eq("t", "c", value.Int(3))
	k1 := constraint.New("k1", []predicate.Predicate{a1}, nil, b2)
	k2 := constraint.New("k2", []predicate.Predicate{b2}, nil, c3)
	tb := chaseFixture(t, []*constraint.Constraint{k1, k2}, []predicate.Predicate{a1, b2, c3})

	ch := newChase(tb, []int32{pid(t, tb, a1)})
	if !ch.derivable(pid(t, tb, c3)) {
		t.Error("c=3 should chain through b=2")
	}
	supports := ch.supports(pid(t, tb, c3))
	if !reflect.DeepEqual(supports, []int32{pid(t, tb, a1)}) {
		t.Errorf("transitive supports should bottom out at the base: %v", supports)
	}
}

func TestChaseImplicationStep(t *testing.T) {
	// Base a=5; constraint needs a>3.
	a5 := predicate.Eq("t", "a", value.Int(5))
	aGT3 := predicate.Sel("t", "a", predicate.GT, value.Int(3))
	b2 := predicate.Eq("t", "b", value.Int(2))
	k := constraint.New("k", []predicate.Predicate{aGT3}, nil, b2)
	tb := chaseFixture(t, []*constraint.Constraint{k}, []predicate.Predicate{a5, b2})

	ch := newChase(tb, []int32{pid(t, tb, a5)})
	if !ch.derivable(pid(t, tb, b2)) {
		t.Error("a=5 implies a>3, so b=2 should derive")
	}
	// The support is the implying base predicate a=5.
	supports := ch.supports(pid(t, tb, b2))
	if !reflect.DeepEqual(supports, []int32{pid(t, tb, a5)}) {
		t.Errorf("supports = %v, want a=5", supports)
	}
}

func TestChaseNotDerivable(t *testing.T) {
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	c3 := predicate.Eq("t", "c", value.Int(3))
	k := constraint.New("k", []predicate.Predicate{b2}, nil, c3)
	tb := chaseFixture(t, []*constraint.Constraint{k}, []predicate.Predicate{a1, b2, c3})

	// Base is a=1 only: b=2 absent, so neither b=2 nor c=3 derive.
	ch := newChase(tb, []int32{pid(t, tb, a1)})
	if ch.derivable(pid(t, tb, b2)) || ch.derivable(pid(t, tb, c3)) {
		t.Error("nothing should derive from an unrelated base")
	}
	if ch.supports(pid(t, tb, c3)) != nil {
		t.Error("supports of an underivable target should be nil")
	}
}

func TestChaseMutualConstraintsNeedOneCarrier(t *testing.T) {
	// a=1 <-> b=2 (mutual implication via two constraints): from an empty
	// base nothing derives; from either one, both derive.
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	k1 := constraint.New("k1", []predicate.Predicate{a1}, nil, b2)
	k2 := constraint.New("k2", []predicate.Predicate{b2}, nil, a1)
	tb := chaseFixture(t, []*constraint.Constraint{k1, k2}, []predicate.Predicate{a1, b2})

	empty := newChase(tb, nil)
	if empty.derivable(pid(t, tb, a1)) || empty.derivable(pid(t, tb, b2)) {
		t.Error("mutual constraints must not bootstrap from nothing")
	}
	fromA := newChase(tb, []int32{pid(t, tb, a1)})
	if !fromA.derivable(pid(t, tb, b2)) {
		t.Error("b=2 should derive from a=1")
	}
	fromB := newChase(tb, []int32{pid(t, tb, b2)})
	if !fromB.derivable(pid(t, tb, a1)) {
		t.Error("a=1 should derive from b=2")
	}
}

func TestChaseMultiAntecedentSupports(t *testing.T) {
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	c3 := predicate.Eq("t", "c", value.Int(3))
	d4 := predicate.Eq("t", "d", value.Int(4))
	k := constraint.New("k", []predicate.Predicate{a1, b2, c3}, nil, d4)
	tb := chaseFixture(t, []*constraint.Constraint{k}, []predicate.Predicate{a1, b2, c3, d4})

	ch := newChase(tb, []int32{pid(t, tb, a1), pid(t, tb, b2), pid(t, tb, c3)})
	if !ch.derivable(pid(t, tb, d4)) {
		t.Fatal("d=4 should derive")
	}
	supports := append([]int32(nil), ch.supports(pid(t, tb, d4))...)
	slices.Sort(supports)
	want := []int32{pid(t, tb, a1), pid(t, tb, b2), pid(t, tb, c3)}
	slices.Sort(want)
	if !reflect.DeepEqual(supports, want) {
		t.Errorf("supports = %v, want all three antecedents %v", supports, want)
	}
}

func TestChaseUnconditionalConstraint(t *testing.T) {
	// No antecedents: the consequent derives from the empty base.
	b2 := predicate.Eq("t", "b", value.Int(2))
	k := constraint.New("k", nil, nil, b2)
	tb := chaseFixture(t, []*constraint.Constraint{k}, []predicate.Predicate{b2})
	ch := newChase(tb, nil)
	if !ch.derivable(pid(t, tb, b2)) {
		t.Error("unconditional consequent should always derive")
	}
	if got := ch.supports(pid(t, tb, b2)); len(got) != 0 {
		t.Errorf("unconditional derivation needs no supports, got %v", got)
	}
}

// TestMutualDropSoundness reproduces the soundness hole the chase exists
// for: query {a=1, b=2} with a=1 <-> b=2 and a cost model that discards all
// optionals. Without the repair both predicates would vanish; with it, one
// carrier survives.
func TestMutualDropSoundness(t *testing.T) {
	s := schema.NewBuilder().
		Class("t",
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindInt}).
		MustBuild()
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	cat := constraint.MustCatalog(
		constraint.New("k1", []predicate.Predicate{a1}, nil, b2),
		constraint.New("k2", []predicate.Predicate{b2}, nil, a1),
	)
	q := query.New("t").AddProject("t", "a").AddSelect(a1).AddSelect(b2)
	o := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: dropAll{}})
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Optimized.Selects) == 0 {
		t.Fatalf("soundness violated: both mutual carriers dropped: %s", res.Optimized)
	}
	// The restore must be visible in the trace.
	found := false
	for _, tr := range res.Trace {
		if tr.Kind == TransformRestoreSupport {
			found = true
		}
	}
	if !found {
		t.Error("expected a restore-support trace entry")
	}
}
