package core

// This file implements the derivability ("chase") machinery that keeps
// formulation sound.
//
// The tag algorithm lowers a predicate as soon as SOME fireable constraint
// implies it — but two predicates can lower each other (c2: frozen food →
// SFI and its converse both fire, tagging both optional), after which
// nothing forces either to survive formulation. Dropping both changes the
// query's meaning. The paper does not address this case; the guard here
// restores the invariant the whole approach rests on:
//
//	every predicate of the original query must be derivable from the
//	predicates retained in the formulated query.
//
// Derivability is computed by chasing the relevant constraints over a base
// set: a predicate is available when some base or derived predicate implies
// it, and a constraint fires when all its antecedents are available. The
// chase also records which base predicates support each derivation, so class
// elimination can pin its witnesses (promote them to imperative) before the
// cost-benefit pass gets a chance to discard them.

// chase runs derivations over the table's relevant constraints from a base
// set of pool predicate IDs.
type chase struct {
	t       *table
	inSet   []bool        // pool id -> in the derived set
	derived map[int][]int // derived pred id -> antecedent pred ids used
}

// newChase starts a chase from the given base predicates and runs it to
// fixpoint.
func newChase(t *table, base []int) *chase {
	c := &chase{
		t:       t,
		inSet:   make([]bool, t.pool.Len()),
		derived: map[int][]int{},
	}
	for _, id := range base {
		c.inSet[id] = true
	}
	c.run()
	return c
}

// available reports whether predicate id is implied by the current set, and
// returns the in-set predicate witnessing it (the lowest-numbered one, as a
// scan over the pool would find). Implication candidates come from the
// table's lazy reverse adjacency, so the check is O(in-degree) with no
// predicate comparisons beyond the column's first use.
func (c *chase) available(id int) (int, bool) {
	if c.inSet[id] {
		return id, true
	}
	for _, p := range c.t.revOf(id) {
		c.t.ops++
		if c.inSet[p] {
			return p, true
		}
	}
	return 0, false
}

// run fires constraints until no new predicate becomes derivable.
func (c *chase) run() {
	for changed := true; changed; {
		changed = false
		for i := range c.t.constraints {
			consID := c.t.consCol[i]
			if c.inSet[consID] {
				continue
			}
			ok := true
			var used []int
			for _, col := range c.t.antsCols[i] {
				w, avail := c.available(col)
				if !avail {
					ok = false
					break
				}
				used = append(used, w)
			}
			if !ok {
				continue
			}
			c.inSet[consID] = true
			c.derived[consID] = used
			changed = true
		}
	}
}

// derivable reports whether the target predicate is implied by the chase set.
func (c *chase) derivable(target int) bool {
	_, ok := c.available(target)
	return ok
}

// supports returns the base predicates underpinning the derivation of
// target: the transitive antecedents of the witnessing derivations, stopping
// at predicates that were never derived (i.e. base members).
func (c *chase) supports(target int) []int {
	w, ok := c.available(target)
	if !ok {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	var walk func(id int)
	walk = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		ants, wasDerived := c.derived[id]
		if !wasDerived {
			out = append(out, id) // base predicate
			return
		}
		for _, a := range ants {
			walk(a)
		}
	}
	walk(w)
	return out
}
