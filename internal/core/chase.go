package core

// This file implements the derivability ("chase") machinery that keeps
// formulation sound.
//
// The tag algorithm lowers a predicate as soon as SOME fireable constraint
// implies it — but two predicates can lower each other (c2: frozen food →
// SFI and its converse both fire, tagging both optional), after which
// nothing forces either to survive formulation. Dropping both changes the
// query's meaning. The paper does not address this case; the guard here
// restores the invariant the whole approach rests on:
//
//	every predicate of the original query must be derivable from the
//	predicates retained in the formulated query.
//
// Derivability is computed by chasing the relevant constraints over a base
// set: a predicate is available when some base or derived predicate implies
// it, and a constraint fires when all its antecedents are available. The
// chase also records which base predicates support each derivation, so class
// elimination can pin its witnesses (promote them to imperative) before the
// cost-benefit pass gets a chance to discard them.
//
// Formulation starts several chases per query (one per elimination candidate
// plus the repair loop), so all chase state lives in reusable buffers on the
// table's scratch (chaseScratch): no maps, no per-chase allocation.

// chaseScratch holds the reusable buffers of the chase machinery.
type chaseScratch struct {
	inSet   []bool     // per column: in the derived set
	antsOf  [][2]int32 // per column: span into ants of the witnessing derivation
	derived []bool     // per column: antsOf span is live (column was derived)
	ants    []int32    // arena backing the derivation witness lists
	seen    []bool     // supports() visit marks
	out     []int32    // supports() result buffer
	stack   []int32    // supports() walk stack
}

// chase runs derivations over the table's relevant constraints from a base
// set of column IDs. It is a value handle over the table's chase scratch, so
// starting one allocates nothing.
type chase struct {
	t *table
}

// newChase starts a chase from the given base columns and runs it to
// fixpoint. Only one chase is live per table at a time; starting a new one
// rewinds the previous one's state.
func newChase(t *table, base []int32) chase {
	cs := &t.chase
	m := t.m()
	cs.inSet = grow(cs.inSet, m)
	cs.derived = grow(cs.derived, m)
	if cap(cs.antsOf) < m {
		cs.antsOf = make([][2]int32, m)
	}
	cs.antsOf = cs.antsOf[:m]
	cs.ants = cs.ants[:0]
	for _, id := range base {
		cs.inSet[id] = true
	}
	c := chase{t: t}
	c.run()
	return c
}

// available reports whether predicate id is implied by the current set, and
// returns the in-set predicate witnessing it (the lowest-numbered one, as a
// scan over the columns would find). Implication candidates come from the
// table's lazy reverse adjacency, so the check is O(in-degree) with no
// predicate comparisons beyond the column's first use.
func (c chase) available(id int32) (int32, bool) {
	cs := &c.t.chase
	if cs.inSet[id] {
		return id, true
	}
	for _, p := range c.t.revOf(id) {
		c.t.ops++
		if cs.inSet[p] {
			return p, true
		}
	}
	return 0, false
}

// run fires constraints until no new predicate becomes derivable.
func (c chase) run() {
	cs := &c.t.chase
	for changed := true; changed; {
		changed = false
		for i := range c.t.constraints {
			consID := c.t.consCol[i]
			if cs.inSet[consID] {
				continue
			}
			ok := true
			start := int32(len(cs.ants))
			for _, col := range c.t.ants(i) {
				w, avail := c.available(col)
				if !avail {
					ok = false
					break
				}
				cs.ants = append(cs.ants, w)
			}
			if !ok {
				cs.ants = cs.ants[:start]
				continue
			}
			cs.inSet[consID] = true
			cs.derived[consID] = true
			cs.antsOf[consID] = [2]int32{start, int32(len(cs.ants))}
			changed = true
		}
	}
}

// derivable reports whether the target predicate is implied by the chase set.
func (c chase) derivable(target int32) bool {
	_, ok := c.available(target)
	return ok
}

// supports returns the base predicates underpinning the derivation of
// target: the transitive antecedents of the witnessing derivations, stopping
// at predicates that were never derived (i.e. base members). The returned
// slice is a scratch buffer, valid until the next supports call.
func (c chase) supports(target int32) []int32 {
	w, ok := c.available(target)
	if !ok {
		return nil
	}
	cs := &c.t.chase
	cs.seen = grow(cs.seen, c.t.m())
	cs.out = cs.out[:0]
	cs.stack = append(cs.stack[:0], w)
	for len(cs.stack) > 0 {
		id := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		if cs.seen[id] {
			continue
		}
		cs.seen[id] = true
		if !cs.derived[id] {
			cs.out = append(cs.out, id) // base predicate
			continue
		}
		span := cs.antsOf[id]
		cs.stack = append(cs.stack, cs.ants[span[0]:span[1]]...)
	}
	return cs.out
}
