package core

import (
	"sqo/internal/predicate"
	"sqo/internal/query"
)

// predState tracks one present predicate through the formulation passes.
type predState struct {
	id      int32
	pred    predicate.Predicate
	tag     Tag
	inQuery bool
	dropped bool // removed by class elimination
	pinned  bool // witness of a class elimination; must be retained
}

// formScratch holds the reusable buffers of the formulation step. States are
// stored by value and addressed by index; stateOf maps a column to its state
// index (or -1), replacing the map the pre-interning code used.
type formScratch struct {
	states   []predState
	stateOf  []int32 // per column: index into states, or -1
	optional []int32 // indices into states of the choice-set optionals
	kept     []bool  // parallel to optional
	base     []int32 // elimination-candidate chase base (columns)
	targets  []int32 // indices into states of the victim's original predicates
	supFlag  []bool  // per state index: pinned-support marker
	supList  []int32 // support state indices, insertion-ordered
	retained []int32 // repair-loop chase base (columns)
	touching []string
}

// formulate implements the paper's Query Formulation step (Section 3.4):
// derive the final tag of every predicate from the table, apply class
// elimination if desirable, run cost-benefit analysis on optional predicates,
// and emit a query containing only the imperative and retained optional
// predicates. The paper's order is followed — class elimination precedes the
// per-predicate profitability pass, which is why the worked example can drop
// supplier.name = "SFI" without ever costing it.
//
// Two soundness guards sharpen the paper's description (see chase.go):
// class elimination must prove every original predicate on the victim
// derivable from retained predicates (and pins those witnesses), and a final
// repair pass restores any original predicate the retained set cannot
// derive.
//
// Everything the Result keeps — trace, tagged predicates, the formulated
// query — is copied out of the scratch buffers fresh, so pooled tables can
// be reused immediately.
func (o *Optimizer) formulate(t *table) *Result {
	res := &Result{}
	fs := &t.form

	m := t.m()
	fs.states = fs.states[:0]
	if cap(fs.stateOf) < m {
		fs.stateOf = make([]int32, m)
	}
	fs.stateOf = fs.stateOf[:m]
	for id := 0; id < m; id++ {
		fs.stateOf[id] = -1
		if !t.present[id] {
			continue
		}
		fs.stateOf[id] = int32(len(fs.states))
		fs.states = append(fs.states, predState{
			id:      int32(id),
			pred:    t.preds[id],
			tag:     t.tags[id],
			inQuery: t.inQuery[id],
		})
	}
	states := fs.states

	// Contradiction detection (extension): every present predicate is
	// implied by the original query, so any contradicting pair proves the
	// result empty in all legal database states.
	if o.opts.DetectContradictions {
	outer:
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				t.ops++
				if states[i].pred.Contradicts(states[j].pred) {
					res.EmptyResult = true
					break outer
				}
			}
		}
	}

	// --- class elimination (King's rule, chase-checked) -----------------
	classes := append([]string(nil), t.q.Classes...)
	rels := append([]string(nil), t.q.Relationships...)
	if o.opts.rules().Has(RuleClassElimination) {
		for {
			victim, viaRel := o.eliminationCandidate(t, classes, rels)
			if victim == "" {
				break
			}
			classes = remove(classes, victim)
			rels = remove(rels, viaRel)
			for i := range states {
				if !states[i].dropped && states[i].pred.References(victim) {
					states[i].dropped = true
				}
			}
			t.trace = append(t.trace, Transformation{
				Kind:  TransformClassElimination,
				Class: victim,
			})
		}
	}

	// --- cost-benefit analysis on optional predicates ------------------
	// Build the working query with the imperative predicates only, then
	// decide which optionals to keep: exact subset selection when the
	// cost model can price whole queries, greedy fixpoint otherwise.
	nJoins := 0
	for i := range states {
		if states[i].pred.IsJoin() {
			nJoins++
		}
	}
	working := &query.Query{
		Project:       append([]predicate.AttrRef(nil), t.q.Project...),
		Joins:         make([]predicate.Predicate, 0, nJoins),
		Selects:       make([]predicate.Predicate, 0, len(states)-nJoins),
		Relationships: rels,
		Classes:       classes,
	}
	for i := range states {
		if states[i].dropped || states[i].tag != TagImperative {
			continue
		}
		working = appendPred(working, states[i].pred)
	}
	fs.optional = fs.optional[:0]
	for i := range states {
		if states[i].dropped || states[i].tag != TagOptional {
			continue
		}
		if states[i].pinned {
			// Elimination witnesses are kept unconditionally; they
			// join the working set rather than the choice set.
			working = appendPred(working, states[i].pred)
			continue
		}
		fs.optional = append(fs.optional, int32(i))
	}
	kept := o.selectOptionals(t, working, fs.optional)
	for oi, si := range fs.optional {
		if kept[oi] {
			continue
		}
		// "Those optional predicates that are not found to be
		// profitable would be re-classified as redundant."
		states[si].tag = TagRedundant
		t.trace = append(t.trace, Transformation{
			Kind:   TransformDiscardOptional,
			Pred:   states[si].pred,
			NewTag: TagRedundant,
		})
	}

	// --- soundness repair ------------------------------------------------
	// Every original predicate still on a surviving class must be
	// derivable from what the formulated query retains; otherwise it is
	// restored as imperative. (Mutually-implying constraints can tag two
	// predicates optional through each other, and the cost pass might
	// drop both.)
	for {
		fs.retained = fs.retained[:0]
		for i := range states {
			if !states[i].dropped && states[i].tag != TagRedundant {
				fs.retained = append(fs.retained, states[i].id)
			}
		}
		ch := newChase(t, fs.retained)
		promoted := false
		for i := range states {
			if states[i].dropped || !states[i].inQuery || states[i].tag != TagRedundant {
				continue
			}
			if !ch.derivable(states[i].id) {
				states[i].tag = TagImperative
				t.trace = append(t.trace, Transformation{
					Kind:   TransformRestoreSupport,
					Pred:   states[i].pred,
					NewTag: TagImperative,
				})
				promoted = true
				break // rebuild the chase with the new support
			}
		}
		if !promoted {
			break
		}
	}

	// --- subsumption among retained predicates -------------------------
	// A retained predicate implied by another retained predicate filters
	// nothing further; drop it (soundness: every present predicate is
	// implied by the original query, and the implying predicate stays).
	if !o.opts.DisableSubsumption {
		isRetained := func(st *predState) bool {
			return !st.dropped && st.tag != TagRedundant
		}
		for w := range states {
			weak := &states[w]
			if !isRetained(weak) {
				continue
			}
			for s := range states {
				strong := &states[s]
				if s == w || !isRetained(strong) {
					continue
				}
				t.ops++
				if strong.pred.Implies(weak.pred) {
					weak.dropped = true
					t.trace = append(t.trace, Transformation{
						Kind: TransformSubsumption,
						Pred: weak.pred,
					})
					break
				}
			}
		}
	}

	// --- emit -----------------------------------------------------------
	out := &query.Query{
		Project:       append([]predicate.AttrRef(nil), t.q.Project...),
		Joins:         make([]predicate.Predicate, 0, nJoins),
		Selects:       make([]predicate.Predicate, 0, len(states)-nJoins),
		Relationships: rels,
		Classes:       classes,
	}
	res.tagged = make([]TaggedPredicate, 0, len(states))
	for i := range states {
		res.tagged = append(res.tagged, TaggedPredicate{Pred: states[i].pred, Tag: states[i].tag})
		if states[i].dropped || states[i].tag == TagRedundant {
			continue
		}
		out = appendPred(out, states[i].pred)
	}
	res.Optimized = out
	if len(t.trace) > 0 {
		res.Trace = append([]Transformation(nil), t.trace...)
	}
	if t.depsOK {
		// Non-nil even when empty: "depends on no constraints" must stay
		// distinguishable from "dependency set unknown".
		res.deps = make([]int32, len(t.deps))
		copy(res.deps, t.deps)
	}
	return res
}

// maxSubsetSearch caps the exact optional-subset search: up to 2^10 whole-
// query estimates. Relevant constraint sets rarely yield more optionals.
const maxSubsetSearch = 10

// selectOptionals decides which optional predicates to retain (optionals are
// state indices into the formulation scratch). With a QueryEstimator cost
// model and few enough optionals it minimizes the estimated cost over all
// subsets; otherwise it runs the per-predicate profitable(p) test to a
// fixpoint (a predicate can become profitable once another kept predicate
// changes the plan). The returned slice is scratch, parallel to optionals.
func (o *Optimizer) selectOptionals(t *table, working *query.Query, optionals []int32) []bool {
	fs := &t.form
	if cap(fs.kept) < len(optionals) {
		fs.kept = make([]bool, len(optionals))
	}
	fs.kept = fs.kept[:len(optionals)]
	clear(fs.kept)
	kept := fs.kept
	if len(optionals) == 0 {
		return kept
	}
	states := fs.states
	if est, ok := o.opts.Cost.(QueryEstimator); ok && len(optionals) <= maxSubsetSearch {
		bestMask, bestCost := 0, est.EstimateQuery(working)
		for mask := 1; mask < 1<<len(optionals); mask++ {
			cand := working.Clone()
			for i := range optionals {
				if mask&(1<<i) != 0 {
					cand = appendPred(cand, states[optionals[i]].pred)
				}
			}
			if c := est.EstimateQuery(cand); c < bestCost {
				bestMask, bestCost = mask, c
			}
		}
		for i := range optionals {
			if bestMask&(1<<i) != 0 {
				kept[i] = true
				working = appendPred(working, states[optionals[i]].pred)
			}
		}
		return kept
	}
	// Greedy fixpoint on the per-predicate test.
	for changed := true; changed; {
		changed = false
		for i, si := range optionals {
			if kept[i] {
				continue
			}
			if o.opts.Cost.Profitable(working, states[si].pred) {
				kept[i] = true
				working = appendPred(working, states[si].pred)
				changed = true
			}
		}
	}
	return kept
}

// eliminationCandidate finds one class that can be dropped: not projected,
// dangling on exactly one relationship, reached from the retained side by a
// total single-valued link, judged beneficial by the cost model, and — the
// soundness core — every original predicate on it must be derivable from the
// present predicates of the other classes. The witnesses of those
// derivations are pinned (promoted to imperative) so later passes cannot
// discard them. It returns the class and its relationship, or "" when none
// qualifies.
func (o *Optimizer) eliminationCandidate(t *table, classes, rels []string) (string, string) {
	if len(classes) <= 1 {
		return "", ""
	}
	fs := &t.form
	states := fs.states
	for _, class := range classes {
		if t.q.ProjectsFrom(class) {
			continue
		}
		// Dangling: exactly one relationship in the query touches it.
		fs.touching = fs.touching[:0]
		for _, rn := range rels {
			if r := o.schema.Relationship(rn); r != nil && r.Involves(class) {
				fs.touching = append(fs.touching, rn)
			}
		}
		if len(fs.touching) != 1 {
			continue
		}
		via := fs.touching[0]
		r := o.schema.Relationship(via)
		other, _ := r.Other(class)
		// Safety (DESIGN.md deviation #4): every retained instance
		// must link to exactly one instance of the victim, so removing
		// the join changes neither membership nor multiplicity.
		if !r.SingleValuedFrom(other) || !r.TotalFrom(other) {
			continue
		}

		// Derivability: original predicates on the victim must follow
		// from predicates that survive the elimination.
		fs.base = fs.base[:0]
		fs.targets = fs.targets[:0]
		for i := range states {
			if states[i].dropped {
				continue
			}
			if states[i].pred.References(class) {
				if states[i].inQuery {
					fs.targets = append(fs.targets, int32(i))
				}
				continue
			}
			fs.base = append(fs.base, states[i].id)
		}
		ch := newChase(t, fs.base)
		ok := true
		fs.supFlag = grow(fs.supFlag, len(states))
		fs.supList = fs.supList[:0]
		for _, ti := range fs.targets {
			if !ch.derivable(states[ti].id) {
				ok = false
				break
			}
			for _, s := range ch.supports(states[ti].id) {
				if si := fs.stateOf[s]; si >= 0 && !fs.supFlag[si] {
					fs.supFlag[si] = true
					fs.supList = append(fs.supList, si)
				}
			}
		}
		if !ok {
			continue
		}
		if !o.opts.Cost.ClassEliminationBeneficial(t.q, class) {
			continue
		}
		// Pin the witnesses: they keep their tags (the paper's worked
		// example reports cargo.desc = "frozen food" as optional) but
		// can no longer be discarded.
		for _, si := range fs.supList {
			st := &states[si]
			if st.dropped || st.pinned || st.tag == TagImperative {
				continue
			}
			st.pinned = true
			if st.tag == TagRedundant {
				// A redundant witness would not survive emission;
				// it must come back as a real predicate.
				st.tag = TagOptional
			}
			t.trace = append(t.trace, Transformation{
				Kind:   TransformRestoreSupport,
				Pred:   st.pred,
				NewTag: st.tag,
			})
		}
		return class, via
	}
	return "", ""
}

func appendPred(q *query.Query, p predicate.Predicate) *query.Query {
	if p.IsJoin() {
		q.Joins = append(q.Joins, p)
	} else {
		q.Selects = append(q.Selects, p)
	}
	return q
}

func remove(list []string, item string) []string {
	out := list[:0:0]
	for _, s := range list {
		if s != item {
			out = append(out, s)
		}
	}
	return out
}
