package core

import (
	"sqo/internal/predicate"
	"sqo/internal/query"
)

// predState tracks one present predicate through the formulation passes.
type predState struct {
	id      int
	pred    predicate.Predicate
	tag     Tag
	inQuery bool
	dropped bool // removed by class elimination
	pinned  bool // witness of a class elimination; must be retained
}

// formulate implements the paper's Query Formulation step (Section 3.4):
// derive the final tag of every predicate from the table, apply class
// elimination if desirable, run cost-benefit analysis on optional predicates,
// and emit a query containing only the imperative and retained optional
// predicates. The paper's order is followed — class elimination precedes the
// per-predicate profitability pass, which is why the worked example can drop
// supplier.name = "SFI" without ever costing it.
//
// Two soundness guards sharpen the paper's description (see chase.go):
// class elimination must prove every original predicate on the victim
// derivable from retained predicates (and pins those witnesses), and a final
// repair pass restores any original predicate the retained set cannot
// derive.
func (o *Optimizer) formulate(t *table) *Result {
	res := &Result{FinalTags: map[string]Tag{}}

	m := t.pool.Len()
	var states []*predState
	stateByID := map[int]*predState{}
	for id := 0; id < m; id++ {
		if !t.present[id] {
			continue
		}
		st := &predState{id: id, pred: t.pool.At(id), tag: t.tags[id], inQuery: t.inQuery[id]}
		states = append(states, st)
		stateByID[id] = st
	}

	// Contradiction detection (extension): every present predicate is
	// implied by the original query, so any contradicting pair proves the
	// result empty in all legal database states.
	if o.opts.DetectContradictions {
	outer:
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				t.ops++
				if states[i].pred.Contradicts(states[j].pred) {
					res.EmptyResult = true
					break outer
				}
			}
		}
	}

	// --- class elimination (King's rule, chase-checked) -----------------
	classes := append([]string(nil), t.q.Classes...)
	rels := append([]string(nil), t.q.Relationships...)
	if o.opts.rules().Has(RuleClassElimination) {
		for {
			victim, viaRel := o.eliminationCandidate(t, classes, rels, states, stateByID)
			if victim == "" {
				break
			}
			classes = remove(classes, victim)
			rels = remove(rels, viaRel)
			for _, st := range states {
				if !st.dropped && st.pred.References(victim) {
					st.dropped = true
				}
			}
			t.trace = append(t.trace, Transformation{
				Kind:  TransformClassElimination,
				Class: victim,
			})
		}
	}

	// --- cost-benefit analysis on optional predicates ------------------
	// Build the working query with the imperative predicates only, then
	// decide which optionals to keep: exact subset selection when the
	// cost model can price whole queries, greedy fixpoint otherwise.
	working := &query.Query{
		Project:       append([]predicate.AttrRef(nil), t.q.Project...),
		Relationships: rels,
		Classes:       classes,
	}
	for _, st := range states {
		if st.dropped || st.tag != TagImperative {
			continue
		}
		working = appendPred(working, st.pred)
	}
	var optionals []*predState
	for _, st := range states {
		if st.dropped || st.tag != TagOptional {
			continue
		}
		if st.pinned {
			// Elimination witnesses are kept unconditionally; they
			// join the working set rather than the choice set.
			working = appendPred(working, st.pred)
			continue
		}
		optionals = append(optionals, st)
	}
	kept := o.selectOptionals(working, optionals)
	for i, st := range optionals {
		if kept[i] {
			continue
		}
		// "Those optional predicates that are not found to be
		// profitable would be re-classified as redundant."
		st.tag = TagRedundant
		t.trace = append(t.trace, Transformation{
			Kind:   TransformDiscardOptional,
			Pred:   st.pred,
			NewTag: TagRedundant,
		})
	}

	// --- soundness repair ------------------------------------------------
	// Every original predicate still on a surviving class must be
	// derivable from what the formulated query retains; otherwise it is
	// restored as imperative. (Mutually-implying constraints can tag two
	// predicates optional through each other, and the cost pass might
	// drop both.)
	for {
		var retained []int
		for _, st := range states {
			if !st.dropped && st.tag != TagRedundant {
				retained = append(retained, st.id)
			}
		}
		ch := newChase(t, retained)
		promoted := false
		for _, st := range states {
			if st.dropped || !st.inQuery || st.tag != TagRedundant {
				continue
			}
			if !ch.derivable(st.id) {
				st.tag = TagImperative
				t.trace = append(t.trace, Transformation{
					Kind:   TransformRestoreSupport,
					Pred:   st.pred,
					NewTag: TagImperative,
				})
				promoted = true
				break // rebuild the chase with the new support
			}
		}
		if !promoted {
			break
		}
	}

	// --- subsumption among retained predicates -------------------------
	// A retained predicate implied by another retained predicate filters
	// nothing further; drop it (soundness: every present predicate is
	// implied by the original query, and the implying predicate stays).
	if !o.opts.DisableSubsumption {
		isRetained := func(st *predState) bool {
			return !st.dropped && st.tag != TagRedundant
		}
		for _, weak := range states {
			if !isRetained(weak) {
				continue
			}
			for _, strong := range states {
				if strong == weak || !isRetained(strong) {
					continue
				}
				t.ops++
				if strong.pred.Implies(weak.pred) {
					weak.dropped = true
					t.trace = append(t.trace, Transformation{
						Kind: TransformSubsumption,
						Pred: weak.pred,
					})
					break
				}
			}
		}
	}

	// --- emit -----------------------------------------------------------
	out := &query.Query{
		Project:       append([]predicate.AttrRef(nil), t.q.Project...),
		Relationships: rels,
		Classes:       classes,
	}
	for _, st := range states {
		res.FinalTags[st.pred.Key()] = st.tag
		res.tagged = append(res.tagged, TaggedPredicate{Pred: st.pred, Tag: st.tag})
		if st.dropped || st.tag == TagRedundant {
			continue
		}
		out = appendPred(out, st.pred)
	}
	res.Optimized = out
	res.Trace = t.trace
	return res
}

// maxSubsetSearch caps the exact optional-subset search: up to 2^10 whole-
// query estimates. Relevant constraint sets rarely yield more optionals.
const maxSubsetSearch = 10

// selectOptionals decides which optional predicates to retain. With a
// QueryEstimator cost model and few enough optionals it minimizes the
// estimated cost over all subsets; otherwise it runs the per-predicate
// profitable(p) test to a fixpoint (a predicate can become profitable once
// another kept predicate changes the plan).
func (o *Optimizer) selectOptionals(working *query.Query, optionals []*predState) []bool {
	kept := make([]bool, len(optionals))
	if len(optionals) == 0 {
		return kept
	}
	if est, ok := o.opts.Cost.(QueryEstimator); ok && len(optionals) <= maxSubsetSearch {
		bestMask, bestCost := 0, est.EstimateQuery(working)
		for mask := 1; mask < 1<<len(optionals); mask++ {
			cand := working.Clone()
			for i := range optionals {
				if mask&(1<<i) != 0 {
					cand = appendPred(cand, optionals[i].pred)
				}
			}
			if c := est.EstimateQuery(cand); c < bestCost {
				bestMask, bestCost = mask, c
			}
		}
		for i := range optionals {
			if bestMask&(1<<i) != 0 {
				kept[i] = true
				working = appendPred(working, optionals[i].pred)
			}
		}
		return kept
	}
	// Greedy fixpoint on the per-predicate test.
	for changed := true; changed; {
		changed = false
		for i, st := range optionals {
			if kept[i] {
				continue
			}
			if o.opts.Cost.Profitable(working, st.pred) {
				kept[i] = true
				working = appendPred(working, st.pred)
				changed = true
			}
		}
	}
	return kept
}

// eliminationCandidate finds one class that can be dropped: not projected,
// dangling on exactly one relationship, reached from the retained side by a
// total single-valued link, judged beneficial by the cost model, and — the
// soundness core — every original predicate on it must be derivable from the
// present predicates of the other classes. The witnesses of those
// derivations are pinned (promoted to imperative) so later passes cannot
// discard them. It returns the class and its relationship, or "" when none
// qualifies.
func (o *Optimizer) eliminationCandidate(t *table, classes, rels []string, states []*predState, stateByID map[int]*predState) (string, string) {
	if len(classes) <= 1 {
		return "", ""
	}
	for _, class := range classes {
		if t.q.ProjectsFrom(class) {
			continue
		}
		// Dangling: exactly one relationship in the query touches it.
		var touching []string
		for _, rn := range rels {
			if r := o.schema.Relationship(rn); r != nil && r.Involves(class) {
				touching = append(touching, rn)
			}
		}
		if len(touching) != 1 {
			continue
		}
		r := o.schema.Relationship(touching[0])
		other, _ := r.Other(class)
		// Safety (DESIGN.md deviation #4): every retained instance
		// must link to exactly one instance of the victim, so removing
		// the join changes neither membership nor multiplicity.
		if !r.SingleValuedFrom(other) || !r.TotalFrom(other) {
			continue
		}

		// Derivability: original predicates on the victim must follow
		// from predicates that survive the elimination.
		var base []int
		var targets []*predState
		for _, st := range states {
			if st.dropped {
				continue
			}
			if st.pred.References(class) {
				if st.inQuery {
					targets = append(targets, st)
				}
				continue
			}
			base = append(base, st.id)
		}
		ch := newChase(t, base)
		ok := true
		supportIDs := map[int]bool{}
		for _, target := range targets {
			if !ch.derivable(target.id) {
				ok = false
				break
			}
			for _, s := range ch.supports(target.id) {
				supportIDs[s] = true
			}
		}
		if !ok {
			continue
		}
		if !o.opts.Cost.ClassEliminationBeneficial(t.q, class) {
			continue
		}
		// Pin the witnesses: they keep their tags (the paper's worked
		// example reports cargo.desc = "frozen food" as optional) but
		// can no longer be discarded.
		for id := range supportIDs {
			st := stateByID[id]
			if st == nil || st.dropped || st.pinned || st.tag == TagImperative {
				continue
			}
			st.pinned = true
			if st.tag == TagRedundant {
				// A redundant witness would not survive emission;
				// it must come back as a real predicate.
				st.tag = TagOptional
			}
			t.trace = append(t.trace, Transformation{
				Kind:   TransformRestoreSupport,
				Pred:   st.pred,
				NewTag: st.tag,
			})
		}
		return class, touching[0]
	}
	return "", ""
}

func appendPred(q *query.Query, p predicate.Predicate) *query.Query {
	if p.IsJoin() {
		q.Joins = append(q.Joins, p)
	} else {
		q.Selects = append(q.Selects, p)
	}
	return q
}

func remove(list []string, item string) []string {
	out := list[:0:0]
	for _, s := range list {
		if s != item {
			out = append(out, s)
		}
	}
	return out
}
