package core

import (
	"context"
	"sync"
	"time"

	"sqo/internal/constraint"
	"sqo/internal/obs"
	"sqo/internal/predicate"
	"sqo/internal/query"
)

// Stats summarizes one optimization run.
type Stats struct {
	// RelevantConstraints is n: constraints relevant to the query.
	RelevantConstraints int
	// Predicates is m: distinct predicates across query and constraints.
	Predicates int
	// Fires counts transformations actually applied.
	Fires int
	// Ops counts primitive table operations (cell writes, scans,
	// implication checks). The experiment harness converts this into a
	// deterministic "transformation cost" comparable with execution cost.
	Ops int64
	// TransformDuration is the wall-clock time of initialization plus the
	// transformation loop — what Figure 4.1 reports. The paper excludes
	// the formulation step's cost-benefit analyses from its measurements
	// ("the cost-benefit analyses in the query formulation step are not
	// considered"), and so does this field.
	TransformDuration time.Duration
	// Duration is the wall-clock time of the whole optimization,
	// including retrieval and formulation.
	Duration time.Duration
}

// Result is the outcome of optimizing one query. Results are immutable and
// safe to share across goroutines (the engine's cache returns one instance
// to every hit).
type Result struct {
	// Original is the input query (never mutated).
	Original *query.Query
	// Optimized is the formulated output query.
	Optimized *query.Query
	// EmptyResult is true when contradiction detection proved that the
	// query returns no instances in any database state satisfying the
	// constraints. Optimized is still populated.
	EmptyResult bool
	// Trace lists the transformations in application order.
	Trace []Transformation
	// Stats carries counters and timing.
	Stats Stats

	tagged []TaggedPredicate

	// deps holds the catalog ordinals of every constraint this
	// optimization consulted (the relevant set); nil when the optimizer
	// could not attribute ordinals (custom constraint source, interning
	// disabled). See Deps.
	deps []int32

	ftOnce sync.Once
	ft     map[string]Tag
}

// Deps returns the catalog ordinals of the constraints this result depends
// on — every constraint the transformation table consulted, fired or not —
// ascending, in the ordinal space of the catalog generation that produced
// the result. The engine's incremental catalog updates use it to invalidate
// only the cached results whose dependency set intersects a delta. A nil
// return means the set is unknown (the optimizer ran without an interned
// symbol space or against a custom constraint source) and the result must be
// treated as depending on everything. The slice is owned by the result;
// treat as read-only.
func (r *Result) Deps() []int32 { return r.deps }

// TaggedPredicate pairs a predicate with its final tag, for display.
type TaggedPredicate struct {
	Pred predicate.Predicate
	Tag  Tag
}

// TaggedPredicates returns the final classification of every predicate that
// was present at the end of the transformation (original or introduced), in
// deterministic (column) order — the human-readable companion of FinalTags.
func (r *Result) TaggedPredicates() []TaggedPredicate {
	return append([]TaggedPredicate(nil), r.tagged...)
}

// TaggedCount returns the length of the final tag list.
func (r *Result) TaggedCount() int { return len(r.tagged) }

// TaggedAt returns the i'th entry of the final tag list (0 <= i <
// TaggedCount()) without copying the backing array — the engine's
// containment derivation walks the cached generalization's tags through this
// instead of materializing a TaggedPredicates copy per derived result.
func (r *Result) TaggedAt(i int) TaggedPredicate { return r.tagged[i] }

// FinalTags maps every predicate that was present at the end of the
// transformation (original or introduced) to its final tag, keyed by
// predicate.Key(). The map is materialized on first call — the optimize hot
// path carries tags in interned-ID space and never builds it — and cached;
// treat it as read-only.
func (r *Result) FinalTags() map[string]Tag {
	r.ftOnce.Do(func() {
		ft := make(map[string]Tag, len(r.tagged))
		for _, tp := range r.tagged {
			ft[tp.Pred.Key()] = tp.Tag
		}
		r.ft = ft
	})
	return r.ft
}

// ComposeResult assembles a Result from parts computed outside the
// transformation loop. The engine's containment-aware cache uses it to
// derive the result of a contained query (cached generalization plus
// residual conjuncts) without re-running the table; everything it passes in
// must already be in final form — tagged in column order, deps ascending (or
// nil when unknown). The slices are adopted, not copied.
func ComposeResult(original, optimized *query.Query, empty bool, trace []Transformation, stats Stats, tagged []TaggedPredicate, deps []int32) *Result {
	return &Result{
		Original:    original,
		Optimized:   optimized,
		EmptyResult: empty,
		Trace:       trace,
		Stats:       stats,
		tagged:      tagged,
		deps:        deps,
	}
}

// Optimize runs the full algorithm of Section 3 on q and returns the
// transformed query. The input query is not modified. An invalid query
// (per query.Validate) yields an error.
func (o *Optimizer) Optimize(q *query.Query) (*Result, error) {
	return o.OptimizeContext(context.Background(), q)
}

// OptimizeContext is Optimize with cancellation: the context is checked on
// every pass of the transformation loop (each queue update and each firing),
// so a cancelled or expired context abandons the optimization promptly and
// returns ctx.Err(). Retrieval and formulation run to completion once
// started; the transformation loop between them dominates the runtime
// (O(m·n) table work) and is where cancellation cuts in.
func (o *Optimizer) OptimizeContext(ctx context.Context, q *query.Query) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(o.schema); err != nil {
		return nil, err
	}

	relevant := o.source.Retrieve(q)
	transformStart := time.Now()
	// Pipeline tracing rides the timestamps this function takes anyway:
	// a sampled request's retrieval/transformation/formulation spans cost
	// zero extra clock reads, and a nil trace costs one context lookup.
	tr := obs.FromContext(ctx)
	tr.AddSpan(obs.StageRetrieve, start, transformStart.Sub(start))

	// The table doubles as the per-query scratch arena: taken from the
	// optimizer's pool, reused wholesale (columns, rows, adjacency arena,
	// chase and formulation buffers), and returned on every exit path.
	// Steady-state optimization therefore allocates only what escapes
	// into the Result.
	t := o.tables.Get().(*table)
	defer o.tables.Put(t)
	t.reset(q, o.schema, o.opts, o.syms)
	t.init(relevant, o.prefiltered)

	// Main loop (Figure 3.1): update the queue, drain it, repeat until an
	// update leaves the queue empty.
	budget := o.opts.Budget
	fires := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t.updateQueue()
		if t.queue.Len() == 0 {
			break
		}
		for t.queue.Len() > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if budget > 0 && fires >= budget {
				// Budget exhausted: stop transforming; whatever
				// tags exist now feed formulation.
				t.drainQueue()
				break
			}
			row := t.queue.pop()
			t.queued[row] = false
			if t.fire(row) {
				fires++
			}
		}
		if budget > 0 && fires >= budget {
			break
		}
	}

	transformDur := time.Since(transformStart)
	tr.AddSpan(obs.StageTransform, transformStart, transformDur)

	formulateStart := transformStart.Add(transformDur)
	res := o.formulate(t)
	res.Original = q
	duration := time.Since(start)
	tr.AddSpan(obs.StageFormulate, formulateStart, start.Add(duration).Sub(formulateStart))
	res.Stats = Stats{
		RelevantConstraints: t.n(),
		Predicates:          t.m(),
		Fires:               fires,
		Ops:                 t.ops,
		TransformDuration:   transformDur,
		Duration:            duration,
	}
	return res, nil
}

// consCell returns the current classification of row i's consequent: frozen
// at AbsentConsequent for rows whose consequent was not in the query at
// initialization, the column's live tag otherwise.
func (t *table) consCell(i int) Cell {
	if t.introRow[i] {
		return CellAbsentConsequent
	}
	return cellForTag(t.tags[t.consCol[i]])
}

// updateQueue implements the paper's "Update Transformation Queue"
// (Section 3.2): enqueue every constraint that can fire, and drop from C the
// constraints that can never fire again.
func (t *table) updateQueue() {
	for i := range t.constraints {
		t.ops++
		if t.fired[i] || t.removed[i] || t.queued[i] {
			continue
		}
		switch t.consCell(i) {
		case CellRedundant:
			// Cannot be lowered further.
			t.removed[i] = true
		case CellOptional:
			// Only an intra-class constraint with a non-indexed
			// consequent can lower optional to redundant
			// (Table 3.1); inter-class constraints are spent.
			if t.producedTag(i) == TagRedundant {
				t.maybeEnqueue(i)
			} else {
				t.removed[i] = true
			}
		case CellImperative:
			if t.opts.rules().Has(RuleElimination) {
				t.maybeEnqueue(i)
			}
		case CellAbsentConsequent:
			if t.opts.rules().Has(RuleIntroduction) {
				t.maybeEnqueue(i)
			}
		}
	}
}

// maybeEnqueue inserts row i into the queue when all its antecedent
// predicates are present.
func (t *table) maybeEnqueue(i int) {
	for _, col := range t.ants(i) {
		t.ops++
		if !t.matchPresent[col] {
			return
		}
	}
	t.queued[i] = true
	t.queue.push(i, t.priority(i))
}

// priority orders queue entries under Options.UsePriorities, implementing
// the Section 4 preference: "index introduction is likely to be more
// profitable than predicate elimination, and predicate elimination is
// preferred over predicate introduction".
func (t *table) priority(i int) int {
	introducing := t.introRow[i]
	switch {
	case introducing && t.consequentIndexed(i):
		return 0 // index introduction
	case !introducing:
		return 1 // restriction elimination
	default:
		return 2 // plain restriction introduction
	}
}

// drainQueue empties the queue without firing (budget exhaustion).
func (t *table) drainQueue() {
	for t.queue.Len() > 0 {
		row := t.queue.pop()
		t.queued[row] = false
	}
}

// fire implements one step of the paper's Transformation algorithm
// (Section 3.3): apply constraint row's transformation by lowering (or
// assigning) its consequent's tag, then update the consequent's column across
// all rows. Returns whether a transformation actually happened (a constraint
// whose work was already done by an earlier firing is a no-op, mirroring the
// paper's "some cₖ ahead of cᵢ in Q has already lowered t(cᵢ,pⱼ) — ignore").
func (t *table) fire(row int) bool {
	t.fired[row] = true
	t.removed[row] = true
	cons := t.consCol[row]
	cell := t.consCell(row)
	newTag := t.producedTag(row)

	var kind TransformKind
	switch cell {
	case CellImperative, CellOptional:
		// Restriction elimination: only ever lower the tag
		// (monotonicity; DESIGN.md deviation #1).
		if newTag >= tagOf(cell) {
			return false
		}
		kind = TransformElimination
	case CellAbsentConsequent:
		// Index/restriction introduction (Table 3.2). A predicate
		// another constraint already introduced at the same or a lower
		// tag needs no second introduction.
		if t.present[cons] && t.tags[cons] <= newTag {
			return false
		}
		kind = TransformIntroduction
	default:
		return false
	}

	t.applyTag(cons, newTag)
	t.trace = append(t.trace, Transformation{
		Kind:       kind,
		Constraint: t.constraints[row].ID,
		Pred:       t.preds[cons],
		NewTag:     newTag,
	})
	return true
}

// applyTag makes the predicate in column cons present with (at most) the
// given tag. In the dense formulation this is the paper's column update
// across all rows; sparsely, flipping the column's matchPresent bit (and,
// under implication matching, the bits of everything the predicate implies)
// updates every antecedent cell at once, and consequent cells follow the tag
// vector by construction. O(1 + out-degree) instead of O(n).
func (t *table) applyTag(cons int32, newTag Tag) {
	if t.present[cons] {
		if newTag < t.tags[cons] {
			t.tags[cons] = newTag
		}
	} else {
		t.present[cons] = true
		t.tags[cons] = newTag
	}
	t.ops++
	// The predicate is now implied by the query, so constraints using it
	// as an antecedent may fire; presence ripples to implied predicates'
	// antecedent cells.
	t.matchPresent[cons] = true
	if t.implyOn {
		for _, j := range t.fwdOf(cons) {
			t.ops++
			t.matchPresent[j] = true
		}
	}
}

// relevantConstraints exposes the rows for tests.
func (t *table) relevantConstraints() []*constraint.Constraint { return t.constraints }

// predicateTag returns the current presence and tag of a predicate.
func (t *table) predicateTag(p predicate.Predicate) (Tag, bool) {
	id, ok := t.lookupCol(p)
	if !ok || !t.present[id] {
		return 0, false
	}
	return t.tags[id], true
}
