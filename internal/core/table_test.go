package core

import (
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/value"
)

func tableSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("t",
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindInt},
			schema.Attribute{Name: "idx", Type: value.KindInt, Indexed: true}).
		MustBuild()
}

// TestInitializationCells checks the Section 3.1 table construction against
// the paper's cell vocabulary.
func TestInitializationCells(t *testing.T) {
	s := tableSchema(t)
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	idx3 := predicate.Eq("t", "idx", value.Int(3))
	// c1: a=1 -> b=2 (antecedent present, consequent present)
	// c2: b=2 -> idx=3 (antecedent present, consequent absent)
	// c3: idx=3 -> a=1 (antecedent absent, consequent present)
	c1 := constraint.New("c1", []predicate.Predicate{a1}, nil, b2)
	c2 := constraint.New("c2", []predicate.Predicate{b2}, nil, idx3)
	c3 := constraint.New("c3", []predicate.Predicate{idx3}, nil, a1)
	q := query.New("t").AddProject("t", "a").AddSelect(a1).AddSelect(b2)
	tb := newTable(q, s, []*constraint.Constraint{c1, c2, c3}, Options{DisableImpliedAntecedents: true})

	if len(tb.constraints) != 3 {
		t.Fatalf("rows = %d", len(tb.constraints))
	}
	idA, _ := tb.lookupCol(a1)
	idB, _ := tb.lookupCol(b2)
	idI, _ := tb.lookupCol(idx3)

	cases := []struct {
		row  int
		col  int
		want Cell
	}{
		{0, idA, CellPresentAntecedent},
		{0, idB, CellImperative},
		{0, idI, CellNone},
		{1, idB, CellPresentAntecedent},
		{1, idI, CellAbsentConsequent},
		{1, idA, CellNone},
		{2, idI, CellAbsentAntecedent},
		{2, idA, CellImperative},
		{2, idB, CellNone},
	}
	for _, c := range cases {
		if got := tb.cell(c.row, c.col); got != c.want {
			t.Errorf("cell[%d][%d] = %v, want %v", c.row, c.col, got, c.want)
		}
	}
	// Presence/tag bookkeeping.
	if !tb.present[idA] || !tb.present[idB] || tb.present[idI] {
		t.Error("presence flags wrong")
	}
	if !tb.inQuery[idA] || tb.inQuery[idI] {
		t.Error("inQuery flags wrong")
	}
	if tb.tags[idA] != TagImperative || tb.tags[idB] != TagImperative {
		t.Error("query predicates start imperative")
	}
}

// TestColumnUpdateOnFire verifies the Section 3.3 column update: firing a
// constraint flips AbsentAntecedent cells of the consequent's column to
// PresentAntecedent and synchronizes tag cells.
func TestColumnUpdateOnFire(t *testing.T) {
	s := tableSchema(t)
	a1 := predicate.Eq("t", "a", value.Int(1))
	idx3 := predicate.Eq("t", "idx", value.Int(3))
	b2 := predicate.Eq("t", "b", value.Int(2))
	// c1 introduces idx=3 (indexed -> optional); c2 uses idx=3 as its
	// antecedent to eliminate b=2.
	c1 := constraint.New("c1", []predicate.Predicate{a1}, nil, idx3)
	c2 := constraint.New("c2", []predicate.Predicate{idx3}, nil, b2)
	q := query.New("t").AddProject("t", "a").AddSelect(a1).AddSelect(b2)
	tb := newTable(q, s, []*constraint.Constraint{c1, c2}, Options{DisableImpliedAntecedents: true})

	idI, _ := tb.lookupCol(idx3)
	if tb.cell(1, idI) != CellAbsentAntecedent {
		t.Fatalf("precondition: c2's antecedent should be absent, got %v", tb.cell(1, idI))
	}
	if !tb.fire(0) {
		t.Fatal("c1 should fire")
	}
	if tb.cell(1, idI) != CellPresentAntecedent {
		t.Errorf("column update should enable c2: %v", tb.cell(1, idI))
	}
	if !tb.present[idI] || tb.tags[idI] != TagOptional {
		t.Errorf("idx=3 should be present/optional: present=%v tag=%v", tb.present[idI], tb.tags[idI])
	}
	// Firing c2 now lowers b=2 to optional (inter/intra: intra on t,
	// b not indexed -> redundant).
	if !tb.fire(1) {
		t.Fatal("c2 should fire after the column update")
	}
	idB, _ := tb.lookupCol(b2)
	if tb.tags[idB] != TagRedundant {
		t.Errorf("b=2 tag = %v, want redundant (intra, not indexed)", tb.tags[idB])
	}
}

// TestProducedTagMatrix pins Tables 3.1/3.2: intra+indexed -> optional,
// intra+plain -> redundant, inter -> optional.
func TestProducedTagMatrix(t *testing.T) {
	s := schema.NewBuilder().
		Class("x",
			schema.Attribute{Name: "plain", Type: value.KindInt},
			schema.Attribute{Name: "keyed", Type: value.KindInt, Indexed: true}).
		Class("y",
			schema.Attribute{Name: "v", Type: value.KindInt}).
		Relationship("r", "x", "y", schema.ManyToOne).
		MustBuild()

	intraPlain := constraint.New("ip",
		[]predicate.Predicate{predicate.Eq("x", "keyed", value.Int(1))}, nil,
		predicate.Eq("x", "plain", value.Int(2)))
	intraKeyed := constraint.New("ik",
		[]predicate.Predicate{predicate.Eq("x", "plain", value.Int(1))}, nil,
		predicate.Eq("x", "keyed", value.Int(2)))
	inter := constraint.New("in",
		[]predicate.Predicate{predicate.Eq("x", "plain", value.Int(1))}, []string{"r"},
		predicate.Eq("y", "v", value.Int(2)))
	interJoin := constraint.New("ij",
		nil, []string{"r"},
		predicate.Join("x", "plain", predicate.LE, "y", "v"))

	q := query.New("x", "y").AddProject("x", "plain").AddRelationship("r")
	tb := newTable(q, s, []*constraint.Constraint{intraPlain, intraKeyed, inter, interJoin}, Options{})

	wants := []Tag{TagRedundant, TagOptional, TagOptional, TagOptional}
	for row, want := range wants {
		if got := tb.producedTag(row); got != want {
			t.Errorf("row %d (%s): producedTag = %v, want %v", row, tb.constraints[row].ID, got, want)
		}
	}
	// Join consequents never count as indexed.
	if tb.consequentIndexed(3) {
		t.Error("join consequent cannot be indexed")
	}
	if !tb.consequentIndexed(1) || tb.consequentIndexed(0) {
		t.Error("consequentIndexed broken")
	}
}

// TestQueueFIFODrainAndTermination: every enqueued constraint is popped
// exactly once and the loop terminates even with cyclic constraint pairs.
func TestQueueFIFODrainAndTermination(t *testing.T) {
	s := tableSchema(t)
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	cat := constraint.MustCatalog(
		constraint.New("k1", []predicate.Predicate{a1}, nil, b2),
		constraint.New("k2", []predicate.Predicate{b2}, nil, a1),
	)
	q := query.New("t").AddProject("t", "a").AddSelect(a1).AddSelect(b2)
	o := NewOptimizer(s, CatalogSource{Catalog: cat}, Options{Cost: keepAll{}})
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("cyclic constraints must terminate: %v", err)
	}
	// Both constraints fire once (each lowers the other's consequent).
	if res.Stats.Fires != 2 {
		t.Errorf("Fires = %d, want 2", res.Stats.Fires)
	}
}

// TestFireQueuePriorities exercises the heap directly.
func TestFireQueuePriorities(t *testing.T) {
	fq := &fireQueue{priorities: true}
	fq.push(0, 2)
	fq.push(1, 0)
	fq.push(2, 1)
	fq.push(3, 0)
	order := []int{fq.pop(), fq.pop(), fq.pop(), fq.pop()}
	// Priority 0 first (FIFO within: 1 then 3), then 1, then 2.
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", order, want)
		}
	}
	// FIFO mode ignores priorities entirely.
	fifo := &fireQueue{}
	fifo.push(7, 9)
	fifo.push(8, 0)
	if fifo.pop() != 7 || fifo.pop() != 8 {
		t.Error("FIFO queue should ignore priorities")
	}
}

// TestImpliedAntecedentColumnRipple: introducing a predicate marks the
// antecedent cells of everything it implies as present.
func TestImpliedAntecedentColumnRipple(t *testing.T) {
	s := tableSchema(t)
	a1 := predicate.Eq("t", "a", value.Int(1))
	b7 := predicate.Eq("t", "b", value.Int(7)) // introduced
	bGT5 := predicate.Sel("t", "b", predicate.GT, value.Int(5))
	idx9 := predicate.Eq("t", "idx", value.Int(9))
	// c1 introduces b=7; c2 needs b>5 (implied by b=7) to introduce idx=9.
	c1 := constraint.New("c1", []predicate.Predicate{a1}, nil, b7)
	c2 := constraint.New("c2", []predicate.Predicate{bGT5}, nil, idx9)
	q := query.New("t").AddProject("t", "a").AddSelect(a1)
	tb := newTable(q, s, []*constraint.Constraint{c1, c2}, Options{})

	idGT, _ := tb.lookupCol(bGT5)
	if tb.cell(1, idGT) != CellAbsentAntecedent {
		t.Fatalf("precondition failed: %v", tb.cell(1, idGT))
	}
	if !tb.fire(0) {
		t.Fatal("c1 should fire")
	}
	if tb.cell(1, idGT) != CellPresentAntecedent {
		t.Errorf("implication ripple missing: %v", tb.cell(1, idGT))
	}
}

// TestOpsCounterMonotone: more constraints mean more table operations, and
// the counter is always positive.
func TestOpsCounterMonotone(t *testing.T) {
	prev := int64(0)
	for _, n := range []int{1, 4, 8} {
		var cs []*constraint.Constraint
		for j := 0; j < n; j++ {
			cs = append(cs, constraint.New(
				string(rune('a'+j)),
				[]predicate.Predicate{predicate.Eq("t", "a", value.Int(1))},
				nil,
				predicate.Eq("t", "b", value.Int(int64(j)))))
		}
		s := tableSchema(t)
		q := query.New("t").AddProject("t", "a").AddSelect(predicate.Eq("t", "a", value.Int(1)))
		o := NewOptimizer(s, CatalogSource{Catalog: constraint.MustCatalog(cs...)}, Options{Cost: keepAll{}})
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Ops <= prev {
			t.Errorf("n=%d: ops %d not monotone over %d", n, res.Stats.Ops, prev)
		}
		prev = res.Stats.Ops
	}
}

// TestTaggedPredicatesMatchesFinalTags: the display accessor agrees with the
// canonical map and is a defensive copy.
func TestTaggedPredicatesMatchesFinalTags(t *testing.T) {
	o := newPaperOptimizer(t, Options{})
	res, err := o.Optimize(paperQuery())
	if err != nil {
		t.Fatal(err)
	}
	tagged := res.TaggedPredicates()
	if len(tagged) != len(res.FinalTags()) {
		t.Fatalf("tagged = %d entries, FinalTags = %d", len(tagged), len(res.FinalTags()))
	}
	for _, tp := range tagged {
		if res.FinalTags()[tp.Pred.Key()] != tp.Tag {
			t.Errorf("mismatch for %s: %v vs %v", tp.Pred, tp.Tag, res.FinalTags()[tp.Pred.Key()])
		}
	}
	tagged[0].Tag = TagRedundant
	if res.TaggedPredicates()[0].Tag == TagRedundant && res.FinalTags()[tagged[0].Pred.Key()] != TagRedundant {
		t.Error("TaggedPredicates must return a copy")
	}
}
