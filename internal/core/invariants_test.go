package core

import (
	"testing"

	"sqo/internal/costmodel"
	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/pathgen"
)

// TestTraceTagsMonotone checks the algorithm's central structural invariant
// on a real workload: once a predicate's tag appears in the trace, any later
// trace entry for the same predicate carries an equal or lower tag (the
// restore-support guard is the sanctioned exception — it may raise a tag,
// and must be the only thing that does).
func TestTraceTagsMonotone(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	cat := datagen.Constraints()
	model := costmodel.New(db.Schema(), db.Analyze(), engine.DefaultWeights)
	opt := NewOptimizer(db.Schema(), CatalogSource{Catalog: cat}, Options{Cost: model})
	gen := pathgen.NewGenerator(db, cat, pathgen.Options{Seed: 33})
	queries, err := gen.Workload(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		last := map[string]Tag{}
		for _, tr := range res.Trace {
			if tr.Class != "" {
				continue // class eliminations carry no predicate
			}
			key := tr.Pred.Key()
			prev, seen := last[key]
			if seen && tr.NewTag > prev && tr.Kind != TransformRestoreSupport {
				t.Errorf("tag raised outside restore-support: %s %v -> %v (%s)\nquery: %s",
					tr.Pred, prev, tr.NewTag, tr.Kind, q)
			}
			last[key] = tr.NewTag
		}
	}
}

// TestFinalTagsConsistentWithOutput: every predicate in the optimized query
// carries a non-redundant final tag, and every redundant-tagged predicate is
// absent from it.
func TestFinalTagsConsistentWithOutput(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB1())
	cat := datagen.Constraints()
	model := costmodel.New(db.Schema(), db.Analyze(), engine.DefaultWeights)
	opt := NewOptimizer(db.Schema(), CatalogSource{Catalog: cat}, Options{Cost: model})
	gen := pathgen.NewGenerator(db, cat, pathgen.Options{Seed: 34})
	queries, err := gen.Workload(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		inOutput := map[string]bool{}
		for _, p := range res.Optimized.Predicates() {
			inOutput[p.Key()] = true
		}
		for key, tag := range res.FinalTags() {
			if tag == TagRedundant && inOutput[key] {
				t.Errorf("redundant predicate in output: %s\nquery: %s\nout: %s", key, q, res.Optimized)
			}
		}
		for _, p := range res.Optimized.Predicates() {
			if tag, ok := res.FinalTags()[p.Key()]; ok && tag == TagRedundant {
				t.Errorf("output predicate %s tagged redundant", p)
			}
		}
	}
}

// TestOptimizedQueriesAlwaysValidate: formulation output is always a valid
// query against the schema — classes connected, predicates resolvable.
func TestOptimizedQueriesAlwaysValidate(t *testing.T) {
	db := datagen.MustGenerate(datagen.DB2())
	cat := datagen.Constraints()
	model := costmodel.New(db.Schema(), db.Analyze(), engine.DefaultWeights)
	for _, opts := range []Options{
		{Cost: model},
		{Cost: model, UsePriorities: true, Budget: 1},
		{Cost: model, DisableImpliedAntecedents: true},
		{},
	} {
		opt := NewOptimizer(db.Schema(), CatalogSource{Catalog: cat}, opts)
		gen := pathgen.NewGenerator(db, cat, pathgen.Options{Seed: 35})
		queries, err := gen.Workload(20)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, err := opt.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Optimized.Validate(db.Schema()); err != nil {
				t.Errorf("invalid output: %v\nin:  %s\nout: %s", err, q, res.Optimized)
			}
		}
	}
}
