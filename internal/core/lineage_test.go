package core

import (
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/index"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/symtab"
	"sqo/internal/value"
)

// TestOptimizerLateLineageSymbols: an optimizer pinned to one generation of
// a patch lineage shares the lineage's symbol maps, so it can resolve a
// predicate a *later* generation interned — with a PredID beyond its own
// generation's arrays. Such predicates must be handled as query-private
// (what a from-scratch build of that generation would do), not crash the
// transformation table.
func TestOptimizerLateLineageSymbols(t *testing.T) {
	sch := schema.NewBuilder().
		Class("t",
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindInt}).
		MustBuild()
	a1 := predicate.Eq("t", "a", value.Int(1))
	b2 := predicate.Eq("t", "b", value.Int(2))
	late := predicate.Eq("t", "b", value.Int(99))

	base := []*constraint.Constraint{constraint.New("c1", []predicate.Predicate{a1}, nil, b2)}
	t0 := symtab.Compile(sch, base)
	// Enter the lineage (gen 1), pin an optimizer to it, then advance the
	// lineage with a constraint that interns a brand-new predicate.
	c2 := constraint.New("c2", []predicate.Predicate{b2}, nil, a1)
	t1, _ := t0.Patch([]*constraint.Constraint{c2})
	gen1 := append(append([]*constraint.Constraint(nil), base...), c2)
	ix := index.BuildWith(gen1, t1)
	opt := NewOptimizerSymbols(sch, ix, t1, Options{})

	t1.Patch([]*constraint.Constraint{
		constraint.New("c3", []predicate.Predicate{late}, nil, a1),
	})
	if id, ok := t1.PredID(late); !ok || int(id) < t1.NumPreds() {
		t.Fatalf("precondition: late predicate should resolve beyond gen1's space (id=%d ok=%v NumPreds=%d)",
			id, ok, t1.NumPreds())
	}

	q := query.New("t").AddProject("t", "a").AddSelect(late)
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Gen 1 holds no constraint over the late predicate, so the query must
	// come back essentially unchanged.
	if got := res.Optimized.String(); got != q.String() {
		t.Fatalf("late-symbol query transformed under a generation that predates it:\n%s\n%s", got, q)
	}
}
