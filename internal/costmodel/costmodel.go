// Package costmodel implements the "conventional query optimizer" cost
// estimates the paper's formulation step leans on: the profitable(p) test for
// optional predicates and the benefit estimate for class elimination.
//
// The model mirrors the engine's greedy pointer-traversal planner: it walks
// the same plan shape over statistics instead of data, pricing simulated
// physical events with the same weights. Estimates therefore track the
// executor's metered costs closely enough for the retain-or-discard decisions
// the optimizer delegates to it.
package costmodel

import (
	"sqo/internal/engine"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/storage"
)

// Model estimates query execution costs from a statistics snapshot.
// It implements core.CostModel.
type Model struct {
	sch     *schema.Schema
	stats   *storage.Stats
	weights engine.CostWeights
}

// New builds a cost model over a schema and statistics snapshot.
func New(sch *schema.Schema, stats *storage.Stats, weights engine.CostWeights) *Model {
	return &Model{sch: sch, stats: stats, weights: weights}
}

// Selectivity estimates the fraction of a class's instances satisfying p.
func (m *Model) Selectivity(p predicate.Predicate) float64 {
	as := m.stats.Classes[p.Left.Class].Attrs[p.Left.Attr]
	return p.Selectivity(as.Distinct, as.Min, as.Max, as.HasRange)
}

// EstimateQuery walks the engine's plan shape over statistics and returns the
// estimated execution cost in cost units. Like the engine's planner, the
// seed is chosen by the cheapest full walk over all candidate seed classes.
func (m *Model) EstimateQuery(q *query.Query) float64 {
	if len(q.Classes) == 0 {
		return 0
	}
	selects := map[string][]predicate.Predicate{}
	for _, p := range q.Selects {
		selects[p.Left.Class] = append(selects[p.Left.Class], p)
	}
	best := 0.0
	for i, cl := range q.Classes {
		c := m.estimateFrom(q, cl, selects)
		if i == 0 || c < best {
			best = c
		}
	}
	return best
}

// estimateFrom walks the greedy plan seeded at the given class.
func (m *Model) estimateFrom(q *query.Query, seed string, selects map[string][]predicate.Predicate) float64 {
	cost := m.seedCost(seed, selects[seed])
	// Estimated surviving bindings after the seed.
	bindings := m.selectedCard(seed, selects[seed])

	bound := map[string]bool{seed: true}
	relUsed := map[string]bool{}
	joinsDone := map[string]bool{}
	bindings = m.applyJoins(q, bound, joinsDone, bindings)

	for len(bound) < len(q.Classes) {
		type cand struct {
			class, rel, from string
			est              float64
		}
		var best *cand
		for _, rn := range q.Relationships {
			if relUsed[rn] {
				continue
			}
			r := m.sch.Relationship(rn)
			if r == nil {
				continue
			}
			var from, to string
			switch {
			case bound[r.Source] && !bound[r.Target]:
				from, to = r.Source, r.Target
			case bound[r.Target] && !bound[r.Source]:
				from, to = r.Target, r.Source
			default:
				continue
			}
			est := m.selectedCard(to, selects[to])
			if best == nil || est < best.est {
				best = &cand{class: to, rel: rn, from: from, est: est}
			}
		}
		if best == nil {
			// Disconnected query: price the remaining classes as full
			// scans so the estimate stays finite and pessimistic.
			for _, cl := range q.Classes {
				if !bound[cl] {
					cost += float64(m.stats.Classes[cl].Pages) + 1
					bound[cl] = true
				}
			}
			break
		}
		relUsed[best.rel] = true
		bound[best.class] = true

		fan := m.stats.Rels[best.rel].Fanout[best.from]
		fetched := bindings * fan
		preds := float64(len(selects[best.class]))
		cost += bindings*m.weights.LinkTraversal +
			fetched*m.weights.ObjectFetch +
			fetched*preds*m.weights.PredEval
		sel := 1.0
		for _, p := range selects[best.class] {
			sel *= m.Selectivity(p)
		}
		bindings = fetched * sel
		bindings = m.applyJoins(q, bound, joinsDone, bindings)
	}
	return cost
}

// applyJoins scales the binding estimate by the selectivity of join
// predicates that became checkable, charging their evaluation.
func (m *Model) applyJoins(q *query.Query, bound map[string]bool, done map[string]bool, bindings float64) float64 {
	for _, j := range q.Joins {
		if done[j.Key()] {
			continue
		}
		ok := true
		for _, cl := range j.Classes() {
			if !bound[cl] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		done[j.Key()] = true
		bindings *= m.joinSelectivity(q, j)
	}
	return bindings
}

// joinSelectivity estimates an attribute-attribute comparison: equality via
// the larger distinct count (the System-R rule), ranges as the default 1/3.
// When the two classes are already connected by one of the query's
// relationships the independence assumption is indefensible — linked
// instances are correlated, and in this OODB the semantic constraints make
// θ-predicates over linked pairs typically tautological (c3: every drives
// link satisfies licenseClass >= class). Such predicates get selectivity 1.
func (m *Model) joinSelectivity(q *query.Query, j predicate.Predicate) float64 {
	cls := j.Classes()
	if len(cls) == 2 {
		for _, rn := range q.Relationships {
			r := m.sch.Relationship(rn)
			if r == nil {
				continue
			}
			if (r.Source == cls[0] && r.Target == cls[1]) || (r.Source == cls[1] && r.Target == cls[0]) {
				return 1.0
			}
		}
	}
	switch j.Op {
	case predicate.EQ:
		dl := m.stats.Classes[j.Left.Class].Attrs[j.Left.Attr].Distinct
		dr := m.stats.Classes[j.RightAttr.Class].Attrs[j.RightAttr.Attr].Distinct
		d := dl
		if dr > d {
			d = dr
		}
		if d < 1 {
			d = 1
		}
		return 1 / float64(d)
	case predicate.NE:
		return 0.9
	default:
		return 1.0 / 3.0
	}
}

// seedCost estimates accessing a class as the plan seed: an index probe plus
// matching fetches when an indexed predicate exists, otherwise a full scan
// plus filter evaluation.
func (m *Model) seedCost(class string, preds []predicate.Predicate) float64 {
	cs := m.stats.Classes[class]
	for _, p := range preds {
		if m.indexUsable(class, p) {
			matches := m.Selectivity(p) * float64(cs.Card)
			rest := float64(len(preds) - 1)
			return m.weights.IndexProbe +
				matches*m.weights.ObjectFetch +
				matches*rest*m.weights.PredEval
		}
	}
	return float64(cs.Pages)*m.weights.Page +
		float64(cs.Card)*float64(len(preds))*m.weights.PredEval
}

func (m *Model) indexUsable(class string, p predicate.Predicate) bool {
	if p.IsJoin() || p.Op == predicate.NE {
		return false
	}
	a, ok := m.sch.Attr(class, p.Left.Attr)
	return ok && a.Indexed
}

// selectedCard estimates the instances of a class surviving its predicates.
func (m *Model) selectedCard(class string, preds []predicate.Predicate) float64 {
	est := float64(m.stats.Classes[class].Card)
	for _, p := range preds {
		est *= m.Selectivity(p)
	}
	return est
}

// Profitable implements core.CostModel: keeping p must beat not keeping it.
// The query q arrives without p (the optimizer's working set).
func (m *Model) Profitable(q *query.Query, p predicate.Predicate) bool {
	without := m.EstimateQuery(q)
	with := m.EstimateQuery(withPred(q, p))
	return with < without
}

// ClassEliminationBeneficial implements core.CostModel: dropping the class
// (with its relationships and predicates) must not increase the estimate.
func (m *Model) ClassEliminationBeneficial(q *query.Query, class string) bool {
	reduced := q.Clone()
	reduced.Classes = without(reduced.Classes, class)
	if len(reduced.Classes) == 0 {
		return false
	}
	var rels []string
	for _, rn := range reduced.Relationships {
		if r := m.sch.Relationship(rn); r != nil && r.Involves(class) {
			continue
		}
		rels = append(rels, rn)
	}
	reduced.Relationships = rels
	reduced.Selects = dropRef(reduced.Selects, class)
	reduced.Joins = dropRef(reduced.Joins, class)
	return m.EstimateQuery(reduced) <= m.EstimateQuery(q)
}

func withPred(q *query.Query, p predicate.Predicate) *query.Query {
	c := q.Clone()
	if p.IsJoin() {
		c.Joins = append(c.Joins, p)
	} else {
		c.Selects = append(c.Selects, p)
	}
	return c
}

func without(list []string, item string) []string {
	var out []string
	for _, s := range list {
		if s != item {
			out = append(out, s)
		}
	}
	return out
}

func dropRef(preds []predicate.Predicate, class string) []predicate.Predicate {
	var out []predicate.Predicate
	for _, p := range preds {
		if !p.References(class) {
			out = append(out, p)
		}
	}
	return out
}
