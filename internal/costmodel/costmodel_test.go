package costmodel

import (
	"testing"

	"sqo/internal/engine"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/storage"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("supplier",
			schema.Attribute{Name: "name", Type: value.KindString, Indexed: true}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt}).
		Class("vehicle",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "class", Type: value.KindInt}).
		Relationship("supplies", "supplier", "cargo", schema.OneToMany).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		MustBuild()
}

// loadDB populates a database big enough for estimates to be meaningful:
// 20 suppliers, 200 cargos, 10 vehicles.
func loadDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase(testSchema(t))
	var suppliers, vehicles []storage.OID
	for i := 0; i < 20; i++ {
		oid, err := db.Insert("supplier", map[string]value.Value{
			"name": value.String("sup" + string(rune('A'+i%26)))})
		if err != nil {
			t.Fatal(err)
		}
		suppliers = append(suppliers, oid)
	}
	for i := 0; i < 10; i++ {
		desc := "flatbed"
		if i%5 == 0 {
			desc = "refrigerated truck"
		}
		oid, err := db.Insert("vehicle", map[string]value.Value{
			"desc": value.String(desc), "class": value.Int(int64(i%5 + 1))})
		if err != nil {
			t.Fatal(err)
		}
		vehicles = append(vehicles, oid)
	}
	descs := []string{"frozen food", "steel", "paper", "timber", "oil"}
	for i := 0; i < 200; i++ {
		oid, err := db.Insert("cargo", map[string]value.Value{
			"desc":     value.String(descs[i%len(descs)]),
			"quantity": value.Int(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Link("supplies", suppliers[i%len(suppliers)], oid); err != nil {
			t.Fatal(err)
		}
		if err := db.Link("collects", vehicles[i%len(vehicles)], oid); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func newModel(t *testing.T) (*Model, *storage.Database) {
	t.Helper()
	db := loadDB(t)
	return New(db.Schema(), db.Analyze(), engine.DefaultWeights), db
}

func TestSelectivity(t *testing.T) {
	m, _ := newModel(t)
	eq := predicate.Eq("cargo", "desc", value.String("frozen food"))
	if got := m.Selectivity(eq); got != 0.2 {
		t.Errorf("eq selectivity = %v, want 1/5", got)
	}
	rng := predicate.Sel("cargo", "quantity", predicate.LT, value.Int(100))
	got := m.Selectivity(rng)
	if got < 0.45 || got > 0.55 {
		t.Errorf("range selectivity = %v, want ~0.5", got)
	}
}

func TestEstimateQueryOrdering(t *testing.T) {
	m, _ := newModel(t)
	base := query.New("cargo").AddProject("cargo", "desc")
	withPred := base.Clone().AddSelect(predicate.Eq("cargo", "desc", value.String("steel")))
	// A filter on a scanned class costs extra CPU but cannot reduce the
	// scan itself: estimate must not drop.
	if m.EstimateQuery(withPred) < m.EstimateQuery(base) {
		t.Error("adding a filter to a single-class scan cannot reduce cost")
	}
	// Two-class query estimates exceed the single-class ones.
	join := query.New("supplier", "cargo").
		AddProject("cargo", "desc").
		AddRelationship("supplies")
	if m.EstimateQuery(join) <= m.EstimateQuery(base) {
		t.Error("join estimate should exceed single scan")
	}
	if m.EstimateQuery(&query.Query{}) != 0 {
		t.Error("empty query estimates zero")
	}
}

// TestEstimateTracksEngine compares the model's estimate against metered
// execution for a few queries: within a factor of 3 is good enough for
// retain/discard decisions.
func TestEstimateTracksEngine(t *testing.T) {
	m, db := newModel(t)
	e := engine.New(db)
	queries := []*query.Query{
		query.New("cargo").AddProject("cargo", "desc").
			AddSelect(predicate.Eq("cargo", "desc", value.String("steel"))),
		query.New("supplier", "cargo").AddProject("cargo", "desc").
			AddSelect(predicate.Eq("supplier", "name", value.String("supA"))).
			AddRelationship("supplies"),
		query.New("vehicle", "cargo").AddProject("cargo", "desc").
			AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
			AddSelect(predicate.Eq("cargo", "desc", value.String("frozen food"))).
			AddRelationship("collects"),
	}
	for _, q := range queries {
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		actual := res.Cost(engine.DefaultWeights)
		est := m.EstimateQuery(q)
		if est <= 0 {
			t.Errorf("estimate for %s is %v", q, est)
			continue
		}
		ratio := est / actual
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("estimate %v vs actual %v (ratio %.2f) for %s", est, actual, ratio, q)
		}
	}
}

func TestProfitableSelectivePredicate(t *testing.T) {
	m, _ := newModel(t)
	// Query traverses supplier -> cargo; a selective predicate on cargo
	// cuts the bindings flowing on, so it pays for itself... but cargo is
	// the last class, so cutting bindings there saves nothing downstream.
	// Instead: predicate on vehicle (seed side) of a vehicle->cargo path.
	q := query.New("vehicle", "cargo").
		AddProject("cargo", "desc").
		AddRelationship("collects")
	p := predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))
	if !m.Profitable(q, p) {
		t.Error("a selective predicate on the seed class should be profitable")
	}
	// A predicate on the terminal class only adds CPU.
	pTerm := predicate.Sel("cargo", "quantity", predicate.NE, value.Int(-1))
	if m.Profitable(q, pTerm) {
		t.Error("a non-selective predicate on the last class should not be profitable")
	}
}

func TestClassEliminationBeneficial(t *testing.T) {
	m, _ := newModel(t)
	// An unfiltered dangling class only adds traversals and fetches:
	// dropping it is a pure win.
	q := query.New("supplier", "cargo", "vehicle").
		AddProject("vehicle", "desc").
		AddRelationship("supplies").
		AddRelationship("collects")
	if !m.ClassEliminationBeneficial(q, "supplier") {
		t.Error("dropping an unfiltered dangling class should be beneficial")
	}
	// A dangling class carrying a selective indexed predicate is a cheap
	// plan seed; the cost model should veto its elimination.
	seeded := q.Clone().AddSelect(predicate.Eq("supplier", "name", value.String("supA")))
	if m.ClassEliminationBeneficial(seeded, "supplier") {
		t.Error("dropping the indexed seed class should not be beneficial")
	}
	// Eliminating the only class is never allowed.
	single := query.New("cargo").AddProject("cargo", "desc")
	if m.ClassEliminationBeneficial(single, "cargo") {
		t.Error("cannot eliminate the last class")
	}
}

func TestJoinSelectivity(t *testing.T) {
	m, _ := newModel(t)
	// Without the linking relationship in the query, System-R rules apply.
	bare := query.New("vehicle", "cargo")
	eq := predicate.Join("vehicle", "class", predicate.EQ, "cargo", "quantity")
	// cargo.quantity has 200 distinct values, vehicle.class 5: rule takes
	// the larger -> 1/200.
	if got := m.joinSelectivity(bare, eq); got != 1.0/200 {
		t.Errorf("EQ join selectivity = %v, want 1/200", got)
	}
	rng := predicate.Join("vehicle", "class", predicate.LE, "cargo", "quantity")
	if got := m.joinSelectivity(bare, rng); got != 1.0/3 {
		t.Errorf("range join selectivity = %v, want 1/3", got)
	}
	ne := predicate.Join("vehicle", "class", predicate.NE, "cargo", "quantity")
	if got := m.joinSelectivity(bare, ne); got != 0.9 {
		t.Errorf("NE join selectivity = %v, want 0.9", got)
	}
	// With the classes linked by a query relationship, instances are
	// correlated and the predicate is assumed non-filtering.
	linked := query.New("vehicle", "cargo").AddRelationship("collects")
	if got := m.joinSelectivity(linked, rng); got != 1.0 {
		t.Errorf("linked-pair join selectivity = %v, want 1.0", got)
	}
}

func TestEstimateWithJoinPredicates(t *testing.T) {
	m, _ := newModel(t)
	base := query.New("vehicle", "cargo").
		AddProject("cargo", "desc").
		AddRelationship("collects")
	withJoin := base.Clone().
		AddJoin(predicate.Join("vehicle", "class", predicate.LE, "cargo", "quantity"))
	// The join predicate reduces bindings after the last step only; cost
	// must not increase by more than its evaluation epsilon.
	if m.EstimateQuery(withJoin) < m.EstimateQuery(base) {
		t.Error("join predicate on final bindings should not reduce cost below base")
	}
}

func TestDisconnectedQueryFallback(t *testing.T) {
	m, _ := newModel(t)
	// No relationship: the estimate still terminates and prices scans.
	q := query.New("supplier", "vehicle").AddProject("supplier", "name")
	if m.EstimateQuery(q) <= 0 {
		t.Error("disconnected estimate should be positive and finite")
	}
}
