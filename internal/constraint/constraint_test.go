package constraint

import (
	"strings"
	"testing"

	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("supplier",
			schema.Attribute{Name: "name", Type: value.KindString, Indexed: true}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt}).
		Class("vehicle",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "class", Type: value.KindInt}).
		Class("driver",
			schema.Attribute{Name: "licenseClass", Type: value.KindInt},
			schema.Attribute{Name: "rank", Type: value.KindString}).
		Relationship("supplies", "supplier", "cargo", schema.OneToMany).
		Relationship("collects", "vehicle", "cargo", schema.OneToMany).
		Relationship("drives", "driver", "vehicle", schema.ManyToMany).
		MustBuild()
}

// The paper's constraints (Figure 2.2), restricted to the classes above.
func c1() *Constraint {
	return New("c1",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("frozen food")),
	).WithDoc("refrigerated trucks can only carry frozen food")
}

func c2() *Constraint {
	return New("c2",
		[]predicate.Predicate{predicate.Eq("cargo", "desc", value.String("frozen food"))},
		[]string{"supplies"},
		predicate.Eq("supplier", "name", value.String("SFI")),
	).WithDoc("frozen food comes only from SFI")
}

func c3() *Constraint {
	return New("c3",
		nil,
		[]string{"drives"},
		predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class"),
	).WithDoc("drivers only drive vehicles within their license classification")
}

func c4() *Constraint {
	return New("c4",
		nil,
		nil,
		predicate.Eq("driver", "rank", value.String("research staff member")),
	)
}

func TestKindClassification(t *testing.T) {
	if c1().Kind() != Inter {
		t.Error("c1 spans cargo and vehicle: inter")
	}
	if c3().Kind() != Inter {
		t.Error("c3 spans driver and vehicle: inter")
	}
	if c4().Kind() != Intra {
		t.Error("c4 references only driver: intra")
	}
	if Intra.String() != "intra" || Inter.String() != "inter" {
		t.Error("Kind.String broken")
	}
}

func TestClasses(t *testing.T) {
	got := c1().Classes()
	if len(got) != 2 || got[0] != "cargo" || got[1] != "vehicle" {
		t.Errorf("c1.Classes() = %v", got)
	}
	// Returned slice must be a copy.
	got[0] = "mutated"
	if c := c1().Classes(); c[0] != "cargo" {
		t.Error("Classes aliases internal state")
	}
}

func TestKeyCanonical(t *testing.T) {
	// Same logical constraint with antecedents in different order.
	a := New("x",
		[]predicate.Predicate{
			predicate.Eq("cargo", "desc", value.String("f")),
			predicate.Sel("cargo", "quantity", predicate.GT, value.Int(3)),
		},
		[]string{"collects", "supplies"},
		predicate.Eq("supplier", "name", value.String("SFI")))
	b := New("y",
		[]predicate.Predicate{
			predicate.Sel("cargo", "quantity", predicate.GT, value.Int(3)),
			predicate.Eq("cargo", "desc", value.String("f")),
		},
		[]string{"supplies", "collects"},
		predicate.Eq("supplier", "name", value.String("SFI")))
	if a.Key() != b.Key() {
		t.Errorf("keys differ:\n%s\n%s", a.Key(), b.Key())
	}
	if a.Key() == c1().Key() {
		t.Error("distinct constraints share a key")
	}
}

func TestRelevantTo(t *testing.T) {
	q := query.New("supplier", "cargo", "vehicle").
		AddRelationship("supplies").
		AddRelationship("collects")
	if !c1().RelevantTo(q) || !c2().RelevantTo(q) {
		t.Error("c1, c2 should be relevant to the paper query")
	}
	if c3().RelevantTo(q) {
		t.Error("c3 references driver, absent from the query")
	}
	if c4().RelevantTo(q) {
		t.Error("c4 references driver, absent from the query")
	}
	// Class present but link missing: not relevant under our stricter rule.
	q2 := query.New("cargo", "vehicle").AddRelationship("collects")
	cNoLink := New("x",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("v"))},
		[]string{"drives"},
		predicate.Eq("cargo", "desc", value.String("d")))
	if cNoLink.RelevantTo(q2) {
		t.Error("constraint requiring an absent relationship must not be relevant")
	}
}

func TestValidate(t *testing.T) {
	s := testSchema(t)
	for _, c := range []*Constraint{c1(), c2(), c3(), c4()} {
		if err := c.Validate(s); err != nil {
			t.Errorf("%s should validate: %v", c.ID, err)
		}
	}
	bad := []*Constraint{
		New("", nil, nil, predicate.Eq("cargo", "desc", value.String("x"))),
		New("b1", nil, nil, predicate.Eq("cargo", "ghost", value.String("x"))),
		New("b2", []predicate.Predicate{predicate.Eq("cargo", "desc", value.Int(3))}, nil,
			predicate.Eq("cargo", "desc", value.String("x"))),
		New("b3", nil, []string{"ghost"}, predicate.Eq("cargo", "desc", value.String("x"))),
		// inter-class constraint with no connecting links
		New("b4", []predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("v"))}, nil,
			predicate.Eq("cargo", "desc", value.String("d"))),
	}
	for _, c := range bad {
		if err := c.Validate(s); err == nil {
			t.Errorf("constraint %q should fail validation", c.ID)
		}
	}
}

func TestString(t *testing.T) {
	got := c1().String()
	for _, want := range []string{"c1:", `vehicle.desc = "refrigerated truck"`, "[collects]", `-> cargo.desc = "frozen food"`} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	if !strings.Contains(c4().String(), "true ->") {
		t.Errorf("empty antecedent should print as true: %q", c4().String())
	}
}

func TestCatalogBasics(t *testing.T) {
	cat := MustCatalog(c1(), c2(), c3(), c4())
	if cat.Len() != 4 {
		t.Fatalf("Len = %d, want 4", cat.Len())
	}
	if cat.Get("c2") == nil || cat.Get("ghost") != nil {
		t.Error("Get broken")
	}
	all := cat.All()
	if len(all) != 4 || all[0].ID != "c1" {
		t.Errorf("All() = %v", all)
	}
	// All returns a fresh slice.
	all[0] = nil
	if cat.All()[0] == nil {
		t.Error("All aliases internal slice")
	}
}

func TestCatalogDuplicates(t *testing.T) {
	cat := MustCatalog(c1())
	// Logical duplicate under a new ID merges silently and aliases the ID.
	dup := New("c99",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("frozen food")))
	if err := cat.Add(dup); err != nil {
		t.Fatalf("logical duplicate should merge: %v", err)
	}
	if cat.Len() != 1 {
		t.Errorf("Len = %d after merging duplicate, want 1", cat.Len())
	}
	if cat.Get("c99") != cat.Get("c1") {
		t.Error("duplicate ID should alias the original constraint")
	}
	// Different constraint under an existing ID errors.
	clash := New("c1", nil, nil, predicate.Eq("cargo", "desc", value.String("other")))
	if err := cat.Add(clash); err == nil {
		t.Error("id clash should error")
	}
}

func TestCatalogRelevantTo(t *testing.T) {
	cat := MustCatalog(c1(), c2(), c3(), c4())
	q := query.New("cargo", "vehicle").AddRelationship("collects")
	rel := cat.RelevantTo(q)
	if len(rel) != 1 || rel[0].ID != "c1" {
		t.Errorf("RelevantTo = %v, want just c1", rel)
	}
}

func TestCatalogValidate(t *testing.T) {
	s := testSchema(t)
	cat := MustCatalog(c1(), c2())
	if err := cat.Validate(s); err != nil {
		t.Errorf("catalog should validate: %v", err)
	}
	bad := MustCatalog(New("b", nil, nil, predicate.Eq("ghost", "x", value.Int(1))))
	if err := bad.Validate(s); err == nil {
		t.Error("catalog with invalid constraint should fail")
	}
}

func TestNewCopiesInputs(t *testing.T) {
	ants := []predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("x"))}
	links := []string{"collects"}
	c := New("c", ants, links, predicate.Eq("cargo", "desc", value.String("y")))
	ants[0] = predicate.Eq("vehicle", "desc", value.String("mutated"))
	links[0] = "mutated"
	if c.Antecedents[0].Const.Str() != "x" || c.Links[0] != "collects" {
		t.Error("New must copy its slice arguments")
	}
}
