package constraint

import (
	"strings"
	"testing"

	"sqo/internal/predicate"
	"sqo/internal/value"
)

func TestParseSimple(t *testing.T) {
	c, err := Parse(`c1: vehicle.desc = "refrigerated truck" [collects] -> cargo.desc = "frozen food"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := New("c1",
		[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
		[]string{"collects"},
		predicate.Eq("cargo", "desc", value.String("frozen food")))
	if c.Key() != want.Key() {
		t.Errorf("parsed %s, want %s", c, want)
	}
	if c.ID != "c1" {
		t.Errorf("ID = %q", c.ID)
	}
}

func TestParseEmptyAntecedentAndJoinConsequent(t *testing.T) {
	c, err := Parse(`c3: true [drives] -> driver.licenseClass >= vehicle.class`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.Antecedents) != 0 {
		t.Errorf("antecedents = %v, want none", c.Antecedents)
	}
	if !c.Consequent.IsJoin() {
		t.Errorf("consequent should be a join: %s", c.Consequent)
	}
	if len(c.Links) != 1 || c.Links[0] != "drives" {
		t.Errorf("links = %v", c.Links)
	}
}

func TestParseConjunction(t *testing.T) {
	for _, sep := range []string{"∧", "&"} {
		in := `k: cargo.desc = "frozen food" ` + sep + ` cargo.priority >= 2 -> cargo.quantity <= 500`
		c, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if len(c.Antecedents) != 2 {
			t.Errorf("%q: antecedents = %v", sep, c.Antecedents)
		}
		if c.Consequent.Op != predicate.LE {
			t.Errorf("consequent = %s", c.Consequent)
		}
	}
}

func TestParseQuotedSeparatorsAndBrackets(t *testing.T) {
	// The ∧, & and [ characters inside string literals must not confuse
	// the parser.
	c, err := Parse(`k: emp.team = "R∧D & [ops]" -> emp.grade >= 3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.Antecedents) != 1 {
		t.Fatalf("antecedents = %v", c.Antecedents)
	}
	if got := c.Antecedents[0].Const.Str(); got != "R∧D & [ops]" {
		t.Errorf("string constant = %q", got)
	}
	if len(c.Links) != 0 {
		t.Errorf("links = %v, want none", c.Links)
	}
}

func TestParseNumericAndBoolLiterals(t *testing.T) {
	c, err := Parse(`k: box.heavy = true ∧ box.weight > 10 -> box.priority >= 2`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Antecedents[0].Const != value.Bool(true) {
		t.Errorf("bool literal parsed as %v", c.Antecedents[0].Const)
	}
	if c.Antecedents[1].Const != value.Int(10) {
		t.Errorf("int literal parsed as %v", c.Antecedents[1].Const)
	}
}

// TestParseRoundTripPaperCatalog: every constraint of the logistics catalog
// survives String -> Parse with identical identity. (The catalog lives in
// datagen, which imports this package; rebuild the paper constraints here.)
func TestParseRoundTripPaperConstraints(t *testing.T) {
	cs := []*Constraint{
		New("c1",
			[]predicate.Predicate{predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))},
			[]string{"collects"},
			predicate.Eq("cargo", "desc", value.String("frozen food"))),
		New("c3", nil, []string{"drives"},
			predicate.Join("driver", "licenseClass", predicate.GE, "vehicle", "class")),
		New("c4", []predicate.Predicate{predicate.Eq("driver", "rank", value.String("supervisor"))},
			nil, predicate.Eq("driver", "clearance", value.String("top secret"))),
		New("c6",
			[]predicate.Predicate{
				predicate.Eq("cargo", "desc", value.String("frozen food")),
				predicate.Sel("cargo", "priority", predicate.GE, value.Int(2)),
			},
			nil, predicate.Sel("cargo", "quantity", predicate.LE, value.Int(500))),
	}
	for _, c := range cs {
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("round trip of %s: %v", c, err)
		}
		if back.Key() != c.Key() {
			t.Errorf("round trip changed identity:\n in: %s\nout: %s", c, back)
		}
	}
}

func TestParseCatalog(t *testing.T) {
	text := `
# the paper's first two constraints
c1: vehicle.desc = "refrigerated truck" [collects] -> cargo.desc = "frozen food"

c2: cargo.desc = "frozen food" [supplies] -> supplier.name = "SFI"
`
	cat, err := ParseCatalog(text)
	if err != nil {
		t.Fatalf("ParseCatalog: %v", err)
	}
	if cat.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cat.Len())
	}
	if cat.Get("c1") == nil || cat.Get("c2") == nil {
		t.Error("constraints missing by ID")
	}
}

func TestParseCatalogErrorsCarryLineNumbers(t *testing.T) {
	_, err := ParseCatalog("c1: broken")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"no colon here",
		"my id: a.b = 1 -> c.d = 2",         // space in id
		"k: a.b = 1",                        // no arrow
		"k: a.b = 1 ->",                     // empty consequent
		"k: a.b = 1 [r -> c.d = 2",          // unterminated links
		"k: a.b ~ 1 -> c.d = 2",             // bad operator
		"k: a.b.c = 1 -> c.d = 2",           // doubly dotted
		"k: a.b = -> c.d = 2",               // missing rhs
		`k: a.b = "unterminated -> c.d = 2`, // dangling string
		"k: a.b = 1 extra -> c.d = 2",       // too many tokens
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}
