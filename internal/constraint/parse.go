package constraint

import (
	"fmt"
	"strings"
	"unicode"

	"sqo/internal/predicate"
	"sqo/internal/value"
)

// Parse reads one constraint in the same textual form String renders:
//
//	c1: vehicle.desc = "refrigerated truck" [collects] -> cargo.desc = "frozen food"
//	c3: true [drives] -> driver.licenseClass >= vehicle.class
//	c6: cargo.desc = "frozen food" ∧ cargo.priority >= 2 -> cargo.quantity <= 500
//
// Antecedents are separated by "∧" or "&"; "true" denotes an empty
// antecedent list; the bracketed relationship list is optional.
func Parse(line string) (*Constraint, error) {
	c, err := parseLine(line)
	if err != nil {
		return nil, fmt.Errorf("constraint: parse %q: %w", strings.TrimSpace(line), err)
	}
	return c, nil
}

// ParseCatalog reads a whole catalog: one constraint per line, blank lines
// and lines starting with # ignored.
func ParseCatalog(text string) (*Catalog, error) {
	cat, err := NewCatalog()
	if err != nil {
		return nil, err
	}
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		c, err := Parse(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if err := cat.Add(c); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return cat, nil
}

func parseLine(line string) (*Constraint, error) {
	rest := strings.TrimSpace(line)

	// ID up to the first colon.
	colon := strings.IndexByte(rest, ':')
	if colon <= 0 {
		return nil, fmt.Errorf("missing 'id:' prefix")
	}
	id := strings.TrimSpace(rest[:colon])
	if strings.ContainsAny(id, " \t") {
		return nil, fmt.Errorf("malformed id %q", id)
	}
	rest = strings.TrimSpace(rest[colon+1:])

	// Split on the implication arrow.
	arrow := strings.Index(rest, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("missing '->'")
	}
	body := strings.TrimSpace(rest[:arrow])
	consText := strings.TrimSpace(rest[arrow+2:])
	if consText == "" {
		return nil, fmt.Errorf("missing consequent")
	}

	// Optional [links] suffix on the body; brackets inside string
	// literals do not count.
	var links []string
	if open, close, found, err := findLinkList(body); err != nil {
		return nil, err
	} else if found {
		for _, l := range strings.Split(body[open+1:close], ",") {
			l = strings.TrimSpace(l)
			if l != "" {
				links = append(links, l)
			}
		}
		body = strings.TrimSpace(body[:open])
	}

	// Antecedents: "true" or ∧/& separated predicates.
	var ants []predicate.Predicate
	if body != "true" && body != "" {
		for _, part := range splitAnd(body) {
			p, err := parsePredicate(part)
			if err != nil {
				return nil, err
			}
			ants = append(ants, p)
		}
	}

	cons, err := parsePredicate(consText)
	if err != nil {
		return nil, err
	}
	return New(id, ants, links, cons), nil
}

// findLinkList locates the last '[' … ']' pair outside string literals.
func findLinkList(body string) (open, close int, found bool, err error) {
	open, close = -1, -1
	inString := false
	for i, r := range body {
		switch {
		case r == '"':
			inString = !inString
		case !inString && r == '[':
			open, close = i, -1
		case !inString && r == ']':
			close = i
		}
	}
	if open < 0 {
		return 0, 0, false, nil
	}
	if close < open {
		return 0, 0, false, fmt.Errorf("unterminated link list")
	}
	return open, close, true, nil
}

// splitAnd splits on "∧" or "&" outside of string literals.
func splitAnd(s string) []string {
	var parts []string
	var cur strings.Builder
	inString := false
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case r == '"':
			inString = !inString
			cur.WriteRune(r)
		case !inString && (r == '∧' || r == '&'):
			parts = append(parts, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		parts = append(parts, t)
	}
	return parts
}

// parsePredicate reads `class.attr op rhs` where rhs is a literal or another
// attribute reference.
func parsePredicate(s string) (predicate.Predicate, error) {
	s = strings.TrimSpace(s)
	fields := tokenizePredicate(s)
	if len(fields) != 3 {
		return predicate.Predicate{}, fmt.Errorf("malformed predicate %q (want lhs op rhs)", s)
	}
	lhsClass, lhsAttr, err := splitRef(fields[0])
	if err != nil {
		return predicate.Predicate{}, err
	}
	op, err := predicate.ParseOp(fields[1])
	if err != nil {
		return predicate.Predicate{}, err
	}
	rhs := fields[2]
	if rhs != "" && (rhs[0] == '"' || rhs[0] == '-' || unicode.IsDigit(rune(rhs[0])) ||
		rhs == "true" || rhs == "false") {
		v, err := value.Parse(rhs)
		if err != nil {
			return predicate.Predicate{}, err
		}
		return predicate.Sel(lhsClass, lhsAttr, op, v), nil
	}
	rhsClass, rhsAttr, err := splitRef(rhs)
	if err != nil {
		return predicate.Predicate{}, err
	}
	return predicate.Join(lhsClass, lhsAttr, op, rhsClass, rhsAttr), nil
}

// tokenizePredicate splits "lhs op rhs" respecting quoted strings.
func tokenizePredicate(s string) []string {
	var out []string
	var cur strings.Builder
	inString := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inString = !inString
			cur.WriteRune(r)
		case !inString && unicode.IsSpace(r):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func splitRef(s string) (class, attr string, err error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 || strings.IndexByte(s[i+1:], '.') >= 0 {
		return "", "", fmt.Errorf("malformed attribute reference %q", s)
	}
	return s[:i], s[i+1:], nil
}
