// Package constraint implements the Horn-clause semantic constraints of the
// paper (Figure 2.2) and their classification.
//
// A constraint has the shape
//
//	antecedent₁ ∧ … ∧ antecedentₖ ∧ structural-links → consequent
//
// where antecedents and the consequent are predicates (selective or join) and
// the structural links name the relationships through which the referenced
// object classes must be connected (e.g. c1 relates cargo and vehicle *via
// collects*). The paper folds the structural part into its class-based
// relevance test, which is adequate for its path-query workload; we keep the
// links explicit so the firing condition stays sound for arbitrary queries
// (DESIGN.md deviation #2).
//
// Constraints are classified intra-class (all predicates on one object class)
// or inter-class (spanning several). The core algorithm's Tables 3.1/3.2 key
// their tag transitions on this classification, which is computed at
// construction time — the paper's "precompilation" tagging.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// Kind is the paper's intra-/inter-class constraint classification.
type Kind uint8

const (
	// Intra marks constraints whose predicates all reference a single
	// object class (e.g. c4: manager rank).
	Intra Kind = iota
	// Inter marks constraints relating attributes across object classes.
	Inter
)

// String returns "intra" or "inter".
func (k Kind) String() string {
	if k == Intra {
		return "intra"
	}
	return "inter"
}

// Constraint is one Horn-clause semantic constraint. Build with New and
// treat as immutable afterwards; the catalog and optimizer share instances
// freely.
type Constraint struct {
	// ID names the constraint, e.g. "c1". Derived constraints produced by
	// closure materialization get synthesized IDs ("c1*c2").
	ID string
	// Doc is an optional human-readable statement, e.g. "refrigerated
	// trucks can only be used to carry frozen food".
	Doc string
	// Antecedents are the body predicates; all must hold for the
	// consequent to be implied. May be empty (unconditional constraints
	// such as c4 restricted to the query's classes).
	Antecedents []predicate.Predicate
	// Links are the relationships through which the constraint's classes
	// must be connected for the rule to apply.
	Links []string
	// Consequent is the implied predicate.
	Consequent predicate.Predicate
	// StateDependent marks rules derived from the current database state
	// (the Siegel [Sie88] extension): they preserve query equivalence only
	// in that state and must be discarded when the data changes. Declared
	// integrity constraints leave this false.
	StateDependent bool

	kind    Kind
	classes []string
	key     string
}

// New builds a constraint, computing its classification and canonical key.
func New(id string, antecedents []predicate.Predicate, links []string, consequent predicate.Predicate) *Constraint {
	c := &Constraint{
		ID:          id,
		Antecedents: append([]predicate.Predicate(nil), antecedents...),
		Links:       append([]string(nil), links...),
		Consequent:  consequent,
	}
	c.finish()
	return c
}

// Restore rebuilds a constraint from persisted fields, trusting the stored
// classification and canonical key instead of recomputing them — the
// snapshot layer checksums the fields, so finish()'s sorting and string
// building would be pure waste on the warm-boot path. Unlike New, the
// predicate and string slices are aliased, not copied; the caller owns them
// and must treat them as frozen afterwards.
func Restore(id, doc string, antecedents []predicate.Predicate, links []string,
	consequent predicate.Predicate, stateDependent bool, kind Kind, classes []string, key string) *Constraint {
	c := new(Constraint)
	RestoreInto(c, id, doc, antecedents, links, consequent, stateDependent, kind, classes, key)
	return c
}

// RestoreInto is Restore writing into caller-owned storage, so a bulk
// decoder can restore a whole catalog into one arena allocation instead of
// one heap object per constraint.
func RestoreInto(c *Constraint, id, doc string, antecedents []predicate.Predicate, links []string,
	consequent predicate.Predicate, stateDependent bool, kind Kind, classes []string, key string) {
	*c = Constraint{
		ID:             id,
		Doc:            doc,
		Antecedents:    antecedents,
		Links:          links,
		Consequent:     consequent,
		StateDependent: stateDependent,
		kind:           kind,
		classes:        classes,
		key:            key,
	}
}

// WithDoc attaches a human-readable statement and returns the constraint.
func (c *Constraint) WithDoc(doc string) *Constraint {
	c.Doc = doc
	return c
}

// finish computes the derived fields. Kept separate so tests can rebuild
// after mutation.
func (c *Constraint) finish() {
	set := map[string]bool{}
	for _, p := range c.Antecedents {
		for _, cl := range p.Classes() {
			set[cl] = true
		}
	}
	for _, cl := range c.Consequent.Classes() {
		set[cl] = true
	}
	c.classes = make([]string, 0, len(set))
	for cl := range set {
		c.classes = append(c.classes, cl)
	}
	sort.Strings(c.classes)
	if len(c.classes) <= 1 {
		c.kind = Intra
	} else {
		c.kind = Inter
	}

	keys := make([]string, 0, len(c.Antecedents)+len(c.Links)+1)
	for _, p := range c.Antecedents {
		keys = append(keys, p.Key())
	}
	sort.Strings(keys)
	links := append([]string(nil), c.Links...)
	sort.Strings(links)
	c.key = strings.Join(keys, "&") + "|" + strings.Join(links, "&") + "=>" + c.Consequent.Key()
}

// Kind returns the intra/inter classification (the paper's tc(c) tag).
func (c *Constraint) Kind() Kind { return c.kind }

// Classes returns the sorted distinct object classes the constraint
// references.
func (c *Constraint) Classes() []string {
	return append([]string(nil), c.classes...)
}

// Key is a canonical identity: two constraints with the same antecedent set,
// link set and consequent share a key. The closure module dedupes with it.
func (c *Constraint) Key() string { return c.key }

// RelevantTo reports whether the constraint applies to the query: every class
// it references appears in the query (the paper's definition), and every
// structural link it requires is among the query's relationships.
func (c *Constraint) RelevantTo(q *query.Query) bool {
	for _, cl := range c.classes {
		if !q.HasClass(cl) {
			return false
		}
	}
	for _, l := range c.Links {
		if !q.HasRelationship(l) {
			return false
		}
	}
	return true
}

// Validate checks the constraint against a schema: all predicates must
// type-check, links must exist and connect referenced classes, and the
// constraint must actually be a Horn clause over at least one class.
func (c *Constraint) Validate(s *schema.Schema) error {
	if c.ID == "" {
		return fmt.Errorf("constraint with empty id")
	}
	for _, p := range append(append([]predicate.Predicate(nil), c.Antecedents...), c.Consequent) {
		if err := p.Validate(s); err != nil {
			return fmt.Errorf("constraint %s: %w", c.ID, err)
		}
	}
	for _, l := range c.Links {
		r := s.Relationship(l)
		if r == nil {
			return fmt.Errorf("constraint %s: unknown relationship %q", c.ID, l)
		}
	}
	// The classes referenced must be connected through the declared links
	// when the constraint is inter-class; otherwise the rule relates
	// unlinked classes, which is almost certainly a specification error.
	if c.kind == Inter && !s.Connected(c.classes, c.Links) {
		return fmt.Errorf("constraint %s: classes %v not connected by links %v", c.ID, c.classes, c.Links)
	}
	return nil
}

// String renders the constraint in the paper's arrow notation:
//
//	c1: vehicle.desc = "refrigerated truck" [collects] -> cargo.desc = "frozen food"
func (c *Constraint) String() string {
	var sb strings.Builder
	sb.WriteString(c.ID)
	sb.WriteString(": ")
	if len(c.Antecedents) == 0 {
		sb.WriteString("true")
	} else {
		parts := make([]string, len(c.Antecedents))
		for i, p := range c.Antecedents {
			parts[i] = p.String()
		}
		sb.WriteString(strings.Join(parts, " ∧ "))
	}
	if len(c.Links) > 0 {
		sb.WriteString(" [")
		sb.WriteString(strings.Join(c.Links, ", "))
		sb.WriteString("]")
	}
	sb.WriteString(" -> ")
	sb.WriteString(c.Consequent.String())
	return sb.String()
}

// Catalog is an ordered, deduplicated collection of constraints, usually the
// whole database's integrity constraint set.
type Catalog struct {
	constraints []*Constraint
	byID        map[string]*Constraint
	byKey       map[string]*Constraint
}

// NewCatalog builds a catalog from the given constraints. Duplicate IDs are
// an error; logically duplicate constraints (same Key) are silently merged.
func NewCatalog(cs ...*Constraint) (*Catalog, error) {
	cat := &Catalog{byID: map[string]*Constraint{}, byKey: map[string]*Constraint{}}
	for _, c := range cs {
		if err := cat.Add(c); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// MustCatalog is NewCatalog for statically known constraint sets.
func MustCatalog(cs ...*Constraint) *Catalog {
	cat, err := NewCatalog(cs...)
	if err != nil {
		panic(err)
	}
	return cat
}

// Add inserts a constraint. Adding a logical duplicate is a no-op; adding a
// different constraint under an existing ID is an error.
func (cat *Catalog) Add(c *Constraint) error {
	if dup, ok := cat.byKey[c.Key()]; ok {
		if dup.ID != c.ID && cat.byID[c.ID] == nil {
			cat.byID[c.ID] = dup // alias
		}
		return nil
	}
	if _, ok := cat.byID[c.ID]; ok {
		return fmt.Errorf("constraint: duplicate id %q", c.ID)
	}
	cat.byID[c.ID] = c
	cat.byKey[c.Key()] = c
	cat.constraints = append(cat.constraints, c)
	return nil
}

// Get returns the constraint with the given ID, or nil.
func (cat *Catalog) Get(id string) *Constraint { return cat.byID[id] }

// All returns the constraints in insertion order. The slice is fresh; the
// constraints are shared.
func (cat *Catalog) All() []*Constraint {
	return append([]*Constraint(nil), cat.constraints...)
}

// Len returns the number of (logically distinct) constraints.
func (cat *Catalog) Len() int { return len(cat.constraints) }

// RelevantTo filters the catalog down to the constraints relevant to q.
func (cat *Catalog) RelevantTo(q *query.Query) []*Constraint {
	var out []*Constraint
	for _, c := range cat.constraints {
		if c.RelevantTo(q) {
			out = append(out, c)
		}
	}
	return out
}

// Validate validates every constraint in the catalog.
func (cat *Catalog) Validate(s *schema.Schema) error {
	for _, c := range cat.constraints {
		if err := c.Validate(s); err != nil {
			return err
		}
	}
	return nil
}
