package constraint

import (
	"testing"
)

// FuzzParse: the constraint parser must never panic, and accepted inputs
// must survive a render/re-parse round trip with identical identity.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`c1: vehicle.desc = "refrigerated truck" [collects] -> cargo.desc = "frozen food"`,
		`c3: true [drives] -> driver.licenseClass >= vehicle.class`,
		`k: a.x = 1 ∧ b.y <= 2 -> c.z != 3`,
		`k: a.x = "∧ -> [tricky]" -> c.z = 1`,
		`k: a.x = true & b.y = false -> c.z = -9`,
		"nonsense",
		"k: ->",
		"k: a.b = [unclosed -> c.d = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(input)
		if err != nil {
			return
		}
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("accepted %q but rendered form fails: %v\nrendered: %s", input, err, c)
		}
		if back.Key() != c.Key() {
			t.Fatalf("round trip changed identity:\n in: %s\nout: %s", c, back)
		}
	})
}

// FuzzParseCatalog: multi-line catalogs never panic either.
func FuzzParseCatalog(f *testing.F) {
	f.Add("# comment\nc1: a.x = 1 -> b.y = 2\n\nc2: b.y = 2 -> a.x = 1\n")
	f.Add("c1: a.x = 1 -> b.y = 2\nc1: a.x = 2 -> b.y = 3\n") // duplicate ID
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ParseCatalog(input)
	})
}
