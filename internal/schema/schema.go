// Package schema models the object-oriented database schema of the paper
// (Figure 2.1): named object classes with typed attributes, binary
// relationships implemented with object pointers, and single inheritance
// between classes.
//
// The schema is the static substrate everything else is validated against:
// queries, semantic constraints, the storage engine and the workload
// generators all resolve names through a *Schema.
package schema

import (
	"fmt"
	"sort"

	"sqo/internal/value"
)

// Attribute describes one typed attribute of an object class.
type Attribute struct {
	Name string
	Type value.Kind
	// Indexed marks attributes backed by a secondary index. The core
	// algorithm consults this when deciding whether an intra-class
	// consequent becomes optional (indexed) or redundant (Table 3.1/3.2).
	Indexed bool
}

// Class is an object class: a named set of attributes, optionally inheriting
// from a parent class (the paper's is_a links, e.g. driver is_a employee).
type Class struct {
	Name       string
	Parent     string // empty when the class is a root
	attributes []Attribute
	attrIndex  map[string]int
}

// Attributes returns the class's own attributes in declaration order,
// excluding inherited ones.
func (c *Class) Attributes() []Attribute { return c.attributes }

// Cardinality describes how many instances may be linked on each side of a
// relationship.
type Cardinality uint8

// Relationship cardinalities. The first word describes the source side.
const (
	OneToOne Cardinality = iota
	OneToMany
	ManyToOne
	ManyToMany
)

// String returns the conventional notation for the cardinality.
func (c Cardinality) String() string {
	switch c {
	case OneToOne:
		return "1:1"
	case OneToMany:
		return "1:N"
	case ManyToOne:
		return "N:1"
	case ManyToMany:
		return "M:N"
	default:
		return "?:?"
	}
}

// Relationship is a named binary association between two object classes,
// implemented in the OODB with pointer attributes (Figure 2.1 prints those
// pointers in italics). SourceTotal / TargetTotal record participation: when
// SourceTotal is true every Source instance is linked to at least one Target.
// Class elimination (King's rule) is only exact when the eliminated side is
// reached through a total, single-valued link, so the optimizer consults
// these flags.
type Relationship struct {
	Name        string
	Source      string
	Target      string
	Card        Cardinality
	SourceTotal bool
	TargetTotal bool
}

// Other returns the class on the opposite end from the given one. It returns
// ("", false) when class is on neither end.
func (r Relationship) Other(class string) (string, bool) {
	switch class {
	case r.Source:
		return r.Target, true
	case r.Target:
		return r.Source, true
	default:
		return "", false
	}
}

// Involves reports whether the relationship touches the given class.
func (r Relationship) Involves(class string) bool {
	return r.Source == class || r.Target == class
}

// SingleValuedFrom reports whether, following the relationship from the given
// side, each instance links to at most one instance of the other side.
func (r Relationship) SingleValuedFrom(class string) bool {
	switch class {
	case r.Source:
		return r.Card == OneToOne || r.Card == ManyToOne
	case r.Target:
		return r.Card == OneToOne || r.Card == OneToMany
	default:
		return false
	}
}

// TotalFrom reports whether every instance of the given side participates in
// the relationship.
func (r Relationship) TotalFrom(class string) bool {
	switch class {
	case r.Source:
		return r.SourceTotal
	case r.Target:
		return r.TargetTotal
	default:
		return false
	}
}

// Schema is an immutable, validated collection of classes and relationships.
// Build one with a Builder.
type Schema struct {
	classes    map[string]*Class
	classOrder []string
	rels       map[string]*Relationship
	relOrder   []string
}

// Class returns the named class, or nil when it does not exist.
func (s *Schema) Class(name string) *Class { return s.classes[name] }

// HasClass reports whether the named class exists.
func (s *Schema) HasClass(name string) bool { return s.classes[name] != nil }

// Classes returns all class names in declaration order.
func (s *Schema) Classes() []string {
	out := make([]string, len(s.classOrder))
	copy(out, s.classOrder)
	return out
}

// Relationship returns the named relationship, or nil when it does not exist.
func (s *Schema) Relationship(name string) *Relationship { return s.rels[name] }

// Relationships returns all relationship names in declaration order.
func (s *Schema) Relationships() []string {
	out := make([]string, len(s.relOrder))
	copy(out, s.relOrder)
	return out
}

// RelationshipsOf returns the names of all relationships that touch the given
// class, in declaration order.
func (s *Schema) RelationshipsOf(class string) []string {
	var out []string
	for _, name := range s.relOrder {
		if s.rels[name].Involves(class) {
			out = append(out, name)
		}
	}
	return out
}

// Neighbors returns, for each relationship touching class, the class on the
// other end. The result is sorted and de-duplicated.
func (s *Schema) Neighbors(class string) []string {
	set := map[string]bool{}
	for _, name := range s.relOrder {
		if other, ok := s.rels[name].Other(class); ok {
			set[other] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Attr resolves an attribute on a class, walking up the inheritance chain the
// way the paper's subclasses (driver is_a employee) inherit attributes.
func (s *Schema) Attr(class, attr string) (Attribute, bool) {
	for c := s.classes[class]; c != nil; c = s.classes[c.Parent] {
		if i, ok := c.attrIndex[attr]; ok {
			return c.attributes[i], true
		}
		if c.Parent == "" {
			break
		}
	}
	return Attribute{}, false
}

// EffectiveAttributes returns the class's attributes including inherited
// ones. Inherited attributes come first (root ancestor first); an attribute
// redeclared in a subclass shadows the ancestor's declaration.
func (s *Schema) EffectiveAttributes(class string) []Attribute {
	var chain []*Class
	for c := s.classes[class]; c != nil; c = s.classes[c.Parent] {
		chain = append(chain, c)
		if c.Parent == "" {
			break
		}
	}
	var out []Attribute
	seen := map[string]int{} // attr name -> index in out
	for i := len(chain) - 1; i >= 0; i-- {
		for _, a := range chain[i].attributes {
			if j, ok := seen[a.Name]; ok {
				out[j] = a // subclass shadows ancestor
				continue
			}
			seen[a.Name] = len(out)
			out = append(out, a)
		}
	}
	return out
}

// IsSubclassOf reports whether class sub equals or transitively inherits from
// class super.
func (s *Schema) IsSubclassOf(sub, super string) bool {
	for c := s.classes[sub]; c != nil; c = s.classes[c.Parent] {
		if c.Name == super {
			return true
		}
		if c.Parent == "" {
			break
		}
	}
	return false
}

// Connected reports whether the given classes form a connected subgraph using
// only the given relationships. Queries over disconnected class sets denote
// cartesian products, which the path-query model of the paper never produces;
// query validation uses this to reject them.
func (s *Schema) Connected(classes, rels []string) bool {
	n := len(classes)
	if n == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	// Union-find over class-list indices. The check runs on every query
	// validation (the optimizer's hot path) over a handful of classes, so
	// it works in a small stack buffer with linear name lookups instead of
	// building adjacency maps.
	var buf [16]int32
	parent := buf[:0]
	if n > len(buf) {
		parent = make([]int32, 0, n)
	}
	for i := 0; i < n; i++ {
		parent = append(parent, int32(i))
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	indexOf := func(name string) int32 {
		for i, c := range classes {
			if c == name {
				return int32(i)
			}
		}
		return -1
	}
	for _, rn := range rels {
		r := s.rels[rn]
		if r == nil {
			continue
		}
		a, b := indexOf(r.Source), indexOf(r.Target)
		if a < 0 || b < 0 {
			continue
		}
		if ra, rb := find(a), find(b); ra != rb {
			parent[ra] = rb
		}
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(int32(i)) != root {
			return false
		}
	}
	return true
}

// Builder assembles and validates a Schema. Methods record definitions and
// defer all validation to Build, so call sites can chain declarations without
// per-call error handling.
type Builder struct {
	schema Schema
	errs   []error
}

// NewBuilder returns an empty schema builder.
func NewBuilder() *Builder {
	return &Builder{schema: Schema{
		classes: map[string]*Class{},
		rels:    map[string]*Relationship{},
	}}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Class declares an object class with the given attributes.
func (b *Builder) Class(name string, attrs ...Attribute) *Builder {
	return b.Subclass(name, "", attrs...)
}

// Subclass declares a class inheriting from parent. The parent must itself be
// declared by the time Build is called.
func (b *Builder) Subclass(name, parent string, attrs ...Attribute) *Builder {
	if name == "" {
		b.errorf("schema: class with empty name")
		return b
	}
	if _, dup := b.schema.classes[name]; dup {
		b.errorf("schema: class %q declared twice", name)
		return b
	}
	c := &Class{Name: name, Parent: parent, attrIndex: map[string]int{}}
	for _, a := range attrs {
		if a.Name == "" {
			b.errorf("schema: class %q has an attribute with empty name", name)
			continue
		}
		if _, dup := c.attrIndex[a.Name]; dup {
			b.errorf("schema: class %q attribute %q declared twice", name, a.Name)
			continue
		}
		if a.Type == value.KindInvalid {
			b.errorf("schema: class %q attribute %q has invalid type", name, a.Name)
			continue
		}
		c.attrIndex[a.Name] = len(c.attributes)
		c.attributes = append(c.attributes, a)
	}
	b.schema.classes[name] = c
	b.schema.classOrder = append(b.schema.classOrder, name)
	return b
}

// Relationship declares a binary relationship. Totality defaults to total on
// both sides (the common case in the paper's database, where every cargo has
// a supplier and so on); use PartialRelationship for anything weaker.
func (b *Builder) Relationship(name, source, target string, card Cardinality) *Builder {
	return b.addRel(Relationship{
		Name: name, Source: source, Target: target, Card: card,
		SourceTotal: true, TargetTotal: true,
	})
}

// PartialRelationship declares a relationship with explicit participation
// flags.
func (b *Builder) PartialRelationship(name, source, target string, card Cardinality, sourceTotal, targetTotal bool) *Builder {
	return b.addRel(Relationship{
		Name: name, Source: source, Target: target, Card: card,
		SourceTotal: sourceTotal, TargetTotal: targetTotal,
	})
}

func (b *Builder) addRel(r Relationship) *Builder {
	if r.Name == "" {
		b.errorf("schema: relationship with empty name")
		return b
	}
	if _, dup := b.schema.rels[r.Name]; dup {
		b.errorf("schema: relationship %q declared twice", r.Name)
		return b
	}
	rel := r
	b.schema.rels[r.Name] = &rel
	b.schema.relOrder = append(b.schema.relOrder, r.Name)
	return b
}

// Build validates the accumulated declarations and returns the schema.
func (b *Builder) Build() (*Schema, error) {
	for _, name := range b.schema.classOrder {
		c := b.schema.classes[name]
		if c.Parent != "" {
			if b.schema.classes[c.Parent] == nil {
				b.errorf("schema: class %q inherits from unknown class %q", name, c.Parent)
			} else if cyclic(b.schema.classes, name) {
				b.errorf("schema: inheritance cycle through class %q", name)
			}
		}
	}
	for _, name := range b.schema.relOrder {
		r := b.schema.rels[name]
		if b.schema.classes[r.Source] == nil {
			b.errorf("schema: relationship %q references unknown class %q", name, r.Source)
		}
		if b.schema.classes[r.Target] == nil {
			b.errorf("schema: relationship %q references unknown class %q", name, r.Target)
		}
	}
	if len(b.errs) > 0 {
		return nil, joinErrors(b.errs)
	}
	s := b.schema
	return &s, nil
}

// MustBuild is Build for statically known schemas; it panics on error.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

func cyclic(classes map[string]*Class, start string) bool {
	slow, fast := start, start
	for {
		fast = parentOf(classes, parentOf(classes, fast))
		slow = parentOf(classes, slow)
		if fast == "" {
			return false
		}
		if slow == fast {
			return true
		}
	}
}

func parentOf(classes map[string]*Class, name string) string {
	if name == "" {
		return ""
	}
	c := classes[name]
	if c == nil {
		return ""
	}
	return c.Parent
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "; " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}
