package schema

import (
	"reflect"
	"strings"
	"testing"

	"sqo/internal/value"
)

func TestRenderParseRoundTrip(t *testing.T) {
	s := paperSchema(t)
	text := Render(s)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Render(s)): %v\n%s", err, text)
	}
	if !reflect.DeepEqual(s.Classes(), back.Classes()) {
		t.Errorf("classes changed: %v vs %v", s.Classes(), back.Classes())
	}
	if !reflect.DeepEqual(s.Relationships(), back.Relationships()) {
		t.Errorf("relationships changed: %v vs %v", s.Relationships(), back.Relationships())
	}
	for _, cl := range s.Classes() {
		a := s.Class(cl)
		b := back.Class(cl)
		if a.Parent != b.Parent {
			t.Errorf("%s: parent %q vs %q", cl, a.Parent, b.Parent)
		}
		if !reflect.DeepEqual(a.Attributes(), b.Attributes()) {
			t.Errorf("%s: attributes differ:\n%v\n%v", cl, a.Attributes(), b.Attributes())
		}
	}
	for _, rn := range s.Relationships() {
		if *s.Relationship(rn) != *back.Relationship(rn) {
			t.Errorf("%s: %+v vs %+v", rn, s.Relationship(rn), back.Relationship(rn))
		}
	}
	// Rendering the round-tripped schema is a fixpoint.
	if Render(back) != text {
		t.Error("Render(Parse(Render(s))) differs from Render(s)")
	}
}

func TestParseSchemaText(t *testing.T) {
	text := `
# a tiny world
class box(code: string indexed, weight: int, fragile: bool)
class crate extends box(slots: int)

relationship holds: crate 1:N box partial-source partial-target
`
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a, ok := s.Attr("box", "code")
	if !ok || a.Type != value.KindString || !a.Indexed {
		t.Errorf("box.code = %+v, %v", a, ok)
	}
	if _, ok := s.Attr("crate", "weight"); !ok {
		t.Error("crate should inherit weight")
	}
	r := s.Relationship("holds")
	if r == nil || r.Card != OneToMany || r.SourceTotal || r.TargetTotal {
		t.Errorf("holds = %+v", r)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []struct {
		name, text string
	}{
		{"garbage", "what is this"},
		{"class no parens", "class box"},
		{"class bad header", "class a b c(x: int)"},
		{"attr no colon", "class box(code string)"},
		{"attr bad type", "class box(code: varchar)"},
		{"attr bad modifier", "class box(code: int unique)"},
		{"attr too many fields", "class box(code: int indexed twice)"},
		{"rel no colon", "relationship holds crate 1:N box"},
		{"rel bad card", "relationship holds: crate 2:3 box"},
		{"rel bad modifier", "relationship holds: crate 1:N box sometimes"},
		{"rel too few", "relationship holds: crate 1:N"},
		{"rel unknown class", "relationship holds: crate 1:N box"},
		{"subclass unknown parent", "class crate extends ghost(x: int)"},
	}
	for _, c := range bad {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: Parse should fail:\n%s", c.name, c.text)
		}
	}
}

func TestParseErrorNamesLine(t *testing.T) {
	_, err := Parse("class ok(x: int)\nnonsense here")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name line 2: %v", err)
	}
}

func TestKindNamesCoverParser(t *testing.T) {
	want := []string{"bool", "float", "int", "string"}
	if got := kindNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("kind names = %v, want %v — keep Kind.String and parseAttr in sync", got, want)
	}
}

func TestRenderEmptyClass(t *testing.T) {
	s := NewBuilder().Class("empty").MustBuild()
	back, err := Parse(Render(s))
	if err != nil {
		t.Fatalf("empty class round trip: %v", err)
	}
	if !back.HasClass("empty") {
		t.Error("empty class lost")
	}
}
