package schema

import (
	"reflect"
	"testing"

	"sqo/internal/value"
)

// paperSchema builds the Figure 2.1 database schema used throughout the
// paper's examples.
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewBuilder().
		Class("supplier",
			Attribute{Name: "name", Type: value.KindString, Indexed: true},
			Attribute{Name: "address", Type: value.KindString}).
		Class("cargo",
			Attribute{Name: "code", Type: value.KindString, Indexed: true},
			Attribute{Name: "desc", Type: value.KindString},
			Attribute{Name: "quantity", Type: value.KindInt}).
		Class("vehicle",
			Attribute{Name: "vehicle#", Type: value.KindString, Indexed: true},
			Attribute{Name: "desc", Type: value.KindString},
			Attribute{Name: "class", Type: value.KindInt}).
		Class("engine",
			Attribute{Name: "engine#", Type: value.KindString, Indexed: true},
			Attribute{Name: "capacity", Type: value.KindInt}).
		Class("employee",
			Attribute{Name: "name", Type: value.KindString, Indexed: true},
			Attribute{Name: "clearance", Type: value.KindString},
			Attribute{Name: "rank", Type: value.KindString}).
		Subclass("driver", "employee",
			Attribute{Name: "license#", Type: value.KindString},
			Attribute{Name: "licenseClass", Type: value.KindInt}).
		Subclass("supervisor", "driver").
		Class("department",
			Attribute{Name: "name", Type: value.KindString, Indexed: true},
			Attribute{Name: "securityClass", Type: value.KindString}).
		Relationship("supplies", "supplier", "cargo", OneToMany).
		Relationship("collects", "vehicle", "cargo", OneToMany).
		Relationship("engComp", "vehicle", "engine", OneToOne).
		Relationship("drives", "driver", "vehicle", ManyToMany).
		Relationship("belongsTo", "employee", "department", ManyToOne).
		Build()
	if err != nil {
		t.Fatalf("paper schema should build: %v", err)
	}
	return s
}

func TestBuildPaperSchema(t *testing.T) {
	s := paperSchema(t)
	if got := len(s.Classes()); got != 8 {
		t.Errorf("len(Classes()) = %d, want 8", got)
	}
	if got := len(s.Relationships()); got != 5 {
		t.Errorf("len(Relationships()) = %d, want 5", got)
	}
	if !s.HasClass("cargo") || s.HasClass("warehouse") {
		t.Error("HasClass gives wrong answers")
	}
	if s.Class("missing") != nil {
		t.Error("Class(missing) should be nil")
	}
	if s.Relationship("missing") != nil {
		t.Error("Relationship(missing) should be nil")
	}
}

func TestAttrResolution(t *testing.T) {
	s := paperSchema(t)
	a, ok := s.Attr("cargo", "desc")
	if !ok || a.Type != value.KindString || a.Indexed {
		t.Errorf("Attr(cargo, desc) = %+v, %v", a, ok)
	}
	if _, ok := s.Attr("cargo", "nope"); ok {
		t.Error("Attr should miss unknown attribute")
	}
	if _, ok := s.Attr("nope", "desc"); ok {
		t.Error("Attr should miss unknown class")
	}
}

func TestAttrInheritance(t *testing.T) {
	s := paperSchema(t)
	// driver inherits clearance from employee.
	a, ok := s.Attr("driver", "clearance")
	if !ok || a.Type != value.KindString {
		t.Errorf("driver should inherit clearance: %+v, %v", a, ok)
	}
	// supervisor inherits licenseClass from driver, two levels up to employee.
	if _, ok := s.Attr("supervisor", "licenseClass"); !ok {
		t.Error("supervisor should inherit licenseClass")
	}
	if _, ok := s.Attr("supervisor", "rank"); !ok {
		t.Error("supervisor should inherit rank from employee")
	}
}

func TestEffectiveAttributes(t *testing.T) {
	s := paperSchema(t)
	attrs := s.EffectiveAttributes("driver")
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	want := []string{"name", "clearance", "rank", "license#", "licenseClass"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("EffectiveAttributes(driver) = %v, want %v", names, want)
	}
}

func TestEffectiveAttributesShadowing(t *testing.T) {
	s := NewBuilder().
		Class("base", Attribute{Name: "x", Type: value.KindInt}).
		Subclass("sub", "base", Attribute{Name: "x", Type: value.KindString, Indexed: true}).
		MustBuild()
	attrs := s.EffectiveAttributes("sub")
	if len(attrs) != 1 {
		t.Fatalf("shadowed attribute should appear once, got %d", len(attrs))
	}
	if attrs[0].Type != value.KindString || !attrs[0].Indexed {
		t.Errorf("subclass declaration should shadow: %+v", attrs[0])
	}
}

func TestIsSubclassOf(t *testing.T) {
	s := paperSchema(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"driver", "employee", true},
		{"supervisor", "employee", true},
		{"supervisor", "driver", true},
		{"employee", "driver", false},
		{"cargo", "employee", false},
		{"driver", "driver", true},
	}
	for _, c := range cases {
		if got := s.IsSubclassOf(c.sub, c.super); got != c.want {
			t.Errorf("IsSubclassOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestRelationshipHelpers(t *testing.T) {
	s := paperSchema(t)
	r := s.Relationship("supplies")
	if other, ok := r.Other("supplier"); !ok || other != "cargo" {
		t.Errorf("Other(supplier) = %q, %v", other, ok)
	}
	if other, ok := r.Other("cargo"); !ok || other != "supplier" {
		t.Errorf("Other(cargo) = %q, %v", other, ok)
	}
	if _, ok := r.Other("engine"); ok {
		t.Error("Other(engine) should miss")
	}
	if !r.Involves("supplier") || r.Involves("engine") {
		t.Error("Involves broken")
	}
	// supplies is supplier 1:N cargo: each cargo has one supplier.
	if !r.SingleValuedFrom("cargo") {
		t.Error("cargo->supplier should be single-valued")
	}
	if r.SingleValuedFrom("supplier") {
		t.Error("supplier->cargo should be multi-valued")
	}
	if r.SingleValuedFrom("engine") {
		t.Error("unrelated class is never single-valued")
	}
	if !r.TotalFrom("supplier") || !r.TotalFrom("cargo") {
		t.Error("default relationships are total on both sides")
	}
	if r.TotalFrom("engine") {
		t.Error("unrelated class is never total")
	}
}

func TestPartialRelationship(t *testing.T) {
	s := NewBuilder().
		Class("a", Attribute{Name: "x", Type: value.KindInt}).
		Class("b", Attribute{Name: "y", Type: value.KindInt}).
		PartialRelationship("r", "a", "b", ManyToOne, false, true).
		MustBuild()
	r := s.Relationship("r")
	if r.TotalFrom("a") {
		t.Error("source participation should be partial")
	}
	if !r.TotalFrom("b") {
		t.Error("target participation should be total")
	}
}

func TestRelationshipsOfAndNeighbors(t *testing.T) {
	s := paperSchema(t)
	rels := s.RelationshipsOf("cargo")
	want := []string{"supplies", "collects"}
	if !reflect.DeepEqual(rels, want) {
		t.Errorf("RelationshipsOf(cargo) = %v, want %v", rels, want)
	}
	neigh := s.Neighbors("vehicle")
	wantN := []string{"cargo", "driver", "engine"}
	if !reflect.DeepEqual(neigh, wantN) {
		t.Errorf("Neighbors(vehicle) = %v, want %v", neigh, wantN)
	}
}

func TestConnected(t *testing.T) {
	s := paperSchema(t)
	cases := []struct {
		classes []string
		rels    []string
		want    bool
	}{
		{[]string{"supplier", "cargo", "vehicle"}, []string{"supplies", "collects"}, true},
		{[]string{"supplier", "cargo", "vehicle"}, []string{"supplies"}, false},
		{[]string{"supplier", "engine"}, []string{"supplies", "engComp"}, false},
		{[]string{"cargo"}, nil, true},
		{nil, nil, false},
		// relationship whose endpoints are outside the class set is ignored
		{[]string{"supplier", "cargo"}, []string{"supplies", "engComp"}, true},
	}
	for _, c := range cases {
		if got := s.Connected(c.classes, c.rels); got != c.want {
			t.Errorf("Connected(%v, %v) = %v, want %v", c.classes, c.rels, got, c.want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Schema, error)
	}{
		{"duplicate class", func() (*Schema, error) {
			return NewBuilder().
				Class("a", Attribute{Name: "x", Type: value.KindInt}).
				Class("a", Attribute{Name: "x", Type: value.KindInt}).
				Build()
		}},
		{"empty class name", func() (*Schema, error) {
			return NewBuilder().Class("").Build()
		}},
		{"duplicate attribute", func() (*Schema, error) {
			return NewBuilder().Class("a",
				Attribute{Name: "x", Type: value.KindInt},
				Attribute{Name: "x", Type: value.KindInt}).Build()
		}},
		{"empty attribute name", func() (*Schema, error) {
			return NewBuilder().Class("a", Attribute{Type: value.KindInt}).Build()
		}},
		{"invalid attribute type", func() (*Schema, error) {
			return NewBuilder().Class("a", Attribute{Name: "x"}).Build()
		}},
		{"unknown parent", func() (*Schema, error) {
			return NewBuilder().Subclass("a", "ghost").Build()
		}},
		{"inheritance cycle", func() (*Schema, error) {
			return NewBuilder().
				Subclass("a", "b").
				Subclass("b", "a").
				Build()
		}},
		{"relationship unknown class", func() (*Schema, error) {
			return NewBuilder().
				Class("a", Attribute{Name: "x", Type: value.KindInt}).
				Relationship("r", "a", "ghost", OneToOne).
				Build()
		}},
		{"duplicate relationship", func() (*Schema, error) {
			return NewBuilder().
				Class("a", Attribute{Name: "x", Type: value.KindInt}).
				Class("b", Attribute{Name: "y", Type: value.KindInt}).
				Relationship("r", "a", "b", OneToOne).
				Relationship("r", "b", "a", OneToOne).
				Build()
		}},
		{"empty relationship name", func() (*Schema, error) {
			return NewBuilder().
				Class("a", Attribute{Name: "x", Type: value.KindInt}).
				Relationship("", "a", "a", OneToOne).
				Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: Build should fail", c.name)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid schema")
		}
	}()
	NewBuilder().Subclass("a", "ghost").MustBuild()
}

func TestCardinalityString(t *testing.T) {
	cases := map[Cardinality]string{
		OneToOne: "1:1", OneToMany: "1:N", ManyToOne: "N:1", ManyToMany: "M:N",
		Cardinality(9): "?:?",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Cardinality(%d).String() = %q, want %q", c, got, want)
		}
	}
}
