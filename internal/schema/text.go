package schema

import (
	"fmt"
	"sort"
	"strings"

	"sqo/internal/value"
)

// This file implements a line-oriented text format for schemas, so CLIs and
// downstream users can define their own databases without writing Go:
//
//	# classes
//	class supplier(name: string indexed, address: string, rating: int indexed)
//	class employee(name: string indexed, clearance: string)
//	class driver extends employee(license#: string, licenseClass: int)
//
//	# relationships: <name>: <source> <card> <target> [partial-source] [partial-target]
//	relationship supplies: supplier 1:N cargo partial-source
//	relationship drives:   driver   M:N vehicle
//
// Render produces this format; Parse reads it back. Round trips preserve the
// schema exactly (declaration order included).

// Render writes the schema in the text format.
func Render(s *Schema) string {
	var sb strings.Builder
	for _, name := range s.Classes() {
		c := s.Class(name)
		sb.WriteString("class ")
		sb.WriteString(name)
		if c.Parent != "" {
			sb.WriteString(" extends ")
			sb.WriteString(c.Parent)
		}
		sb.WriteByte('(')
		for i, a := range c.Attributes() {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s: %s", a.Name, a.Type)
			if a.Indexed {
				sb.WriteString(" indexed")
			}
		}
		sb.WriteString(")\n")
	}
	for _, name := range s.Relationships() {
		r := s.Relationship(name)
		fmt.Fprintf(&sb, "relationship %s: %s %s %s", name, r.Source, r.Card, r.Target)
		if !r.SourceTotal {
			sb.WriteString(" partial-source")
		}
		if !r.TargetTotal {
			sb.WriteString(" partial-target")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse reads a schema in the text format Render produces. Blank lines and
// #-comments are ignored.
func Parse(text string) (*Schema, error) {
	b := NewBuilder()
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "class "):
			err = parseClassLine(b, strings.TrimSpace(line[len("class "):]))
		case strings.HasPrefix(line, "relationship "):
			err = parseRelationshipLine(b, strings.TrimSpace(line[len("relationship "):]))
		default:
			err = fmt.Errorf("expected 'class' or 'relationship'")
		}
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", i+1, err)
		}
	}
	return b.Build()
}

// parseClassLine reads `name [extends parent](attr: type [indexed], ...)`.
func parseClassLine(b *Builder, rest string) error {
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return fmt.Errorf("malformed class declaration (want name(attrs...))")
	}
	head := strings.Fields(strings.TrimSpace(rest[:open]))
	var name, parent string
	switch {
	case len(head) == 1:
		name = head[0]
	case len(head) == 3 && head[1] == "extends":
		name, parent = head[0], head[2]
	default:
		return fmt.Errorf("malformed class header %q", rest[:open])
	}

	var attrs []Attribute
	body := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if body != "" {
		for _, part := range strings.Split(body, ",") {
			a, err := parseAttr(strings.TrimSpace(part))
			if err != nil {
				return err
			}
			attrs = append(attrs, a)
		}
	}
	if parent != "" {
		b.Subclass(name, parent, attrs...)
	} else {
		b.Class(name, attrs...)
	}
	return nil
}

// parseAttr reads `name: type [indexed]`.
func parseAttr(s string) (Attribute, error) {
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return Attribute{}, fmt.Errorf("malformed attribute %q (want name: type)", s)
	}
	a := Attribute{Name: strings.TrimSpace(s[:colon])}
	fields := strings.Fields(s[colon+1:])
	if len(fields) == 0 || len(fields) > 2 {
		return Attribute{}, fmt.Errorf("malformed attribute %q", s)
	}
	switch fields[0] {
	case "string":
		a.Type = value.KindString
	case "int":
		a.Type = value.KindInt
	case "float":
		a.Type = value.KindFloat
	case "bool":
		a.Type = value.KindBool
	default:
		return Attribute{}, fmt.Errorf("unknown attribute type %q", fields[0])
	}
	if len(fields) == 2 {
		if fields[1] != "indexed" {
			return Attribute{}, fmt.Errorf("unknown attribute modifier %q", fields[1])
		}
		a.Indexed = true
	}
	return a, nil
}

// parseRelationshipLine reads `name: source card target [partial-source] [partial-target]`.
func parseRelationshipLine(b *Builder, rest string) error {
	colon := strings.IndexByte(rest, ':')
	if colon <= 0 {
		return fmt.Errorf("malformed relationship (want name: source card target)")
	}
	name := strings.TrimSpace(rest[:colon])
	fields := strings.Fields(rest[colon+1:])
	if len(fields) < 3 || len(fields) > 5 {
		return fmt.Errorf("malformed relationship body %q", rest[colon+1:])
	}
	source, cardText, target := fields[0], fields[1], fields[2]
	var card Cardinality
	switch cardText {
	case "1:1":
		card = OneToOne
	case "1:N":
		card = OneToMany
	case "N:1":
		card = ManyToOne
	case "M:N":
		card = ManyToMany
	default:
		return fmt.Errorf("unknown cardinality %q", cardText)
	}
	sourceTotal, targetTotal := true, true
	for _, mod := range fields[3:] {
		switch mod {
		case "partial-source":
			sourceTotal = false
		case "partial-target":
			targetTotal = false
		default:
			return fmt.Errorf("unknown relationship modifier %q", mod)
		}
	}
	b.PartialRelationship(name, source, target, card, sourceTotal, targetTotal)
	return nil
}

// kindNames keeps Kind.String and the parser in sync; used by tests.
func kindNames() []string {
	out := []string{
		value.KindString.String(),
		value.KindInt.String(),
		value.KindFloat.String(),
		value.KindBool.String(),
	}
	sort.Strings(out)
	return out
}
