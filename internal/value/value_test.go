package value

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindString, "string"},
		{KindInt, "int"},
		{KindFloat, "float"},
		{KindBool, "bool"},
		{KindInvalid, "invalid"},
		{Kind(99), "invalid"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKindNumeric(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("numeric kinds must report Numeric()")
	}
	if KindString.Numeric() || KindBool.Numeric() || KindInvalid.Numeric() {
		t.Error("non-numeric kinds must not report Numeric()")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := String("abc"); v.Kind() != KindString || v.Str() != "abc" || !v.Valid() {
		t.Errorf("String constructor broken: %v", v)
	}
	if v := Int(-7); v.Kind() != KindInt || v.IntVal() != -7 {
		t.Errorf("Int constructor broken: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.FloatVal() != 2.5 {
		t.Errorf("Float constructor broken: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Errorf("Bool constructor broken: %v", v)
	}
	var zero Value
	if zero.Valid() {
		t.Error("zero Value must be invalid")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Str() on int value should panic")
		}
	}()
	_ = Int(1).Str()
}

func TestNum(t *testing.T) {
	if f, ok := Int(4).Num(); !ok || f != 4 {
		t.Errorf("Int(4).Num() = %v, %v", f, ok)
	}
	if f, ok := Float(1.5).Num(); !ok || f != 1.5 {
		t.Errorf("Float(1.5).Num() = %v, %v", f, ok)
	}
	if _, ok := String("x").Num(); ok {
		t.Error("String.Num() must report !ok")
	}
	if _, ok := Bool(true).Num(); ok {
		t.Error("Bool.Num() must report !ok")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{Int(3), Float(3.0), 0},
		{Int(3), Float(3.5), -1},
		{Float(3.5), Int(3), 1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(false), 1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v) unexpected error: %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparable(t *testing.T) {
	pairs := [][2]Value{
		{String("a"), Int(1)},
		{Bool(true), Int(1)},
		{String("a"), Bool(false)},
		{{}, Int(1)},
		{{}, {}},
	}
	for _, p := range pairs {
		if _, err := p[0].Compare(p[1]); err == nil {
			t.Errorf("Compare(%v, %v) should fail", p[0], p[1])
		}
		if p[0].Equal(p[1]) {
			t.Errorf("Equal(%v, %v) should be false", p[0], p[1])
		}
		if p[0].Less(p[1]) {
			t.Errorf("Less(%v, %v) should be false", p[0], p[1])
		}
	}
}

func TestEqualAndLess(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) must equal Float(3)")
	}
	if !Int(2).Less(Int(3)) || Int(3).Less(Int(2)) {
		t.Error("Less is broken for ints")
	}
	if !String("a").Less(String("b")) {
		t.Error("Less is broken for strings")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("frozen food"), `"frozen food"`},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestKeyDistinguishesKinds(t *testing.T) {
	vs := []Value{String("1"), Int(1), Bool(true), String("true")}
	seen := map[string]Value{}
	for _, v := range vs {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		seen[k] = v
	}
	// Int and Float that compare equal must share a key.
	if Int(3).Key() != Float(3).Key() {
		t.Errorf("Int(3).Key()=%q differs from Float(3).Key()=%q", Int(3).Key(), Float(3).Key())
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{`"SFI"`, String("SFI")},
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.75", Float(2.75)},
		{"true", Bool(true)},
		{"false", Bool(false)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", `"unterminated`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// randomValue produces an arbitrary valid Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		letters := []byte("abcdefg")
		n := r.Intn(5)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[r.Intn(len(letters))])
		}
		return String(sb.String())
	case 1:
		return Int(int64(r.Intn(201) - 100))
	case 2:
		return Float(math.Round(r.Float64()*200-100) / 4)
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// Generate implements quick.Generator so Values can appear in property tests.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		ab, err1 := a.Compare(b)
		ba, err2 := b.Compare(a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c Value) bool {
		ab, err1 := a.Compare(b)
		bc, err2 := b.Compare(c)
		ac, err3 := a.Compare(c)
		if err1 != nil || err2 != nil || err3 != nil {
			return true // incomparable triples are vacuously fine
		}
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		return !(ab >= 0 && bc >= 0 && ac < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualValuesShareKey(t *testing.T) {
	f := func(a, b Value) bool {
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key() || !a.Comparable(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	f := func(a Value) bool {
		got, err := Parse(a.String())
		if err != nil {
			return false
		}
		return got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
