// Package value implements the typed constants that appear in predicates,
// attributes and semantic constraints.
//
// A Value is a small immutable tagged union over the four primitive kinds the
// optimizer understands: strings, 64-bit integers, 64-bit floats and booleans.
// Values of the two numeric kinds are mutually comparable; every other
// comparison requires identical kinds. Value is a comparable struct, so it can
// be used directly as a map key.
package value

import (
	"fmt"
	"strconv"
)

// Kind identifies the primitive type carried by a Value.
type Kind uint8

// The supported primitive kinds.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Numeric reports whether the kind is one of the two numeric kinds.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is an immutable typed constant. The zero Value has KindInvalid and is
// not a legal operand; constructors always return valid Values.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// String returns a Value of KindString.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns a Value of KindInt.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a Value of KindFloat.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a Value of KindBool.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether the value was produced by a constructor.
func (v Value) Valid() bool { return v.kind != KindInvalid }

// Str returns the string payload. It panics if the kind is not KindString.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// IntVal returns the integer payload. It panics if the kind is not KindInt.
func (v Value) IntVal() int64 {
	v.mustBe(KindInt)
	return v.i
}

// FloatVal returns the float payload. It panics if the kind is not KindFloat.
func (v Value) FloatVal() float64 {
	v.mustBe(KindFloat)
	return v.f
}

// BoolVal returns the boolean payload. It panics if the kind is not KindBool.
func (v Value) BoolVal() bool {
	v.mustBe(KindBool)
	return v.b
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s payload requested from %s value", k, v.kind))
	}
}

// Num returns the value as a float64 for numeric kinds.
// The second result is false for non-numeric kinds.
func (v Value) Num() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Comparable reports whether two values can be ordered against each other:
// identical kinds always can, and the two numeric kinds can cross-compare.
func (v Value) Comparable(o Value) bool {
	if v.kind == o.kind {
		return v.kind != KindInvalid
	}
	return v.kind.Numeric() && o.kind.Numeric()
}

// Compare orders v against o, returning -1, 0 or +1. Booleans order
// false < true. It returns an error when the values are not comparable.
func (v Value) Compare(o Value) (int, error) {
	if !v.Comparable(o) {
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.kind, o.kind)
	}
	switch {
	case v.kind == KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		}
		return 0, nil
	case v.kind == KindBool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		}
		return 0, nil
	default: // numeric, possibly mixed
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1, nil
			case v.i > o.i:
				return 1, nil
			}
			return 0, nil
		}
		a, _ := v.Num()
		b, _ := o.Num()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	}
}

// Equal reports whether v and o compare equal. Values of incomparable kinds
// are never equal.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// Less reports whether v orders strictly before o. Incomparable values are
// reported as not-less.
func (v Value) Less(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c < 0
}

// String renders the value the way the paper prints constants: strings are
// double-quoted, numerics and booleans appear bare.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.s)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Key returns a canonical, collision-free encoding of the value used when
// interning predicates. Distinct values always produce distinct keys, and the
// numeric kinds share an encoding so that Int(3) and Float(3) (which compare
// equal) intern identically.
func (v Value) Key() string {
	switch v.kind {
	case KindString:
		return "s" + strconv.Quote(v.s)
	case KindInt:
		return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return "b" + strconv.FormatBool(v.b)
	default:
		return "!"
	}
}

// Parse interprets a literal the way the cmd/sqopt query parser needs:
// double-quoted text is a string, "true"/"false" are booleans, text that
// parses as an integer or float is numeric, and anything else is an error.
func Parse(lit string) (Value, error) {
	if lit == "" {
		return Value{}, fmt.Errorf("value: empty literal")
	}
	if lit[0] == '"' {
		s, err := strconv.Unquote(lit)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad string literal %s: %w", lit, err)
		}
		return String(s), nil
	}
	switch lit {
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(lit, 64); err == nil {
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("value: unrecognized literal %q", lit)
}
