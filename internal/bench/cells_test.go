package bench

import (
	"strings"
	"testing"
)

func TestFig41CellRuns(t *testing.T) {
	for _, k := range []int{1, 3, 5} {
		for _, n := range []int{1, 5, 9} {
			opt, q := Fig41Cell(k, n)
			res, err := opt.Optimize(q)
			if err != nil {
				t.Fatalf("cell (%d,%d): %v", k, n, err)
			}
			if res.Stats.RelevantConstraints != n {
				t.Errorf("cell (%d,%d): relevant = %d, want %d", k, n, res.Stats.RelevantConstraints, n)
			}
			// Every synthetic constraint fires (antecedents are in the query).
			if res.Stats.Fires != n {
				t.Errorf("cell (%d,%d): fires = %d, want %d", k, n, res.Stats.Fires, n)
			}
		}
	}
}

func TestComplexityCellRuns(t *testing.T) {
	for _, n := range []int{4, 16} {
		opt, q := ComplexityCell(n)
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Stats.RelevantConstraints != n {
			t.Errorf("n=%d: relevant = %d", n, res.Stats.RelevantConstraints)
		}
		if res.Stats.Ops <= 0 {
			t.Errorf("n=%d: no ops recorded", n)
		}
	}
}

func TestOptimizerComparisonCell(t *testing.T) {
	runners, err := OptimizerComparisonCell()
	if err != nil {
		t.Fatal(err)
	}
	if len(runners) != 4 {
		t.Fatalf("runners = %d, want core + 3 baselines", len(runners))
	}
	names := map[string]bool{}
	for _, r := range runners {
		names[r.Name] = true
		if err := r.Run(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
	for _, want := range []string{"core", "straightforward", "best-first", "exhaustive"} {
		if !names[want] {
			t.Errorf("runner %q missing", want)
		}
	}
}

func TestRunOptimizerComparisonRender(t *testing.T) {
	rows, err := RunOptimizerComparison(6, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderOptimizerComparison(rows)
	for _, want := range []string{"core (tentative)", "best-first [SSD88]", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Core produces at-least-as-good outcomes on this workload.
	var coreRatio float64
	for _, r := range rows {
		if r.Name == "core (tentative)" {
			coreRatio = r.MeanRatioPct
		}
	}
	for _, r := range rows {
		if r.MeanRatioPct < coreRatio-1e-9 {
			t.Errorf("%s beat core on outcome (%.1f%% vs %.1f%%)", r.Name, r.MeanRatioPct, coreRatio)
		}
	}
}

func TestTable42CSV(t *testing.T) {
	res, err := RunTable42(6, 41)
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+4*6 {
		t.Fatalf("csv lines = %d, want header + 4 DBs x 6 queries", len(lines))
	}
	if !strings.HasPrefix(lines[0], "db,ratio_percent") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "DB1,") {
		t.Errorf("first row = %q", lines[1])
	}
}
