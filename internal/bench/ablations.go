package bench

import (
	"fmt"
	"strings"
	"time"

	"sqo/internal/baseline"
	"sqo/internal/closure"
	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/groups"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

// --- Ablation A: constraint grouping policies -------------------------------

// GroupingRow reports retrieval efficiency for one assignment policy.
type GroupingRow struct {
	Policy    string
	Retrieved int64
	Relevant  int64
	Waste     float64 // fraction of retrieved constraints that were irrelevant
}

// RunGrouping measures, for each grouping policy, how many constraints the
// store fetches versus how many are actually relevant across the workload —
// the quantity the paper's least-frequently-accessed enhancement targets.
// Access statistics are warmed with the same workload first so LeastAccessed
// has a pattern to adapt to.
func RunGrouping(queries int, seed int64) ([]GroupingRow, error) {
	w, err := NewWorld(datagen.DB1())
	if err != nil {
		return nil, err
	}
	workload, err := w.Workload(queries, seed)
	if err != nil {
		return nil, err
	}
	var rows []GroupingRow
	for _, policy := range []groups.Policy{groups.Arbitrary, groups.LeastAccessed, groups.EvenSpread} {
		stats := groups.NewAccessStats()
		for _, q := range workload {
			stats.RecordQuery(q)
		}
		store := groups.NewStore(w.Catalog, policy, stats)
		store.Rebuild() // pick up the warmed statistics
		for _, q := range workload {
			store.Retrieve(q)
		}
		rows = append(rows, GroupingRow{
			Policy:    policy.String(),
			Retrieved: store.Retrieved(),
			Relevant:  store.Relevant(),
			Waste:     store.WasteRatio(),
		})
	}
	return rows, nil
}

// RenderGrouping prints the grouping ablation.
func RenderGrouping(rows []GroupingRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A: constraint grouping policies (per-workload retrieval)\n")
	fmt.Fprintf(&sb, "%-16s%12s%12s%10s\n", "policy", "retrieved", "relevant", "waste")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s%12d%12d%9.1f%%\n", r.Policy, r.Retrieved, r.Relevant, 100*r.Waste)
	}
	return sb.String()
}

// --- Ablation B: closure materialization ------------------------------------

// ClosureRow compares optimizing with and without materialized closures for
// one chain depth.
type ClosureRow struct {
	Depth            int
	MaterializeMicro float64 // one-time closure cost
	FiresWithClosure int     // transformations fired with the closed catalog
	FiresWithout     int     // transformations fired with the raw catalog
	ReachWithClosure int     // predicates proven derivable from the query
	ReachWithout     int
}

// RunClosure builds constraint chains on a single class where every link
// needs an *implication* step: hⱼ's consequent (aⱼ₊₁ = j+1) only implies
// hⱼ₊₁'s antecedent (aⱼ₊₁ ≥ 1), never matches it verbatim. The table
// algorithm chains verbatim matches on its own (introduced predicates enable
// further constraints), so exact-match chains need no closure; these do.
// Runtime implication matching is disabled to isolate what precompiled
// closure materialization buys — exactly the trade the paper describes.
func RunClosure(depths []int) ([]ClosureRow, error) {
	var rows []ClosureRow
	for _, d := range depths {
		sch := chainSchema(1, d+2)
		var cs []*constraint.Constraint
		cs = append(cs, constraint.New("h0",
			[]predicate.Predicate{predicate.Eq("t1", "a0", value.Int(0))},
			nil,
			predicate.Eq("t1", "a1", value.Int(1))))
		for j := 1; j < d; j++ {
			cs = append(cs, constraint.New(
				fmt.Sprintf("h%d", j),
				[]predicate.Predicate{predicate.Sel("t1", fmt.Sprintf("a%d", j), predicate.GE, value.Int(1))},
				nil,
				predicate.Eq("t1", fmt.Sprintf("a%d", j+1), value.Int(int64(j+1))),
			))
		}
		raw := constraint.MustCatalog(cs...)

		start := time.Now()
		closed, _, _, err := closure.Materialize(raw, closure.Options{})
		if err != nil {
			return nil, err
		}
		matMicros := float64(time.Since(start).Microseconds())

		q := query.New("t1").
			AddProject("t1", fmt.Sprintf("a%d", d+1)).
			AddSelect(predicate.Eq("t1", "a0", value.Int(0)))

		// Verbatim antecedent matching isolates what the closure buys.
		opts := core.Options{Cost: keepAllCost{}, DisableImpliedAntecedents: true}
		run := func(cat *constraint.Catalog) (int, int, error) {
			opt := core.NewOptimizer(sch, core.CatalogSource{Catalog: cat}, opts)
			res, err := opt.Optimize(q)
			if err != nil {
				return 0, 0, err
			}
			return res.Stats.Fires, len(res.FinalTags()), nil
		}
		fw, cw, err := run(closed)
		if err != nil {
			return nil, err
		}
		fo, co, err := run(raw)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClosureRow{
			Depth:            d,
			MaterializeMicro: matMicros,
			FiresWithClosure: fw,
			FiresWithout:     fo,
			ReachWithClosure: cw,
			ReachWithout:     co,
		})
	}
	return rows, nil
}

// RenderClosure prints the closure ablation.
func RenderClosure(rows []ClosureRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation B: transitive closure materialization (chain head only in query)\n")
	fmt.Fprintf(&sb, "%-7s%14s%16s%14s%16s%14s\n",
		"depth", "closure (µs)", "fires (closed)", "fires (raw)", "reach (closed)", "reach (raw)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-7d%14.1f%16d%14d%16d%14d\n",
			r.Depth, r.MaterializeMicro, r.FiresWithClosure, r.FiresWithout,
			r.ReachWithClosure, r.ReachWithout)
	}
	return sb.String()
}

// keepAllCost retains all optionals; the closure ablation only counts fires.
type keepAllCost struct{}

func (keepAllCost) Profitable(*query.Query, predicate.Predicate) bool    { return true }
func (keepAllCost) ClassEliminationBeneficial(*query.Query, string) bool { return true }

// --- Ablation C: priority queue + budget -------------------------------------

// BudgetRow reports outcome quality under a transformation budget.
type BudgetRow struct {
	Budget       int // 0 = unlimited
	Priorities   bool
	MeanRatioPct float64 // mean optimized/original measured cost ratio
	MeanFires    float64
}

// RunBudget sweeps transformation budgets on the DB4 workload, with and
// without the Section 4 priority queue, measuring how much of the full
// optimization quality a small budget retains.
func RunBudget(budgets []int, queries int, seed int64) ([]BudgetRow, error) {
	w, err := NewWorld(datagen.DB4())
	if err != nil {
		return nil, err
	}
	workload, err := w.Workload(queries, seed)
	if err != nil {
		return nil, err
	}
	var rows []BudgetRow
	for _, prio := range []bool{false, true} {
		for _, b := range budgets {
			opt := core.NewOptimizer(w.DB.Schema(), core.CatalogSource{Catalog: w.Catalog},
				core.Options{Cost: w.Model, Budget: b, UsePriorities: prio})
			var ratioSum, fireSum float64
			n := 0
			for _, q := range workload {
				res, err := opt.Optimize(q)
				if err != nil {
					return nil, err
				}
				orig, err := w.Exec.Execute(q)
				if err != nil {
					return nil, err
				}
				optimized, err := w.Exec.Execute(res.Optimized)
				if err != nil {
					return nil, err
				}
				oc := orig.Cost(engine.DefaultWeights)
				if oc <= 0 {
					continue
				}
				ratioSum += 100 * optimized.Cost(engine.DefaultWeights) / oc
				fireSum += float64(res.Stats.Fires)
				n++
			}
			rows = append(rows, BudgetRow{
				Budget:       b,
				Priorities:   prio,
				MeanRatioPct: ratioSum / float64(n),
				MeanFires:    fireSum / float64(n),
			})
		}
	}
	return rows, nil
}

// RenderBudget prints the budget ablation.
func RenderBudget(rows []BudgetRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation C: transformation budget x priority queue (DB4 workload)\n")
	fmt.Fprintf(&sb, "%-8s%12s%16s%12s\n", "budget", "priorities", "mean ratio", "mean fires")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Budget)
		if r.Budget == 0 {
			label = "inf"
		}
		fmt.Fprintf(&sb, "%-8s%12v%15.1f%%%12.2f\n", label, r.Priorities, r.MeanRatioPct, r.MeanFires)
	}
	return sb.String()
}

// --- Ablation D: core vs straightforward vs exhaustive -----------------------

// OptimizerRow compares optimizer implementations on the same workload.
type OptimizerRow struct {
	Name          string
	MeanMicros    float64 // optimization time per query
	MeanCostCalls float64 // cost model invocations per query
	MeanRatioPct  float64 // measured optimized/original execution cost
}

// RunOptimizerComparison pits the core algorithm against the immediate-apply
// baseline and the exhaustive searcher on the DB4 workload.
func RunOptimizerComparison(queries int, seed int64) ([]OptimizerRow, error) {
	w, err := NewWorld(datagen.DB4())
	if err != nil {
		return nil, err
	}
	workload, err := w.Workload(queries, seed)
	if err != nil {
		return nil, err
	}
	source := core.CatalogSource{Catalog: w.Catalog}

	type runner func(q *query.Query) (*query.Query, float64, time.Duration, error)
	coreOpt := core.NewOptimizer(w.DB.Schema(), source, core.Options{Cost: w.Model})
	sf := baseline.NewStraightforward(w.DB.Schema(), source, w.Model)
	bf := baseline.NewBestFirst(w.DB.Schema(), source, w.Model)
	ex := baseline.NewExhaustive(w.DB.Schema(), source, w.Model)

	runners := []struct {
		name string
		run  runner
	}{
		{"core (tentative)", func(q *query.Query) (*query.Query, float64, time.Duration, error) {
			res, err := coreOpt.Optimize(q)
			if err != nil {
				return nil, 0, 0, err
			}
			// The core algorithm needs no per-candidate cost calls; its
			// only cost-model use is the formulation-time subset pass.
			return res.Optimized, -1, res.Stats.Duration, nil
		}},
		{"straightforward", func(q *query.Query) (*query.Query, float64, time.Duration, error) {
			res, err := sf.Optimize(q)
			if err != nil {
				return nil, 0, 0, err
			}
			return res.Optimized, float64(res.CostCalls), res.Duration, nil
		}},
		{"best-first [SSD88]", func(q *query.Query) (*query.Query, float64, time.Duration, error) {
			res, err := bf.Optimize(q)
			if err != nil {
				return nil, 0, 0, err
			}
			return res.Optimized, float64(res.CostCalls), res.Duration, nil
		}},
		{"exhaustive", func(q *query.Query) (*query.Query, float64, time.Duration, error) {
			res, err := ex.Optimize(q)
			if err != nil {
				return nil, 0, 0, err
			}
			return res.Optimized, float64(res.CostCalls), res.Duration, nil
		}},
	}

	var rows []OptimizerRow
	for _, r := range runners {
		var micros, calls, ratios float64
		n := 0
		for _, q := range workload {
			out, cc, dur, err := r.run(q)
			if err != nil {
				return nil, err
			}
			orig, err := w.Exec.Execute(q)
			if err != nil {
				return nil, err
			}
			optimized, err := w.Exec.Execute(out)
			if err != nil {
				return nil, err
			}
			oc := orig.Cost(engine.DefaultWeights)
			if oc <= 0 {
				continue
			}
			micros += float64(dur.Microseconds())
			calls += cc
			ratios += 100 * optimized.Cost(engine.DefaultWeights) / oc
			n++
		}
		rows = append(rows, OptimizerRow{
			Name:          r.name,
			MeanMicros:    micros / float64(n),
			MeanCostCalls: calls / float64(n),
			MeanRatioPct:  ratios / float64(n),
		})
	}
	return rows, nil
}

// RenderOptimizerComparison prints the optimizer comparison.
func RenderOptimizerComparison(rows []OptimizerRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation D: optimizer comparison (DB4 workload, measured execution cost)\n")
	fmt.Fprintf(&sb, "%-20s%14s%14s%14s\n", "optimizer", "time (µs)", "cost calls", "mean ratio")
	for _, r := range rows {
		calls := fmt.Sprintf("%.1f", r.MeanCostCalls)
		if r.MeanCostCalls < 0 {
			calls = "n/a"
		}
		fmt.Fprintf(&sb, "%-20s%14.1f%14s%13.1f%%\n", r.Name, r.MeanMicros, calls, r.MeanRatioPct)
	}
	return sb.String()
}

// --- O(mn) complexity check ---------------------------------------------------

// ComplexityRow records the primitive-operation count for one (m, n) cell.
type ComplexityRow struct {
	Predicates  int // m
	Constraints int // n
	Ops         int64
}

// RunComplexity sweeps the transformation table dimensions and reports the
// optimizer's primitive operation counts, which should grow as O(m·n)
// (Section 4's bound).
func RunComplexity(constraintCounts []int) ([]ComplexityRow, error) {
	var rows []ComplexityRow
	for _, n := range constraintCounts {
		sch := chainSchema(1, n+2)
		cat := chainConstraints(1, n)
		// Verbatim matching: the implication precompute is O(m²) and
		// would mask the O(mn) core loop.
		opt := core.NewOptimizer(sch, core.CatalogSource{Catalog: cat}, core.Options{
			Cost:                      core.HeuristicCost{Schema: sch},
			DisableImpliedAntecedents: true,
		})
		res, err := opt.Optimize(chainQuery(1))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ComplexityRow{
			Predicates:  res.Stats.Predicates,
			Constraints: res.Stats.RelevantConstraints,
			Ops:         res.Stats.Ops,
		})
	}
	return rows, nil
}

// RenderComplexity prints the sweep with the ops/(m·n) ratio, which should
// stay near-constant.
func RenderComplexity(rows []ComplexityRow) string {
	var sb strings.Builder
	sb.WriteString("Complexity: transformation ops vs m.n (should stay near-constant)\n")
	fmt.Fprintf(&sb, "%-6s%6s%12s%14s\n", "m", "n", "ops", "ops/(m*n)")
	for _, r := range rows {
		mn := float64(r.Predicates * r.Constraints)
		fmt.Fprintf(&sb, "%-6d%6d%12d%14.2f\n", r.Predicates, r.Constraints, r.Ops, float64(r.Ops)/mn)
	}
	return sb.String()
}
