package bench

// The index-scaling experiment: how applicable-constraint retrieval and full
// optimization behave as the catalog grows past the paper's 17 rules, with
// and without the inverted constraint index. This is the ablation behind the
// index layer (DESIGN.md deviation #7).

import (
	"fmt"
	"strings"
	"time"

	"sqo/internal/core"
	"sqo/internal/datagen"
	"sqo/internal/index"
	"sqo/internal/query"
)

// IndexScalingRow is one catalog size of the index experiment.
type IndexScalingRow struct {
	Constraints int
	Classes     int
	BuildMicros float64 // one-off index construction
	// Per-query retrieval, µs.
	ScanLookupUS  float64
	IndexLookupUS float64
	// Per-query full optimization, µs.
	ScanOptimizeUS  float64
	IndexOptimizeUS float64
	// AvgRelevant is the mean relevant-set size — what both strategies
	// hand to the transformation loop.
	AvgRelevant float64
}

// LookupSpeedup is the retrieval-only ratio.
func (r IndexScalingRow) LookupSpeedup() float64 {
	if r.IndexLookupUS == 0 {
		return 0
	}
	return r.ScanLookupUS / r.IndexLookupUS
}

// OptimizeSpeedup is the end-to-end ratio.
func (r IndexScalingRow) OptimizeSpeedup() float64 {
	if r.IndexOptimizeUS == 0 {
		return 0
	}
	return r.ScanOptimizeUS / r.IndexOptimizeUS
}

// RunIndexScaling measures the experiment at the given catalog sizes with a
// fixed per-size workload.
func RunIndexScaling(sizes []int, queries int, seed int64) ([]IndexScalingRow, error) {
	var rows []IndexScalingRow
	for _, n := range sizes {
		sch, cat, err := datagen.GenerateScaled(datagen.ScaledConfig{Constraints: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		qs, err := datagen.ScaledWorkload(sch, cat, queries, seed+1)
		if err != nil {
			return nil, err
		}

		buildStart := time.Now()
		ix := index.New(cat)
		build := time.Since(buildStart)
		scan := index.Scan{Catalog: cat}

		row := IndexScalingRow{
			Constraints: n,
			Classes:     len(sch.Classes()),
			BuildMicros: float64(build.Nanoseconds()) / 1e3,
		}

		var relevant int
		for _, q := range qs {
			relevant += len(ix.Relevant(q))
		}
		row.AvgRelevant = float64(relevant) / float64(len(qs))

		row.IndexLookupUS = perQueryMicros(qs, func(q *query.Query) { ix.Relevant(q) })
		row.ScanLookupUS = perQueryMicros(qs, func(q *query.Query) { scan.Relevant(q) })

		optIx := core.NewOptimizer(sch, ix, core.Options{Cost: core.HeuristicCost{Schema: sch}})
		optScan := core.NewOptimizer(sch, core.CatalogSource{Catalog: cat}, core.Options{Cost: core.HeuristicCost{Schema: sch}})
		var optErr error
		optimize := func(o *core.Optimizer) func(*query.Query) {
			return func(q *query.Query) {
				if _, err := o.Optimize(q); err != nil && optErr == nil {
					optErr = err
				}
			}
		}
		row.IndexOptimizeUS = perQueryMicros(qs, optimize(optIx))
		row.ScanOptimizeUS = perQueryMicros(qs, optimize(optScan))
		if optErr != nil {
			return nil, optErr
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// perQueryMicros times fn over the workload (one untimed warmup pass to
// settle the heap, then best of three timed passes) and returns µs per query.
func perQueryMicros(qs []*query.Query, fn func(*query.Query)) float64 {
	for _, q := range qs {
		fn(q)
	}
	const passes = 3
	best := time.Duration(-1)
	for p := 0; p < passes; p++ {
		start := time.Now()
		for _, q := range qs {
			fn(q)
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e3 / float64(len(qs))
}

// RenderIndexScaling prints the experiment as a paper-style table.
func RenderIndexScaling(rows []IndexScalingRow) string {
	var sb strings.Builder
	sb.WriteString("Index: constraint retrieval scaling (inverted index vs catalog scan)\n")
	fmt.Fprintf(&sb, "%10s%9s%10s%11s%12s%10s%12s%12s%9s\n",
		"catalog", "classes", "relevant", "build µs",
		"scan µs/q", "idx µs/q", "scan opt/q", "idx opt/q", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d%9d%10.1f%11.0f%12.2f%10.2f%12.1f%12.1f%8.1fx\n",
			r.Constraints, r.Classes, r.AvgRelevant, r.BuildMicros,
			r.ScanLookupUS, r.IndexLookupUS,
			r.ScanOptimizeUS, r.IndexOptimizeUS, r.OptimizeSpeedup())
	}
	sb.WriteString("\nLookup touches only the query's class posting lists, so its cost tracks\n")
	sb.WriteString("the relevant set, not the catalog; the scan pays O(|catalog|) per query.\n")
	return sb.String()
}
