package bench

import (
	"strings"
	"testing"

	"sqo/internal/datagen"
)

func TestFig41Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res := RunFig41()
	if len(res.Micros) != len(res.ClassCounts) {
		t.Fatalf("rows = %d", len(res.Micros))
	}
	// Transformation time must grow with the constraint count at the
	// largest query, and with the class count at the largest constraint
	// set (the paper's proportionality claims). Timing noise makes strict
	// per-cell monotonicity unreasonable; compare the endpoints with
	// headroom.
	last := len(res.ClassCounts) - 1
	if res.Micros[last][2] < res.Micros[last][0]*1.2 {
		t.Errorf("time should grow with constraints: %v", res.Micros[last])
	}
	// The class direction is much flatter than the paper's figure since
	// the sparse transformation table: initialization is O(Σ|cᵢ|), not
	// O(m·n), so adding classes (columns) no longer multiplies the table
	// fill. Time must still not *shrink* as queries widen.
	firstCol := res.Micros[0][2]
	lastCol := res.Micros[last][2]
	if lastCol < firstCol {
		t.Errorf("time should not shrink with classes: %v -> %v", firstCol, lastCol)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 4.1") {
		t.Error("render missing title")
	}
}

func TestTable41MatchesPaper(t *testing.T) {
	rows, err := RunTable41()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	wantCard := []int{52, 104, 208, 208}
	wantRel := []int{77, 154, 308, 616}
	for i, r := range rows {
		if r.ObjectClasses != 5 {
			t.Errorf("%s: classes = %d, want 5", r.Name, r.ObjectClasses)
		}
		if r.Relationships != 6 {
			t.Errorf("%s: relationships = %d, want 6", r.Name, r.Relationships)
		}
		if r.AvgClassCard != wantCard[i] {
			t.Errorf("%s: avg class card = %d, want %d", r.Name, r.AvgClassCard, wantCard[i])
		}
		if r.AvgRelCard < wantRel[i]*80/100 || r.AvgRelCard > wantRel[i]*120/100 {
			t.Errorf("%s: avg rel card = %d, want ≈%d", r.Name, r.AvgRelCard, wantRel[i])
		}
	}
	out := RenderTable41(rows)
	for _, want := range []string{"DB1", "DB4", "avg. class cardinality"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable42Shape(t *testing.T) {
	res, err := RunTable42(40, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DBOrder) != 4 {
		t.Fatalf("databases = %v", res.DBOrder)
	}
	// Semantics preserved everywhere.
	for db, outcomes := range res.Outcomes {
		if len(outcomes) != 40 {
			t.Errorf("%s: %d outcomes, want 40", db, len(outcomes))
		}
		for _, o := range outcomes {
			if !o.RowsPreserved {
				t.Errorf("%s: optimization changed semantics of %s", db, o.Query)
			}
		}
	}
	// The paper's headline shape (see EXPERIMENTS.md for the full
	// paper-vs-measured discussion): optimization helps the large
	// database more than the small one, a meaningful fraction of queries
	// improves, deep improvements exist, and overhead-driven losses stay
	// bounded.
	f1, f4 := res.FasterPercent("DB1"), res.FasterPercent("DB4")
	if f4 < f1 {
		t.Errorf("faster%%: DB1=%.0f DB4=%.0f; DB4 should benefit at least as much", f1, f4)
	}
	if f1 < 20 || f1 > 55 {
		t.Errorf("DB1 faster%% = %.0f, paper reports 34%%; expected the same ballpark", f1)
	}
	if f4 < 35 {
		t.Errorf("DB4 faster%% = %.0f, expected a substantial winning class", f4)
	}
	// Losses on the small database are dominated by bounded overhead.
	over := res.Percent["DB1"][len(res.BucketLabels)-1]
	if over > 30 {
		t.Errorf("DB1 >110%% share = %.0f%%, losses should be mostly mild", over)
	}
	out := res.Render()
	for _, want := range []string{"Table 4.2", "DB1", "DB4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	t.Logf("\n%s", out)
}

func TestGroupingAblation(t *testing.T) {
	rows, err := RunGrouping(40, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Relevant > r.Retrieved {
			t.Errorf("%s: relevant %d > retrieved %d", r.Policy, r.Relevant, r.Retrieved)
		}
		if r.Retrieved == 0 {
			t.Errorf("%s: nothing retrieved", r.Policy)
		}
	}
	// All policies must find the same relevant constraints.
	if rows[0].Relevant != rows[1].Relevant || rows[1].Relevant != rows[2].Relevant {
		t.Errorf("policies disagree on relevance: %+v", rows)
	}
	if out := RenderGrouping(rows); !strings.Contains(out, "arbitrary") {
		t.Error("render missing policy name")
	}
}

func TestClosureAblation(t *testing.T) {
	rows, err := RunClosure([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// With the closure the whole chain fires off the head; without it
		// nothing beyond direct consequents is reachable.
		if r.FiresWithClosure <= r.FiresWithout {
			t.Errorf("depth %d: closure should enable more transformations (%d vs %d)",
				r.Depth, r.FiresWithClosure, r.FiresWithout)
		}
		if r.ReachWithClosure <= r.ReachWithout {
			t.Errorf("depth %d: closed catalog should prove more predicates derivable (%d vs %d)",
				r.Depth, r.ReachWithClosure, r.ReachWithout)
		}
	}
	if out := RenderClosure(rows); !strings.Contains(out, "Ablation B") {
		t.Error("render broken")
	}
}

func TestBudgetAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rows, err := RunBudget([]int{1, 2, 0}, 12, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Unlimited budget fires at least as much as budget 1.
	var b1, binf float64
	for _, r := range rows {
		if !r.Priorities {
			switch r.Budget {
			case 1:
				b1 = r.MeanFires
			case 0:
				binf = r.MeanFires
			}
		}
	}
	if binf < b1 {
		t.Errorf("unlimited budget fired less than budget 1: %v vs %v", binf, b1)
	}
	if out := RenderBudget(rows); !strings.Contains(out, "inf") {
		t.Error("render broken")
	}
}

func TestComplexitySweep(t *testing.T) {
	rows, err := RunComplexity([]int{4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// ops/(m*n) should stay bounded: the last ratio must not exceed the
	// first by more than 2x (constants, not growth).
	first := float64(rows[0].Ops) / float64(rows[0].Predicates*rows[0].Constraints)
	last := float64(rows[len(rows)-1].Ops) / float64(rows[len(rows)-1].Predicates*rows[len(rows)-1].Constraints)
	if last > first*2 {
		t.Errorf("ops/(m*n) grew from %.2f to %.2f; transformation is not O(mn)", first, last)
	}
	if out := RenderComplexity(rows); !strings.Contains(out, "ops/(m*n)") {
		t.Error("render broken")
	}
}

func TestIndexScalingSmoke(t *testing.T) {
	rows, err := RunIndexScaling([]int{60}, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Constraints != 60 || r.Classes == 0 || r.AvgRelevant <= 0 {
		t.Errorf("row shape wrong: %+v", r)
	}
	if r.IndexLookupUS < 0 || r.ScanLookupUS < 0 || r.IndexOptimizeUS <= 0 || r.ScanOptimizeUS <= 0 {
		t.Errorf("timings wrong: %+v", r)
	}
	if out := RenderIndexScaling(rows); !strings.Contains(out, "speedup") {
		t.Error("render broken")
	}
}

func TestWorldHelpers(t *testing.T) {
	w, err := NewWorld(datagen.DB1())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := w.Workload(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 {
		t.Errorf("workload = %d", len(qs))
	}
	if _, err := NewWorld(datagen.Config{Name: "bad"}); err == nil {
		t.Error("bad config should fail")
	}
}
