package bench

import (
	"sqo/internal/baseline"
	"sqo/internal/core"
	"sqo/internal/datagen"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

// Fig41Cell builds the optimizer and query for one Figure 4.1 measurement
// point, for use by testing.B benchmarks (RunFig41 does its own timing).
func Fig41Cell(classes, constraints int) (*core.Optimizer, *query.Query) {
	sch := chainSchema(classes, constraints+2)
	cat := chainConstraints(classes, constraints)
	opt := core.NewOptimizer(sch, core.CatalogSource{Catalog: cat}, core.Options{
		Cost: core.HeuristicCost{Schema: sch},
	})
	return opt, chainQuery(classes)
}

// ComplexityCell builds the single-class n-constraint cell used by the
// O(m·n) benchmark.
func ComplexityCell(n int) (*core.Optimizer, *query.Query) {
	sch := chainSchema(1, n+2)
	cat := chainConstraints(1, n)
	opt := core.NewOptimizer(sch, core.CatalogSource{Catalog: cat}, core.Options{
		Cost:                      core.HeuristicCost{Schema: sch},
		DisableImpliedAntecedents: true,
	})
	return opt, chainQuery(1)
}

// ComparisonRunner is one optimizer participating in the baseline benchmark.
type ComparisonRunner struct {
	Name string
	Run  func() error
}

// OptimizerComparisonCell wires the three optimizers over the same world and
// query, returning one runnable per optimizer.
func OptimizerComparisonCell() ([]ComparisonRunner, error) {
	w, err := NewWorld(datagen.DB1())
	if err != nil {
		return nil, err
	}
	source := core.CatalogSource{Catalog: w.Catalog}
	q := query.New("supplier", "cargo", "vehicle").
		AddProject("vehicle", "vehicle#").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("vehicle", "desc", value.String("refrigerated truck"))).
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI"))).
		AddRelationship("collects").
		AddRelationship("supplies")

	coreOpt := core.NewOptimizer(w.DB.Schema(), source, core.Options{Cost: w.Model})
	sf := baseline.NewStraightforward(w.DB.Schema(), source, w.Model)
	bf := baseline.NewBestFirst(w.DB.Schema(), source, w.Model)
	ex := baseline.NewExhaustive(w.DB.Schema(), source, w.Model)
	return []ComparisonRunner{
		{"core", func() error { _, err := coreOpt.Optimize(q); return err }},
		{"straightforward", func() error { _, err := sf.Optimize(q); return err }},
		{"best-first", func() error { _, err := bf.Optimize(q); return err }},
		{"exhaustive", func() error { _, err := ex.Optimize(q); return err }},
	}, nil
}
