package bench

// The end-to-end experiment: the paper's payoff measured physically. Each
// workload query is executed twice against the same metered database — once
// as written (the opt-off baseline) and once through optimize-then-execute —
// and the two runs' meters are compared. Tuples scanned is the headline
// number: every instance an execution examined before filtering, the quantity
// the semantic transformations exist to shrink. The cell also cross-checks
// that both runs return the identical row multiset, so the savings are never
// bought with a wrong answer.

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/costmodel"
	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/exec"
	"sqo/internal/index"
	"sqo/internal/pathgen"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/storage"
)

// EndToEndRow compares optimized and raw end-to-end execution on one world.
type EndToEndRow struct {
	World       string
	Constraints int
	Queries     int
	// EmptyProven counts queries the optimizer proved empty — executions
	// that did zero physical work.
	EmptyProven int
	// Aggregate physical work over the whole workload.
	OptTuples, RawTuples   int64
	OptPages, RawPages     int64
	OptProbes, RawProbes   int64
	OptFetches, RawFetches int64
	// Mean per-query wall-clock, µs. OptUS includes the optimization itself
	// — the payoff claim is end to end, not execution-only.
	OptUS, RawUS float64
}

// TupleReduction is how many times fewer tuples the optimized executions
// scanned.
func (r EndToEndRow) TupleReduction() float64 {
	if r.OptTuples == 0 {
		return 0
	}
	return float64(r.RawTuples) / float64(r.OptTuples)
}

// RunEndToEnd measures the experiment on the paper's logistics world (DB1)
// and scaled worlds of the given catalog sizes.
func RunEndToEnd(sizes []int, queries int, seed int64) ([]EndToEndRow, error) {
	var rows []EndToEndRow

	w, err := NewWorld(datagen.DB1())
	if err != nil {
		return nil, err
	}
	logistics, err := w.Workload(queries, seed)
	if err != nil {
		return nil, err
	}
	row, err := endToEndCell("logistics", w.DB, w.Catalog, w.Optimize, logistics)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// The targeted row replays the paper's Section 4 scenarios: one query per
	// constraint shaped to exercise that constraint's transformation (index
	// introduction, class elimination) plus one provably-empty variant per
	// eligible constraint (the unsatisfiable-query case, detected with zero
	// I/O). This is the row the gated speedup test pins at >= 2x.
	gen := pathgen.NewGenerator(w.DB, w.Catalog, pathgen.Options{Seed: seed})
	targeted, err := gen.ConstraintWorkload()
	if err != nil {
		return nil, err
	}
	contra, err := gen.ContradictionWorkload()
	if err != nil {
		return nil, err
	}
	targeted = append(targeted, contra...)
	sqoOpt := core.NewOptimizer(w.DB.Schema(), core.CatalogSource{Catalog: w.Catalog},
		core.Options{Cost: w.Model, DetectContradictions: true})
	row, err = endToEndCell("logistics-sqo", w.DB, w.Catalog, sqoOpt, targeted)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	for _, n := range sizes {
		sch, cat, err := datagen.GenerateScaled(datagen.ScaledConfig{Constraints: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		db, err := datagen.GenerateScaledDatabase(sch, cat, datagen.ScaledDBConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		qs, err := datagen.ScaledWorkload(sch, cat, queries, seed+1)
		if err != nil {
			return nil, err
		}
		opt := scaledOptimizer(sch, cat, db)
		row, err := endToEndCell(fmt.Sprintf("scaled-%d", n), db, cat, opt, qs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scaledOptimizer wires the optimizer for a scaled world: index retrieval and
// a cost model calibrated on the actual instance, so query formulation prices
// plans against the database the execution will hit.
func scaledOptimizer(sch *schema.Schema, cat *constraint.Catalog, db *storage.Database) *core.Optimizer {
	model := costmodel.New(sch, db.Analyze(), engine.DefaultWeights)
	return core.NewOptimizer(sch, index.New(cat), core.Options{Cost: model})
}

// endToEndCell runs one world's workload both ways and aggregates the meters.
func endToEndCell(label string, db *storage.Database, cat *constraint.Catalog, opt *core.Optimizer, qs []*query.Query) (EndToEndRow, error) {
	x := exec.New(db)
	ctx := context.Background()
	row := EndToEndRow{World: label, Constraints: cat.Len(), Queries: len(qs)}

	var optTotal, rawTotal time.Duration
	for _, q := range qs {
		start := time.Now()
		res, err := opt.Optimize(q)
		if err != nil {
			return row, fmt.Errorf("%s: optimize %s: %w", label, q, err)
		}
		or, err := x.ExecuteOptimized(ctx, res)
		if err != nil {
			return row, fmt.Errorf("%s: execute optimized %s: %w", label, q, err)
		}
		optTotal += time.Since(start)

		start = time.Now()
		rr, err := x.Execute(ctx, q)
		if err != nil {
			return row, fmt.Errorf("%s: execute raw %s: %w", label, q, err)
		}
		rawTotal += time.Since(start)

		if !slices.Equal(or.Canonical(), rr.Canonical()) {
			return row, fmt.Errorf("%s: optimized execution of %s changed the answer", label, q)
		}
		if or.EmptyProven {
			row.EmptyProven++
		}
		row.OptTuples += or.TuplesScanned
		row.RawTuples += rr.TuplesScanned
		row.OptPages += or.Meter.PagesScanned
		row.RawPages += rr.Meter.PagesScanned
		row.OptProbes += or.Meter.IndexProbes
		row.RawProbes += rr.Meter.IndexProbes
		row.OptFetches += or.Meter.ObjectFetches
		row.RawFetches += rr.Meter.ObjectFetches
	}
	nq := float64(len(qs))
	row.OptUS = float64(optTotal.Microseconds()) / nq
	row.RawUS = float64(rawTotal.Microseconds()) / nq
	return row, nil
}

// RenderEndToEnd prints the experiment as a paper-style table.
func RenderEndToEnd(rows []EndToEndRow) string {
	var sb strings.Builder
	sb.WriteString("End-to-end: optimized vs raw execution (row sets verified identical)\n")
	fmt.Fprintf(&sb, "%-14s%7s%6s%7s%12s%12s%8s%10s%10s%10s%10s\n",
		"world", "rules", "qs", "empty",
		"opt tuples", "raw tuples", "reduce",
		"opt pages", "raw pages", "opt µs", "raw µs")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s%7d%6d%7d%12d%12d%7.1fx%10d%10d%10.1f%10.1f\n",
			r.World, r.Constraints, r.Queries, r.EmptyProven,
			r.OptTuples, r.RawTuples, r.TupleReduction(),
			r.OptPages, r.RawPages, r.OptUS, r.RawUS)
	}
	sb.WriteString("\nTuples = instances examined before filtering; opt µs includes the\n")
	sb.WriteString("optimization itself, so the last two columns are the end-to-end claim.\n")
	return sb.String()
}
