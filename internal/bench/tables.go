package bench

import (
	"fmt"
	"strings"

	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/query"
)

// --- Table 4.1 --------------------------------------------------------------

// Table41Row is one database instance's statistics line.
type Table41Row struct {
	Name           string
	ObjectClasses  int
	AvgClassCard   int
	Relationships  int
	AvgRelCard     int
	TotalInstances int
	TotalLinks     int
}

// RunTable41 generates the four database instances and reports their sizes,
// the reproduction of Table 4.1.
func RunTable41() ([]Table41Row, error) {
	var rows []Table41Row
	for _, cfg := range datagen.DBConfigs() {
		db, err := datagen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		classes := db.Schema().Classes()
		rels := db.Schema().Relationships()
		instances := 0
		for _, cl := range classes {
			instances += db.Count(cl)
		}
		links := 0
		for _, rn := range rels {
			links += db.LinkCount(rn)
		}
		rows = append(rows, Table41Row{
			Name:           cfg.Name,
			ObjectClasses:  len(classes),
			AvgClassCard:   instances / len(classes),
			Relationships:  len(rels),
			AvgRelCard:     links / len(rels),
			TotalInstances: instances,
			TotalLinks:     links,
		})
	}
	return rows, nil
}

// RenderTable41 prints the rows in the paper's layout: metrics down,
// databases across.
func RenderTable41(rows []Table41Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4.1: database sizes\n")
	fmt.Fprintf(&sb, "%-26s", "")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8s", r.Name)
	}
	sb.WriteByte('\n')
	lines := []struct {
		label string
		get   func(Table41Row) int
	}{
		{"# object class", func(r Table41Row) int { return r.ObjectClasses }},
		{"avg. class cardinality", func(r Table41Row) int { return r.AvgClassCard }},
		{"# relationships", func(r Table41Row) int { return r.Relationships }},
		{"avg. relationship card.", func(r Table41Row) int { return r.AvgRelCard }},
	}
	for _, line := range lines {
		fmt.Fprintf(&sb, "%-26s", line.label)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%8d", line.get(r))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- Table 4.2 --------------------------------------------------------------

// QueryOutcome records one original/optimized query pair on one database.
type QueryOutcome struct {
	Query         string
	OriginalCost  float64 // measured execution cost of the original
	OptimizedCost float64 // measured execution cost of the optimized query
	TransformCost float64 // deterministic optimization overhead in cost units
	RatioPercent  float64 // 100 * (TransformCost + OptimizedCost) / OriginalCost
	RowsPreserved bool    // optimized query returned the same multiset
}

// Table42Result is the ratio histogram per database.
type Table42Result struct {
	// BucketLabels are the upper bounds, "0%" .. "110%" then ">110%".
	BucketLabels []string
	// Percent[db][bucket] is the percentage of workload queries whose
	// ratio falls in the bucket.
	Percent map[string][]float64
	// Outcomes holds the raw per-query data, keyed by database name.
	Outcomes map[string][]QueryOutcome
	// DBOrder preserves DB1..DB4 ordering for rendering.
	DBOrder []string
}

// TransformOpCost converts the optimizer's primitive-operation count into
// execution cost units. A table operation is a few machine instructions —
// far below a predicate evaluation against a stored instance — and the
// calibration keeps the optimization overhead of a typical query around a
// few percent of a small query's execution cost, matching the paper's
// DB1 observation that "the extra overheads were limited to about 10%".
const TransformOpCost = 0.004

// RunTable42 reproduces Table 4.2: the same workload of path queries is
// optimized and executed — original versus optimized, the latter charged the
// transformation overhead — on each database instance.
func RunTable42(queries int, seed int64) (*Table42Result, error) {
	res := &Table42Result{
		Percent:  map[string][]float64{},
		Outcomes: map[string][]QueryOutcome{},
	}
	for b := 10; b <= 110; b += 10 {
		res.BucketLabels = append(res.BucketLabels, fmt.Sprintf("%d%%", b))
	}
	res.BucketLabels = append(res.BucketLabels, ">110%")

	// The workload is generated once, against DB1, and reused on every
	// instance — the paper's 40 fixed test queries.
	w1, err := NewWorld(datagen.DB1())
	if err != nil {
		return nil, err
	}
	workload, err := w1.Workload(queries, seed)
	if err != nil {
		return nil, err
	}

	for _, cfg := range datagen.DBConfigs() {
		w, err := NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		outcomes, err := runWorkload(w, workload)
		if err != nil {
			return nil, err
		}
		res.Outcomes[cfg.Name] = outcomes
		res.Percent[cfg.Name] = bucketize(outcomes, len(res.BucketLabels))
		res.DBOrder = append(res.DBOrder, cfg.Name)
	}
	return res, nil
}

func runWorkload(w *World, workload []*query.Query) ([]QueryOutcome, error) {
	var outcomes []QueryOutcome
	for _, q := range workload {
		opt, err := w.Optimize.Optimize(q)
		if err != nil {
			return nil, err
		}
		orig, err := w.Exec.Execute(q)
		if err != nil {
			return nil, err
		}
		optimized, err := w.Exec.Execute(opt.Optimized)
		if err != nil {
			return nil, err
		}
		oc := orig.Cost(engine.DefaultWeights)
		zc := optimized.Cost(engine.DefaultWeights)
		tc := float64(opt.Stats.Ops) * TransformOpCost
		ratio := 100.0
		if oc > 0 {
			ratio = 100 * (tc + zc) / oc
		}
		same := len(orig.Rows) == len(optimized.Rows)
		if same {
			a, b := orig.Canonical(), optimized.Canonical()
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		outcomes = append(outcomes, QueryOutcome{
			Query:         q.String(),
			OriginalCost:  oc,
			OptimizedCost: zc,
			TransformCost: tc,
			RatioPercent:  ratio,
			RowsPreserved: same,
		})
	}
	return outcomes, nil
}

func bucketize(outcomes []QueryOutcome, buckets int) []float64 {
	counts := make([]float64, buckets)
	for _, o := range outcomes {
		idx := int(o.RatioPercent / 10)
		if o.RatioPercent > 0 && o.RatioPercent == float64(idx*10) {
			idx-- // exact boundaries belong to the lower bucket
		}
		if idx >= buckets {
			idx = buckets - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	for i := range counts {
		counts[i] = 100 * counts[i] / float64(len(outcomes))
	}
	return counts
}

// FasterPercent returns the share of queries that ran strictly faster after
// optimization (ratio < 100%).
func (r *Table42Result) FasterPercent(db string) float64 {
	n, faster := 0, 0
	for _, o := range r.Outcomes[db] {
		n++
		if o.RatioPercent < 100 {
			faster++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(faster) / float64(n)
}

// BigWinPercent returns the share of queries whose ratio fell to 30% or
// below — the paper's "improved significantly" class.
func (r *Table42Result) BigWinPercent(db string) float64 {
	n, wins := 0, 0
	for _, o := range r.Outcomes[db] {
		n++
		if o.RatioPercent <= 30 {
			wins++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(wins) / float64(n)
}

// CSV emits the raw per-query data (one row per query per database) for
// external plotting: db, ratio, original, optimized, transform, preserved,
// query.
func (r *Table42Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("db,ratio_percent,original_cost,optimized_cost,transform_cost,rows_preserved,query\n")
	for _, db := range r.DBOrder {
		for _, o := range r.Outcomes[db] {
			fmt.Fprintf(&sb, "%s,%.2f,%.2f,%.2f,%.2f,%v,%q\n",
				db, o.RatioPercent, o.OriginalCost, o.OptimizedCost, o.TransformCost,
				o.RowsPreserved, o.Query)
		}
	}
	return sb.String()
}

// Render prints the histogram in the paper's layout: one row per database,
// one column per ratio bucket.
func (r *Table42Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4.2: ratio of optimized cost (incl. transformation) to original cost\n")
	fmt.Fprintf(&sb, "%-5s", "")
	for _, l := range r.BucketLabels {
		fmt.Fprintf(&sb, "%7s", l)
	}
	fmt.Fprintf(&sb, "%10s%9s\n", "faster", "big-win")
	for _, db := range r.DBOrder {
		fmt.Fprintf(&sb, "%-5s", db)
		for _, p := range r.Percent[db] {
			if p == 0 {
				fmt.Fprintf(&sb, "%7s", "--")
			} else {
				fmt.Fprintf(&sb, "%6.0f%%", p)
			}
		}
		fmt.Fprintf(&sb, "%9.0f%%%8.0f%%\n", r.FasterPercent(db), r.BigWinPercent(db))
	}
	return sb.String()
}
