// Package bench regenerates every table and figure of the paper's evaluation
// (Section 4) plus the ablations called out in DESIGN.md. Each experiment
// returns a structured result with a Render method that prints rows shaped
// like the paper's, so cmd/sqobench output can be read side by side with the
// original.
//
// Absolute numbers differ from the 1991 SUN-3/160 prototype by construction;
// the reproduction target is the shape: transformation time growing with
// query classes and relevant constraints (Figure 4.1), and optimization
// hurting the smallest database while winning big on the largest
// (Table 4.2).
package bench

import (
	"fmt"
	"strings"
	"time"

	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/costmodel"
	"sqo/internal/datagen"
	"sqo/internal/engine"
	"sqo/internal/pathgen"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/storage"
	"sqo/internal/value"
)

// World bundles one database instance with everything the experiments need.
type World struct {
	Config   datagen.Config
	DB       *storage.Database
	Stats    *storage.Stats
	Exec     *engine.Executor
	Model    *costmodel.Model
	Catalog  *constraint.Catalog
	Optimize *core.Optimizer
}

// NewWorld generates the database for cfg and wires the full stack over it.
func NewWorld(cfg datagen.Config) (*World, error) {
	db, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	stats := db.Analyze()
	cat := datagen.Constraints()
	model := costmodel.New(db.Schema(), stats, engine.DefaultWeights)
	opt := core.NewOptimizer(db.Schema(), core.CatalogSource{Catalog: cat}, core.Options{Cost: model})
	return &World{
		Config:   cfg,
		DB:       db,
		Stats:    stats,
		Exec:     engine.New(db),
		Model:    model,
		Catalog:  cat,
		Optimize: opt,
	}, nil
}

// Workload generates the n-query path workload for this world.
func (w *World) Workload(n int, seed int64) ([]*query.Query, error) {
	gen := pathgen.NewGenerator(w.DB, w.Catalog, pathgen.Options{Seed: seed})
	return gen.Workload(n)
}

// --- Figure 4.1 ------------------------------------------------------------

// Fig41Result holds the query-transformation-time surface: one row per
// query-class count, one column per relevant-constraint count.
type Fig41Result struct {
	ClassCounts      []int
	ConstraintCounts []int
	// Micros[i][j] is the mean transformation time in microseconds for
	// queries over ClassCounts[i] classes with ConstraintCounts[j]
	// relevant constraints.
	Micros [][]float64
}

// RunFig41 reproduces Figure 4.1 on a synthetic chain schema where both
// dimensions are controlled exactly: queries span 1..5 chained classes and
// the relevant constraint count is 1, 5 or 9 (the paper's three curves).
func RunFig41() *Fig41Result {
	res := &Fig41Result{
		ClassCounts:      []int{1, 2, 3, 4, 5},
		ConstraintCounts: []int{1, 5, 9},
	}
	for _, k := range res.ClassCounts {
		row := make([]float64, len(res.ConstraintCounts))
		for j, n := range res.ConstraintCounts {
			row[j] = measureTransform(k, n)
		}
		res.Micros = append(res.Micros, row)
	}
	return res
}

// chainSchema builds t1 - t2 - … - tC with `attrs` integer attributes per
// class (a0 is the antecedent hook, a1.. are consequent targets).
func chainSchema(classes, attrs int) *schema.Schema {
	b := schema.NewBuilder()
	for i := 1; i <= classes; i++ {
		var as []schema.Attribute
		for a := 0; a < attrs; a++ {
			as = append(as, schema.Attribute{Name: fmt.Sprintf("a%d", a), Type: value.KindInt})
		}
		b.Class(fmt.Sprintf("t%d", i), as...)
	}
	for i := 1; i < classes; i++ {
		b.Relationship(fmt.Sprintf("r%d", i), fmt.Sprintf("t%d", i), fmt.Sprintf("t%d", i+1), schema.ManyToOne)
	}
	return b.MustBuild()
}

// chainConstraints spreads n fireable intra-class constraints over the k
// query classes: constraint j lives on class t((j mod k)+1) with antecedent
// a0 = 1 (present in the query) and consequent a(j+1) = j.
func chainConstraints(k, n int) *constraint.Catalog {
	var cs []*constraint.Constraint
	for j := 0; j < n; j++ {
		cl := fmt.Sprintf("t%d", j%k+1)
		cs = append(cs, constraint.New(
			fmt.Sprintf("s%d", j),
			[]predicate.Predicate{predicate.Eq(cl, "a0", value.Int(1))},
			nil,
			predicate.Eq(cl, fmt.Sprintf("a%d", j+1), value.Int(int64(j))),
		))
	}
	return constraint.MustCatalog(cs...)
}

// chainQuery selects a0 = 1 on every class so all constraints can fire.
func chainQuery(k int) *query.Query {
	var classes []string
	for i := 1; i <= k; i++ {
		classes = append(classes, fmt.Sprintf("t%d", i))
	}
	q := query.New(classes...).AddProject(classes[len(classes)-1], "a0")
	for _, cl := range classes {
		q.AddSelect(predicate.Eq(cl, "a0", value.Int(1)))
	}
	for i := 1; i < k; i++ {
		q.AddRelationship(fmt.Sprintf("r%d", i))
	}
	return q
}

// measureTransform returns the mean transformation time in microseconds for
// one (classes, constraints) cell, amortized over enough repetitions to be
// stable.
func measureTransform(k, n int) float64 {
	sch := chainSchema(k, n+2)
	cat := chainConstraints(k, n)
	opt := core.NewOptimizer(sch, core.CatalogSource{Catalog: cat}, core.Options{
		Cost: core.HeuristicCost{Schema: sch},
	})
	q := chainQuery(k)

	// Warm up and verify.
	if _, err := opt.Optimize(q); err != nil {
		panic(fmt.Sprintf("bench: fig 4.1 cell (%d,%d): %v", k, n, err))
	}
	const minDuration = 25 * time.Millisecond
	var total time.Duration
	iters := 0
	for total < minDuration {
		res, err := opt.Optimize(q)
		if err != nil {
			panic(err)
		}
		total += res.Stats.TransformDuration
		iters++
	}
	return float64(total.Microseconds()) / float64(iters)
}

// Render prints the surface with classes down and constraint counts across,
// mirroring the figure's axes.
func (r *Fig41Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4.1: query transformation time (microseconds)\n")
	sb.WriteString("classes\\constraints")
	for _, n := range r.ConstraintCounts {
		fmt.Fprintf(&sb, "%10d", n)
	}
	sb.WriteByte('\n')
	for i, k := range r.ClassCounts {
		fmt.Fprintf(&sb, "%19d", k)
		for j := range r.ConstraintCounts {
			fmt.Fprintf(&sb, "%10.2f", r.Micros[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
