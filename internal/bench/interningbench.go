package bench

// The interning experiment: what the compiled symbol space (dense
// class/attribute/predicate IDs + pooled per-query scratch) buys over the
// string-space transformation table, at the paper's catalog size and at
// scaled ones. This is the ablation behind DESIGN.md deviation #8.

import (
	"fmt"
	"runtime"
	"strings"

	"sqo/internal/constraint"
	"sqo/internal/core"
	"sqo/internal/datagen"
	"sqo/internal/index"
	"sqo/internal/query"
	"sqo/internal/schema"
)

// InterningRow compares interned and string-space optimization on one world.
type InterningRow struct {
	World       string
	Constraints int
	// Per-query full optimization, µs.
	InternUS float64
	StringUS float64
	// Per-query heap allocations (count and bytes).
	InternAllocs float64
	StringAllocs float64
	InternBytes  float64
	StringBytes  float64
}

// Speedup is the end-to-end per-query ratio.
func (r InterningRow) Speedup() float64 {
	if r.InternUS == 0 {
		return 0
	}
	return r.StringUS / r.InternUS
}

// RunInterning measures the experiment on the paper's logistics world and
// the scaled worlds of the given sizes. Both sides retrieve through the same
// inverted index, so the ablation isolates the representation of the
// transformation layers, not retrieval.
func RunInterning(sizes []int, queries int, seed int64) ([]InterningRow, error) {
	var rows []InterningRow

	w, err := NewWorld(datagen.DB1())
	if err != nil {
		return nil, err
	}
	logistics, err := w.Workload(queries, seed)
	if err != nil {
		return nil, err
	}
	row, err := interningCell("logistics", w.DB.Schema(), w.Catalog, logistics)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	for _, n := range sizes {
		sch, cat, err := datagen.GenerateScaled(datagen.ScaledConfig{Constraints: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		qs, err := datagen.ScaledWorkload(sch, cat, queries, seed+1)
		if err != nil {
			return nil, err
		}
		row, err := interningCell(fmt.Sprintf("scaled-%d", n), sch, cat, qs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// interningCell measures one world under both representations.
func interningCell(label string, sch *schema.Schema, cat *constraint.Catalog, qs []*query.Query) (InterningRow, error) {
	ix := index.New(cat)
	interned := core.NewOptimizer(sch, ix, core.Options{Cost: core.HeuristicCost{Schema: sch}})
	stringSpace := core.NewOptimizer(sch, ix, core.Options{
		Cost:             core.HeuristicCost{Schema: sch},
		DisableInterning: true,
	})
	row := InterningRow{World: label, Constraints: cat.Len()}

	var optErr error
	measure := func(o *core.Optimizer) (float64, float64, float64) {
		run := func(q *query.Query) {
			if _, err := o.Optimize(q); err != nil && optErr == nil {
				optErr = err
			}
		}
		us := perQueryMicros(qs, run)
		// One counted pass for the allocation profile; Mallocs/TotalAlloc
		// advance monotonically regardless of GC.
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for _, q := range qs {
			run(q)
		}
		runtime.ReadMemStats(&after)
		nq := float64(len(qs))
		return us,
			float64(after.Mallocs-before.Mallocs) / nq,
			float64(after.TotalAlloc-before.TotalAlloc) / nq
	}
	row.InternUS, row.InternAllocs, row.InternBytes = measure(interned)
	row.StringUS, row.StringAllocs, row.StringBytes = measure(stringSpace)
	if optErr != nil {
		return row, optErr
	}
	return row, nil
}

// RenderInterning prints the experiment as a paper-style table.
func RenderInterning(rows []InterningRow) string {
	var sb strings.Builder
	sb.WriteString("Interning: symbol-space vs string-space transformation (same index retrieval)\n")
	fmt.Fprintf(&sb, "%-14s%9s%12s%12s%12s%12s%11s%11s%9s\n",
		"world", "rules", "intern µs", "string µs",
		"intern a/q", "string a/q", "intern B/q", "string B/q", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s%9d%12.2f%12.2f%12.1f%12.1f%11.0f%11.0f%8.1fx\n",
			r.World, r.Constraints, r.InternUS, r.StringUS,
			r.InternAllocs, r.StringAllocs, r.InternBytes, r.StringBytes, r.Speedup())
	}
	sb.WriteString("\nBoth sides retrieve through the inverted index; the gap is the per-query\n")
	sb.WriteString("string hashing and table re-interning the compiled symbol space removes.\n")
	return sb.String()
}
