package exec

import (
	"context"
	"fmt"
	"slices"
	"testing"

	"sqo/internal/core"
	"sqo/internal/engine"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/schema"
	"sqo/internal/storage"
	"sqo/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Class("supplier",
			schema.Attribute{Name: "name", Type: value.KindString, Indexed: true}).
		Class("cargo",
			schema.Attribute{Name: "desc", Type: value.KindString},
			schema.Attribute{Name: "quantity", Type: value.KindInt}).
		Relationship("supplies", "supplier", "cargo", schema.OneToMany).
		MustBuild()
}

// loadDB builds a two-supplier world: SFI supplies two frozen-food cargos,
// ACME supplies one steel cargo.
func loadDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase(testSchema(t))
	ins := func(class string, vals map[string]value.Value) storage.OID {
		oid, err := db.Insert(class, vals)
		if err != nil {
			t.Fatalf("Insert(%s): %v", class, err)
		}
		return oid
	}
	link := func(rel string, a, b storage.OID) {
		if err := db.Link(rel, a, b); err != nil {
			t.Fatalf("Link(%s): %v", rel, err)
		}
	}
	sfi := ins("supplier", map[string]value.Value{"name": value.String("SFI")})
	acme := ins("supplier", map[string]value.Value{"name": value.String("ACME")})
	c0 := ins("cargo", map[string]value.Value{"desc": value.String("frozen food"), "quantity": value.Int(10)})
	c1 := ins("cargo", map[string]value.Value{"desc": value.String("steel"), "quantity": value.Int(50)})
	c2 := ins("cargo", map[string]value.Value{"desc": value.String("frozen food"), "quantity": value.Int(20)})
	link("supplies", sfi, c0)
	link("supplies", acme, c1)
	link("supplies", sfi, c2)
	return db
}

// TestIndexPushDown pins the physical work of an indexed point query: one
// probe, one fetch, no pages — the push-down the paper's index introduction
// exists to reach.
func TestIndexPushDown(t *testing.T) {
	x := New(loadDB(t))
	q := query.New("supplier").
		AddProject("supplier", "name").
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI")))
	res, err := x.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Steps[0].Access != engine.AccessIndex {
		t.Fatalf("plan = %v, want index seed", res.Plan)
	}
	if got := res.Canonical(); !slices.Equal(got, []string{`"SFI"`}) {
		t.Fatalf("rows = %v", got)
	}
	m := res.Meter
	if m.IndexProbes != 1 || m.ObjectFetches != 1 || m.PagesScanned != 0 {
		t.Errorf("meter = %+v, want exactly 1 probe + 1 fetch, 0 pages", m)
	}
	if res.TuplesScanned != 1 {
		t.Errorf("TuplesScanned = %d, want 1", res.TuplesScanned)
	}
}

// TestEarlyFilterScan pins a full-extent scan with a pushed-down filter:
// every instance is examined (and counted) exactly once, every instance pays
// exactly one predicate evaluation, and only the survivors become rows.
func TestEarlyFilterScan(t *testing.T) {
	db := loadDB(t)
	x := New(db)
	q := query.New("cargo").
		AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("cargo", "desc", value.String("frozen food")))
	res, err := x.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Steps[0].Access != engine.AccessScan {
		t.Fatalf("plan = %v, want scan seed", res.Plan)
	}
	if got := res.Canonical(); !slices.Equal(got, []string{"10", "20"}) {
		t.Fatalf("rows = %v", got)
	}
	m := res.Meter
	if res.TuplesScanned != 3 || m.PredEvals != 3 {
		t.Errorf("scanned %d tuples, %d pred evals; want 3 and 3", res.TuplesScanned, m.PredEvals)
	}
	if m.PagesScanned != int64(db.Pages("cargo")) {
		t.Errorf("PagesScanned = %d, want %d", m.PagesScanned, db.Pages("cargo"))
	}
	if m.ObjectFetches != 0 || m.IndexProbes != 0 {
		t.Errorf("meter = %+v, scan should neither probe nor fetch", m)
	}
}

// TestTraverseMeter pins a two-class path: index seed (1 probe, 1 fetch),
// then one link traversal fanning out to the supplier's two cargos (2 more
// fetches). TuplesScanned counts all three examined instances.
func TestTraverseMeter(t *testing.T) {
	x := New(loadDB(t))
	q := query.New("supplier", "cargo").
		AddRelationship("supplies").
		AddProject("cargo", "desc").
		AddSelect(predicate.Eq("supplier", "name", value.String("SFI")))
	res, err := x.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Canonical(); !slices.Equal(got, []string{`"frozen food"`, `"frozen food"`}) {
		t.Fatalf("rows = %v", got)
	}
	m := res.Meter
	if m.IndexProbes != 1 || m.LinkTraversals != 1 || m.ObjectFetches != 3 {
		t.Errorf("meter = %+v, want 1 probe, 1 traversal, 3 fetches", m)
	}
	if res.TuplesScanned != 3 {
		t.Errorf("TuplesScanned = %d, want 3 (1 supplier + 2 cargos)", res.TuplesScanned)
	}
}

// TestRowsMatchEngine cross-checks the push-down pipeline against the
// engine's materialize-then-filter executor on every query shape the little
// world supports.
func TestRowsMatchEngine(t *testing.T) {
	db := loadDB(t)
	x := New(db)
	eng := engine.New(db)
	queries := []*query.Query{
		query.New("cargo").AddProject("cargo", "desc"),
		query.New("cargo").AddProject("cargo", "desc").
			AddSelect(predicate.Sel("cargo", "quantity", predicate.GE, value.Int(20))),
		query.New("supplier", "cargo").AddRelationship("supplies").
			AddProject("supplier", "name").AddProject("cargo", "quantity").
			AddSelect(predicate.Eq("cargo", "desc", value.String("frozen food"))),
		query.New("supplier", "cargo").AddRelationship("supplies").
			AddProject("cargo", "desc").
			AddSelect(predicate.Eq("supplier", "name", value.String("ACME"))).
			AddSelect(predicate.Sel("cargo", "quantity", predicate.GT, value.Int(10))),
	}
	for _, q := range queries {
		got, err := x.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("exec %s: %v", q, err)
		}
		want, err := eng.Execute(q)
		if err != nil {
			t.Fatalf("engine %s: %v", q, err)
		}
		if !slices.Equal(got.Canonical(), want.Canonical()) {
			t.Errorf("%s: exec %v != engine %v", q, got.Canonical(), want.Canonical())
		}
	}
}

// TestEmptyProven: a proven-empty optimization short-circuits with zero
// physical work; a nil result is an error, not a panic.
func TestEmptyProven(t *testing.T) {
	x := New(loadDB(t))
	res, err := x.ExecuteOptimized(context.Background(), &core.Result{EmptyResult: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.EmptyProven || len(res.Rows) != 0 {
		t.Errorf("want empty proven result, got %+v", res)
	}
	if res.Meter != (storage.Meter{}) || res.TuplesScanned != 0 {
		t.Errorf("proven-empty execution did physical work: %+v", res.Meter)
	}
	if _, err := x.ExecuteOptimized(context.Background(), nil); err == nil {
		t.Error("nil optimization result should error")
	}
}

// TestExecuteOptimizedRuns: a non-empty optimization result executes its
// transformed query and carries the optimization along.
func TestExecuteOptimizedRuns(t *testing.T) {
	x := New(loadDB(t))
	q := query.New("cargo").AddProject("cargo", "desc")
	res := &core.Result{Original: q, Optimized: q}
	out, err := x.ExecuteOptimized(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	if out.Opt != res {
		t.Error("execution should carry its optimization")
	}
	if len(out.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(out.Rows))
	}
}

// TestCancellation: a canceled context stops a long scan mid-extent. The
// check fires every checkEvery examined instances, so the extent must be
// bigger than that.
func TestCancellation(t *testing.T) {
	db := storage.NewDatabase(testSchema(t))
	for i := 0; i < 3*checkEvery; i++ {
		if _, err := db.Insert("cargo", map[string]value.Value{
			"desc": value.String("bulk"), "quantity": value.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	x := New(db)
	q := query.New("cargo").AddProject("cargo", "quantity").
		AddSelect(predicate.Eq("cargo", "desc", value.String("none")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Execute(ctx, q); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The same query completes on a live context.
	if _, err := x.Execute(context.Background(), q); err != nil {
		t.Errorf("live context: %v", err)
	}
}

// TestCompileErrors: plans referencing unknown attributes or unplanned
// classes are rejected before any I/O.
func TestCompileErrors(t *testing.T) {
	x := New(loadDB(t))
	q := query.New("cargo").AddProject("cargo", "ghost")
	if _, err := x.Execute(context.Background(), q); err == nil {
		t.Error("unknown projection attribute should error")
	}
}

// TestDeterminism: repeated executions return identical canonical rows and
// identical meters.
func TestDeterminism(t *testing.T) {
	x := New(loadDB(t))
	q := query.New("supplier", "cargo").AddRelationship("supplies").
		AddProject("supplier", "name").AddProject("cargo", "desc")
	var rows []string
	var meter storage.Meter
	for i := 0; i < 5; i++ {
		res, err := x.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			rows, meter = res.Canonical(), res.Meter
			continue
		}
		if !slices.Equal(rows, res.Canonical()) || meter != res.Meter {
			t.Fatalf("run %d diverged", i)
		}
	}
	_ = fmt.Sprintf("%v", meter)
}
