// Package exec runs optimized queries end-to-end against the metered storage
// substrate — the execution half of the paper's thesis. The optimizer proves
// that a transformed query is equivalent and cheaper; this package is where
// the savings become physical: transformed predicates are pushed down into
// the access layer (index probes for indexed attributes, early filtering
// inside the extent scan before a tuple is ever materialized), joins run as
// OODB pointer traversals, and every physical event lands in a per-query
// storage.Meter so the I/O payoff of Table 4.2 is measured, not estimated.
//
// Planning is shared with internal/engine (the greedy pointer-traversal
// planner), so the plan the cost model priced is the plan that runs. The run
// loop here differs from engine.Run in three ways that matter for serving:
// instances that fail a pushed-down filter are discarded inside the scan
// callback without ever becoming a binding, execution honors context
// cancellation (checked every checkEvery instances, mirroring
// core.OptimizeContext), and the result carries TuplesScanned — the count of
// instances the run examined, the denominator of the paper's payoff claim.
package exec

import (
	"context"
	"fmt"

	"sqo/internal/core"
	"sqo/internal/engine"
	"sqo/internal/obs"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/storage"
	"sqo/internal/value"
)

// checkEvery is how many examined instances pass between context checks —
// frequent enough that cancellation cuts in promptly, rare enough that the
// check never shows up in a profile.
const checkEvery = 1024

// Result is the outcome of one end-to-end execution.
type Result struct {
	// Rows are the projected result tuples, in plan order.
	Rows []engine.Row
	// Plan is the access plan that ran (nil when EmptyProven).
	Plan *engine.Plan
	// Meter is the physical work of this execution alone.
	Meter storage.Meter
	// TuplesScanned counts the instances the run examined — every instance
	// surfaced by a scan, index fetch, or traversal, before filtering.
	TuplesScanned int64
	// EmptyProven is true when the optimizer proved the query empty and
	// execution never touched storage.
	EmptyProven bool
	// Opt is the optimization that produced the executed query; nil when
	// the query ran unoptimized (Execute on a raw query).
	Opt *core.Result
}

// Canonical returns the rows as a sorted multiset of strings, the form the
// differential tests compare byte-for-byte.
func (r *Result) Canonical() []string {
	er := engine.Result{Rows: r.Rows}
	return er.Canonical()
}

// Cost prices the result's meter with the given weights.
func (r *Result) Cost(w engine.CostWeights) float64 { return w.Cost(r.Meter) }

// Store is the read surface the run loop drives: exactly the five database
// methods an executing plan touches. *storage.Database satisfies it
// directly; the fault-injection harness satisfies it with a wrapper that
// interposes on each call. Planning always sees the concrete database (the
// planner needs its statistics), so a wrapper perturbs execution only.
type Store interface {
	Scan(class string, m *storage.Meter, fn func(storage.Instance) bool) error
	Get(class string, oid storage.OID, m *storage.Meter) (storage.Instance, error)
	IndexLookup(class, attr string, op storage.IndexOp, v value.Value, m *storage.Meter) ([]storage.OID, error)
	Traverse(rel string, from string, oid storage.OID, m *storage.Meter) ([]storage.OID, error)
	AttrIndexOf(class, attr string) (int, error)
}

// Executor runs queries end-to-end over one database. Construct with New;
// safe for concurrent use (the underlying database allows concurrent reads).
type Executor struct {
	db      *storage.Database
	access  Store
	planner *engine.Executor
}

// New builds an executor over the database, sharing the greedy planner (and
// its statistics snapshot) with internal/engine.
func New(db *storage.Database) *Executor {
	return &Executor{db: db, access: db, planner: engine.New(db)}
}

// NewWith builds an executor that plans against db but reads through access —
// the seam the fault-injection harness uses to perturb the read path without
// disturbing plan selection.
func NewWith(db *storage.Database, access Store) *Executor {
	if access == nil {
		access = db
	}
	return &Executor{db: db, access: access, planner: engine.New(db)}
}

// Database returns the database this executor runs against.
func (x *Executor) Database() *storage.Database { return x.db }

// Execute plans and runs the query with push-down and early filtering,
// honoring cancellation and deadlines on ctx. Plans come from the planner's
// serving profile (engine.PlanExamined), which seeds to minimize examined
// instances — the quantity TuplesScanned reports — rather than the 1991 disk
// model's weighted page cost; raw and optimized executions therefore compete
// under the same policy.
func (x *Executor) Execute(ctx context.Context, q *query.Query) (*Result, error) {
	tr := obs.FromContext(ctx)
	at := tr.StartSpan()
	plan, err := x.planner.PlanExamined(q)
	tr.EndSpan(obs.StagePlan, at)
	if err != nil {
		return nil, err
	}
	at = tr.StartSpan()
	out, err := x.run(ctx, q, plan)
	tr.EndSpan(obs.StageExecute, at)
	return out, err
}

// ExecuteOptimized runs an optimization result end-to-end: a proven-empty
// query short-circuits without touching storage (the strongest possible
// push-down — zero I/O), anything else executes the transformed query.
func (x *Executor) ExecuteOptimized(ctx context.Context, res *core.Result) (*Result, error) {
	if res == nil {
		return nil, fmt.Errorf("exec: nil optimization result")
	}
	if res.EmptyResult {
		return &Result{EmptyProven: true, Opt: res}, nil
	}
	out, err := x.Execute(ctx, res.Optimized)
	if err != nil {
		return nil, err
	}
	out.Opt = res
	return out, nil
}

// binding is one partial tuple: the bound instance per plan-step position.
type binding []storage.Instance

// compiledFilter is one pushed-down selective predicate with its attribute
// offset resolved.
type compiledFilter struct {
	pred predicate.Predicate
	attr int
}

// compiledJoin is one join predicate with both operand positions resolved.
type compiledJoin struct {
	pred     predicate.Predicate
	lpos, la int
	rpos, ra int
}

// compiledPlan is the plan with every name resolved to an offset, so the run
// loop does no map lookups per instance.
type compiledPlan struct {
	filters [][]compiledFilter
	joins   [][]compiledJoin
	proj    []struct{ pos, attr int }
}

func (x *Executor) compile(q *query.Query, plan *engine.Plan) (*compiledPlan, map[string]int, error) {
	classPos := map[string]int{}
	for i, st := range plan.Steps {
		classPos[st.Class] = i
	}
	cp := &compiledPlan{
		filters: make([][]compiledFilter, len(plan.Steps)),
		joins:   make([][]compiledJoin, len(plan.Steps)),
	}
	for i, st := range plan.Steps {
		for _, p := range st.Filters {
			ai, err := x.access.AttrIndexOf(st.Class, p.Left.Attr)
			if err != nil {
				return nil, nil, err
			}
			cp.filters[i] = append(cp.filters[i], compiledFilter{pred: p, attr: ai})
		}
		for _, j := range st.Joins {
			lpos, ok := classPos[j.Left.Class]
			if !ok {
				return nil, nil, fmt.Errorf("exec: join %s references unplanned class", j)
			}
			rpos, ok := classPos[j.RightAttr.Class]
			if !ok {
				return nil, nil, fmt.Errorf("exec: join %s references unplanned class", j)
			}
			la, err := x.access.AttrIndexOf(j.Left.Class, j.Left.Attr)
			if err != nil {
				return nil, nil, err
			}
			ra, err := x.access.AttrIndexOf(j.RightAttr.Class, j.RightAttr.Attr)
			if err != nil {
				return nil, nil, err
			}
			cp.joins[i] = append(cp.joins[i], compiledJoin{pred: j, lpos: lpos, la: la, rpos: rpos, ra: ra})
		}
	}
	cp.proj = make([]struct{ pos, attr int }, len(q.Project))
	for i, a := range q.Project {
		pos, ok := classPos[a.Class]
		if !ok {
			return nil, nil, fmt.Errorf("exec: projection %s references unplanned class", a)
		}
		ai, err := x.access.AttrIndexOf(a.Class, a.Attr)
		if err != nil {
			return nil, nil, err
		}
		cp.proj[i] = struct{ pos, attr int }{pos, ai}
	}
	return cp, classPos, nil
}

// run executes a compiled plan as a pipeline. Filters are evaluated the
// moment an instance surfaces — a failing instance never becomes a binding —
// and the context is checked every checkEvery examined instances.
func (x *Executor) run(ctx context.Context, q *query.Query, plan *engine.Plan) (*Result, error) {
	cp, classPos, err := x.compile(q, plan)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}
	m := &res.Meter

	// admit examines one surfaced instance: count it, filter it, and turn
	// survivors into bindings. It returns false only on cancellation.
	var ctxErr error
	admit := func(stepIdx int, inst storage.Instance, from binding, next *[]binding) bool {
		res.TuplesScanned++
		if res.TuplesScanned%checkEvery == 0 {
			if ctxErr = ctx.Err(); ctxErr != nil {
				return false
			}
		}
		for _, f := range cp.filters[stepIdx] {
			m.PredEvals++
			if !f.pred.EvalSel(inst.Values[f.attr]) {
				return true
			}
		}
		b := make(binding, len(plan.Steps))
		copy(b, from)
		b[stepIdx] = inst
		*next = append(*next, b)
		return true
	}

	var bindings []binding
	for stepIdx, st := range plan.Steps {
		var next []binding
		switch st.Access {
		case engine.AccessScan:
			if stepIdx != 0 {
				return nil, fmt.Errorf("exec: non-seed scan step at position %d", stepIdx)
			}
			err := x.access.Scan(st.Class, m, func(inst storage.Instance) bool {
				return admit(stepIdx, inst, nil, &next)
			})
			if err != nil {
				return nil, err
			}

		case engine.AccessIndex:
			if stepIdx != 0 {
				return nil, fmt.Errorf("exec: non-seed index step at position %d", stepIdx)
			}
			op, ok := indexOp(st.IndexPred.Op)
			if !ok {
				return nil, fmt.Errorf("exec: predicate %s cannot use an index", st.IndexPred)
			}
			oids, err := x.access.IndexLookup(st.Class, st.IndexPred.Left.Attr, op, st.IndexPred.Const, m)
			if err != nil {
				return nil, err
			}
			for _, oid := range oids {
				inst, err := x.access.Get(st.Class, oid, m)
				if err != nil {
					return nil, err
				}
				if !admit(stepIdx, inst, nil, &next) {
					break
				}
			}

		case engine.AccessTraverse:
			fromPos, ok := classPos[st.FromClass]
			if !ok || fromPos >= stepIdx {
				return nil, fmt.Errorf("exec: step %d traverses from unbound class %q", stepIdx, st.FromClass)
			}
		traverse:
			for _, b := range bindings {
				oids, err := x.access.Traverse(st.ViaRel, st.FromClass, b[fromPos].OID, m)
				if err != nil {
					return nil, err
				}
				for _, oid := range oids {
					inst, err := x.access.Get(st.Class, oid, m)
					if err != nil {
						return nil, err
					}
					if !admit(stepIdx, inst, b, &next) {
						break traverse
					}
				}
			}
		}
		if ctxErr != nil {
			return nil, ctxErr
		}

		// Join predicates that became checkable at this step.
		if len(cp.joins[stepIdx]) > 0 {
			joined := next[:0]
			for _, b := range next {
				ok := true
				for _, j := range cp.joins[stepIdx] {
					m.PredEvals++
					if !j.pred.EvalJoin(b[j.lpos].Values[j.la], b[j.rpos].Values[j.ra]) {
						ok = false
						break
					}
				}
				if ok {
					joined = append(joined, b)
				}
			}
			next = joined
		}
		bindings = next
	}

	for _, b := range bindings {
		row := engine.Row{Values: make([]value.Value, len(cp.proj))}
		for i, pr := range cp.proj {
			row.Values[i] = b[pr.pos].Values[pr.attr]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// indexOp maps a predicate operator onto an index lookup mode; != cannot use
// an ordered index.
func indexOp(op predicate.Op) (storage.IndexOp, bool) {
	switch op {
	case predicate.EQ:
		return storage.IndexEQ, true
	case predicate.LT:
		return storage.IndexLT, true
	case predicate.LE:
		return storage.IndexLE, true
	case predicate.GT:
		return storage.IndexGT, true
	case predicate.GE:
		return storage.IndexGE, true
	default:
		return 0, false
	}
}
