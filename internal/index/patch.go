// Index patching: deriving the next catalog generation's index from the
// current one in work proportional to the delta, by structural sharing.
//
// The ordinal space is append-only across a patch lineage: a removed
// constraint's ordinal is tombstoned (no posting list references it, its
// slot in all/classIDs/links stays), an added constraint gets the next
// fresh ordinal. Because posting lists store ordinals ascending and
// Relevant sorts its candidates, the retrieval order of a patched index is
// exactly the catalog order a from-scratch build over the same live set
// would produce: survivors keep their relative order, additions append.
//
// Only the structures the delta touches are rebuilt by copy: the posting
// lists losing or gaining a member, the attribute-posting rows of the
// removed/added antecedents, and the top-level spines (slice-header arrays),
// which cannot be mutated in place while older generations are serving from
// them. Everything else — the inner posting lists, requirement sets and the
// shared symbol space backing — is shared with the prior generation.
package index

import (
	"slices"

	"sqo/internal/constraint"
	"sqo/internal/symtab"
)

// Lineage is the mutation-side bookkeeping of one patched index lineage:
// per-class reference frequencies and reverse references, which home
// (re-)assignment needs. It is mutated by Patch under the caller's
// serialization (the engine's swap lock) and never read while serving.
type Lineage struct {
	freq []int     // per ClassID: live constraints referencing it
	refs [][]int32 // per ClassID: live ordinals referencing it, unordered
}

// NewLineage builds the mutation-side state for ix; O(catalog), paid once
// when an engine's first incremental update promotes its generation.
func NewLineage(ix *Index) *Lineage {
	lin := &Lineage{
		freq: make([]int, len(ix.byClass)),
		refs: make([][]int32, len(ix.byClass)),
	}
	for ord := range ix.all {
		for _, id := range ix.classIDs[ord] {
			lin.freq[id]++
			lin.refs[id] = append(lin.refs[id], int32(ord))
		}
	}
	return lin
}

// grow extends the lineage to cover classes interned after construction.
func (lin *Lineage) grow(classes int) {
	for len(lin.freq) < classes {
		lin.freq = append(lin.freq, 0)
		lin.refs = append(lin.refs, nil)
	}
}

// dropRef removes ord from refs[id] (order is irrelevant; swap-delete).
func (lin *Lineage) dropRef(id symtab.ClassID, ord int32) {
	list := lin.refs[id]
	for i, v := range list {
		if v == ord {
			list[i] = list[len(list)-1]
			lin.refs[id] = list[:len(list)-1]
			return
		}
	}
}

// Patch derives the index of the next generation: removed lists the
// tombstoned ordinals, added the new constraints (appended at fresh
// ordinals, in order), syms the patched symbol space covering them. The
// receiver is never mutated and keeps serving concurrently; lin is updated
// in place. Patch calls within a lineage must be serialized by the caller.
//
// Home assignment stays byte-identical to a from-scratch build: the delta
// changes the reference frequency only of the classes the removed/added
// constraints mention, and only constraints referencing such a class can
// see their rarest-class choice flip, so exactly those candidates are
// re-homed under the updated frequencies (same tie-break: first class in
// sorted order wins).
func (ix *Index) Patch(lin *Lineage, syms *symtab.Table, removed []int32, added []*constraint.Constraint, addedOrds []int32) *Index {
	nOrds := len(ix.all) + len(added)
	nx := &Index{
		all:          ix.all,
		syms:         syms,
		live:         ix.live - len(removed) + len(added),
		byClass:      make([][]int32, syms.NumClasses()),
		parked:       ix.parked,
		homeOf:       make([]int32, nOrds),
		classIDs:     ix.classIDs,
		links:        ix.links,
		attrRows:     make([][]attrPosting, syms.NumSigs()),
		attrNonEmpty: ix.attrNonEmpty,
	}
	copy(nx.byClass, ix.byClass)
	copy(nx.homeOf, ix.homeOf)
	copy(nx.attrRows, ix.attrRows)
	lin.grow(syms.NumClasses())

	// touched tracks the classes whose reference frequency this delta
	// changes — the re-homing candidates' classes.
	var touched []symtab.ClassID
	touch := func(id symtab.ClassID) {
		if !slices.Contains(touched, id) {
			touched = append(touched, id)
		}
	}

	// Removals: unpost from home, drop antecedent postings, release refs.
	for _, ord := range removed {
		if home := nx.homeOf[ord]; home >= 0 {
			nx.byClass[home] = removeSorted(nx.byClass[home], ord)
		} else {
			nx.parked = removeSorted(nx.parked, ord)
		}
		nx.homeOf[ord] = -1
		for _, id := range nx.classIDs[ord] {
			lin.freq[id]--
			lin.dropRef(id, ord)
			touch(id)
		}
		comp := syms.CompiledAt(int(ord))
		for _, aid := range comp.Ants {
			sig := syms.SigOrdinal(aid)
			row := removePostings(nx.attrRows[sig], int(ord))
			if len(row) == 0 && len(nx.attrRows[sig]) > 0 {
				nx.attrNonEmpty--
			}
			nx.attrRows[sig] = row
		}
	}

	// Additions: extend the ordinal space, post antecedents, count refs.
	for i, c := range added {
		ord := addedOrds[i]
		nx.all = append(nx.all, c)
		cls := c.Classes()
		ids := make([]symtab.ClassID, len(cls))
		for k, cl := range cls {
			id, ok := syms.ClassID(cl)
			if !ok {
				panic("index: symbol space does not cover constraint " + c.ID)
			}
			ids[k] = id
			lin.freq[id]++
			lin.refs[id] = append(lin.refs[id], ord)
			touch(id)
		}
		nx.classIDs = append(nx.classIDs, ids)
		nx.links = append(nx.links, c.Links)
		nx.homeOf[ord] = -1 // homed below with every other candidate
		if len(ids) == 0 {
			nx.parked = insertSorted(nx.parked, ord)
		}
		comp := syms.CompiledAt(int(ord))
		for k, aid := range comp.Ants {
			sig := syms.SigOrdinal(aid)
			if len(nx.attrRows[sig]) == 0 {
				nx.attrNonEmpty++
			}
			// New ordinals exceed every posted one, so appending keeps
			// the (ordinal, position) order; the row is copied because
			// its backing may be shared with older generations.
			nx.attrRows[sig] = appendPosting(nx.attrRows[sig], attrPosting{
				ord: int(ord),
				pos: k,
				iv:  IntervalOfPredicate(c.Antecedents[k]),
			})
		}
	}

	// Re-home every live constraint referencing a frequency-changed class;
	// untouched constraints cannot have seen their rarest-class choice
	// move. Candidates include the fresh ordinals (homed for the first
	// time here).
	for _, id := range touched {
		for _, ord := range lin.refs[id] {
			ids := nx.classIDs[ord]
			home := ids[0]
			for _, cid := range ids[1:] {
				if lin.freq[cid] < lin.freq[home] {
					home = cid
				}
			}
			if int32(home) == nx.homeOf[ord] {
				continue
			}
			if old := nx.homeOf[ord]; old >= 0 {
				nx.byClass[old] = removeSorted(nx.byClass[old], ord)
			}
			nx.homeOf[ord] = int32(home)
			nx.byClass[home] = insertSorted(nx.byClass[home], ord)
		}
	}

	nx.maxPosting = nx.computeMaxPosting()
	return nx
}

// removeSorted returns list without v, preserving order. The result is a
// fresh copy; the input (shared with older generations) is untouched.
func removeSorted(list []int32, v int32) []int32 {
	i, ok := slices.BinarySearch(list, v)
	if !ok {
		return list
	}
	out := make([]int32, 0, len(list)-1)
	out = append(out, list[:i]...)
	return append(out, list[i+1:]...)
}

// insertSorted returns list with v inserted in order, as a fresh copy.
func insertSorted(list []int32, v int32) []int32 {
	i, ok := slices.BinarySearch(list, v)
	if ok {
		return list
	}
	out := make([]int32, 0, len(list)+1)
	out = append(out, list[:i]...)
	out = append(out, v)
	return append(out, list[i:]...)
}

// removePostings returns row without the postings of ord, as a fresh copy
// (or the shared row itself when ord posted nothing on it).
func removePostings(row []attrPosting, ord int) []attrPosting {
	n := 0
	for _, p := range row {
		if p.ord == ord {
			n++
		}
	}
	if n == 0 {
		return row
	}
	out := make([]attrPosting, 0, len(row)-n)
	for _, p := range row {
		if p.ord != ord {
			out = append(out, p)
		}
	}
	return out
}

// appendPosting appends p to a fresh copy of row (whose backing may be
// shared with an older generation).
func appendPosting(row []attrPosting, p attrPosting) []attrPosting {
	return append(append(make([]attrPosting, 0, len(row)+1), row...), p)
}
