package index

import (
	"fmt"
	"math/rand"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

// TestRelevantMatchesScanRandom sweeps randomized catalogs over a synthetic
// schema: same set, same order, for random query class/link combinations.
func TestRelevantMatchesScanRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	classes := []string{"k0", "k1", "k2", "k3", "k4"}
	links := []string{"r0", "r1", "r2", "r3"}

	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(60)
		var cs []*constraint.Constraint
		for j := 0; j < n; j++ {
			ci := r.Intn(len(classes))
			ants := []predicate.Predicate{
				predicate.Sel(classes[ci], "a", predicate.GE, value.Int(int64(r.Intn(50)))),
			}
			var lnk []string
			cons := predicate.Sel(classes[ci], "b", predicate.LE, value.Int(int64(100+j)))
			if ci+1 < len(classes) && r.Intn(2) == 0 {
				cons = predicate.Sel(classes[ci+1], "b", predicate.LE, value.Int(int64(100+j)))
				lnk = []string{links[ci]}
			}
			cs = append(cs, constraint.New(fmt.Sprintf("t%03d", j), ants, lnk, cons))
		}
		cat := constraint.MustCatalog(cs...)
		ix := New(cat)
		scan := Scan{Catalog: cat}

		for probe := 0; probe < 20; probe++ {
			lo := r.Intn(len(classes))
			hi := lo + r.Intn(len(classes)-lo)
			q := query.New(classes[lo : hi+1]...)
			for i := lo; i < hi; i++ {
				q.AddRelationship(links[i])
			}
			want := scan.Relevant(q)
			got := ix.Relevant(q)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %v: index %d vs scan %d", trial, q.Classes, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: order diverged at %d: %s vs %s", trial, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

// TestRarestClassAssignment: the home class of every constraint is the least
// referenced of its classes, so heavy classes don't accumulate postings from
// constraints that also touch rare ones.
func TestRarestClassAssignment(t *testing.T) {
	// Three constraints touch "hot"; one of them also touches "cold".
	hotA := constraint.New("h1", nil, nil, predicate.Eq("hot", "a", value.Int(1)))
	hotB := constraint.New("h2", nil, nil, predicate.Eq("hot", "a", value.Int(2)))
	mixed := constraint.New("m1",
		[]predicate.Predicate{predicate.Eq("hot", "a", value.Int(3))}, nil,
		predicate.Eq("cold", "b", value.Int(4)))
	ix := New(constraint.MustCatalog(hotA, hotB, mixed))

	posting := func(class string) int {
		id, ok := ix.syms.ClassID(class)
		if !ok {
			t.Fatalf("class %q not interned", class)
		}
		return len(ix.byClass[id])
	}
	if got := posting("hot"); got != 2 {
		t.Errorf(`"hot" posting = %d entries, want 2`, got)
	}
	if got := posting("cold"); got != 1 {
		t.Errorf(`"cold" posting = %d entries, want 1 (mixed constraint homes at its rarest class)`, got)
	}
	st := ix.Stats()
	if st.Constraints != 3 || st.ClassBuckets != 2 || st.MaxClassPosting != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSignatureKeysJoinAndSel: signatures separate selections from joins and
// respect join canonicalization.
func TestSignatureKeysJoinAndSel(t *testing.T) {
	sel := predicate.Sel("a", "x", predicate.GE, value.Int(1))
	selOther := predicate.Sel("a", "x", predicate.LT, value.Int(9))
	if Signature(sel) != Signature(selOther) {
		t.Error("operator must not participate in the signature")
	}
	j1 := predicate.Join("a", "x", predicate.LE, "b", "y")
	j2 := predicate.Join("b", "y", predicate.GE, "a", "x") // canonicalizes to j1's operands
	if Signature(j1) != Signature(j2) {
		t.Error("join canonicalization must unify signatures")
	}
	if Signature(sel) == Signature(j1) {
		t.Error("selection and join signatures must differ")
	}
}
