package index

import (
	"reflect"
	"testing"

	"sqo/internal/constraint"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/symtab"
	"sqo/internal/value"
)

func ixRule(id string, antClass, consClass string, val string, links ...string) *constraint.Constraint {
	return constraint.New(id,
		[]predicate.Predicate{predicate.Eq(antClass, "x", value.String(val))},
		links,
		predicate.Eq(consClass, "x", value.String(val+"'")))
}

// patchHarness drives a sequence of (removed, added) patches and compares
// the patched index against a from-scratch build over the live set after
// every step: identical Relevant output for probe queries and identical
// stats.
type patchHarness struct {
	t    *testing.T
	syms *symtab.Table
	ix   *Index
	lin  *Lineage
	all  []*constraint.Constraint // ordinal space mirror
	dead map[int]bool
}

func newPatchHarness(t *testing.T, base []*constraint.Constraint) *patchHarness {
	syms := symtab.Compile(nil, base)
	ix := BuildWith(base, syms)
	return &patchHarness{
		t:    t,
		syms: syms,
		ix:   ix,
		lin:  NewLineage(ix),
		all:  append([]*constraint.Constraint(nil), base...),
		dead: map[int]bool{},
	}
}

func (h *patchHarness) step(removedIDs []string, added []*constraint.Constraint, probes []*query.Query) {
	h.t.Helper()
	var removed []int32
	for _, id := range removedIDs {
		found := false
		for ord, c := range h.all {
			if !h.dead[ord] && c.ID == id {
				removed = append(removed, int32(ord))
				h.dead[ord] = true
				found = true
				break
			}
		}
		if !found {
			h.t.Fatalf("harness: no live constraint %q", id)
		}
	}
	newSyms, addedOrds := h.syms.Patch(added)
	h.ix = h.ix.Patch(h.lin, newSyms, removed, added, addedOrds)
	h.syms = newSyms
	h.all = append(h.all, added...)

	var live []*constraint.Constraint
	for ord, c := range h.all {
		if !h.dead[ord] {
			live = append(live, c)
		}
	}
	ref := BuildWith(live, symtab.Compile(nil, live))

	if got, want := h.ix.Stats(), ref.Stats(); !reflect.DeepEqual(got, want) {
		h.t.Fatalf("stats diverge after patch\npatched: %+v\nscratch: %+v", got, want)
	}
	for _, q := range probes {
		got, want := h.ix.Relevant(q), ref.Relevant(q)
		if len(got) != len(want) {
			h.t.Fatalf("Relevant(%v) sizes diverge: %d vs %d", q.Classes, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				h.t.Fatalf("Relevant(%v)[%d] = %s, scratch %s", q.Classes, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestPatchRelevantAndStats(t *testing.T) {
	base := []*constraint.Constraint{
		ixRule("r1", "a", "a", "u"),
		ixRule("r2", "a", "b", "v"),
		ixRule("r3", "b", "b", "w"),
		ixRule("r4", "c", "c", "z"),
	}
	probes := []*query.Query{
		query.New("a"), query.New("b"), query.New("c"),
		query.New("a", "b"), query.New("a", "b", "c"),
	}
	h := newPatchHarness(t, base)

	h.step(nil, []*constraint.Constraint{ixRule("r5", "c", "a", "q")}, probes)
	h.step([]string{"r2"}, nil, probes)
	h.step([]string{"r5"}, []*constraint.Constraint{ixRule("r6", "d", "d", "n")}, probes)
	// Re-add a previously removed rule: tombstoned symbols, fresh ordinal.
	h.step(nil, []*constraint.Constraint{base[1]}, probes)
	// Empty out a class completely.
	h.step([]string{"r4"}, nil, probes)
}

// TestPatchRehoming forces the rarest-class choice of an untouched
// constraint to flip: removing rules that reference class b makes b rarer
// than a, so the surviving a∧b rule must re-home from a to b exactly as a
// from-scratch build would decide.
func TestPatchRehoming(t *testing.T) {
	ab := constraint.New("ab",
		[]predicate.Predicate{predicate.Eq("a", "x", value.String("u"))},
		nil,
		predicate.Eq("b", "x", value.String("v")))
	base := []*constraint.Constraint{
		ab,
		ixRule("b1", "b", "b", "1"),
		ixRule("b2", "b", "b", "2"),
		ixRule("a1", "a", "a", "1"),
	}
	// freq: a=2 (ab, a1), b=3 (ab, b1, b2) -> ab homes at a.
	h := newPatchHarness(t, base)
	if got := h.ix.homeOf[0]; h.ix.syms.ClassName(symtab.ClassID(got)) != "a" {
		t.Fatalf("precondition: ab homed at %q, want a", h.ix.syms.ClassName(symtab.ClassID(got)))
	}
	// Remove b1 and b2: freq a=2, b=1 -> ab must re-home to b.
	probes := []*query.Query{query.New("a"), query.New("b"), query.New("a", "b")}
	h.step([]string{"b1", "b2"}, nil, probes)
	if got := h.ix.homeOf[0]; h.ix.syms.ClassName(symtab.ClassID(got)) != "b" {
		t.Fatalf("ab homed at %q after the delta, want b", h.ix.syms.ClassName(symtab.ClassID(got)))
	}
}

// TestPatchLateSymbolsQuery: within a lineage the symbol maps are shared,
// so an old generation can resolve a class a later generation interned —
// with an ID beyond the old generation's posting spine. Queries naming such
// a class must be served (the class is unreferenced in that generation),
// not panic.
func TestPatchLateSymbolsQuery(t *testing.T) {
	base := []*constraint.Constraint{
		ixRule("r1", "a", "a", "u"),
	}
	h := newPatchHarness(t, base)
	q := query.New("a")
	h.step(nil, []*constraint.Constraint{ixRule("r2", "b", "b", "v")}, []*query.Query{q})
	gen1 := h.ix // knows classes a, b
	// Advance the lineage with a brand-new class c; gen1 must keep serving
	// queries that mention it.
	h.step(nil, []*constraint.Constraint{ixRule("r3", "c", "c", "w")}, []*query.Query{q})

	got := gen1.Relevant(query.New("a", "c"))
	if len(got) != 1 || got[0].ID != "r1" {
		t.Fatalf("old generation Relevant with a late-interned class = %v", got)
	}
}

// TestPatchOldGenerationUntouched: a published index keeps serving its own
// generation's retrieval while patches advance the lineage.
func TestPatchOldGenerationUntouched(t *testing.T) {
	base := []*constraint.Constraint{
		ixRule("r1", "a", "a", "u"),
		ixRule("r2", "b", "b", "v"),
	}
	h := newPatchHarness(t, base)
	old := h.ix
	oldStats := old.Stats()

	q := query.New("a", "b")
	before := old.Relevant(q)
	h.step([]string{"r1"}, []*constraint.Constraint{ixRule("r3", "a", "a", "w")}, []*query.Query{q})

	if !reflect.DeepEqual(old.Stats(), oldStats) {
		t.Fatal("patch changed the published generation's stats")
	}
	after := old.Relevant(q)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("patch changed the published generation's retrieval")
	}
	// The old generation still returns r1 (its generation's truth), the
	// new one does not.
	found := false
	for _, c := range after {
		if c.ID == "r1" {
			found = true
		}
	}
	if !found {
		t.Fatal("old generation lost a constraint it should still serve")
	}
	for _, c := range h.ix.Relevant(q) {
		if c.ID == "r1" {
			t.Fatal("new generation serves a removed constraint")
		}
	}
}
