package index_test

// External tests pairing the index with the paper's logistics catalog (the
// datagen package imports index for its scaled workload generator, so these
// live outside package index to avoid an import cycle).

import (
	"math/rand"
	"testing"

	"sqo/internal/datagen"
	"sqo/internal/index"
	"sqo/internal/predicate"
	"sqo/internal/query"
	"sqo/internal/value"
)

// TestRelevantMatchesScanLogistics: on the paper's catalog, the index returns
// exactly the scan's relevant set, in the same order, for a spread of query
// shapes.
func TestRelevantMatchesScanLogistics(t *testing.T) {
	cat := datagen.Constraints()
	ix := index.New(cat)
	scan := index.Scan{Catalog: cat}

	queries := []*query.Query{
		query.New("vehicle", "cargo").AddRelationship("collects"),
		query.New("supplier", "cargo", "vehicle").AddRelationship("supplies").AddRelationship("collects"),
		query.New("driver").AddSelect(predicate.Eq("driver", "rank", value.String("supervisor"))),
		query.New("driver", "vehicle", "engine").AddRelationship("drives").AddRelationship("engComp"),
		query.New("supplier"),
		query.New("cargo", "driver").AddRelationship("inspects"),
	}
	for _, q := range queries {
		want := scan.Relevant(q)
		got := ix.Relevant(q)
		if len(got) != len(want) {
			t.Fatalf("%v: index returned %d constraints, scan %d", q.Classes, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: position %d: index %s, scan %s", q.Classes, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// TestAntecedentMatchesSuperset: every constraint whose antecedent is implied
// by the probe predicate must be among the matches (the closure relies on it).
func TestAntecedentMatchesSuperset(t *testing.T) {
	cat := datagen.Constraints()
	ix := index.New(cat)
	r := rand.New(rand.NewSource(17))
	ops := []predicate.Op{predicate.EQ, predicate.NE, predicate.LT, predicate.LE, predicate.GT, predicate.GE}

	var probes []predicate.Predicate
	for _, c := range cat.All() {
		probes = append(probes, c.Consequent)
		probes = append(probes, c.Antecedents...)
	}
	for i := 0; i < 200; i++ {
		probes = append(probes, predicate.Sel("engine", "capacity", ops[r.Intn(len(ops))], value.Int(int64(r.Intn(800)))))
	}

	for _, p := range probes {
		matched := map[[2]int]bool{}
		for _, m := range ix.AntecedentMatches(p) {
			matched[[2]int{m.Ordinal, m.AntPos}] = true
		}
		for ord, c := range cat.All() {
			for pos, a := range c.Antecedents {
				if p.Implies(a) && !matched[[2]int{ord, pos}] {
					t.Fatalf("probe %s implies antecedent %s of %s but the index missed it", p, a, c.ID)
				}
			}
		}
	}
}
