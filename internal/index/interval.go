package index

import (
	"sqo/internal/predicate"
	"sqo/internal/value"
)

// Interval is the satisfiable region of a single selective predicate over a
// totally ordered attribute domain: a (possibly half-open, possibly unbounded)
// interval, minus at most one excluded point (the != case). Two predicates on
// the same attribute can only stand in an implication relation when their
// intervals overlap, which is what makes the interval a sound pre-filter for
// the attribute-keyed posting lists: Overlaps may report false positives but
// never discards a pair Implies would accept.
type Interval struct {
	lo, hi         value.Value
	hasLo, hasHi   bool
	openLo, openHi bool
	ne             value.Value // excluded point (A != c)
	hasNE          bool
}

// FullInterval is the unconstrained domain; it overlaps everything.
var FullInterval = Interval{}

// IntervalOf returns the satisfiable region of op against c.
func IntervalOf(op predicate.Op, c value.Value) Interval {
	switch op {
	case predicate.EQ:
		return Interval{lo: c, hi: c, hasLo: true, hasHi: true}
	case predicate.NE:
		return Interval{ne: c, hasNE: true}
	case predicate.LT:
		return Interval{hi: c, hasHi: true, openHi: true}
	case predicate.LE:
		return Interval{hi: c, hasHi: true}
	case predicate.GT:
		return Interval{lo: c, hasLo: true, openLo: true}
	default: // GE
		return Interval{lo: c, hasLo: true}
	}
}

// IntervalOfPredicate returns the interval of a selective predicate, or the
// full domain for joins (join satisfiability has no constant bounds).
func IntervalOfPredicate(p predicate.Predicate) Interval {
	if p.IsJoin() {
		return FullInterval
	}
	return IntervalOf(p.Op, p.Const)
}

// IsPoint reports whether the interval is a single value (the = case) and
// returns it.
func (iv Interval) IsPoint() (value.Value, bool) {
	if iv.hasLo && iv.hasHi && !iv.openLo && !iv.openHi {
		if cmp, err := iv.lo.Compare(iv.hi); err == nil && cmp == 0 {
			return iv.lo, true
		}
	}
	return value.Value{}, false
}

// Overlaps reports whether the two regions can intersect. The test is
// conservative: incomparable bounds (a type mismatch that slipped past
// validation) count as overlapping, so the filter never loses a candidate.
func (iv Interval) Overlaps(other Interval) bool {
	// Bound check: iv's lower bound must not exceed other's upper bound,
	// and vice versa.
	if !boundsBelow(iv.lo, iv.hasLo, iv.openLo, other.hi, other.hasHi, other.openHi) {
		return false
	}
	if !boundsBelow(other.lo, other.hasLo, other.openLo, iv.hi, iv.hasHi, iv.openHi) {
		return false
	}
	// An excluded point only empties the intersection when the other region
	// is exactly that point.
	if iv.hasNE {
		if p, ok := other.IsPoint(); ok {
			if cmp, err := p.Compare(iv.ne); err == nil && cmp == 0 {
				return false
			}
		}
	}
	if other.hasNE {
		if p, ok := iv.IsPoint(); ok {
			if cmp, err := p.Compare(other.ne); err == nil && cmp == 0 {
				return false
			}
		}
	}
	return true
}

// boundsBelow reports whether a lower bound (lo) sits at or below an upper
// bound (hi), i.e. the region between them is non-empty. Unbounded sides are
// always compatible; incomparable values conservatively are too.
func boundsBelow(lo value.Value, hasLo, openLo bool, hi value.Value, hasHi, openHi bool) bool {
	if !hasLo || !hasHi {
		return true
	}
	cmp, err := lo.Compare(hi)
	if err != nil {
		return true // incomparable: keep the candidate
	}
	if cmp != 0 {
		return cmp < 0
	}
	// Touching bounds: [c, …] meets […, c] only when both sides are closed.
	return !openLo && !openHi
}
