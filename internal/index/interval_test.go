package index

import (
	"math/rand"
	"testing"

	"sqo/internal/predicate"
	"sqo/internal/value"
)

var allOps = []predicate.Op{predicate.EQ, predicate.NE, predicate.LT, predicate.LE, predicate.GT, predicate.GE}

// TestOverlapsNecessaryForImplication is the soundness property the attribute
// postings rest on: whenever p implies q (same attribute), their intervals
// must overlap — the filter may keep junk but must never drop an implication.
func TestOverlapsNecessaryForImplication(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		p := predicate.Sel("c", "a", allOps[r.Intn(len(allOps))], value.Int(int64(r.Intn(9)-4)))
		q := predicate.Sel("c", "a", allOps[r.Intn(len(allOps))], value.Int(int64(r.Intn(9)-4)))
		if p.Implies(q) && !IntervalOfPredicate(p).Overlaps(IntervalOfPredicate(q)) {
			t.Fatalf("%s implies %s but intervals do not overlap", p, q)
		}
	}
}

// TestOverlapsAgreesWithEnumeration checks Overlaps against brute-force
// evaluation over a small integer domain: predicates satisfiable by a common
// point must overlap.
func TestOverlapsAgreesWithEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		p := predicate.Sel("c", "a", allOps[r.Intn(len(allOps))], value.Int(int64(r.Intn(7)-3)))
		q := predicate.Sel("c", "a", allOps[r.Intn(len(allOps))], value.Int(int64(r.Intn(7)-3)))
		common := false
		for v := int64(-10); v <= 10; v++ {
			if p.EvalSel(value.Int(v)) && q.EvalSel(value.Int(v)) {
				common = true
				break
			}
		}
		got := IntervalOfPredicate(p).Overlaps(IntervalOfPredicate(q))
		if common && !got {
			t.Fatalf("%s and %s share point but Overlaps=false", p, q)
		}
		// The converse can false-positive only at the NE boundary cases
		// the filter deliberately keeps; everything else must be exact
		// over an integer-dense window. A strict interval pair with no
		// common point inside [-10,10] could still meet outside the
		// window, so only flag the clearly disjoint shapes.
		if !common && got && disjointProvable(p, q) {
			t.Fatalf("%s and %s provably disjoint but Overlaps=true", p, q)
		}
	}
}

// disjointProvable reports pairs whose emptiness is certain within any
// domain: a contradiction detected by the predicate calculus.
func disjointProvable(p, q predicate.Predicate) bool {
	return p.Contradicts(q)
}

// TestOverlapsSymmetric: overlap is a symmetric relation.
func TestOverlapsSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10000; trial++ {
		a := IntervalOf(allOps[r.Intn(len(allOps))], value.Int(int64(r.Intn(9)-4)))
		b := IntervalOf(allOps[r.Intn(len(allOps))], value.Int(int64(r.Intn(9)-4)))
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("Overlaps not symmetric for %+v / %+v", a, b)
		}
	}
}

// TestIntervalPointCases pins the boundary semantics.
func TestIntervalPointCases(t *testing.T) {
	five := value.Int(5)
	six := value.Int(6)
	cases := []struct {
		a, b Interval
		want bool
	}{
		{IntervalOf(predicate.EQ, five), IntervalOf(predicate.EQ, five), true},
		{IntervalOf(predicate.EQ, five), IntervalOf(predicate.EQ, six), false},
		{IntervalOf(predicate.LT, five), IntervalOf(predicate.GT, five), false},
		{IntervalOf(predicate.LT, five), IntervalOf(predicate.GE, five), false},
		{IntervalOf(predicate.LE, five), IntervalOf(predicate.GE, five), true},
		{IntervalOf(predicate.NE, five), IntervalOf(predicate.EQ, five), false},
		{IntervalOf(predicate.NE, five), IntervalOf(predicate.EQ, six), true},
		{IntervalOf(predicate.NE, five), IntervalOf(predicate.LE, five), true},
		{IntervalOf(predicate.GT, five), IntervalOf(predicate.LT, six), true},
		{FullInterval, IntervalOf(predicate.EQ, five), true},
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: Overlaps = %v, want %v", i, got, c.want)
		}
	}
	// String constants order lexicographically.
	a := IntervalOf(predicate.GE, value.String("m"))
	b := IntervalOf(predicate.LT, value.String("b"))
	if a.Overlaps(b) {
		t.Error(`[m,∞) should not overlap (-∞,b)`)
	}
	// Incomparable kinds stay conservative.
	if !IntervalOf(predicate.GE, value.String("m")).Overlaps(IntervalOf(predicate.LT, value.Int(3))) {
		t.Error("incomparable bounds must conservatively overlap")
	}
}
